// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each family corresponds to one exhibit; cmd/experiments runs the
// same code paths and prints rows in the paper's format.
//
//	BenchmarkTable1_*  system call overhead (Nexus bare / Nexus / monolith)
//	BenchmarkFig4_*    authorization cost by case, ± kernel decision cache
//	BenchmarkFig5_*    proof evaluation cost vs number of rules
//	BenchmarkFig6_*    control-operation overhead, system vs crypto labels
//	BenchmarkFig7_*    interpositioning overhead on a UDP echo path
//	BenchmarkFig8_*    Fauxbook throughput vs filesize under each mechanism
package nexus

import (
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/fauxbook"
	"repro/internal/fsys"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/monolith"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/netdev"
	"repro/internal/ssr"
	"repro/internal/tpm"
)

// mustFS launches a file service for benchmarking.
func mustFS(b *testing.B, k *kernel.Kernel) *fsys.Server {
	b.Helper()
	fs, err := fsys.New(k)
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

// benchKernel boots a kernel for benchmarking, failing the benchmark on
// error.
func benchKernel(b *testing.B, opts kernel.Options) *kernel.Kernel {
	b.Helper()
	t, err := tpm.Manufacture(1024)
	if err != nil {
		b.Fatal(err)
	}
	k, err := kernel.Boot(t, disk.New(), opts)
	if err != nil {
		b.Fatal(err)
	}
	// Exclude the decision audit log (a mutex + SHA-256 per verdict on the
	// miss path) so benchmark trajectories stay comparable across PRs.
	k.Audit().Disable()
	return k
}

// ---------------------------------------------------------------- Table 1

func BenchmarkTable1_Nexus(b *testing.B) {
	for _, bare := range []bool{true, false} {
		name := "standard"
		if bare {
			name = "bare"
		}
		k := benchKernel(b, kernel.Options{NoInterposition: bare, NoAuthorization: true})
		p, _ := k.CreateProcess(0, []byte("bench"))
		b.Run("null/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Null()
			}
		})
		b.Run("getppid/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.GetPPID()
			}
		})
		b.Run("gettimeofday/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.GetTimeOfDay()
			}
		})
		b.Run("yield/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Yield()
			}
		})
	}
}

func BenchmarkTable1_NullBlocked(b *testing.B) {
	k := benchKernel(b, kernel.Options{NoAuthorization: true})
	p, _ := k.CreateProcess(0, []byte("bench"))
	mon, _ := k.CreateProcess(0, []byte("mon"))
	k.Interpose(mon, 0, kernel.FuncMonitor{
		Call: func(kernel.Caller, *kernel.Msg, []byte) kernel.Verdict {
			return kernel.VerdictBlock
		},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Null()
	}
}

func benchNexusFiles(b *testing.B, bare bool) {
	name := "standard"
	if bare {
		name = "bare"
	}
	k := benchKernel(b, kernel.Options{NoInterposition: bare, NoAuthorization: true})
	g := guard.New(k)
	k.SetGuard(g)
	fs := mustFS(b, k)
	app, _ := k.NewSession([]byte("bench"))
	c, err := fs.ClientFor(app)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Create("/bench"); err != nil {
		b.Fatal(err)
	}
	fd, _ := c.Open("/bench")
	c.Write(fd, []byte("seed data for read benchmark"))
	c.Close(fd)

	b.Run("open/"+name, func(b *testing.B) {
		// Descriptors accumulate and are released outside the timer;
		// per-iteration StopTimer would dominate wall-clock time.
		fds := make([]int, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd, err := c.Open("/bench")
			if err != nil {
				b.Fatal(err)
			}
			fds = append(fds, fd)
		}
		b.StopTimer()
		for _, fd := range fds {
			c.Close(fd)
		}
	})
	b.Run("close/"+name, func(b *testing.B) {
		fds := make([]int, b.N)
		for i := range fds {
			fds[i], _ = c.Open("/bench")
		}
		b.ResetTimer()
		for _, fd := range fds {
			c.Close(fd)
		}
	})
	fd, _ = c.Open("/bench")
	b.Run("read/"+name, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Read(fd, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write/"+name, func(b *testing.B) {
		buf := []byte("0123456789abcdef")
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(fd, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable1_NexusFiles(b *testing.B) {
	benchNexusFiles(b, false)
}

func BenchmarkTable1_Monolith(b *testing.B) {
	m := monolith.New()
	pid := m.Spawn(1)
	m.Create("/bench")
	fd, _ := m.Open("/bench")
	m.Write(fd, []byte("seed data for read benchmark"))
	b.Run("null", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Null()
		}
	})
	b.Run("getppid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.GetPPID(pid)
		}
	})
	b.Run("gettimeofday", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.GetTimeOfDay()
		}
	})
	b.Run("yield", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Yield()
		}
	})
	b.Run("open", func(b *testing.B) {
		fds := make([]int, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd, _ := m.Open("/bench")
			fds = append(fds, fd)
		}
		b.StopTimer()
		for _, fd := range fds {
			m.Close(fd)
		}
	})
	b.Run("close", func(b *testing.B) {
		fds := make([]int, b.N)
		for i := range fds {
			fds[i], _ = m.Open("/bench")
		}
		b.ResetTimer()
		for _, fd := range fds {
			m.Close(fd)
		}
	})
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Read(fd, 16)
		}
	})
	b.Run("write", func(b *testing.B) {
		buf := []byte("0123456789abcdef")
		for i := 0; i < b.N; i++ {
			m.Write(fd, buf)
		}
	})
}

// ---------------------------------------------------------------- Figure 4

// fig4World wires the standard Figure 4 measurement target: a guarded null
// operation on a server port.
type fig4World struct {
	k    *kernel.Kernel
	g    *guard.Generic
	cli  *kernel.Process
	port *kernel.Port
}

func newFig4World(b *testing.B, cacheOn bool) *fig4World {
	b.Helper()
	k := benchKernel(b, kernel.Options{DisableDecisionCache: !cacheOn})
	g := guard.New(k)
	k.SetGuard(g)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	port, err := k.CreatePort(srv, func(kernel.Caller, *kernel.Msg) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return &fig4World{k: k, g: g, cli: cli, port: port}
}

func (w *fig4World) call() error {
	_, err := w.k.Call(w.cli, w.port.ID, &kernel.Msg{Op: "read", Obj: "obj"})
	return err
}

func BenchmarkFig4(b *testing.B) {
	for _, cache := range []bool{true, false} {
		suffix := "/cache"
		if !cache {
			suffix = "/nocache"
		}
		b.Run("syscall"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			w.k.SetAuthorization(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.call()
			}
		})
		b.Run("nogoal"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			w.k.SetGoal(w.port.Owner, "read", "obj", nal.TrueF{}, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.call()
			}
		})
		b.Run("noproof"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", nal.MustParse("?S says wantsAccess"), nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.call()
			}
		})
		b.Run("notsound"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", nal.MustParse("?S says wantsAccess"), nil)
			bad := nal.MustParse("Other says wantsAccess")
			w.k.SetProof(w.cli, "read", "obj", proof.Assume(0, bad),
				[]kernel.Credential{{Inline: bad}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.call()
			}
		})
		b.Run("pass"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", nal.MustParse("?S says wantsAccess"), nil)
			cred := nal.Says{P: w.cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
			w.k.SetProof(w.cli, "read", "obj", proof.Assume(0, cred),
				[]kernel.Credential{{Inline: cred}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("nocred"+suffix, func(b *testing.B) {
			// Credential by labelstore reference: fetched per check.
			w := newFig4World(b, cache)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", nal.MustParse("?S says wantsAccess"), nil)
			l, _ := w.cli.Labels.Say("wantsAccess")
			w.k.SetProof(w.cli, "read", "obj", proof.Assume(0, l.Formula),
				[]kernel.Credential{{Ref: &kernel.LabelRef{PID: w.cli.PID, Handle: l.Handle}}})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("embedauth"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			srv := w.port.Owner
			goal := nal.MustParse("Clock says ok")
			w.k.SetGoal(srv, "read", "obj", goal, nil)
			ch := w.g.RegisterEmbedded("clock", func(nal.Formula) bool { return true })
			pf := &proof.Proof{Steps: []proof.Step{{Rule: proof.RuleAuthority, Channel: ch, F: goal}}}
			w.k.SetProof(w.cli, "read", "obj", pf, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("auth"+suffix, func(b *testing.B) {
			w := newFig4World(b, cache)
			srv := w.port.Owner
			goal := nal.MustParse("Clock says ok")
			w.k.SetGoal(srv, "read", "obj", goal, nil)
			ap, _ := w.k.CreateProcess(0, []byte("authority"))
			a, err := w.k.RegisterAuthority(ap, func(nal.Formula) bool { return true })
			if err != nil {
				b.Fatal(err)
			}
			pf := &proof.Proof{Steps: []proof.Step{{Rule: proof.RuleAuthority, Channel: a.Channel(), F: goal}}}
			w.k.SetProof(w.cli, "read", "obj", pf, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- Figure 5

// fig5Proof builds a proof applying n rules of the given family, returning
// the proof, goal, and credentials.
func fig5Proof(family string, n int) (*proof.Proof, nal.Formula, []nal.Formula) {
	switch family {
	case "negate":
		base := nal.MustParse("a")
		creds := []nal.Formula{base}
		steps := []proof.Step{{Rule: proof.RuleLabel, Label: 0, F: base}}
		cur := base
		for i := 0; i < n; i++ {
			cur = nal.Not{F: nal.Not{F: cur}}
			steps = append(steps, proof.Step{
				Rule: proof.RuleNotNotI, Premises: []int{len(steps) - 1}, F: cur,
			})
		}
		return &proof.Proof{Steps: steps}, cur, creds
	case "boolean":
		base := nal.MustParse("a")
		creds := []nal.Formula{base}
		steps := []proof.Step{{Rule: proof.RuleLabel, Label: 0, F: base}}
		cur := base
		for i := 0; i < n; i++ {
			cur = nal.And{L: base, R: cur}
			steps = append(steps, proof.Step{
				Rule: proof.RuleAndI, Premises: []int{0, len(steps) - 1}, F: cur,
			})
		}
		return &proof.Proof{Steps: steps}, cur, creds
	default: // delegate
		var creds []nal.Formula
		start := nal.Says{P: nal.Name("P0"), F: nal.Pred{Name: "s"}}
		creds = append(creds, start)
		for i := 0; i < n; i++ {
			creds = append(creds, nal.SpeaksFor{
				A: nal.Name(fmt.Sprintf("P%d", i)),
				B: nal.Name(fmt.Sprintf("P%d", i+1)),
			})
		}
		steps := []proof.Step{{Rule: proof.RuleLabel, Label: 0, F: start}}
		cur := nal.Formula(start)
		for i := 0; i < n; i++ {
			sf := creds[i+1]
			steps = append(steps, proof.Step{Rule: proof.RuleLabel, Label: i + 1, F: sf})
			cur = nal.Says{P: nal.Name(fmt.Sprintf("P%d", i+1)), F: nal.Pred{Name: "s"}}
			steps = append(steps, proof.Step{
				Rule:     proof.RuleSpeaksForE,
				Premises: []int{len(steps) - 1, len(steps) - 2},
				F:        cur,
			})
		}
		return &proof.Proof{Steps: steps}, cur, creds
	}
}

func BenchmarkFig5_EvalOnly(b *testing.B) {
	for _, family := range []string{"delegate", "negate", "boolean"} {
		for _, n := range []int{1, 5, 10, 20} {
			pf, goal, creds := fig5Proof(family, n)
			env := &proof.Env{Credentials: creds}
			b.Run(fmt.Sprintf("%s/rules=%d", family, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := proof.Check(pf, goal, env); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig5_Full(b *testing.B) {
	// Full path: guard invocation with the kernel decision cache disabled,
	// so every call re-evaluates the proof (and the guard's own proof
	// cache is bypassed by sizing it to zero).
	for _, family := range []string{"delegate", "negate", "boolean"} {
		for _, n := range []int{1, 5, 10, 20} {
			pf, goal, creds := fig5Proof(family, n)
			w := newFig4World(b, false)
			w.g.SetCacheSize(0)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", goal, nil)
			var kcreds []kernel.Credential
			for _, c := range creds {
				kcreds = append(kcreds, kernel.Credential{Inline: c})
			}
			w.k.SetProof(w.cli, "read", "obj", pf, kcreds)
			b.Run(fmt.Sprintf("%s/rules=%d", family, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := w.call(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------- Figure 6

func BenchmarkFig6_ControlOps(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	g := guard.New(k)
	k.SetGuard(g)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	ap, _ := k.CreateProcess(0, []byte("authority"))
	goal := nal.MustParse("?S says wantsAccess")
	cred := nal.Says{P: cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
	pf := proof.Assume(0, cred)

	b.Run("authadd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := k.RegisterAuthority(ap, func(nal.Formula) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goalset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.SetGoal(srv, "read", "obj", goal, nil)
		}
	})
	b.Run("goalclr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.ClearGoal(srv, "read", "obj")
		}
	})
	b.Run("proofset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.SetProof(cli, "read", "obj", pf, []kernel.Credential{{Inline: cred}})
		}
	})
	b.Run("proofclr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.ClearProof(cli, "read", "obj")
		}
	})
	// cred add: a system-backed label insertion must parse and attribute
	// the statement (the most expensive non-crypto control op).
	b.Run("credadd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cli.Labels.Say("wantsAccess(\"obj\")"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig6_CredPIDvsKey(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	cli, _ := k.CreateProcess(0, []byte("cli"))
	b.Run("credpid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cli.Labels.Say("isTypeSafe(hash:ab12)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("credkey", func(b *testing.B) {
		// Cryptographically signed label: externalize (RSA sign by NK)
		// then import (verify) — the three-orders-of-magnitude path.
		l, _ := cli.Labels.Say("isTypeSafe(hash:ab12)")
		for i := 0; i < b.N; i++ {
			ext, err := cli.Labels.Externalize(l.Handle)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cli.Labels.Import(ext); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("credkey/verifyonly", func(b *testing.B) {
		l, _ := cli.Labels.Say("isTypeSafe(hash:ab12)")
		ext, err := cli.Labels.Externalize(l.Handle)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := cli.Labels.Import(ext); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------- Figure 7

func BenchmarkFig7(b *testing.B) {
	cases := []struct {
		name string
		cfg  netdev.Config
	}{
		{"kern-int", netdev.Config{}},
		{"user-int", netdev.Config{UserDriver: true}},
		{"kern-drv", netdev.Config{ServerApp: true}},
		{"user-drv", netdev.Config{UserDriver: true, ServerApp: true}},
		{"kref-min", netdev.Config{ServerApp: true, RefMon: netdev.RefKernel, Cache: true}},
		{"kref-max", netdev.Config{ServerApp: true, RefMon: netdev.RefKernel}},
		{"uref-min", netdev.Config{UserDriver: true, ServerApp: true, RefMon: netdev.RefUser, Cache: true}},
		{"uref-max", netdev.Config{UserDriver: true, ServerApp: true, RefMon: netdev.RefUser}},
	}
	for _, size := range []int{100, 1500} {
		frame := netdev.MakeFrame(size)
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/%dB", c.name, size), func(b *testing.B) {
				k := benchKernel(b, kernel.Options{NoAuthorization: true})
				e, err := netdev.NewEchoPath(k, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Process(frame); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------- Figure 8

// fig8Sizes are the request sizes swept on the x axis.
var fig8Sizes = []int{100, 1 << 10, 10 << 10, 100 << 10, 1 << 20}

func fig8Stack(b *testing.B, cfg fauxbook.StackConfig) *fauxbook.WebStack {
	b.Helper()
	t, err := tpm.Manufacture(1024)
	if err != nil {
		b.Fatal(err)
	}
	t.Extend(tpm.PCRKernel, []byte("nexus"))
	if err := t.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel}); err != nil {
		b.Fatal(err)
	}
	var mgr *ssr.Manager
	if cfg.Storage != fauxbook.StorePlain {
		if mgr, err = ssr.Init(t, disk.New()); err != nil {
			b.Fatal(err)
		}
	}
	k := benchKernel(b, kernel.Options{})
	w, err := fauxbook.NewWebStack(k, mgr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func fig8Run(b *testing.B, cfg fauxbook.StackConfig, size int) {
	w := fig8Stack(b, cfg)
	content := make([]byte, size)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	if err := w.PutFile("/doc", content); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Request("/doc"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_AccessControl(b *testing.B) {
	for _, dyn := range []bool{false, true} {
		row := "static-files"
		if dyn {
			row = "python"
		}
		for _, ac := range []struct {
			name string
			mode fauxbook.AccessMode
		}{{"none", fauxbook.AccessNone}, {"static", fauxbook.AccessStatic}, {"dynamic", fauxbook.AccessDynamic}} {
			for _, size := range fig8Sizes {
				b.Run(fmt.Sprintf("%s/%s/%dB", row, ac.name, size), func(b *testing.B) {
					fig8Run(b, fauxbook.StackConfig{Access: ac.mode, Dynamic: dyn}, size)
				})
			}
		}
	}
}

func BenchmarkFig8_RefMon(b *testing.B) {
	cases := []struct {
		name string
		cfg  fauxbook.StackConfig
	}{
		{"none", fauxbook.StackConfig{}},
		{"kernel+", fauxbook.StackConfig{RefMon: fauxbook.StackRefKernel, RefMonCache: true}},
		{"kernel-", fauxbook.StackConfig{RefMon: fauxbook.StackRefKernel}},
		{"user+", fauxbook.StackConfig{RefMon: fauxbook.StackRefUser, RefMonCache: true}},
		{"user-", fauxbook.StackConfig{RefMon: fauxbook.StackRefUser}},
	}
	for _, dyn := range []bool{false, true} {
		row := "static-files"
		if dyn {
			row = "python"
		}
		for _, c := range cases {
			cfg := c.cfg
			cfg.Dynamic = dyn
			for _, size := range fig8Sizes {
				b.Run(fmt.Sprintf("%s/%s/%dB", row, c.name, size), func(b *testing.B) {
					fig8Run(b, cfg, size)
				})
			}
		}
	}
}

func BenchmarkFig8_Storage(b *testing.B) {
	for _, dyn := range []bool{false, true} {
		row := "static-files"
		if dyn {
			row = "python"
		}
		for _, st := range []struct {
			name string
			mode fauxbook.StorageMode
		}{{"none", fauxbook.StorePlain}, {"hash", fauxbook.StoreHashed}, {"decrypt", fauxbook.StoreEncrypted}} {
			for _, size := range fig8Sizes {
				b.Run(fmt.Sprintf("%s/%s/%dB", row, st.name, size), func(b *testing.B) {
					fig8Run(b, fauxbook.StackConfig{Storage: st.mode, Dynamic: dyn}, size)
				})
			}
		}
	}
}

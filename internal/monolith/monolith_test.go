package monolith

import (
	"bytes"
	"errors"
	"testing"
)

func TestProcessOps(t *testing.T) {
	k := New()
	p1 := k.Spawn(0)
	p2 := k.Spawn(p1)
	if k.GetPPID(p2) != p1 {
		t.Errorf("GetPPID = %d", k.GetPPID(p2))
	}
	if k.GetTimeOfDay().IsZero() {
		t.Error("GetTimeOfDay returned zero")
	}
	k.Null()
	k.Yield()
}

func TestFileOps(t *testing.T) {
	k := New()
	if err := k.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := k.Create("/f"); !errors.Is(err, ErrExists) {
		t.Errorf("want ErrExists, got %v", err)
	}
	if _, err := k.Open("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	fd, err := k.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := k.Write(fd, []byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := k.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Errorf("double close: want ErrBadFD, got %v", err)
	}
	fd2, _ := k.Open("/f")
	data, err := k.Read(fd2, 100)
	if err != nil || !bytes.Equal(data, []byte("hello")) {
		t.Errorf("Read = %q, %v", data, err)
	}
	if more, _ := k.Read(fd2, 10); more != nil {
		t.Errorf("read past EOF = %q", more)
	}
	if _, err := k.Read(999, 1); !errors.Is(err, ErrBadFD) {
		t.Errorf("want ErrBadFD, got %v", err)
	}
	if _, err := k.Write(999, nil); !errors.Is(err, ErrBadFD) {
		t.Errorf("want ErrBadFD, got %v", err)
	}
}

func TestList(t *testing.T) {
	k := New()
	k.Create("/a/1")
	k.Create("/a/2")
	k.Create("/b/1")
	if got := k.List("/a/"); len(got) != 2 {
		t.Errorf("List = %v", got)
	}
}

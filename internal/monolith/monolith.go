// Package monolith is the comparator system for Table 1: a monolithic
// kernel with the same system-call surface as the Nexus simulation but the
// conventional structure — services implemented inside the kernel, invoked
// by direct call with no IPC hop, no parameter marshaling, no
// interpositioning, and no credentials-based authorization. It stands in
// for the paper's Ubuntu 10.10 / Linux 2.6.35 measurements: what matters
// for reproduction is the *relative* cost of the Nexus mechanisms against a
// direct-call baseline, not Linux's absolute numbers.
package monolith

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors.
var (
	ErrNotFound = errors.New("monolith: no such file")
	ErrBadFD    = errors.New("monolith: bad file descriptor")
	ErrExists   = errors.New("monolith: file exists")
)

// Kernel is a monolithic kernel instance.
type Kernel struct {
	mu    sync.Mutex
	files map[string][]byte
	fds   map[int]*fd
	next  int
	procs map[int]int // pid → ppid
	npid  int
}

type fd struct {
	path string
	off  int
}

// New creates a monolithic kernel with an empty root filesystem.
func New() *Kernel {
	return &Kernel{
		files: map[string][]byte{},
		fds:   map[int]*fd{},
		next:  3,
		procs: map[int]int{},
		npid:  1,
	}
}

// Spawn creates a process and returns its pid.
func (k *Kernel) Spawn(ppid int) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	pid := k.npid
	k.npid++
	k.procs[pid] = ppid
	return pid
}

// Null is the empty system call.
func (k *Kernel) Null() {}

// GetPPID returns a process's parent.
func (k *Kernel) GetPPID(pid int) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.procs[pid]
}

// GetTimeOfDay returns the current time.
func (k *Kernel) GetTimeOfDay() time.Time { return time.Now() }

// Yield is a scheduling no-op in the simulation.
func (k *Kernel) Yield() {}

// Create makes an empty file.
func (k *Kernel) Create(path string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.files[path]; ok {
		return ErrExists
	}
	k.files[path] = nil
	return nil
}

// Open returns a file descriptor.
func (k *Kernel) Open(path string) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.files[path]; !ok {
		return 0, ErrNotFound
	}
	n := k.next
	k.next++
	k.fds[n] = &fd{path: path}
	return n, nil
}

// Close releases a descriptor.
func (k *Kernel) Close(n int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.fds[n]; !ok {
		return ErrBadFD
	}
	delete(k.fds, n)
	return nil
}

// Read reads up to n bytes at the descriptor offset.
func (k *Kernel) Read(fdn, n int) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	d, ok := k.fds[fdn]
	if !ok {
		return nil, ErrBadFD
	}
	data := k.files[d.path]
	if d.off >= len(data) {
		return nil, nil
	}
	end := d.off + n
	if end > len(data) {
		end = len(data)
	}
	out := append([]byte(nil), data[d.off:end]...)
	d.off = end
	return out, nil
}

// Write writes at the descriptor offset.
func (k *Kernel) Write(fdn int, data []byte) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	d, ok := k.fds[fdn]
	if !ok {
		return 0, ErrBadFD
	}
	cur := k.files[d.path]
	if need := d.off + len(data); need > len(cur) {
		if need > cap(cur) {
			grown := make([]byte, need, need*2)
			copy(grown, cur)
			cur = grown
		} else {
			cur = cur[:need]
		}
	}
	copy(cur[d.off:], data)
	k.files[d.path] = cur
	d.off += len(data)
	return len(data), nil
}

// List returns files under a prefix.
func (k *Kernel) List(prefix string) []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []string
	for p := range k.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

package analysis

import (
	"fmt"
	"os"
	"strings"
)

// LockSpec is the parsed machine-readable lock DAG
// (internal/analysis/lockorder.txt). Grammar, one declaration per line:
//
//	edge <from> -> <to> [dynamic]
//	leaf <lock>
//	# comment
//
// Lock names are `pkg.Type.field` for struct-field mutexes and `pkg.var`
// for package-level ones. `dynamic` marks an edge established through a
// dynamic call (a stored closure or interface) that the static call graph
// cannot witness — it is allowed but exempt from the spec-rot check.
// `leaf` declares a lock that must have no outgoing edges at all.
type LockSpec struct {
	File   string
	Edges  []SpecEdge
	Leaves []SpecLeaf
}

// SpecEdge is one declared may-acquire edge: To may be acquired while From
// is held.
type SpecEdge struct {
	From, To string
	Dynamic  bool
	Line     int
}

// SpecLeaf declares a lock with no permitted outgoing edges.
type SpecLeaf struct {
	Lock string
	Line int
}

// ParseLockSpec reads a lock DAG spec file.
func ParseLockSpec(path string) (*LockSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseLockSpec(path, string(data))
}

func parseLockSpec(path, data string) (*LockSpec, error) {
	spec := &LockSpec{File: path}
	for i, line := range strings.Split(data, "\n") {
		ln := i + 1
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "edge":
			// edge A -> B [dynamic]
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fmt.Errorf("%s:%d: malformed edge (want `edge A -> B [dynamic]`)", path, ln)
			}
			e := SpecEdge{From: fields[1], To: fields[3], Line: ln}
			if len(fields) == 5 && fields[4] == "dynamic" {
				e.Dynamic = true
			} else if len(fields) > 4 {
				return nil, fmt.Errorf("%s:%d: unknown edge attribute %q", path, ln, fields[4])
			}
			spec.Edges = append(spec.Edges, e)
		case "leaf":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: malformed leaf (want `leaf A`)", path, ln)
			}
			spec.Leaves = append(spec.Leaves, SpecLeaf{Lock: fields[1], Line: ln})
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, ln, fields[0])
		}
	}
	return spec, nil
}

// Allows reports whether the spec declares the edge from -> to.
func (s *LockSpec) Allows(from, to string) bool {
	for _, e := range s.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// WithoutEdge returns a copy of the spec with one edge removed — the
// spec-rot guard tests use it to prove a deleted edge fails the lint.
func (s *LockSpec) WithoutEdge(from, to string) *LockSpec {
	cp := &LockSpec{File: s.File, Leaves: s.Leaves}
	for _, e := range s.Edges {
		if e.From == from && e.To == to {
			continue
		}
		cp.Edges = append(cp.Edges, e)
	}
	return cp
}

// cycle returns a declared cycle as a printable chain, or "".
func (s *LockSpec) cycle() string {
	next := map[string][]string{}
	for _, e := range s.Edges {
		if e.From == e.To {
			continue // self-edges model sibling shards, not recursion
		}
		next[e.From] = append(next[e.From], e.To)
	}
	const white, grey, black = 0, 1, 2
	color := map[string]int{}
	var stack []string
	var found []string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, m := range next[n] {
			switch color[m] {
			case white:
				if visit(m) {
					return true
				}
			case grey:
				for i, s := range stack {
					if s == m {
						found = append(found, stack[i:]...)
						found = append(found, m)
						return true
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for n := range next {
		if color[n] == white && visit(n) {
			return strings.Join(found, " -> ")
		}
	}
	return ""
}

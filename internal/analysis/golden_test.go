package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one `// want "regex"` expectation from a testdata file.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(`([^`]+)`|\"([^\"]+)\")")

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var ws []*want
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(fh)
		for ln := 1; sc.Scan(); ln++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			pat := m[2]
			if pat == "" {
				pat = m[3]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", f, ln, pat, err)
			}
			ws = append(ws, &want{file: filepath.Base(f), line: ln, re: re})
		}
		fh.Close()
	}
	return ws
}

// runGolden loads one testdata corpus, runs the analyzer, and requires an
// exact match between findings and `// want` expectations: every finding
// must be expected, every expectation must fire.
func runGolden(t *testing.T, name string, mk func(*Program) Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	prog, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	findings := mk(prog).Run(prog)
	SortFindings(findings)
	wants := parseWants(t, dir)

	for _, f := range findings {
		pos := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s: %s", pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestGoldenLockorder(t *testing.T) {
	spec, err := ParseLockSpec(filepath.Join("testdata", "lockorder", "lockorder.txt"))
	if err != nil {
		t.Fatal(err)
	}
	runGolden(t, "lockorder", func(*Program) Analyzer { return Lockorder{Spec: spec} })
}

func TestGoldenErrnolint(t *testing.T) {
	runGolden(t, "errnolint", func(*Program) Analyzer { return Errnolint{} })
}

func TestGoldenNoalloc(t *testing.T) {
	runGolden(t, "noalloc", func(*Program) Analyzer { return Noalloc{} })
}

func TestGoldenAtomiclint(t *testing.T) {
	runGolden(t, "atomiclint", func(*Program) Analyzer { return Atomiclint{} })
}

// TestGoldenLockorderSpecRot removes the exercised edge from the corpus
// spec and requires the previously clean acquisition to become a finding:
// the DAG file cannot silently drift from the code.
func TestGoldenLockorderSpecRot(t *testing.T) {
	spec, err := ParseLockSpec(filepath.Join("testdata", "lockorder", "lockorder.txt"))
	if err != nil {
		t.Fatal(err)
	}
	cut := spec.WithoutEdge("a.Table.insMu", "a.Shard.mu")
	prog, err := LoadDir(filepath.Join("testdata", "lockorder"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Lockorder{Spec: cut}.Run(prog)
	for _, f := range findings {
		if strings.Contains(f.Message, "undeclared lock-order edge a.Table.insMu -> a.Shard.mu") {
			return
		}
	}
	t.Fatalf("deleting edge a.Table.insMu -> a.Shard.mu did not produce a finding; got: %v", findings)
}

func TestParseLockSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"edge a.X -> ",
		"edge a.X a.Y",
		"leaf",
		"frob a.X",
		"edge a.X -> a.Y sometimes",
	} {
		if _, err := parseLockSpec("spec", bad); err == nil {
			t.Errorf("parseLockSpec(%q): expected error", bad)
		}
	}
	spec, err := parseLockSpec("spec", "# c\nedge a.X -> a.Y dynamic\nleaf a.Z # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Edges) != 1 || !spec.Edges[0].Dynamic || len(spec.Leaves) != 1 {
		t.Fatalf("parsed %+v", spec)
	}
}

func TestLockSpecCycle(t *testing.T) {
	spec, err := parseLockSpec("spec", "edge a.X -> a.Y\nedge a.Y -> a.X\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.cycle() == "" {
		t.Fatal("two-edge cycle not detected")
	}
	selfEdge, err := parseLockSpec("spec", "edge a.X -> a.X\n")
	if err != nil {
		t.Fatal(err)
	}
	if selfEdge.cycle() != "" {
		t.Fatal("self-edge (sibling shards) must not count as a cycle")
	}
}

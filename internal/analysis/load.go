// Package analysis implements nexuslint, the repo-specific static-analysis
// suite that mechanizes the kernel's concurrency, errno, and hot-path
// invariants (DESIGN.md "Static analysis"). It is stdlib-only: packages are
// enumerated with `go list -json -deps`, parsed with go/parser, and
// type-checked with go/types; standard-library dependencies are resolved
// through the source importer. No golang.org/x/tools.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	// suppress maps file name → set of lines carrying a nexuslint
	// suppression comment, keyed by suppression kind ("coldpath",
	// "errno-ok", "atomic-ok").
	suppress map[string]map[int]map[string]bool
}

// FuncInfo pairs a declared function or method with its body and package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Program is the loaded module: every package type-checked, plus a
// module-wide index of function bodies so analyzers can traverse static
// call graphs.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Pkgs       []*Package
	funcs      map[*types.Func]*FuncInfo
}

// FuncOf returns the declaration info for a function object declared in
// the module, or nil (stdlib, interface methods, func values).
func (p *Program) FuncOf(obj *types.Func) *FuncInfo {
	return p.funcs[obj]
}

type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// LoadPackages loads and type-checks the module packages matched by
// patterns (plus their intra-module dependencies) rooted at dir.
func LoadPackages(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Standard || p.Module == nil {
			continue // stdlib goes through the source importer
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no module packages matched %v", patterns)
	}
	modPath := pkgs[0].Module.Path

	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		funcs:      map[*types.Func]*FuncInfo{},
	}
	std := importer.ForCompiler(prog.Fset, "source", nil)
	checked := map[string]*types.Package{}
	inModule := map[string]bool{}
	for _, p := range pkgs {
		inModule[p.ImportPath] = true
	}

	// Type-check in dependency order: a package is ready once every
	// intra-module import has been checked.
	remaining := pkgs
	for len(remaining) > 0 {
		var next []listPkg
		progress := false
		for _, lp := range remaining {
			ready := true
			for _, imp := range lp.Imports {
				if inModule[imp] && checked[imp] == nil {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, lp)
				continue
			}
			progress = true
			pk, err := prog.check(lp, std, checked)
			if err != nil {
				return nil, err
			}
			checked[lp.ImportPath] = pk.Pkg
			prog.Pkgs = append(prog.Pkgs, pk)
		}
		if !progress {
			return nil, fmt.Errorf("import cycle or unresolved deps among %d packages", len(remaining))
		}
		remaining = next
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// LoadDir loads a single directory of Go files as one standalone package —
// the harness entry for the per-analyzer testdata corpora (which the go
// tool itself never builds).
func LoadDir(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fis, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(fis)
	prog := &Program{Fset: token.NewFileSet(), funcs: map[*types.Func]*FuncInfo{}}
	std := importer.ForCompiler(prog.Fset, "source", nil)
	lp := listPkg{Dir: abs, ImportPath: "a"}
	for _, f := range fis {
		lp.GoFiles = append(lp.GoFiles, filepath.Base(f))
	}
	pk, err := prog.check(lp, std, nil)
	if err != nil {
		return nil, err
	}
	prog.Pkgs = []*Package{pk}
	return prog, nil
}

// check parses and type-checks one package and indexes its declarations.
func (prog *Program) check(lp listPkg, std types.Importer, mod map[string]*types.Package) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		af, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    moduleImporter{std: std, mod: mod},
		FakeImportC: true,
	}
	tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	pk := &Package{
		Path:     lp.ImportPath,
		Dir:      lp.Dir,
		Pkg:      tpkg,
		Info:     info,
		Files:    files,
		suppress: map[string]map[int]map[string]bool{},
	}
	pk.indexSuppressions(prog.Fset)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				prog.funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pk}
			}
		}
	}
	return pk, nil
}

// moduleImporter resolves intra-module imports from the already-checked
// set and everything else (stdlib) through the source importer.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (m moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.mod[path]; p != nil {
		return p, nil
	}
	return m.std.Import(path)
}

// indexSuppressions records per-line nexuslint suppression comments:
//
//	//nexus:coldpath   — noalloc skips the statement on this line
//	//nexus:errno-ok   — errnolint accepts the raw error on this line
//	//nexus:atomic-ok  — atomiclint accepts the plain access on this line
func (pk *Package) indexSuppressions(fset *token.FileSet) {
	for _, f := range pk.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind := ""
				switch {
				case strings.Contains(c.Text, "nexus:coldpath"):
					kind = "coldpath"
				case strings.Contains(c.Text, "nexus:errno-ok"):
					kind = "errno-ok"
				case strings.Contains(c.Text, "nexus:atomic-ok"):
					kind = "atomic-ok"
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := pk.suppress[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					pk.suppress[pos.Filename] = byLine
				}
				kinds := byLine[pos.Line]
				if kinds == nil {
					kinds = map[string]bool{}
					byLine[pos.Line] = kinds
				}
				kinds[kind] = true
			}
		}
	}
}

// suppressed reports whether a node's line carries the given suppression.
func (pk *Package) suppressed(fset *token.FileSet, n ast.Node, kind string) bool {
	pos := fset.Position(n.Pos())
	return pk.suppress[pos.Filename][pos.Line][kind]
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report, rendered as `file:line: [analyzer] message`.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the verbose explanation (-v / lint-fix-hints): the held-lock
	// chain for a lockorder finding, the call path for a noalloc finding.
	Chain string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one repo-specific invariant checker.
type Analyzer interface {
	Name() string
	Run(prog *Program) []Finding
}

// RunAll runs every analyzer and returns the merged findings in stable
// position order.
func RunAll(prog *Program, analyzers []Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		all = append(all, a.Run(prog)...)
	}
	SortFindings(all)
	return all
}

// SortFindings orders findings by file, line, analyzer, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ---- shared type/identity helpers --------------------------------------

// unparen strips parentheses (ast.Unparen needs go1.22; the module pins 1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// deref strips pointers down to the element type.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedOf returns the named type behind t (after pointer deref), or nil.
func namedOf(t types.Type) *types.Named {
	n, _ := deref(t).(*types.Named)
	return n
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// fieldIdentity names a struct field as `<pkg>.<Type>.<field>`, walking the
// selection's embedding chain so the identity is the *declaring* struct.
// idx addresses the field: for a FieldVal selection pass sel.Index(); for a
// method promoted through an embedded field pass sel.Index()[:len-1].
// Returns "" when the declaring struct is unnamed.
func fieldIdentity(recv types.Type, idx []int) string {
	t := recv
	for i := 0; i < len(idx)-1; i++ {
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		t = st.Field(idx[i]).Type()
	}
	n := namedOf(t)
	if n == nil {
		return ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok || idx[len(idx)-1] >= st.NumFields() {
		return ""
	}
	f := st.Field(idx[len(idx)-1])
	pkg := "_"
	if n.Obj().Pkg() != nil {
		pkg = n.Obj().Pkg().Name()
	}
	return pkg + "." + n.Obj().Name() + "." + f.Name()
}

// exprIdentity names the storage location an expression denotes, for lock
// and atomic-field identity: `pkg.Type.field` for struct fields (however
// deep the access chain), `pkg.var` for package-level variables, "" for
// anything unnameable (locals, results of calls).
func (pk *Package) exprIdentity(expr ast.Expr) string {
	switch e := unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pk.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return fieldIdentity(sel.Recv(), sel.Index())
		}
		// Qualified package-level var: pkgname.Var.
		if v, ok := pk.Info.Uses[e.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := pk.Info.Uses[e].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.StarExpr:
		return pk.exprIdentity(e.X)
	}
	return ""
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// calleeOf resolves a call expression to the static *types.Func it invokes:
// package functions, methods (including promoted ones), and qualified
// cross-package calls. Returns nil for func values, interface methods that
// cannot be devirtualized, builtins, and type conversions.
func (pk *Package) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pk.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pk.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified: pkg.Func.
		if f, ok := pk.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcDisplay renders a function for messages: pkg.Func or pkg.(*T).Method.
func funcDisplay(f *types.Func) string {
	if f == nil {
		return "?"
	}
	sig, _ := f.Type().(*types.Signature)
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return pkg + n.Obj().Name() + "." + f.Name()
		}
	}
	return pkg + f.Name()
}

// docHasDirective reports whether a function's doc comment carries the
// given `//nexus:<name>` annotation.
func docHasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, "nexus:"+name) {
			return true
		}
	}
	return false
}

// Golden corpus for the noalloc analyzer.
package a

import "fmt"

//nexus:noalloc
func warm(buf []byte, n int) ([]byte, error) {
	if n < 0 {
		// Failure-path return: error construction is off the warm region.
		return nil, fmt.Errorf("negative length %d", n)
	}
	buf = append(buf, byte(n)) // self-append reuse: allowed (near miss)
	tmp := make([]byte, n)     // want `make allocates`
	_ = tmp
	return grow(buf), nil
}

// grow is reached transitively from warm: its fresh append is a finding.
func grow(b []byte) []byte {
	return append(b, 0) // want `append outside an .x = append\(x, \.\.\.\). reuse pattern`
}

//nexus:alloc-ok — declared cold helper: the descent stops here.
func coldHelper() []byte {
	return make([]byte, 8)
}

//nexus:noalloc
func warm2(s string, vals []int) {
	_ = s + "!" // want `string concatenation allocates`
	_ = coldHelper()

	n := 0
	// A local closure only ever called does not escape: its body is part
	// of this warm path (near miss for the capture check)...
	bump := func() { n++ }
	bump()

	// ...a capture-free literal passed along costs nothing (near miss)...
	sink(func() int { return 0 })

	// ...but a capturing closure that escapes must materialize its
	// capture record on the heap.
	sink(func() int { return n }) // want `closure captures variables and allocates`

	var f func() int
	f = func() int { return n } // want `closure captures variables and allocates`
	_ = f

	if len(vals) == 0 {
		vals = make([]int, 4) //nexus:coldpath — grow-once branch
	}

	go bump() // want "`go` statement allocates a goroutine"
}

func sink(f func() int) int { return f() }

// Golden corpus for the atomiclint analyzer.
package a

import "sync/atomic"

type counter struct {
	hits uint64 // accessed via sync/atomic below: atomic everywhere
	cold uint64 // never atomic: plain access is fine
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

// read mixes a plain load into an otherwise-atomic field.
func (c *counter) read() uint64 {
	return c.hits // want `plain access to a\.counter\.hits`
}

// sanctioned goes through sync/atomic: no finding (near miss — same
// field, same read, correct access path).
func (c *counter) sanctioned() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// coldRead touches the never-atomic neighbor field: no finding.
func (c *counter) coldRead() uint64 {
	return c.cold
}

// reset documents a deliberate pre-publication plain write.
func (c *counter) reset() {
	c.hits = 0 //nexus:atomic-ok — no reader can hold c yet
}

// typedCounter uses the typed atomic kinds: never flagged, the type
// system already forbids plain access.
type typedCounter struct {
	hits atomic.Uint64
}

func (t *typedCounter) bump() {
	t.hits.Add(1)
}

// Golden corpus for the lockorder analyzer. The spec next to this file
// (lockorder.txt) declares edge a.Table.insMu -> a.Shard.mu and leaf
// a.Leaf.mu.
package a

import "sync"

type Table struct {
	insMu sync.Mutex
}

type Shard struct {
	mu sync.Mutex
}

type Leaf struct {
	mu sync.Mutex
}

var shard Shard

// declared exercises the declared edge: no finding (near miss — the same
// shape as undeclared below, but the spec allows it).
func (t *Table) declared() {
	t.insMu.Lock()
	defer t.insMu.Unlock()
	shard.mu.Lock()
	shard.mu.Unlock()
}

// undeclared acquires insMu while holding the shard — the reverse of the
// declared order.
func (t *Table) undeclared() {
	shard.mu.Lock()
	defer shard.mu.Unlock()
	t.insMu.Lock() // want `undeclared lock-order edge a\.Shard\.mu -> a\.Table\.insMu`
	t.insMu.Unlock()
}

// leafViolation holds a declared leaf across an acquisition.
func (l *Leaf) leafViolation() {
	l.mu.Lock()
	defer l.mu.Unlock()
	shard.mu.Lock() // want `a\.Leaf\.mu is declared leaf`
	shard.mu.Unlock()
}

// transitive holds insMu across a call whose callee acquires a Leaf —
// the edge is observed through the intra-package call graph, not a
// literal Lock in this body.
func (t *Table) transitive(l *Leaf) {
	t.insMu.Lock()
	defer t.insMu.Unlock()
	touchLeaf(l) // want `undeclared lock-order edge a\.Table\.insMu -> a\.Leaf\.mu`
}

func touchLeaf(l *Leaf) {
	l.mu.Lock()
	l.mu.Unlock()
}

// sequential releases before the next acquisition: no edge, no finding
// (near miss — same two locks as undeclared, never held together).
func (t *Table) sequential() {
	t.insMu.Lock()
	t.insMu.Unlock()
	shard.mu.Lock()
	shard.mu.Unlock()
}

// goroutineFrame: a goroutine body inherits no held set, so the
// acquisition inside it observes no edge from insMu.
func (t *Table) goroutineFrame() {
	t.insMu.Lock()
	defer t.insMu.Unlock()
	go func() {
		shard.mu.Lock()
		shard.mu.Unlock()
	}()
}

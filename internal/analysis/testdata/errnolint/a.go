// Golden corpus for the errnolint analyzer.
package a

import (
	"errors"
	"fmt"
)

// ErrClassified is a package-level sentinel: wrapping it classifies an
// error.
var ErrClassified = errors.New("a: classified failure")

// Session mirrors the kernel Session type: exported methods are on the
// ABI error surface by name.
type Session struct{}

// Submit is surface by virtue of being an exported Session method.
func (s *Session) Submit() error {
	return errors.New("raw failure") // want `raw errors\.New on ABI error surface a\.Session\.Submit`
}

// Close wraps the sentinel: classified, no finding (near miss — same
// surface as Submit, but ErrnoOf can recover a class).
func (s *Session) Close() error {
	return fmt.Errorf("close failed: %w", ErrClassified)
}

//nexus:errno
func annotated(n int) error {
	return fmt.Errorf("bad argument %d", n) // want `raw fmt\.Errorf on ABI error surface a\.annotated`
}

// helper is unexported and unannotated: off the surface, raw errors are
// its caller's problem (near miss — identical construction to Submit).
func helper() error {
	return errors.New("internal detail")
}

// legacy documents a deliberate exception with a line suppression.
//
//nexus:errno
func legacy() error {
	return errors.New("grandfathered wire format") //nexus:errno-ok
}

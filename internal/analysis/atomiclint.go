package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Atomiclint flags mixed atomic/plain access: once any struct field is
// operated on through a sync/atomic package function (atomic.LoadUint64,
// atomic.AddInt32, atomic.CompareAndSwapPointer, ...), every other access
// to that field anywhere in the module must also go through sync/atomic —
// a plain read or write, or an escaping &field, is a data race the race
// detector only catches when the interleaving happens to occur.
//
// Fields of the typed atomic.* kinds (atomic.Uint64, atomic.Pointer[T], …)
// are safe by construction — the type system already forbids plain access
// — which is why the kernel prefers them; this analyzer polices the
// function-style residue. A deliberate pre-publication initialization
// carries `//nexus:atomic-ok` on the line.
type Atomiclint struct{}

// Name implements Analyzer.
func (Atomiclint) Name() string { return "atomiclint" }

// Run implements Analyzer.
func (Atomiclint) Run(prog *Program) []Finding {
	// Pass 1: every field address passed to a sync/atomic function.
	atomicFields := map[string]token.Pos{}
	for _, pk := range prog.Pkgs {
		for _, f := range pk.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isAtomicFuncCall(pk, call) {
					return true
				}
				for _, a := range call.Args {
					if id := addrFieldIdentity(pk, a); id != "" {
						if _, seen := atomicFields[id]; !seen {
							atomicFields[id] = call.Pos()
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other access to those fields must be atomic too.
	var fs []Finding
	for _, pk := range prog.Pkgs {
		for _, f := range pk.Files {
			skip := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if skip[n] {
					return false
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					if isAtomicFuncCall(pk, n) {
						// The &field arguments of this call are the
						// sanctioned access path.
						for _, a := range n.Args {
							if u, ok := unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
								skip[a] = true
								skip[u] = true
							}
						}
					}
				case *ast.SelectorExpr:
					sel, ok := pk.Info.Selections[n]
					if !ok || sel.Kind() != types.FieldVal {
						return true
					}
					id := fieldIdentity(sel.Recv(), sel.Index())
					firstAtomic, isAtomic := atomicFields[id]
					if !isAtomic {
						return true
					}
					if pk.suppressed(prog.Fset, n, "atomic-ok") {
						return false
					}
					fs = append(fs, Finding{
						Pos:      prog.Fset.Position(n.Pos()),
						Analyzer: "atomiclint",
						Message: fmt.Sprintf("plain access to %s, which is accessed with sync/atomic at %s: use atomic ops everywhere or a typed atomic field",
							id, prog.Fset.Position(firstAtomic)),
					})
					return false
				}
				return true
			})
		}
	}
	return fs
}

// isAtomicFuncCall reports whether a call invokes a package-level function
// of sync/atomic (not a method of the typed atomic.* kinds).
func isAtomicFuncCall(pk *Package, call *ast.CallExpr) bool {
	f := pk.calleeOf(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// addrFieldIdentity names the field in an `&x.f` argument, or "".
func addrFieldIdentity(pk *Package, arg ast.Expr) string {
	u, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return ""
	}
	sel, ok := unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := pk.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	return fieldIdentity(s.Recv(), s.Index())
}

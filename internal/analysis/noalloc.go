package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Noalloc checks that functions annotated `//nexus:noalloc` — the pinned
// warm paths, each cross-referenced to a runtime allocation pin in
// alloc_test.go — stay allocation-free, transitively through static
// callees in the same module. It flags the constructs that heap-allocate:
//
//   - make / new, map and slice composite literals, &T{...}
//   - append that does not feed back into its own first argument
//   - fmt.* and errors.* calls, non-constant string concatenation,
//     string↔[]byte conversions
//   - closures that capture variables, method values, `go` statements
//   - explicit conversions that box a non-pointer value into an interface
//
// Two code shapes are recognized as warm-path-compatible without
// annotation. A `return` statement whose error-position result is a direct
// error construction (fmt.Errorf, errors.New, or an `//nexus:alloc-ok`
// callee) is a failure path: error construction allocates by definition
// and the runtime pins measure the success path. And a closure assigned to
// a local variable that is only ever called (never stored, passed, or
// returned) does not escape — Go stack-allocates it — so its body is
// scanned as part of this warm path instead of being flagged.
//
// Escape hatches, all deliberate and reviewable: `//nexus:coldpath` on a
// statement excludes that statement's subtree (a miss/error branch off the
// warm path); `//nexus:alloc-ok` on a function declaration stops the
// descent into it (a cold helper such as an error constructor). Dynamic
// calls (func values, interface methods) and standard-library callees are
// not traversed — the run-time pins in alloc_test.go cover what the static
// view cannot see.
type Noalloc struct{}

// Name implements Analyzer.
func (Noalloc) Name() string { return "noalloc" }

// Run implements Analyzer.
func (Noalloc) Run(prog *Program) []Finding {
	var roots []*FuncInfo
	for _, pk := range prog.Pkgs {
		for _, fi := range funcsOf(prog, pk) {
			if docHasDirective(fi.Decl, "noalloc") {
				roots = append(roots, fi)
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })

	c := &noallocChecker{prog: prog, visited: map[*types.Func]bool{}}
	for _, root := range roots {
		c.scan(root, []string{funcDisplay(root.Obj)})
	}
	return c.findings
}

type noallocChecker struct {
	prog     *Program
	visited  map[*types.Func]bool
	findings []Finding
}

func (c *noallocChecker) report(pk *Package, n ast.Node, chain []string, msg string) {
	if pk.suppressed(c.prog.Fset, n, "coldpath") {
		return
	}
	c.findings = append(c.findings, Finding{
		Pos:      c.prog.Fset.Position(n.Pos()),
		Analyzer: "noalloc",
		Message:  fmt.Sprintf("%s on noalloc path (root %s)", msg, chain[0]),
		Chain:    "path: " + strings.Join(chain, " -> "),
	})
}

// scan walks one function's warm region, reporting allocating constructs
// and descending into module-local static callees.
func (c *noallocChecker) scan(fi *FuncInfo, chain []string) {
	if c.visited[fi.Obj] || fi.Decl.Body == nil {
		return
	}
	c.visited[fi.Obj] = true
	pk := fi.Pkg
	fset := c.prog.Fset

	selfAppend := allowedAppends(pk, fi.Decl.Body)
	localClosure := localCalledClosures(pk, fi.Decl.Body)
	inCallPos := map[ast.Node]bool{}
	var callees []*FuncInfo

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && pk.suppressed(fset, s, "coldpath") {
			return false // cold branch: excluded from the warm region
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if len(n.Results) > 0 && c.isErrorConstruction(pk, n.Results[len(n.Results)-1]) {
				return false // failure path: error construction is off the warm region
			}
		case *ast.GoStmt:
			c.report(pk, n, chain, "`go` statement allocates a goroutine")
			return false
		case *ast.CallExpr:
			inCallPos[n.Fun] = true
			if _, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body is warm and a
				// capture-free literal does not itself allocate, so just
				// descend.
				return true
			}
			c.checkCall(pk, n, chain, selfAppend, &callees)
			return true
		case *ast.FuncLit:
			if !inCallPos[n] {
				if localClosure[n] {
					// Assigned to a local that is only ever called: the
					// closure does not escape (stack-allocated) and its
					// body runs on this warm path — scan it.
					return true
				}
				if capturesOuter(pk, n) {
					c.report(pk, n, chain, "closure captures variables and allocates")
				}
				return false // body runs elsewhere; not this warm path
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					c.report(pk, n, chain, "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pk.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					c.report(pk, n, chain, "slice literal allocates")
				case *types.Map:
					c.report(pk, n, chain, "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pk.Info.Types[n]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						c.report(pk, n, chain, "string concatenation allocates")
					}
				}
			}
		case *ast.SelectorExpr:
			if !inCallPos[n] {
				if sel, ok := pk.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					c.report(pk, n, chain, "method value allocates")
				}
			}
		}
		return true
	})

	for _, callee := range callees {
		c.scan(callee, append(chain, funcDisplay(callee.Obj)))
	}
}

// checkCall classifies one call in the warm region: allocating builtin,
// allocating conversion, forbidden package, or a module-local callee to
// descend into.
func (c *noallocChecker) checkCall(pk *Package, call *ast.CallExpr, chain []string, selfAppend map[*ast.CallExpr]bool, callees *[]*FuncInfo) {
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pk.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(pk, call, chain, "make allocates")
			case "new":
				c.report(pk, call, chain, "new allocates")
			case "append":
				if !selfAppend[call] {
					c.report(pk, call, chain, "append outside an `x = append(x, ...)` reuse pattern allocates")
				}
			}
			return
		}
	}

	// Conversions.
	if tv, ok := pk.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(pk, call, tv.Type, chain)
		return
	}

	callee := pk.calleeOf(call)
	if callee == nil || callee.Pkg() == nil {
		return // dynamic call: not traversed (documented limit)
	}
	switch callee.Pkg().Path() {
	case "fmt":
		c.report(pk, call, chain, "call to fmt."+callee.Name()+" allocates")
		return
	case "errors":
		c.report(pk, call, chain, "call to errors."+callee.Name()+" allocates")
		return
	}
	fi := c.prog.FuncOf(callee)
	if fi == nil {
		return // outside the module: covered by the runtime pins
	}
	if docHasDirective(fi.Decl, "alloc-ok") {
		return // declared cold helper
	}
	if docHasDirective(fi.Decl, "noalloc") {
		return // independently checked as its own root
	}
	if pk.suppressed(c.prog.Fset, call, "coldpath") {
		return
	}
	*callees = append(*callees, fi)
}

func (c *noallocChecker) checkConversion(pk *Package, call *ast.CallExpr, target types.Type, chain []string) {
	arg := call.Args[0]
	atv, ok := pk.Info.Types[arg]
	if !ok || atv.Value != nil {
		return // constant conversions are free
	}
	switch t := target.Underlying().(type) {
	case *types.Basic:
		if t.Info()&types.IsString != 0 {
			if _, ok := atv.Type.Underlying().(*types.Slice); ok {
				c.report(pk, call, chain, "[]byte→string conversion allocates")
			}
		}
	case *types.Slice:
		if b, ok := atv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			c.report(pk, call, chain, "string→slice conversion allocates")
		}
	case *types.Interface:
		if !pointerShaped(atv.Type) {
			c.report(pk, call, chain, "conversion boxes a non-pointer value into an interface")
		}
	}
}

// pointerShaped reports whether boxing a value of type t into an interface
// needs no allocation (the value fits the interface data word directly).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// isErrorConstruction reports whether e builds a fresh error value: a call
// to fmt.Errorf or errors.New, or to a module function annotated
// `//nexus:alloc-ok` (the kernel's abiErr and its kin). A return statement
// carrying one in error position is a failure path, not the warm path.
func (c *noallocChecker) isErrorConstruction(pk *Package, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := pk.calleeOf(call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "fmt":
		return callee.Name() == "Errorf"
	case "errors":
		return callee.Name() == "New"
	}
	if fi := c.prog.FuncOf(callee); fi != nil && docHasDirective(fi.Decl, "alloc-ok") {
		if res := callee.Type().(*types.Signature).Results(); res.Len() > 0 {
			last := res.At(res.Len() - 1).Type()
			if named, ok := last.(*types.Named); ok && named.Obj().Name() == "Error" {
				return true
			}
			if types.Identical(last, types.Universe.Lookup("error").Type()) {
				return true
			}
		}
	}
	return false
}

// localCalledClosures finds `f := func(...) {...}` literals whose variable
// is only ever used in call position inside body: such a closure never
// escapes, so Go keeps it (and its capture record) on the stack.
func localCalledClosures(pk *Package, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	cand := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		fl, ok := unparen(as.Rhs[0]).(*ast.FuncLit)
		if !ok {
			return true
		}
		obj := pk.Info.Defs[id]
		if obj == nil {
			obj = pk.Info.Uses[id] // plain `=` rebind: disqualify below
		}
		if obj != nil {
			if _, dup := cand[obj]; dup {
				delete(cand, obj) // rebound: conservatively give up
			} else {
				cand[obj] = fl
			}
		}
		return true
	})
	if len(cand) == 0 {
		return nil
	}
	// Disqualify any candidate used outside call position.
	calls := map[types.Object]int{}
	uses := map[types.Object]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if obj := pk.Info.Uses[id]; obj != nil {
					if _, ok := cand[obj]; ok {
						calls[obj]++
					}
				}
			}
		case *ast.Ident:
			if obj := pk.Info.Uses[n]; obj != nil {
				if _, ok := cand[obj]; ok {
					uses[obj]++
				}
			}
		}
		return true
	})
	out := map[*ast.FuncLit]bool{}
	for obj, fl := range cand {
		if uses[obj] == calls[obj] {
			out[fl] = true
		}
	}
	return out
}

// allowedAppends marks append calls of the arena-reuse shape
// `x = append(x, ...)` (including `x = append(x[:0], ...)` and
// `*p = append(*p, ...)`): amortized-zero once the buffer is warm.
func allowedAppends(pk *Package, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	allowed := map[*ast.CallExpr]bool{}
	norm := func(e ast.Expr) string {
		return strings.NewReplacer("(", "", ")", "", " ", "").Replace(types.ExprString(e))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		lhs, arg := norm(as.Lhs[0]), norm(call.Args[0])
		if arg == lhs || strings.HasPrefix(arg, lhs+"[") {
			allowed[call] = true
		}
		return true
	})
	return allowed
}

// capturesOuter reports whether a function literal references any variable
// declared outside itself (other than package-level ones): such a closure
// must materialize a capture record on the heap.
func capturesOuter(pk *Package, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := pk.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPkgLevel(v) || !v.Pos().IsValid() {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			found = true
		}
		return true
	})
	return found
}

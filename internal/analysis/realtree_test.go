package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The real-tree tests load the whole module once and share it: the load
// type-checks every package (and its stdlib imports) from source.
var realTree struct {
	once sync.Once
	prog *Program
	err  error
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func loadRealTree(t *testing.T) *Program {
	t.Helper()
	root := moduleRoot(t)
	realTree.once.Do(func() {
		realTree.prog, realTree.err = LoadPackages(root, "./...")
	})
	if realTree.err != nil {
		t.Fatalf("load module: %v", realTree.err)
	}
	return realTree.prog
}

func realSpec(t *testing.T) *LockSpec {
	t.Helper()
	spec, err := ParseLockSpec(filepath.Join(moduleRoot(t), "internal", "analysis", "lockorder.txt"))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestRealTreeClean is the self-test `make lint` relies on: the shipped
// tree must be finding-free under all four analyzers.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow")
	}
	prog := loadRealTree(t)
	analyzers := []Analyzer{Lockorder{Spec: realSpec(t)}, Errnolint{}, Noalloc{}, Atomiclint{}}
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			t.Errorf("%s", f.String())
		}
	}
}

// TestRealTreeSpecRotGuard deletes a declared, exercised edge from the
// real spec and requires the lint to fail: every edge in lockorder.txt is
// load-bearing.
func TestRealTreeSpecRotGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow")
	}
	prog := loadRealTree(t)
	cut := realSpec(t).WithoutEdge("kernel.portRegistry.ownMu", "kernel.portShard.mu")
	findings := Lockorder{Spec: cut}.Run(prog)
	for _, f := range findings {
		if strings.Contains(f.Message, "undeclared lock-order edge kernel.portRegistry.ownMu -> kernel.portShard.mu") {
			return
		}
	}
	t.Fatalf("deleting an exercised edge from lockorder.txt did not fail the lint; findings: %d", len(findings))
}

// TestRealTreeKnownLocks spot-checks the lock-identity scheme against
// fields that anchor the declared DAG.
func TestRealTreeKnownLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow")
	}
	prog := loadRealTree(t)
	known := map[string]bool{}
	for _, pk := range prog.Pkgs {
		collectLockDecls(pk, known)
	}
	for _, id := range []string{
		"kernel.portRegistry.ownMu",
		"kernel.chanTable.revMu",
		"kernel.Peer.pendMu",
		"kernel.AuditLog.mu",
		"ledger.Ledger.mu",
		"nal.consTable.insMu",
		"ssr.Region.mu",
	} {
		if !known[id] {
			t.Errorf("lock %s not found by collectLockDecls (identity scheme drifted?)", id)
		}
	}
}

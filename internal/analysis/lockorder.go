package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder checks every mutex acquisition in the module against the
// declared lock DAG (lockorder.txt): an acquisition made while another
// lock is held is an edge `held -> acquired`, and every such edge must be
// declared — and every declared static edge must still exist, so the spec
// cannot rot. Locks are identified by their declaring struct and field
// (`pkg.Type.field`, so all shards of a striped registry share one
// identity) or as `pkg.var` for package-level mutexes.
//
// Held sets are computed by a source-order walk of each function body
// (Lock/RLock acquire, Unlock/RUnlock release, `defer Unlock` holds to
// function exit) and propagated through the *intra-package* static call
// graph: a call made while holding L contributes an edge L -> M for every
// lock M the callee (transitively) acquires. Known soundness limits —
// cross-package calls, calls through interfaces or stored func values, and
// locks reached through local aliases — are documented in DESIGN.md;
// dynamically established edges are declared with the `dynamic` attribute.
type Lockorder struct {
	Spec *LockSpec
}

// Name implements Analyzer.
func (Lockorder) Name() string { return "lockorder" }

const maxEdgeReports = 3 // occurrences reported per undeclared edge

type obsEdge struct {
	from, to string
	pos      token.Pos
	chain    string
}

type heldLock struct {
	id  string
	pos token.Pos
}

type loCall struct {
	callee *types.Func
	held   []heldLock
	pos    token.Pos
}

type loSummary struct {
	fn       *types.Func
	acquires map[string]string // lock id -> how (trace for -v)
	aPos     map[string]token.Pos
	calls    []loCall
}

// Run implements Analyzer.
func (l Lockorder) Run(prog *Program) []Finding {
	var edges []obsEdge
	known := map[string]bool{}

	for _, pk := range prog.Pkgs {
		collectLockDecls(pk, known)
		sums := map[*types.Func]*loSummary{}
		for _, fi := range funcsOf(prog, pk) {
			w := &loWalker{prog: prog, pk: pk, sum: &loSummary{
				fn:       fi.Obj,
				acquires: map[string]string{},
				aPos:     map[string]token.Pos{},
			}}
			w.edges = &edges
			if fi.Decl.Body != nil {
				w.block(fi.Decl.Body)
			}
			sums[fi.Obj] = w.sum
		}

		// Transitive acquisitions over the intra-package call graph.
		for changed := true; changed; {
			changed = false
			for _, sum := range sums {
				for _, c := range sum.calls {
					callee := sums[c.callee]
					if callee == nil {
						continue
					}
					for id, via := range callee.acquires {
						if _, ok := sum.acquires[id]; !ok {
							sum.acquires[id] = via
							sum.aPos[id] = callee.aPos[id]
							changed = true
						}
					}
				}
			}
		}

		// Edges through calls: held at the call site × transitive
		// acquisitions of the callee.
		for _, sum := range sums {
			for _, c := range sum.calls {
				if len(c.held) == 0 {
					continue
				}
				callee := sums[c.callee]
				if callee == nil {
					continue
				}
				for id, via := range callee.acquires {
					for _, h := range c.held {
						edges = append(edges, obsEdge{
							from: h.id, to: id, pos: c.pos,
							chain: fmt.Sprintf("holding %s (acquired at %s) across call to %s; %s",
								h.id, prog.Fset.Position(h.pos), funcDisplay(c.callee), via),
						})
					}
				}
			}
		}
	}

	return l.report(prog, edges, known)
}

// report reconciles observed edges with the declared DAG.
func (l Lockorder) report(prog *Program, edges []obsEdge, known map[string]bool) []Finding {
	var fs []Finding
	specPos := func(line int) token.Position {
		return token.Position{Filename: l.Spec.File, Line: line}
	}

	leaves := map[string]int{}
	for _, lf := range l.Spec.Leaves {
		leaves[lf.Lock] = lf.Line
	}

	// Undeclared observed edges (and edges out of declared leaves).
	type edgeKey struct{ from, to string }
	seen := map[edgeKey]int{}
	observed := map[edgeKey]bool{}
	for _, e := range edges {
		k := edgeKey{e.from, e.to}
		observed[k] = true
		if line, isLeaf := leaves[e.from]; isLeaf {
			if seen[k] == 0 {
				fs = append(fs, Finding{
					Pos:      prog.Fset.Position(e.pos),
					Analyzer: l.Name(),
					Message: fmt.Sprintf("%s is declared leaf (lockorder.txt:%d) but %s is acquired while it is held",
						e.from, line, e.to),
					Chain: e.chain,
				})
			}
			seen[k]++
			continue
		}
		if l.Spec.Allows(e.from, e.to) {
			continue
		}
		if seen[k] < maxEdgeReports {
			fs = append(fs, Finding{
				Pos:      prog.Fset.Position(e.pos),
				Analyzer: l.Name(),
				Message: fmt.Sprintf("undeclared lock-order edge %s -> %s (declare it in lockorder.txt if intended)",
					e.from, e.to),
				Chain: e.chain,
			})
		}
		seen[k]++
	}

	// Spec rot: declared static edges must be observed, and every endpoint
	// must still name a real lock. Declarations naming a package outside
	// the loaded set are skipped, so a partial run (`nexuslint -run
	// lockorder ./internal/kernel/...`) checks only the edges it can see;
	// `make lint` always loads the whole module.
	loaded := map[string]bool{}
	for _, pk := range prog.Pkgs {
		loaded[pk.Pkg.Name()] = true
	}
	pkgOf := func(id string) string {
		if i := strings.IndexByte(id, '.'); i > 0 {
			return id[:i]
		}
		return id
	}
	for _, e := range l.Spec.Edges {
		if !loaded[pkgOf(e.From)] || !loaded[pkgOf(e.To)] {
			continue
		}
		for _, end := range []string{e.From, e.To} {
			if !known[end] {
				fs = append(fs, Finding{
					Pos:      specPos(e.Line),
					Analyzer: l.Name(),
					Message:  fmt.Sprintf("unknown lock %s in lockorder.txt (field renamed or removed?)", end),
				})
			}
		}
		if e.Dynamic {
			continue
		}
		if !observed[edgeKey{e.From, e.To}] {
			fs = append(fs, Finding{
				Pos:      specPos(e.Line),
				Analyzer: l.Name(),
				Message: fmt.Sprintf("declared edge %s -> %s is no longer exercised by any static path (remove it or mark it dynamic)",
					e.From, e.To),
			})
		}
		if _, isLeaf := leaves[e.From]; isLeaf {
			fs = append(fs, Finding{
				Pos:      specPos(e.Line),
				Analyzer: l.Name(),
				Message:  fmt.Sprintf("%s is declared both leaf and edge source", e.From),
			})
		}
	}
	for _, lf := range l.Spec.Leaves {
		if !loaded[pkgOf(lf.Lock)] {
			continue
		}
		if !known[lf.Lock] {
			fs = append(fs, Finding{
				Pos:      specPos(lf.Line),
				Analyzer: l.Name(),
				Message:  fmt.Sprintf("unknown lock %s in lockorder.txt (field renamed or removed?)", lf.Lock),
			})
		}
	}

	// The declared graph must stay a DAG.
	if cyc := l.Spec.cycle(); cyc != "" {
		fs = append(fs, Finding{
			Pos:      specPos(1),
			Analyzer: l.Name(),
			Message:  "declared lock graph has a cycle: " + cyc,
		})
	}
	return fs
}

// collectLockDecls records every nameable mutex in the package: struct
// fields of type sync.Mutex/RWMutex and package-level mutex vars.
func collectLockDecls(pk *Package, known map[string]bool) {
	scope := pk.Pkg.Scope()
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.TypeName:
			n, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := n.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if isSyncLock(st.Field(i).Type()) {
					known[pk.Pkg.Name()+"."+n.Obj().Name()+"."+st.Field(i).Name()] = true
				}
			}
		case *types.Var:
			if isSyncLock(obj.Type()) {
				known[pk.Pkg.Name()+"."+name] = true
			}
		}
	}
}

// funcsOf returns the module function declarations of one package in
// stable order.
func funcsOf(prog *Program, pk *Package) []*FuncInfo {
	var fis []*FuncInfo
	for _, fi := range prog.funcs {
		if fi.Pkg == pk {
			fis = append(fis, fi)
		}
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].Decl.Pos() < fis[j].Decl.Pos() })
	return fis
}

// ---- per-function walker ------------------------------------------------

var lockAcquire = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

type loWalker struct {
	prog  *Program
	pk    *Package
	sum   *loSummary
	held  []heldLock
	edges *[]obsEdge
}

func (w *loWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *loWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.block(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.block(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.block(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, bs := range cc.Body {
				w.stmt(bs)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, bs := range cc.Body {
				w.stmt(bs)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm)
			for _, bs := range cc.Body {
				w.stmt(bs)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeferStmt:
		w.deferCall(s.Call)
	case *ast.GoStmt:
		// A goroutine body runs concurrently: it inherits no held set, and
		// its acquisitions do not happen during this frame.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.separate(fl)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// deferCall handles `defer f(...)`: a deferred Unlock keeps the lock held
// to function exit; any other deferred body runs at exit, outside the
// current held set.
func (w *loWalker) deferCall(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a) // arguments evaluate at defer time
	}
	if kind, id := w.lockCall(call); kind != "" {
		_ = id
		return // defer Unlock: still held; defer Lock: ignored
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		w.separate(fl)
	}
}

// separate analyzes a function literal as its own frame with an empty held
// set: its internal edges count, its acquisitions do not leak to the
// enclosing frame.
func (w *loWalker) separate(fl *ast.FuncLit) {
	nw := &loWalker{prog: w.prog, pk: w.pk, edges: w.edges, sum: &loSummary{
		fn:       w.sum.fn,
		acquires: map[string]string{},
		aPos:     map[string]token.Pos{},
	}}
	nw.block(fl.Body)
}

func (w *loWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		w.separate(e)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	}
}

// lockCall classifies a call as a sync.Mutex/RWMutex acquire or release
// and names the lock; returns ("", "") for anything else.
func (w *loWalker) lockCall(call *ast.CallExpr) (kind, id string) {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := fun.Sel.Name
	if !lockAcquire[name] && !lockRelease[name] {
		return "", ""
	}
	sel, ok := w.pk.Info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return "", ""
	}
	m, ok := sel.Obj().(*types.Func)
	if !ok {
		return "", ""
	}
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !isSyncLock(sig.Recv().Type()) {
		return "", ""
	}
	if idx := sel.Index(); len(idx) > 1 {
		// Method promoted through an embedded mutex field: the lock is the
		// embedded field itself.
		id = fieldIdentity(sel.Recv(), idx[:len(idx)-1])
	} else {
		id = w.pk.exprIdentity(fun.X)
	}
	if lockAcquire[name] {
		return "acquire", id
	}
	return "release", id
}

func (w *loWalker) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	if fun, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(fun.X) // a receiver chain may itself contain calls
	}

	if kind, id := w.lockCall(call); kind != "" {
		if id == "" {
			return // unnameable lock (local alias): documented limit
		}
		switch kind {
		case "acquire":
			for _, h := range w.held {
				*w.edges = append(*w.edges, obsEdge{
					from: h.id, to: id, pos: call.Pos(),
					chain: fmt.Sprintf("holding %s (acquired at %s) at this acquisition",
						h.id, w.prog.Fset.Position(h.pos)),
				})
			}
			if _, ok := w.sum.acquires[id]; !ok {
				w.sum.acquires[id] = fmt.Sprintf("%s acquires %s at %s",
					funcDisplay(w.sum.fn), id, w.prog.Fset.Position(call.Pos()))
				w.sum.aPos[id] = call.Pos()
			}
			w.held = append(w.held, heldLock{id: id, pos: call.Pos()})
		case "release":
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i].id == id {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}

	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: runs in this frame, under the
		// current held set.
		w.block(fl.Body)
		return
	}

	callee := w.pk.calleeOf(call)
	if callee == nil {
		return
	}
	fi := w.prog.FuncOf(callee)
	if fi == nil || fi.Pkg != w.pk {
		return // cross-package or bodiless: outside the intra-package graph
	}
	held := make([]heldLock, len(w.held))
	copy(held, w.held)
	w.sum.calls = append(w.sum.calls, loCall{callee: callee, held: held, pos: call.Pos()})
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Errnolint enforces the ABI error taxonomy: on error surfaces — exported
// methods of Session, functions annotated `//nexus:errno`, and exported
// error-returning functions of the module root package — every error must
// be a *kernel.Error (built by abiErr/&Error{...}) or wrap a classified
// package-level sentinel, so ErrnoOf can always recover exactly one errno
// class. Raw `errors.New(...)` calls and `fmt.Errorf(...)` calls that do
// not wrap a sentinel are findings. A deliberate exception carries
// `//nexus:errno-ok` on the offending line.
//
// The check is construction-site based: it does not trace error values
// through assignments or across calls (helpers that build ABI errors are
// annotated `//nexus:errno` themselves). That keeps it sound against the
// failure it hunts — a raw, class-less error born directly on the surface.
type Errnolint struct{}

// Name implements Analyzer.
func (Errnolint) Name() string { return "errnolint" }

// Run implements Analyzer.
func (Errnolint) Run(prog *Program) []Finding {
	var fs []Finding
	for _, pk := range prog.Pkgs {
		isRoot := pk.Path == prog.ModulePath && prog.ModulePath != ""
		for _, fi := range funcsOf(prog, pk) {
			if !errnoSurface(fi, isRoot) || fi.Decl.Body == nil {
				continue
			}
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := pk.calleeOf(call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				raw := ""
				switch {
				case callee.Pkg().Path() == "errors" && callee.Name() == "New":
					raw = "errors.New"
				case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
					if wrapsSentinel(pk, call) {
						return true
					}
					raw = "fmt.Errorf"
				default:
					return true
				}
				if pk.suppressed(prog.Fset, call, "errno-ok") {
					return true
				}
				fs = append(fs, Finding{
					Pos:      prog.Fset.Position(call.Pos()),
					Analyzer: "errnolint",
					Message: fmt.Sprintf("raw %s on ABI error surface %s: return a *kernel.Error (abiErr) or wrap a classified sentinel",
						raw, funcDisplay(fi.Obj)),
				})
				return true
			})
		}
	}
	return fs
}

// errnoSurface reports whether a function is part of the ABI error
// surface.
func errnoSurface(fi *FuncInfo, isRootPkg bool) bool {
	if !returnsError(fi.Obj) {
		return false
	}
	if docHasDirective(fi.Decl, "errno") {
		return true
	}
	if !fi.Obj.Exported() {
		return false
	}
	if isRootPkg {
		return true
	}
	sig, _ := fi.Obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil && n.Obj().Name() == "Session" {
			return true
		}
	}
	return false
}

func returnsError(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if isErrorType(t) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	if n, ok := t.(*types.Named); ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil {
		return true
	}
	if i, ok := t.Underlying().(*types.Interface); ok {
		return i.NumMethods() == 1 && i.Method(0).Name() == "Error"
	}
	// *kernel.Error and friends satisfy the surface trivially.
	if n := namedOf(t); n != nil && n.Obj().Name() == "Error" {
		return true
	}
	return false
}

// wrapsSentinel reports whether a fmt.Errorf call carries at least one
// argument that is already classified: a package-level `Err*` sentinel of
// a module package, or a value of a named `Error` type (e.g.
// *kernel.Error).
func wrapsSentinel(pk *Package, call *ast.CallExpr) bool {
	for _, a := range call.Args[1:] {
		switch e := unparen(a).(type) {
		case *ast.Ident:
			if sentinelVar(pk.Info.Uses[e]) {
				return true
			}
		case *ast.SelectorExpr:
			if sentinelVar(pk.Info.Uses[e.Sel]) {
				return true
			}
		}
		if tv, ok := pk.Info.Types[a]; ok {
			if n := namedOf(tv.Type); n != nil && n.Obj().Name() == "Error" && n.Obj().Pkg() != nil {
				return true
			}
		}
	}
	return false
}

func sentinelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || !isPkgLevel(v) {
		return false
	}
	if len(v.Name()) < 4 || v.Name()[:3] != "Err" && v.Name()[:3] != "err" {
		return false
	}
	return isErrorIface(v.Type())
}

func isErrorIface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.NumMethods() == 1 && i.Method(0).Name() == "Error"
}

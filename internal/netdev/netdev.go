// Package netdev simulates the Nexus networking substrate of §4.1/§5.3: a
// network interface card, a device driver that runs either in the kernel or
// as a user-level process behind IPC, a minimal UDP/IP codec (the user-level
// protocol stack), and a UDP echo server used to measure interpositioning
// overhead (Figure 7).
//
// The packet path mirrors the paper's configurations:
//
//	kern-int  driver answers inside the interrupt handler, kernel mode
//	user-int  driver answers inside the handler, user mode (marshal cost)
//	kern-drv  packets cross IPC to a separate echo server process
//	user-drv  user driver + IPC + user-level UDP/IP stack
//	kref/uref a kernel- or user-level DDRM monitors the driver's channel
package netdev

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/refmon"
)

// Errors.
var (
	ErrShortPacket = errors.New("netdev: packet too short")
	ErrChecksum    = errors.New("netdev: bad checksum")
)

// Packet is a parsed UDP/IP datagram.
type Packet struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Payload          []byte
}

// headerLen is the encoded header size: addresses, ports, length, checksum.
const headerLen = 4 + 4 + 2 + 2 + 2 + 2

// Encode serializes a packet, computing the checksum over header and
// payload — the real per-packet work a protocol stack performs.
func Encode(p *Packet) []byte {
	buf := make([]byte, headerLen+len(p.Payload))
	binary.BigEndian.PutUint32(buf[0:], p.Src)
	binary.BigEndian.PutUint32(buf[4:], p.Dst)
	binary.BigEndian.PutUint16(buf[8:], p.SrcPort)
	binary.BigEndian.PutUint16(buf[10:], p.DstPort)
	binary.BigEndian.PutUint16(buf[12:], uint16(len(p.Payload)))
	copy(buf[headerLen:], p.Payload)
	binary.BigEndian.PutUint16(buf[14:], checksum(buf))
	return buf
}

// Decode parses and verifies a datagram.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < headerLen {
		return nil, ErrShortPacket
	}
	want := binary.BigEndian.Uint16(buf[14:])
	cp := make([]byte, len(buf))
	copy(cp, buf)
	binary.BigEndian.PutUint16(cp[14:], 0)
	if checksum(cp) != want {
		return nil, ErrChecksum
	}
	n := int(binary.BigEndian.Uint16(buf[12:]))
	if len(buf) < headerLen+n {
		return nil, ErrShortPacket
	}
	return &Packet{
		Src:     binary.BigEndian.Uint32(buf[0:]),
		Dst:     binary.BigEndian.Uint32(buf[4:]),
		SrcPort: binary.BigEndian.Uint16(buf[8:]),
		DstPort: binary.BigEndian.Uint16(buf[10:]),
		Payload: buf[headerLen : headerLen+n],
	}, nil
}

// checksum is a 16-bit ones-complement sum, as in IP.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// RefMonKind selects the reference-monitor configuration of Figure 7.
type RefMonKind int

// Reference monitor configurations.
const (
	RefNone RefMonKind = iota
	RefKernel
	RefUser
)

// Config selects one of the Figure 7 packet paths.
type Config struct {
	UserDriver bool       // driver in user space (IPC + marshal per packet)
	ServerApp  bool       // echo served by a separate process over IPC
	RefMon     RefMonKind // DDRM on the driver channel
	Cache      bool       // reference-monitor decision caching
}

// EchoPath is a runnable packet path on a Nexus kernel.
type EchoPath struct {
	cfg     Config
	k       *kernel.Kernel
	driver  *kernel.Session
	server  *kernel.Session
	drvCap  kernel.Cap // driver's channel handle to the server port
	portID  int
	monitor *refmon.Monitor
	source  *kernel.Session
}

// NewEchoPath wires up the configured path on the given kernel.
func NewEchoPath(k *kernel.Kernel, cfg Config) (*EchoPath, error) {
	e := &EchoPath{cfg: cfg, k: k}
	var err error
	if e.driver, err = k.NewSession([]byte("e1000-driver")); err != nil {
		return nil, err
	}
	if e.source, err = k.NewSession([]byte("packet-source")); err != nil {
		return nil, err
	}
	if cfg.ServerApp {
		if e.server, err = k.NewSession([]byte("udp-echo")); err != nil {
			return nil, err
		}
		srvCap, err := e.server.Listen(func(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
			// The echo server runs the user-level UDP/IP stack: decode,
			// swap endpoints, re-encode.
			pkt, err := Decode(m.Args[0])
			if err != nil {
				return nil, err
			}
			return Encode(&Packet{
				Src: pkt.Dst, Dst: pkt.Src,
				SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
				Payload: pkt.Payload,
			}), nil
		})
		if err != nil {
			return nil, err
		}
		if e.portID, err = e.server.PortOf(srvCap); err != nil {
			return nil, err
		}
		if e.drvCap, err = e.driver.Open(e.portID); err != nil {
			return nil, err
		}
		if cfg.RefMon != RefNone {
			policy := &refmon.Policy{
				Ops:     map[string]bool{"deliver": true},
				Objects: map[string]bool{fmt.Sprintf("nic:%d", e.portID): true},
				// Full (uncached) policy evaluation performs deep packet
				// inspection: decode the frame and verify its checksum, the
				// per-packet work that makes reference-monitor cache misses
				// expensive (Figure 7's min/max gap).
				ForbidPayload: func(wire []byte) bool {
					m, err := kernel.DecodeWire(wire)
					if err != nil || len(m.Args) != 1 {
						return true
					}
					_, err = Decode(m.Args[0])
					return err != nil
				},
			}
			e.monitor = refmon.NewMonitor(policy, cfg.RefMon == RefUser)
			e.monitor.SetCaching(cfg.Cache)
			if _, err := e.driver.Interpose(e.portID, e.monitor); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// Process runs one packet through the configured path and returns the echo.
// This is the unit of work Figure 7 measures in packets per second.
func (e *EchoPath) Process(wire []byte) ([]byte, error) {
	// Interrupt handler: the driver receives the frame from the NIC.
	if e.cfg.UserDriver {
		// A user-level driver receives the frame across the kernel/user
		// boundary: the kernel copies it out (grant pages + copy).
		cp := make([]byte, len(wire))
		copy(cp, wire)
		wire = cp
	}
	if !e.cfg.ServerApp {
		// Respond within the interrupt handler: decode, swap, encode.
		pkt, err := Decode(wire)
		if err != nil {
			return nil, err
		}
		return Encode(&Packet{
			Src: pkt.Dst, Dst: pkt.Src,
			SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
			Payload: pkt.Payload,
		}), nil
	}
	// Deliver to the echo server over IPC (routing + scheduling +
	// marshaling happen inside Call).
	return e.driver.Call(e.drvCap, &kernel.Msg{
		Op:   "deliver",
		Obj:  fmt.Sprintf("nic:%d", e.portID),
		Args: [][]byte{wire},
	})
}

// ProcessBatch runs a burst of frames through one batched submission: the
// interrupt-coalescing shape, where the driver drains its ring into a
// single kernel entry instead of one Call per packet.
func (e *EchoPath) ProcessBatch(wires [][]byte) ([][]byte, error) {
	if !e.cfg.ServerApp {
		out := make([][]byte, 0, len(wires))
		for _, w := range wires {
			o, err := e.Process(w)
			if err != nil {
				return nil, err
			}
			out = append(out, o)
		}
		return out, nil
	}
	obj := fmt.Sprintf("nic:%d", e.portID)
	subs := make([]kernel.Sub, len(wires))
	for i, w := range wires {
		subs[i] = kernel.Sub{Cap: e.drvCap, Op: "deliver", Obj: obj, Args: [][]byte{w}}
	}
	comps, err := e.driver.Submit(context.Background(), subs, nil)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(comps))
	for i, c := range comps {
		if c.Err != nil {
			return nil, c.Err
		}
		out[i] = c.Out
	}
	return out, nil
}

// Monitor exposes the installed reference monitor, if any.
func (e *EchoPath) Monitor() *refmon.Monitor { return e.monitor }

// Driver returns the driver session.
func (e *EchoPath) Driver() *kernel.Session { return e.driver }

// PortID returns the echo server port's public name (0 without ServerApp).
func (e *EchoPath) PortID() int { return e.portID }

// MakeFrame builds a test datagram with an n-byte payload.
func MakeFrame(n int) []byte {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	return Encode(&Packet{
		Src: 0x0A000001, Dst: 0x0A000002,
		SrcPort: 5353, DstPort: 7,
		Payload: payload,
	})
}

package netdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func bootK(t *testing.T) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCodecRoundTrip(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Payload: []byte("payload")}
	back, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.Src != 1 || back.Dst != 2 || back.SrcPort != 3 || back.DstPort != 4 ||
		!bytes.Equal(back.Payload, p.Payload) {
		t.Errorf("round trip = %+v", back)
	}
}

func TestCodecDetectsCorruption(t *testing.T) {
	wire := MakeFrame(64)
	wire[20] ^= 0xFF
	if _, err := Decode(wire); !errors.Is(err, ErrChecksum) {
		t.Errorf("want ErrChecksum, got %v", err)
	}
	if _, err := Decode(wire[:4]); !errors.Is(err, ErrShortPacket) {
		t.Errorf("want ErrShortPacket, got %v", err)
	}
}

func TestQuickCodec(t *testing.T) {
	prop := func(src, dst uint32, sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := &Packet{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Payload: payload}
		back, err := Decode(Encode(p))
		return err == nil && bytes.Equal(back.Payload, payload) && back.Src == src
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllEchoConfigurations(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"kern-int", Config{}},
		{"user-int", Config{UserDriver: true}},
		{"kern-drv", Config{ServerApp: true}},
		{"user-drv", Config{UserDriver: true, ServerApp: true}},
		{"kref-cache", Config{ServerApp: true, RefMon: RefKernel, Cache: true}},
		{"kref-nocache", Config{ServerApp: true, RefMon: RefKernel}},
		{"uref-cache", Config{UserDriver: true, ServerApp: true, RefMon: RefUser, Cache: true}},
		{"uref-nocache", Config{UserDriver: true, ServerApp: true, RefMon: RefUser}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := bootK(t)
			e, err := NewEchoPath(k, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			frame := MakeFrame(100)
			out, err := e.Process(frame)
			if err != nil {
				t.Fatal(err)
			}
			pkt, err := Decode(out)
			if err != nil {
				t.Fatal(err)
			}
			// Echo swaps endpoints.
			if pkt.Src != 0x0A000002 || pkt.Dst != 0x0A000001 || pkt.DstPort != 5353 {
				t.Errorf("echo headers wrong: %+v", pkt)
			}
			if len(pkt.Payload) != 100 {
				t.Errorf("payload length = %d", len(pkt.Payload))
			}
		})
	}
}

func TestRefMonCaching(t *testing.T) {
	k := bootK(t)
	e, err := NewEchoPath(k, Config{ServerApp: true, RefMon: RefKernel, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	frame := MakeFrame(100)
	for i := 0; i < 10; i++ {
		if _, err := e.Process(frame); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := e.Monitor().Stats()
	if misses != 1 || hits != 9 {
		t.Errorf("cache stats: hits=%d misses=%d", hits, misses)
	}
	// Without caching, every packet is a full policy evaluation.
	e.Monitor().SetCaching(false)
	for i := 0; i < 5; i++ {
		e.Process(frame)
	}
	_, misses2, _ := e.Monitor().Stats()
	if misses2 != misses+5 {
		t.Errorf("uncached misses = %d, want %d", misses2, misses+5)
	}
}

func TestRefMonBlocksForeignTraffic(t *testing.T) {
	k := bootK(t)
	e, err := NewEchoPath(k, Config{ServerApp: true, RefMon: RefKernel, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	// The DDRM only allows "deliver" to the bound NIC channel; a rogue
	// driver op is blocked.
	_, err = e.Driver().Call(mustOpenPort(t, e), &kernel.Msg{
		Op: "exfiltrate", Obj: "nic:999", Args: [][]byte{MakeFrame(10)},
	})
	if !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("rogue op: want ErrDenied, got %v", err)
	}
}

// mustOpenPort opens a fresh driver channel to the echo-server port.
func mustOpenPort(t *testing.T, e *EchoPath) kernel.Cap {
	t.Helper()
	c, err := e.Driver().Open(e.PortID())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestProcessBatchMatchesSingle drives the interrupt-coalescing batch path
// and checks it echoes exactly what the per-packet path does.
func TestProcessBatchMatchesSingle(t *testing.T) {
	k := bootK(t)
	e, err := NewEchoPath(k, Config{ServerApp: true})
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{MakeFrame(16), MakeFrame(64), MakeFrame(256)}
	batch, err := e.ProcessBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		single, err := e.Process(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, batch[i]) {
			t.Errorf("frame %d: batch echo differs from single echo", i)
		}
	}
}

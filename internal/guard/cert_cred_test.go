package guard

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// certWorld extends the guard test world with an external signer and a
// certificate credential proving the goal.
func certWorld(t *testing.T) (*world, *cert.Certificate, nal.Formula) {
	t.Helper()
	w := newWorld(t)
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cert.Sign(cert.Statement{
		Formula: "wantsAccess",
		Serial:  1,
		Issued:  time.Unix(1700000000, 0),
	}, key)
	if err != nil {
		t.Fatal(err)
	}
	label, err := c.ToLabel() // key:<fp> says wantsAccess
	if err != nil {
		t.Fatal(err)
	}
	goal := label
	if err := w.k.SetGoal(w.srv, "read", "obj", goal, nil); err != nil {
		t.Fatal(err)
	}
	w.k.SetProof(w.cli, "read", "obj", proof.Assume(0, label),
		[]kernel.Credential{{Cert: c}})
	return w, c, label
}

// TestCertCredentialPreVerified: the first check verifies the RSA
// signature; every later check resolves the certificate with a cache hit.
func TestCertCredentialPreVerified(t *testing.T) {
	w, _, _ := certWorld(t)
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("first call: %v", err)
	}
	s0 := w.k.CertCache().Stats()
	if s0.Misses != 1 {
		t.Fatalf("first check: %+v, want exactly one verification", s0)
	}
	for i := 0; i < 3; i++ {
		if err := w.call("read", "obj"); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}
	s1 := w.k.CertCache().Stats()
	if s1.Misses != 1 {
		t.Errorf("warm checks re-verified the certificate: %+v", s1)
	}
	if s1.Hits < 3 {
		t.Errorf("warm checks did not hit the pre-verification cache: %+v", s1)
	}
}

// TestCertRevocationForcesRecheck is the invalidation-correctness
// regression: a revoked credential denies the very next authorization, even
// though the guard's proof cache and the subproof memo are warm, because
// certificate-backed decisions never enter the kernel decision cache.
func TestCertRevocationForcesRecheck(t *testing.T) {
	w, c, _ := certWorld(t)
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	w.k.CertCache().Revoke(c.Fingerprint())
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Fatalf("post-revocation: want ErrDenied, got %v", err)
	}
}

// TestSignerRevocationForcesRecheck does the same via the signing key.
func TestSignerRevocationForcesRecheck(t *testing.T) {
	w, c, _ := certWorld(t)
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	signer, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	w.k.CertCache().RevokeSigner(signer)
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Fatalf("post-revocation: want ErrDenied, got %v", err)
	}
}

// TestGoalChangeForcesRecheck: replacing the goal formula invalidates
// cached decisions and the registered proof must discharge the new goal.
func TestGoalChangeForcesRecheck(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse("?S says wantsAccess")
	if err := w.k.SetGoal(w.srv, "read", "obj", goal, nil); err != nil {
		t.Fatal(err)
	}
	cred := nal.Says{P: w.cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
	w.k.SetProof(w.cli, "read", "obj", proof.Assume(0, cred),
		[]kernel.Credential{{Inline: cred}})
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("original goal: %v", err)
	}
	// Tighten the goal; the warm decision must not survive.
	if err := w.k.SetGoal(w.srv, "read", "obj", nal.MustParse("?S says elevated"), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Fatalf("tightened goal: want ErrDenied, got %v", err)
	}
	// And back: allowed again.
	if err := w.k.SetGoal(w.srv, "read", "obj", goal, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("restored goal: %v", err)
	}
}

// TestDuplicateCertsResolveOnce: presenting the same certificate twice in
// one credential list verifies (and probes the cache) once, and the two
// positions resolve to the same label.
func TestDuplicateCertsResolveOnce(t *testing.T) {
	w := newWorld(t)
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	c, err := cert.Sign(cert.Statement{Formula: "wantsAccess", Serial: 1,
		Issued: time.Unix(1700000000, 0)}, key)
	if err != nil {
		t.Fatal(err)
	}
	label, _ := c.ToLabel()
	if err := w.k.SetGoal(w.srv, "read", "obj", label, nil); err != nil {
		t.Fatal(err)
	}
	// Proof imports credential #1 — the duplicate — so dedupe must preserve
	// positions, not collapse the list.
	w.k.SetProof(w.cli, "read", "obj", proof.Assume(1, label),
		[]kernel.Credential{{Cert: c}, {Cert: c}})
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("duplicate-cert proof: %v", err)
	}
	s := w.k.CertCache().Stats()
	if s.Lookups != 1 || s.Misses != 1 {
		t.Errorf("duplicate certificate probed the cache twice: %+v", s)
	}
}

package guard

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

type world struct {
	k   *kernel.Kernel
	g   *Generic
	srv *kernel.Process
	cli *kernel.Process
	pt  *kernel.Port
}

func newWorld(t *testing.T) *world {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := New(k)
	k.SetGuard(g)
	srv, _ := k.CreateProcess(0, []byte("server"))
	cli, _ := k.CreateProcess(0, []byte("client"))
	pt, _ := k.CreatePort(srv, func(kernel.Caller, *kernel.Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	return &world{k: k, g: g, srv: srv, cli: cli, pt: pt}
}

func (w *world) call(op, obj string) error {
	_, err := w.k.Call(w.cli, w.pt.ID, &kernel.Msg{Op: op, Obj: obj})
	return err
}

func TestNoProofDenied(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse("?S says wantsAccess")
	if err := w.k.SetGoal(w.srv, "read", "obj", goal, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("no proof: want ErrDenied, got %v", err)
	}
}

func TestPassWithInlineCredential(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse("?S says wantsAccess")
	if err := w.k.SetGoal(w.srv, "read", "obj", goal, nil); err != nil {
		t.Fatal(err)
	}
	cred := nal.Says{P: w.cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
	p := proof.Assume(0, cred)
	w.k.SetProof(w.cli, "read", "obj", p, []kernel.Credential{{Inline: cred}})
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("pass case: %v", err)
	}
	// Decision cached: repeated calls don't upcall.
	before := w.k.GuardUpcalls()
	for i := 0; i < 5; i++ {
		if err := w.call("read", "obj"); err != nil {
			t.Fatal(err)
		}
	}
	if w.k.GuardUpcalls() != before {
		t.Error("cacheable pass must not upcall again")
	}
}

func TestUnsoundProofDenied(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse("?S says wantsAccess")
	w.k.SetGoal(w.srv, "read", "obj", goal, nil)
	// Proof concludes the wrong formula.
	cred := nal.MustParse("Other says wantsAccess")
	p := proof.Assume(0, cred)
	w.k.SetProof(w.cli, "read", "obj", p, []kernel.Credential{{Inline: cred}})
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("unsound proof: want ErrDenied, got %v", err)
	}
}

func TestMissingCredentialDenied(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse("?S says wantsAccess")
	w.k.SetGoal(w.srv, "read", "obj", goal, nil)
	cred := nal.Says{P: w.cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
	p := proof.Assume(0, cred)
	w.k.SetProof(w.cli, "read", "obj", p, nil) // proof references cred #0, none given
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("missing cred: want ErrDenied, got %v", err)
	}
}

func TestLabelstoreRefCredential(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse("?S says wantsAccess")
	w.k.SetGoal(w.srv, "read", "obj", goal, nil)
	l, err := w.cli.Labels.Say("wantsAccess")
	if err != nil {
		t.Fatal(err)
	}
	cred := l.Formula
	p := proof.Assume(0, cred)
	w.k.SetProof(w.cli, "read", "obj", p,
		[]kernel.Credential{{Ref: &kernel.LabelRef{PID: w.cli.PID, Handle: l.Handle}}})
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("ref credential: %v", err)
	}
	// Store-referenced credentials are not kernel-cacheable: upcalls repeat.
	before := w.k.GuardUpcalls()
	w.call("read", "obj")
	if w.k.GuardUpcalls() == before {
		t.Error("ref credential decision must not be kernel-cached")
	}
	// Deleting the label revokes access on the next check.
	w.cli.Labels.Delete(l.Handle)
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("deleted label: want ErrDenied, got %v", err)
	}
}

func TestEmbeddedAuthority(t *testing.T) {
	w := newWorld(t)
	affirm := true
	ch := w.g.RegisterEmbedded("clock", func(f nal.Formula) bool {
		return affirm && f.String() == "NTP says TimeNow < @2026-03-19"
	})
	goal := nal.MustParse("NTP says TimeNow < @2026-03-19")
	w.k.SetGoal(w.srv, "read", "obj", goal, nil)
	p := &proof.Proof{Steps: []proof.Step{
		{Rule: proof.RuleAuthority, Channel: ch, F: goal},
	}}
	w.k.SetProof(w.cli, "read", "obj", p, nil)
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("embedded authority: %v", err)
	}
	// Non-cacheable: every call re-upcalls and re-queries.
	before := w.k.GuardUpcalls()
	w.call("read", "obj")
	if w.k.GuardUpcalls() == before {
		t.Error("authority decision must not be kernel-cached")
	}
	// The guard's proof cache still avoids structural re-checking.
	hits, _, _ := w.g.Stats()
	if hits == 0 {
		t.Error("proof cache should hit on repeat evaluation")
	}
	// Authority flips: access revoked immediately.
	affirm = false
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("flipped authority: want ErrDenied, got %v", err)
	}
}

func TestExternalAuthority(t *testing.T) {
	w := newWorld(t)
	ap, _ := w.k.CreateProcess(0, []byte("ntp"))
	a, err := w.k.RegisterAuthority(ap, func(f nal.Formula) bool {
		return f.String() == "NTP says TimeNow < @2026-03-19"
	})
	if err != nil {
		t.Fatal(err)
	}
	goal := nal.MustParse("NTP says TimeNow < @2026-03-19")
	w.k.SetGoal(w.srv, "read", "obj", goal, nil)
	p := &proof.Proof{Steps: []proof.Step{
		{Rule: proof.RuleAuthority, Channel: a.Channel(), F: goal},
	}}
	w.k.SetProof(w.cli, "read", "obj", p, nil)
	if err := w.call("read", "obj"); err != nil {
		t.Fatalf("external authority: %v", err)
	}
	// Unknown channel denies.
	p2 := &proof.Proof{Steps: []proof.Step{
		{Rule: proof.RuleAuthority, Channel: "ipc:9999", F: goal},
	}}
	w.k.SetProof(w.cli, "read", "obj", p2, nil)
	if err := w.call("read", "obj"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("unknown authority: want ErrDenied, got %v", err)
	}
}

func TestGuardSubstitutionBindsSubjectObjectOp(t *testing.T) {
	w := newWorld(t)
	goal := nal.MustParse(`?S says requested(?Op, ?O)`)
	w.k.SetGoal(w.srv, "write", "obj9", goal, nil)
	cred := nal.Says{P: w.cli.Prin, F: nal.Pred{
		Name: "requested",
		Args: []nal.Term{nal.Str("write"), nal.Str("obj9")},
	}}
	p := proof.Assume(0, cred)
	w.k.SetProof(w.cli, "write", "obj9", p, []kernel.Credential{{Inline: cred}})
	if err := w.call("write", "obj9"); err != nil {
		t.Fatalf("substituted goal: %v", err)
	}
}

func TestDelegationProofThroughGuard(t *testing.T) {
	// The §2.5 time-sensitive file shape end-to-end: owner delegates
	// TimeNow to NTP; NTP's current claim arrives via authority.
	w := newWorld(t)
	owner, _ := w.k.CreateProcess(0, []byte("owner"))
	ntp, _ := w.k.CreateProcess(0, []byte("ntp"))
	a, err := w.k.RegisterAuthority(ntp, func(f nal.Formula) bool {
		want := nal.Says{P: ntp.Prin, F: nal.MustParse("TimeNow < @2026-03-19")}
		return f.Equal(nal.Formula(want))
	})
	if err != nil {
		t.Fatal(err)
	}
	deleg, err := owner.Labels.SayFormula(nal.SpeaksFor{
		A: ntp.Prin, B: owner.Prin, On: &nal.Pattern{Pred: "TimeNow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	goal := nal.Says{P: owner.Prin, F: nal.MustParse("TimeNow < @2026-03-19")}
	w.k.SetGoal(w.srv, "read", "file", goal, nil)

	d := &proof.Deriver{
		Creds:      []nal.Formula{deleg.Formula},
		TrustRoots: []nal.Principal{w.k.Prin},
		Authority: func(f nal.Formula) (string, bool) {
			if s, ok := f.(nal.Says); ok && s.P.EqualPrin(ntp.Prin) {
				return a.Channel(), true
			}
			return "", false
		},
	}
	pf, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	w.k.SetProof(w.cli, "read", "file", pf, []kernel.Credential{{Inline: deleg.Formula}})
	if err := w.call("read", "file"); err != nil {
		t.Fatalf("delegated time check: %v", err)
	}
}

func TestProofCacheEviction(t *testing.T) {
	w := newWorld(t)
	w.g.SetCacheSize(4)
	goal := nal.MustParse("?S says wantsAccess(?O)")
	w.k.DCache().Disable() // force guard evaluation each time
	for i := 0; i < 10; i++ {
		obj := "obj" + string(rune('a'+i))
		w.k.SetGoal(w.srv, "read", obj, goal, nil)
		cred := nal.Says{P: w.cli.Prin, F: nal.Pred{Name: "wantsAccess", Args: []nal.Term{nal.Str(obj)}}}
		w.k.SetProof(w.cli, "read", obj, proof.Assume(0, cred), []kernel.Credential{{Inline: cred}})
		if err := w.call("read", obj); err != nil {
			t.Fatalf("obj %d: %v", i, err)
		}
	}
	_, _, evictions := w.g.Stats()
	if evictions == 0 {
		t.Error("bounded cache must evict")
	}
}

func TestGuardSeparateForResource(t *testing.T) {
	// A designated guard on one resource; the default guard elsewhere.
	w := newWorld(t)
	denied := 0
	customGuard := guardFunc(func(req *kernel.GuardRequest) kernel.GuardDecision {
		denied++
		return kernel.GuardDecision{Allow: false, Cacheable: false, Reason: "custom"}
	})
	w.k.SetGoal(w.srv, "read", "special", nal.MustParse("x"), customGuard)
	if err := w.call("read", "special"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("custom guard: want ErrDenied, got %v", err)
	}
	if denied != 1 {
		t.Error("custom guard not consulted")
	}
}

type guardFunc func(*kernel.GuardRequest) kernel.GuardDecision

func (f guardFunc) Check(r *kernel.GuardRequest) kernel.GuardDecision { return f(r) }

func TestSetCacheSizeZeroDisablesCaching(t *testing.T) {
	w := newWorld(t)
	w.g.SetCacheSize(0)
	w.k.DCache().Disable() // force every call through the guard
	goal := nal.MustParse("?S says wantsAccess")
	w.k.SetGoal(w.srv, "read", "obj", goal, nil)
	cred := nal.Says{P: w.cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
	w.k.SetProof(w.cli, "read", "obj", proof.Assume(0, cred), []kernel.Credential{{Inline: cred}})
	for i := 0; i < 3; i++ {
		if err := w.call("read", "obj"); err != nil {
			t.Fatal(err)
		}
	}
	if w.g.Len() != 0 {
		t.Errorf("disabled proof cache holds %d entries, want 0", w.g.Len())
	}
	s := w.g.StatsSnapshot()
	if s.Hits != 0 || s.Misses != 3 {
		t.Errorf("hits=%d misses=%d, want 0 hits and 3 misses with caching disabled", s.Hits, s.Misses)
	}
}

// stressRequest builds a valid inline-credential request for a fabricated
// subject, bypassing kernel process creation so that tests control the
// principal tree root.
func stressRequest(k *kernel.Kernel, subj nal.Principal, obj string) *kernel.GuardRequest {
	cred := nal.Says{P: subj, F: nal.Pred{
		Name: "wantsAccess", Args: []nal.Term{nal.Str(obj)},
	}}
	return &kernel.GuardRequest{
		Kernel:  k,
		Subject: subj,
		Op:      "read",
		Obj:     obj,
		Goal:    nal.MustParse("?S says wantsAccess(?O)"),
		Proof:   proof.Assume(0, cred),
		Creds:   []kernel.Credential{{Inline: cred}},
	}
}

// TestQuotaEvictionTargetsOwningRoot verifies that a principal exceeding
// its per-tree-root quota evicts its own entries, not another root's
// (performance isolation, §2.9).
func TestQuotaEvictionTargetsOwningRoot(t *testing.T) {
	w := newWorld(t)
	w.g.SetQuota(2)
	alice := nal.MustPrincipal("alice.p1")
	bob := nal.MustPrincipal("bob.p1")

	// Bob caches one proof; Alice then overflows her quota of 2.
	if d := w.g.Check(stressRequest(w.k, bob, "bobobj")); !d.Allow {
		t.Fatalf("bob denied: %s", d.Reason)
	}
	for i := 0; i < 4; i++ {
		obj := "aliceobj" + string(rune('a'+i))
		if d := w.g.Check(stressRequest(w.k, alice, obj)); !d.Allow {
			t.Fatalf("alice denied: %s", d.Reason)
		}
	}
	_, _, evictions := w.g.Stats()
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2 (alice's 3rd and 4th inserts evict her own)", evictions)
	}
	if got := w.g.Len(); got != 3 {
		t.Errorf("cache len = %d, want 3 (bob's entry plus alice's quota of 2)", got)
	}
	// Bob's entry survived: re-checking it hits the cache. Had eviction
	// targeted the wrong root, bob's entry would be gone and alice would
	// hold more than her quota.
	before := w.g.StatsSnapshot().Hits
	if d := w.g.Check(stressRequest(w.k, bob, "bobobj")); !d.Allow {
		t.Fatalf("bob re-check denied: %s", d.Reason)
	}
	if w.g.StatsSnapshot().Hits != before+1 {
		t.Error("bob's cached proof was evicted by alice's quota overflow")
	}
}

// TestFullCacheEvictionPrefersOwnRoot verifies that when the global bound
// is hit, the inserting principal's own entries are evicted first.
func TestFullCacheEvictionPrefersOwnRoot(t *testing.T) {
	w := newWorld(t)
	w.g.SetCacheSize(3)
	alice := nal.MustPrincipal("alice.p1")
	bob := nal.MustPrincipal("bob.p1")

	w.g.Check(stressRequest(w.k, bob, "bob1"))
	w.g.Check(stressRequest(w.k, alice, "alice1"))
	w.g.Check(stressRequest(w.k, alice, "alice2"))
	// Cache full (3 entries). Alice's next insert evicts alice1, not bob1.
	w.g.Check(stressRequest(w.k, alice, "alice3"))

	if got := w.g.Len(); got != 3 {
		t.Errorf("cache len = %d, want 3", got)
	}
	if _, _, evictions := w.g.Stats(); evictions != 1 {
		t.Errorf("evictions = %d, want exactly 1", evictions)
	}
	before := w.g.StatsSnapshot().Hits
	w.g.Check(stressRequest(w.k, bob, "bob1"))
	if w.g.StatsSnapshot().Hits != before+1 {
		t.Error("bob's entry was evicted although alice owned entries of her own")
	}
}

// TestGuardStatsShape verifies the shared stats contract: lookups always
// equals hits + misses, and the tuple accessor agrees with the snapshot.
func TestGuardStatsShape(t *testing.T) {
	w := newWorld(t)
	alice := nal.MustPrincipal("alice.p1")
	w.g.Check(stressRequest(w.k, alice, "x"))
	w.g.Check(stressRequest(w.k, alice, "x"))
	s := w.g.StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("stats inconsistent: %+v", s)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1 and 1", s.Hits, s.Misses)
	}
	h, m, e := w.g.Stats()
	if h != s.Hits || m != s.Misses || e != s.Evictions {
		t.Error("Stats() disagrees with StatsSnapshot()")
	}
}

// Package guard implements the Nexus generic guard (§2.6, §2.9): the
// reference monitor that evaluates client-supplied proofs against goal
// formulas on decision-cache misses.
//
// The guard checks — it never constructs — proofs. Credentials arrive either
// inline (copied into the request, indefinitely valid, cacheable) or as
// labelstore references (re-fetched from the mutable store on every check,
// so decisions depending on them are not cacheable). Authority steps are
// re-validated on every evaluation, even when the structural part of the
// proof hits the guard's internal proof cache; this is the "lemma" caching
// of §2.9 that keeps dynamic-state checks sound while amortizing
// proof-checking cost.
package guard

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// Generic is the default Nexus guard. Create instances with New; a single
// guard may serve many resources. All methods are safe for concurrent use.
type Generic struct {
	k *kernel.Kernel

	mu       sync.Mutex
	embedded map[string]func(nal.Formula) bool
	cache    map[string]*cachedProof // proof cache (§2.9)
	order    []string                // insertion order for eviction scans
	maxCache int
	quotas   map[string]int // cache entries per principal tree root

	hits, misses, evictions uint64
}

// cachedProof records a structurally validated proof so later checks only
// re-run its authority consultations.
type cachedProof struct {
	owner       string // root principal, for per-principal eviction
	authorities []authStep
}

type authStep struct {
	channel string
	f       nal.Formula
}

// DefaultCacheSize bounds the proof cache.
const DefaultCacheSize = 1024

// DefaultQuota bounds entries per principal tree root, limiting exhaustion
// attacks from incessantly spawned principals (§2.9).
const DefaultQuota = 256

// New creates a guard bound to a kernel (for labelstore fetches and
// external-authority IPC).
func New(k *kernel.Kernel) *Generic {
	return &Generic{
		k:        k,
		embedded: map[string]func(nal.Formula) bool{},
		cache:    map[string]*cachedProof{},
		maxCache: DefaultCacheSize,
		quotas:   map[string]int{},
	}
}

// SetCacheSize adjusts the proof-cache bound (0 disables caching).
func (g *Generic) SetCacheSize(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.maxCache = n
}

// RegisterEmbedded installs an embedded authority: a predicate evaluated
// inside the guard process, cheaper than an external authority because no
// IPC crossing is needed (Figure 4, "embed auth"). It returns the channel
// name to use in proofs.
func (g *Generic) RegisterEmbedded(name string, fn func(nal.Formula) bool) string {
	ch := "embed:" + name
	g.mu.Lock()
	defer g.mu.Unlock()
	g.embedded[ch] = fn
	return ch
}

// Stats reports proof-cache hits, misses, and evictions.
func (g *Generic) Stats() (hits, misses, evictions uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses, g.evictions
}

// Check implements kernel.Guard.
func (g *Generic) Check(req *kernel.GuardRequest) kernel.GuardDecision {
	goal := g.instantiate(req)
	if req.Proof == nil {
		return kernel.GuardDecision{Allow: false, Cacheable: true, Reason: "no proof supplied"}
	}

	creds, hasRefs, err := g.resolveCreds(req)
	if err != nil {
		return kernel.GuardDecision{Allow: false, Cacheable: false, Reason: err.Error()}
	}

	key := cacheKey(goal, req.Proof, creds)
	g.mu.Lock()
	entry, hit := g.cache[key]
	if hit {
		g.hits++
	} else {
		g.misses++
	}
	g.mu.Unlock()

	if hit {
		// Structure already validated; only dynamic state needs re-checking.
		for _, a := range entry.authorities {
			if !g.authority(a.channel, a.f) {
				return kernel.GuardDecision{Allow: false, Cacheable: false,
					Reason: fmt.Sprintf("authority %s no longer affirms %s", a.channel, a.f)}
			}
		}
		return kernel.GuardDecision{Allow: true, Cacheable: len(entry.authorities) == 0 && !hasRefs}
	}

	var auths []authStep
	env := &proof.Env{
		Credentials: creds,
		TrustRoots:  []nal.Principal{g.k.Prin},
		Authority: func(ch string, f nal.Formula) bool {
			if !g.authority(ch, f) {
				return false
			}
			auths = append(auths, authStep{channel: ch, f: f})
			return true
		},
	}
	res, err := proof.Check(req.Proof, goal, env)
	if err != nil {
		// A failed check is cacheable only if it cannot become valid
		// without a proof update (which invalidates the cache entry anyway)
		// — i.e. when it did not depend on dynamic state.
		return kernel.GuardDecision{Allow: false, Cacheable: res.AuthorityCalls == 0 && !hasRefs,
			Reason: err.Error()}
	}
	g.insert(key, req.Subject, auths)
	return kernel.GuardDecision{Allow: true, Cacheable: res.Cacheable && !hasRefs}
}

// instantiate applies the guard substitution: ?S = subject, ?O = object,
// ?Op = operation (§2.5's calligraphic identifiers).
func (g *Generic) instantiate(req *kernel.GuardRequest) nal.Formula {
	sub := nal.Subst{
		"S":  nal.PrinTerm{P: req.Subject},
		"O":  nal.Str(req.Obj),
		"Op": nal.Str(req.Op),
	}
	return sub.Apply(req.Goal)
}

// resolveCreds materializes the credential list, fetching labelstore
// references; hasRefs reports whether any credential came from a mutable
// store.
func (g *Generic) resolveCreds(req *kernel.GuardRequest) ([]nal.Formula, bool, error) {
	creds := make([]nal.Formula, 0, len(req.Creds))
	hasRefs := false
	for i, c := range req.Creds {
		switch {
		case c.Inline != nil:
			creds = append(creds, c.Inline)
		case c.Ref != nil:
			hasRefs = true
			p, ok := g.k.Lookup(c.Ref.PID)
			if !ok {
				return nil, true, fmt.Errorf("credential %d: process %d gone", i, c.Ref.PID)
			}
			l, err := p.Labels.Get(c.Ref.Handle)
			if err != nil {
				return nil, true, fmt.Errorf("credential %d: %v", i, err)
			}
			creds = append(creds, l.Formula)
		default:
			return nil, hasRefs, fmt.Errorf("credential %d: empty", i)
		}
	}
	return creds, hasRefs, nil
}

// authority answers one authority consultation: embedded first, then
// external over IPC.
func (g *Generic) authority(channel string, f nal.Formula) bool {
	g.mu.Lock()
	fn, ok := g.embedded[channel]
	g.mu.Unlock()
	if ok {
		return fn(f)
	}
	ans, err := g.k.QueryAuthority(channel, f)
	return err == nil && ans
}

// insert adds a validated proof to the cache, evicting preferentially from
// the same principal's entries (performance isolation, §2.9) and enforcing
// the per-tree-root quota.
func (g *Generic) insert(key string, subject nal.Principal, auths []authStep) {
	root := nal.RootOf(subject).String()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.maxCache <= 0 {
		return
	}
	if _, ok := g.cache[key]; ok {
		return
	}
	if g.quotas[root] >= DefaultQuota || len(g.cache) >= g.maxCache {
		g.evictLocked(root)
	}
	g.cache[key] = &cachedProof{owner: root, authorities: auths}
	g.order = append(g.order, key)
	g.quotas[root]++
}

// evictLocked removes one entry, preferring the requesting principal's own.
func (g *Generic) evictLocked(root string) {
	victim := -1
	for i, k := range g.order {
		if e, ok := g.cache[k]; ok && e.owner == root {
			victim = i
			break
		}
	}
	if victim == -1 {
		for i, k := range g.order {
			if _, ok := g.cache[k]; ok {
				victim = i
				break
			}
		}
	}
	if victim == -1 {
		g.order = g.order[:0]
		return
	}
	k := g.order[victim]
	if e, ok := g.cache[k]; ok {
		g.quotas[e.owner]--
		delete(g.cache, k)
	}
	g.order = append(g.order[:victim:victim], g.order[victim+1:]...)
	g.evictions++
}

// cacheKey identifies a (goal, proof, credentials) combination. The proof
// contributes its cached fingerprint, so repeat evaluations of a registered
// proof do not re-serialize it.
func cacheKey(goal nal.Formula, p *proof.Proof, creds []nal.Formula) string {
	h := sha1.New()
	h.Write([]byte(goal.String()))
	h.Write([]byte{0})
	h.Write([]byte(p.Fingerprint()))
	for _, c := range creds {
		h.Write([]byte{0})
		h.Write([]byte(c.String()))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Package guard implements the Nexus generic guard (§2.6, §2.9): the
// reference monitor that evaluates client-supplied proofs against goal
// formulas on decision-cache misses.
//
// The guard checks — it never constructs — proofs. Credentials arrive either
// inline (copied into the request, indefinitely valid, cacheable) or as
// labelstore references (re-fetched from the mutable store on every check,
// so decisions depending on them are not cacheable). Authority steps are
// re-validated on every evaluation, even when the structural part of the
// proof hits the guard's internal proof cache; this is the "lemma" caching
// of §2.9 that keeps dynamic-state checks sound while amortizing
// proof-checking cost.
//
// The proof cache is lock-striped: entries are spread across shards by the
// hash of their canonical key, so concurrent checks from different subjects
// proceed in parallel and a cache hit takes only a shard read-lock. Cache
// keys are assembled from interned canonical forms (nal.KeyOf), so the hot
// path never re-serializes an AST.
package guard

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cachestat"
	"repro/internal/cert"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// guardShards is the number of lock stripes in the proof cache. A power of
// two so shard selection is a mask.
const guardShards = 16

// Generic is the default Nexus guard. Create instances with New; a single
// guard may serve many resources. All methods are safe for concurrent use.
type Generic struct {
	k *kernel.Kernel

	embMu    sync.RWMutex
	embedded map[string]func(nal.Formula) bool

	shards   [guardShards]proofShard
	size     atomic.Int64 // total entries across shards
	maxCache atomic.Int64 // 0 or negative disables insertion
	quota    atomic.Int64 // per-principal-root entry bound

	quotaMu sync.Mutex
	quotas  map[string]int // canonical root principal → live entries

	stats cachestat.Counters
}

// proofShard is one stripe of the proof cache: an entry map plus FIFO
// insertion order for eviction scans, under its own lock. entries and order
// are kept exactly in sync.
type proofShard struct {
	mu      sync.RWMutex
	entries map[string]*cachedProof
	order   []string
}

// cachedProof records a structurally validated proof so later checks only
// re-run its authority consultations.
type cachedProof struct {
	owner       string // canonical root principal, for per-principal eviction
	authorities []authStep
}

type authStep struct {
	channel string
	f       nal.Formula
}

// DefaultCacheSize bounds the proof cache.
const DefaultCacheSize = 1024

// DefaultQuota bounds entries per principal tree root, limiting exhaustion
// attacks from incessantly spawned principals (§2.9).
const DefaultQuota = 256

// New creates a guard bound to a kernel (for labelstore fetches and
// external-authority IPC).
func New(k *kernel.Kernel) *Generic {
	g := &Generic{
		k:        k,
		embedded: map[string]func(nal.Formula) bool{},
		quotas:   map[string]int{},
	}
	for i := range g.shards {
		g.shards[i].entries = map[string]*cachedProof{}
	}
	g.maxCache.Store(DefaultCacheSize)
	g.quota.Store(DefaultQuota)
	return g
}

// SetCacheSize adjusts the proof-cache bound (0 disables caching: no new
// entries are inserted; existing entries remain until evicted).
func (g *Generic) SetCacheSize(n int) { g.maxCache.Store(int64(n)) }

// SetQuota adjusts the per-principal-root entry bound.
func (g *Generic) SetQuota(n int) { g.quota.Store(int64(n)) }

// Len reports the number of cached proofs.
func (g *Generic) Len() int { return int(g.size.Load()) }

// RegisterEmbedded installs an embedded authority: a predicate evaluated
// inside the guard process, cheaper than an external authority because no
// IPC crossing is needed (Figure 4, "embed auth"). It returns the channel
// name to use in proofs.
func (g *Generic) RegisterEmbedded(name string, fn func(nal.Formula) bool) string {
	ch := "embed:" + name
	g.embMu.Lock()
	defer g.embMu.Unlock()
	g.embedded[ch] = fn
	return ch
}

// Stats reports proof-cache hits, misses, and evictions.
func (g *Generic) Stats() (hits, misses, evictions uint64) {
	s := g.stats.Snapshot()
	return s.Hits, s.Misses, s.Evictions
}

// StatsSnapshot reports full proof-cache statistics in the shape shared
// with the kernel decision cache.
func (g *Generic) StatsSnapshot() cachestat.Stats { return g.stats.Snapshot() }

// shardIndex selects the stripe holding key.
func shardIndex(key string) int {
	return int(nal.HashString(key) & (guardShards - 1))
}

// Check implements kernel.Guard.
func (g *Generic) Check(req *kernel.GuardRequest) kernel.GuardDecision {
	goal := g.instantiate(req)
	if req.Proof == nil {
		return kernel.GuardDecision{Allow: false, Cacheable: true, Reason: "no proof supplied"}
	}

	creds, credIDs, hasDynamic, err := g.resolveCreds(req)
	if err != nil {
		return kernel.GuardDecision{Allow: false, Cacheable: false, Reason: err.Error()}
	}

	key := cacheKey(goal, req.Proof, creds, credIDs)
	sh := &g.shards[shardIndex(key)]
	sh.mu.RLock()
	entry, hit := sh.entries[key]
	sh.mu.RUnlock()
	g.stats.Lookup(hit)

	if hit {
		// Structure already validated; only dynamic state needs re-checking.
		for _, a := range entry.authorities {
			if !g.authority(a.channel, a.f) {
				return kernel.GuardDecision{Allow: false, Cacheable: false,
					Reason: fmt.Sprintf("authority %s no longer affirms %s", a.channel, a.f)}
			}
		}
		return kernel.GuardDecision{Allow: true, Cacheable: len(entry.authorities) == 0 && !hasDynamic}
	}

	var auths []authStep
	env := &proof.Env{
		Credentials:   creds,
		CredentialIDs: credIDs,
		TrustRoots:    []nal.Principal{g.k.Prin},
		Authority: func(ch string, f nal.Formula) bool {
			if !g.authority(ch, f) {
				return false
			}
			auths = append(auths, authStep{channel: ch, f: f})
			return true
		},
	}
	res, err := proof.Check(req.Proof, goal, env)
	if err != nil {
		// A failed check is cacheable only if it cannot become valid
		// without a proof update (which invalidates the cache entry anyway)
		// — i.e. when it did not depend on dynamic state.
		return kernel.GuardDecision{Allow: false, Cacheable: res.AuthorityCalls == 0 && !hasDynamic,
			Reason: err.Error()}
	}
	g.insert(key, req.Subject, auths)
	return kernel.GuardDecision{Allow: true, Cacheable: res.Cacheable && !hasDynamic}
}

// instantiate applies the guard substitution: ?S = subject, ?O = object,
// ?Op = operation (§2.5's calligraphic identifiers).
func (g *Generic) instantiate(req *kernel.GuardRequest) nal.Formula {
	sub := nal.Subst{
		"S":  nal.PrinTerm{P: req.Subject},
		"O":  nal.Str(req.Obj),
		"Op": nal.Str(req.Op),
	}
	return sub.Apply(req.Goal)
}

// resolveCreds materializes the credential list together with hash-cons
// handles: inline credentials reuse the IDs interned at setproof,
// labelstore references are fetched from the mutable store, and
// certificates are verified through the kernel's pre-verification cache —
// one fingerprint lookup on the warm path instead of an RSA check.
// Duplicate certificates within one request resolve once. hasDynamic
// reports whether any credential came from mutable or revocable state
// (references, certificates); such decisions stay out of the kernel
// decision cache so a label change or a revocation takes effect on the
// next check.
func (g *Generic) resolveCreds(req *kernel.GuardRequest) ([]nal.Formula, []nal.FormulaID, bool, error) {
	creds := make([]nal.Formula, 0, len(req.Creds))
	ids := make([]nal.FormulaID, 0, len(req.Creds))
	hasDynamic := false
	for i, c := range req.Creds {
		switch {
		case c.Inline != nil:
			var id nal.FormulaID
			if i < len(req.CredIDs) {
				id = req.CredIDs[i]
			}
			if id == 0 {
				id, _ = nal.IDOf(c.Inline)
			}
			creds = append(creds, c.Inline)
			ids = append(ids, id)
		case c.Ref != nil:
			hasDynamic = true
			p, ok := g.k.Lookup(c.Ref.PID)
			if !ok {
				return nil, nil, true, fmt.Errorf("credential %d: process %d gone", i, c.Ref.PID)
			}
			l, err := p.Labels.Get(c.Ref.Handle)
			if err != nil {
				return nil, nil, true, fmt.Errorf("credential %d: %v", i, err)
			}
			id, _ := nal.IDOf(l.Formula)
			creds = append(creds, l.Formula)
			ids = append(ids, id)
		case c.Cert != nil:
			hasDynamic = true
			if j := prevCertIndex(req.Creds[:i], c.Cert); j >= 0 {
				// The same certificate appeared earlier in this request:
				// reuse its verified label instead of re-probing the cache.
				creds = append(creds, creds[j])
				ids = append(ids, ids[j])
				break
			}
			f, id, err := g.k.CertCache().Label(c.Cert)
			if err != nil {
				return nil, nil, true, fmt.Errorf("credential %d: %v", i, err)
			}
			creds = append(creds, f)
			ids = append(ids, id)
		default:
			return nil, nil, hasDynamic, fmt.Errorf("credential %d: empty", i)
		}
	}
	return creds, ids, hasDynamic, nil
}

// prevCertIndex reports the position of an earlier credential presenting
// the same certificate object, or -1.
func prevCertIndex(prev []kernel.Credential, c *cert.Certificate) int {
	for j := range prev {
		if prev[j].Cert == c {
			return j
		}
	}
	return -1
}

// authority answers one authority consultation: embedded first, then
// external over IPC.
func (g *Generic) authority(channel string, f nal.Formula) bool {
	g.embMu.RLock()
	fn, ok := g.embedded[channel]
	g.embMu.RUnlock()
	if ok {
		return fn(f)
	}
	ans, err := g.k.QueryAuthority(channel, f)
	return err == nil && ans
}

// insert adds a validated proof to the cache, evicting preferentially from
// the same principal's entries (performance isolation, §2.9) and enforcing
// the per-tree-root quota. Under concurrent insertion the size and quota
// bounds may transiently overshoot by the number of racing inserters; they
// are exact when single-threaded.
func (g *Generic) insert(key string, subject nal.Principal, auths []authStep) {
	max := g.maxCache.Load()
	if max <= 0 {
		return
	}
	root := nal.KeyOfPrin(nal.RootOf(subject))
	si := shardIndex(key)
	sh := &g.shards[si]

	sh.mu.RLock()
	_, exists := sh.entries[key]
	sh.mu.RUnlock()
	if exists {
		return
	}

	g.quotaMu.Lock()
	overQuota := int64(g.quotas[root]) >= g.quota.Load()
	g.quotaMu.Unlock()
	if overQuota {
		g.evictOne(si, root, true)
	}
	if g.size.Load() >= max {
		g.evictOne(si, root, false)
	}

	// Size and quota accounting happens while the shard lock is held, so
	// an entry's existence and its counts change atomically: a concurrent
	// eviction can only touch the entry — and decrement the counts — after
	// this insert has published both. Lock order is shard → quotaMu, the
	// same as removeFirst, and no two shard locks are ever held at once.
	sh.mu.Lock()
	if _, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		return
	}
	sh.entries[key] = &cachedProof{owner: root, authorities: auths}
	sh.order = append(sh.order, key)
	g.size.Add(1)
	g.quotaMu.Lock()
	g.quotas[root]++
	g.quotaMu.Unlock()
	sh.mu.Unlock()
}

// evictOne removes one cached proof and returns whether a victim was found.
// It prefers entries owned by root (performance isolation: a principal over
// quota pays with its own entries); when ownedOnly is false it falls back
// to an entry of any owner. Shards are scanned starting at the inserting
// stripe, holding one shard lock at a time, and the victim is the oldest
// matching entry within the first shard that has one — per-shard FIFO, not
// a global age order.
func (g *Generic) evictOne(start int, root string, ownedOnly bool) bool {
	for i := 0; i < guardShards; i++ {
		if g.shards[(start+i)%guardShards].removeFirst(g, func(e *cachedProof) bool {
			return e.owner == root
		}) {
			return true
		}
	}
	if ownedOnly {
		return false
	}
	for i := 0; i < guardShards; i++ {
		if g.shards[(start+i)%guardShards].removeFirst(g, func(*cachedProof) bool { return true }) {
			return true
		}
	}
	return false
}

// removeFirst evicts the oldest entry in the shard matching pred, updating
// the guard's size, quota, and eviction accounting. It reports whether an
// entry was removed.
func (s *proofShard) removeFirst(g *Generic, pred func(*cachedProof) bool) bool {
	s.mu.Lock()
	victim := -1
	var owner string
	for i, k := range s.order {
		if e := s.entries[k]; e != nil && pred(e) {
			victim, owner = i, e.owner
			break
		}
	}
	if victim == -1 {
		s.mu.Unlock()
		return false
	}
	delete(s.entries, s.order[victim])
	s.order = append(s.order[:victim:victim], s.order[victim+1:]...)
	g.size.Add(-1)
	g.quotaMu.Lock()
	if g.quotas[owner]--; g.quotas[owner] <= 0 {
		delete(g.quotas, owner)
	}
	g.quotaMu.Unlock()
	s.mu.Unlock()
	g.stats.Evicted(1)
	return true
}

// cacheKey identifies a (goal, proof, credentials) combination. The goal is
// rendered with the canonical single-buffer encoder — deliberately NOT
// nal.KeyOf or nal.IDOf: instantiated goals embed per-process principals,
// so interning them would fill the global tables with dead entries as
// processes churn; the bounded, evicting proof cache is the right home for
// per-request keys. Credentials, which do repeat across requests, are
// encoded as hash-cons handles (a tag byte plus varint), so they are never
// re-serialized and duplicate credentials contribute identical short runs
// instead of inflating the key; a credential without a handle (cons
// saturation) falls back to its canonical bytes under a distinct tag.
func cacheKey(goal nal.Formula, p *proof.Proof, creds []nal.Formula, ids []nal.FormulaID) string {
	buf := make([]byte, 0, 160)
	buf = nal.AppendFormula(buf, goal)
	buf = append(buf, 0)
	buf = append(buf, p.Fingerprint()...)
	for i, c := range creds {
		buf = append(buf, 0)
		if i < len(ids) && ids[i] != 0 {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(ids[i]))
		} else {
			buf = append(buf, 2)
			buf = nal.AppendFormula(buf, c)
		}
	}
	return string(buf)
}

package guard

import (
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/ssr"
	"repro/internal/tpm"
)

func newStore(t *testing.T) (*tpm.TPM, *disk.Disk, *ssr.Manager) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if err := tp.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel}); err != nil {
		t.Fatal(err)
	}
	d := disk.New()
	m, err := ssr.Init(tp, d)
	if err != nil {
		t.Fatal(err)
	}
	return tp, d, m
}

func req(subject nal.Principal) *kernel.GuardRequest {
	return &kernel.GuardRequest{Subject: subject, Op: "sign", Obj: "doc"}
}

func TestAutomatonEnforcesLimit(t *testing.T) {
	_, _, m := newStore(t)
	a, err := NewAutomaton(m, "uses", 4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := nal.Name("alice")
	for i := 0; i < 3; i++ {
		dec := a.Check(req(alice))
		if !dec.Allow {
			t.Fatalf("use %d denied: %s", i, dec.Reason)
		}
		if dec.Cacheable {
			t.Fatal("stateful decisions must never be cacheable")
		}
	}
	dec := a.Check(req(alice))
	if dec.Allow || !strings.Contains(dec.Reason, "exhausted") {
		t.Errorf("4th use = %+v", dec)
	}
	// Another subject has its own counter.
	if dec := a.Check(req(nal.Name("bob"))); !dec.Allow {
		t.Errorf("bob denied: %s", dec.Reason)
	}
	if rem, _ := a.Remaining(alice); rem != 0 {
		t.Errorf("alice remaining = %d", rem)
	}
	if rem, _ := a.Remaining(nal.Name("bob")); rem != 2 {
		t.Errorf("bob remaining = %d", rem)
	}
}

func TestAutomatonSurvivesReboot(t *testing.T) {
	tp, d, m := newStore(t)
	a, err := NewAutomaton(m, "uses", 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := nal.Name("alice")
	a.Check(req(alice))

	// Power cycle; recover the store and reattach.
	tp.Startup()
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if _, err := ssr.Recover(tp, d); err != nil {
		t.Fatal(err)
	}
	a2, err := Attach(a.Region(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rem, _ := a2.Remaining(alice); rem != 1 {
		t.Errorf("remaining after reboot = %d, want 1", rem)
	}
	a2.Check(req(alice))
	if dec := a2.Check(req(alice)); dec.Allow {
		t.Error("limit must hold across reboots")
	}
}

func TestAutomatonReplayDetected(t *testing.T) {
	// An attacker snapshots the disk before spending uses and replays it:
	// the attested-storage layer catches the rollback.
	_, d, m := newStore(t)
	a, err := NewAutomaton(m, "uses", 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := nal.Name("alice")
	a.Check(req(alice)) // establish a slot, counter = 1
	img := d.Snapshot()
	a.Check(req(alice)) // counter = 2 (exhausted)
	d.Restore(img)      // roll the disk back
	if dec := a.Check(req(alice)); dec.Allow {
		t.Error("replayed counter accepted")
	} else if !strings.Contains(dec.Reason, "integrity") &&
		!strings.Contains(dec.Reason, "exhausted") && !strings.Contains(dec.Reason, "state") {
		t.Errorf("unexpected denial reason: %s", dec.Reason)
	}
}

func TestAutomatonComposesWithInnerGuard(t *testing.T) {
	_, _, m := newStore(t)
	deny := guardFunc(func(*kernel.GuardRequest) kernel.GuardDecision {
		return kernel.GuardDecision{Allow: false, Cacheable: true, Reason: "inner"}
	})
	a, err := NewAutomaton(m, "uses", 2, 5, deny)
	if err != nil {
		t.Fatal(err)
	}
	dec := a.Check(req(nal.Name("alice")))
	if dec.Allow {
		t.Error("inner denial must propagate")
	}
	if dec.Cacheable {
		t.Error("automaton must strip cacheability")
	}
	// And the denial did not consume an allowance.
	if rem, _ := a.Remaining(nal.Name("alice")); rem != 5 {
		t.Errorf("remaining = %d, want 5", rem)
	}
}

func TestAutomatonCapacity(t *testing.T) {
	_, _, m := newStore(t)
	a, err := NewAutomaton(m, "uses", 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Check(req(nal.Name("u1")))
	a.Check(req(nal.Name("u2")))
	if dec := a.Check(req(nal.Name("u3"))); dec.Allow {
		t.Error("automaton past capacity must fail closed")
	}
}

package guard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

// request builds a self-contained guard request for subject subj asking to
// read obj, with a valid inline-credential proof.
func request(k *kernel.Kernel, subj nal.Principal, obj string) *kernel.GuardRequest {
	cred := nal.Says{P: subj, F: nal.Pred{
		Name: "wantsAccess", Args: []nal.Term{nal.Str(obj)},
	}}
	return &kernel.GuardRequest{
		Kernel:  k,
		Subject: subj,
		Op:      "read",
		Obj:     obj,
		Goal:    nal.MustParse("?S says wantsAccess(?O)"),
		Proof:   proof.Assume(0, cred),
		Creds:   []kernel.Credential{{Inline: cred}},
	}
}

// TestGuardConcurrentStress hammers one guard from 8 goroutines mixing
// checks (which insert and hit cached proofs), cache resizes (which force
// evictions), quota changes, and embedded-authority registration. Run with
// -race. After the dust settles the statistics must be consistent:
// lookups == hits + misses.
func TestGuardConcurrentStress(t *testing.T) {
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := New(k)

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			subj := nal.MustPrincipal(fmt.Sprintf("root%d.p%d", id%3, id))
			for i := 0; i < iters; i++ {
				switch i % 10 {
				case 8:
					// Shrink and restore the cache bound, forcing the
					// eviction path under contention.
					g.SetCacheSize(8)
					g.SetCacheSize(DefaultCacheSize)
				case 9:
					g.RegisterEmbedded(fmt.Sprintf("aux%d-%d", id, i),
						func(nal.Formula) bool { return true })
					g.SetQuota(16)
				default:
					obj := fmt.Sprintf("obj%d", (id*iters+i)%64)
					if d := g.Check(request(k, subj, obj)); !d.Allow {
						t.Errorf("check denied: %s", d.Reason)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	s := g.StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("stats inconsistent: lookups=%d hits=%d misses=%d", s.Lookups, s.Hits, s.Misses)
	}
	if s.Lookups == 0 || s.Hits == 0 {
		t.Errorf("stress produced no cache activity: %+v", s)
	}
	if got := g.Len(); got < 0 || uint64(got) > s.Misses {
		t.Errorf("cache holds %d entries, more than the %d misses that could have inserted", got, s.Misses)
	}
}

// TestGuardConcurrentAuthorityChecks mixes cached-proof re-validation
// (authority consultations on the hit path) with embedded authority
// registration from other goroutines.
func TestGuardConcurrentAuthorityChecks(t *testing.T) {
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := New(k)
	goal := nal.MustParse("NTP says ok")
	ch := g.RegisterEmbedded("ntp", func(f nal.Formula) bool { return f.Equal(goal) })
	req := &kernel.GuardRequest{
		Kernel:  k,
		Subject: nal.MustPrincipal("client"),
		Op:      "read", Obj: "obj",
		Goal:  goal,
		Proof: &proof.Proof{Steps: []proof.Step{{Rule: proof.RuleAuthority, Channel: ch, F: goal}}},
	}
	if d := g.Check(req); !d.Allow {
		t.Fatalf("warmup denied: %s", d.Reason)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if id%2 == 0 && i%50 == 0 {
					g.RegisterEmbedded(fmt.Sprintf("noise%d-%d", id, i),
						func(nal.Formula) bool { return false })
				}
				if d := g.Check(req); !d.Allow {
					t.Errorf("denied: %s", d.Reason)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := g.StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("stats inconsistent: %+v", s)
	}
}

package guard

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/ssr"
)

// Automaton is a stateful guard implementing a security automaton whose
// state persists in an SSR (§3.3: "guards can use SSRs to store the state
// of security automata, which may include counters, expiration dates, and
// summary of past behaviors"). This instance enforces per-subject use
// counts: each subject may perform the guarded operation at most Limit
// times, across reboots, with replay of the on-disk counter state detected
// by the attested-storage layer.
type Automaton struct {
	// Inner decides admissibility before the automaton counts the access;
	// nil admits everything (pure rate limiting).
	Inner kernel.Guard
	// Limit is the per-subject allowance.
	Limit uint64

	mu     sync.Mutex
	region *ssr.Region
	slots  map[string]int // subject → block index
	next   int
}

// NewAutomaton creates an automaton persisting its counters in a region of
// the given attested store. maxSubjects bounds distinct subjects.
func NewAutomaton(mgr *ssr.Manager, name string, maxSubjects int, limit uint64, inner kernel.Guard) (*Automaton, error) {
	region, err := mgr.CreateRegion("automaton-"+name, maxSubjects, nil)
	if err != nil {
		return nil, err
	}
	return &Automaton{
		Inner:  inner,
		Limit:  limit,
		region: region,
		slots:  map[string]int{},
	}, nil
}

// Attach reconnects to an existing region after recovery (counters survive
// reboots; slot assignments are rebuilt from block headers).
func Attach(region *ssr.Region, limit uint64, inner kernel.Guard) (*Automaton, error) {
	a := &Automaton{Inner: inner, Limit: limit, region: region, slots: map[string]int{}}
	for i := 0; i < region.NumBlocks(); i++ {
		blk, err := region.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		name, _, ok := decodeSlot(blk)
		if !ok {
			continue
		}
		a.slots[name] = i
		if i >= a.next {
			a.next = i + 1
		}
	}
	return a, nil
}

// Region exposes the backing region (for reboot/recovery tests).
func (a *Automaton) Region() *ssr.Region { return a.region }

// Remaining reports the subject's remaining allowance.
func (a *Automaton) Remaining(subject nal.Principal) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	used, _, err := a.usedLocked(subject.String())
	if err != nil {
		return 0, err
	}
	if used >= a.Limit {
		return 0, nil
	}
	return a.Limit - used, nil
}

// Check implements kernel.Guard: consult the inner guard, then advance the
// automaton. Decisions are never cacheable — each access transitions state.
func (a *Automaton) Check(req *kernel.GuardRequest) kernel.GuardDecision {
	if a.Inner != nil {
		dec := a.Inner.Check(req)
		if !dec.Allow {
			dec.Cacheable = false
			return dec
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	subj := req.Subject.String()
	used, slot, err := a.usedLocked(subj)
	if err != nil {
		return kernel.GuardDecision{Allow: false, Reason: fmt.Sprintf("automaton state: %v", err)}
	}
	if used >= a.Limit {
		return kernel.GuardDecision{Allow: false, Reason: fmt.Sprintf("use limit %d exhausted", a.Limit)}
	}
	if err := a.writeLocked(slot, subj, used+1); err != nil {
		// The counter must be durably advanced before the access proceeds;
		// fail closed.
		return kernel.GuardDecision{Allow: false, Reason: fmt.Sprintf("persisting automaton state: %v", err)}
	}
	return kernel.GuardDecision{Allow: true, Cacheable: false}
}

func (a *Automaton) usedLocked(subj string) (uint64, int, error) {
	slot, ok := a.slots[subj]
	if !ok {
		if a.next >= a.region.NumBlocks() {
			return 0, 0, fmt.Errorf("automaton full")
		}
		slot = a.next
		a.next++
		a.slots[subj] = slot
		return 0, slot, nil
	}
	blk, err := a.region.ReadBlock(slot)
	if err != nil {
		return 0, 0, err
	}
	_, count, ok := decodeSlot(blk)
	if !ok {
		return 0, slot, nil
	}
	return count, slot, nil
}

func (a *Automaton) writeLocked(slot int, subj string, count uint64) error {
	return a.region.WriteBlock(slot, encodeSlot(subj, count))
}

// Slot layout: name length (2) | name | counter (8).
func encodeSlot(name string, count uint64) []byte {
	out := make([]byte, 2+len(name)+8)
	binary.LittleEndian.PutUint16(out, uint16(len(name)))
	copy(out[2:], name)
	binary.LittleEndian.PutUint64(out[2+len(name):], count)
	return out
}

func decodeSlot(blk []byte) (string, uint64, bool) {
	if len(blk) < 2 {
		return "", 0, false
	}
	n := int(binary.LittleEndian.Uint16(blk))
	if n == 0 || len(blk) < 2+n+8 {
		return "", 0, false
	}
	name := string(blk[2 : 2+n])
	count := binary.LittleEndian.Uint64(blk[2+n:])
	return name, count, true
}

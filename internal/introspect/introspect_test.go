package introspect

import (
	"fmt"
	"testing"

	"repro/internal/nal"
)

func TestPublishReadRetract(t *testing.T) {
	r := NewRegistry()
	owner := nal.Name("kernel")
	n := 0
	r.Publish("/proc/x", owner, func() string { n++; return fmt.Sprint(n) })
	v, got, ok := r.Read("/proc/x")
	if !ok || v != "1" || !got.EqualPrin(owner) {
		t.Errorf("Read = %q, %v, %v", v, got, ok)
	}
	// Live values: every read re-evaluates.
	v, _, _ = r.Read("/proc/x")
	if v != "2" {
		t.Errorf("second read = %q, want fresh evaluation", v)
	}
	r.Retract("/proc/x")
	if _, _, ok := r.Read("/proc/x"); ok {
		t.Error("retracted node still readable")
	}
	if _, _, ok := r.Read("/missing"); ok {
		t.Error("missing node readable")
	}
}

func TestPublishStatic(t *testing.T) {
	r := NewRegistry()
	r.PublishStatic("/proc/version", nal.Name("kernel"), "nexus-1.0")
	v, _, _ := r.Read("/proc/version")
	if v != "nexus-1.0" {
		t.Errorf("static = %q", v)
	}
}

func TestLabelForm(t *testing.T) {
	r := NewRegistry()
	r.PublishStatic("/proc/ipd/7/modules", nal.MustPrincipal("kernel.ipd.7"), "social,render")
	lbl, ok := r.Label("/proc/ipd/7/modules")
	if !ok {
		t.Fatal("no label")
	}
	want := nal.MustParse(`kernel.ipd.7 says attr("/proc/ipd/7/modules", "social,render")`)
	if !lbl.Equal(want) {
		t.Errorf("label = %q, want %q", lbl, want)
	}
	if _, ok := r.Label("/missing"); ok {
		t.Error("label for missing node")
	}
}

func TestListPrefix(t *testing.T) {
	r := NewRegistry()
	owner := nal.Name("k")
	r.PublishStatic("/proc/a/1", owner, "x")
	r.PublishStatic("/proc/a/2", owner, "y")
	r.PublishStatic("/proc/b/1", owner, "z")
	got := r.List("/proc/a/")
	if len(got) != 2 || got[0] != "/proc/a/1" || got[1] != "/proc/a/2" {
		t.Errorf("List = %v", got)
	}
	if all := r.List("/"); len(all) != 3 {
		t.Errorf("List all = %v", all)
	}
}

func TestReplacePublish(t *testing.T) {
	r := NewRegistry()
	r.PublishStatic("/proc/x", nal.Name("a"), "old")
	r.PublishStatic("/proc/x", nal.Name("b"), "new")
	v, owner, _ := r.Read("/proc/x")
	if v != "new" || !owner.EqualPrin(nal.Name("b")) {
		t.Errorf("replace: %q %v", v, owner)
	}
}

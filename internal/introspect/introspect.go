// Package introspect implements the Nexus introspection service (§3.1): an
// extensible, /proc-like namespace of live key=value bindings published by
// the kernel and by applications. Each node is logically the label
// "owner says path = value"; labeling functions analyze this grey-box view
// to attest properties such as IPC connectivity or loaded modules without
// resorting to binary hashes.
package introspect

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/nal"
)

// Node is one published binding.
type Node struct {
	Path  string
	Owner nal.Principal
	Value func() string
}

// Registry is a concurrent namespace of nodes. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	nodes map[string]*Node
}

// NewRegistry creates an empty namespace.
func NewRegistry() *Registry {
	return &Registry{nodes: map[string]*Node{}}
}

// Publish installs (or replaces) a live binding at path. The value function
// is evaluated on every read, exposing current state rather than a
// snapshot — the property that lets authorities answer over fresh data.
func (r *Registry) Publish(path string, owner nal.Principal, value func() string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[path] = &Node{Path: path, Owner: owner, Value: value}
}

// PublishStatic installs a fixed value.
func (r *Registry) PublishStatic(path string, owner nal.Principal, value string) {
	r.Publish(path, owner, func() string { return value })
}

// Retract removes a binding.
func (r *Registry) Retract(path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.nodes, path)
}

// Read evaluates the binding at path.
func (r *Registry) Read(path string) (value string, owner nal.Principal, ok bool) {
	r.mu.RLock()
	n, ok := r.nodes[path]
	r.mu.RUnlock()
	if !ok {
		return "", nil, false
	}
	return n.Value(), n.Owner, true
}

// Label returns the logical label corresponding to a node:
// "owner says attr(path, value)" (§3.1).
func (r *Registry) Label(path string) (nal.Formula, bool) {
	v, owner, ok := r.Read(path)
	if !ok {
		return nil, false
	}
	return nal.Says{P: owner, F: nal.Pred{
		Name: "attr",
		Args: []nal.Term{nal.Str(path), nal.Str(v)},
	}}, true
}

// List returns the paths under prefix, sorted.
func (r *Registry) List(prefix string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for p := range r.nodes {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Package privacy implements the Nexus Privacy Authority sketched in §3.4:
// a trust broker that lets a Nexus installation obtain a privacy-preserving
// kernel key usable in lieu of TPM-based keys, masking the precise identity
// of the TPM from remote verifiers.
//
// Protocol: the kernel proves to the authority — over a private channel —
// that it holds a genuine, measured platform, by presenting its TPM's NK
// endorsement (key:EK says key:NK speaksfor key:EK.nexus). The authority
// verifies the chain against its list of known-good platform EKs and issues
// a certificate over a *fresh* pseudonym key:
//
//	key:PA says key:PSEUDONYM speaksfor GenuineNexus
//
// Verifiers that trust the authority accept labels signed with the
// pseudonym without learning which TPM produced them; the authority learns
// the mapping but each verifier sees only an unlinkable pseudonym.
package privacy

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/tpm"
)

// Errors.
var (
	ErrUnknownPlatform = errors.New("privacy: platform EK not on the authority's known-good list")
	ErrBadEndorsement  = errors.New("privacy: NK endorsement chain invalid")
)

// GenuineNexus is the abstract principal the authority vouches pseudonyms
// speak for.
const GenuineNexus = "GenuineNexus"

// Authority is a Nexus privacy authority (trust broker).
type Authority struct {
	key *rsa.PrivateKey

	mu     sync.Mutex
	known  map[string]bool // EK fingerprints of known-good platforms
	serial int64
	issued int
}

// NewAuthority creates an authority with its own signing key.
func NewAuthority() (*Authority, error) {
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		return nil, fmt.Errorf("privacy: generating authority key: %w", err)
	}
	return &Authority{key: key, known: map[string]bool{}}, nil
}

// Fingerprint names the authority's public key.
func (a *Authority) Fingerprint() string { return tpm.Fingerprint(&a.key.PublicKey) }

// Prin is the authority's principal.
func (a *Authority) Prin() nal.Principal { return nal.Key(a.Fingerprint()) }

// AddPlatform registers a known-good platform EK (e.g. from the TPM
// manufacturer's shipping list).
func (a *Authority) AddPlatform(ekFingerprint string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.known[ekFingerprint] = true
}

// Issued reports how many pseudonym certificates the authority has issued.
func (a *Authority) Issued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.issued
}

// Pseudonym is a privacy-preserving identity for one Nexus installation.
type Pseudonym struct {
	// Key is the fresh pseudonym keypair held by the kernel.
	Key *rsa.PrivateKey
	// Cert is the authority's statement
	// "key:PSEUDONYM speaksfor GenuineNexus", signed by the authority.
	Cert *cert.Certificate
}

// Fingerprint names the pseudonym's public half.
func (p *Pseudonym) Fingerprint() string { return tpm.Fingerprint(&p.Key.PublicKey) }

// Prin is the pseudonym principal.
func (p *Pseudonym) Prin() nal.Principal { return nal.Key(p.Fingerprint()) }

// Enroll verifies a kernel's platform endorsement privately and issues a
// fresh pseudonym. The endorsement (and therefore the TPM's identity) never
// appears in the returned certificate.
func (a *Authority) Enroll(k *kernel.Kernel) (*Pseudonym, error) {
	// The kernel demonstrates platform genuineness with an externalized
	// no-op label, whose chain carries the EK→NK endorsement.
	probe, err := k.CreateProcess(0, []byte("privacy-enrollment"))
	if err != nil {
		return nil, err
	}
	defer probe.Exit()
	l, err := probe.Labels.Say("enrolling")
	if err != nil {
		return nil, err
	}
	ext, err := probe.Labels.Externalize(l.Handle)
	if err != nil {
		return nil, err
	}
	ekFP := k.TPM.EKFingerprint()
	if _, err := kernel.VerifyExternalLabels(ext, ekFP); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEndorsement, err)
	}
	a.mu.Lock()
	ok := a.known[ekFP]
	a.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPlatform
	}

	pseud, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		return nil, fmt.Errorf("privacy: generating pseudonym: %w", err)
	}
	a.mu.Lock()
	a.serial++
	serial := a.serial
	a.issued++
	a.mu.Unlock()
	c, err := cert.Sign(cert.Statement{
		Formula: fmt.Sprintf("key:%s speaksfor %s", tpm.Fingerprint(&pseud.PublicKey), GenuineNexus),
		Serial:  serial,
		Issued:  time.Now(),
	}, a.key)
	if err != nil {
		return nil, err
	}
	return &Pseudonym{Key: pseud, Cert: c}, nil
}

// SignLabel signs a statement with the pseudonym, producing a certificate a
// remote verifier checks with VerifyPseudonymousLabel.
func (p *Pseudonym) SignLabel(speaker, formula string, serial int64) (*cert.Certificate, error) {
	return cert.Sign(cert.Statement{
		Speaker: speaker,
		Formula: formula,
		Serial:  serial,
		Issued:  time.Now(),
	}, p.Key)
}

// VerifyPseudonymousLabel checks a pseudonym-signed label against the
// authority's public identity and returns the NAL labels it conveys:
//
//	key:PA says key:PSEUDONYM speaksfor GenuineNexus
//	key:PSEUDONYM says [speaker says] S
//
// The verifier learns nothing about the underlying TPM.
func VerifyPseudonymousLabel(label, pseudonymCert *cert.Certificate, authorityFP string) ([]nal.Formula, error) {
	endorse, err := pseudonymCert.ToLabel()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEndorsement, err)
	}
	says, ok := endorse.(nal.Says)
	if !ok || !says.P.EqualPrin(nal.Key(authorityFP)) {
		return nil, fmt.Errorf("%w: pseudonym not endorsed by trusted authority", ErrBadEndorsement)
	}
	sf, ok := says.F.(nal.SpeaksFor)
	if !ok || !sf.B.EqualPrin(nal.Name(GenuineNexus)) {
		return nil, fmt.Errorf("%w: endorsement malformed", ErrBadEndorsement)
	}
	lab, err := label.ToLabel()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEndorsement, err)
	}
	labSays, ok := lab.(nal.Says)
	if !ok || !labSays.P.EqualPrin(sf.A) {
		return nil, fmt.Errorf("%w: label signed by %v, endorsement names %v", ErrBadEndorsement, lab, sf.A)
	}
	return []nal.Formula{endorse, lab}, nil
}

package privacy

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/tpm"
)

// containsPrin reports whether principal p appears anywhere in f.
func containsPrin(f nal.Formula, p nal.Principal) bool {
	found := false
	var walkP func(nal.Principal)
	walkP = func(q nal.Principal) {
		if q.EqualPrin(p) {
			found = true
		}
		if s, ok := q.(nal.Sub); ok {
			walkP(s.Parent)
		}
	}
	var walk func(nal.Formula)
	walk = func(f nal.Formula) {
		switch v := f.(type) {
		case nal.Says:
			walkP(v.P)
			walk(v.F)
		case nal.SpeaksFor:
			walkP(v.A)
			walkP(v.B)
		case nal.Not:
			walk(v.F)
		case nal.And:
			walk(v.L)
			walk(v.R)
		case nal.Or:
			walk(v.L)
			walk(v.R)
		case nal.Implies:
			walk(v.L)
			walk(v.R)
		case nal.Pred:
			for _, a := range v.Args {
				if pt, ok := a.(nal.PrinTerm); ok {
					walkP(pt.P)
				}
			}
		}
	}
	walk(f)
	return found
}

func bootNexus(t *testing.T) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEnrollAndVerify(t *testing.T) {
	k := bootNexus(t)
	pa, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	pa.AddPlatform(k.TPM.EKFingerprint())
	pseud, err := pa.Enroll(k)
	if err != nil {
		t.Fatal(err)
	}
	// The kernel signs an application label with the pseudonym.
	lc, err := pseud.SignLabel("ipd.12", "isTypeSafe(hash:ab12)", 1)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := VerifyPseudonymousLabel(lc, pseud.Cert, pa.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	// Neither label mentions the TPM's EK.
	ek := k.TPM.EKFingerprint()
	for _, l := range labels {
		if containsPrin(l, nal.Key(ek)) {
			t.Errorf("label %q leaks the platform EK", l)
		}
	}
	if pa.Issued() != 1 {
		t.Errorf("Issued = %d", pa.Issued())
	}
}

func TestUnknownPlatformRefused(t *testing.T) {
	k := bootNexus(t)
	pa, _ := NewAuthority()
	// The platform's EK is not on the list.
	if _, err := pa.Enroll(k); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("want ErrUnknownPlatform, got %v", err)
	}
}

func TestPseudonymsAreUnlinkable(t *testing.T) {
	k := bootNexus(t)
	pa, _ := NewAuthority()
	pa.AddPlatform(k.TPM.EKFingerprint())
	p1, err := pa.Enroll(k)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pa.Enroll(k)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Error("re-enrollment must produce a fresh pseudonym")
	}
}

func TestWrongAuthorityRejected(t *testing.T) {
	k := bootNexus(t)
	pa, _ := NewAuthority()
	pa.AddPlatform(k.TPM.EKFingerprint())
	pseud, err := pa.Enroll(k)
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := pseud.SignLabel("", "ok", 1)
	other, _ := NewAuthority()
	if _, err := VerifyPseudonymousLabel(lc, pseud.Cert, other.Fingerprint()); !errors.Is(err, ErrBadEndorsement) {
		t.Errorf("want ErrBadEndorsement, got %v", err)
	}
}

func TestForeignKeyCannotUsePseudonymCert(t *testing.T) {
	k := bootNexus(t)
	pa, _ := NewAuthority()
	pa.AddPlatform(k.TPM.EKFingerprint())
	pseud, err := pa.Enroll(k)
	if err != nil {
		t.Fatal(err)
	}
	// An attacker with its own key tries to ride the pseudonym cert.
	attacker, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := (&Pseudonym{Key: attacker}).SignLabel("", "ok", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyPseudonymousLabel(lc, pseud.Cert, pa.Fingerprint()); !errors.Is(err, ErrBadEndorsement) {
		t.Errorf("want ErrBadEndorsement, got %v", err)
	}
}

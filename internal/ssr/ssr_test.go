package ssr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/tpm"
)

func newWorld(t *testing.T) (*tpm.TPM, *disk.Disk, *Manager) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if err := tp.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel}); err != nil {
		t.Fatal(err)
	}
	d := disk.New()
	m, err := Init(tp, d)
	if err != nil {
		t.Fatal(err)
	}
	return tp, d, m
}

// reboot simulates a power cycle and recovery with the genuine kernel.
func reboot(t *testing.T, tp *tpm.TPM, d *disk.Disk) (*Manager, error) {
	t.Helper()
	tp.Startup()
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	return Recover(tp, d)
}

func TestMerkleRootChangesWithAnyBlock(t *testing.T) {
	blocks := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	r1 := MerkleRoot(blocks)
	for i := range blocks {
		mod := make([][]byte, len(blocks))
		copy(mod, blocks)
		mod[i] = []byte("X")
		if MerkleRoot(mod) == r1 {
			t.Errorf("modifying block %d did not change root", i)
		}
	}
	if MerkleRoot(nil) == r1 {
		t.Error("empty root collides")
	}
}

func TestMerkleInclusionProofs(t *testing.T) {
	blocks := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e")}
	root := MerkleRoot(blocks)
	for i, b := range blocks {
		path, lefts := MerklePath(blocks, i)
		if !VerifyInclusion(b, path, lefts, root) {
			t.Errorf("inclusion proof for block %d failed", i)
		}
		if VerifyInclusion([]byte("evil"), path, lefts, root) {
			t.Errorf("forged block %d verified", i)
		}
	}
}

func TestQuickMerkleInclusion(t *testing.T) {
	prop := func(data [][]byte, idx uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		root := MerkleRoot(data)
		path, lefts := MerklePath(data, i)
		return VerifyInclusion(data[i], path, lefts, root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVDIRPersistsAcrossReboot(t *testing.T) {
	tp, d, m := newWorld(t)
	id, err := m.CreateVDIR()
	if err != nil {
		t.Fatal(err)
	}
	want := tpm.Digest{1, 2, 3}
	if err := m.WriteVDIR(id, want); err != nil {
		t.Fatal(err)
	}
	m2, err := reboot(t, tp, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.ReadVDIR(id)
	if err != nil || got != want {
		t.Errorf("recovered VDIR = %v, %v", got, err)
	}
	// Allocation counter also persists: new ids don't collide.
	id2, _ := m2.CreateVDIR()
	if id2 == id {
		t.Error("VDIR id reused after reboot")
	}
}

func TestReplayedDiskAbortsBoot(t *testing.T) {
	tp, d, m := newWorld(t)
	id, _ := m.CreateVDIR()
	m.WriteVDIR(id, tpm.Digest{1})
	snapshot := d.Snapshot() // attacker images the disk
	m.WriteVDIR(id, tpm.Digest{2})
	d.Restore(snapshot) // attacker replays the old image
	if _, err := reboot(t, tp, d); !errors.Is(err, ErrStateTampered) {
		t.Errorf("replayed disk: want ErrStateTampered, got %v", err)
	}
}

func TestCrashAtEveryProtocolStep(t *testing.T) {
	// After a crash at any point in the four-step protocol, recovery must
	// produce either the old or the new VDIR value — never garbage, never
	// an abort.
	for failAt := 0; failAt < 4; failAt++ {
		tp, d, m := newWorld(t)
		id, err := m.CreateVDIR()
		if err != nil {
			t.Fatal(err)
		}
		oldVal := tpm.Digest{0xAA}
		if err := m.WriteVDIR(id, oldVal); err != nil {
			t.Fatal(err)
		}
		newVal := tpm.Digest{0xBB}
		// The flush performs 2 disk writes and 2 DIR writes; inject a disk
		// failure. failAt counts successful *disk* writes before failure
		// (step 1 = state/new, step 4 = state/current); DIR writes cannot
		// fail in this simulation, so failAt 0 → crash before step 1,
		// failAt 1 → crash before step 4.
		d.FailAfter(failAt % 2)
		err = m.WriteVDIR(id, newVal)
		d.FailAfter(-1)
		if failAt%2 == 0 && err == nil {
			t.Fatalf("failAt=%d: expected write failure", failAt)
		}
		m2, rerr := reboot(t, tp, d)
		if rerr != nil {
			t.Fatalf("failAt=%d: recovery aborted: %v", failAt, rerr)
		}
		got, gerr := m2.ReadVDIR(id)
		if gerr != nil {
			t.Fatalf("failAt=%d: VDIR lost: %v", failAt, gerr)
		}
		if got != oldVal && got != newVal {
			t.Errorf("failAt=%d: recovered %v, want old %v or new %v", failAt, got, oldVal, newVal)
		}
	}
}

func TestModifiedKernelCannotRecover(t *testing.T) {
	tp, d, _ := newWorld(t)
	tp.Startup()
	tp.Extend(tpm.PCRKernel, []byte("evil"))
	if _, err := Recover(tp, d); err == nil {
		t.Error("modified kernel must not read DIRs")
	}
}

func TestRegionReadWrite(t *testing.T) {
	_, _, m := newWorld(t)
	r, err := m.CreateRegion("tokens", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("authentication cookie")
	if err := r.Write(100, msg); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(100, len(msg))
	if err != nil || !bytes.Equal(got, msg) {
		t.Errorf("Read = %q, %v", got, err)
	}
	// Spanning a block boundary.
	big := bytes.Repeat([]byte("xy"), BlockSize) // 2 blocks
	if err := r.Write(BlockSize-7, big[:300]); err != nil {
		t.Fatal(err)
	}
	got, err = r.Read(BlockSize-7, 300)
	if err != nil || !bytes.Equal(got, big[:300]) {
		t.Errorf("spanning read failed: %v", err)
	}
	if _, err := r.ReadBlock(99); !errors.Is(err, ErrBadBlock) {
		t.Errorf("bad block: want ErrBadBlock, got %v", err)
	}
}

func TestRegionDetectsTamperingAndReplay(t *testing.T) {
	_, d, m := newWorld(t)
	r, err := m.CreateRegion("secrets", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteBlock(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Direct disk tampering.
	img := d.Snapshot()
	blk := img["/ssr/secrets/000000"]
	blk[headerSize+1] ^= 0xFF
	d.Restore(img)
	if _, err := r.ReadBlock(0); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered block: want ErrIntegrity, got %v", err)
	}
	// Replay: write v1, snapshot, write v2, restore old block only.
	if err := r.WriteBlock(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	old := d.Snapshot()
	if err := r.WriteBlock(0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	d.Restore(old)
	if _, err := r.ReadBlock(0); !errors.Is(err, ErrIntegrity) {
		t.Errorf("replayed block: want ErrIntegrity, got %v", err)
	}
}

func TestRegionConfidentiality(t *testing.T) {
	_, d, m := newWorld(t)
	ks := NewKeyStore()
	key, err := ks.Create(KeyAES)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.CreateRegion("enc", 2, key)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("HIPAA-protected-record")
	if err := r.WriteBlock(0, secret); err != nil {
		t.Fatal(err)
	}
	// Ciphertext on disk must not contain the plaintext.
	raw, err := d.Read("/ssr/enc/000000")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Error("plaintext visible on disk")
	}
	got, err := r.ReadBlock(0)
	if err != nil || !bytes.Equal(got[:len(secret)], secret) {
		t.Errorf("decrypt = %q, %v", got[:32], err)
	}
	// Two writes of the same plaintext produce different ciphertext (fresh
	// IVs from version counters).
	if err := r.WriteBlock(1, secret); err != nil {
		t.Fatal(err)
	}
	c1, _ := d.Read("/ssr/enc/000001")
	if err := r.WriteBlock(1, secret); err != nil {
		t.Fatal(err)
	}
	c2, _ := d.Read("/ssr/enc/000001")
	if bytes.Equal(c1, c2) {
		t.Error("CTR IV reuse: identical ciphertexts for repeated write")
	}
}

func TestRegionDestroy(t *testing.T) {
	_, _, m := newWorld(t)
	r, _ := m.CreateRegion("tmp", 1, nil)
	n := m.VDIRCount()
	if err := r.Destroy(); err != nil {
		t.Fatal(err)
	}
	if m.VDIRCount() != n-1 {
		t.Error("VDIR not released")
	}
	if _, err := r.ReadBlock(0); !errors.Is(err, ErrDestroyed) {
		t.Errorf("want ErrDestroyed, got %v", err)
	}
	if err := r.Destroy(); !errors.Is(err, ErrDestroyed) {
		t.Errorf("double destroy: want ErrDestroyed, got %v", err)
	}
}

func TestVKeyLifecycle(t *testing.T) {
	ks := NewKeyStore()
	aesKey, err := ks.Create(KeyAES)
	if err != nil {
		t.Fatal(err)
	}
	rsaKey, err := ks.Create(KeyRSA)
	if err != nil {
		t.Fatal(err)
	}
	// Signing.
	digest := [32]byte{1, 2, 3}
	sig, err := rsaKey.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := rsaKey.VerifySig(digest, sig); err != nil {
		t.Errorf("verify: %v", err)
	}
	if _, err := aesKey.Sign(digest); !errors.Is(err, ErrWrongKeyType) {
		t.Error("AES key must not sign")
	}
	// Externalize/internalize round trip under a wrapping key.
	wrap, _ := ks.Create(KeyAES)
	blob, err := rsaKey.Externalize(wrap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ks.Internalize(blob, wrap)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.VerifySig(digest, sig); err != nil {
		t.Error("internalized key differs")
	}
	// Wrong wrapping key cannot open it.
	wrong, _ := ks.Create(KeyAES)
	if _, err := ks.Internalize(blob, wrong); !errors.Is(err, ErrVKeySealed) {
		t.Errorf("want ErrVKeySealed, got %v", err)
	}
	// Destroy.
	if err := ks.Destroy(rsaKey.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Get(rsaKey.ID); !errors.Is(err, ErrNoSuchVKey) {
		t.Errorf("want ErrNoSuchVKey, got %v", err)
	}
	// CTR encryption is symmetric.
	iv := [16]byte{9}
	ct, err := aesKey.EncryptCTR(iv, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := aesKey.EncryptCTR(iv, ct)
	if string(pt) != "hello" {
		t.Errorf("CTR round trip = %q", pt)
	}
	if fp, err := back.Fingerprint(); err != nil || fp == "" {
		t.Errorf("Fingerprint = %q, %v", fp, err)
	}
}

func TestQuickRegionRoundTrip(t *testing.T) {
	_, _, m := newWorld(t)
	ks := NewKeyStore()
	key, _ := ks.Create(KeyAES)
	r, err := m.CreateRegion("quick", 3, key)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte, off uint16) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		o := int(off) % (3*BlockSize - 513)
		if err := r.Write(o, data); err != nil {
			return false
		}
		got, err := r.Read(o, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Package ssr implements the Nexus attested-storage stack of §3.3: Secure
// Storage Regions (SSRs) — integrity-protected, optionally encrypted,
// replay-proof persistent storage — multiplexed over the TPM's two data
// integrity registers through kernel-managed Virtual Data Integrity
// Registers (VDIRs) and Virtual Keys (VKEYs), with a Merkle hash tree
// decoupling hashing cost from file size and a four-step update protocol
// that withstands asynchronous shutdown.
package ssr

import (
	"crypto/sha1"

	"repro/internal/tpm"
)

// MerkleRoot computes the root of the binary Merkle tree whose leaves are
// the SHA-1 hashes of the given blocks. A single root hash protects the
// whole file while localizing re-hashing to a logarithmic path (§3.3).
// The root of zero blocks is the hash of the empty string.
func MerkleRoot(blocks [][]byte) tpm.Digest {
	if len(blocks) == 0 {
		return sha1.Sum(nil)
	}
	level := make([]tpm.Digest, len(blocks))
	for i, b := range blocks {
		level[i] = leafHash(b)
	}
	for len(level) > 1 {
		level = foldLevel(level)
	}
	return level[0]
}

// MerklePath returns the sibling hashes needed to verify block i against
// the root, bottom-up, together with the left/right position at each level.
func MerklePath(blocks [][]byte, i int) (path []tpm.Digest, lefts []bool) {
	level := make([]tpm.Digest, len(blocks))
	for j, b := range blocks {
		level[j] = leafHash(b)
	}
	for len(level) > 1 {
		if i^1 < len(level) {
			path = append(path, level[i^1])
		} else {
			// Odd node promoted: sibling is itself (duplicated).
			path = append(path, level[i])
		}
		lefts = append(lefts, i%2 == 1)
		level = foldLevel(level)
		i /= 2
	}
	return path, lefts
}

// VerifyInclusion checks a Merkle path for a block.
func VerifyInclusion(block []byte, path []tpm.Digest, lefts []bool, root tpm.Digest) bool {
	h := leafHash(block)
	for i, sib := range path {
		if lefts[i] {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
	}
	return h == root
}

func leafHash(b []byte) tpm.Digest {
	h := sha1.New()
	h.Write([]byte{0x00}) // domain separation: leaf
	h.Write(b)
	var d tpm.Digest
	copy(d[:], h.Sum(nil))
	return d
}

func nodeHash(l, r tpm.Digest) tpm.Digest {
	h := sha1.New()
	h.Write([]byte{0x01}) // domain separation: inner node
	h.Write(l[:])
	h.Write(r[:])
	var d tpm.Digest
	copy(d[:], h.Sum(nil))
	return d
}

func foldLevel(level []tpm.Digest) []tpm.Digest {
	next := make([]tpm.Digest, 0, (len(level)+1)/2)
	for i := 0; i < len(level); i += 2 {
		if i+1 < len(level) {
			next = append(next, nodeHash(level[i], level[i+1]))
		} else {
			next = append(next, nodeHash(level[i], level[i]))
		}
	}
	return next
}

package ssr

import (
	"errors"
	"fmt"

	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// Group signatures (§3.3): a VKEY whose sign operation is guarded by a goal
// formula dischargeable by group members, with a distinct — typically
// stricter — goal on externalize, separating the programs that can sign for
// the group from those that manage its key material.

// ErrGroupDenied is returned when a proof fails a group key's goal.
var ErrGroupDenied = errors.New("ssr: group key operation denied")

// GroupKey wraps an RSA VKEY with per-operation goal formulas.
type GroupKey struct {
	key *VKey
	// SignGoal must be discharged (with ?S bound to the caller) to sign.
	SignGoal nal.Formula
	// ExternalizeGoal must be discharged to export the key material.
	ExternalizeGoal nal.Formula
	// TrustRoots for proof checking (typically the kernel).
	TrustRoots []nal.Principal
}

// NewGroupKey creates a group key in the store with the given goals.
func NewGroupKey(s *KeyStore, signGoal, externGoal nal.Formula, roots []nal.Principal) (*GroupKey, error) {
	k, err := s.Create(KeyRSA)
	if err != nil {
		return nil, err
	}
	return &GroupKey{key: k, SignGoal: signGoal, ExternalizeGoal: externGoal, TrustRoots: roots}, nil
}

// Public returns the underlying VKEY for verification.
func (g *GroupKey) Public() *VKey { return g.key }

func (g *GroupKey) authorize(goal nal.Formula, caller nal.Principal, pf *proof.Proof, creds []nal.Formula) error {
	inst := nal.Subst{"S": nal.PrinTerm{P: caller}}.Apply(goal)
	if _, err := proof.Check(pf, inst, &proof.Env{Credentials: creds, TrustRoots: g.TrustRoots}); err != nil {
		return fmt.Errorf("%w: %v", ErrGroupDenied, err)
	}
	return nil
}

// Sign signs on behalf of the group if the caller discharges the sign goal.
func (g *GroupKey) Sign(caller nal.Principal, pf *proof.Proof, creds []nal.Formula, digest [32]byte) ([]byte, error) {
	if err := g.authorize(g.SignGoal, caller, pf, creds); err != nil {
		return nil, err
	}
	return g.key.Sign(digest)
}

// Externalize exports the wrapped key material if the caller discharges the
// externalize goal.
func (g *GroupKey) Externalize(caller nal.Principal, pf *proof.Proof, creds []nal.Formula, wrapping *VKey) ([]byte, error) {
	if err := g.authorize(g.ExternalizeGoal, caller, pf, creds); err != nil {
		return nil, err
	}
	return g.key.Externalize(wrapping)
}

package ssr

import (
	"errors"
	"testing"

	"repro/internal/nal"
	"repro/internal/nal/proof"
)

func TestGroupSignatures(t *testing.T) {
	s := NewKeyStore()
	admin := nal.Name("admin")
	// Sign goal: admin vouches membership of the caller.
	signGoal := nal.MustParse("admin says member(?S)")
	// Externalize goal: only admin itself.
	externGoal := nal.MustParse("admin says isAdmin(?S)")
	g, err := NewGroupKey(s, signGoal, externGoal, nil)
	if err != nil {
		t.Fatal(err)
	}

	alice := nal.Name("alice")
	membership := nal.Says{P: admin, F: nal.Pred{Name: "member", Args: []nal.Term{nal.PrinTerm{P: alice}}}}
	d := &proof.Deriver{Creds: []nal.Formula{membership}}
	goal := nal.Subst{"S": nal.PrinTerm{P: alice}}.Apply(signGoal)
	pf, err := d.Derive(goal)
	if err != nil {
		t.Fatal(err)
	}

	digest := [32]byte{7}
	sig, err := g.Sign(alice, pf, []nal.Formula{membership}, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Public().VerifySig(digest, sig); err != nil {
		t.Errorf("group signature invalid: %v", err)
	}

	// A member cannot externalize: the goals are separate.
	wrap, _ := s.Create(KeyAES)
	if _, err := g.Externalize(alice, pf, []nal.Formula{membership}, wrap); !errors.Is(err, ErrGroupDenied) {
		t.Errorf("member externalize: want ErrGroupDenied, got %v", err)
	}

	// Non-members cannot sign.
	eve := nal.Name("eve")
	if _, err := g.Sign(eve, pf, []nal.Formula{membership}, digest); !errors.Is(err, ErrGroupDenied) {
		t.Errorf("non-member sign: want ErrGroupDenied, got %v", err)
	}

	// The admin can externalize with the right credential.
	adminCred := nal.Says{P: admin, F: nal.Pred{Name: "isAdmin", Args: []nal.Term{nal.PrinTerm{P: admin}}}}
	d2 := &proof.Deriver{Creds: []nal.Formula{adminCred}}
	goal2 := nal.Subst{"S": nal.PrinTerm{P: admin}}.Apply(externGoal)
	pf2, err := d2.Derive(goal2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := g.Externalize(admin, pf2, []nal.Formula{adminCred}, wrap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Internalize(blob, wrap)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.VerifySig(digest, sig); err != nil {
		t.Error("reimported group key differs")
	}
}

package ssr

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/disk"
	"repro/internal/tpm"
)

// State files holding the serialized kernel hash tree (§3.3).
const (
	StateCurrent = "/proc/state/current"
	StateNew     = "/proc/state/new"
)

// Errors returned by the VDIR manager.
var (
	// ErrStateTampered aborts boot: neither on-disk state file matches a
	// DIR, indicating the disk was modified or replayed while dormant.
	ErrStateTampered = errors.New("ssr: on-disk state matches neither DIR — tampering or replay detected")
	ErrNoSuchVDIR    = errors.New("ssr: no such VDIR")
)

// Manager is the kernel component multiplexing the TPM's two 20-byte DIRs
// into an arbitrary number of VDIRs. VDIR contents live in a hash table
// whose serialized form is protected by a Merkle root stored in the DIRs.
type Manager struct {
	tpm  *tpm.TPM
	disk *disk.Disk

	mu    sync.Mutex
	vdirs map[uint32]tpm.Digest
	next  uint32
}

// Init creates a fresh manager on first boot, writing the initial (empty)
// state to disk and both DIRs. The TPM must already be owned with the
// caller's PCR state matching the DIR binding.
func Init(t *tpm.TPM, d *disk.Disk) (*Manager, error) {
	m := &Manager{tpm: t, disk: d, vdirs: map[uint32]tpm.Digest{}, next: 1}
	if err := m.flush(); err != nil {
		return nil, fmt.Errorf("ssr: initial flush: %w", err)
	}
	return m, nil
}

// Recover reconstructs the manager after a reboot using the §3.3 recovery
// rule: if only one state file hashes to its DIR, use it; if both match,
// /proc/state/new is the latest; if neither matches, abort the boot.
func Recover(t *tpm.TPM, d *disk.Disk) (*Manager, error) {
	dirCur, err := t.DIRRead(0)
	if err != nil {
		return nil, fmt.Errorf("ssr: reading DIRcur: %w", err)
	}
	dirNew, err := t.DIRRead(1)
	if err != nil {
		return nil, fmt.Errorf("ssr: reading DIRnew: %w", err)
	}
	curData, curErr := d.Read(StateCurrent)
	newData, newErr := d.Read(StateNew)
	curOK := curErr == nil && stateRoot(curData) == dirCur
	newOK := newErr == nil && stateRoot(newData) == dirNew

	var chosen []byte
	switch {
	case curOK && newOK:
		chosen = newData
	case newOK:
		chosen = newData
	case curOK:
		chosen = curData
	default:
		return nil, ErrStateTampered
	}
	m := &Manager{tpm: t, disk: d, vdirs: map[uint32]tpm.Digest{}}
	if err := m.decode(chosen); err != nil {
		return nil, err
	}
	return m, nil
}

// CreateVDIR allocates a new virtual data integrity register initialized to
// the zero digest.
func (m *Manager) CreateVDIR() (uint32, error) {
	m.mu.Lock()
	id := m.next
	m.next++
	m.vdirs[id] = tpm.Digest{}
	m.mu.Unlock()
	return id, m.flush()
}

// DestroyVDIR releases a VDIR.
func (m *Manager) DestroyVDIR(id uint32) error {
	m.mu.Lock()
	if _, ok := m.vdirs[id]; !ok {
		m.mu.Unlock()
		return ErrNoSuchVDIR
	}
	delete(m.vdirs, id)
	m.mu.Unlock()
	return m.flush()
}

// WriteVDIR updates a VDIR and persists the change through the crash-safe
// protocol. The success return means all four steps completed (§3.3).
func (m *Manager) WriteVDIR(id uint32, d tpm.Digest) error {
	m.mu.Lock()
	if _, ok := m.vdirs[id]; !ok {
		m.mu.Unlock()
		return ErrNoSuchVDIR
	}
	old := m.vdirs[id]
	m.vdirs[id] = d
	m.mu.Unlock()
	if err := m.flush(); err != nil {
		// The in-memory copy must not advertise a state that never became
		// durable.
		m.mu.Lock()
		m.vdirs[id] = old
		m.mu.Unlock()
		return err
	}
	return nil
}

// ReadVDIR returns the current contents of a VDIR.
func (m *Manager) ReadVDIR(id uint32) (tpm.Digest, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.vdirs[id]
	if !ok {
		return tpm.Digest{}, ErrNoSuchVDIR
	}
	return d, nil
}

// VDIRCount reports the number of live VDIRs.
func (m *Manager) VDIRCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.vdirs)
}

// flush runs the four-step update protocol:
//
//	(1) write the new hash tree to /proc/state/new
//	(2) write the new root into DIRnew
//	(3) write the new root into DIRcur
//	(4) write the hash tree to /proc/state/current
//
// A crash between any two steps leaves at least one (file, DIR) pair
// consistent, which Recover exploits.
func (m *Manager) flush() error {
	data := m.encode()
	root := stateRoot(data)
	if err := m.disk.Write(StateNew, data); err != nil {
		return fmt.Errorf("ssr: step 1: %w", err)
	}
	if err := m.tpm.DIRWrite(1, root); err != nil {
		return fmt.Errorf("ssr: step 2: %w", err)
	}
	if err := m.tpm.DIRWrite(0, root); err != nil {
		return fmt.Errorf("ssr: step 3: %w", err)
	}
	if err := m.disk.Write(StateCurrent, data); err != nil {
		return fmt.Errorf("ssr: step 4: %w", err)
	}
	return nil
}

// encode serializes the VDIR table deterministically.
func (m *Manager) encode() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]uint32, 0, len(m.vdirs))
	for id := range m.vdirs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, 8+len(ids)*(4+tpm.DigestSize))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(ids)))
	binary.LittleEndian.PutUint32(hdr[4:], m.next)
	buf = append(buf, hdr[:]...)
	for _, id := range ids {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], id)
		buf = append(buf, b[:]...)
		d := m.vdirs[id]
		buf = append(buf, d[:]...)
	}
	return buf
}

func (m *Manager) decode(data []byte) error {
	if len(data) < 8 {
		return ErrStateTampered
	}
	n := binary.LittleEndian.Uint32(data[:4])
	m.next = binary.LittleEndian.Uint32(data[4:8])
	data = data[8:]
	if uint32(len(data)) != n*(4+tpm.DigestSize) {
		return ErrStateTampered
	}
	for i := uint32(0); i < n; i++ {
		id := binary.LittleEndian.Uint32(data[:4])
		var d tpm.Digest
		copy(d[:], data[4:4+tpm.DigestSize])
		m.vdirs[id] = d
		data = data[4+tpm.DigestSize:]
	}
	return nil
}

// stateRoot computes the Merkle root protecting the serialized table,
// chunked into tree blocks so cost stays logarithmic in table size.
func stateRoot(data []byte) tpm.Digest {
	const block = 256
	if len(data) == 0 {
		return sha1.Sum(nil)
	}
	var blocks [][]byte
	for off := 0; off < len(data); off += block {
		end := off + block
		if end > len(data) {
			end = len(data)
		}
		blocks = append(blocks, data[off:end])
	}
	return MerkleRoot(blocks)
}

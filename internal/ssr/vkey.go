package ssr

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// VKEY errors.
var (
	ErrNoSuchVKey   = errors.New("ssr: no such VKEY")
	ErrWrongKeyType = errors.New("ssr: operation unsupported for this key type")
	ErrVKeySealed   = errors.New("ssr: externalized VKEY cannot be opened with this key")
)

// KeyType distinguishes VKEY flavors.
type KeyType int

// Key types.
const (
	KeyAES KeyType = iota // 256-bit symmetric key
	KeyRSA                // 1024-bit signing key
)

// VKey is a kernel-protected key (§3.3). Key material lives in protected
// memory in the kernel; applications hold only handles, and goal formulas
// can be attached to each operation (sign vs externalize) independently.
type VKey struct {
	ID   uint32
	Type KeyType

	aes [32]byte
	rsa *rsa.PrivateKey
}

// KeyStore manages VKEYs.
type KeyStore struct {
	mu   sync.Mutex
	keys map[uint32]*VKey
	next uint32
}

// NewKeyStore creates an empty VKEY store.
func NewKeyStore() *KeyStore {
	return &KeyStore{keys: map[uint32]*VKey{}, next: 1}
}

// Create generates a new VKEY of the given type.
func (s *KeyStore) Create(t KeyType) (*VKey, error) {
	k := &VKey{Type: t}
	switch t {
	case KeyAES:
		if _, err := rand.Read(k.aes[:]); err != nil {
			return nil, err
		}
	case KeyRSA:
		pk, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			return nil, err
		}
		k.rsa = pk
	default:
		return nil, ErrWrongKeyType
	}
	s.mu.Lock()
	k.ID = s.next
	s.next++
	s.keys[k.ID] = k
	s.mu.Unlock()
	return k, nil
}

// Get resolves a VKEY handle.
func (s *KeyStore) Get(id uint32) (*VKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.keys[id]
	if !ok {
		return nil, ErrNoSuchVKey
	}
	return k, nil
}

// Destroy removes a VKEY; its material is gone.
func (s *KeyStore) Destroy(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.keys[id]; !ok {
		return ErrNoSuchVKey
	}
	delete(s.keys, id)
	return nil
}

// Sign signs a digest with an RSA VKEY. Group signatures are built by
// guarding this operation with a goal dischargeable by group members (§3.3).
func (k *VKey) Sign(digest [32]byte) ([]byte, error) {
	if k.Type != KeyRSA {
		return nil, ErrWrongKeyType
	}
	return rsa.SignPKCS1v15(rand.Reader, k.rsa, crypto.SHA256, digest[:])
}

// VerifySig verifies a signature made with Sign.
func (k *VKey) VerifySig(digest [32]byte, sig []byte) error {
	if k.Type != KeyRSA {
		return ErrWrongKeyType
	}
	return rsa.VerifyPKCS1v15(&k.rsa.PublicKey, crypto.SHA256, digest[:], sig)
}

// EncryptCTR encrypts (or decrypts — CTR is symmetric) data with an AES
// VKEY in counter mode using the given initialization vector. Counter mode
// lets SSR blocks be encrypted independently, decoupling operation time
// from file size and enabling demand paging (§3.3).
func (k *VKey) EncryptCTR(iv [16]byte, data []byte) ([]byte, error) {
	if k.Type != KeyAES {
		return nil, ErrWrongKeyType
	}
	block, err := aes.NewCipher(k.aes[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, data)
	return out, nil
}

// Externalize exports the key material wrapped under another AES VKEY, for
// backup or transfer; goal formulas typically restrict this operation to a
// narrower set of principals than Sign.
func (k *VKey) Externalize(wrapping *VKey) ([]byte, error) {
	if wrapping.Type != KeyAES {
		return nil, ErrWrongKeyType
	}
	var plain []byte
	switch k.Type {
	case KeyAES:
		plain = append([]byte{byte(KeyAES)}, k.aes[:]...)
	case KeyRSA:
		plain = append([]byte{byte(KeyRSA)}, marshalRSA(k.rsa)...)
	}
	blk, err := aes.NewCipher(wrapping.aes[:])
	if err != nil {
		return nil, err
	}
	g, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, g.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return append(nonce, g.Seal(nil, nonce, plain, nil)...), nil
}

// Internalize imports key material previously exported with Externalize.
func (s *KeyStore) Internalize(wrapped []byte, wrapping *VKey) (*VKey, error) {
	if wrapping.Type != KeyAES {
		return nil, ErrWrongKeyType
	}
	blk, err := aes.NewCipher(wrapping.aes[:])
	if err != nil {
		return nil, err
	}
	g, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	if len(wrapped) < g.NonceSize() {
		return nil, ErrVKeySealed
	}
	plain, err := g.Open(nil, wrapped[:g.NonceSize()], wrapped[g.NonceSize():], nil)
	if err != nil {
		return nil, ErrVKeySealed
	}
	if len(plain) < 1 {
		return nil, ErrVKeySealed
	}
	k := &VKey{Type: KeyType(plain[0])}
	switch k.Type {
	case KeyAES:
		if len(plain) != 1+32 {
			return nil, ErrVKeySealed
		}
		copy(k.aes[:], plain[1:])
	case KeyRSA:
		pk, err := unmarshalRSA(plain[1:])
		if err != nil {
			return nil, ErrVKeySealed
		}
		k.rsa = pk
	default:
		return nil, ErrVKeySealed
	}
	s.mu.Lock()
	k.ID = s.next
	s.next++
	s.keys[k.ID] = k
	s.mu.Unlock()
	return k, nil
}

// Fingerprint names an RSA VKEY's public half.
func (k *VKey) Fingerprint() (string, error) {
	if k.Type != KeyRSA {
		return "", ErrWrongKeyType
	}
	sum := sha256.Sum256(marshalRSA(k.rsa))
	return fmt.Sprintf("%x", sum[:10]), nil
}

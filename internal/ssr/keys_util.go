package ssr

import (
	"crypto/rsa"
	"crypto/x509"
)

func marshalRSA(k *rsa.PrivateKey) []byte {
	return x509.MarshalPKCS1PrivateKey(k)
}

func unmarshalRSA(der []byte) (*rsa.PrivateKey, error) {
	return x509.ParsePKCS1PrivateKey(der)
}

package ssr

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/tpm"
)

// SSR errors.
var (
	// ErrIntegrity indicates a block failed verification against the VDIR-
	// protected Merkle root: tampering or a replayed disk image.
	ErrIntegrity = errors.New("ssr: block integrity check failed")
	ErrBadBlock  = errors.New("ssr: block index out of range")
	ErrDestroyed = errors.New("ssr: region destroyed")
)

// BlockSize is the SSR block granularity. The paper's implementation uses
// 1 kB blocks (small files pay a padding cost, visible in Figure 8).
const BlockSize = 1024

// Region is a Secure Storage Region: an integrity-protected, optionally
// encrypted store of fixed-size blocks on the untrusted disk, rooted in a
// VDIR (§3.3).
type Region struct {
	mgr  *Manager
	vdir uint32
	name string
	key  *VKey // nil = integrity only

	mu        sync.Mutex
	numBlocks int
	versions  []uint64 // per-block write counters (CTR IV freshness)
	destroyed bool
}

// CreateRegion allocates an SSR of the given number of blocks. key, when
// non-nil, must be an AES VKEY used for counter-mode confidentiality.
func (m *Manager) CreateRegion(name string, numBlocks int, key *VKey) (*Region, error) {
	if key != nil && key.Type != KeyAES {
		return nil, ErrWrongKeyType
	}
	vdir, err := m.CreateVDIR()
	if err != nil {
		return nil, err
	}
	r := &Region{
		mgr:       m,
		vdir:      vdir,
		name:      name,
		key:       key,
		numBlocks: numBlocks,
		versions:  make([]uint64, numBlocks),
	}
	// Materialize empty blocks so the Merkle root is well defined.
	for i := 0; i < numBlocks; i++ {
		if err := r.writeRaw(i, make([]byte, BlockSize)); err != nil {
			return nil, err
		}
	}
	return r, r.commit()
}

// Destroy releases the region and its VDIR.
func (r *Region) Destroy() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.destroyed {
		return ErrDestroyed
	}
	r.destroyed = true
	for i := 0; i < r.numBlocks; i++ {
		r.mgr.disk.Delete(r.blockFile(i))
	}
	return r.mgr.DestroyVDIR(r.vdir)
}

// NumBlocks reports the region size in blocks.
func (r *Region) NumBlocks() int { return r.numBlocks }

// VDIR reports the backing virtual data integrity register.
func (r *Region) VDIR() uint32 { return r.vdir }

func (r *Region) blockFile(i int) string {
	return fmt.Sprintf("/ssr/%s/%06d", r.name, i)
}

// header layout: version counter (8 bytes).
const headerSize = 8

// writeRaw stores one block (encrypting if configured) without committing
// the Merkle root.
func (r *Region) writeRaw(i int, data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("ssr: block must be exactly %d bytes", BlockSize)
	}
	r.versions[i]++
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(hdr, r.versions[i])
	payload := data
	if r.key != nil {
		enc, err := r.key.EncryptCTR(r.iv(i, r.versions[i]), data)
		if err != nil {
			return err
		}
		payload = enc
	}
	return r.mgr.disk.Write(r.blockFile(i), append(hdr, payload...))
}

// iv derives a fresh counter-mode IV from region name, block index, and
// version, so no (key, IV) pair ever repeats.
func (r *Region) iv(i int, version uint64) [16]byte {
	h := sha1.New()
	h.Write([]byte(r.name))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(i))
	binary.LittleEndian.PutUint64(b[8:], version)
	h.Write(b[:])
	var iv [16]byte
	copy(iv[:], h.Sum(nil))
	return iv
}

// commit recomputes the Merkle root over on-disk blocks and stores it in
// the VDIR through the crash-safe protocol.
func (r *Region) commit() error {
	blocks, err := r.rawBlocks()
	if err != nil {
		return err
	}
	return r.mgr.WriteVDIR(r.vdir, MerkleRoot(blocks))
}

func (r *Region) rawBlocks() ([][]byte, error) {
	blocks := make([][]byte, r.numBlocks)
	for i := 0; i < r.numBlocks; i++ {
		b, err := r.mgr.disk.Read(r.blockFile(i))
		if err != nil {
			return nil, fmt.Errorf("ssr: block %d: %w", i, err)
		}
		blocks[i] = b
	}
	return blocks, nil
}

// WriteBlock replaces block i and commits the new root. Counter mode means
// only this block is re-encrypted; the Merkle tree means only a log-depth
// path is re-hashed conceptually (the simulation recomputes the root over
// block hashes, which is the same asymptotic work per block hash).
func (r *Region) WriteBlock(i int, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.destroyed {
		return ErrDestroyed
	}
	if i < 0 || i >= r.numBlocks {
		return ErrBadBlock
	}
	buf := make([]byte, BlockSize)
	copy(buf, data)
	if err := r.writeRaw(i, buf); err != nil {
		return err
	}
	return r.commit()
}

// ReadBlock verifies block i against the VDIR root and returns its
// plaintext. Verification uses the Merkle path, so only the relevant blocks
// are retrieved and checked — demand paging (§3.3).
func (r *Region) ReadBlock(i int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.destroyed {
		return nil, ErrDestroyed
	}
	if i < 0 || i >= r.numBlocks {
		return nil, ErrBadBlock
	}
	blocks, err := r.rawBlocks()
	if err != nil {
		return nil, err
	}
	root, err := r.mgr.ReadVDIR(r.vdir)
	if err != nil {
		return nil, err
	}
	path, lefts := MerklePath(blocks, i)
	if !VerifyInclusion(blocks[i], path, lefts, root) {
		return nil, ErrIntegrity
	}
	return r.decryptBlock(blocks[i], i)
}

// Write stores data starting at byte offset off, spanning blocks as needed.
func (r *Region) Write(off int, data []byte) error {
	for len(data) > 0 {
		bi := off / BlockSize
		bo := off % BlockSize
		cur, err := r.ReadBlock(bi)
		if err != nil {
			return err
		}
		n := copy(cur[bo:], data)
		if err := r.WriteBlock(bi, cur); err != nil {
			return err
		}
		data = data[n:]
		off += n
	}
	return nil
}

// WriteRange writes data starting at byte offset off with a single Merkle
// commit at the end — the bulk-load path used when populating a region.
func (r *Region) WriteRange(off int, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.destroyed {
		return ErrDestroyed
	}
	if off < 0 || off+len(data) > r.numBlocks*BlockSize {
		return ErrBadBlock
	}
	blocks, err := r.rawBlocks()
	if err != nil {
		return err
	}
	for len(data) > 0 {
		bi := off / BlockSize
		bo := off % BlockSize
		cur, err := r.decryptBlock(blocks[bi], bi)
		if err != nil {
			return err
		}
		n := copy(cur[bo:], data)
		if err := r.writeRaw(bi, cur); err != nil {
			return err
		}
		// Refresh the raw view for subsequent blocks in this range.
		nb, err := r.mgr.disk.Read(r.blockFile(bi))
		if err != nil {
			return err
		}
		blocks[bi] = nb
		data = data[n:]
		off += n
	}
	return r.commit()
}

// decryptBlock strips the version header and decrypts one verified raw
// block.
func (r *Region) decryptBlock(raw []byte, i int) ([]byte, error) {
	if len(raw) < headerSize {
		return nil, ErrIntegrity
	}
	version := binary.LittleEndian.Uint64(raw[:headerSize])
	payload := raw[headerSize:]
	if r.key == nil {
		out := make([]byte, len(payload))
		copy(out, payload)
		return out, nil
	}
	return r.key.EncryptCTR(r.iv(i, version), payload)
}

// Read returns n bytes starting at offset off. The whole-region Merkle root
// is recomputed once per call (cost linear in region size, matching the
// paper's observation that per-byte hashing cost dominates at large file
// sizes), then only the covered blocks are decrypted.
func (r *Region) Read(off, n int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.destroyed {
		return nil, ErrDestroyed
	}
	if off < 0 || n < 0 || off+n > r.numBlocks*BlockSize {
		return nil, ErrBadBlock
	}
	blocks, err := r.rawBlocks()
	if err != nil {
		return nil, err
	}
	root, err := r.mgr.ReadVDIR(r.vdir)
	if err != nil {
		return nil, err
	}
	if MerkleRoot(blocks) != root {
		return nil, ErrIntegrity
	}
	out := make([]byte, 0, n)
	for n > 0 {
		bi := off / BlockSize
		bo := off % BlockSize
		blk, err := r.decryptBlock(blocks[bi], bi)
		if err != nil {
			return nil, err
		}
		take := len(blk) - bo
		if take > n {
			take = n
		}
		out = append(out, blk[bo:bo+take]...)
		off += take
		n -= take
	}
	return out, nil
}

// Root returns the region's current Merkle root as held in its VDIR.
func (r *Region) Root() (tpm.Digest, error) {
	return r.mgr.ReadVDIR(r.vdir)
}

package fauxbook

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/ssr"
	"repro/internal/tpm"
)

func stackWorld(t *testing.T, cfg StackConfig) *WebStack {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if err := tp.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel}); err != nil {
		t.Fatal(err)
	}
	d := disk.New()
	var mgr *ssr.Manager
	if cfg.Storage != StorePlain {
		if mgr, err = ssr.Init(tp, d); err != nil {
			t.Fatal(err)
		}
	}
	// Boot a kernel on a second TPM so PCR layouts don't clash with the
	// SSR manager's binding above.
	tp2, _ := tpm.Manufacture(1024)
	k, err := kernel.Boot(tp2, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWebStack(k, mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func body(t *testing.T, resp []byte) []byte {
	t.Helper()
	i := bytes.Index(resp, []byte("\r\n\r\n"))
	if i < 0 {
		t.Fatalf("malformed response %q", resp)
	}
	return resp[i+4:]
}

func TestStaticServingAllStorageModes(t *testing.T) {
	for _, mode := range []StorageMode{StorePlain, StoreHashed, StoreEncrypted} {
		w := stackWorld(t, StackConfig{Storage: mode})
		content := bytes.Repeat([]byte("x"), 3000)
		if err := w.PutFile("/index.html", content); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		resp, err := w.Request("/index.html")
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if !bytes.Equal(body(t, resp), content) {
			t.Errorf("mode %d: body mismatch (%d bytes)", mode, len(body(t, resp)))
		}
		if _, err := w.Request("/missing"); err == nil {
			t.Errorf("mode %d: missing file must 404", mode)
		}
	}
}

func TestDynamicServing(t *testing.T) {
	w := stackWorld(t, StackConfig{Dynamic: true})
	if err := w.PutFile("/page", []byte("BODY")); err != nil {
		t.Fatal(err)
	}
	resp, err := w.Request("/page")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body(t, resp), []byte("<html>BODY")) {
		t.Errorf("dynamic body = %q", body(t, resp))
	}
}

func TestStaticAccessControlCaches(t *testing.T) {
	w := stackWorld(t, StackConfig{Access: AccessStatic})
	w.PutFile("/f", []byte("data"))
	if _, err := w.Request("/f"); err != nil {
		t.Fatal(err)
	}
	before := w.k.GuardUpcalls()
	for i := 0; i < 10; i++ {
		if _, err := w.Request("/f"); err != nil {
			t.Fatal(err)
		}
	}
	if w.k.GuardUpcalls() != before {
		t.Error("static access control should be decision-cached")
	}
}

func TestDynamicAccessControlConsultsAuthority(t *testing.T) {
	w := stackWorld(t, StackConfig{Access: AccessDynamic})
	w.PutFile("/f", []byte("data"))
	if _, err := w.Request("/f"); err != nil {
		t.Fatal(err)
	}
	before := w.k.GuardUpcalls()
	w.Request("/f")
	if w.k.GuardUpcalls() == before {
		t.Error("dynamic access control must upcall per request")
	}
	// Session invalidation takes effect immediately.
	w.SetSessionValid(false)
	if _, err := w.Request("/f"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("invalid session: want ErrDenied, got %v", err)
	}
	w.SetSessionValid(true)
	if _, err := w.Request("/f"); err != nil {
		t.Errorf("revalidated session: %v", err)
	}
}

func TestRefMonOnStack(t *testing.T) {
	w := stackWorld(t, StackConfig{RefMon: StackRefKernel, RefMonCache: true})
	w.PutFile("/f", []byte("data"))
	for i := 0; i < 5; i++ {
		if _, err := w.Request("/f"); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := w.Monitor().Stats()
	if misses != 1 || hits != 4 {
		t.Errorf("monitor stats hits=%d misses=%d", hits, misses)
	}
}

func TestEncryptedStorageKeepsPlaintextOffDisk(t *testing.T) {
	tp, _ := tpm.Manufacture(1024)
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	tp.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel})
	d := disk.New()
	mgr, err := ssr.Init(tp, d)
	if err != nil {
		t.Fatal(err)
	}
	tp2, _ := tpm.Manufacture(1024)
	k, _ := kernel.Boot(tp2, disk.New(), kernel.Options{})
	w, err := NewWebStack(k, mgr, StackConfig{Storage: StoreEncrypted})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("EXTREMELY-SECRET-DOCUMENT-CONTENT")
	w.PutFile("/s", secret)
	for _, name := range d.List() {
		data, _ := d.Read(name)
		if bytes.Contains(data, secret) {
			t.Fatalf("plaintext found in %s", name)
		}
	}
	resp, err := w.Request("/s")
	if err != nil || !bytes.Equal(body(t, resp), secret) {
		t.Errorf("request = %q, %v", resp, err)
	}
}

// Package fauxbook implements the paper's flagship application (§4.1): a
// privacy-preserving social network running on the Nexus. Users post and
// read status messages; the social graph gates every data flow; and tenant
// (developer) code manipulates user data only through cobufs, so even the
// application's own developers cannot examine it.
//
// The three guarantees of §4.1 map to code as follows:
//
//	safety        — tenant code passes the sandbox labeling functions
//	                (static import analysis + reflection rewriting) before
//	                the framework will run it
//	confidentiality — user data lives in owner-tagged cobufs; flows are
//	                authorized by the social graph; wall rendering reveals
//	                plaintext only to authenticated friends
//	resources     — the proportional-share scheduler exports reservations
//	                through introspection for resource attestation labels
package fauxbook

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fauxbook/cobuf"
	"repro/internal/fauxbook/sandbox"
	"repro/internal/fsys"
	"repro/internal/kernel"
	"repro/internal/nal"
)

// Errors.
var (
	ErrAuth       = errors.New("fauxbook: authentication failed")
	ErrNoUser     = errors.New("fauxbook: no such user")
	ErrUserExists = errors.New("fauxbook: user exists")
	ErrForbidden  = errors.New("fauxbook: not authorized by social graph")
	ErrBadTenant  = errors.New("fauxbook: tenant code failed certification")
)

// Service is a running Fauxbook instance.
type Service struct {
	k         *kernel.Kernel
	fs        *fsys.Client
	web       *kernel.Session // lighttpd + framework tier
	framework *kernel.Session

	mu       sync.Mutex
	users    map[string]*user
	sessions map[string]string // token → username
	nextTok  int

	// tenant is the certified (analyzed + rewritten) application program
	// the framework dispatches for wall rendering.
	tenant *sandbox.Program
	// tenantLabels are the certification labels produced by the two
	// labeling functions, presented to users as the §4.1 privacy evidence.
	tenantLabels []nal.Formula

	// archive, when attached, is the storage node holding wall archives
	// across the attestation plane (multinode.go).
	archive *remoteArchive

	// sessionAuth and friendAuth are the embedded authorities of §4.1:
	// name.webserver says user=alice, name.python says alice in
	// bob.friends.
	sessionAuth *kernel.Authority
	friendAuth  *kernel.Authority
}

type user struct {
	name     string
	passHash string
	friends  map[string]bool // users whose data this user may see / who may see... see MayFlow
	wall     []*cobuf.Buf
}

// New deploys Fauxbook on a kernel with a file service. The tenant program
// must pass both labeling functions or deployment fails (§4.1's safety
// guarantee: uncertified developer code never runs).
func New(k *kernel.Kernel, fs *fsys.Server, tenantSrc string) (*Service, error) {
	web, err := k.NewSession([]byte("lighttpd"))
	if err != nil {
		return nil, err
	}
	fw, err := web.Spawn([]byte("web-framework"))
	if err != nil {
		return nil, err
	}
	fsc, err := fs.ClientFor(fw)
	if err != nil {
		return nil, err
	}
	s := &Service{
		k:         k,
		fs:        fsc,
		web:       web,
		framework: fw,
		users:     map[string]*user{},
		sessions:  map[string]string{},
	}

	// Certify the tenant code: analytic then synthetic basis.
	prog, err := sandbox.Parse(tenantSrc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTenant, err)
	}
	legal, err := sandbox.Analyze(prog)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTenant, err)
	}
	rewritten, safe := sandbox.Rewrite(prog)
	s.tenant = rewritten
	analyzer := nal.SubOf(fw.Prin(), "analyzer")
	rewriter := nal.SubOf(fw.Prin(), "rewriter")
	s.tenantLabels = []nal.Formula{
		nal.Says{P: analyzer, F: legal},
		nal.Says{P: rewriter, F: safe},
	}

	// Embedded authorities (§4.1): session identity and friend-file
	// membership, answered over live state.
	s.sessionAuth, err = web.RegisterAuthority(s.answerSession)
	if err != nil {
		return nil, err
	}
	s.friendAuth, err = fw.RegisterAuthority(s.answerFriend)
	if err != nil {
		return nil, err
	}

	if err := s.fs.Mkdir("/fauxbook"); err != nil {
		return nil, err
	}
	return s, nil
}

// TenantLabels returns the certification labels users inspect before
// signing up (published at a well-known URL in the paper).
func (s *Service) TenantLabels() []nal.Formula {
	return append([]nal.Formula(nil), s.tenantLabels...)
}

// SessionAuthority exposes the webserver's identity authority channel.
func (s *Service) SessionAuthority() *kernel.Authority { return s.sessionAuth }

// FriendAuthority exposes the framework's friend-file authority channel.
func (s *Service) FriendAuthority() *kernel.Authority { return s.friendAuth }

// answerSession affirms "webserver says user(token, name)" over live
// session state.
func (s *Service) answerSession(f nal.Formula) bool {
	says, ok := f.(nal.Says)
	if !ok {
		return false
	}
	p, ok := says.F.(nal.Pred)
	if !ok || p.Name != "user" || len(p.Args) != 2 {
		return false
	}
	tok, ok1 := p.Args[0].(nal.Str)
	name, ok2 := p.Args[1].(nal.Str)
	if !ok1 || !ok2 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[string(tok)] == string(name)
}

// answerFriend affirms "framework says friend(a, b)": a is in b's friend
// file, read fresh on every query (§4.1: the authority introspects the
// publicly readable friend file).
func (s *Service) answerFriend(f nal.Formula) bool {
	says, ok := f.(nal.Says)
	if !ok {
		return false
	}
	p, ok := says.F.(nal.Pred)
	if !ok || p.Name != "friend" || len(p.Args) != 2 {
		return false
	}
	a, ok1 := p.Args[0].(nal.Str)
	b, ok2 := p.Args[1].(nal.Str)
	if !ok1 || !ok2 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[string(b)]
	return ok && u.friends[string(a)]
}

// prinFor names a user as a subprincipal of the web server: identity is
// attached at the web-server layer after authentication (§4.1), so tenant
// code cannot forge it.
func (s *Service) prinFor(name string) nal.Principal {
	return nal.SubChain(s.web.Prin(), "user", name)
}

// MayFlow implements cobuf.FlowJudge over the social graph: data owned by
// src may flow to dst iff dst is src or src has listed dst as a friend.
func (s *Service) MayFlow(src, dst nal.Principal) bool {
	sn, ok1 := s.userOf(src)
	dn, ok2 := s.userOf(dst)
	if !ok1 || !ok2 {
		return false
	}
	if sn == dn {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[sn]
	return ok && u.friends[dn]
}

func (s *Service) userOf(p nal.Principal) (string, bool) {
	sub, ok := p.(nal.Sub)
	if !ok {
		return "", false
	}
	parent, ok := sub.Parent.(nal.Sub)
	if !ok || parent.Tag != "user" || !parent.Parent.EqualPrin(s.web.Prin()) {
		return "", false
	}
	return sub.Tag, true
}

// Signup registers a user.
func (s *Service) Signup(name, pass string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[name]; ok {
		return ErrUserExists
	}
	s.users[name] = &user{name: name, passHash: hashPass(name, pass), friends: map[string]bool{}}
	return nil
}

// Login authenticates and returns a session token.
func (s *Service) Login(name, pass string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok || u.passHash != hashPass(name, pass) {
		return "", ErrAuth
	}
	s.nextTok++
	tok := fmt.Sprintf("tok-%d-%s", s.nextTok, hashPass(name, pass)[:8])
	s.sessions[tok] = name
	return tok, nil
}

// Logout invalidates a token; authorities answering over session state see
// the change immediately.
func (s *Service) Logout(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, token)
}

func (s *Service) sessionUser(token string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name, ok := s.sessions[token]
	if !ok {
		return "", ErrAuth
	}
	return name, nil
}

// AddFriend records that owner allows friend to see owner's data: the
// legitimate, user-initiated friend addition generating the speaksfor link
// in the social graph (§4.1).
func (s *Service) AddFriend(token, friend string) error {
	name, err := s.sessionUser(token)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[friend]; !ok {
		return ErrNoUser
	}
	s.users[name].friends[friend] = true
	return nil
}

// Friends lists a user's friend file (publicly readable, like the paper's
// friend files).
func (s *Service) Friends(name string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		return nil, ErrNoUser
	}
	out := make([]string, 0, len(u.friends))
	for f := range u.friends {
		out = append(out, f)
	}
	sort.Strings(out)
	return out, nil
}

// Post appends a status message to the author's wall. The owner tag is
// attached here, in the web-server layer, after token authentication —
// tenant code cannot forge cobufs on behalf of a user.
func (s *Service) Post(token string, status []byte) error {
	name, err := s.sessionUser(token)
	if err != nil {
		return err
	}
	buf := cobuf.New(s.prinFor(name), status)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[name].wall = append(s.users[name].wall, buf)
	return nil
}

// Wall renders owner's wall for the requesting session by dispatching the
// certified tenant program. The tenant assembles the page out of cobufs it
// cannot read; Reveal discloses plaintext only if the social graph allows
// the flow to the reader.
func (s *Service) Wall(token, owner string) ([]byte, error) {
	readerName, err := s.sessionUser(token)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	u, ok := s.users[owner]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNoUser
	}
	wall := append([]*cobuf.Buf(nil), u.wall...)
	s.mu.Unlock()

	ownerPrin := s.prinFor(owner)
	readerPrin := s.prinFor(readerName)

	// The tenant program runs over the wall entries; its store holds the
	// accumulating page, owned by the wall owner.
	env := &sandbox.Env{
		Judge:  s,
		Inputs: map[string]*cobuf.Buf{},
		Store: map[string]*cobuf.Buf{
			"page": cobuf.New(ownerPrin, nil),
		},
	}
	for i, entry := range wall {
		env.Inputs[fmt.Sprintf("status%d", i)] = entry
	}
	env.Inputs["status"] = cobuf.New(ownerPrin, nil)
	if len(wall) > 0 {
		env.Inputs["status"] = wall[len(wall)-1]
	}
	if err := sandbox.Run(s.tenant, env); err != nil {
		return nil, fmt.Errorf("fauxbook: tenant execution: %w", err)
	}

	// Assemble emitted buffers plus the stored page, then reveal to the
	// authenticated reader — the single point where plaintext leaves the
	// cobuf regime, guarded by the social graph.
	var page []byte
	emits := env.Emit
	if pg, ok := env.Store["page"]; ok && pg.Len() > 0 {
		emits = append(emits, pg)
	}
	if len(emits) == 0 {
		// Default rendering: concatenate the wall.
		acc := cobuf.New(ownerPrin, nil)
		for _, entry := range wall {
			acc, err = cobuf.Concat(s, acc, entry)
			if err != nil {
				return nil, err
			}
		}
		emits = []*cobuf.Buf{acc}
	}
	for _, b := range emits {
		plain, err := cobuf.Reveal(s, b, readerPrin)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrForbidden, err)
		}
		page = append(page, plain...)
		page = append(page, '\n')
	}
	return page, nil
}

// PersistWall stores a user's wall into the filesystem through the
// framework's client, keeping cobuf owner tags intact on disk.
func (s *Service) PersistWall(name string) error {
	s.mu.Lock()
	u, ok := s.users[name]
	if !ok {
		s.mu.Unlock()
		return ErrNoUser
	}
	wall := append([]*cobuf.Buf(nil), u.wall...)
	s.mu.Unlock()
	return s.fs.WriteFile("/fauxbook/"+name+".wall", marshalWall(wall))
}

// LoadWall restores a persisted wall.
func (s *Service) LoadWall(name string) error {
	blob, err := s.fs.ReadFile("/fauxbook/" + name + ".wall")
	if err != nil {
		return err
	}
	wall, err := unmarshalWall(blob)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		return ErrNoUser
	}
	u.wall = wall
	return nil
}

// WebPrin returns the web tier's principal.
func (s *Service) WebPrin() nal.Principal { return s.web.Prin() }

// FrameworkPrin returns the framework's principal.
func (s *Service) FrameworkPrin() nal.Principal { return s.framework.Prin() }

func hashPass(name, pass string) string {
	sum := sha256.Sum256([]byte(name + "\x00" + pass))
	return hex.EncodeToString(sum[:])
}

// DefaultTenant is a representative data-independent tenant program: it
// appends the newest status to the page and emits a preview slice. It
// includes a reflection call that the rewriter neutralizes — the program
// would be rejected at runtime without the synthetic step.
const DefaultTenant = `
import social
import render
let latest = input("status")
let page = load("page")
let page2 = concat(page, latest)
store("page", page2)
reflect(latest, "__class__")
`

// EvilTenant attempts the attacks §4.1 defends against: importing outside
// the whitelist. It must be rejected by the analyzer.
const EvilTenant = `
import os
let x = input("status")
emit(x)
`

// TrimTenant emits a fixed-length preview of the newest status —
// demonstrating slice, which never inspects data.
const TrimTenant = `
import render
let latest = input("status")
let head = slice(latest, 0, 5)
emit(head)
`

// CountKeyword would tally posts containing a keyword — inherently
// data-dependent functionality that the cobuf interface cannot express
// (§4.1 notes vote tallying is impossible). It is syntactically invalid in
// the tenant language, and exists to document the boundary.
const CountKeyword = `
let n = count(wall, "keyword")
`

var _ = strings.TrimSpace // imported for future handlers

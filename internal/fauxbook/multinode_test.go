package fauxbook

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func bootStorageNode(t *testing.T, lt *kernel.LoopbackTransport, addr string) (*kernel.Kernel, *kernel.Node, *WallArchive) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.SetGuard(guard.New(k))
	n := kernel.NewNode(k)
	l, err := lt.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	n.Serve(l)
	a, err := DeployWallArchive(k, n, "wallarchive")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return k, n, a
}

// TestMultiNodeArchive is the multi-node workload: the front-end node's
// framework tier archives and restores walls on a storage node with
// credential-backed authorization over the loopback transport.
func TestMultiNodeArchive(t *testing.T) {
	front, svc := deploy(t, DefaultTenant)
	lt := kernel.NewLoopbackTransport()
	storeK, _, arch := bootStorageNode(t, lt, "store")
	if err := arch.Authorize(front.NKFingerprint(), svc.FrameworkPrin()); err != nil {
		t.Fatal(err)
	}

	nFront := kernel.NewNode(front)
	t.Cleanup(nFront.Close)
	peer, err := nFront.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AttachArchive(peer, "wallarchive"); err != nil {
		t.Fatalf("attach: %v", err)
	}

	// Normal fauxbook activity on the front node.
	if err := svc.Signup("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	tok, err := svc.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Post(tok, []byte("first post")); err != nil {
		t.Fatal(err)
	}

	// Archive crosses nodes; the storage kernel's guard authorized it.
	up0 := storeK.GuardUpcalls()
	if err := svc.ArchiveWall("alice"); err != nil {
		t.Fatalf("archive: %v", err)
	}
	if storeK.GuardUpcalls() == up0 {
		t.Fatal("archive put did not cross the storage kernel's guard")
	}

	// Mutate, then restore the archived state.
	if err := svc.Post(tok, []byte("post-archive noise")); err != nil {
		t.Fatal(err)
	}
	if err := svc.RestoreWall("alice"); err != nil {
		t.Fatalf("restore: %v", err)
	}
	page, err := svc.Wall(tok, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "first post") || strings.Contains(string(page), "noise") {
		t.Fatalf("restored wall wrong: %q", page)
	}
	if puts, gets := arch.Stats(); puts != 1 || gets != 1 {
		t.Fatalf("archive served puts=%d gets=%d, want 1/1", puts, gets)
	}

	// The storage kernel's audit log recorded the cross-node decisions,
	// attributed to the framework's global principal, and the chain holds.
	if err := storeK.Audit().Verify(); err != nil {
		t.Fatalf("storage audit chain: %v", err)
	}
	recs, _ := storeK.Audit().Records()
	found := false
	for _, r := range recs {
		if r.Obj == "/archive/walls" && r.Allow && r.Subj == svc.FrameworkPrin().String() {
			found = true
		}
	}
	if !found {
		t.Fatal("storage audit log has no allow record for the framework's archive access")
	}

	// Every decision is anchored in the storage node's Merkle ledger and
	// provable offline; the last anchored record binds the audit head.
	n, err := arch.VerifyDecisionTrail()
	if err != nil {
		t.Fatalf("decision trail: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("trail proved %d decisions, audit recorded %d", n, len(recs))
	}
	last, ok := arch.Ledger().Record(uint64(n - 1))
	if !ok || last.ChainHash != storeK.Audit().Head() {
		t.Fatal("ledger trail does not bind the storage audit head")
	}
}

// TestMultiNodeArchiveDenied: a node without the credential connects but
// cannot touch the archive — the storage guard denies, and the denial's
// errno class survives the transport.
func TestMultiNodeArchiveDenied(t *testing.T) {
	front, svc := deploy(t, DefaultTenant)
	lt := kernel.NewLoopbackTransport()
	_, _, arch := bootStorageNode(t, lt, "store")
	if err := arch.Authorize(front.NKFingerprint(), svc.FrameworkPrin()); err != nil {
		t.Fatal(err)
	}

	// A rogue kernel with its own node dials in; its sessions have no
	// archive credential.
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	rogueK, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nRogue := kernel.NewNode(rogueK)
	t.Cleanup(nRogue.Close)
	peer, err := nRogue.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := rogueK.NewSession([]byte("rogue"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := rogue.Connect(peer, "wallarchive")
	if err != nil {
		t.Fatal(err)
	}
	_, err = rogue.CallRemote(c, &kernel.Msg{Op: "get", Obj: "/archive/walls", Args: [][]byte{[]byte("alice")}})
	if !errors.Is(err, kernel.ErrDenied) {
		t.Fatalf("rogue archive access: want ErrDenied, got %v", err)
	}
	if puts, gets := arch.Stats(); puts != 0 || gets != 0 {
		t.Fatalf("rogue access reached the handler: puts=%d gets=%d", puts, gets)
	}
}

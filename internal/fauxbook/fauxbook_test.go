package fauxbook

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/fsys"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/tpm"
)

func deploy(t *testing.T, tenant string) (*kernel.Kernel, *Service) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.SetGuard(guard.New(k))
	fs, err := fsys.New(k)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(k, fs, tenant)
	if err != nil {
		t.Fatal(err)
	}
	return k, s
}

func TestSignupLoginLogout(t *testing.T) {
	_, s := deploy(t, DefaultTenant)
	if err := s.Signup("alice", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s.Signup("alice", "pw"); !errors.Is(err, ErrUserExists) {
		t.Errorf("want ErrUserExists, got %v", err)
	}
	if _, err := s.Login("alice", "wrong"); !errors.Is(err, ErrAuth) {
		t.Errorf("want ErrAuth, got %v", err)
	}
	tok, err := s.Login("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Post(tok, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	s.Logout(tok)
	if err := s.Post(tok, []byte("hi")); !errors.Is(err, ErrAuth) {
		t.Errorf("stale token: want ErrAuth, got %v", err)
	}
}

func TestWallVisibilityFollowsGraph(t *testing.T) {
	_, s := deploy(t, DefaultTenant)
	for _, u := range []string{"alice", "bob", "eve"} {
		if err := s.Signup(u, "pw"); err != nil {
			t.Fatal(err)
		}
	}
	at, _ := s.Login("alice", "pw")
	bt, _ := s.Login("bob", "pw")
	et, _ := s.Login("eve", "pw")

	if err := s.Post(at, []byte("alice-status-1")); err != nil {
		t.Fatal(err)
	}
	// alice friends bob (alice's data may flow to bob).
	if err := s.AddFriend(at, "bob"); err != nil {
		t.Fatal(err)
	}
	// Owner sees own wall.
	page, err := s.Wall(at, "alice")
	if err != nil || !strings.Contains(string(page), "alice-status-1") {
		t.Errorf("owner wall = %q, %v", page, err)
	}
	// Friend sees it.
	page, err = s.Wall(bt, "alice")
	if err != nil || !strings.Contains(string(page), "alice-status-1") {
		t.Errorf("friend wall = %q, %v", page, err)
	}
	// Stranger is blocked by the flow judge.
	if _, err := s.Wall(et, "alice"); !errors.Is(err, ErrForbidden) {
		t.Errorf("stranger wall: want ErrForbidden, got %v", err)
	}
	// Friendship is directed: alice cannot see bob's wall.
	if err := s.Post(bt, []byte("bob-secret")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wall(at, "bob"); !errors.Is(err, ErrForbidden) {
		t.Errorf("reverse direction: want ErrForbidden, got %v", err)
	}
	if friends, _ := s.Friends("alice"); len(friends) != 1 || friends[0] != "bob" {
		t.Errorf("friend file = %v", friends)
	}
}

func TestEvilTenantRejectedAtDeploy(t *testing.T) {
	tp, _ := tpm.Manufacture(1024)
	k, _ := kernel.Boot(tp, disk.New(), kernel.Options{})
	fs, _ := fsys.New(k)
	if _, err := New(k, fs, EvilTenant); !errors.Is(err, ErrBadTenant) {
		t.Errorf("want ErrBadTenant, got %v", err)
	}
	if _, err := New(k, fs, "((("); !errors.Is(err, ErrBadTenant) {
		t.Errorf("unparseable tenant: want ErrBadTenant, got %v", err)
	}
}

func TestTenantLabelsPublished(t *testing.T) {
	_, s := deploy(t, DefaultTenant)
	labels := s.TenantLabels()
	if len(labels) != 2 {
		t.Fatalf("want 2 labels, got %d", len(labels))
	}
	joined := labels[0].String() + " " + labels[1].String()
	if !strings.Contains(joined, "legalTenant(hash:") ||
		!strings.Contains(joined, "reflectionSafe(hash:") {
		t.Errorf("labels = %q", joined)
	}
	// Labels are attributed to the framework's labeling functions.
	for _, l := range labels {
		says, ok := l.(nal.Says)
		if !ok || !nal.IsAncestor(s.FrameworkPrin(), says.P) {
			t.Errorf("label %q not attributed to framework subprincipal", l)
		}
	}
}

func TestAuthoritiesAnswerLiveState(t *testing.T) {
	k, s := deploy(t, DefaultTenant)
	s.Signup("alice", "pw")
	s.Signup("bob", "pw")
	tok, _ := s.Login("alice", "pw")

	// Session authority: webserver says user(token, alice).
	q := nal.Says{P: s.SessionAuthority().Prin(), F: nal.Pred{
		Name: "user",
		Args: []nal.Term{nal.Str(tok), nal.Str("alice")},
	}}
	// The registered answer functions receive the formula as posed; pose
	// via the kernel to exercise the attested IPC path.
	ok, err := k.QueryAuthority(s.SessionAuthority().Channel(), nal.Formula(q))
	if err != nil || !ok {
		t.Errorf("session authority = %v, %v", ok, err)
	}
	s.Logout(tok)
	ok, _ = k.QueryAuthority(s.SessionAuthority().Channel(), nal.Formula(q))
	if ok {
		t.Error("session authority must see logout immediately")
	}

	// Friend authority: framework says friend(bob, alice) after the edge
	// appears.
	fq := nal.Says{P: s.FriendAuthority().Prin(), F: nal.Pred{
		Name: "friend",
		Args: []nal.Term{nal.Str("bob"), nal.Str("alice")},
	}}
	ok, _ = k.QueryAuthority(s.FriendAuthority().Channel(), nal.Formula(fq))
	if ok {
		t.Error("no edge yet")
	}
	tok2, _ := s.Login("alice", "pw")
	s.AddFriend(tok2, "bob")
	ok, err = k.QueryAuthority(s.FriendAuthority().Channel(), nal.Formula(fq))
	if err != nil || !ok {
		t.Errorf("friend authority after edge = %v, %v", ok, err)
	}
}

func TestPersistAndReloadWall(t *testing.T) {
	_, s := deploy(t, DefaultTenant)
	s.Signup("alice", "pw")
	tok, _ := s.Login("alice", "pw")
	s.Post(tok, []byte("persisted-post"))
	if err := s.PersistWall("alice"); err != nil {
		t.Fatal(err)
	}
	// Clear in-memory wall, reload from the filesystem.
	s.mu.Lock()
	s.users["alice"].wall = nil
	s.mu.Unlock()
	if err := s.LoadWall("alice"); err != nil {
		t.Fatal(err)
	}
	page, err := s.Wall(tok, "alice")
	if err != nil || !strings.Contains(string(page), "persisted-post") {
		t.Errorf("reloaded wall = %q, %v", page, err)
	}
}

func TestTrimTenantSlices(t *testing.T) {
	_, s := deploy(t, TrimTenant)
	s.Signup("alice", "pw")
	tok, _ := s.Login("alice", "pw")
	s.Post(tok, []byte("1234567890"))
	page, err := s.Wall(tok, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(page)) != "12345" {
		t.Errorf("trimmed page = %q", page)
	}
}

package fauxbook

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fauxbook/cobuf"
	"repro/internal/kernel"
	"repro/internal/ledger"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// Multi-node Fauxbook (§4.1 at ROADMAP scale): the web/framework tier runs
// on a front-end node and archives user walls to a storage node across the
// attestation plane. The storage node does not trust the network: its
// archive object is goal-protected, and the front-end earns access by
// attesting "framework says mayArchive(walls)" under its TPM-rooted key,
// shipping the credential over the transport, and binding the proof to the
// archive's access tuples. Every archive call then runs the storage
// kernel's standard dispatch pipeline — channel check, guard-backed
// authorization of the front-end's global principal, interposition, audit.

// ErrNoArchive reports archive operations before AttachArchive.
var ErrNoArchive = errors.New("fauxbook: no archive attached")

// archiveObj is the goal-protected object naming the archive store; the
// user whose wall moves travels in the message arguments.
const archiveObj = "/archive/walls"

// WallArchive is the storage-node service: a guarded port storing opaque
// wall blobs by user. Cobuf owner tags stay intact inside the blobs, so
// the §4.1 confidentiality regime survives the hop — the storage node
// holds ciphertext-equivalent buffers it has no authority to reveal.
type WallArchive struct {
	sess *kernel.Session
	led  *ledger.Ledger
	port int

	mu    sync.Mutex
	blobs map[string][]byte
	puts  uint64
	gets  uint64
}

// DeployWallArchive starts the archive service on the storage kernel and
// exports it under the given service name. The caller is responsible for
// installing a default guard on the kernel (the goals set by Authorize
// vector to it). Deployment also anchors the storage kernel's decisions
// into a Merkle ledger (unless one is already attached), so every archive
// authorization — including denials of rogue callers — becomes provable
// offline via VerifyDecisionTrail.
func DeployWallArchive(k *kernel.Kernel, n *kernel.Node, service string) (*WallArchive, error) {
	sess, err := k.NewSession([]byte("wall-archive"))
	if err != nil {
		return nil, err
	}
	a := &WallArchive{sess: sess, blobs: map[string][]byte{}}
	if a.led = k.Ledger(); a.led == nil {
		if a.led, err = ledger.New(ledger.NewMemBackend(), ledger.Options{BatchSize: 64}); err != nil {
			return nil, err
		}
		k.AttachLedger(a.led)
	}
	pc, err := sess.Listen(a.handle)
	if err != nil {
		return nil, err
	}
	if a.port, err = sess.PortOf(pc); err != nil {
		return nil, err
	}
	if err := n.Export(service, a.port); err != nil {
		return nil, err
	}
	return a, nil
}

// Authorize protects the archive with goals demanding the front-end's
// attested credential: key:<frontNK> says (<framework> says
// mayArchive(walls)). Only a subject that registered a proof discharging
// it — which requires the credential to have crossed the transport and
// survived ingress verification — passes the storage kernel's guard.
func (a *WallArchive) Authorize(frontNKFP string, framework nal.Principal) error {
	goal := archiveGoal(frontNKFP, framework)
	for _, op := range []string{"put", "get"} {
		if err := a.sess.SetGoal(op, archiveObj, goal, nil); err != nil {
			return err
		}
	}
	return nil
}

// archiveGoal is the formula both sides agree on: the storage node sets it
// as the goal, the front-end assumes it in its proof.
func archiveGoal(frontNKFP string, framework nal.Principal) nal.Formula {
	return nal.Says{P: nal.Key(frontNKFP), F: nal.Says{
		P: framework,
		F: nal.Pred{Name: "mayArchive", Args: []nal.Term{nal.Atom("walls")}},
	}}
}

// Port returns the archive's public port id on the storage kernel.
func (a *WallArchive) Port() int { return a.port }

// Ledger returns the decision ledger anchored behind the storage kernel's
// audit log.
func (a *WallArchive) Ledger() *ledger.Ledger { return a.led }

// VerifyDecisionTrail seals the pending window and offline-verifies every
// anchored decision of the storage kernel: the anchor chain must hold and
// each record must prove against its batch root. It returns the number of
// decisions verified — the storage operator's answer to "show me, without
// trusting your kernel, what it authorized".
func (a *WallArchive) VerifyDecisionTrail() (int, error) {
	if err := a.led.Flush(); err != nil {
		return 0, err
	}
	batches := a.led.Batches()
	if err := ledger.VerifyAnchors(batches, [32]byte{}); err != nil {
		return 0, err
	}
	n := 0
	for _, b := range batches {
		for seq := b.FirstSeq; seq <= b.LastSeq; seq++ {
			r, ok := a.led.Record(seq)
			if !ok {
				return n, fmt.Errorf("fauxbook: anchored decision %d missing", seq)
			}
			p, err := a.led.Prove(seq)
			if err != nil {
				return n, err
			}
			if err := ledger.VerifyInclusion(&r, p); err != nil {
				return n, fmt.Errorf("fauxbook: decision %d: %w", seq, err)
			}
			n++
		}
	}
	return n, nil
}

// Stats reports served puts and gets.
func (a *WallArchive) Stats() (puts, gets uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.puts, a.gets
}

func (a *WallArchive) handle(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
	if m.Obj != archiveObj || len(m.Args) < 1 {
		return nil, fmt.Errorf("fauxbook: archive: bad request")
	}
	user := string(m.Args[0])
	switch m.Op {
	case "put":
		if len(m.Args) != 2 {
			return nil, fmt.Errorf("fauxbook: archive: put needs a blob")
		}
		blob := append([]byte(nil), m.Args[1]...)
		a.mu.Lock()
		a.blobs[user] = blob
		a.puts++
		a.mu.Unlock()
		return []byte("ok"), nil
	case "get":
		a.mu.Lock()
		blob, ok := a.blobs[user]
		a.gets++
		a.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("fauxbook: archive: no wall for %s", user)
		}
		return blob, nil
	}
	return nil, fmt.Errorf("fauxbook: archive: unknown op %s", m.Op)
}

// remoteArchive is the front-end's handle to an attached archive.
type remoteArchive struct {
	peer *kernel.Peer
	cap  kernel.Cap
}

// AttachArchive connects this service's framework tier to a wall-archive
// service on a peer node and provisions the credential path: the framework
// utters mayArchive(walls), the label is externalized under this node's
// TPM-rooted key and transferred to the storage node (which verifies it
// through its pre-verification cache), and the proof is bound remotely to
// the archive's put/get tuples. After Attach, ArchiveWall and RestoreWall
// are credential-backed cross-node calls.
func (s *Service) AttachArchive(peer *kernel.Peer, service string) error {
	cred := nal.Pred{Name: "mayArchive", Args: []nal.Term{nal.Atom("walls")}}
	lbl, err := s.framework.SayFormula(cred)
	if err != nil {
		return err
	}
	rl, err := s.framework.TransferLabelRemote(peer, lbl.Handle)
	if err != nil {
		return fmt.Errorf("fauxbook: archive credential transfer: %w", err)
	}
	goal := archiveGoal(s.k.NKFingerprint(), s.framework.Prin())
	pf := proof.Assume(0, goal)
	creds := []kernel.RemoteCred{{Ref: rl.Handle}}
	for _, op := range []string{"put", "get"} {
		if err := s.framework.SetProofRemote(peer, op, archiveObj, pf, creds); err != nil {
			return fmt.Errorf("fauxbook: remote proof registration: %w", err)
		}
	}
	c, err := s.framework.Connect(peer, service)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.archive = &remoteArchive{peer: peer, cap: c}
	s.mu.Unlock()
	return nil
}

// marshalWall flattens wall entries into the length-prefixed blob format
// shared by filesystem persistence and the remote archive.
func marshalWall(wall []*cobuf.Buf) []byte {
	var blob []byte
	for _, b := range wall {
		m := cobuf.Marshal(b)
		blob = append(blob, byte(len(m)>>8), byte(len(m)))
		blob = append(blob, m...)
	}
	return blob
}

// unmarshalWall parses the blob format back into wall entries.
func unmarshalWall(blob []byte) ([]*cobuf.Buf, error) {
	var wall []*cobuf.Buf
	for len(blob) >= 2 {
		n := int(blob[0])<<8 | int(blob[1])
		if len(blob) < 2+n {
			return nil, fmt.Errorf("fauxbook: corrupt wall blob")
		}
		b, err := cobuf.Unmarshal(blob[2 : 2+n])
		if err != nil {
			return nil, err
		}
		wall = append(wall, b)
		blob = blob[2+n:]
	}
	return wall, nil
}

// ArchiveWall ships a user's wall to the attached storage node. The blob
// crosses the transport opaque; authorization happens on the storage
// kernel against the framework's credential-backed proof.
func (s *Service) ArchiveWall(name string) error {
	s.mu.Lock()
	ar := s.archive
	u, ok := s.users[name]
	var wall []*cobuf.Buf
	if ok {
		wall = append([]*cobuf.Buf(nil), u.wall...)
	}
	s.mu.Unlock()
	if ar == nil {
		return ErrNoArchive
	}
	if !ok {
		return ErrNoUser
	}
	_, err := s.framework.CallRemote(ar.cap, &kernel.Msg{
		Op:   "put",
		Obj:  archiveObj,
		Args: [][]byte{[]byte(name), marshalWall(wall)},
	})
	return err
}

// RestoreWall replaces a user's wall with the archived copy.
func (s *Service) RestoreWall(name string) error {
	s.mu.Lock()
	ar := s.archive
	s.mu.Unlock()
	if ar == nil {
		return ErrNoArchive
	}
	blob, err := s.framework.CallRemote(ar.cap, &kernel.Msg{
		Op:   "get",
		Obj:  archiveObj,
		Args: [][]byte{[]byte(name)},
	})
	if err != nil {
		return err
	}
	wall, err := unmarshalWall(blob)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[name]
	if !ok {
		return ErrNoUser
	}
	u.wall = wall
	return nil
}

// Package cobuf implements constrained buffers (§4.1): owner-tagged opaque
// byte arrays that untrusted tenant code can store, retrieve, concatenate,
// and slice — but never examine. The interface deliberately has no
// data-dependent operations (no compare, no index-of, no byte access), so it
// is not Turing-complete over the protected data; like homomorphic
// encryption, it permits work on data without revealing it, but with
// language-level access control instead of cryptography.
//
// Every cobuf carries the principal that owns its contents, attached at the
// web-server layer after authentication. Collation is allowed only when the
// recipient buffer's owner speaks for the source buffer's owner, which in
// Fauxbook means a friend edge exists in the social graph.
package cobuf

import (
	"errors"

	"repro/internal/nal"
)

// Errors.
var (
	// ErrFlow is returned when an operation would move data to a principal
	// that the owner has not authorized.
	ErrFlow   = errors.New("cobuf: information flow not authorized")
	ErrBounds = errors.New("cobuf: slice out of range")
)

// FlowJudge decides whether data owned by src may flow to a buffer owned by
// dst — in Fauxbook, whether dst speaksfor src by a friend edge or dst is
// src. Implementations must not expose buffer contents.
type FlowJudge interface {
	MayFlow(src, dst nal.Principal) bool
}

// Buf is a constrained buffer. The data field is unexported: code outside
// this package (tenant code) cannot reach the bytes.
type Buf struct {
	owner nal.Principal
	data  []byte
}

// New creates a buffer owned by owner. Only trusted layers (the web server
// after authentication) call New with user data.
func New(owner nal.Principal, data []byte) *Buf {
	return &Buf{owner: owner, data: append([]byte(nil), data...)}
}

// Owner returns the buffer's owning principal. The owner tag is public;
// only the contents are protected.
func (b *Buf) Owner() nal.Principal { return b.owner }

// Len returns the buffer length. Length is deliberately exposed: the paper's
// interface supports slicing, which requires it.
func (b *Buf) Len() int { return len(b.data) }

// Slice returns a new buffer with the same owner covering [from, to).
func (b *Buf) Slice(from, to int) (*Buf, error) {
	if from < 0 || to < from || to > len(b.data) {
		return nil, ErrBounds
	}
	return &Buf{owner: b.owner, data: append([]byte(nil), b.data[from:to]...)}, nil
}

// Concat appends src's contents to dst, checking the flow policy: the
// destination owner must be authorized to receive the source's data.
// The result is owned by dst's owner.
func Concat(judge FlowJudge, dst, src *Buf) (*Buf, error) {
	if !dst.owner.EqualPrin(src.owner) && (judge == nil || !judge.MayFlow(src.owner, dst.owner)) {
		return nil, ErrFlow
	}
	out := &Buf{owner: dst.owner, data: make([]byte, 0, len(dst.data)+len(src.data))}
	out.data = append(out.data, dst.data...)
	out.data = append(out.data, src.data...)
	return out, nil
}

// Reveal extracts the plaintext for delivery to a reader principal,
// subject to the flow policy. The web server calls this only when rendering
// a page to an authenticated session.
func Reveal(judge FlowJudge, b *Buf, reader nal.Principal) ([]byte, error) {
	if !b.owner.EqualPrin(reader) && (judge == nil || !judge.MayFlow(b.owner, reader)) {
		return nil, ErrFlow
	}
	return append([]byte(nil), b.data...), nil
}

// Retag transfers ownership; only the current owner's side may do this, so
// the judge must confirm the flow. Used when a user shares a post to a
// friend's wall.
func Retag(judge FlowJudge, b *Buf, to nal.Principal) (*Buf, error) {
	if !b.owner.EqualPrin(to) && (judge == nil || !judge.MayFlow(b.owner, to)) {
		return nil, ErrFlow
	}
	return &Buf{owner: to, data: append([]byte(nil), b.data...)}, nil
}

// Marshal serializes owner tag and data for storage in the filesystem. The
// stored form is opaque to tenant code, which only handles handles.
func Marshal(b *Buf) []byte {
	o := []byte(b.owner.String())
	out := make([]byte, 0, 2+len(o)+len(b.data))
	out = append(out, byte(len(o)>>8), byte(len(o)))
	out = append(out, o...)
	out = append(out, b.data...)
	return out
}

// Unmarshal reverses Marshal.
func Unmarshal(raw []byte) (*Buf, error) {
	if len(raw) < 2 {
		return nil, ErrBounds
	}
	n := int(raw[0])<<8 | int(raw[1])
	if len(raw) < 2+n {
		return nil, ErrBounds
	}
	owner, err := nal.ParsePrincipal(string(raw[2 : 2+n]))
	if err != nil {
		return nil, err
	}
	return &Buf{owner: owner, data: append([]byte(nil), raw[2+n:]...)}, nil
}

package cobuf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/nal"
)

type judge map[string]map[string]bool

func (j judge) MayFlow(src, dst nal.Principal) bool {
	return j[src.String()][dst.String()]
}

var (
	alice = nal.Name("alice")
	bob   = nal.Name("bob")
	eve   = nal.Name("eve")
)

func friendsJudge() judge {
	// alice allows bob.
	return judge{"alice": {"bob": true}}
}

func TestSliceAndLen(t *testing.T) {
	b := New(alice, []byte("hello world"))
	if b.Len() != 11 {
		t.Fatalf("Len = %d", b.Len())
	}
	s, err := b.Slice(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Owner().EqualPrin(alice) || s.Len() != 5 {
		t.Errorf("slice owner/len wrong: %v %d", s.Owner(), s.Len())
	}
	if _, err := b.Slice(5, 3); !errors.Is(err, ErrBounds) {
		t.Errorf("want ErrBounds, got %v", err)
	}
	if _, err := b.Slice(0, 100); !errors.Is(err, ErrBounds) {
		t.Errorf("want ErrBounds, got %v", err)
	}
}

func TestConcatRespectsGraph(t *testing.T) {
	j := friendsJudge()
	a := New(alice, []byte("from-alice "))
	bobsPage := New(bob, []byte("bob-page "))
	// alice→bob allowed.
	out, err := Concat(j, bobsPage, a)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Owner().EqualPrin(bob) {
		t.Error("concat result must be owned by destination")
	}
	// bob→alice not allowed (directed).
	alicesPage := New(alice, nil)
	b := New(bob, []byte("bobs-secret"))
	if _, err := Concat(j, alicesPage, b); !errors.Is(err, ErrFlow) {
		t.Errorf("want ErrFlow, got %v", err)
	}
	// Same owner always flows.
	if _, err := Concat(j, a, New(alice, []byte("x"))); err != nil {
		t.Errorf("same-owner concat: %v", err)
	}
	// Nil judge: only same-owner flows.
	if _, err := Concat(nil, bobsPage, a); !errors.Is(err, ErrFlow) {
		t.Errorf("nil judge: want ErrFlow, got %v", err)
	}
}

func TestRevealRespectsGraph(t *testing.T) {
	j := friendsJudge()
	post := New(alice, []byte("private-status"))
	got, err := Reveal(j, post, bob)
	if err != nil || !bytes.Equal(got, []byte("private-status")) {
		t.Errorf("friend reveal = %q, %v", got, err)
	}
	if _, err := Reveal(j, post, eve); !errors.Is(err, ErrFlow) {
		t.Errorf("stranger reveal: want ErrFlow, got %v", err)
	}
	if _, err := Reveal(j, post, alice); err != nil {
		t.Errorf("owner reveal: %v", err)
	}
}

func TestRetag(t *testing.T) {
	j := friendsJudge()
	post := New(alice, []byte("shared"))
	moved, err := Retag(j, post, bob)
	if err != nil || !moved.Owner().EqualPrin(bob) {
		t.Fatalf("Retag = %v, %v", moved, err)
	}
	if _, err := Retag(j, New(bob, nil), alice); !errors.Is(err, ErrFlow) {
		t.Errorf("unauthorized retag: want ErrFlow, got %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := New(nal.MustPrincipal("web.user.alice"), []byte{0, 1, 2, 255})
	back, err := Unmarshal(Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Owner().EqualPrin(b.Owner()) || back.Len() != b.Len() {
		t.Errorf("round trip changed buffer: %v %d", back.Owner(), back.Len())
	}
	if _, err := Unmarshal([]byte{0}); !errors.Is(err, ErrBounds) {
		t.Errorf("short unmarshal: want ErrBounds, got %v", err)
	}
}

func TestQuickMarshal(t *testing.T) {
	prop := func(data []byte) bool {
		b := New(alice, data)
		back, err := Unmarshal(Marshal(b))
		if err != nil {
			return false
		}
		plain, err := Reveal(nil, back, alice)
		return err == nil && bytes.Equal(plain, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNoContentAccess documents the central property: outside the package,
// there is no way to read a cobuf's bytes except Reveal, which consults the
// flow judge. (Compile-time property — the data field is unexported — so
// this test just demonstrates the API surface.)
func TestNoContentAccess(t *testing.T) {
	b := New(alice, []byte("secret"))
	// The only accessors are Owner, Len, Slice, Concat, Retag, Reveal,
	// Marshal. Marshal exposes bytes — but only trusted storage layers see
	// marshaled form; tenant code receives *Buf handles.
	if b.Len() != 6 {
		t.Fatal("len")
	}
	if _, err := Reveal(nil, b, eve); !errors.Is(err, ErrFlow) {
		t.Fatal("reveal must be judged")
	}
}

// Package sandbox implements the Fauxbook tenant execution environment
// (§4.1): a small interpreted language standing in for restricted Python,
// together with the two labeling functions that make mutually distrusting
// tenants safe to run in one address space:
//
//   - Analyze (analytic basis): static analysis confirming the program is
//     syntactically legal and imports only whitelisted libraries.
//   - Rewrite (synthetic basis): rewriting every reflection call so it
//     cannot reach the import machinery.
//
// The language's data values are cobufs, so tenant code manipulates user
// data without the ability to examine it. The one deliberately dangerous
// construct — reflect(x, "__import__") — escapes the sandbox when executed
// unrewritten, demonstrating why static import analysis alone is not
// sufficient (the paper's observation about Python's rich reflection).
package sandbox

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fauxbook/cobuf"
	"repro/internal/nal"
)

// Errors.
var (
	ErrSyntax    = errors.New("sandbox: syntax error")
	ErrBadImport = errors.New("sandbox: import outside whitelist")
	ErrEscape    = errors.New("sandbox: un-rewritten reflection escaped the sandbox")
	ErrUndefined = errors.New("sandbox: undefined variable")
	ErrLimits    = errors.New("sandbox: execution limit exceeded")
)

// ImportWhitelist is the set of libraries tenant code may import.
var ImportWhitelist = map[string]bool{
	"strings": true, "social": true, "render": true,
}

// stmt kinds.
type stmtKind int

const (
	stImport stmtKind = iota
	stLet
	stStore
	stEmit
	stReflect
	stSafeReflect
)

type stmt struct {
	kind stmtKind
	// import: name; let: dst + expr; store: key + src; emit: src;
	// reflect: dst, target var, attribute.
	name   string
	dst    string
	expr   *expr
	target string
	attr   string
}

type exprKind int

const (
	exConcat exprKind = iota
	exSlice
	exLoad
	exInput
)

type expr struct {
	kind     exprKind
	a, b     string
	from, to int
	key      string
}

// Program is a parsed tenant program.
type Program struct {
	Source string
	stmts  []stmt
}

// Hash returns the program's launch-time hash (hex SHA-1).
func (p *Program) Hash() string {
	sum := sha1.Sum([]byte(p.Source))
	return hex.EncodeToString(sum[:])
}

// Parse parses tenant source. One statement per line; blank lines and
// #-comments are ignored.
//
//	import social
//	let x = input("status")
//	let y = load("wall")
//	let z = concat(y, x)
//	let w = slice(z, 0, 80)
//	store("wall", z)
//	emit(w)
//	reflect(x, "__import__")     # the attack the rewriter neutralizes
func Parse(src string) (*Program, error) {
	p := &Program{Source: src}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, ln+1, err)
		}
		p.stmts = append(p.stmts, *s)
	}
	return p, nil
}

func parseLine(line string) (*stmt, error) {
	switch {
	case strings.HasPrefix(line, "import "):
		name := strings.TrimSpace(line[len("import "):])
		if name == "" || strings.ContainsAny(name, "() ,") {
			return nil, fmt.Errorf("bad import %q", name)
		}
		return &stmt{kind: stImport, name: name}, nil
	case strings.HasPrefix(line, "let "):
		rest := line[len("let "):]
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("let without '='")
		}
		dst := strings.TrimSpace(rest[:eq])
		if !ident(dst) {
			return nil, fmt.Errorf("bad identifier %q", dst)
		}
		e, err := parseExpr(strings.TrimSpace(rest[eq+1:]))
		if err != nil {
			return nil, err
		}
		return &stmt{kind: stLet, dst: dst, expr: e}, nil
	case strings.HasPrefix(line, "store("):
		args, err := callArgs(line, "store", 2)
		if err != nil {
			return nil, err
		}
		key, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		if !ident(args[1]) {
			return nil, fmt.Errorf("bad identifier %q", args[1])
		}
		return &stmt{kind: stStore, name: key, dst: args[1]}, nil
	case strings.HasPrefix(line, "emit("):
		args, err := callArgs(line, "emit", 1)
		if err != nil {
			return nil, err
		}
		if !ident(args[0]) {
			return nil, fmt.Errorf("bad identifier %q", args[0])
		}
		return &stmt{kind: stEmit, dst: args[0]}, nil
	case strings.HasPrefix(line, "reflect("):
		args, err := callArgs(line, "reflect", 2)
		if err != nil {
			return nil, err
		}
		attr, err := unquote(args[1])
		if err != nil {
			return nil, err
		}
		return &stmt{kind: stReflect, target: args[0], attr: attr}, nil
	case strings.HasPrefix(line, "safereflect("):
		args, err := callArgs(line, "safereflect", 2)
		if err != nil {
			return nil, err
		}
		attr, err := unquote(args[1])
		if err != nil {
			return nil, err
		}
		return &stmt{kind: stSafeReflect, target: args[0], attr: attr}, nil
	}
	return nil, fmt.Errorf("unrecognized statement %q", line)
}

func parseExpr(s string) (*expr, error) {
	switch {
	case strings.HasPrefix(s, "concat("):
		args, err := callArgs(s, "concat", 2)
		if err != nil {
			return nil, err
		}
		if !ident(args[0]) || !ident(args[1]) {
			return nil, fmt.Errorf("concat args must be identifiers")
		}
		return &expr{kind: exConcat, a: args[0], b: args[1]}, nil
	case strings.HasPrefix(s, "slice("):
		args, err := callArgs(s, "slice", 3)
		if err != nil {
			return nil, err
		}
		from, err1 := strconv.Atoi(args[1])
		to, err2 := strconv.Atoi(args[2])
		if !ident(args[0]) || err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad slice args")
		}
		return &expr{kind: exSlice, a: args[0], from: from, to: to}, nil
	case strings.HasPrefix(s, "load("):
		args, err := callArgs(s, "load", 1)
		if err != nil {
			return nil, err
		}
		key, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		return &expr{kind: exLoad, key: key}, nil
	case strings.HasPrefix(s, "input("):
		args, err := callArgs(s, "input", 1)
		if err != nil {
			return nil, err
		}
		key, err := unquote(args[0])
		if err != nil {
			return nil, err
		}
		return &expr{kind: exInput, key: key}, nil
	}
	return nil, fmt.Errorf("unrecognized expression %q", s)
}

func callArgs(s, name string, n int) ([]string, error) {
	if !strings.HasPrefix(s, name+"(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("malformed %s call", name)
	}
	body := s[len(name)+1 : len(s)-1]
	var args []string
	depth := 0
	cur := strings.Builder{}
	inStr := false
	for _, r := range body {
		switch {
		case r == '"':
			inStr = !inStr
			cur.WriteRune(r)
		case inStr:
			cur.WriteRune(r)
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case r == ',' && depth == 0:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		args = append(args, strings.TrimSpace(cur.String()))
	}
	if len(args) != n {
		return nil, fmt.Errorf("%s expects %d args, got %d", name, n, len(args))
	}
	return args, nil
}

func unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected string literal, got %q", s)
	}
	return s[1 : len(s)-1], nil
}

func ident(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Analyze is the first labeling function: it confirms the program parses
// and imports only whitelisted libraries, returning the statement body for
// the label "analyzer says legalTenant(hash:H)".
func Analyze(p *Program) (nal.Formula, error) {
	for _, s := range p.stmts {
		if s.kind == stImport && !ImportWhitelist[s.name] {
			return nil, fmt.Errorf("%w: %q", ErrBadImport, s.name)
		}
	}
	return nal.Pred{Name: "legalTenant", Args: []nal.Term{nal.Atom("hash:" + p.Hash())}}, nil
}

// Rewrite is the second labeling function: it produces a new program in
// which every reflect call has been replaced by safereflect, plus the
// statement body for "rewriter says reflectionSafe(hash:H')" where H' is
// the hash of the rewritten artifact.
func Rewrite(p *Program) (*Program, nal.Formula) {
	var lines []string
	for _, raw := range strings.Split(p.Source, "\n") {
		line := strings.TrimSpace(raw)
		if strings.HasPrefix(line, "reflect(") {
			lines = append(lines, "safe"+line)
			continue
		}
		lines = append(lines, raw)
	}
	out, err := Parse(strings.Join(lines, "\n"))
	if err != nil {
		// Rewriting a parseable program cannot fail; a parse error here is
		// a bug, surfaced loudly.
		panic("sandbox: rewrite produced unparseable program: " + err.Error())
	}
	label := nal.Pred{Name: "reflectionSafe", Args: []nal.Term{nal.Atom("hash:" + out.Hash())}}
	return out, label
}

// Env is the execution environment handed to a tenant program.
type Env struct {
	Judge  cobuf.FlowJudge
	Inputs map[string]*cobuf.Buf
	// Store is the tenant's persistent cobuf store (backed by files in
	// Fauxbook); Load/Store operate on it.
	Store map[string]*cobuf.Buf
	// Emit receives page output buffers in order.
	Emit []*cobuf.Buf
	// MaxSteps bounds execution (0 = default).
	MaxSteps int
}

// Run interprets the program. Un-rewritten reflect statements reaching the
// interpreter escape the sandbox: Run returns ErrEscape, modeling arbitrary
// code execution that the synthesis step exists to prevent.
func Run(p *Program, env *Env) error {
	limit := env.MaxSteps
	if limit == 0 {
		limit = 10000
	}
	vars := map[string]*cobuf.Buf{}
	steps := 0
	for _, s := range p.stmts {
		steps++
		if steps > limit {
			return ErrLimits
		}
		switch s.kind {
		case stImport:
			if !ImportWhitelist[s.name] {
				return fmt.Errorf("%w: %q", ErrBadImport, s.name)
			}
		case stLet:
			v, err := evalExpr(s.expr, vars, env)
			if err != nil {
				return err
			}
			vars[s.dst] = v
		case stStore:
			v, ok := vars[s.dst]
			if !ok {
				return fmt.Errorf("%w: %q", ErrUndefined, s.dst)
			}
			env.Store[s.name] = v
		case stEmit:
			v, ok := vars[s.dst]
			if !ok {
				return fmt.Errorf("%w: %q", ErrUndefined, s.dst)
			}
			env.Emit = append(env.Emit, v)
		case stReflect:
			// Reaching here means the synthesis labeling function was
			// bypassed; reflection reaches the import machinery.
			return fmt.Errorf("%w: reflect(%s, %q)", ErrEscape, s.target, s.attr)
		case stSafeReflect:
			// Neutralized reflection: a no-op returning nothing.
		}
	}
	return nil
}

func evalExpr(e *expr, vars map[string]*cobuf.Buf, env *Env) (*cobuf.Buf, error) {
	get := func(name string) (*cobuf.Buf, error) {
		if v, ok := vars[name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrUndefined, name)
	}
	switch e.kind {
	case exConcat:
		a, err := get(e.a)
		if err != nil {
			return nil, err
		}
		b, err := get(e.b)
		if err != nil {
			return nil, err
		}
		return cobuf.Concat(env.Judge, a, b)
	case exSlice:
		a, err := get(e.a)
		if err != nil {
			return nil, err
		}
		return a.Slice(e.from, e.to)
	case exLoad:
		v, ok := env.Store[e.key]
		if !ok {
			return nil, fmt.Errorf("%w: store key %q", ErrUndefined, e.key)
		}
		return v, nil
	case exInput:
		v, ok := env.Inputs[e.key]
		if !ok {
			return nil, fmt.Errorf("%w: input %q", ErrUndefined, e.key)
		}
		return v, nil
	}
	return nil, ErrSyntax
}

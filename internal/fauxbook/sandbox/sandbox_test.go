package sandbox

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fauxbook/cobuf"
	"repro/internal/nal"
)

type openJudge struct{}

func (openJudge) MayFlow(src, dst nal.Principal) bool { return true }

const goodSrc = `
import social
let x = input("status")
let y = load("wall")
let z = concat(y, x)
let w = slice(z, 0, 4)
store("wall", z)
emit(w)
`

func TestParseAndHash(t *testing.T) {
	p, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hash()) != 40 {
		t.Errorf("hash = %q", p.Hash())
	}
	p2, _ := Parse(goodSrc)
	if p.Hash() != p2.Hash() {
		t.Error("hash must be deterministic")
	}
	if _, err := Parse("let = broken"); !errors.Is(err, ErrSyntax) {
		t.Errorf("want ErrSyntax, got %v", err)
	}
	if _, err := Parse("frobnicate(x)"); !errors.Is(err, ErrSyntax) {
		t.Errorf("want ErrSyntax, got %v", err)
	}
	if _, err := Parse(`let n = count(wall, "keyword")`); !errors.Is(err, ErrSyntax) {
		t.Error("data-dependent constructs must not parse")
	}
}

func TestAnalyzeWhitelist(t *testing.T) {
	p, _ := Parse(goodSrc)
	label, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(label.String(), "legalTenant(hash:") {
		t.Errorf("label = %q", label)
	}
	evil, _ := Parse("import os\nemit(x)")
	if _, err := Analyze(evil); !errors.Is(err, ErrBadImport) {
		t.Errorf("want ErrBadImport, got %v", err)
	}
}

func TestRewriteNeutralizesReflection(t *testing.T) {
	src := goodSrc + "\nreflect(x, \"__import__\")\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, label := Rewrite(p)
	if strings.Contains(rewritten.Source, "\nreflect(") {
		t.Error("rewrite left a raw reflect call")
	}
	if !strings.Contains(label.String(), "reflectionSafe(hash:") {
		t.Errorf("label = %q", label)
	}
	if rewritten.Hash() == p.Hash() {
		t.Error("rewritten artifact must have a new hash")
	}
	// The rewritten program runs; the original escapes.
	env := newEnv()
	if err := Run(rewritten, env); err != nil {
		t.Errorf("rewritten program: %v", err)
	}
	if err := Run(p, newEnv()); !errors.Is(err, ErrEscape) {
		t.Errorf("raw reflection: want ErrEscape, got %v", err)
	}
}

func newEnv() *Env {
	owner := nal.Name("alice")
	return &Env{
		Judge: openJudge{},
		Inputs: map[string]*cobuf.Buf{
			"status": cobuf.New(owner, []byte("hello world")),
		},
		Store: map[string]*cobuf.Buf{
			"wall": cobuf.New(owner, []byte("old ")),
			"page": cobuf.New(owner, nil),
		},
	}
}

func TestRunSemantics(t *testing.T) {
	p, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv()
	if err := Run(p, env); err != nil {
		t.Fatal(err)
	}
	if len(env.Emit) != 1 || env.Emit[0].Len() != 4 {
		t.Errorf("emit = %v", env.Emit)
	}
	// store("wall", z) persisted the concatenation.
	wall := env.Store["wall"]
	plain, err := cobuf.Reveal(openJudge{}, wall, nal.Name("alice"))
	if err != nil || string(plain) != "old hello world" {
		t.Errorf("wall = %q, %v", plain, err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"emit(nope)", ErrUndefined},
		{`let x = load("missing")`, ErrUndefined},
		{`let x = input("missing")`, ErrUndefined},
		{`store("k", nope)`, ErrUndefined},
		{"import os", ErrBadImport},
		{`let x = input("status")` + "\nlet y = slice(x, 0, 9999)", cobuf.ErrBounds},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if err := Run(p, newEnv()); !errors.Is(err, c.want) {
			t.Errorf("Run(%q) = %v, want %v", c.src, err, c.want)
		}
	}
}

func TestFlowEnforcedInsideTenant(t *testing.T) {
	// Tenant code cannot move eve's data onto alice's page when the graph
	// forbids it — even though the tenant never sees the bytes.
	src := `
let a = input("alice_page")
let e = input("eve_post")
let out = concat(a, e)
emit(out)
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{
		Judge: judgeDeny{},
		Inputs: map[string]*cobuf.Buf{
			"alice_page": cobuf.New(nal.Name("alice"), []byte("page")),
			"eve_post":   cobuf.New(nal.Name("eve"), []byte("spy")),
		},
		Store: map[string]*cobuf.Buf{},
	}
	if err := Run(p, env); !errors.Is(err, cobuf.ErrFlow) {
		t.Errorf("want ErrFlow, got %v", err)
	}
}

type judgeDeny struct{}

func (judgeDeny) MayFlow(src, dst nal.Principal) bool { return false }

func TestStepLimit(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("let a = input(\"status\")\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("let a = slice(a, 0, 1)\n")
	}
	p, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv()
	env.MaxSteps = 10
	if err := Run(p, env); !errors.Is(err, ErrLimits) {
		t.Errorf("want ErrLimits, got %v", err)
	}
}

package fauxbook

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/fauxbook/cobuf"
	"repro/internal/fauxbook/sandbox"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/refmon"
	"repro/internal/ssr"
)

// AccessMode selects the Figure 8 access-control column.
type AccessMode int

// Access-control modes.
const (
	AccessNone    AccessMode = iota // no authorization checks
	AccessStatic                    // cacheable proof per client
	AccessDynamic                   // external authority on every request
)

// StorageMode selects the Figure 8 attested-storage column.
type StorageMode int

// Storage modes.
const (
	StorePlain     StorageMode = iota // RAM store
	StoreHashed                       // SSR integrity protection
	StoreEncrypted                    // SSR integrity + AES-CTR
)

// StackConfig configures a web stack instance.
type StackConfig struct {
	Access      AccessMode
	Storage     StorageMode
	RefMon      refMonKind
	RefMonCache bool
	// Dynamic serves requests through the tenant interpreter (the Python
	// row of Figure 8) instead of the static file path.
	Dynamic bool
}

// refMonKind mirrors the Figure 7 monitor placements.
type refMonKind int

// Reference-monitor placements.
const (
	RefMonNone refMonKind = iota
	RefMonKernel
	RefMonUser
)

// Exported names for configuration.
const (
	StackRefNone   = RefMonNone
	StackRefKernel = RefMonKernel
	StackRefUser   = RefMonUser
)

// WebStack is the Fauxbook multi-tier web server of Figure 3, configurable
// along the three cost dimensions of Figure 8.
type WebStack struct {
	cfg    StackConfig
	k      *kernel.Kernel
	g      *guard.Generic
	web    *kernel.Session
	client *kernel.Session
	// ch is the client tier's channel handle to the server port; sq is the
	// client's reusable submission queue for pipelined request bursts.
	ch kernel.Cap
	sq *kernel.SubQueue

	plain   map[string][]byte
	regions map[string]*ssr.Region
	mgr     *ssr.Manager
	key     *ssr.VKey

	tenant  *sandbox.Program
	monitor *refmon.Monitor

	authCh  string
	session bool // dynamic-mode session validity, read by the authority
}

// NewWebStack builds the configured stack. For hashed/encrypted storage the
// caller supplies an SSR manager (nil selects plain storage regardless).
func NewWebStack(k *kernel.Kernel, mgr *ssr.Manager, cfg StackConfig) (*WebStack, error) {
	w := &WebStack{
		cfg:     cfg,
		k:       k,
		mgr:     mgr,
		plain:   map[string][]byte{},
		regions: map[string]*ssr.Region{},
		session: true,
	}
	if cfg.Storage != StorePlain && mgr == nil {
		return nil, fmt.Errorf("fauxbook: storage mode requires an SSR manager")
	}
	if cfg.Storage == StoreEncrypted {
		ks := ssr.NewKeyStore()
		key, err := ks.Create(ssr.KeyAES)
		if err != nil {
			return nil, err
		}
		w.key = key
	}
	var err error
	if w.web, err = k.NewSession([]byte("lighttpd-stack")); err != nil {
		return nil, err
	}
	if w.client, err = k.NewSession([]byte("http-client")); err != nil {
		return nil, err
	}
	srvCap, err := w.web.Listen(w.handle)
	if err != nil {
		return nil, err
	}
	portID, err := w.web.PortOf(srvCap)
	if err != nil {
		return nil, err
	}
	if w.ch, err = w.client.Open(portID); err != nil {
		return nil, err
	}
	w.sq = w.client.NewQueue(64)
	if cfg.Dynamic {
		prog, err := sandbox.Parse(wallTemplate)
		if err != nil {
			return nil, err
		}
		w.tenant, _ = sandbox.Rewrite(prog)
	}

	w.g = guard.New(k)
	k.SetGuard(w.g)

	switch cfg.Access {
	case AccessStatic:
		// One cacheable credential per (client, object class).
		goal := nal.MustParse("?S says wantsAccess")
		if err := w.web.SetGoal("GET", "web:static", goal, nil); err != nil {
			return nil, err
		}
		cred := nal.Says{P: w.client.Prin(), F: nal.Pred{Name: "wantsAccess"}}
		w.client.SetProof("GET", "web:static", proof.Assume(0, cred),
			[]kernel.Credential{{Inline: cred}})
	case AccessDynamic:
		// Every request consults the live session authority.
		w.authCh = w.g.RegisterEmbedded("session", func(f nal.Formula) bool {
			return w.session && f.String() == "Sessions says valid"
		})
		goal := nal.MustParse("Sessions says valid")
		if err := w.web.SetGoal("GET", "web:static", goal, nil); err != nil {
			return nil, err
		}
		pf := &proof.Proof{Steps: []proof.Step{
			{Rule: proof.RuleAuthority, Channel: w.authCh, F: goal},
		}}
		w.client.SetProof("GET", "web:static", pf, nil)
	}

	if cfg.RefMon != RefMonNone {
		policy := &refmon.Policy{Ops: map[string]bool{"GET": true}}
		w.monitor = refmon.NewMonitor(policy, cfg.RefMon == RefMonUser)
		w.monitor.SetCaching(cfg.RefMonCache)
		if _, err := w.web.Interpose(portID, w.monitor); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// wallTemplate is the dynamic-content tenant: it loads the requested file
// as a cobuf and emits it, modelling a Python handler assembling a page.
const wallTemplate = `
import render
let body = input("file")
let page = input("header")
let out = concat(page, body)
emit(out)
`

// PutFile stores a document under the configured storage mode.
func (w *WebStack) PutFile(name string, data []byte) error {
	switch w.cfg.Storage {
	case StorePlain:
		w.plain[name] = append([]byte(nil), data...)
		return nil
	default:
		blocks := (len(data)+ssr.BlockSize-1)/ssr.BlockSize + 1
		var key *ssr.VKey
		if w.cfg.Storage == StoreEncrypted {
			key = w.key
		}
		region, err := w.mgr.CreateRegion("web-"+sanitize(name), blocks, key)
		if err != nil {
			return err
		}
		// Prefix the length so reads return exact content.
		hdr := []byte(fmt.Sprintf("%10d", len(data)))
		if err := region.WriteRange(0, append(hdr, data...)); err != nil {
			return err
		}
		w.regions[name] = region
		return nil
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' {
			return '_'
		}
		return r
	}, s)
}

func (w *WebStack) getFile(name string) ([]byte, error) {
	switch w.cfg.Storage {
	case StorePlain:
		data, ok := w.plain[name]
		if !ok {
			return nil, fsNotFound(name)
		}
		return data, nil
	default:
		region, ok := w.regions[name]
		if !ok {
			return nil, fsNotFound(name)
		}
		hdr, err := region.Read(0, 10)
		if err != nil {
			return nil, err
		}
		var n int
		if _, err := fmt.Sscanf(string(hdr), "%d", &n); err != nil {
			return nil, err
		}
		return region.Read(10, n)
	}
}

func fsNotFound(name string) error { return fmt.Errorf("fauxbook: 404 %s", name) }

// SetSessionValid flips the dynamic-mode authority's answer; requests fail
// immediately after invalidation.
func (w *WebStack) SetSessionValid(ok bool) { w.session = ok }

// Monitor exposes the installed reference monitor.
func (w *WebStack) Monitor() *refmon.Monitor { return w.monitor }

// Request performs one HTTP GET through the full stack and returns the
// response body. This is the request path Figure 8 measures.
func (w *WebStack) Request(path string) ([]byte, error) {
	return w.client.Call(w.ch, &kernel.Msg{
		Op:   "GET",
		Obj:  "web:static",
		Args: [][]byte{[]byte(path)},
	})
}

// RequestBatch pipelines many GETs through one batched submission — the
// client tier's submission queue pushes the burst through a single kernel
// entry, authorizing each request but amortizing marshaling and dispatch.
func (w *WebStack) RequestBatch(paths []string) ([][]byte, error) {
	for _, p := range paths {
		w.sq.Push(kernel.Sub{
			Cap: w.ch, Op: "GET", Obj: "web:static", Args: [][]byte{[]byte(p)},
		})
	}
	comps := w.sq.Flush(context.Background())
	out := make([][]byte, len(comps))
	for i, c := range comps {
		if c.Err != nil {
			return nil, c.Err
		}
		out[i] = c.Out
	}
	return out, nil
}

// handle is the server tier: parse the request line, fetch the document
// (optionally via the tenant interpreter), emit a response.
func (w *WebStack) handle(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
	if len(m.Args) != 1 {
		return nil, fmt.Errorf("fauxbook: malformed request")
	}
	path := string(m.Args[0])
	body, err := w.getFile(path)
	if err != nil {
		return []byte("HTTP/1.0 404 Not Found\r\n\r\n"), err
	}
	if w.cfg.Dynamic {
		owner := nal.SubOf(w.web.Prin(), "site")
		env := &sandbox.Env{
			Judge: openFlow{},
			Inputs: map[string]*cobuf.Buf{
				"file":   cobuf.New(owner, body),
				"header": cobuf.New(owner, []byte("<html>")),
			},
			Store: map[string]*cobuf.Buf{},
		}
		if err := sandbox.Run(w.tenant, env); err != nil {
			return nil, err
		}
		var page []byte
		for _, b := range env.Emit {
			plain, err := cobuf.Reveal(openFlow{}, b, owner)
			if err != nil {
				return nil, err
			}
			page = append(page, plain...)
		}
		body = page
	}
	resp := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", len(body))
	return append([]byte(resp), body...), nil
}

// openFlow permits all flows: the public static site has no per-user data.
type openFlow struct{}

// MayFlow implements cobuf.FlowJudge.
func (openFlow) MayFlow(src, dst nal.Principal) bool { return true }

// Package tpm simulates a Trusted Platform Module at the protocol level used
// by the Nexus: SHA-1 platform configuration registers with extend semantics,
// an endorsement key, quote (signed PCR attestation), seal/unseal bound to
// PCR state, the two data integrity registers (DIRs) of TPM v1.1 used by the
// attested-storage update protocol, TPM v1.2 NVRAM, and monotonic counters.
//
// The simulation preserves the behaviour that the paper's security argument
// depends on: a kernel booted with a different image produces different PCR
// values, cannot unseal the storage root key material, and cannot read or
// write the DIRs; a replayed disk image fails the DIR comparison at boot
// (§3.3–3.4).
package tpm

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// DigestSize is the width of a PCR and a DIR (SHA-1, per TPM v1.1).
const DigestSize = 20

// Digest is a SHA-1 digest as stored in PCRs and DIRs.
type Digest [DigestSize]byte

// String returns the hex form of the digest.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// NumPCRs is the number of platform configuration registers.
const NumPCRs = 24

// NumDIRs is the number of data integrity registers (TPM v1.1 provides two
// 20-byte DIRs; the Nexus SSR update protocol needs exactly two, §3.3).
const NumDIRs = 2

// PCRIndex selects a platform configuration register.
type PCRIndex int

// Well-known PCR assignments used by the simulated boot sequence.
const (
	PCRFirmware   PCRIndex = 0
	PCRBootLoader PCRIndex = 1
	PCRKernel     PCRIndex = 2
)

// Errors returned by TPM operations.
var (
	ErrNotOwned      = errors.New("tpm: no owner has taken ownership")
	ErrAlreadyOwned  = errors.New("tpm: ownership already taken")
	ErrPCRMismatch   = errors.New("tpm: PCR state does not match binding")
	ErrBadIndex      = errors.New("tpm: register index out of range")
	ErrNVNotDefined  = errors.New("tpm: NVRAM index not defined")
	ErrNVExists      = errors.New("tpm: NVRAM index already defined")
	ErrNVTooLarge    = errors.New("tpm: data exceeds NVRAM space")
	ErrSealedElse    = errors.New("tpm: blob sealed by a different TPM")
	ErrCorruptBlob   = errors.New("tpm: sealed blob corrupt")
	ErrNoSuchCounter = errors.New("tpm: counter not defined")
)

// nvSpace bounds total simulated NVRAM, matching the "finite amount of
// secure NVRAM" of TPM v1.2.
const nvSpace = 2048

// TPM is a simulated secure coprocessor. The zero value is unusable; create
// instances with Manufacture. All methods are safe for concurrent use.
type TPM struct {
	mu sync.Mutex

	ek     *rsa.PrivateKey
	ekID   string // hex fingerprint of the public EK
	secret [32]byte

	pcrs    [NumPCRs]Digest
	started bool

	owned    bool
	srkSeed  [32]byte
	srkBind  pcrBinding
	dirs     [NumDIRs]Digest
	dirBind  pcrBinding
	nvram    map[uint32][]byte
	nvUsed   int
	counters map[uint32]uint64
}

// pcrBinding records a set of PCR indices and the values they must hold.
type pcrBinding struct {
	idxs []PCRIndex
	vals []Digest
}

func (b pcrBinding) match(pcrs *[NumPCRs]Digest) bool {
	for i, idx := range b.idxs {
		if pcrs[idx] != b.vals[i] {
			return false
		}
	}
	return true
}

// Manufacture creates a fresh TPM with a new endorsement key. keyBits
// selects the RSA modulus size; 0 means 1024, small enough to keep simulated
// boots fast while exercising real signature paths.
func Manufacture(keyBits int) (*TPM, error) {
	if keyBits == 0 {
		keyBits = 1024
	}
	ek, err := rsa.GenerateKey(rand.Reader, keyBits)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating EK: %w", err)
	}
	t := &TPM{
		ek:       ek,
		ekID:     Fingerprint(&ek.PublicKey),
		nvram:    map[uint32][]byte{},
		counters: map[uint32]uint64{},
	}
	if _, err := rand.Read(t.secret[:]); err != nil {
		return nil, fmt.Errorf("tpm: seeding internal secret: %w", err)
	}
	t.Startup()
	return t, nil
}

// Fingerprint returns the hex SHA-256 fingerprint (truncated to 20 bytes for
// readability) of an RSA public key; it names the key as a NAL principal.
func Fingerprint(pub *rsa.PublicKey) string {
	h := sha256.New()
	h.Write(pub.N.Bytes())
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(pub.E))
	h.Write(e[:])
	return hex.EncodeToString(h.Sum(nil)[:20])
}

// Startup simulates a platform power cycle: volatile PCRs reset to zero;
// DIRs, NVRAM, counters, ownership, and keys persist.
func (t *TPM) Startup() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.pcrs {
		t.pcrs[i] = Digest{}
	}
	t.started = true
}

// EKPublic returns the public endorsement key.
func (t *TPM) EKPublic() *rsa.PublicKey { return &t.ek.PublicKey }

// EKFingerprint returns the fingerprint identifying this TPM.
func (t *TPM) EKFingerprint() string { return t.ekID }

// Extend extends PCR i with the SHA-1 hash of data and returns the new
// value: PCR_i := SHA1(PCR_i || SHA1(data)).
func (t *TPM) Extend(i PCRIndex, data []byte) (Digest, error) {
	if i < 0 || int(i) >= NumPCRs {
		return Digest{}, ErrBadIndex
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	event := sha1.Sum(data)
	h := sha1.New()
	h.Write(t.pcrs[i][:])
	h.Write(event[:])
	copy(t.pcrs[i][:], h.Sum(nil))
	return t.pcrs[i], nil
}

// PCR reads the current value of register i.
func (t *TPM) PCR(i PCRIndex) (Digest, error) {
	if i < 0 || int(i) >= NumPCRs {
		return Digest{}, ErrBadIndex
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[i], nil
}

// snapshotLocked captures current values of the given registers.
func (t *TPM) snapshotLocked(idxs []PCRIndex) pcrBinding {
	b := pcrBinding{idxs: append([]PCRIndex(nil), idxs...)}
	for _, i := range idxs {
		b.vals = append(b.vals, t.pcrs[i])
	}
	return b
}

// TakeOwnership creates the storage root key, binding it — and access to the
// DIRs — to the current values of the given PCRs. A kernel booted from a
// different image cannot pass the binding (§3.4).
func (t *TPM) TakeOwnership(bound []PCRIndex) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.owned {
		return ErrAlreadyOwned
	}
	for _, i := range bound {
		if i < 0 || int(i) >= NumPCRs {
			return ErrBadIndex
		}
	}
	if _, err := rand.Read(t.srkSeed[:]); err != nil {
		return fmt.Errorf("tpm: seeding SRK: %w", err)
	}
	t.srkBind = t.snapshotLocked(bound)
	t.dirBind = t.snapshotLocked(bound)
	t.owned = true
	return nil
}

// Owned reports whether ownership has been taken.
func (t *TPM) Owned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.owned
}

// ForceClear abandons ownership and wipes SRK-protected state, DIRs, NVRAM,
// and counters, as a physical-presence TPM_ForceClear would.
func (t *TPM) ForceClear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.owned = false
	t.srkSeed = [32]byte{}
	t.dirs = [NumDIRs]Digest{}
	t.nvram = map[uint32][]byte{}
	t.nvUsed = 0
	t.counters = map[uint32]uint64{}
}

// DIRWrite stores a digest into DIR i. Access requires ownership and the
// PCR state recorded at TakeOwnership.
func (t *TPM) DIRWrite(i int, d Digest) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.dirAccessLocked(i); err != nil {
		return err
	}
	t.dirs[i] = d
	return nil
}

// DIRRead reads DIR i under the same access policy as DIRWrite.
func (t *TPM) DIRRead(i int) (Digest, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.dirAccessLocked(i); err != nil {
		return Digest{}, err
	}
	return t.dirs[i], nil
}

func (t *TPM) dirAccessLocked(i int) error {
	if i < 0 || i >= NumDIRs {
		return ErrBadIndex
	}
	if !t.owned {
		return ErrNotOwned
	}
	if !t.dirBind.match(&t.pcrs) {
		return ErrPCRMismatch
	}
	return nil
}

// NVDefine reserves an NVRAM area of the given size.
func (t *TPM) NVDefine(index uint32, size int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nvram[index]; ok {
		return ErrNVExists
	}
	if t.nvUsed+size > nvSpace {
		return ErrNVTooLarge
	}
	t.nvram[index] = make([]byte, size)
	t.nvUsed += size
	return nil
}

// NVWrite writes data to a defined NVRAM area.
func (t *TPM) NVWrite(index uint32, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.nvram[index]
	if !ok {
		return ErrNVNotDefined
	}
	if len(data) > len(buf) {
		return ErrNVTooLarge
	}
	copy(buf, data)
	return nil
}

// NVRead returns a copy of a defined NVRAM area.
func (t *TPM) NVRead(index uint32) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.nvram[index]
	if !ok {
		return nil, ErrNVNotDefined
	}
	return append([]byte(nil), buf...), nil
}

// CounterCreate defines a monotonic counter starting at zero.
func (t *TPM) CounterCreate(id uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.counters[id]; !ok {
		t.counters[id] = 0
	}
}

// CounterIncrement advances a monotonic counter and returns the new value.
func (t *TPM) CounterIncrement(id uint32) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.counters[id]
	if !ok {
		return 0, ErrNoSuchCounter
	}
	t.counters[id] = v + 1
	return v + 1, nil
}

// CounterRead returns the current value of a monotonic counter.
func (t *TPM) CounterRead(id uint32) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.counters[id]
	if !ok {
		return 0, ErrNoSuchCounter
	}
	return v, nil
}

// Sign signs digest (a SHA-256 hash) with the endorsement key. The Nexus
// uses this to certify the Nexus key NK during boot.
func (t *TPM) Sign(digest [32]byte) ([]byte, error) {
	return rsa.SignPKCS1v15(rand.Reader, t.ek, crypto.SHA256, digest[:])
}

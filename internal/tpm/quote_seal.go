package tpm

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Quote is a signed attestation of PCR state, the TPM's statement
// "EK says PCRs = vals" bound to a caller-supplied nonce for freshness.
type Quote struct {
	EKID  string
	Nonce []byte
	Idxs  []PCRIndex
	Vals  []Digest
	Sig   []byte
}

// Quote produces a signed attestation over the selected PCRs.
func (t *TPM) Quote(nonce []byte, idxs []PCRIndex) (*Quote, error) {
	t.mu.Lock()
	q := &Quote{EKID: t.ekID, Nonce: append([]byte(nil), nonce...)}
	for _, i := range idxs {
		if i < 0 || int(i) >= NumPCRs {
			t.mu.Unlock()
			return nil, ErrBadIndex
		}
		q.Idxs = append(q.Idxs, i)
		q.Vals = append(q.Vals, t.pcrs[i])
	}
	t.mu.Unlock()

	sig, err := rsa.SignPKCS1v15(rand.Reader, t.ek, crypto.SHA256, q.digest())
	if err != nil {
		return nil, fmt.Errorf("tpm: signing quote: %w", err)
	}
	q.Sig = sig
	return q, nil
}

// digest serializes the quoted content for signing.
func (q *Quote) digest() []byte {
	h := sha256.New()
	h.Write([]byte("tpm-quote\x00"))
	h.Write([]byte(q.EKID))
	h.Write(q.Nonce)
	for i, idx := range q.Idxs {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(idx))
		h.Write(b[:])
		h.Write(q.Vals[i][:])
	}
	return h.Sum(nil)
}

// Verify checks the quote signature against the given endorsement public
// key and nonce.
func (q *Quote) Verify(pub *rsa.PublicKey, nonce []byte) error {
	if string(nonce) != string(q.Nonce) {
		return fmt.Errorf("tpm: quote nonce mismatch")
	}
	if Fingerprint(pub) != q.EKID {
		return fmt.Errorf("tpm: quote names EK %s, key is %s", q.EKID, Fingerprint(pub))
	}
	return rsa.VerifyPKCS1v15(pub, crypto.SHA256, q.digest(), q.Sig)
}

// SealedBlob is data encrypted under a TPM-internal key and bound to PCR
// state; only the same TPM in the same PCR state can unseal it.
type SealedBlob struct {
	EKID       string
	Nonce      []byte // AES-GCM nonce
	Ciphertext []byte // seals header (binding) || payload
}

// sealHeader is the bound PCR selection serialized inside the ciphertext.
func sealHeader(b pcrBinding) []byte {
	out := []byte{byte(len(b.idxs))}
	for i, idx := range b.idxs {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(idx))
		out = append(out, n[:]...)
		out = append(out, b.vals[i][:]...)
	}
	return out
}

func parseSealHeader(data []byte) (pcrBinding, []byte, error) {
	var b pcrBinding
	if len(data) < 1 {
		return b, nil, ErrCorruptBlob
	}
	n := int(data[0])
	data = data[1:]
	for i := 0; i < n; i++ {
		if len(data) < 4+DigestSize {
			return b, nil, ErrCorruptBlob
		}
		b.idxs = append(b.idxs, PCRIndex(binary.BigEndian.Uint32(data[:4])))
		var d Digest
		copy(d[:], data[4:4+DigestSize])
		b.vals = append(b.vals, d)
		data = data[4+DigestSize:]
	}
	return b, data, nil
}

// aead builds the TPM-internal storage cipher. The key never leaves the
// simulated chip, which is what makes sealed blobs non-portable.
func (t *TPM) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(t.secret[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Seal encrypts data bound to the current values of the given PCRs.
func (t *TPM) Seal(data []byte, idxs []PCRIndex) (*SealedBlob, error) {
	t.mu.Lock()
	for _, i := range idxs {
		if i < 0 || int(i) >= NumPCRs {
			t.mu.Unlock()
			return nil, ErrBadIndex
		}
	}
	bind := t.snapshotLocked(idxs)
	t.mu.Unlock()

	g, err := t.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, g.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	hdr := sealHeader(bind)
	plain := make([]byte, 0, 2+len(hdr)+len(data))
	var hl [2]byte
	binary.BigEndian.PutUint16(hl[:], uint16(len(hdr)))
	plain = append(plain, hl[:]...)
	plain = append(plain, hdr...)
	plain = append(plain, data...)
	return &SealedBlob{
		EKID:       t.ekID,
		Nonce:      nonce,
		Ciphertext: g.Seal(nil, nonce, plain, []byte(t.ekID)),
	}, nil
}

// Unseal decrypts a sealed blob, succeeding only on the sealing TPM and only
// when the bound PCRs hold the values they had at Seal time.
func (t *TPM) Unseal(blob *SealedBlob) ([]byte, error) {
	if blob.EKID != t.ekID {
		return nil, ErrSealedElse
	}
	g, err := t.aead()
	if err != nil {
		return nil, err
	}
	plain, err := g.Open(nil, blob.Nonce, blob.Ciphertext, []byte(t.ekID))
	if err != nil {
		return nil, ErrCorruptBlob
	}
	if len(plain) < 2 {
		return nil, ErrCorruptBlob
	}
	hl := int(binary.BigEndian.Uint16(plain[:2]))
	if len(plain) < 2+hl {
		return nil, ErrCorruptBlob
	}
	bind, _, err := parseSealHeader(plain[2 : 2+hl])
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	ok := bind.match(&t.pcrs)
	t.mu.Unlock()
	if !ok {
		return nil, ErrPCRMismatch
	}
	return plain[2+hl:], nil
}

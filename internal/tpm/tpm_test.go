package tpm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTPM(t *testing.T) *TPM {
	t.Helper()
	tp, err := Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestExtendIsOrderSensitive(t *testing.T) {
	tp := newTPM(t)
	a1, _ := tp.Extend(PCRKernel, []byte("kernel-v1"))
	tp.Startup()
	b1, _ := tp.Extend(PCRKernel, []byte("kernel-v2"))
	if a1 == b1 {
		t.Error("different images must yield different PCR values")
	}
	tp.Startup()
	tp.Extend(PCRKernel, []byte("a"))
	ab, _ := tp.Extend(PCRKernel, []byte("b"))
	tp.Startup()
	tp.Extend(PCRKernel, []byte("b"))
	ba, _ := tp.Extend(PCRKernel, []byte("a"))
	if ab == ba {
		t.Error("extend must be order sensitive")
	}
}

func TestExtendDeterministic(t *testing.T) {
	tp1, tp2 := newTPM(t), newTPM(t)
	d1, _ := tp1.Extend(3, []byte("same"))
	d2, _ := tp2.Extend(3, []byte("same"))
	if d1 != d2 {
		t.Error("extend of identical data from reset state must agree across TPMs")
	}
}

func TestStartupResetsPCRsOnly(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRKernel, []byte("nexus"))
	if err := tp.TakeOwnership([]PCRIndex{PCRKernel}); err != nil {
		t.Fatal(err)
	}
	want := Digest{9: 0xAB}
	if err := tp.DIRWrite(0, want); err != nil {
		t.Fatal(err)
	}
	tp.Startup()
	pcr, _ := tp.PCR(PCRKernel)
	if pcr != (Digest{}) {
		t.Error("startup must reset PCRs")
	}
	// DIR persists but is unreadable until PCRs are re-established.
	if _, err := tp.DIRRead(0); !errors.Is(err, ErrPCRMismatch) {
		t.Errorf("DIR read before measurement: want ErrPCRMismatch, got %v", err)
	}
	tp.Extend(PCRKernel, []byte("nexus"))
	got, err := tp.DIRRead(0)
	if err != nil || got != want {
		t.Errorf("DIR after re-measurement = %v, %v", got, err)
	}
}

func TestDIRBlockedForModifiedKernel(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRKernel, []byte("nexus"))
	if err := tp.TakeOwnership([]PCRIndex{PCRKernel}); err != nil {
		t.Fatal(err)
	}
	tp.Startup()
	tp.Extend(PCRKernel, []byte("evil-nexus"))
	if err := tp.DIRWrite(0, Digest{1}); !errors.Is(err, ErrPCRMismatch) {
		t.Errorf("modified kernel must not access DIRs: %v", err)
	}
}

func TestOwnershipLifecycle(t *testing.T) {
	tp := newTPM(t)
	if err := tp.DIRWrite(0, Digest{}); !errors.Is(err, ErrNotOwned) {
		t.Errorf("unowned DIR access: want ErrNotOwned, got %v", err)
	}
	if err := tp.TakeOwnership(nil); err != nil {
		t.Fatal(err)
	}
	if err := tp.TakeOwnership(nil); !errors.Is(err, ErrAlreadyOwned) {
		t.Errorf("double ownership: want ErrAlreadyOwned, got %v", err)
	}
	if !tp.Owned() {
		t.Error("Owned should report true")
	}
	tp.ForceClear()
	if tp.Owned() {
		t.Error("ForceClear must drop ownership")
	}
}

func TestQuoteVerifies(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRFirmware, []byte("bios"))
	tp.Extend(PCRKernel, []byte("nexus"))
	nonce := []byte("fresh-nonce")
	q, err := tp.Quote(nonce, []PCRIndex{PCRFirmware, PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Verify(tp.EKPublic(), nonce); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if err := q.Verify(tp.EKPublic(), []byte("stale")); err == nil {
		t.Error("stale nonce must fail")
	}
	other := newTPM(t)
	if err := q.Verify(other.EKPublic(), nonce); err == nil {
		t.Error("wrong EK must fail")
	}
	// Tampered PCR value must fail.
	q.Vals[1][0] ^= 0xFF
	if err := q.Verify(tp.EKPublic(), nonce); err == nil {
		t.Error("tampered quote must fail")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRKernel, []byte("nexus"))
	secret := []byte("the SRK-protected state")
	blob, err := tp.Seal(secret, []PCRIndex{PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.Unseal(blob)
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("Unseal = %q, %v", got, err)
	}
}

func TestUnsealFailsAfterDifferentBoot(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(PCRKernel, []byte("nexus"))
	blob, err := tp.Seal([]byte("secret"), []PCRIndex{PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	tp.Startup()
	tp.Extend(PCRKernel, []byte("modified-nexus"))
	if _, err := tp.Unseal(blob); !errors.Is(err, ErrPCRMismatch) {
		t.Errorf("want ErrPCRMismatch, got %v", err)
	}
	// Re-measuring the genuine kernel restores access.
	tp.Startup()
	tp.Extend(PCRKernel, []byte("nexus"))
	if _, err := tp.Unseal(blob); err != nil {
		t.Errorf("genuine kernel should unseal: %v", err)
	}
}

func TestUnsealOnWrongTPM(t *testing.T) {
	tp1, tp2 := newTPM(t), newTPM(t)
	blob, err := tp1.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp2.Unseal(blob); !errors.Is(err, ErrSealedElse) {
		t.Errorf("want ErrSealedElse, got %v", err)
	}
}

func TestUnsealTamperedBlob(t *testing.T) {
	tp := newTPM(t)
	blob, err := tp.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob.Ciphertext[0] ^= 1
	if _, err := tp.Unseal(blob); !errors.Is(err, ErrCorruptBlob) {
		t.Errorf("want ErrCorruptBlob, got %v", err)
	}
}

func TestNVRAM(t *testing.T) {
	tp := newTPM(t)
	if err := tp.NVDefine(1, 64); err != nil {
		t.Fatal(err)
	}
	if err := tp.NVDefine(1, 64); !errors.Is(err, ErrNVExists) {
		t.Errorf("want ErrNVExists, got %v", err)
	}
	if err := tp.NVWrite(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := tp.NVRead(1)
	if err != nil || !bytes.Equal(got[:5], []byte("hello")) {
		t.Errorf("NVRead = %q, %v", got, err)
	}
	if err := tp.NVWrite(2, nil); !errors.Is(err, ErrNVNotDefined) {
		t.Errorf("want ErrNVNotDefined, got %v", err)
	}
	if err := tp.NVWrite(1, make([]byte, 65)); !errors.Is(err, ErrNVTooLarge) {
		t.Errorf("want ErrNVTooLarge, got %v", err)
	}
	if err := tp.NVDefine(3, nvSpace); !errors.Is(err, ErrNVTooLarge) {
		t.Errorf("space exhaustion: want ErrNVTooLarge, got %v", err)
	}
}

func TestMonotonicCounters(t *testing.T) {
	tp := newTPM(t)
	if _, err := tp.CounterRead(7); !errors.Is(err, ErrNoSuchCounter) {
		t.Errorf("want ErrNoSuchCounter, got %v", err)
	}
	tp.CounterCreate(7)
	for want := uint64(1); want <= 5; want++ {
		got, err := tp.CounterIncrement(7)
		if err != nil || got != want {
			t.Fatalf("increment = %d, %v; want %d", got, err, want)
		}
	}
	v, _ := tp.CounterRead(7)
	if v != 5 {
		t.Errorf("CounterRead = %d, want 5", v)
	}
	tp.Startup()
	v, _ = tp.CounterRead(7)
	if v != 5 {
		t.Error("counters must survive power cycles")
	}
}

func TestQuickSealRoundTrip(t *testing.T) {
	tp := newTPM(t)
	tp.Extend(2, []byte("k"))
	prop := func(data []byte) bool {
		blob, err := tp.Seal(data, []PCRIndex{2})
		if err != nil {
			return false
		}
		got, err := tp.Unseal(blob)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadIndexes(t *testing.T) {
	tp := newTPM(t)
	if _, err := tp.Extend(-1, nil); !errors.Is(err, ErrBadIndex) {
		t.Error("negative PCR index must fail")
	}
	if _, err := tp.Extend(NumPCRs, nil); !errors.Is(err, ErrBadIndex) {
		t.Error("large PCR index must fail")
	}
	if _, err := tp.PCR(99); !errors.Is(err, ErrBadIndex) {
		t.Error("PCR(99) must fail")
	}
	tp.TakeOwnership(nil)
	if err := tp.DIRWrite(NumDIRs, Digest{}); !errors.Is(err, ErrBadIndex) {
		t.Error("DIR index out of range must fail")
	}
	if _, err := tp.Quote(nil, []PCRIndex{77}); !errors.Is(err, ErrBadIndex) {
		t.Error("quote of bad index must fail")
	}
	if _, err := tp.Seal(nil, []PCRIndex{77}); !errors.Is(err, ErrBadIndex) {
		t.Error("seal to bad index must fail")
	}
}

package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestReadWriteDelete(t *testing.T) {
	d := New()
	if _, err := d.Read("/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if err := d.Write("/x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read("/x")
	if err != nil || string(got) != "v1" {
		t.Errorf("Read = %q, %v", got, err)
	}
	// Returned slice is a copy; mutating it must not affect the store.
	got[0] = 'X'
	again, _ := d.Read("/x")
	if string(again) != "v1" {
		t.Error("Read aliases internal buffer")
	}
	d.Delete("/x")
	if _, err := d.Read("/x"); !errors.Is(err, ErrNotFound) {
		t.Error("delete did not remove file")
	}
	d.Delete("/x") // idempotent
}

func TestList(t *testing.T) {
	d := New()
	d.Write("/b", nil)
	d.Write("/a", nil)
	names := d.List()
	if len(names) != 2 || names[0] != "/a" || names[1] != "/b" {
		t.Errorf("List = %v", names)
	}
}

func TestFailureInjection(t *testing.T) {
	d := New()
	d.FailAfter(2)
	if err := d.Write("/1", nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("/2", nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("/3", nil); !errors.Is(err, ErrInjectedFailure) {
		t.Errorf("want ErrInjectedFailure, got %v", err)
	}
	// Still failing until disabled.
	if err := d.Write("/4", nil); !errors.Is(err, ErrInjectedFailure) {
		t.Errorf("want ErrInjectedFailure, got %v", err)
	}
	d.FailAfter(-1)
	if err := d.Write("/5", nil); err != nil {
		t.Errorf("after reset: %v", err)
	}
	if d.Writes() != 3 {
		t.Errorf("Writes = %d, want 3", d.Writes())
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New()
	d.Write("/x", []byte("old"))
	img := d.Snapshot()
	d.Write("/x", []byte("new"))
	d.Write("/y", []byte("extra"))
	d.Restore(img)
	got, _ := d.Read("/x")
	if string(got) != "old" {
		t.Errorf("restored /x = %q", got)
	}
	if _, err := d.Read("/y"); !errors.Is(err, ErrNotFound) {
		t.Error("restore kept post-snapshot file")
	}
	// Snapshot is deep: mutating it doesn't touch the disk.
	img["/x"][0] = 'X'
	got, _ = d.Read("/x")
	if string(got) != "old" {
		t.Error("snapshot aliases disk buffers")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	d := New()
	prop := func(name string, data []byte) bool {
		if name == "" {
			name = "f"
		}
		if err := d.Write(name, data); err != nil {
			return false
		}
		got, err := d.Read(name)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package disk simulates the secondary storage device backing a Nexus
// installation: a flat store of named byte regions with write-failure
// injection for crash testing, plus snapshot/restore to model an attacker
// re-imaging the disk while the machine is powered down (the replay attack
// that the SSR layer must detect, §3.3).
package disk

import (
	"errors"
	"sort"
	"sync"
)

// ErrNotFound is returned when reading an absent file.
var ErrNotFound = errors.New("disk: file not found")

// ErrInjectedFailure is returned by writes after the injected failure point
// has been reached, simulating a power loss mid-update.
var ErrInjectedFailure = errors.New("disk: injected write failure")

// Disk is a simulated secondary storage device. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Disk struct {
	mu        sync.Mutex
	files     map[string][]byte
	failAfter int // writes remaining until failure; -1 disables injection
	writes    int
}

// New creates an empty disk.
func New() *Disk {
	return &Disk{files: map[string][]byte{}, failAfter: -1}
}

// Write stores data under name, replacing any previous contents.
func (d *Disk) Write(name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failAfter == 0 {
		return ErrInjectedFailure
	}
	if d.failAfter > 0 {
		d.failAfter--
	}
	d.writes++
	d.files[name] = append([]byte(nil), data...)
	return nil
}

// Read returns a copy of the contents of name.
func (d *Disk) Read(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

// Delete removes name; deleting an absent file is not an error.
func (d *Disk) Delete(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// List returns the stored names in sorted order.
func (d *Disk) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Writes reports the number of successful writes, for protocol tests.
func (d *Disk) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// FailAfter arranges for writes to fail once n more writes have completed
// (n = 0 fails the next write). Pass a negative n to disable injection.
func (d *Disk) FailAfter(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAfter = n
}

// Snapshot captures the full disk image, as an attacker duplicating the disk
// would.
func (d *Disk) Snapshot() map[string][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := make(map[string][]byte, len(d.files))
	for n, b := range d.files {
		img[n] = append([]byte(nil), b...)
	}
	return img
}

// Restore replaces the disk contents with a previously captured image — the
// replay attack of §3.3.
func (d *Disk) Restore(img map[string][]byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files = make(map[string][]byte, len(img))
	for n, b := range img {
		d.files[n] = append([]byte(nil), b...)
	}
}

// Package notabot implements the §4 Not-a-Bot prototype: the keyboard
// driver counts physical keypresses and issues TPM-backed certificates that
// a message originated from a human; a spam classifier consumes the
// certificate as one input. Messages composed with no accompanying
// keystrokes (bot traffic) cannot obtain the credential.
package notabot

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Errors.
var (
	ErrNoActivity = errors.New("notabot: no keyboard activity to attest")
	ErrStale      = errors.New("notabot: attestation does not cover this message")
)

// KeyboardDriver is the user-level keyboard driver, extended to count
// physical keypresses per window.
type KeyboardDriver struct {
	k    *kernel.Kernel
	sess *kernel.Session

	mu      sync.Mutex
	presses int
	serial  int64
}

// NewKeyboardDriver launches the driver process.
func NewKeyboardDriver(k *kernel.Kernel) (*KeyboardDriver, error) {
	s, err := k.NewSession([]byte("kbd-driver"))
	if err != nil {
		return nil, err
	}
	return &KeyboardDriver{k: k, sess: s}, nil
}

// Prin returns the driver principal.
func (d *KeyboardDriver) Prin() nal.Principal { return d.sess.Prin() }

// KeyPress records one physical keypress (called from the simulated
// interrupt path).
func (d *KeyboardDriver) KeyPress() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.presses++
}

// Attestation is the human-origin certificate attached to a message.
type Attestation struct {
	// Label is the in-system form: driver says humanInput(msgid, n).
	Label nal.Formula
	// Cert is the externalized TPM-chained form for remote classifiers.
	Cert *kernel.ExternalLabel
	// Presses is the keypress count covered.
	Presses int
}

// Attest consumes the accumulated keypress count and binds it to a message
// id. With zero accumulated presses — a bot composing without a keyboard —
// attestation is refused.
func (d *KeyboardDriver) Attest(msgID string) (*Attestation, error) {
	d.mu.Lock()
	n := d.presses
	d.presses = 0
	d.serial++
	d.mu.Unlock()
	if n == 0 {
		return nil, ErrNoActivity
	}
	stmt := nal.Pred{Name: "humanInput", Args: []nal.Term{
		nal.Str(msgID), nal.Int(int64(n)),
	}}
	label, err := d.sess.SayFormula(stmt)
	if err != nil {
		return nil, err
	}
	ext, err := d.sess.Attest(label.Handle)
	if err != nil {
		return nil, fmt.Errorf("notabot: externalizing: %w", err)
	}
	return &Attestation{Label: label.Formula, Cert: ext, Presses: n}, nil
}

// Classifier scores messages; the human-origin certificate shifts the
// score, as in the original Not-a-Bot proposal.
type Classifier struct {
	// TrustedEK is the platform fingerprint whose attestations we accept.
	TrustedEK string
	// SpamWords raise the content score.
	SpamWords []string
}

// Score rates a message in [0, 1]; above 0.5 is spam. A valid attestation
// covering the message id halves the content score.
func (c *Classifier) Score(msgID string, body string, att *Attestation) (float64, error) {
	score := 0.1
	for _, w := range c.SpamWords {
		if containsFold(body, w) {
			score += 0.3
		}
	}
	if score > 1 {
		score = 1
	}
	if att == nil {
		return score, nil
	}
	labels, err := kernel.VerifyExternalLabels(att.Cert, c.TrustedEK)
	if err != nil {
		return score, fmt.Errorf("notabot: attestation rejected: %w", err)
	}
	// The innermost statement must cover this message id.
	inner := labels[1]
	for {
		s, ok := inner.(nal.Says)
		if !ok {
			break
		}
		inner = s.F
	}
	p, ok := inner.(nal.Pred)
	if !ok || p.Name != "humanInput" || len(p.Args) != 2 || !p.Args[0].EqualTerm(nal.Str(msgID)) {
		return score, ErrStale
	}
	return score / 2, nil
}

func containsFold(haystack, needle string) bool {
	h := []rune(haystack)
	n := []rune(needle)
	if len(n) == 0 || len(h) < len(n) {
		return false
	}
	lower := func(r rune) rune {
		if 'A' <= r && r <= 'Z' {
			return r + 32
		}
		return r
	}
outer:
	for i := 0; i+len(n) <= len(h); i++ {
		for j := range n {
			if lower(h[i+j]) != lower(n[j]) {
				continue outer
			}
		}
		return true
	}
	return false
}

// TypeHuman simulates a user typing the message body, generating one
// keypress per rune with the driver.
func TypeHuman(d *KeyboardDriver, body string) {
	for range body {
		d.KeyPress()
	}
}

package notabot

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func world(t *testing.T) (*kernel.Kernel, *KeyboardDriver, *Classifier) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewKeyboardDriver(k)
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{TrustedEK: tp.EKFingerprint(), SpamWords: []string{"viagra", "lottery"}}
	return k, d, c
}

func TestHumanMessageScoresLower(t *testing.T) {
	_, d, c := world(t)
	body := "hello, want to win the lottery?"
	TypeHuman(d, body)
	att, err := d.Attest("msg-1")
	if err != nil {
		t.Fatal(err)
	}
	if att.Presses != len([]rune(body)) {
		t.Errorf("presses = %d", att.Presses)
	}
	human, err := c.Score("msg-1", body, att)
	if err != nil {
		t.Fatal(err)
	}
	bot, _ := c.Score("msg-1", body, nil)
	if human >= bot {
		t.Errorf("attested score %f should beat unattested %f", human, bot)
	}
}

func TestBotCannotAttest(t *testing.T) {
	_, d, _ := world(t)
	if _, err := d.Attest("bot-msg"); !errors.Is(err, ErrNoActivity) {
		t.Errorf("want ErrNoActivity, got %v", err)
	}
}

func TestAttestationBoundToMessage(t *testing.T) {
	_, d, c := world(t)
	TypeHuman(d, "legit")
	att, err := d.Attest("msg-A")
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the attestation on a different message fails.
	if _, err := c.Score("msg-B", "spam body", att); !errors.Is(err, ErrStale) {
		t.Errorf("want ErrStale, got %v", err)
	}
}

func TestAttestationFromWrongPlatformRejected(t *testing.T) {
	_, d, _ := world(t)
	TypeHuman(d, "hello")
	att, err := d.Attest("m")
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{TrustedEK: "deadbeef"}
	if _, err := c.Score("m", "hello", att); err == nil {
		t.Error("foreign platform attestation must be rejected")
	}
}

func TestPressesConsumedPerAttestation(t *testing.T) {
	_, d, _ := world(t)
	TypeHuman(d, "abc")
	if _, err := d.Attest("m1"); err != nil {
		t.Fatal(err)
	}
	// Counter was consumed: a second attestation without typing fails.
	if _, err := d.Attest("m2"); !errors.Is(err, ErrNoActivity) {
		t.Errorf("want ErrNoActivity, got %v", err)
	}
}

func TestSpamWordsRaiseScore(t *testing.T) {
	_, _, c := world(t)
	low, _ := c.Score("m", "regular business email", nil)
	high, _ := c.Score("m", "VIAGRA lottery special", nil)
	if high <= low {
		t.Errorf("spam words: %f vs %f", high, low)
	}
}

// Package bgp implements the §4 BGP protocol verifier: an external security
// monitor that straddles a legacy BGP speaker, proxying its announcements
// and enforcing minimal safety rules that catch route fabrication and false
// origination — a synthetic basis for trusting an unmodified legacy speaker.
//
// The verifier records every advertisement the speaker receives and checks
// each outgoing advertisement against two rules:
//
//	origin  — the speaker may originate only prefixes it owns
//	shorten — the speaker may not advertise an AS path shorter than the
//	          best (shortest) path it itself received for that prefix
//	          (n-hop claim when the shortest received is m requires n > m;
//	          specifically path must extend a received path by its own AS)
package bgp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Errors.
var (
	ErrFabricated = errors.New("bgp: advertisement violates safety rules")
)

// Announcement is a BGP UPDATE: a prefix with an AS path, or a withdrawal.
type Announcement struct {
	Prefix   string
	Path     []int // AS path, origin last
	Withdraw bool
}

// Verifier proxies a legacy speaker identified by its AS number.
type Verifier struct {
	AS    int
	Owned map[string]bool // prefixes this AS legitimately originates
	sess  *kernel.Session
	mu    sync.Mutex
	// received holds, per prefix, the shortest AS-path length heard and
	// the set of full paths received (for extension checking).
	received map[string][][]int

	accepted, rejected int
}

// NewVerifier launches a verifier process for a speaker.
func NewVerifier(k *kernel.Kernel, as int, owned []string) (*Verifier, error) {
	s, err := k.NewSession([]byte(fmt.Sprintf("bgp-verifier-as%d", as)))
	if err != nil {
		return nil, err
	}
	v := &Verifier{AS: as, Owned: map[string]bool{}, sess: s, received: map[string][][]int{}}
	for _, pre := range owned {
		v.Owned[pre] = true
	}
	return v, nil
}

// Prin returns the verifier's principal.
func (v *Verifier) Prin() nal.Principal { return v.sess.Prin() }

// Inbound records an advertisement the legacy speaker received from a peer.
func (v *Verifier) Inbound(a *Announcement) {
	if a.Withdraw {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	path := append([]int(nil), a.Path...)
	v.received[a.Prefix] = append(v.received[a.Prefix], path)
}

// Outbound checks an advertisement the legacy speaker wants to send. It
// returns nil when the advertisement conforms, and ErrFabricated otherwise.
func (v *Verifier) Outbound(a *Announcement) error {
	if a.Withdraw {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ok := v.conforms(a)
	if ok {
		v.accepted++
		return nil
	}
	v.rejected++
	return fmt.Errorf("%w: %s via %v", ErrFabricated, a.Prefix, a.Path)
}

func (v *Verifier) conforms(a *Announcement) bool {
	if len(a.Path) == 0 || a.Path[0] != v.AS {
		// Every advertisement from this speaker must be prepended with its
		// own AS.
		return false
	}
	if len(a.Path) == 1 {
		// Origination: the speaker claims to own the prefix.
		return v.Owned[a.Prefix]
	}
	// Propagation: the rest of the path must be one the speaker actually
	// received for this prefix (no shortening, no splicing).
	rest := a.Path[1:]
	for _, rcv := range v.received[a.Prefix] {
		if equalPath(rcv, rest) {
			return true
		}
	}
	return false
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats reports accepted and rejected outbound advertisements.
func (v *Verifier) Stats() (accepted, rejected int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.accepted, v.rejected
}

// ConformanceLabel is the verifier's synthetic-trust statement: every
// outgoing advertisement of the monitored speaker conforms to the safety
// rules. "verifier says bgpConformant(asN)".
func (v *Verifier) ConformanceLabel() (*kernel.Label, error) {
	v.mu.Lock()
	rejected := v.rejected
	v.mu.Unlock()
	if rejected > 0 {
		return nil, fmt.Errorf("%w: %d advertisements were rejected", ErrFabricated, rejected)
	}
	stmt := nal.Pred{Name: "bgpConformant", Args: []nal.Term{nal.Int(int64(v.AS))}}
	return v.sess.SayFormula(stmt)
}

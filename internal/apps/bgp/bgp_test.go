package bgp

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func verifier(t *testing.T, as int, owned []string) *Verifier {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(k, as, owned)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLegitimateOrigination(t *testing.T) {
	v := verifier(t, 65001, []string{"10.0.0.0/8"})
	if err := v.Outbound(&Announcement{Prefix: "10.0.0.0/8", Path: []int{65001}}); err != nil {
		t.Errorf("own prefix: %v", err)
	}
}

func TestFalseOriginationCaught(t *testing.T) {
	v := verifier(t, 65001, []string{"10.0.0.0/8"})
	if err := v.Outbound(&Announcement{Prefix: "192.168.0.0/16", Path: []int{65001}}); !errors.Is(err, ErrFabricated) {
		t.Errorf("foreign prefix originated: %v", err)
	}
}

func TestPropagationMustExtendReceived(t *testing.T) {
	v := verifier(t, 65001, nil)
	v.Inbound(&Announcement{Prefix: "172.16.0.0/12", Path: []int{65002, 65003}})
	// Legitimate: prepend own AS to the received path.
	if err := v.Outbound(&Announcement{Prefix: "172.16.0.0/12", Path: []int{65001, 65002, 65003}}); err != nil {
		t.Errorf("legitimate propagation: %v", err)
	}
	// Route shortening: claiming a 2-hop route when 3 hops were received.
	if err := v.Outbound(&Announcement{Prefix: "172.16.0.0/12", Path: []int{65001, 65003}}); !errors.Is(err, ErrFabricated) {
		t.Errorf("shortened route accepted: %v", err)
	}
	// Splicing a path never received.
	if err := v.Outbound(&Announcement{Prefix: "172.16.0.0/12", Path: []int{65001, 65009, 65003}}); !errors.Is(err, ErrFabricated) {
		t.Errorf("spliced route accepted: %v", err)
	}
	// Missing own AS prepend.
	if err := v.Outbound(&Announcement{Prefix: "172.16.0.0/12", Path: []int{65002, 65003}}); !errors.Is(err, ErrFabricated) {
		t.Errorf("unprepended route accepted: %v", err)
	}
}

func TestWithdrawalsPass(t *testing.T) {
	v := verifier(t, 65001, nil)
	if err := v.Outbound(&Announcement{Prefix: "10.0.0.0/8", Withdraw: true}); err != nil {
		t.Errorf("withdrawal: %v", err)
	}
}

func TestConformanceLabel(t *testing.T) {
	v := verifier(t, 65001, []string{"10.0.0.0/8"})
	v.Outbound(&Announcement{Prefix: "10.0.0.0/8", Path: []int{65001}})
	l, err := v.ConformanceLabel()
	if err != nil {
		t.Fatal(err)
	}
	if l.Formula.String() != v.Prin().String()+" says bgpConformant(65001)" {
		t.Errorf("label = %q", l.Formula)
	}
	// After a violation, the verifier refuses to vouch.
	v.Outbound(&Announcement{Prefix: "8.8.8.0/24", Path: []int{65001}})
	if _, err := v.ConformanceLabel(); !errors.Is(err, ErrFabricated) {
		t.Errorf("want ErrFabricated, got %v", err)
	}
	acc, rej := v.Stats()
	if acc != 1 || rej != 1 {
		t.Errorf("stats = %d, %d", acc, rej)
	}
}

// Package objstore implements the §4 Java-object-store scenario: transitive
// integrity verification. Deserializing untrusted bytes normally requires
// re-checking every type invariant; when the producer can present a label
// that it is a typesafe runtime upholding the same invariants, the consumer
// skips those checks. The package implements both the checked (slow) and
// trusting (fast) deserialization paths, and the label plumbing to choose
// safely between them.
package objstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// Errors.
var (
	ErrCorrupt   = errors.New("objstore: object violates type invariants")
	ErrNoLabel   = errors.New("objstore: producer lacks typesafety credential")
	ErrTruncated = errors.New("objstore: truncated record")
)

// Object is the stored record type: a string table plus index fields whose
// invariants (indices in range, lengths consistent, UTF-8-clean strings)
// model Java's deserialization checks.
type Object struct {
	Strings []string
	Refs    []uint32 // each must index Strings
}

// Marshal serializes an object.
func Marshal(o *Object) []byte {
	var buf []byte
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(o.Strings)))
	buf = append(buf, n[:]...)
	for _, s := range o.Strings {
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		buf = append(buf, n[:]...)
		buf = append(buf, s...)
	}
	binary.BigEndian.PutUint32(n[:], uint32(len(o.Refs)))
	buf = append(buf, n[:]...)
	for _, r := range o.Refs {
		binary.BigEndian.PutUint32(n[:], r)
		buf = append(buf, n[:]...)
	}
	return buf
}

// unmarshalRaw decodes without invariant checks — the fast path.
func unmarshalRaw(data []byte) (*Object, []byte, error) {
	next := func() (uint32, error) {
		if len(data) < 4 {
			return 0, ErrTruncated
		}
		v := binary.BigEndian.Uint32(data)
		data = data[4:]
		return v, nil
	}
	o := &Object{}
	ns, err := next()
	if err != nil {
		return nil, nil, err
	}
	for i := uint32(0); i < ns; i++ {
		ln, err := next()
		if err != nil {
			return nil, nil, err
		}
		if uint32(len(data)) < ln {
			return nil, nil, ErrTruncated
		}
		o.Strings = append(o.Strings, string(data[:ln]))
		data = data[ln:]
	}
	nr, err := next()
	if err != nil {
		return nil, nil, err
	}
	for i := uint32(0); i < nr; i++ {
		r, err := next()
		if err != nil {
			return nil, nil, err
		}
		o.Refs = append(o.Refs, r)
	}
	return o, data, nil
}

// Validate performs the full dynamic type-invariant check (the per-byte
// sanity checking the paper calls "the slow parts").
func Validate(o *Object) error {
	for _, r := range o.Refs {
		if int(r) >= len(o.Strings) {
			return fmt.Errorf("%w: ref %d out of range", ErrCorrupt, r)
		}
	}
	for i, s := range o.Strings {
		for _, c := range []byte(s) {
			if c == 0 {
				return fmt.Errorf("%w: string %d contains NUL", ErrCorrupt, i)
			}
		}
	}
	return nil
}

// Producer writes objects and, if it is a certified typesafe runtime,
// carries the credential to prove it.
type Producer struct {
	Prin  nal.Principal
	Creds []nal.Formula // e.g. TypeChecker says isTypeSafe(producer)
}

// Record is a stored object with provenance.
type Record struct {
	Producer nal.Principal
	Data     []byte
}

// Put serializes an object under the producer's identity. A typesafe
// producer never emits invariant-violating records; Put enforces that,
// modeling the runtime's own type system.
func (p *Producer) Put(o *Object) (*Record, error) {
	if err := Validate(o); err != nil {
		return nil, err
	}
	return &Record{Producer: p.Prin, Data: Marshal(o)}, nil
}

// Consumer deserializes records, choosing the fast path when the producer
// carries an isTypeSafe credential from a checker this consumer trusts.
type Consumer struct {
	// TrustedCheckers are principals whose isTypeSafe statements we accept.
	TrustedCheckers []nal.Principal
	// ChecksSkipped counts fast-path deserializations, for the benchmark.
	ChecksSkipped int
	// ChecksRun counts slow-path deserializations.
	ChecksRun int
}

// typesafeGoal is "checker says isTypeSafe(producer)" for any trusted
// checker.
func (c *Consumer) typesafeGoal(producer nal.Principal) []nal.Formula {
	goals := make([]nal.Formula, 0, len(c.TrustedCheckers))
	for _, ch := range c.TrustedCheckers {
		goals = append(goals, nal.Says{P: ch, F: nal.Pred{
			Name: "isTypeSafe",
			Args: []nal.Term{nal.PrinTerm{P: producer}},
		}})
	}
	return goals
}

// Get deserializes a record. With a valid typesafety proof the invariant
// checks are skipped (transitive integrity verification); otherwise the
// full validation runs.
func (c *Consumer) Get(r *Record, creds []nal.Formula) (*Object, error) {
	o, rest, err := unmarshalRaw(r.Data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTruncated
	}
	for _, goal := range c.typesafeGoal(r.Producer) {
		d := &proof.Deriver{Creds: creds}
		pf, derr := d.Derive(goal)
		if derr != nil {
			continue
		}
		if _, cerr := proof.Check(pf, goal, &proof.Env{Credentials: creds}); cerr == nil {
			c.ChecksSkipped++
			return o, nil
		}
	}
	c.ChecksRun++
	if err := Validate(o); err != nil {
		return nil, err
	}
	return o, nil
}

package objstore

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/nal"
)

var (
	checker  = nal.Name("TypeChecker")
	jvmPrin  = nal.Name("jvm-a")
	evilPrin = nal.Name("native-writer")
)

func typesafeCred(p nal.Principal) nal.Formula {
	return nal.Says{P: checker, F: nal.Pred{
		Name: "isTypeSafe",
		Args: []nal.Term{nal.PrinTerm{P: p}},
	}}
}

func TestFastPathWithCredential(t *testing.T) {
	prod := &Producer{Prin: jvmPrin}
	rec, err := prod.Put(&Object{Strings: []string{"a", "b"}, Refs: []uint32{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{TrustedCheckers: []nal.Principal{checker}}
	creds := []nal.Formula{typesafeCred(jvmPrin)}
	o, err := c.Get(rec, creds)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Strings) != 2 || c.ChecksSkipped != 1 || c.ChecksRun != 0 {
		t.Errorf("fast path not taken: skipped=%d run=%d", c.ChecksSkipped, c.ChecksRun)
	}
}

func TestSlowPathWithoutCredential(t *testing.T) {
	prod := &Producer{Prin: evilPrin}
	rec, err := prod.Put(&Object{Strings: []string{"x"}, Refs: []uint32{0}})
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{TrustedCheckers: []nal.Principal{checker}}
	if _, err := c.Get(rec, nil); err != nil {
		t.Fatal(err)
	}
	if c.ChecksRun != 1 || c.ChecksSkipped != 0 {
		t.Errorf("slow path not taken: skipped=%d run=%d", c.ChecksSkipped, c.ChecksRun)
	}
}

func TestCorruptRecordCaughtOnSlowPath(t *testing.T) {
	// A hand-forged record with an out-of-range ref.
	bad := &Record{Producer: evilPrin, Data: Marshal(&Object{
		Strings: []string{"a"}, Refs: []uint32{7},
	})}
	c := &Consumer{TrustedCheckers: []nal.Principal{checker}}
	if _, err := c.Get(bad, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("want ErrCorrupt, got %v", err)
	}
}

func TestCredentialForWrongProducerIgnored(t *testing.T) {
	bad := &Record{Producer: evilPrin, Data: Marshal(&Object{
		Strings: []string{"a"}, Refs: []uint32{7},
	})}
	c := &Consumer{TrustedCheckers: []nal.Principal{checker}}
	// A typesafety credential for a DIFFERENT producer must not enable the
	// fast path for this record.
	creds := []nal.Formula{typesafeCred(jvmPrin)}
	if _, err := c.Get(bad, creds); !errors.Is(err, ErrCorrupt) {
		t.Errorf("want ErrCorrupt, got %v", err)
	}
}

func TestUntrustedCheckerIgnored(t *testing.T) {
	quack := nal.Name("QuackChecker")
	rec := &Record{Producer: evilPrin, Data: Marshal(&Object{
		Strings: []string{"a"}, Refs: []uint32{7},
	})}
	c := &Consumer{TrustedCheckers: []nal.Principal{checker}}
	creds := []nal.Formula{
		nal.Says{P: quack, F: nal.Pred{Name: "isTypeSafe", Args: []nal.Term{nal.PrinTerm{P: evilPrin}}}},
	}
	if _, err := c.Get(rec, creds); !errors.Is(err, ErrCorrupt) {
		t.Errorf("untrusted checker honored: %v", err)
	}
}

func TestProducerRefusesInvalidObjects(t *testing.T) {
	prod := &Producer{Prin: jvmPrin}
	if _, err := prod.Put(&Object{Strings: []string{"a"}, Refs: []uint32{5}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("typesafe producer must not emit corrupt objects: %v", err)
	}
}

func TestTruncatedRecords(t *testing.T) {
	prod := &Producer{Prin: jvmPrin}
	rec, _ := prod.Put(&Object{Strings: []string{"abc"}, Refs: []uint32{0}})
	c := &Consumer{}
	for cut := 1; cut < len(rec.Data); cut += 3 {
		r := &Record{Producer: jvmPrin, Data: rec.Data[:cut]}
		if _, err := c.Get(r, nil); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	prop := func(ss []string, nrefs uint8) bool {
		if len(ss) == 0 {
			ss = []string{"x"}
		}
		for i := range ss {
			// Strip NULs so Validate passes.
			b := []byte(ss[i])
			for j := range b {
				if b[j] == 0 {
					b[j] = 1
				}
			}
			ss[i] = string(b)
		}
		refs := make([]uint32, int(nrefs)%8)
		for i := range refs {
			refs[i] = uint32(i % len(ss))
		}
		o := &Object{Strings: ss, Refs: refs}
		prod := &Producer{Prin: jvmPrin}
		rec, err := prod.Put(o)
		if err != nil {
			return false
		}
		c := &Consumer{}
		back, err := c.Get(rec, nil)
		if err != nil || len(back.Strings) != len(ss) || len(back.Refs) != len(refs) {
			return false
		}
		for i := range ss {
			if back.Strings[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

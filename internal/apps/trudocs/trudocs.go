// Package trudocs implements the §4 TruDocs document display system: it
// certifies that an excerpt speaks for its source document under a use
// policy. Supported policies admit typecase changes, replacing contiguous
// text with ellipses, and inserting editorial comments in square brackets,
// while limiting the length and total number of excerpts.
package trudocs

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"unicode"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Errors.
var (
	ErrNotDerivable = errors.New("trudocs: excerpt is not a permitted rendition of the source")
	ErrQuota        = errors.New("trudocs: excerpt quota exhausted")
	ErrTooLong      = errors.New("trudocs: excerpt exceeds length limit")
)

// Policy limits how excerpts may be derived.
type Policy struct {
	// MaxExcerpts bounds the number of certified excerpts per document.
	MaxExcerpts int
	// MaxLen bounds each excerpt's rune length (0 = unlimited).
	MaxLen int
	// AllowCaseChange admits typecase-insensitive matching.
	AllowCaseChange bool
	// AllowEllipsis admits "..." standing for elided source text.
	AllowEllipsis bool
	// AllowComments admits inserted "[editorial comments]".
	AllowComments bool
}

// Service issues excerpt certificates on behalf of a document-display
// process.
type Service struct {
	sess   *kernel.Session
	policy Policy

	mu     sync.Mutex
	issued map[string]int // document hash → excerpts issued
}

// New launches the TruDocs service.
func New(k *kernel.Kernel, policy Policy) (*Service, error) {
	s, err := k.NewSession([]byte("trudocs"))
	if err != nil {
		return nil, err
	}
	return &Service{sess: s, policy: policy, issued: map[string]int{}}, nil
}

// Prin returns the service principal.
func (s *Service) Prin() nal.Principal { return s.sess.Prin() }

// DocHash names a document by content hash.
func DocHash(doc string) string {
	sum := sha1.Sum([]byte(doc))
	return hex.EncodeToString(sum[:])
}

// Certify checks the excerpt against the source under the policy and, on
// success, issues the label
// "trudocs says excerptSpeaksFor(hash(excerpt), hash(doc))".
func (s *Service) Certify(doc, excerpt string) (*kernel.Label, error) {
	if s.policy.MaxLen > 0 && len([]rune(excerpt)) > s.policy.MaxLen {
		return nil, ErrTooLong
	}
	dh := DocHash(doc)
	s.mu.Lock()
	if s.policy.MaxExcerpts > 0 && s.issued[dh] >= s.policy.MaxExcerpts {
		s.mu.Unlock()
		return nil, ErrQuota
	}
	s.mu.Unlock()
	if !derivable(doc, excerpt, s.policy) {
		return nil, ErrNotDerivable
	}
	stmt := nal.Pred{Name: "excerptSpeaksFor", Args: []nal.Term{
		nal.Atom("hash:" + DocHash(excerpt)),
		nal.Atom("hash:" + dh),
	}}
	l, err := s.sess.SayFormula(stmt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.issued[dh]++
	s.mu.Unlock()
	return l, nil
}

// derivable decides whether excerpt can be produced from doc using only the
// policy's permitted operations. The excerpt is split into segments at
// ellipses and comments; text segments must appear in the source in order.
func derivable(doc, excerpt string, p Policy) bool {
	norm := func(s string) string {
		if p.AllowCaseChange {
			return strings.Map(unicode.ToLower, s)
		}
		return s
	}
	src := norm(doc)
	segs, ok := segments(excerpt, p)
	if !ok {
		return false
	}
	pos := 0
	for i, seg := range segs {
		seg = norm(seg)
		if seg == "" {
			continue
		}
		idx := strings.Index(src[pos:], seg)
		if idx < 0 {
			return false
		}
		// Without the ellipsis permission, consecutive segments must be
		// contiguous in the source (only one segment can exist then, since
		// segments only arise at ellipses/comments — but keep the check
		// for defense in depth).
		if !p.AllowEllipsis && i > 0 && idx != 0 {
			return false
		}
		pos += idx + len(seg)
	}
	return true
}

// segments splits the excerpt at "..." and "[...]" insertions according to
// the policy, returning the literal text runs that must match the source.
func segments(excerpt string, p Policy) ([]string, bool) {
	var segs []string
	cur := strings.Builder{}
	i := 0
	for i < len(excerpt) {
		switch {
		case strings.HasPrefix(excerpt[i:], "..."):
			if !p.AllowEllipsis {
				return nil, false
			}
			segs = append(segs, cur.String())
			cur.Reset()
			i += 3
		case excerpt[i] == '[':
			if !p.AllowComments {
				return nil, false
			}
			end := strings.IndexByte(excerpt[i:], ']')
			if end < 0 {
				return nil, false
			}
			segs = append(segs, cur.String())
			cur.Reset()
			i += end + 1
		case excerpt[i] == ']':
			return nil, false
		default:
			cur.WriteByte(excerpt[i])
			i++
		}
	}
	segs = append(segs, cur.String())
	// Trim whitespace around segment boundaries introduced by elisions.
	for j := range segs {
		segs[j] = strings.TrimSpace(segs[j])
	}
	return segs, true
}

// Verify checks a certified excerpt label against concrete texts.
func Verify(label nal.Formula, service nal.Principal, doc, excerpt string) error {
	want := nal.Says{P: service, F: nal.Pred{Name: "excerptSpeaksFor", Args: []nal.Term{
		nal.Atom("hash:" + DocHash(excerpt)),
		nal.Atom("hash:" + DocHash(doc)),
	}}}
	if !label.Equal(nal.Formula(want)) {
		return fmt.Errorf("%w: label %q does not match texts", ErrNotDerivable, label)
	}
	return nil
}

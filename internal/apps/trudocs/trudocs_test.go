package trudocs

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

const doc = "The committee found no evidence of wrongdoing. However, " +
	"the committee found the accounting practices questionable."

func service(t *testing.T, p Policy) *Service {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(k, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func allowAll() Policy {
	return Policy{AllowCaseChange: true, AllowEllipsis: true, AllowComments: true}
}

func TestVerbatimExcerpt(t *testing.T) {
	s := service(t, Policy{})
	l, err := s.Certify(doc, "The committee found no evidence of wrongdoing.")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(l.Formula, s.Prin(), doc, "The committee found no evidence of wrongdoing."); err != nil {
		t.Error(err)
	}
}

func TestEllipsisExcerpt(t *testing.T) {
	s := service(t, allowAll())
	if _, err := s.Certify(doc, "The committee found ... the accounting practices questionable."); err != nil {
		t.Errorf("ellipsis excerpt: %v", err)
	}
	// Without the permission, the same excerpt is refused.
	s2 := service(t, Policy{})
	if _, err := s2.Certify(doc, "The committee found ... questionable."); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("want ErrNotDerivable, got %v", err)
	}
}

func TestMeaningDistortionRefused(t *testing.T) {
	s := service(t, allowAll())
	// Reordering that reverses meaning: "questionable ... no evidence".
	if _, err := s.Certify(doc, "questionable ... no evidence of wrongdoing"); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("out-of-order splice accepted: %v", err)
	}
	// Fabricated text.
	if _, err := s.Certify(doc, "The committee found extensive fraud"); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("fabrication accepted: %v", err)
	}
}

func TestEditorialComments(t *testing.T) {
	s := service(t, allowAll())
	if _, err := s.Certify(doc, "The committee found [in 2011] no evidence of wrongdoing."); err != nil {
		t.Errorf("bracketed comment: %v", err)
	}
	s2 := service(t, Policy{AllowEllipsis: true})
	if _, err := s2.Certify(doc, "The committee [sic] found"); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("comments without permission: %v", err)
	}
}

func TestCaseChange(t *testing.T) {
	s := service(t, allowAll())
	if _, err := s.Certify(doc, "the COMMITTEE found no evidence of wrongdoing."); err != nil {
		t.Errorf("case change: %v", err)
	}
	s2 := service(t, Policy{})
	if _, err := s2.Certify(doc, "the COMMITTEE found"); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("case change without permission: %v", err)
	}
}

func TestQuotaAndLength(t *testing.T) {
	s := service(t, Policy{MaxExcerpts: 2, MaxLen: 30})
	if _, err := s.Certify(doc, "The committee found no evidence of wrongdoing."); !errors.Is(err, ErrTooLong) {
		t.Errorf("want ErrTooLong, got %v", err)
	}
	if _, err := s.Certify(doc, "The committee found"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Certify(doc, "no evidence of wrongdoing"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Certify(doc, "the accounting"); !errors.Is(err, ErrQuota) {
		t.Errorf("want ErrQuota, got %v", err)
	}
}

func TestVerifyRejectsMismatchedTexts(t *testing.T) {
	s := service(t, Policy{})
	l, err := s.Certify(doc, "The committee found")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(l.Formula, s.Prin(), doc, "a different excerpt"); err == nil {
		t.Error("mismatched excerpt verified")
	}
	if err := Verify(l.Formula, s.Prin(), "a different doc", "The committee found"); err == nil {
		t.Error("mismatched document verified")
	}
}

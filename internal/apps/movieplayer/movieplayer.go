// Package movieplayer implements the §4 movie-player scenario: a content
// owner streams high-value content only to players that provably cannot
// copy it out — without whitelisting player binaries. Instead of a binary
// hash attestation, the user exports labels from the IPC connectivity
// analyzer showing the player has no transitive channel to the disk or the
// network; the content owner's guard accepts any player satisfying that
// analytic property, preserving the user's choice of implementation.
package movieplayer

import (
	"errors"
	"fmt"

	"repro/internal/ipcgraph"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// ErrNotIsolated is returned when the player cannot prove channel isolation.
var ErrNotIsolated = errors.New("movieplayer: player has a channel to disk or network")

// ContentOwner gates streaming behind the isolation policy.
type ContentOwner struct {
	k *kernel.Kernel
	// Goal: IPCAnalyzer says (not hasPath(player, FS)) and
	//       IPCAnalyzer says (not hasPath(player, NetDriver)).
	fs, net *kernel.Session
	content []byte
}

// NewContentOwner creates an owner protecting content against exfiltration
// through the named disk and network driver sessions.
func NewContentOwner(k *kernel.Kernel, fs, net *kernel.Session, content []byte) *ContentOwner {
	return &ContentOwner{k: k, fs: fs, net: net, content: content}
}

// Goal returns the owner's policy for a given player session.
func (o *ContentOwner) Goal(player *kernel.Session) nal.Formula {
	noPath := func(dst *kernel.Session) nal.Formula {
		return nal.Says{P: nal.Name("IPCAnalyzer"), F: nal.Not{F: nal.Pred{
			Name: "hasPath",
			Args: []nal.Term{nal.PrinTerm{P: player.Prin()}, nal.PrinTerm{P: dst.Prin()}},
		}}}
	}
	return nal.And{L: noPath(o.fs), R: noPath(o.net)}
}

// Stream checks the supplied credentials against the isolation goal and, on
// success, returns the content. Note no hash of the player is demanded or
// disclosed.
func (o *ContentOwner) Stream(player *kernel.Session, creds []nal.Formula, pf *proof.Proof) ([]byte, error) {
	env := &proof.Env{Credentials: creds, TrustRoots: []nal.Principal{o.k.Prin}}
	if _, err := proof.Check(pf, o.Goal(player), env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotIsolated, err)
	}
	return append([]byte(nil), o.content...), nil
}

// RequestStream is the player-side flow: obtain analyzer labels, derive the
// proof, and present it.
func RequestStream(k *kernel.Kernel, a *ipcgraph.Analyzer, o *ContentOwner, player *kernel.Session) ([]byte, error) {
	noFS, err := a.CertifyNoPath(player, o.fs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotIsolated, err)
	}
	noNet, err := a.CertifyNoPath(player, o.net)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotIsolated, err)
	}
	creds := []nal.Formula{a.BindingLabel(), noFS.Formula, noNet.Formula}
	d := &proof.Deriver{Creds: creds, TrustRoots: []nal.Principal{k.Prin}}
	pf, err := d.Derive(o.Goal(player))
	if err != nil {
		return nil, fmt.Errorf("%w: cannot derive isolation proof: %v", ErrNotIsolated, err)
	}
	return o.Stream(player, creds, pf)
}

package movieplayer

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/ipcgraph"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func world(t *testing.T) (*kernel.Kernel, *ipcgraph.Analyzer, *kernel.Process, *kernel.Process, *kernel.Process) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ipcgraph.New(k)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := k.CreateProcess(0, []byte("fs-driver"))
	net, _ := k.CreateProcess(0, []byte("net-driver"))
	player, _ := k.CreateProcess(0, []byte("any-player-binary"))
	echo := func(*kernel.Process, *kernel.Msg) ([]byte, error) { return nil, nil }
	k.CreatePort(fs, echo)
	k.CreatePort(net, echo)
	k.EnforceChannels(true)
	return k, a, fs, net, player
}

func TestIsolatedPlayerStreams(t *testing.T) {
	k, a, fs, net, player := world(t)
	owner := NewContentOwner(k, fs, net, []byte("MOVIE-BYTES"))
	content, err := RequestStream(k, a, owner, player)
	if err != nil {
		t.Fatalf("isolated player refused: %v", err)
	}
	if !bytes.Equal(content, []byte("MOVIE-BYTES")) {
		t.Error("content mismatch")
	}
}

func TestConnectedPlayerRefused(t *testing.T) {
	k, a, fs, net, player := world(t)
	// The player holds a channel to the network driver: exfiltration
	// becomes possible, so the analyzer refuses to certify.
	netPort := portOf(t, k, net)
	k.GrantChannel(player, netPort)
	owner := NewContentOwner(k, fs, net, []byte("MOVIE-BYTES"))
	if _, err := RequestStream(k, a, owner, player); !errors.Is(err, ErrNotIsolated) {
		t.Errorf("want ErrNotIsolated, got %v", err)
	}
}

func TestTransitivePathRefused(t *testing.T) {
	k, a, fs, net, player := world(t)
	// player → helper → net: indirect exfiltration path.
	helper, _ := k.CreateProcess(0, []byte("helper"))
	helperPort, _ := k.CreatePort(helper, func(*kernel.Process, *kernel.Msg) ([]byte, error) { return nil, nil })
	k.GrantChannel(player, helperPort.ID)
	k.GrantChannel(helper, portOf(t, k, net))
	owner := NewContentOwner(k, fs, net, nil)
	if _, err := RequestStream(k, a, owner, player); !errors.Is(err, ErrNotIsolated) {
		t.Errorf("transitive path: want ErrNotIsolated, got %v", err)
	}
}

func TestForgedCredentialsRejected(t *testing.T) {
	k, a, fs, net, player := world(t)
	owner := NewContentOwner(k, fs, net, []byte("MOVIE"))
	// The player fabricates its own ¬hasPath labels (spoken by itself, not
	// the analyzer): the proof cannot connect them to IPCAnalyzer.
	lbl, err := player.Labels.Say("not hasPath(" + player.Prin.String() + ", " + fs.Prin.String() + ")")
	if err != nil {
		t.Fatal(err)
	}
	_ = lbl
	_ = a
	goal := owner.Goal(player)
	if _, err := owner.Stream(player, player.Labels.All(), nil); err == nil {
		t.Error("nil proof must be rejected")
	}
	_ = goal
}

func portOf(t *testing.T, k *kernel.Kernel, p *kernel.Process) int {
	t.Helper()
	for id := 1; id < 100; id++ {
		if pt, ok := k.FindPort(id); ok && pt.Owner == p {
			return id
		}
	}
	t.Fatal("no port")
	return 0
}

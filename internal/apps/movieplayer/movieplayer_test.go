package movieplayer

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/ipcgraph"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func world(t *testing.T) (*kernel.Kernel, *ipcgraph.Analyzer, *kernel.Session, *kernel.Session, *kernel.Session) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ipcgraph.New(k)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := k.NewSession([]byte("fs-driver"))
	net, _ := k.NewSession([]byte("net-driver"))
	player, _ := k.NewSession([]byte("any-player-binary"))
	echo := func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil }
	fs.Listen(echo)
	net.Listen(echo)
	k.EnforceChannels(true)
	return k, a, fs, net, player
}

func TestIsolatedPlayerStreams(t *testing.T) {
	k, a, fs, net, player := world(t)
	owner := NewContentOwner(k, fs, net, []byte("MOVIE-BYTES"))
	content, err := RequestStream(k, a, owner, player)
	if err != nil {
		t.Fatalf("isolated player refused: %v", err)
	}
	if !bytes.Equal(content, []byte("MOVIE-BYTES")) {
		t.Error("content mismatch")
	}
}

func TestConnectedPlayerRefused(t *testing.T) {
	k, a, fs, net, player := world(t)
	// The player opens a channel to the network driver: exfiltration
	// becomes possible, so the analyzer refuses to certify.
	if _, err := player.Open(portOf(t, net)); err != nil {
		t.Fatal(err)
	}
	owner := NewContentOwner(k, fs, net, []byte("MOVIE-BYTES"))
	if _, err := RequestStream(k, a, owner, player); !errors.Is(err, ErrNotIsolated) {
		t.Errorf("want ErrNotIsolated, got %v", err)
	}
}

func TestTransitivePathRefused(t *testing.T) {
	k, a, fs, net, player := world(t)
	// player → helper → net: indirect exfiltration path.
	helper, _ := k.NewSession([]byte("helper"))
	helperPort, _ := helper.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	helperID, _ := helper.PortOf(helperPort)
	if _, err := player.Open(helperID); err != nil {
		t.Fatal(err)
	}
	if _, err := helper.Open(portOf(t, net)); err != nil {
		t.Fatal(err)
	}
	owner := NewContentOwner(k, fs, net, nil)
	if _, err := RequestStream(k, a, owner, player); !errors.Is(err, ErrNotIsolated) {
		t.Errorf("transitive path: want ErrNotIsolated, got %v", err)
	}
}

func TestForgedCredentialsRejected(t *testing.T) {
	k, a, fs, net, player := world(t)
	owner := NewContentOwner(k, fs, net, []byte("MOVIE"))
	// The player fabricates its own ¬hasPath labels (spoken by itself, not
	// the analyzer): the proof cannot connect them to IPCAnalyzer.
	lbl, err := player.Say("not hasPath(" + player.Prin().String() + ", " + fs.Prin().String() + ")")
	if err != nil {
		t.Fatal(err)
	}
	_ = lbl
	_ = a
	goal := owner.Goal(player)
	if _, err := owner.Stream(player, player.Labels().All(), nil); err == nil {
		t.Error("nil proof must be rejected")
	}
	_ = goal
}

// portOf finds the public name of the session's sole listening port via
// the session's own handle table.
func portOf(t *testing.T, s *kernel.Session) int {
	t.Helper()
	id, err := s.ListeningPort()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

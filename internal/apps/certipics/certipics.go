// Package certipics implements the §4 CertiPics image-editing suite: image
// processing elements (crop, resize, color transform, clone) that run on
// the Nexus and concurrently generate a certified, unforgeable log of the
// transformations applied. Analyzers inspect the log — not the pixels — to
// decide whether a disallowed modification (such as cloning) was used.
package certipics

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Errors.
var (
	ErrBounds     = errors.New("certipics: operation out of image bounds")
	ErrDisallowed = errors.New("certipics: transformation log contains a disallowed operation")
	ErrLogForged  = errors.New("certipics: log does not connect source to final image")
)

// Image is a trivial grayscale raster.
type Image struct {
	W, H int
	Pix  []byte // len W*H
}

// NewImage creates a W×H image from pixel data (padded/truncated to fit).
func NewImage(w, h int, pix []byte) *Image {
	img := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	copy(img.Pix, pix)
	return img
}

// Hash names an image by content.
func (im *Image) Hash() string {
	h := sha1.New()
	fmt.Fprintf(h, "%d,%d;", im.W, im.H)
	h.Write(im.Pix)
	return hex.EncodeToString(h.Sum(nil))
}

// Editor applies transformations and maintains the certified log.
type Editor struct {
	sess *kernel.Session
	img  *Image
	log  []string // "op(args) hashBefore hashAfter"
}

// NewEditor opens an image for editing under the CertiPics process.
func NewEditor(k *kernel.Kernel, img *Image) (*Editor, error) {
	s, err := k.NewSession([]byte("certipics"))
	if err != nil {
		return nil, err
	}
	return &Editor{sess: s, img: img}, nil
}

// Prin returns the editor's principal.
func (e *Editor) Prin() nal.Principal { return e.sess.Prin() }

// Image returns the current image.
func (e *Editor) Image() *Image { return e.img }

func (e *Editor) record(op string, next *Image) {
	e.log = append(e.log, fmt.Sprintf("%s %s %s", op, e.img.Hash(), next.Hash()))
	e.img = next
}

// Crop replaces the image with the rectangle [x, x+w) × [y, y+h).
func (e *Editor) Crop(x, y, w, h int) error {
	if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > e.img.W || y+h > e.img.H {
		return ErrBounds
	}
	out := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	for row := 0; row < h; row++ {
		copy(out.Pix[row*w:(row+1)*w], e.img.Pix[(y+row)*e.img.W+x:(y+row)*e.img.W+x+w])
	}
	e.record(fmt.Sprintf("crop(%d,%d,%d,%d)", x, y, w, h), out)
	return nil
}

// Resize performs nearest-neighbour scaling.
func (e *Editor) Resize(w, h int) error {
	if w <= 0 || h <= 0 {
		return ErrBounds
	}
	out := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx := x * e.img.W / w
			sy := y * e.img.H / h
			out.Pix[y*w+x] = e.img.Pix[sy*e.img.W+sx]
		}
	}
	e.record(fmt.Sprintf("resize(%d,%d)", w, h), out)
	return nil
}

// ColorTransform adds delta to every pixel (saturating).
func (e *Editor) ColorTransform(delta int) error {
	out := &Image{W: e.img.W, H: e.img.H, Pix: make([]byte, len(e.img.Pix))}
	for i, p := range e.img.Pix {
		v := int(p) + delta
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Pix[i] = byte(v)
	}
	e.record(fmt.Sprintf("color(%d)", delta), out)
	return nil
}

// Clone copies a source rectangle over a destination rectangle — the
// content-fabricating operation publication standards forbid. It is
// supported (CertiPics is a general editor) but indelibly logged.
func (e *Editor) Clone(sx, sy, dx, dy, w, h int) error {
	if sx < 0 || sy < 0 || dx < 0 || dy < 0 || w <= 0 || h <= 0 ||
		sx+w > e.img.W || sy+h > e.img.H || dx+w > e.img.W || dy+h > e.img.H {
		return ErrBounds
	}
	out := &Image{W: e.img.W, H: e.img.H, Pix: append([]byte(nil), e.img.Pix...)}
	for row := 0; row < h; row++ {
		copy(out.Pix[(dy+row)*out.W+dx:(dy+row)*out.W+dx+w],
			e.img.Pix[(sy+row)*e.img.W+sx:(sy+row)*e.img.W+sx+w])
	}
	e.record(fmt.Sprintf("clone(%d,%d,%d,%d,%d,%d)", sx, sy, dx, dy, w, h), out)
	return nil
}

// CertifyLog issues the unforgeable transformation-log label:
// "certipics says transformed(hash:src, hash:final, log)".
func (e *Editor) CertifyLog(src *Image) (*kernel.Label, error) {
	logTerm := make(nal.TermList, 0, len(e.log))
	for _, entry := range e.log {
		logTerm = append(logTerm, nal.Str(entry))
	}
	stmt := nal.Pred{Name: "transformed", Args: []nal.Term{
		nal.Atom("hash:" + src.Hash()),
		nal.Atom("hash:" + e.img.Hash()),
		logTerm,
	}}
	return e.sess.SayFormula(stmt)
}

// CheckLog is the analyzer: given a certified log label and the disallowed
// operation prefixes (e.g. "clone"), it verifies the hash chain connects
// source to final and that no disallowed operation appears.
func CheckLog(label nal.Formula, service nal.Principal, srcHash, finalHash string, disallowed []string) error {
	says, ok := label.(nal.Says)
	if !ok || !says.P.EqualPrin(service) {
		return ErrLogForged
	}
	p, ok := says.F.(nal.Pred)
	if !ok || p.Name != "transformed" || len(p.Args) != 3 {
		return ErrLogForged
	}
	if !p.Args[0].EqualTerm(nal.Atom("hash:"+srcHash)) ||
		!p.Args[1].EqualTerm(nal.Atom("hash:"+finalHash)) {
		return ErrLogForged
	}
	entries, ok := p.Args[2].(nal.TermList)
	if !ok {
		return ErrLogForged
	}
	prev := srcHash
	for _, t := range entries {
		s, ok := t.(nal.Str)
		if !ok {
			return ErrLogForged
		}
		parts := strings.Fields(string(s))
		if len(parts) != 3 {
			return ErrLogForged
		}
		op, before, after := parts[0], parts[1], parts[2]
		if before != prev {
			return fmt.Errorf("%w: hash chain broken at %q", ErrLogForged, op)
		}
		for _, bad := range disallowed {
			if strings.HasPrefix(op, bad) {
				return fmt.Errorf("%w: %q", ErrDisallowed, op)
			}
		}
		prev = after
	}
	if prev != finalHash {
		return fmt.Errorf("%w: chain ends at %s, final is %s", ErrLogForged, prev, finalHash)
	}
	return nil
}

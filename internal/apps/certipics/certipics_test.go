package certipics

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

func editor(t *testing.T, img *Image) *Editor {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEditor(k, img)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func gradient(w, h int) *Image {
	pix := make([]byte, w*h)
	for i := range pix {
		pix[i] = byte(i)
	}
	return NewImage(w, h, pix)
}

func TestTransformsAndLog(t *testing.T) {
	src := gradient(8, 8)
	e := editor(t, src)
	if err := e.Crop(1, 1, 6, 6); err != nil {
		t.Fatal(err)
	}
	if err := e.Resize(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := e.ColorTransform(10); err != nil {
		t.Fatal(err)
	}
	l, err := e.CertifyLog(src)
	if err != nil {
		t.Fatal(err)
	}
	// A clean log passes the publication analyzer.
	if err := CheckLog(l.Formula, e.Prin(), src.Hash(), e.Image().Hash(), []string{"clone"}); err != nil {
		t.Errorf("clean log rejected: %v", err)
	}
}

func TestCloneDetected(t *testing.T) {
	src := gradient(8, 8)
	e := editor(t, src)
	if err := e.Clone(0, 0, 4, 4, 3, 3); err != nil {
		t.Fatal(err)
	}
	l, err := e.CertifyLog(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLog(l.Formula, e.Prin(), src.Hash(), e.Image().Hash(), []string{"clone"}); !errors.Is(err, ErrDisallowed) {
		t.Errorf("want ErrDisallowed, got %v", err)
	}
	// The same log passes a policy that does not forbid cloning.
	if err := CheckLog(l.Formula, e.Prin(), src.Hash(), e.Image().Hash(), nil); err != nil {
		t.Errorf("permissive policy: %v", err)
	}
}

func TestLogHashChain(t *testing.T) {
	src := gradient(8, 8)
	e := editor(t, src)
	e.ColorTransform(5)
	l, err := e.CertifyLog(src)
	if err != nil {
		t.Fatal(err)
	}
	// Claiming a different source or final image fails.
	other := gradient(4, 4)
	if err := CheckLog(l.Formula, e.Prin(), other.Hash(), e.Image().Hash(), nil); !errors.Is(err, ErrLogForged) {
		t.Errorf("wrong source: want ErrLogForged, got %v", err)
	}
	if err := CheckLog(l.Formula, e.Prin(), src.Hash(), other.Hash(), nil); !errors.Is(err, ErrLogForged) {
		t.Errorf("wrong final: want ErrLogForged, got %v", err)
	}
}

func TestBoundsChecking(t *testing.T) {
	e := editor(t, gradient(8, 8))
	if err := e.Crop(5, 5, 10, 10); !errors.Is(err, ErrBounds) {
		t.Errorf("crop: want ErrBounds, got %v", err)
	}
	if err := e.Resize(0, 5); !errors.Is(err, ErrBounds) {
		t.Errorf("resize: want ErrBounds, got %v", err)
	}
	if err := e.Clone(0, 0, 7, 7, 5, 5); !errors.Is(err, ErrBounds) {
		t.Errorf("clone: want ErrBounds, got %v", err)
	}
}

func TestCropSemantics(t *testing.T) {
	img := NewImage(4, 4, []byte{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	})
	e := editor(t, img)
	if err := e.Crop(1, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	got := e.Image()
	want := []byte{5, 6, 9, 10}
	for i := range want {
		if got.Pix[i] != want[i] {
			t.Fatalf("crop pix = %v, want %v", got.Pix, want)
		}
	}
}

func TestColorSaturation(t *testing.T) {
	img := NewImage(1, 2, []byte{250, 3})
	e := editor(t, img)
	e.ColorTransform(10)
	if e.Image().Pix[0] != 255 || e.Image().Pix[1] != 13 {
		t.Errorf("saturating add = %v", e.Image().Pix)
	}
	e.ColorTransform(-20)
	if e.Image().Pix[1] != 0 {
		t.Errorf("saturating sub = %v", e.Image().Pix)
	}
}

package kernel

import (
	"fmt"

	"repro/internal/nal"
)

// Verdict is a reference monitor's decision on an intercepted call.
type Verdict int

// Verdicts.
const (
	VerdictAllow Verdict = iota
	VerdictBlock
)

// Interposer is a reference monitor bound to an IPC channel (§3.2). OnCall
// sees the request (and its marshaled form) before the handler runs and may
// block it or mutate the message in place; OnReturn sees and may rewrite the
// response. Interposition composes: multiple monitors stack on one channel,
// and the interpose call itself can be monitored.
type Interposer interface {
	OnCall(from *Process, pt *Port, m *Msg, wire []byte) Verdict
	OnReturn(from *Process, pt *Port, m *Msg, out []byte) []byte
}

// Interpose binds a reference monitor to an IPC port and returns a handle
// for later removal. As with every Nexus system call, the binding is
// authorized: the monitor process must discharge the "interpose" goal on the
// channel — typically by presenting a consent credential from the monitored
// process (§3.2). Port 0 denotes the kernel system-call channel.
func (k *Kernel) Interpose(caller *Process, portID int, mon Interposer) (int, error) {
	if mon == nil {
		return 0, ErrBadArgument
	}
	if portID != 0 {
		if _, ok := k.FindPort(portID); !ok {
			return 0, ErrNoSuchPort
		}
	}
	obj := fmt.Sprintf("port:%d", portID)
	if err := k.authorize(caller, "interpose", obj); err != nil {
		return 0, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextMon++
	id := k.nextMon
	k.redir[portID] = append(k.redir[portID], monEntry{id: id, Interposer: mon})
	return id, nil
}

// Deinterpose removes a previously bound monitor by handle.
func (k *Kernel) Deinterpose(caller *Process, portID int, handle int) error {
	obj := fmt.Sprintf("port:%d", portID)
	if err := k.authorize(caller, "interpose", obj); err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	chain := k.redir[portID]
	for i, m := range chain {
		if m.id == handle {
			k.redir[portID] = append(chain[:i:i], chain[i+1:]...)
			return nil
		}
	}
	return ErrBadArgument
}

// monEntry pairs a monitor with its registration handle.
type monEntry struct {
	id int
	Interposer
}

// Monitors reports the number of monitors on a port.
func (k *Kernel) Monitors(portID int) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.redir[portID])
}

// FuncMonitor adapts plain functions to the Interposer interface.
type FuncMonitor struct {
	Call func(from *Process, pt *Port, m *Msg, wire []byte) Verdict
	Ret  func(from *Process, pt *Port, m *Msg, out []byte) []byte
}

// OnCall implements Interposer.
func (f FuncMonitor) OnCall(from *Process, pt *Port, m *Msg, wire []byte) Verdict {
	if f.Call == nil {
		return VerdictAllow
	}
	return f.Call(from, pt, m, wire)
}

// OnReturn implements Interposer.
func (f FuncMonitor) OnReturn(from *Process, pt *Port, m *Msg, out []byte) []byte {
	if f.Ret == nil {
		return out
	}
	return f.Ret(from, pt, m, out)
}

// ConsentGoal is a convenience constructing the conventional goal formula
// for the interpose operation on a port: the monitored process (the port
// owner) must have said consentToMonitor(port).
func ConsentGoal(owner nal.Principal, portID int) nal.Formula {
	return nal.Says{P: owner, F: nal.Pred{
		Name: "consentToMonitor",
		Args: []nal.Term{nal.Int(int64(portID))},
	}}
}

package kernel

import (
	"fmt"

	"repro/internal/nal"
)

// Verdict is a reference monitor's decision on an intercepted call.
type Verdict int

// Verdicts.
const (
	VerdictAllow Verdict = iota
	VerdictBlock
)

// Interposer is a reference monitor bound to an IPC channel (§3.2). OnCall
// sees the request (and its marshaled form) before the handler runs and may
// block it or mutate the message in place; OnReturn sees and may rewrite the
// response. Interposition composes: multiple monitors stack on one channel,
// and the interpose call itself can be monitored.
type Interposer interface {
	OnCall(from *Process, pt *Port, m *Msg, wire []byte) Verdict
	OnReturn(from *Process, pt *Port, m *Msg, out []byte) []byte
}

// Interpose binds a reference monitor to an IPC port and returns a handle
// for later removal. As with every Nexus system call, the binding is
// authorized: the monitor process must discharge the "interpose" goal on the
// channel — typically by presenting a consent credential from the monitored
// process (§3.2). Port 0 denotes the kernel system-call channel.
//
// The chain is copy-on-write: binding clones and republishes it, so calls
// already in flight finish against the snapshot they loaded and never see a
// half-installed monitor.
func (k *Kernel) Interpose(caller *Process, portID int, mon Interposer) (int, error) {
	if mon == nil {
		return 0, ErrBadArgument
	}
	if portID != 0 {
		if _, ok := k.ports.find(portID); !ok {
			return 0, ErrNoSuchPort
		}
	}
	obj := fmt.Sprintf("port:%d", portID)
	if err := k.authorize(caller, "interpose", obj); err != nil {
		return 0, err
	}
	id := int(k.ports.nextMon.Add(1))
	entry := monEntry{id: id, Interposer: mon}
	if portID == 0 {
		k.ports.sysChain.add(entry) // the syscall channel is never removed
		return id, nil
	}
	// The membership check and chain publish are atomic with respect to
	// port removal (both run under the registry's owner lock), so a
	// monitor either lands on a live port — success, even if the port dies
	// immediately after — or the bind fails; a dead port's chain is never
	// mutated and a monitor never observes a call after a failed bind.
	if !k.ports.interpose(portID, entry) {
		return 0, ErrNoSuchPort
	}
	return id, nil
}

// Deinterpose removes a previously bound monitor by handle.
func (k *Kernel) Deinterpose(caller *Process, portID int, handle int) error {
	target, err := k.chainAt(portID)
	if err != nil {
		return err
	}
	obj := fmt.Sprintf("port:%d", portID)
	if err := k.authorize(caller, "interpose", obj); err != nil {
		return err
	}
	if !target.removeByHandle(handle) {
		return ErrBadArgument
	}
	return nil
}

// chainAt resolves the mutable interposition chain of a port (0 = the
// kernel system-call channel).
func (k *Kernel) chainAt(portID int) (*monChain, error) {
	if portID == 0 {
		return &k.ports.sysChain, nil
	}
	pt, ok := k.ports.find(portID)
	if !ok {
		return nil, ErrNoSuchPort
	}
	return &pt.chain, nil
}

// monEntry pairs a monitor with its registration handle.
type monEntry struct {
	id int
	Interposer
}

// Monitors reports the number of monitors on a port.
func (k *Kernel) Monitors(portID int) int {
	mc, err := k.chainAt(portID)
	if err != nil {
		return 0
	}
	return mc.len()
}

// FuncMonitor adapts plain functions to the Interposer interface.
type FuncMonitor struct {
	Call func(from *Process, pt *Port, m *Msg, wire []byte) Verdict
	Ret  func(from *Process, pt *Port, m *Msg, out []byte) []byte
}

// OnCall implements Interposer.
func (f FuncMonitor) OnCall(from *Process, pt *Port, m *Msg, wire []byte) Verdict {
	if f.Call == nil {
		return VerdictAllow
	}
	return f.Call(from, pt, m, wire)
}

// OnReturn implements Interposer.
func (f FuncMonitor) OnReturn(from *Process, pt *Port, m *Msg, out []byte) []byte {
	if f.Ret == nil {
		return out
	}
	return f.Ret(from, pt, m, out)
}

// ConsentGoal is a convenience constructing the conventional goal formula
// for the interpose operation on a port: the monitored process (the port
// owner) must have said consentToMonitor(port).
func ConsentGoal(owner nal.Principal, portID int) nal.Formula {
	return nal.Says{P: owner, F: nal.Pred{
		Name: "consentToMonitor",
		Args: []nal.Term{nal.Int(int64(portID))},
	}}
}

package kernel

import (
	"fmt"

	"repro/internal/nal"
)

// Verdict is a reference monitor's decision on an intercepted call.
type Verdict int

// Verdicts.
const (
	VerdictAllow Verdict = iota
	VerdictBlock
)

// Interposer is a reference monitor bound to an IPC channel (§3.2). OnCall
// sees the request (and its marshaled form) before the handler runs and may
// block it or mutate the message in place; OnReturn sees and may rewrite the
// response. Interposition composes: multiple monitors stack on one channel,
// and the interpose call itself can be monitored.
//
// Monitors receive the caller as an ABI value (Caller), never a kernel
// object pointer. The wire buffer is valid only for the duration of the
// call — batched submissions marshal into a reused arena — so a monitor
// that retains it must copy.
type Interposer interface {
	OnCall(from Caller, m *Msg, wire []byte) Verdict
	OnReturn(from Caller, m *Msg, out []byte) []byte
}

// Interpose binds a reference monitor to an IPC port and returns a handle
// for later removal. As with every Nexus system call, the binding is
// authorized: the monitor process must discharge the "interpose" goal on the
// channel — typically by presenting a consent credential from the monitored
// process (§3.2). Port 0 denotes the kernel system-call channel.
//
// The chain is copy-on-write: binding clones and republishes it, so calls
// already in flight finish against the snapshot they loaded and never see a
// half-installed monitor.
func (k *Kernel) Interpose(caller *Process, portID int, mon Interposer) (int, error) {
	if mon == nil {
		return 0, abiErr(EINVAL, "interpose", "nil monitor")
	}
	if portID != 0 {
		if _, ok := k.ports.find(portID); !ok {
			return 0, ErrNoSuchPort
		}
	}
	obj := fmt.Sprintf("port:%d", portID)
	if err := k.authorize(caller, "interpose", obj); err != nil {
		return 0, err
	}
	id := int(k.ports.nextMon.Add(1))
	entry := monEntry{id: id, Interposer: mon}
	if portID == 0 {
		k.ports.sysChain.add(entry) // the syscall channel is never removed
		return id, nil
	}
	// The membership check and chain publish are atomic with respect to
	// port removal (both run under the registry's owner lock), so a
	// monitor either lands on a live port — success, even if the port dies
	// immediately after — or the bind fails; a dead port's chain is never
	// mutated and a monitor never observes a call after a failed bind.
	if !k.ports.interpose(portID, entry) {
		return 0, ErrNoSuchPort
	}
	return id, nil
}

// Deinterpose removes a previously bound monitor by handle. Like Interpose,
// the membership check and chain mutation linearize against port teardown
// under the registry owner lock: a dead port's chain is never mutated, and
// removal on a dying port fails with ENOENT instead of racing the sweep.
func (k *Kernel) Deinterpose(caller *Process, portID int, handle int) error {
	obj := fmt.Sprintf("port:%d", portID)
	if portID == 0 {
		if err := k.authorize(caller, "interpose", obj); err != nil {
			return err
		}
		if !k.ports.sysChain.removeByHandle(handle) {
			return abiErr(EINVAL, "deinterpose", "no such monitor handle")
		}
		return nil
	}
	if _, ok := k.ports.find(portID); !ok {
		return ErrNoSuchPort
	}
	if err := k.authorize(caller, "interpose", obj); err != nil {
		return err
	}
	found, live := k.ports.deinterpose(portID, handle)
	if !live {
		return ErrNoSuchPort
	}
	if !found {
		return abiErr(EINVAL, "deinterpose", "no such monitor handle")
	}
	return nil
}

// monEntry pairs a monitor with its registration handle.
type monEntry struct {
	id int
	Interposer
}

// Monitors reports the number of monitors on a port as an atomic snapshot
// of its published chain: the count is coherent with some linearization of
// concurrent Interpose/Deinterpose calls, and a torn-down port reports 0.
func (k *Kernel) Monitors(portID int) int {
	if portID == 0 {
		return k.ports.sysChain.len()
	}
	pt, ok := k.ports.find(portID)
	if !ok {
		return 0
	}
	return pt.chain.len()
}

// FuncMonitor adapts plain functions to the Interposer interface.
type FuncMonitor struct {
	Call func(from Caller, m *Msg, wire []byte) Verdict
	Ret  func(from Caller, m *Msg, out []byte) []byte
}

// OnCall implements Interposer.
func (f FuncMonitor) OnCall(from Caller, m *Msg, wire []byte) Verdict {
	if f.Call == nil {
		return VerdictAllow
	}
	return f.Call(from, m, wire)
}

// OnReturn implements Interposer.
func (f FuncMonitor) OnReturn(from Caller, m *Msg, out []byte) []byte {
	if f.Ret == nil {
		return out
	}
	return f.Ret(from, m, out)
}

// ConsentGoal is a convenience constructing the conventional goal formula
// for the interpose operation on a port: the monitored process (the port
// owner) must have said consentToMonitor(port).
func ConsentGoal(owner nal.Principal, portID int) nal.Formula {
	return nal.Says{P: owner, F: nal.Pred{
		Name: "consentToMonitor",
		Args: []nal.Term{nal.Int(int64(portID))},
	}}
}

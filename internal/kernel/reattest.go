package kernel

import "container/list"

// lruTable is a capacity-bounded string-keyed map with least-recently-used
// eviction. The transport uses it for the per-connection warm
// re-attestation tables (client-side attested fingerprints, server-side
// verified certificates): a long-lived connection transferring many
// distinct labels stays memory-bounded, and an evicted entry just costs
// one cold re-crossing. Callers provide their own synchronization (the
// client table lives under Peer.sendMu; the server table is confined to
// the connection's scheduler worker).
type lruTable[V any] struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRUTable[V any](capacity int) *lruTable[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruTable[V]{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// get returns the value and refreshes the entry's recency.
func (t *lruTable[V]) get(key string) (V, bool) {
	if el, ok := t.m[key]; ok {
		t.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or updates the entry, evicting the least recently used one
// when the table is at capacity.
func (t *lruTable[V]) put(key string, val V) {
	if el, ok := t.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		t.ll.MoveToFront(el)
		return
	}
	if t.ll.Len() >= t.cap {
		back := t.ll.Back()
		if back != nil {
			t.ll.Remove(back)
			delete(t.m, back.Value.(*lruEntry[V]).key)
		}
	}
	t.m[key] = t.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

func (t *lruTable[V]) remove(key string) {
	if el, ok := t.m[key]; ok {
		t.ll.Remove(el)
		delete(t.m, key)
	}
}

func (t *lruTable[V]) len() int { return t.ll.Len() }

package kernel

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// DecisionCache stores previously observed guard decisions keyed by the
// access-control tuple (subject, operation, object), §2.8. The hash function
// maps all entries with the same (operation, object) into the same
// subregion, so a setgoal invalidation clears one subregion instead of the
// whole cache; a proof update clears a single entry.
type DecisionCache struct {
	mu      sync.RWMutex
	regions []map[string]bool // key → allow
	enabled bool

	hits, misses atomic.Uint64
}

// NewDecisionCache creates a cache with the given subregion count (the
// configurable parameter trading invalidation cost against collision rate).
func NewDecisionCache(regions int) *DecisionCache {
	if regions < 1 {
		regions = 1
	}
	c := &DecisionCache{regions: make([]map[string]bool, regions), enabled: true}
	for i := range c.regions {
		c.regions[i] = map[string]bool{}
	}
	return c
}

// Disable turns the cache off; lookups always miss.
func (c *DecisionCache) Disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = false
}

// Enable turns the cache back on.
func (c *DecisionCache) Enable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = true
}

func regionHash(op, obj string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(obj))
	return h.Sum32()
}

func entryKey(subj, op, obj string) string {
	return subj + "\x00" + op + "\x00" + obj
}

// Lookup returns the cached decision for the tuple, if present.
func (c *DecisionCache) Lookup(subj, op, obj string) (allow, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.enabled {
		c.misses.Add(1)
		return false, false
	}
	r := c.regions[regionHash(op, obj)%uint32(len(c.regions))]
	allow, ok = r[entryKey(subj, op, obj)]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return allow, ok
}

// Insert records a cacheable decision.
func (c *DecisionCache) Insert(subj, op, obj string, allow bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	r := c.regions[regionHash(op, obj)%uint32(len(c.regions))]
	r[entryKey(subj, op, obj)] = allow
}

// InvalidateEntry clears the single entry for a proof update.
func (c *DecisionCache) InvalidateEntry(subj, op, obj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.regions[regionHash(op, obj)%uint32(len(c.regions))]
	delete(r, entryKey(subj, op, obj))
}

// InvalidateRegion clears the subregion holding all subjects' entries for
// (op, obj) — the setgoal invalidation path.
func (c *DecisionCache) InvalidateRegion(op, obj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := regionHash(op, obj) % uint32(len(c.regions))
	c.regions[i] = map[string]bool{}
}

// Flush clears everything.
func (c *DecisionCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.regions {
		c.regions[i] = map[string]bool{}
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// Stats reports hit and miss counts since the last Flush.
func (c *DecisionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

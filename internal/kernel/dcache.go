package kernel

import (
	"sync"
	"sync/atomic"

	"repro/internal/cachestat"
)

// DecisionCache stores previously observed guard decisions keyed by the
// access-control tuple (subject, operation, object), §2.8. The hash function
// maps all entries with the same (operation, object) into the same
// subregion, so a setgoal invalidation clears one subregion instead of the
// whole cache; a proof update clears a single entry.
//
// Each subregion carries its own lock, so lookups and inserts for different
// resources proceed in parallel and a setgoal invalidation stalls only the
// one subregion it clears.
type DecisionCache struct {
	regions []*dcRegion
	enabled atomic.Bool
	stats   cachestat.Counters
}

// dcRegion is one independently locked subregion. epoch counts
// invalidations of the subregion; InsertIf uses it to discard decisions
// that were computed against since-invalidated goal or proof state.
type dcRegion struct {
	mu    sync.RWMutex
	m     map[dcKey]bool // tuple → allow
	epoch uint64
}

// dcKey is the access-control tuple as a composite map key: hashing a
// struct of strings allocates nothing, unlike the concatenated string key
// it replaces, which kept one allocation on every warm authorized syscall.
type dcKey struct{ subj, op, obj string }

// NewDecisionCache creates a cache with the given subregion count (the
// configurable parameter trading invalidation cost against collision rate).
func NewDecisionCache(regions int) *DecisionCache {
	if regions < 1 {
		regions = 1
	}
	c := &DecisionCache{regions: make([]*dcRegion, regions)}
	for i := range c.regions {
		c.regions[i] = &dcRegion{m: map[dcKey]bool{}}
	}
	c.enabled.Store(true)
	return c
}

// Disable turns the cache off; lookups always miss.
func (c *DecisionCache) Disable() { c.enabled.Store(false) }

// Enable turns the cache back on.
func (c *DecisionCache) Enable() { c.enabled.Store(true) }

// regionHash is FNV-1a over op, a 0 separator, then obj — computed inline
// so the warm lookup path stays allocation-free in the static view too
// (hash values are identical to the fnv.New32a formulation it replaces).
func regionHash(op, obj string) uint32 {
	const prime32 = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(op); i++ {
		h = (h ^ uint32(op[i])) * prime32
	}
	h = (h ^ 0) * prime32
	for i := 0; i < len(obj); i++ {
		h = (h ^ uint32(obj[i])) * prime32
	}
	return h
}

// region selects the subregion holding all entries for (op, obj).
func (c *DecisionCache) region(op, obj string) *dcRegion {
	return c.regions[regionHash(op, obj)%uint32(len(c.regions))]
}

// Lookup returns the cached decision for the tuple, if present.
func (c *DecisionCache) Lookup(subj, op, obj string) (allow, ok bool) {
	if !c.enabled.Load() {
		c.stats.Lookup(false)
		return false, false
	}
	r := c.region(op, obj)
	r.mu.RLock()
	allow, ok = r.m[dcKey{subj, op, obj}]
	r.mu.RUnlock()
	c.stats.Lookup(ok)
	return allow, ok
}

// Insert records a cacheable decision unconditionally. It is meant for
// benchmarks and tests that drive the cache directly; decision paths that
// read goal or proof state before deciding must use Epoch + InsertIf, or a
// concurrent invalidation can be lost and the stale decision cached.
func (c *DecisionCache) Insert(subj, op, obj string, allow bool) {
	if !c.enabled.Load() {
		return
	}
	r := c.region(op, obj)
	r.mu.Lock()
	r.m[dcKey{subj, op, obj}] = allow
	r.mu.Unlock()
}

// Epoch returns the invalidation epoch of the subregion holding (op, obj).
// Read it before consulting goal and proof state; pass it to InsertIf so a
// decision computed against state invalidated mid-flight is discarded
// instead of cached stale.
func (c *DecisionCache) Epoch(op, obj string) uint64 {
	r := c.region(op, obj)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// InsertIf records a cacheable decision only if the subregion has not been
// invalidated since the caller observed epoch.
func (c *DecisionCache) InsertIf(subj, op, obj string, allow bool, epoch uint64) {
	if !c.enabled.Load() {
		return
	}
	r := c.region(op, obj)
	r.mu.Lock()
	if r.epoch == epoch {
		r.m[dcKey{subj, op, obj}] = allow
	}
	r.mu.Unlock()
}

// InvalidateEntry clears the single entry for a proof update.
func (c *DecisionCache) InvalidateEntry(subj, op, obj string) {
	r := c.region(op, obj)
	k := dcKey{subj, op, obj}
	r.mu.Lock()
	_, present := r.m[k]
	delete(r.m, k)
	r.epoch++
	r.mu.Unlock()
	if present {
		c.stats.Evicted(1)
	}
}

// InvalidateRegion clears the subregion holding all subjects' entries for
// (op, obj) — the setgoal invalidation path. Only that one subregion is
// locked; lookups against other subregions are unaffected.
func (c *DecisionCache) InvalidateRegion(op, obj string) {
	r := c.region(op, obj)
	r.mu.Lock()
	n := len(r.m)
	r.m = map[dcKey]bool{}
	r.epoch++
	r.mu.Unlock()
	c.stats.Evicted(uint64(n))
}

// Flush clears everything and resets the statistics. Not linearizable with
// respect to concurrent lookups; meant for quiescent reconfiguration.
func (c *DecisionCache) Flush() {
	for _, r := range c.regions {
		r.mu.Lock()
		r.m = map[dcKey]bool{}
		r.epoch++
		r.mu.Unlock()
	}
	c.stats.Reset()
}

// Len reports the total number of cached decisions.
func (c *DecisionCache) Len() int {
	n := 0
	for _, r := range c.regions {
		r.mu.RLock()
		n += len(r.m)
		r.mu.RUnlock()
	}
	return n
}

// RegionLen reports the number of entries in the subregion holding (op,
// obj); tests use it to observe invalidation granularity.
func (c *DecisionCache) RegionLen(op, obj string) int {
	r := c.region(op, obj)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Stats reports hit and miss counts since the last Flush.
func (c *DecisionCache) Stats() (hits, misses uint64) {
	s := c.stats.Snapshot()
	return s.Hits, s.Misses
}

// StatsSnapshot reports full decision-cache statistics in the shape shared
// with the guard proof cache; invalidated entries count as evictions.
func (c *DecisionCache) StatsSnapshot() cachestat.Stats { return c.stats.Snapshot() }

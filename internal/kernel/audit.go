package kernel

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Decision audit log: an append-only, hash-chained record of authorization
// *decisions* — guard verdicts, default-policy outcomes, and no-guard
// failures. Each record's hash covers its content and the previous
// record's hash, so any in-place tampering (edit, deletion, reordering,
// truncation-and-regrowth) breaks the chain against the published head.
//
// Only the decision path writes here: a warm request served from the
// decision cache replays a decision that was recorded when it was made, so
// the cached fast path stays untouched (and allocation-free). The log is
// bounded: when it reaches its cap the older half is evicted and the chain
// base advances to the last evicted record's hash, keeping verification
// sound over the retained window while the head keeps covering the entire
// history ever appended.
//
// The log's mutex is a leaf: nothing else is acquired while it is held.

// ErrAuditChain reports a break in the audit log's hash chain.
var ErrAuditChain = errors.New("kernel: audit chain verification failed")

// AuditRecord is one authorization decision.
type AuditRecord struct {
	Seq    uint64
	Subj   string
	Op     string
	Obj    string
	Allow  bool
	Reason string
	// Prev is the chain hash before this record; Hash covers Prev and
	// every field above.
	Prev [32]byte
	Hash [32]byte
}

// auditHash computes a record's chain hash from its predecessor's.
func auditHash(prev [32]byte, seq uint64, subj, op, obj string, allow bool, reason string) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	h.Write(seqb[:])
	for _, s := range [...]string{subj, op, obj, reason} {
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(len(s)))
		h.Write(lb[:])
		h.Write([]byte(s))
	}
	if allow {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// AuditLog is the kernel's tamper-evident decision record.
type AuditLog struct {
	mu       sync.Mutex
	recs     []AuditRecord
	head     [32]byte // hash of the newest record (zero when empty)
	base     [32]byte // hash the oldest retained record chains from
	baseSeq  uint64   // seq of the oldest retained record
	nextSeq  uint64
	cap      int
	disabled bool
	// sink, when set, receives every appended record in append order,
	// called under the log's mutex. The sink must be leaf-ward: it may take
	// its own (leaf) mutex — the ledger's Append does — but must never call
	// back into the kernel or this log.
	sink func(AuditRecord)
}

// defaultAuditCap bounds retained records; the chain head remains valid
// over the full history regardless.
const defaultAuditCap = 4096

func newAuditLog() *AuditLog { return &AuditLog{cap: defaultAuditCap} }

// record appends one decision.
func (a *AuditLog) record(subj, op, obj string, allow bool, reason string) {
	a.mu.Lock()
	if a.disabled {
		a.mu.Unlock()
		return
	}
	seq := a.nextSeq
	a.nextSeq++
	r := AuditRecord{Seq: seq, Subj: subj, Op: op, Obj: obj, Allow: allow, Reason: reason, Prev: a.head}
	r.Hash = auditHash(r.Prev, seq, subj, op, obj, allow, reason)
	a.head = r.Hash
	if len(a.recs) >= a.cap && a.cap > 1 {
		// Evict the older half; the base advances to the hash the first
		// retained record chains from.
		a.evictLocked(len(a.recs) / 2)
	}
	a.recs = append(a.recs, r)
	if a.sink != nil {
		a.sink(r)
	}
	a.mu.Unlock()
}

// evictLocked drops the oldest `drop` retained records, advancing the
// chain base to the hash the first surviving record chains from. Caller
// holds the mutex and guarantees 0 < drop ≤ len(recs)-1.
func (a *AuditLog) evictLocked(drop int) {
	a.base = a.recs[drop-1].Hash
	a.baseSeq = a.recs[drop].Seq
	a.recs = append(a.recs[:0], a.recs[drop:]...)
}

// SetCap adjusts the retention bound (minimum 2) and immediately evicts
// down to it, so a quiet log cannot retain a stale, larger window until
// the next write. The chain stays valid across the change: the base
// advances exactly as on a write-driven eviction.
func (a *AuditLog) SetCap(n int) {
	if n < 2 {
		n = 2
	}
	a.mu.Lock()
	a.cap = n
	if drop := len(a.recs) - n; drop > 0 {
		a.evictLocked(drop)
	}
	a.mu.Unlock()
}

// SetSink installs a hook that observes every appended record — the
// kernel uses it to forward decisions into the durable ledger (see
// Kernel.AttachLedger). A nil fn detaches. See the sink field's contract.
func (a *AuditLog) SetSink(fn func(AuditRecord)) {
	a.mu.Lock()
	a.sink = fn
	a.mu.Unlock()
}

// Disable stops recording (for measurement runs that hammer the decision
// path); already-recorded history remains verifiable.
func (a *AuditLog) Disable() {
	a.mu.Lock()
	a.disabled = true
	a.mu.Unlock()
}

// Enable resumes recording.
func (a *AuditLog) Enable() {
	a.mu.Lock()
	a.disabled = false
	a.mu.Unlock()
}

// Len reports the number of retained records.
func (a *AuditLog) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.recs)
}

// Total reports the number of decisions ever recorded.
func (a *AuditLog) Total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextSeq
}

// Head returns the chain head hash.
func (a *AuditLog) Head() [32]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.head
}

// Records returns a copy of the retained records plus the base hash the
// first of them chains from — everything needed for offline verification.
func (a *AuditLog) Records() ([]AuditRecord, [32]byte) {
	recs, _, base, _ := a.Snapshot()
	return recs, base
}

// Snapshot returns records, baseSeq, base, and head captured atomically,
// so the head always corresponds to the record set (a head read separately
// could already cover records appended after the copy). baseSeq is the
// sequence number the first retained record must carry; without it a
// verifier cannot tell a genuine eviction from a forged re-base that
// drops records off the front of the window.
func (a *AuditLog) Snapshot() ([]AuditRecord, uint64, [32]byte, [32]byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AuditRecord(nil), a.recs...), a.baseSeq, a.base, a.head
}

// Verify re-derives the chain over the retained records and checks it
// terminates at the published head.
func (a *AuditLog) Verify() error {
	recs, baseSeq, base, head := a.Snapshot()
	return VerifyAuditChain(recs, baseSeq, base, head)
}

// VerifyAuditChain checks a record sequence against the retained window's
// base seq and base/head hashes: the first record must carry baseSeq (so a
// window re-based to hide its oldest records is rejected), each record
// must chain from its predecessor (the first from base), carry the hash of
// its own content, and the last must equal head. An empty sequence
// verifies iff head == base or head is zero.
func VerifyAuditChain(recs []AuditRecord, baseSeq uint64, base, head [32]byte) error {
	prev := base
	seq := baseSeq
	for i := range recs {
		r := &recs[i]
		if r.Seq != seq {
			return fmt.Errorf("%w: record %d has seq %d, want %d", ErrAuditChain, i, r.Seq, seq)
		}
		if r.Prev != prev {
			return fmt.Errorf("%w: record seq %d does not chain from its predecessor", ErrAuditChain, r.Seq)
		}
		want := auditHash(prev, r.Seq, r.Subj, r.Op, r.Obj, r.Allow, r.Reason)
		if r.Hash != want {
			return fmt.Errorf("%w: record seq %d content does not match its hash", ErrAuditChain, r.Seq)
		}
		prev = r.Hash
		seq = r.Seq + 1
	}
	if len(recs) > 0 && prev != head {
		return fmt.Errorf("%w: chain ends at %x, head is %x", ErrAuditChain, prev[:4], head[:4])
	}
	if len(recs) == 0 && head != base && head != ([32]byte{}) {
		return fmt.Errorf("%w: empty log with nonzero head", ErrAuditChain)
	}
	return nil
}

// Audit exposes the kernel's decision audit log.
func (k *Kernel) Audit() *AuditLog { return k.audit }

// auditSummary renders the /proc/kernel/audit line.
func (a *AuditLog) summary() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return fmt.Sprintf("total=%d retained=%d base_seq=%d head=%s",
		a.nextSeq, len(a.recs), a.baseSeq, hex.EncodeToString(a.head[:8]))
}

package kernel

import (
	"errors"
	"sync"
	"sync/atomic"
)

// LoopbackTransport is the in-memory transport backend: nodes in one
// process connect by name, frames travel over an in-memory ring, and the
// full handshake/codec/ingress path runs exactly as it would over TCP.
// Tests and single-process experiments use it; nothing about the
// attestation plane knows the difference.
type LoopbackTransport struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
}

// NewLoopbackTransport creates an empty in-memory transport.
func NewLoopbackTransport() *LoopbackTransport {
	return &LoopbackTransport{listeners: map[string]*loopListener{}}
}

// errLoopClosed reports an operation on a closed loopback endpoint.
var errLoopClosed = errors.New("kernel: loopback endpoint closed")

// Listen binds a name. Names are a flat namespace per transport instance.
func (t *LoopbackTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, errors.New("kernel: loopback address in use: " + addr)
	}
	l := &loopListener{t: t, addr: addr, accept: make(chan Conn, 8), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening name.
func (t *LoopbackTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, errors.New("kernel: no loopback listener at " + addr)
	}
	a, b := newLoopPipe()
	select {
	case l.accept <- b:
		// Re-check after winning the send race: if the listener closed
		// concurrently, the buffered conn may never be accepted. Closing
		// our end unblocks both halves whether or not Close's drain
		// already reaped it (loopConn ends share one pipe state).
		select {
		case <-l.done:
			a.Close()
			return nil, errLoopClosed
		default:
			return a, nil
		}
	case <-l.done:
		return nil, errLoopClosed
	}
}

type loopListener struct {
	t      *LoopbackTransport
	addr   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

func (l *loopListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errLoopClosed
	}
}

func (l *loopListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		if l.t.listeners[l.addr] == l {
			delete(l.t.listeners, l.addr)
		}
		l.t.mu.Unlock()
		// Reap connections that were enqueued but never accepted, so a
		// Dial that raced the close errors out of its handshake instead
		// of blocking forever. Dials landing after this drain observe the
		// closed done channel and close their own end (see Dial).
		for {
			select {
			case c := <-l.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *loopListener) Addr() string { return l.addr }

// loopKeepFrames bounds the queue backing array retained after a
// direction fully drains, so an idle connection pins a few slots of slice
// header, not a deep ring.
const loopKeepFrames = 64

// loopState is the shared state of one loopback pipe: two frame queues
// (one per direction), their condvars (blocking Recv is handshake-only),
// and the closed flag. mu is a leaf lock — scheduler wakeups run strictly
// after it is released, so it can never order against a shard lock.
type loopState struct {
	mu     sync.Mutex
	cond   [2]*sync.Cond
	q      [2][][]byte
	head   [2]int
	closed bool
}

// popLocked removes the next frame of direction i, resetting (and, above
// the retention bound, releasing) the backing array on full drain.
func (st *loopState) popLocked(i int) ([]byte, bool) {
	if st.head[i] == len(st.q[i]) {
		return nil, false
	}
	f := st.q[i][st.head[i]]
	st.q[i][st.head[i]] = nil
	st.head[i]++
	if st.head[i] == len(st.q[i]) {
		if cap(st.q[i]) > loopKeepFrames {
			st.q[i] = nil
		} else {
			st.q[i] = st.q[i][:0]
		}
		st.head[i] = 0
	}
	return f, true
}

// loopConn is one end of an in-memory duplex pipe. Closing either end
// unblocks both. It implements frameSource natively: Send wakes the peer
// end's scheduler registration, so an idle loopback connection costs no
// goroutine at all — and, since the queues grow on demand and shrink when
// drained, almost no memory.
type loopConn struct {
	st   *loopState
	w, r int // this end writes st.q[w], reads st.q[r]
	peer *loopConn
	note atomic.Pointer[schedConn] // scheduler handle, nil until start
}

func newLoopPipe() (Conn, Conn) {
	st := &loopState{}
	st.cond[0] = sync.NewCond(&st.mu)
	st.cond[1] = sync.NewCond(&st.mu)
	a := &loopConn{st: st, w: 0, r: 1}
	b := &loopConn{st: st, w: 1, r: 0}
	a.peer, b.peer = b, a
	return a, b
}

// wake queues this end's scheduler registration, if any. Callers must not
// hold st.mu: notify re-enters the scheduler shard lock.
func (c *loopConn) wake() {
	if sc := c.note.Load(); sc != nil {
		sc.notify()
	}
}

// Send never blocks: the queue grows on demand, and the transport's
// credit window (each side advertises at most maxRecvWindow) bounds how
// deep a protocol-abiding peer can make it.
func (c *loopConn) Send(frame []byte) error {
	if len(frame) > maxNetFrame {
		return errors.New("kernel: frame exceeds maximum size")
	}
	st := c.st
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return errLoopClosed
	}
	st.q[c.w] = append(st.q[c.w], frame)
	st.cond[c.w].Signal()
	st.mu.Unlock()
	c.peer.wake()
	return nil
}

// Recv blocks for one frame — handshake-only once the connection is
// registered with a scheduler (tryRecv is the runtime's path). Frames
// queued before a close still drain, so an orderly shutdown delivers
// responses already in flight.
func (c *loopConn) Recv() ([]byte, error) {
	st := c.st
	st.mu.Lock()
	for st.head[c.r] == len(st.q[c.r]) && !st.closed {
		st.cond[c.r].Wait()
	}
	f, ok := st.popLocked(c.r)
	st.mu.Unlock()
	if !ok {
		return nil, errLoopClosed
	}
	return f, nil
}

func (c *loopConn) Close() error {
	st := c.st
	st.mu.Lock()
	already := st.closed
	st.closed = true
	if !already {
		st.cond[0].Broadcast()
		st.cond[1].Broadcast()
	}
	st.mu.Unlock()
	// Wake both scheduler registrations so parked connections observe the
	// closure instead of sleeping on a dead pipe.
	c.wake()
	c.peer.wake()
	return nil
}

// frameSource implementation: the scheduler polls the inbound queue
// directly. The register-time notify kick picks up frames that landed
// between the handshake and registration.

func (c *loopConn) start(sc *schedConn) error {
	c.note.Store(sc)
	return nil
}

func (c *loopConn) tryRecv(*netArena) ([]byte, error) {
	st := c.st
	st.mu.Lock()
	f, ok := st.popLocked(c.r)
	closed := st.closed
	st.mu.Unlock()
	if ok {
		return f, nil
	}
	if closed {
		return nil, errLoopClosed
	}
	return nil, nil
}

func (c *loopConn) drained() {}

func (c *loopConn) stop() {}

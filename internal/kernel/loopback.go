package kernel

import (
	"errors"
	"sync"
	"sync/atomic"
)

// LoopbackTransport is the in-memory transport backend: nodes in one
// process connect by name, frames travel over buffered channels, and the
// full handshake/codec/ingress path runs exactly as it would over TCP.
// Tests and single-process experiments use it; nothing about the
// attestation plane knows the difference.
type LoopbackTransport struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
}

// NewLoopbackTransport creates an empty in-memory transport.
func NewLoopbackTransport() *LoopbackTransport {
	return &LoopbackTransport{listeners: map[string]*loopListener{}}
}

// errLoopClosed reports an operation on a closed loopback endpoint.
var errLoopClosed = errors.New("kernel: loopback endpoint closed")

// Listen binds a name. Names are a flat namespace per transport instance.
func (t *LoopbackTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, errors.New("kernel: loopback address in use: " + addr)
	}
	l := &loopListener{t: t, addr: addr, accept: make(chan Conn, 8), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening name.
func (t *LoopbackTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, errors.New("kernel: no loopback listener at " + addr)
	}
	a, b := newLoopPipe()
	select {
	case l.accept <- b:
		// Re-check after winning the send race: if the listener closed
		// concurrently, the buffered conn may never be accepted. Closing
		// our end unblocks both halves whether or not Close's drain
		// already reaped it (loopConn ends share one done channel).
		select {
		case <-l.done:
			a.Close()
			return nil, errLoopClosed
		default:
			return a, nil
		}
	case <-l.done:
		return nil, errLoopClosed
	}
}

type loopListener struct {
	t      *LoopbackTransport
	addr   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

func (l *loopListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errLoopClosed
	}
}

func (l *loopListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		if l.t.listeners[l.addr] == l {
			delete(l.t.listeners, l.addr)
		}
		l.t.mu.Unlock()
		// Reap connections that were enqueued but never accepted, so a
		// Dial that raced the close errors out of its handshake instead
		// of blocking forever. Dials landing after this drain observe the
		// closed done channel and close their own end (see Dial).
		for {
			select {
			case c := <-l.accept:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *loopListener) Addr() string { return l.addr }

// loopPipeCap is the per-direction buffer of a loopback pipe. It is
// deliberately above maxRecvWindow: a sender staying within its advertised
// credit window (plus interleaved credit grants) always finds channel
// space, so scheduler workers never block on an in-window loopback Send.
const loopPipeCap = 256

// loopConn is one end of an in-memory duplex pipe. Closing either end
// unblocks both. It implements frameSource natively: Send wakes the peer
// end's scheduler registration, so an idle loopback connection costs no
// goroutine at all.
type loopConn struct {
	out  chan<- []byte
	in   <-chan []byte
	done chan struct{}
	once *sync.Once
	peer *loopConn
	note atomic.Pointer[func()] // scheduler readiness callback, nil until start
}

func newLoopPipe() (Conn, Conn) {
	ab := make(chan []byte, loopPipeCap)
	ba := make(chan []byte, loopPipeCap)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &loopConn{out: ab, in: ba, done: done, once: once}
	b := &loopConn{out: ba, in: ab, done: done, once: once}
	a.peer, b.peer = b, a
	return a, b
}

// wake invokes this end's readiness callback, if registered.
func (c *loopConn) wake() {
	if fn := c.note.Load(); fn != nil {
		(*fn)()
	}
}

func (c *loopConn) Send(frame []byte) error {
	if len(frame) > maxNetFrame {
		return errors.New("kernel: frame exceeds maximum size")
	}
	select {
	case c.out <- frame:
		c.peer.wake()
		return nil
	case <-c.done:
		return errLoopClosed
	}
}

func (c *loopConn) Recv() ([]byte, error) {
	select {
	case f := <-c.in:
		return f, nil
	case <-c.done:
		// Drain frames that raced the close so an orderly shutdown still
		// delivers responses already in flight.
		select {
		case f := <-c.in:
			return f, nil
		default:
		}
		return nil, errLoopClosed
	}
}

func (c *loopConn) Close() error {
	c.once.Do(func() { close(c.done) })
	// Wake both scheduler registrations so parked connections observe the
	// closure instead of sleeping on a dead pipe.
	c.wake()
	c.peer.wake()
	return nil
}

// frameSource implementation: the scheduler polls the inbound channel
// directly. Blocking Recv remains in use during the handshake, before the
// connection is registered; the register-time notify kick picks up frames
// that landed in between.

func (c *loopConn) start(notify func()) error {
	c.note.Store(&notify)
	return nil
}

func (c *loopConn) tryRecv(*netArena) ([]byte, error) {
	select {
	case f := <-c.in:
		return f, nil
	default:
	}
	select {
	case <-c.done:
		// Drain frames that raced the close so an orderly shutdown still
		// delivers responses already in flight.
		select {
		case f := <-c.in:
			return f, nil
		default:
		}
		return nil, errLoopClosed
	default:
		return nil, nil
	}
}

func (c *loopConn) drained() {}

func (c *loopConn) stop() {}

package kernel_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
)

// TestLoopbackTransportStress is the transport-layer race stress, the
// cross-node sibling of TestKernelRegistryStress: goroutines mix session
// creation, Connect, remote calls, label transfers, and session Exit —
// racing each other and racing connection teardown — over one loopback
// connection pair plus churning extra dials. Run with -race.
//
// Errors from the races themselves (ESRCH on a session that lost to its
// own Exit, transport-closed on a dialed-then-closed peer, EBADF on a
// handle drained by Exit) are expected; what must hold afterwards is the
// teardown invariant: once the nodes close, every proxy the connections
// created has exited and neither kernel leaks processes.
func TestLoopbackTransportStress(t *testing.T) {
	front, store := bootNode(t), bootNode(t)
	baseline := runtime.NumGoroutine()
	lt := kernel.NewLoopbackTransport()
	nStore := kernel.NewNode(store)
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := kernel.NewNode(front)

	srv, err := store.NewSession([]byte("stress-srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := nStore.Export("echo", port); err != nil {
		t.Fatal(err)
	}

	shared, err := nFront.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s, err := front.NewSession([]byte(fmt.Sprintf("w%d-%d", id, i)))
				if err != nil {
					continue
				}
				// Race the session's own Exit against its remote activity.
				var inner sync.WaitGroup
				if i%3 == 0 {
					inner.Add(1)
					go func() {
						defer inner.Done()
						s.Exit()
					}()
				}
				c, err := s.Connect(shared, "echo")
				if err == nil {
					if _, err := s.CallRemote(c, &kernel.Msg{Op: "read", Obj: "o"}); err != nil &&
						!errors.Is(err, kernel.ErrBadHandle) && !errors.Is(err, kernel.ErrNoSuchPort) &&
						!errors.Is(err, kernel.ErrNoSuchProcess) && !errors.Is(err, kernel.ErrTransportClosed) {
						t.Errorf("remote call: %v", err)
					}
					// Batched submission racing the same Exit/teardown mix.
					subs := []kernel.Sub{
						{Cap: c, Op: "read", Obj: "o", Tag: 1},
						{Cap: c, Op: "read", Obj: "o", Tag: 2},
						{Cap: c, Op: "read", Obj: "o", Tag: 3},
					}
					if comps, err := s.SubmitRemote(nil, c, subs, nil); err == nil {
						for j := range comps {
							if e := comps[j].Err; e != nil &&
								!errors.Is(e, kernel.ErrNoSuchPort) && !errors.Is(e, kernel.ErrNoSuchProcess) &&
								!errors.Is(e, kernel.ErrTransportClosed) && !errors.Is(e, kernel.ErrDenied) {
								t.Errorf("batched remote op: %v", e)
							}
						}
					} else if !errors.Is(err, kernel.ErrBadHandle) && !errors.Is(err, kernel.ErrAgain) &&
						!errors.Is(err, kernel.ErrTransportClosed) {
						t.Errorf("remote submit: %v", err)
					}
				}
				if lbl, err := s.Say("stress"); err == nil {
					if _, err := s.TransferLabelRemote(shared, lbl.Handle); err != nil &&
						!errors.Is(err, kernel.ErrNoSuchLabel) && !errors.Is(err, kernel.ErrTransportClosed) {
						t.Errorf("label transfer: %v", err)
					}
				}
				inner.Wait()
				s.Exit()
			}
		}(w)
	}

	// Dial churn: extra connections come and go while the callers run —
	// thousands of dial/call/close cycles, each racing the peer's Close
	// against its own in-flight pipelined traffic. This is the event-driven
	// runtime's registration/teardown gauntlet: every cycle exercises
	// handshake, scheduler register, demux delivery, and unregister.
	const churners = 2
	const churnCycles = 500 // per churner
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := front.NewSession([]byte(fmt.Sprintf("churn-%d", g)))
			if err != nil {
				t.Errorf("churn session: %v", err)
				return
			}
			defer s.Exit()
			for i := 0; i < churnCycles; i++ {
				p, err := nFront.Dial(lt, "store")
				if err != nil {
					t.Errorf("dial churn: %v", err)
					return
				}
				var race sync.WaitGroup
				race.Add(1)
				go func() {
					defer race.Done()
					p.Close()
				}()
				if c, err := s.Connect(p, "echo"); err == nil {
					s.CallRemote(c, &kernel.Msg{Op: "read", Obj: "o"})
					if i%16 == 0 {
						s.SubmitRemote(nil, c, []kernel.Sub{{Cap: c, Op: "read", Obj: "o"}}, nil)
					}
				}
				race.Wait()
				// No pending-call entry outlives its connection: Close
				// drained the table even with calls racing it.
				if n := p.Pending(); n != 0 {
					t.Errorf("churned peer holds %d pending calls after Close", n)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := shared.Pending(); n != 0 {
		t.Errorf("shared peer holds %d pending calls with no caller running", n)
	}
	nFront.Close()
	nStore.Close()
	if n := shared.Pending(); n != 0 {
		t.Errorf("shared peer holds %d pending calls after node close", n)
	}

	// Teardown invariant: the serving kernel's proxies are gone — only the
	// server session's process remains.
	if got := len(store.Processes()); got != 1 {
		t.Fatalf("store kernel has %d live processes after close, want 1", got)
	}
	// The front kernel's sessions all exited.
	if got := len(front.Processes()); got != 0 {
		t.Fatalf("front kernel has %d live processes after close, want 0", got)
	}

	// Goroutine-leak gate: after a thousand connection lifetimes and two
	// node closes, the process is back to its pre-transport footprint —
	// connections are scheduler state, not goroutine stacks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+4 {
		t.Fatalf("%d goroutines after close, baseline %d: transport leaks goroutines", n, baseline)
	}
}

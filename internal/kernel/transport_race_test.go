package kernel_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/kernel"
)

// TestLoopbackTransportStress is the transport-layer race stress, the
// cross-node sibling of TestKernelRegistryStress: goroutines mix session
// creation, Connect, remote calls, label transfers, and session Exit —
// racing each other and racing connection teardown — over one loopback
// connection pair plus churning extra dials. Run with -race.
//
// Errors from the races themselves (ESRCH on a session that lost to its
// own Exit, transport-closed on a dialed-then-closed peer, EBADF on a
// handle drained by Exit) are expected; what must hold afterwards is the
// teardown invariant: once the nodes close, every proxy the connections
// created has exited and neither kernel leaks processes.
func TestLoopbackTransportStress(t *testing.T) {
	front, store := bootNode(t), bootNode(t)
	lt := kernel.NewLoopbackTransport()
	nStore := kernel.NewNode(store)
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := kernel.NewNode(front)

	srv, err := store.NewSession([]byte("stress-srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := nStore.Export("echo", port); err != nil {
		t.Fatal(err)
	}

	shared, err := nFront.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s, err := front.NewSession([]byte(fmt.Sprintf("w%d-%d", id, i)))
				if err != nil {
					continue
				}
				// Race the session's own Exit against its remote activity.
				var inner sync.WaitGroup
				if i%3 == 0 {
					inner.Add(1)
					go func() {
						defer inner.Done()
						s.Exit()
					}()
				}
				c, err := s.Connect(shared, "echo")
				if err == nil {
					if _, err := s.CallRemote(c, &kernel.Msg{Op: "read", Obj: "o"}); err != nil &&
						!errors.Is(err, kernel.ErrBadHandle) && !errors.Is(err, kernel.ErrNoSuchPort) &&
						!errors.Is(err, kernel.ErrNoSuchProcess) && !errors.Is(err, kernel.ErrTransportClosed) {
						t.Errorf("remote call: %v", err)
					}
				}
				if lbl, err := s.Say("stress"); err == nil {
					if _, err := s.TransferLabelRemote(shared, lbl.Handle); err != nil &&
						!errors.Is(err, kernel.ErrNoSuchLabel) && !errors.Is(err, kernel.ErrTransportClosed) {
						t.Errorf("label transfer: %v", err)
					}
				}
				inner.Wait()
				s.Exit()
			}
		}(w)
	}

	// Dial churn: extra connections come and go while the callers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p, err := nFront.Dial(lt, "store")
			if err != nil {
				t.Errorf("dial churn: %v", err)
				return
			}
			s, err := front.NewSession([]byte("churn"))
			if err == nil {
				if c, err := s.Connect(p, "echo"); err == nil {
					s.CallRemote(c, &kernel.Msg{Op: "read", Obj: "o"})
				}
				s.Exit()
			}
			p.Close()
		}
	}()
	wg.Wait()

	nFront.Close()
	nStore.Close()

	// Teardown invariant: the serving kernel's proxies are gone — only the
	// server session's process remains.
	if got := len(store.Processes()); got != 1 {
		t.Fatalf("store kernel has %d live processes after close, want 1", got)
	}
	// The front kernel's sessions all exited.
	if got := len(front.Processes()); got != 0 {
		t.Fatalf("front kernel has %d live processes after close, want 0", got)
	}
}

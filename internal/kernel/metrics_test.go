package kernel

import (
	"strings"
	"testing"

	"repro/internal/ledger"
	"repro/internal/nal"
)

// TestMetricsPlane: the kernel-wide snapshot reflects decision-path
// activity, the attached ledger, and the text exposition at
// /proc/kernel/metrics.
func TestMetricsPlane(t *testing.T) {
	k, p := auditWorld(t)
	l, err := ledger.New(ledger.NewMemBackend(), ledger.Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	k.AttachLedger(l)
	if k.Ledger() != l {
		t.Fatal("Ledger() does not return the attached ledger")
	}
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}

	s := k.Metrics()
	if s.GuardUpcalls != 10 {
		t.Fatalf("guard upcalls %d, want 10 (uncacheable guard)", s.GuardUpcalls)
	}
	if s.GuardUpcallNs.Count != 10 {
		t.Fatalf("guard latency histogram has %d samples, want 10", s.GuardUpcallNs.Count)
	}
	var bucketSum uint64
	for _, n := range s.GuardUpcallNs.Buckets {
		bucketSum += n
	}
	if bucketSum != s.GuardUpcallNs.Count {
		t.Fatalf("histogram buckets sum to %d, count is %d", bucketSum, s.GuardUpcallNs.Count)
	}
	if s.AuditRecords != 10 {
		t.Fatalf("audit records %d, want 10", s.AuditRecords)
	}
	if s.LedgerRecords != 10 {
		t.Fatalf("ledger records %d, want 10 (sink not forwarding?)", s.LedgerRecords)
	}
	if s.LedgerBatches != 2 {
		t.Fatalf("ledger batches %d, want 2 (batch size 4)", s.LedgerBatches)
	}
	if s.DCacheLookups == 0 {
		t.Fatal("dcache lookups not folded into the snapshot")
	}
	if s.LedgerForwardXErrs != 0 {
		t.Fatalf("spurious ledger forward errors: %d", s.LedgerForwardXErrs)
	}

	v, _, ok := k.Introsp.Read("/proc/kernel/metrics")
	if !ok {
		t.Fatal("/proc/kernel/metrics not published")
	}
	for _, want := range []string{
		"guard_upcalls 10", "audit_records 10", "ledger_records 10",
		"ledger_batches 2", "guard_upcall_ns_count 10", "dcache_lookups ",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, v)
		}
	}

	// Detach: decisions stop forwarding, snapshot drops ledger occupancy.
	k.DetachLedger()
	if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := k.Metrics(); got.LedgerRecords != 0 || got.AuditRecords != 11 {
		t.Fatalf("after detach: ledger %d audit %d, want 0/11", got.LedgerRecords, got.AuditRecords)
	}
}

// TestLedgerBindsAuditChain: the ledger's records carry the kernel audit
// chain hash, every decision of a run is provable after Flush, and the
// last record's chain hash equals the audit log's live head.
func TestLedgerBindsAuditChain(t *testing.T) {
	k, p := auditWorld(t)
	l, err := ledger.New(ledger.NewMemBackend(), ledger.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	k.AttachLedger(l)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ledger.VerifyAnchors(l.Batches(), [32]byte{}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < n; seq++ {
		r, ok := l.Record(seq)
		if !ok {
			t.Fatalf("decision %d missing from ledger", seq)
		}
		pf, err := l.Prove(seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := ledger.VerifyInclusion(&r, pf); err != nil {
			t.Fatalf("decision %d: %v", seq, err)
		}
	}
	last, _ := l.Record(n - 1)
	if last.ChainHash != k.Audit().Head() {
		t.Fatal("ledger's last chain hash is not the audit head")
	}
}

// Event-driven transport runtime: the connection scheduler.
//
// PR 7's transport was goroutine-per-connection — one serve goroutine per
// accepted conn, one receive loop per dialed peer. Fine for two nodes,
// wrong for a front-end fleet: 100k idle connections would cost 100k
// goroutine stacks. This file replaces that with a sharded scheduler: a
// bounded worker pool (TransportConfig.Workers) where each worker owns one
// shard — a run queue of ready connections plus a pooled ingress arena —
// and connections are multiplexed over the shards. An idle connection
// costs a file descriptor and a few hundred bytes of state, not a stack.
//
// The per-connection state machine (csIdle/csQueued/csRunning/
// csRunningDirty) guarantees that at most one worker processes a given
// connection at a time, so all the per-connection ingress state that PR 5/7
// confined to the serve goroutine (wire decoder, proxy table, credit
// counters) stays plain-field, lock-free state — the confinement just moved
// from "its goroutine" to "whichever worker holds it in csRunning".
// notify() is lost-wakeup-safe: a notification landing while the
// connection runs flips it to csRunningDirty, and the worker re-queues it
// instead of parking it.
//
// Polling is wakeup-free on Linux: each shard owns an epoll instance
// (netpoll_linux.go), and when a worker's run queue empties while sockets
// are registered it parks on its own shard's descriptor — a goroutine park
// through the runtime netpoller, so socket readiness resumes the worker
// directly with no poller-thread handoff and no P pinned in a blocking
// syscall. A shard with no registered sockets parks on its condvar
// instead, keeping loopback handoffs at goroutine-switch cost. Cross-
// thread notify() on an epoll-parked shard (loopback sends, shim sources,
// teardown kicks) writes the shard's eventfd. Frame delivery is pulled through the
// frameSource interface: loopback conns implement it natively, TCP conns
// on Linux are epoll-driven, and any other Conn implementation falls back
// to a shim goroutine — the one place the old per-connection goroutine
// survives, for transports the runtime cannot poll.
package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Test knobs (set before nodes are built, reset after): debugForceShim
// routes every connection through the shim source, debugNoShardPoller
// builds schedulers without epoll shards (cond-parked workers), so the
// portable fallback paths run under the full transport suite on Linux CI.
var (
	debugForceShim     bool
	debugNoShardPoller bool
)

// TransportConfig sizes a Node's event-driven transport runtime. The zero
// value selects every default; NewNode uses it.
type TransportConfig struct {
	// Workers is the ingress worker-pool size: the number of scheduler
	// shards that process frames from accepted connections. Defaults to
	// GOMAXPROCS, with a floor of 2. Handlers run on these workers, so a
	// handler that blocks (or issues a synchronous nested remote call)
	// occupies one worker for its duration.
	Workers int
	// MaxInflight bounds the pipelined request window per dialed peer: at
	// most this many requests may be outstanding before begin() fails with
	// EAGAIN. Defaults to DefaultMaxInflight (128).
	MaxInflight int
	// RecvWindow is the credit-based receive window this node advertises
	// per connection in the handshake: the peer may have at most this many
	// unacknowledged frames toward us before it must stall. Defaults to
	// DefaultRecvWindow (128); clamped to maxRecvWindow so in-window
	// loopback traffic can never block a scheduler worker.
	RecvWindow int
	// MaxConns caps accepted connections (handshaking + established).
	// Beyond it the node sheds load gracefully: accept, answer with a
	// typed EAGAIN error frame, close — never a silent drop. Defaults to
	// DefaultMaxConns.
	MaxConns int
	// ReattestCap bounds the per-connection warm re-attestation tables
	// (client-side attested fingerprints, server-side verified
	// certificates) with LRU eviction; an evicted certificate simply
	// re-crosses cold. Defaults to DefaultReattestCap.
	ReattestCap int
}

// Transport-runtime defaults (see TransportConfig).
const (
	DefaultMaxInflight = 128
	DefaultRecvWindow  = 128
	DefaultMaxConns    = 1 << 17
	DefaultReattestCap = 1024
)

// maxRecvWindow caps the advertised receive window: in-credit traffic
// (window frames plus a few interleaved credit grants) must stay small
// enough that a scheduler worker staging it through the egress combiner
// never holds an unbounded queue.
const maxRecvWindow = 192

// withDefaults resolves the zero fields.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 2 {
		// Two is the floor: a handler making a nested remote call occupies
		// a worker while it waits, and a single-worker pool would have no
		// capacity left to make progress for other connections.
		c.Workers = 2
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.RecvWindow <= 0 {
		c.RecvWindow = DefaultRecvWindow
	}
	if c.RecvWindow > maxRecvWindow {
		c.RecvWindow = maxRecvWindow
	}
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.ReattestCap <= 0 {
		c.ReattestCap = DefaultReattestCap
	}
	return c
}

// demuxWorkers sizes the response-demultiplexer pool from the ingress pool.
// Dialed peers live in their own (smaller) pool because response delivery
// must stay independent of the ingress workers: a handler running on an
// ingress worker that makes a nested remote call waits for a response, and
// if that response could only be delivered by the same exhausted pool the
// node would deadlock against itself.
func demuxWorkers(workers int) int {
	w := workers / 2
	if w < 1 {
		w = 1
	}
	return w
}

// frameSource is the pull side of one connection's ingress: the scheduler
// asks it for complete frames without blocking. start wires the source to
// its scheduling handle (whose notify is invoked whenever a frame — or a
// connection failure — may be observable through tryRecv); tryRecv returns
// (nil, nil) when nothing is available right now; drained re-arms
// readiness after an empty tryRecv (needed by one-shot epoll
// registration); stop releases any resources (poller registration, shim
// goroutine) at teardown.
type frameSource interface {
	start(sc *schedConn) error
	tryRecv(ar *netArena) ([]byte, error)
	drained()
	stop()
}

// netArena is a per-shard free list of frame buffers. Exactly one worker
// owns each shard, so the arena needs no lock: frame reads land in pooled
// buffers, are decoded in place, and are recycled after dispatch for frame
// types whose payload cannot outlive the exchange (see recyclableFrame).
// It overflows into (and refills from) the global framePool, coupling the
// ingress recycle stream to the egress combiner's buffer demand.
type netArena struct {
	bufs [][]byte
}

// arenaMaxBufs bounds the free list per shard; arenaKeepCap (shared with
// the submission arenas in batch.go) bounds each buffer so one huge frame
// cannot pin memory.
const arenaMaxBufs = 32

func (a *netArena) get(n int) []byte {
	for i := len(a.bufs) - 1; i >= 0; i-- {
		if cap(a.bufs[i]) >= n {
			b := a.bufs[i]
			a.bufs[i] = a.bufs[len(a.bufs)-1]
			a.bufs[len(a.bufs)-1] = nil
			a.bufs = a.bufs[:len(a.bufs)-1]
			return b[:n]
		}
	}
	return getFrameBuf(n)
}

func (a *netArena) put(b []byte) {
	if cap(b) == 0 || cap(b) > arenaKeepCap {
		return
	}
	if len(a.bufs) >= arenaMaxBufs {
		putFrameBuf(b)
		return
	}
	a.bufs = append(a.bufs, b[:0])
}

// Connection scheduling states.
const (
	csIdle int32 = iota // parked; a notify queues it
	csQueued
	csRunning
	csRunningDirty // notified while running; the worker re-queues it
	csDead
)

// schedQuantum bounds consecutive frames one connection processes before
// the worker re-queues it, so one busy connection cannot starve its
// shard-mates.
const schedQuantum = 32

// schedConn is one connection's scheduling handle.
type schedConn struct {
	src     frameSource
	onFrame func(frame []byte, ar *netArena) bool // false = tear down
	onFlush func() bool                           // egress flush at quantum end; false = tear down
	onPark  func()                                // trim pooled scratch before csIdle
	onClose func()                                // runs exactly once, on the owning worker
	shard   *schedShard
	m       *kernelMetrics
	state   atomic.Int32
}

// notify marks the connection ready. Safe from any goroutine; lost-wakeup
// free against the worker's own transitions.
func (sc *schedConn) notify() {
	for {
		switch sc.state.Load() {
		case csIdle:
			if sc.state.CompareAndSwap(csIdle, csQueued) {
				sc.shard.push(sc)
				return
			}
		case csRunning:
			if sc.state.CompareAndSwap(csRunning, csRunningDirty) {
				return
			}
		default: // queued, dirty, dead: nothing to do
			return
		}
	}
}

// die transitions to the terminal state and runs teardown. Only the owning
// worker calls it, so it runs at most once.
func (sc *schedConn) die() {
	sc.state.Store(csDead)
	sc.src.stop()
	sc.onClose()
}

// flush drains the connection's egress combiner, if it has one.
func (sc *schedConn) flush() bool {
	if sc.onFlush == nil {
		return true
	}
	return sc.onFlush()
}

// run processes up to schedQuantum frames, then either parks the
// connection (re-arming its readiness) or re-queues it. The egress
// combiner is flushed before every state transition out of csRunning, so
// staged responses are confined to exactly one worker's quantum and a
// racing notify can never interleave a second worker with unflushed
// egress.
func (sc *schedConn) run(s *schedShard) {
	if !sc.state.CompareAndSwap(csQueued, csRunning) {
		return // torn down while queued
	}
	for i := 0; i < schedQuantum; i++ {
		frame, err := sc.src.tryRecv(&s.arena)
		if err != nil {
			// Push out whatever was staged (an orderly shutdown may still
			// deliver responses in flight); the connection is done either way.
			sc.flush()
			sc.die()
			return
		}
		if frame == nil {
			// Source empty: flush, trim, park, then re-arm. Flushing before
			// the idle transition keeps the combiner worker-confined;
			// re-arming after it means a readiness event racing the park
			// finds csIdle and queues the connection instead of being lost.
			if !sc.flush() {
				sc.die()
				return
			}
			if sc.onPark != nil {
				sc.onPark()
			}
			if sc.state.CompareAndSwap(csRunning, csIdle) {
				sc.src.drained()
				return
			}
			break // dirty: more arrived while running
		}
		if !sc.onFrame(frame, &s.arena) {
			// Flush so the final (error/poison) response reaches the peer
			// before the connection closes under it.
			sc.flush()
			sc.die()
			return
		}
	}
	// Quantum exhausted or dirtied: flush and go to the back of the queue.
	if !sc.flush() {
		sc.die()
		return
	}
	sc.state.Store(csQueued)
	s.push(sc)
}

// schedShard is one worker's run queue plus its ingress arena and, on
// Linux, its epoll poller. When the queue empties the owning worker blocks
// in EpollWait if the shard has registered sockets — socket readiness
// resumes it with no intermediate thread — and on the condvar otherwise;
// parked tracks the EpollWait state so cross-thread pushes know to write
// the eventfd rather than signal the cond.
type schedShard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*schedConn
	head   int
	closed bool
	// parked is true while the worker is parked on the shard's poller with
	// an empty queue (cond-parked workers never set it). push clears it and
	// kicks the eventfd — exactly one kicker per park, so spurious eventfd
	// traffic stays bounded.
	parked bool

	// ep is the shard's poller; nil when the platform has none (or
	// debugNoShardPoller), in which case the worker parks on cond. Its
	// registration table is guarded by mu; its event buffers are confined
	// to the owning worker.
	ep *shardPoller

	idx uint64 // metrics stripe key for shard-level counters
	m   *kernelMetrics

	// arena is confined to the shard's worker goroutine.
	arena netArena
}

func (s *schedShard) push(sc *schedConn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.q = append(s.q, sc)
	depth := len(s.q) - s.head
	wake := s.parked
	s.parked = false
	s.mu.Unlock()
	sc.m.netQueued.Add(1)
	sc.m.netQueueLen.observeCount(uint64(depth))
	if wake {
		s.ep.kick()
	} else {
		s.cond.Signal()
	}
}

// pop blocks for the next ready connection; nil means the shard closed.
// While the shard has registered sockets, the worker parks in EpollWait
// itself — readiness events queue connections directly on this shard with
// no handoff — and a nonblocking poll runs before each dequeue, so one
// busy connection's re-queues cannot starve a shard-mate whose one-shot
// readiness event is already pending. With no sockets registered (a
// loopback-only shard, or no poller at all) the worker parks on the
// condvar instead: a cond wake is a goroutine handoff the Go scheduler can
// service on the same thread, where waking an EpollWait-parked worker
// costs an eventfd write plus an OS thread wakeup — a ~40x round-trip
// penalty for loopback traffic that never involves a descriptor.
func (s *schedShard) pop() *schedConn {
	for {
		s.mu.Lock()
		for s.head == len(s.q) && !s.closed && (s.ep == nil || s.ep.nfds == 0) {
			s.cond.Wait()
		}
		if s.head < len(s.q) {
			sc := s.q[s.head]
			s.q[s.head] = nil
			s.head++
			if s.head == len(s.q) {
				s.q = s.q[:0]
				s.head = 0
			}
			poll := s.ep != nil && s.ep.nfds > 0
			s.mu.Unlock()
			if poll {
				s.pollEvents(false)
			}
			return sc
		}
		if s.closed {
			s.mu.Unlock()
			return nil
		}
		// Queue empty on a polling shard: park the worker in EpollWait.
		s.parked = true
		s.mu.Unlock()
		s.pollEvents(true)
	}
}

// connSched is a sharded worker pool: one worker goroutine per shard,
// connections assigned round-robin at registration. The pool size is fixed
// at construction — the runtime's goroutine footprint is O(workers),
// independent of the connection count.
type connSched struct {
	m      *kernelMetrics
	shards []*schedShard
	// polling reports that every shard owns an epoll poller (all-or-
	// nothing, so a connection can be registered on any shard).
	polling bool
	next    atomic.Uint64
	wg      sync.WaitGroup
}

func newConnSched(workers int, m *kernelMetrics) *connSched {
	cs := &connSched{m: m, shards: make([]*schedShard, workers)}
	pollers := make([]*shardPoller, workers)
	if !debugNoShardPoller {
		ok := true
		for i := range pollers {
			p, err := newShardPoller()
			if err != nil || p == nil {
				ok = false
				break
			}
			pollers[i] = p
		}
		if ok {
			cs.polling = true
		} else {
			for _, p := range pollers {
				if p != nil {
					p.close()
				}
			}
			pollers = make([]*shardPoller, workers)
		}
	}
	for i := range cs.shards {
		s := &schedShard{ep: pollers[i], idx: uint64(i), m: m}
		s.cond = sync.NewCond(&s.mu)
		cs.shards[i] = s
		cs.wg.Add(1)
		go cs.worker(s)
	}
	return cs
}

func (cs *connSched) worker(s *schedShard) {
	defer cs.wg.Done()
	for {
		sc := s.pop()
		if sc == nil {
			return
		}
		cs.m.netQueued.Add(-1)
		sc.run(s)
	}
}

// register adds a connection to the scheduler and kicks it once — frames
// that arrived before the source was wired are picked up by that initial
// pass. onFlush (may be nil) drains the connection's egress combiner
// whenever the worker leaves csRunning; onPark (may be nil) releases
// pooled scratch as the connection parks to csIdle.
func (cs *connSched) register(src frameSource, onFrame func([]byte, *netArena) bool, onFlush func() bool, onPark, onClose func()) (*schedConn, error) {
	shard := cs.shards[cs.next.Add(1)%uint64(len(cs.shards))]
	sc := &schedConn{src: src, onFrame: onFrame, onFlush: onFlush, onPark: onPark, onClose: onClose, shard: shard, m: cs.m}
	if err := src.start(sc); err != nil {
		return nil, err
	}
	sc.notify()
	return sc, nil
}

// close stops the workers and releases the shard pollers. The caller must
// have torn down every registered connection first (Node.Close waits for
// all teardowns before calling it).
func (cs *connSched) close() {
	for _, s := range cs.shards {
		s.mu.Lock()
		s.closed = true
		wake := s.parked
		s.parked = false
		s.mu.Unlock()
		s.cond.Broadcast()
		if wake {
			s.ep.kick()
		}
	}
	cs.wg.Wait()
	for _, s := range cs.shards {
		if s.ep != nil {
			s.ep.close()
		}
	}
}

// shimSource adapts any Conn implementation the runtime cannot poll (a
// third-party transport, TCP on platforms without the epoll poller): one
// parked goroutine pulls frames with blocking Recv into a 1-deep inbox.
// This preserves the public Transport/Conn contract at the cost of the
// per-connection goroutine the native sources avoid.
type shimSource struct {
	c     Conn
	inbox chan []byte
	done  chan struct{}
	once  sync.Once

	failed atomic.Bool
	err    error // written before failed.Store, read after failed.Load
}

func newShimSource(c Conn) *shimSource {
	return &shimSource{c: c, inbox: make(chan []byte, 1), done: make(chan struct{})}
}

func (s *shimSource) start(sc *schedConn) error {
	go func() {
		for {
			f, err := s.c.Recv()
			if err != nil {
				s.err = err
				s.failed.Store(true)
				sc.notify()
				return
			}
			select {
			case s.inbox <- f:
			case <-s.done:
				return
			}
			sc.notify()
		}
	}()
	return nil
}

func (s *shimSource) tryRecv(*netArena) ([]byte, error) {
	select {
	case f := <-s.inbox:
		return f, nil
	default:
	}
	if s.failed.Load() {
		// Drain a frame that raced the failure flag before reporting it.
		select {
		case f := <-s.inbox:
			return f, nil
		default:
		}
		return nil, s.err
	}
	return nil, nil
}

func (s *shimSource) drained() {}

func (s *shimSource) stop() { s.once.Do(func() { close(s.done) }) }

// newFrameSource selects the ingress driver for a connection: loopback
// conns are native sources, TCP conns use the per-shard pollers when the
// target scheduler has them, and anything else gets the shim.
func (n *Node) newFrameSource(c Conn, cs *connSched) frameSource {
	if debugForceShim {
		return newShimSource(c)
	}
	if fs, ok := c.(frameSource); ok {
		return fs
	}
	if tc, ok := c.(*tcpConn); ok && cs.polling {
		if src, err := newTCPSource(tc); err == nil {
			return src
		}
	}
	return newShimSource(c)
}

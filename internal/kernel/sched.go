// Event-driven transport runtime: the connection scheduler.
//
// PR 7's transport was goroutine-per-connection — one serve goroutine per
// accepted conn, one receive loop per dialed peer. Fine for two nodes,
// wrong for a front-end fleet: 100k idle connections would cost 100k
// goroutine stacks. This file replaces that with a sharded scheduler: a
// bounded worker pool (TransportConfig.Workers) where each worker owns one
// shard — a run queue of ready connections plus a pooled ingress arena —
// and connections are multiplexed over the shards. An idle connection
// costs a file descriptor and a few hundred bytes of state, not a stack.
//
// The per-connection state machine (csIdle/csQueued/csRunning/
// csRunningDirty) guarantees that at most one worker processes a given
// connection at a time, so all the per-connection ingress state that PR 5/7
// confined to the serve goroutine (wire decoder, proxy table, credit
// counters) stays plain-field, lock-free state — the confinement just moved
// from "its goroutine" to "whichever worker holds it in csRunning".
// notify() is lost-wakeup-safe: a notification landing while the
// connection runs flips it to csRunningDirty, and the worker re-queues it
// instead of parking it.
//
// Frame delivery is pulled through the frameSource interface: loopback
// conns implement it natively (channel poll + cross-linked wakeups), TCP
// conns on Linux are driven by the epoll poller in netpoll_linux.go, and
// any other Conn implementation falls back to a shim goroutine — the one
// place the old per-connection goroutine survives, for transports the
// runtime cannot poll.
package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// TransportConfig sizes a Node's event-driven transport runtime. The zero
// value selects every default; NewNode uses it.
type TransportConfig struct {
	// Workers is the ingress worker-pool size: the number of scheduler
	// shards that process frames from accepted connections. Defaults to
	// GOMAXPROCS, with a floor of 2. Handlers run on these workers, so a
	// handler that blocks (or issues a synchronous nested remote call)
	// occupies one worker for its duration.
	Workers int
	// MaxInflight bounds the pipelined request window per dialed peer: at
	// most this many requests may be outstanding before begin() fails with
	// EAGAIN. Defaults to DefaultMaxInflight (128).
	MaxInflight int
	// RecvWindow is the credit-based receive window this node advertises
	// per connection in the handshake: the peer may have at most this many
	// unacknowledged frames toward us before it must stall. Defaults to
	// DefaultRecvWindow (128); clamped to maxRecvWindow so in-window
	// loopback traffic can never block a scheduler worker on a full pipe.
	RecvWindow int
	// MaxConns caps accepted connections (handshaking + established).
	// Beyond it the node sheds load gracefully: accept, answer with a
	// typed EAGAIN error frame, close — never a silent drop. Defaults to
	// DefaultMaxConns.
	MaxConns int
	// ReattestCap bounds the per-connection warm re-attestation tables
	// (client-side attested fingerprints, server-side verified
	// certificates) with LRU eviction; an evicted certificate simply
	// re-crosses cold. Defaults to DefaultReattestCap.
	ReattestCap int
}

// Transport-runtime defaults (see TransportConfig).
const (
	DefaultMaxInflight = 128
	DefaultRecvWindow  = 128
	DefaultMaxConns    = 1 << 17
	DefaultReattestCap = 1024
)

// maxRecvWindow caps the advertised receive window. It is deliberately
// below loopPipeCap: in-credit traffic (window frames plus a few interleaved
// credit grants) must fit the loopback pipe buffer, so a scheduler worker
// sending within the window never blocks on a full channel.
const maxRecvWindow = 192

// withDefaults resolves the zero fields.
func (c TransportConfig) withDefaults() TransportConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 2 {
		// Two is the floor: a handler making a nested remote call occupies
		// a worker while it waits, and a single-worker pool would have no
		// capacity left to make progress for other connections.
		c.Workers = 2
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.RecvWindow <= 0 {
		c.RecvWindow = DefaultRecvWindow
	}
	if c.RecvWindow > maxRecvWindow {
		c.RecvWindow = maxRecvWindow
	}
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.ReattestCap <= 0 {
		c.ReattestCap = DefaultReattestCap
	}
	return c
}

// demuxWorkers sizes the response-demultiplexer pool from the ingress pool.
// Dialed peers live in their own (smaller) pool because response delivery
// must stay independent of the ingress workers: a handler running on an
// ingress worker that makes a nested remote call waits for a response, and
// if that response could only be delivered by the same exhausted pool the
// node would deadlock against itself.
func demuxWorkers(workers int) int {
	w := workers / 2
	if w < 1 {
		w = 1
	}
	return w
}

// frameSource is the pull side of one connection's ingress: the scheduler
// asks it for complete frames without blocking. start wires the readiness
// callback (invoked whenever a frame — or a connection failure — may be
// observable through tryRecv); tryRecv returns (nil, nil) when nothing is
// available right now; drained re-arms readiness after an empty tryRecv
// (needed by one-shot epoll registration); stop releases any resources
// (poller registration, shim goroutine) at teardown.
type frameSource interface {
	start(notify func()) error
	tryRecv(ar *netArena) ([]byte, error)
	drained()
	stop()
}

// netArena is a per-shard free list of frame buffers. Exactly one worker
// owns each shard, so the arena needs no lock: frame reads land in pooled
// buffers, are decoded in place, and are recycled after dispatch for frame
// types whose payload cannot outlive the exchange (see recyclableFrame).
type netArena struct {
	bufs [][]byte
}

// arenaMaxBufs bounds the free list per shard; arenaKeepCap (shared with
// the submission arenas in batch.go) bounds each buffer so one huge frame
// cannot pin memory.
const arenaMaxBufs = 32

func (a *netArena) get(n int) []byte {
	for i := len(a.bufs) - 1; i >= 0; i-- {
		if cap(a.bufs[i]) >= n {
			b := a.bufs[i]
			a.bufs[i] = a.bufs[len(a.bufs)-1]
			a.bufs[len(a.bufs)-1] = nil
			a.bufs = a.bufs[:len(a.bufs)-1]
			return b[:n]
		}
	}
	if n < 512 {
		return make([]byte, n, 512)
	}
	return make([]byte, n)
}

func (a *netArena) put(b []byte) {
	if cap(b) == 0 || cap(b) > arenaKeepCap || len(a.bufs) >= arenaMaxBufs {
		return
	}
	a.bufs = append(a.bufs, b[:0])
}

// Connection scheduling states.
const (
	csIdle int32 = iota // parked; a notify queues it
	csQueued
	csRunning
	csRunningDirty // notified while running; the worker re-queues it
	csDead
)

// schedQuantum bounds consecutive frames one connection processes before
// the worker re-queues it, so one busy connection cannot starve its
// shard-mates.
const schedQuantum = 32

// schedConn is one connection's scheduling handle.
type schedConn struct {
	src     frameSource
	onFrame func(frame []byte, ar *netArena) bool // false = tear down
	onClose func()                                // runs exactly once, on the owning worker
	shard   *schedShard
	m       *kernelMetrics
	state   atomic.Int32
}

// notify marks the connection ready. Safe from any goroutine; lost-wakeup
// free against the worker's own transitions.
func (sc *schedConn) notify() {
	for {
		switch sc.state.Load() {
		case csIdle:
			if sc.state.CompareAndSwap(csIdle, csQueued) {
				sc.shard.push(sc)
				return
			}
		case csRunning:
			if sc.state.CompareAndSwap(csRunning, csRunningDirty) {
				return
			}
		default: // queued, dirty, dead: nothing to do
			return
		}
	}
}

// die transitions to the terminal state and runs teardown. Only the owning
// worker calls it, so it runs at most once.
func (sc *schedConn) die() {
	sc.state.Store(csDead)
	sc.src.stop()
	sc.onClose()
}

// run processes up to schedQuantum frames, then either parks the
// connection (re-arming its readiness) or re-queues it.
func (sc *schedConn) run(s *schedShard) {
	if !sc.state.CompareAndSwap(csQueued, csRunning) {
		return // torn down while queued
	}
	for i := 0; i < schedQuantum; i++ {
		frame, err := sc.src.tryRecv(&s.arena)
		if err != nil {
			sc.die()
			return
		}
		if frame == nil {
			// Source empty: park, then re-arm. Re-arming after the idle
			// transition means a readiness event racing it finds csIdle
			// and queues the connection instead of being lost.
			if sc.state.CompareAndSwap(csRunning, csIdle) {
				sc.src.drained()
				return
			}
			break // dirty: more arrived while running
		}
		if !sc.onFrame(frame, &s.arena) {
			sc.die()
			return
		}
	}
	// Quantum exhausted or dirtied: back of the queue.
	sc.state.Store(csQueued)
	s.push(sc)
}

// schedShard is one worker's run queue plus its ingress arena.
type schedShard struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*schedConn
	head   int
	closed bool

	// arena is confined to the shard's worker goroutine.
	arena netArena
}

func (s *schedShard) push(sc *schedConn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.q = append(s.q, sc)
	depth := len(s.q) - s.head
	s.mu.Unlock()
	sc.m.netQueued.Add(1)
	sc.m.netQueueLen.observeCount(uint64(depth))
	s.cond.Signal()
}

// pop blocks for the next ready connection; nil means the shard closed.
func (s *schedShard) pop() *schedConn {
	s.mu.Lock()
	for s.head == len(s.q) && !s.closed {
		s.cond.Wait()
	}
	if s.head == len(s.q) {
		s.mu.Unlock()
		return nil
	}
	sc := s.q[s.head]
	s.q[s.head] = nil
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	s.mu.Unlock()
	return sc
}

// connSched is a sharded worker pool: one worker goroutine per shard,
// connections assigned round-robin at registration. The pool size is fixed
// at construction — the runtime's goroutine footprint is O(workers),
// independent of the connection count.
type connSched struct {
	m      *kernelMetrics
	shards []*schedShard
	next   atomic.Uint64
	wg     sync.WaitGroup
}

func newConnSched(workers int, m *kernelMetrics) *connSched {
	cs := &connSched{m: m, shards: make([]*schedShard, workers)}
	for i := range cs.shards {
		s := &schedShard{}
		s.cond = sync.NewCond(&s.mu)
		cs.shards[i] = s
		cs.wg.Add(1)
		go cs.worker(s)
	}
	return cs
}

func (cs *connSched) worker(s *schedShard) {
	defer cs.wg.Done()
	for {
		sc := s.pop()
		if sc == nil {
			return
		}
		cs.m.netQueued.Add(-1)
		sc.run(s)
	}
}

// register adds a connection to the scheduler and kicks it once — frames
// that arrived before the readiness callback was wired are picked up by
// that initial pass.
func (cs *connSched) register(src frameSource, onFrame func([]byte, *netArena) bool, onClose func()) (*schedConn, error) {
	shard := cs.shards[cs.next.Add(1)%uint64(len(cs.shards))]
	sc := &schedConn{src: src, onFrame: onFrame, onClose: onClose, shard: shard, m: cs.m}
	if err := src.start(sc.notify); err != nil {
		return nil, err
	}
	sc.notify()
	return sc, nil
}

// close stops the workers. The caller must have torn down every registered
// connection first (Node.Close waits for all teardowns before calling it).
func (cs *connSched) close() {
	for _, s := range cs.shards {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}
	cs.wg.Wait()
}

// shimSource adapts any Conn implementation the runtime cannot poll (a
// third-party transport, TCP on platforms without the epoll poller): one
// parked goroutine pulls frames with blocking Recv into a 1-deep inbox.
// This preserves the public Transport/Conn contract at the cost of the
// per-connection goroutine the native sources avoid.
type shimSource struct {
	c     Conn
	inbox chan []byte
	done  chan struct{}
	once  sync.Once

	failed atomic.Bool
	err    error // written before failed.Store, read after failed.Load
}

func newShimSource(c Conn) *shimSource {
	return &shimSource{c: c, inbox: make(chan []byte, 1), done: make(chan struct{})}
}

func (s *shimSource) start(notify func()) error {
	go func() {
		for {
			f, err := s.c.Recv()
			if err != nil {
				s.err = err
				s.failed.Store(true)
				notify()
				return
			}
			select {
			case s.inbox <- f:
			case <-s.done:
				return
			}
			notify()
		}
	}()
	return nil
}

func (s *shimSource) tryRecv(*netArena) ([]byte, error) {
	select {
	case f := <-s.inbox:
		return f, nil
	default:
	}
	if s.failed.Load() {
		// Drain a frame that raced the failure flag before reporting it.
		select {
		case f := <-s.inbox:
			return f, nil
		default:
		}
		return nil, s.err
	}
	return nil, nil
}

func (s *shimSource) drained() {}

func (s *shimSource) stop() { s.once.Do(func() { close(s.done) }) }

// newFrameSource selects the ingress driver for a connection: loopback
// conns are native sources, TCP conns use the platform poller when
// available, and anything else gets the shim.
func (n *Node) newFrameSource(c Conn) frameSource {
	if fs, ok := c.(frameSource); ok {
		return fs
	}
	if tc, ok := c.(*tcpConn); ok {
		if src, err := n.newTCPSource(tc); err == nil {
			return src
		}
	}
	return newShimSource(c)
}

package kernel

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/tpm"
)

// bootKernelRaw boots a kernel outside a testing.T context (for the shared
// fuzz world); it returns nil on platform failure.
func bootKernelRaw() *Kernel {
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		return nil
	}
	k, err := Boot(tp, disk.New(), Options{})
	if err != nil {
		return nil
	}
	return k
}

// FuzzMsgWire fuzzes the IPC wire format the dispatch pipeline materializes
// at the protection boundary, mirroring the NAL parser fuzzers: decoding
// arbitrary bytes must never panic, and decode ∘ encode must be the
// identity — a monitor that re-encodes the message it inspected must produce
// the bytes the kernel marshaled.
func FuzzMsgWire(f *testing.F) {
	seed := [][]byte{
		{},
		marshalMsg(&Msg{}),
		marshalMsg(&Msg{Op: "read", Obj: "file:/x"}),
		marshalMsg(&Msg{Op: "write", Obj: "obj", Args: [][]byte{[]byte("a"), {}, []byte("bc")}}),
		marshalMsg(&Msg{Op: "authority-query", Obj: "ipc:7", Args: [][]byte{[]byte("P says ok")}}),
		{0xff, 0xff, 0xff, 0xff, 0x00},
		{0x01, 0x00, 0x00, 0x00},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, wire []byte) {
		m, err := unmarshalMsg(wire) // must not panic, whatever the input
		if err != nil {
			return
		}
		// Accepted wire must round-trip exactly: unmarshalMsg accepts only
		// the canonical length-prefixed layout, so re-encoding the decoded
		// message reproduces the input byte-for-byte.
		again := marshalMsg(m)
		if !bytes.Equal(again, wire) {
			t.Fatalf("encode(decode(wire)) != wire\n in:  %x\n out: %x", wire, again)
		}
		m2, err := unmarshalMsg(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Op != m.Op || m2.Obj != m.Obj || len(m2.Args) != len(m.Args) {
			t.Fatalf("decode not stable: %+v vs %+v", m, m2)
		}
		for i := range m.Args {
			if !bytes.Equal(m.Args[i], m2.Args[i]) {
				t.Fatalf("arg %d not stable", i)
			}
		}
		// Batch extension: any accepted message, framed as a batch, must
		// round-trip through the batch wire format too.
		batch := MarshalBatch([]*Msg{m, m2})
		back, err := UnmarshalBatch(batch)
		if err != nil {
			t.Fatalf("batch decode of accepted messages: %v", err)
		}
		if len(back) != 2 || !bytes.Equal(MarshalBatch(back), batch) {
			t.Fatalf("batch round-trip not stable")
		}
	})
}

// FuzzBatchWire fuzzes the batch framing of the submission queue: decoding
// arbitrary bytes must never panic, and accepted input must round-trip
// byte-for-byte — the same contract FuzzMsgWire pins for single messages.
func FuzzBatchWire(f *testing.F) {
	seed := [][]byte{
		{},
		MarshalBatch(nil),
		MarshalBatch([]*Msg{{}}),
		MarshalBatch([]*Msg{{Op: "read", Obj: "file:/x"}}),
		MarshalBatch([]*Msg{
			{Op: "write", Obj: "obj", Args: [][]byte{[]byte("a"), {}, []byte("bc")}},
			{Op: "GET", Obj: "web:static", Args: [][]byte{[]byte("/index.html")}},
		}),
		{0xff, 0xff, 0xff, 0xff},
		{0x01, 0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, wire []byte) {
		msgs, err := UnmarshalBatch(wire) // must not panic, whatever the input
		if err != nil {
			return
		}
		again := MarshalBatch(msgs)
		if !bytes.Equal(again, wire) {
			t.Fatalf("encode(decode(batch)) != batch\n in:  %x\n out: %x", wire, again)
		}
	})
}

// fuzzWorld lazily boots one shared kernel (boots are RSA-keygen heavy)
// with a stable echo port; each fuzz iteration gets its own subject
// session, so iterations only share immutable targets.
var fuzzOnce sync.Once
var fuzzK *Kernel
var fuzzPortID int

func fuzzWorld(t *testing.T) (*Kernel, int) {
	t.Helper()
	fuzzOnce.Do(func() {
		k := bootKernelRaw()
		if k == nil {
			return
		}
		k.SetAuthorization(false)
		srv, err := k.NewSession([]byte("fuzz-srv"))
		if err != nil {
			return
		}
		pc, err := srv.Listen(func(Caller, *Msg) ([]byte, error) { return nil, nil })
		if err != nil {
			return
		}
		id, err := srv.PortOf(pc)
		if err != nil {
			return
		}
		fuzzK, fuzzPortID = k, id
	})
	if fuzzK == nil {
		t.Skip("fuzz world unavailable")
	}
	return fuzzK, fuzzPortID
}

// FuzzHandleTable drives a session's capability table with a byte-coded op
// stream split across two concurrent workers plus a racing Exit, then
// asserts the table invariants: dup'd handles resolve to their referent,
// closed and foreign handles always miss, and after Exit the table is empty
// and dead — no handle outlives its process.
func FuzzHandleTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, false)
	f.Add([]byte{0, 0, 0, 3, 3, 3, 1, 2, 2, 2}, true)
	f.Add([]byte{5, 4, 3, 2, 1, 0, 5, 4, 3, 2, 1, 0}, true)
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2}, false)
	f.Fuzz(func(t *testing.T, ops []byte, exitMid bool) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		k, portID := fuzzWorld(t)
		s, err := k.NewSession([]byte("subject"))
		if err != nil {
			t.Fatal(err)
		}

		run := func(stream []byte) {
			var caps []Cap
			for _, op := range stream {
				switch op % 6 {
				case 0: // open a channel
					if c, err := s.Open(portID); err == nil {
						caps = append(caps, c)
					}
				case 1: // open an object
					if c, err := s.OpenObject("obj"); err == nil {
						caps = append(caps, c)
					}
				case 2: // dup the newest
					if len(caps) > 0 {
						if c, err := s.Dup(caps[len(caps)-1]); err == nil {
							// Dup must resolve to the same referent.
							p1, e1 := s.PortOf(caps[len(caps)-1])
							p2, e2 := s.PortOf(c)
							if (e1 == nil) != (e2 == nil) || p1 != p2 {
								t.Errorf("dup diverges: %d/%v vs %d/%v", p1, e1, p2, e2)
							}
							caps = append(caps, c)
						}
					}
				case 3: // close the oldest
					if len(caps) > 0 {
						s.Close(caps[0])
						caps = caps[1:]
					}
				case 4: // double close / forged handle must miss, not corrupt
					if len(caps) > 0 {
						s.Close(caps[0])
						s.Close(caps[0])
						caps = caps[1:]
					}
					if _, err := s.PortOf(Cap(uint64(op)<<32 | 0x7fffffff)); err == nil {
						t.Error("forged handle resolved")
					}
				case 5: // call through the newest
					if len(caps) > 0 {
						s.Call(caps[len(caps)-1], &Msg{Op: "x", Obj: "y"})
					}
				}
			}
		}

		half := len(ops) / 2
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); run(ops[:half]) }()
		go func() { defer wg.Done(); run(ops[half:]) }()
		if exitMid {
			wg.Add(1)
			go func() { defer wg.Done(); s.Exit() }()
		}
		wg.Wait()
		s.Exit()

		// Exit teardown invariant: the table is empty and permanently dead.
		if n := s.Handles(); n != 0 {
			t.Fatalf("%d handles outlive their process", n)
		}
		if _, err := s.Open(portID); err == nil {
			t.Fatal("alloc after exit succeeded")
		}
		if _, err := s.OpenObject("late"); err == nil {
			t.Fatal("object alloc after exit succeeded")
		}
		// No channel grants outlive the process either.
		for pid := range k.Channels() {
			if pid == s.PID() {
				t.Fatal("dead pid retains channel grants")
			}
		}
		assertRegistryInvariants(t, k)
	})
}

package kernel

import (
	"bytes"
	"testing"
)

// FuzzMsgWire fuzzes the IPC wire format the dispatch pipeline materializes
// at the protection boundary, mirroring the NAL parser fuzzers: decoding
// arbitrary bytes must never panic, and decode ∘ encode must be the
// identity — a monitor that re-encodes the message it inspected must produce
// the bytes the kernel marshaled.
func FuzzMsgWire(f *testing.F) {
	seed := [][]byte{
		{},
		marshalMsg(&Msg{}),
		marshalMsg(&Msg{Op: "read", Obj: "file:/x"}),
		marshalMsg(&Msg{Op: "write", Obj: "obj", Args: [][]byte{[]byte("a"), {}, []byte("bc")}}),
		marshalMsg(&Msg{Op: "authority-query", Obj: "ipc:7", Args: [][]byte{[]byte("P says ok")}}),
		{0xff, 0xff, 0xff, 0xff, 0x00},
		{0x01, 0x00, 0x00, 0x00},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, wire []byte) {
		m, err := unmarshalMsg(wire) // must not panic, whatever the input
		if err != nil {
			return
		}
		// Accepted wire must round-trip exactly: unmarshalMsg accepts only
		// the canonical length-prefixed layout, so re-encoding the decoded
		// message reproduces the input byte-for-byte.
		again := marshalMsg(m)
		if !bytes.Equal(again, wire) {
			t.Fatalf("encode(decode(wire)) != wire\n in:  %x\n out: %x", wire, again)
		}
		m2, err := unmarshalMsg(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Op != m.Op || m2.Obj != m.Obj || len(m2.Args) != len(m.Args) {
			t.Fatalf("decode not stable: %+v vs %+v", m, m2)
		}
		for i := range m.Args {
			if !bytes.Equal(m.Args[i], m2.Args[i]) {
				t.Fatalf("arg %d not stable", i)
			}
		}
	})
}

package kernel

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/tpm"
)

// bootKernelRaw boots a kernel outside a testing.T context (for the shared
// fuzz world); it returns nil on platform failure.
func bootKernelRaw() *Kernel {
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		return nil
	}
	k, err := Boot(tp, disk.New(), Options{})
	if err != nil {
		return nil
	}
	return k
}

// FuzzMsgWire fuzzes the IPC wire format the dispatch pipeline materializes
// at the protection boundary, mirroring the NAL parser fuzzers: decoding
// arbitrary bytes must never panic, and decode ∘ encode must be the
// identity — a monitor that re-encodes the message it inspected must produce
// the bytes the kernel marshaled.
func FuzzMsgWire(f *testing.F) {
	seed := [][]byte{
		{},
		marshalMsg(&Msg{}),
		marshalMsg(&Msg{Op: "read", Obj: "file:/x"}),
		marshalMsg(&Msg{Op: "write", Obj: "obj", Args: [][]byte{[]byte("a"), {}, []byte("bc")}}),
		marshalMsg(&Msg{Op: "authority-query", Obj: "ipc:7", Args: [][]byte{[]byte("P says ok")}}),
		{0xff, 0xff, 0xff, 0xff, 0x00},
		{0x01, 0x00, 0x00, 0x00},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, wire []byte) {
		m, err := unmarshalMsg(wire) // must not panic, whatever the input
		if err != nil {
			return
		}
		// Accepted wire must round-trip exactly: unmarshalMsg accepts only
		// the canonical length-prefixed layout, so re-encoding the decoded
		// message reproduces the input byte-for-byte.
		again := marshalMsg(m)
		if !bytes.Equal(again, wire) {
			t.Fatalf("encode(decode(wire)) != wire\n in:  %x\n out: %x", wire, again)
		}
		m2, err := unmarshalMsg(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Op != m.Op || m2.Obj != m.Obj || len(m2.Args) != len(m.Args) {
			t.Fatalf("decode not stable: %+v vs %+v", m, m2)
		}
		for i := range m.Args {
			if !bytes.Equal(m.Args[i], m2.Args[i]) {
				t.Fatalf("arg %d not stable", i)
			}
		}
		// Batch extension: any accepted message, framed as a batch, must
		// round-trip through the batch wire format too.
		batch := MarshalBatch([]*Msg{m, m2})
		back, err := UnmarshalBatch(batch)
		if err != nil {
			t.Fatalf("batch decode of accepted messages: %v", err)
		}
		if len(back) != 2 || !bytes.Equal(MarshalBatch(back), batch) {
			t.Fatalf("batch round-trip not stable")
		}
	})
}

// FuzzBatchWire fuzzes the batch framing of the submission queue: decoding
// arbitrary bytes must never panic, and accepted input must round-trip
// byte-for-byte — the same contract FuzzMsgWire pins for single messages.
func FuzzBatchWire(f *testing.F) {
	seed := [][]byte{
		{},
		MarshalBatch(nil),
		MarshalBatch([]*Msg{{}}),
		MarshalBatch([]*Msg{{Op: "read", Obj: "file:/x"}}),
		MarshalBatch([]*Msg{
			{Op: "write", Obj: "obj", Args: [][]byte{[]byte("a"), {}, []byte("bc")}},
			{Op: "GET", Obj: "web:static", Args: [][]byte{[]byte("/index.html")}},
		}),
		{0xff, 0xff, 0xff, 0xff},
		{0x01, 0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, wire []byte) {
		msgs, err := UnmarshalBatch(wire) // must not panic, whatever the input
		if err != nil {
			return
		}
		again := MarshalBatch(msgs)
		if !bytes.Equal(again, wire) {
			t.Fatalf("encode(decode(batch)) != batch\n in:  %x\n out: %x", wire, again)
		}
		// The streaming decoder the remote-batch ingress uses must agree
		// with the canonical decoder on every accepted frame, including
		// across reuse of one scratch Msg for the whole batch.
		var sm Msg
		rest := wire[4:]
		for i, m := range msgs {
			n := binary.LittleEndian.Uint32(rest[:4])
			rest = rest[4:]
			if !unmarshalMsgInto(&sm, rest[:n]) {
				t.Fatalf("streaming decode rejected accepted message %d", i)
			}
			if sm.Op != m.Op || sm.Obj != m.Obj || len(sm.Args) != len(m.Args) {
				t.Fatalf("streaming decode diverges on message %d: %+v vs %+v", i, sm, *m)
			}
			for j := range m.Args {
				if !bytes.Equal(sm.Args[j], m.Args[j]) {
					t.Fatalf("streaming decode diverges on message %d arg %d", i, j)
				}
			}
			rest = rest[n:]
		}
	})
}

// remoteFuzz is the shared hostile-client world for FuzzRemoteSubmitFrame:
// two booted kernels, a served loopback node, and one raw connection that
// completed the attestation handshake but speaks arbitrary bytes after it.
var remoteFuzz struct {
	once  sync.Once
	mu    sync.Mutex
	lt    *LoopbackTransport
	front *Node
	c     Conn
}

// remoteFuzzConn returns the live hostile connection, redialing (and
// re-handshaking) when a previous input got the connection torn down.
func remoteFuzzConn(t *testing.T) Conn {
	remoteFuzz.once.Do(func() {
		front, store := bootKernelRaw(), bootKernelRaw()
		if front == nil || store == nil {
			return
		}
		store.SetAuthorization(false)
		srv, err := store.NewSession([]byte("fuzz-srv"))
		if err != nil {
			return
		}
		pc, err := srv.Listen(func(Caller, *Msg) ([]byte, error) { return nil, nil })
		if err != nil {
			return
		}
		port, err := srv.PortOf(pc)
		if err != nil {
			return
		}
		lt := NewLoopbackTransport()
		nStore := NewNode(store)
		l, err := lt.Listen("store")
		if err != nil {
			return
		}
		nStore.Serve(l)
		if err := nStore.Export("echo", port); err != nil {
			return
		}
		remoteFuzz.lt = lt
		remoteFuzz.front = NewNode(front)
	})
	if remoteFuzz.front == nil {
		t.Skip("remote fuzz world unavailable")
	}
	if remoteFuzz.c == nil {
		c, err := remoteFuzz.lt.Dial("store")
		if err != nil {
			t.Skipf("redial: %v", err)
		}
		// The handshake must be genuine — the server only talks to an
		// attested peer — but everything after it is raw frame I/O.
		if _, err := remoteFuzz.front.handshakeClient(c); err != nil {
			t.Fatalf("handshake: %v", err)
		}
		remoteFuzz.c = c
	}
	return remoteFuzz.c
}

// fuzzRecvResp reads the next response frame, skipping fCredit frames —
// the server's flow-control grants are transport-level traffic interleaved
// with responses, consumed by the peer demux in real deployments.
func fuzzRecvResp(c Conn) ([]byte, error) {
	for {
		resp, err := c.Recv()
		if err != nil {
			return nil, err
		}
		if len(resp) >= 1 && resp[0] == fCredit {
			continue
		}
		return resp, nil
	}
}

// FuzzRemoteSubmitFrame drives the serving side of the batched-submission
// protocol with hostile frames on an attested connection: arbitrary request
// id bytes, caller/port fields, batch payloads (including overflowing
// count prefixes), and flow-control credit frames. The server must never
// panic; it answers every parseable request with either a completion
// vector or an fErr frame that echoes the request id and carries a valid
// non-EOK errno, and tears the connection down (cleanly) only when the
// request id is undecodable or a credit frame is malformed. A well-formed
// hostile credit — however large — must neither poison the connection nor
// unblock it past the advertised window (the server clamps).
func FuzzRemoteSubmitFrame(f *testing.F) {
	valid := MarshalBatch([]*Msg{{Op: "read", Obj: "obj"}, {Op: "write", Obj: "obj", Args: [][]byte{[]byte("x")}}})
	pp := binary.AppendUvarint(binary.AppendUvarint(nil, 7), 1)
	f.Add([]byte{1}, append(append([]byte{}, pp...), valid...), []byte(nil))
	f.Add([]byte{1}, append(append([]byte{}, pp...), 0xff, 0xff, 0xff, 0xff), []byte(nil)) // count overflow
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		append(append([]byte{}, pp...), valid...), []byte(nil)) // max uvarint id
	f.Add([]byte{0x80, 0x80}, []byte{}, []byte(nil))            // torn id
	f.Add([]byte{2}, []byte{7, 1, 1, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0}, []byte(nil)) // short msg
	f.Add([]byte{1}, append(append([]byte{}, pp...), valid...), []byte{1})           // benign credit
	f.Add([]byte{1}, append(append([]byte{}, pp...), valid...),
		binary.AppendUvarint(nil, ^uint64(0))) // huge credit: clamped, not poisoned
	f.Add([]byte{1}, append(append([]byte{}, pp...), valid...), []byte{0x80})  // torn credit uvarint
	f.Add([]byte{1}, append(append([]byte{}, pp...), valid...), []byte{1, 2}) // trailing credit bytes
	f.Fuzz(func(t *testing.T, idBytes, payload, credit []byte) {
		if len(idBytes) > 10 || len(payload) > 4096 || len(credit) > 16 {
			return
		}
		remoteFuzz.mu.Lock()
		defer remoteFuzz.mu.Unlock()
		c := remoteFuzzConn(t)
		creditOK := true
		if len(credit) > 0 {
			_, n := binary.Uvarint(credit)
			creditOK = n > 0 && n == len(credit) // server rule: exact uvarint payload
			if err := c.Send(append([]byte{fCredit}, credit...)); err != nil {
				remoteFuzz.c = nil
				return
			}
		}
		frame := append([]byte{fSubmit}, idBytes...)
		frame = append(frame, payload...)
		// The server parses the request id from the full remainder, so the
		// id bytes may run into the payload; mirror that here.
		wantID, n := binary.Uvarint(frame[1:])
		idOK := n > 0
		if err := c.Send(frame); err != nil {
			remoteFuzz.c = nil // conn died earlier; next input redials
			return
		}
		resp, err := fuzzRecvResp(c)
		if err != nil {
			// The server closed the connection: legal only when the request
			// id was undecodable or the preceding credit frame malformed.
			if idOK && creditOK {
				t.Fatalf("server dropped a frame with a decodable request id % x (credit % x)", idBytes, credit)
			}
			remoteFuzz.c = nil
			return
		}
		if !creditOK {
			t.Fatalf("server answered after malformed credit frame % x", credit)
		}
		// Return the consumed response credit so the server's window never
		// runs dry across iterations (the real peer demux does the same).
		if err := c.Send([]byte{fCredit, 1}); err != nil {
			remoteFuzz.c = nil
		}
		if len(resp) < 2 {
			t.Fatalf("torn response % x", resp)
		}
		r := &netCursor{buf: resp[1:]}
		gotID, ok := r.uvarint()
		if !ok || gotID != wantID {
			t.Fatalf("response id %d (ok=%v), want %d", gotID, ok, wantID)
		}
		switch resp[0] {
		case fErr:
			en, ok1 := r.uvarint()
			_, ok2 := r.str()
			_, ok3 := r.str()
			if !ok1 || !ok2 || !ok3 || !r.done() {
				t.Fatalf("malformed fErr frame % x", resp)
			}
			if Errno(en) == EOK || Errno(en) > EAGAIN {
				t.Fatalf("errno class lost on hostile frame: %d", en)
			}
		case fSubmitOK:
			nres, ok := r.uvarint()
			if !ok {
				t.Fatalf("malformed completion vector % x", resp)
			}
			for i := uint64(0); i < nres; i++ {
				st, ok := r.byte()
				if !ok {
					t.Fatalf("truncated completion vector at %d", i)
				}
				switch st {
				case wsOK:
					if _, ok := r.bytes(); !ok {
						t.Fatalf("truncated wsOK completion at %d", i)
					}
				case wsAbiErr:
					en, ok1 := r.uvarint()
					_, ok2 := r.str()
					_, ok3 := r.str()
					if !ok1 || !ok2 || !ok3 {
						t.Fatalf("truncated wsAbiErr completion at %d", i)
					}
					if Errno(en) == EOK || Errno(en) > EAGAIN {
						t.Fatalf("per-op errno class lost: %d", en)
					}
				case wsHdlrErr:
					if _, ok := r.str(); !ok {
						t.Fatalf("truncated wsHdlrErr completion at %d", i)
					}
				default:
					t.Fatalf("unknown completion status %d", st)
				}
			}
			if !r.done() {
				t.Fatalf("trailing bytes after completion vector")
			}
		default:
			t.Fatalf("unexpected response type %d to fSubmit", resp[0])
		}
	})
}

// fuzzWorld lazily boots one shared kernel (boots are RSA-keygen heavy)
// with a stable echo port; each fuzz iteration gets its own subject
// session, so iterations only share immutable targets.
var fuzzOnce sync.Once
var fuzzK *Kernel
var fuzzPortID int

func fuzzWorld(t *testing.T) (*Kernel, int) {
	t.Helper()
	fuzzOnce.Do(func() {
		k := bootKernelRaw()
		if k == nil {
			return
		}
		k.SetAuthorization(false)
		srv, err := k.NewSession([]byte("fuzz-srv"))
		if err != nil {
			return
		}
		pc, err := srv.Listen(func(Caller, *Msg) ([]byte, error) { return nil, nil })
		if err != nil {
			return
		}
		id, err := srv.PortOf(pc)
		if err != nil {
			return
		}
		fuzzK, fuzzPortID = k, id
	})
	if fuzzK == nil {
		t.Skip("fuzz world unavailable")
	}
	return fuzzK, fuzzPortID
}

// FuzzHandleTable drives a session's capability table with a byte-coded op
// stream split across two concurrent workers plus a racing Exit, then
// asserts the table invariants: dup'd handles resolve to their referent,
// closed and foreign handles always miss, and after Exit the table is empty
// and dead — no handle outlives its process.
func FuzzHandleTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, false)
	f.Add([]byte{0, 0, 0, 3, 3, 3, 1, 2, 2, 2}, true)
	f.Add([]byte{5, 4, 3, 2, 1, 0, 5, 4, 3, 2, 1, 0}, true)
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2}, false)
	f.Fuzz(func(t *testing.T, ops []byte, exitMid bool) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		k, portID := fuzzWorld(t)
		s, err := k.NewSession([]byte("subject"))
		if err != nil {
			t.Fatal(err)
		}

		run := func(stream []byte) {
			var caps []Cap
			for _, op := range stream {
				switch op % 6 {
				case 0: // open a channel
					if c, err := s.Open(portID); err == nil {
						caps = append(caps, c)
					}
				case 1: // open an object
					if c, err := s.OpenObject("obj"); err == nil {
						caps = append(caps, c)
					}
				case 2: // dup the newest
					if len(caps) > 0 {
						if c, err := s.Dup(caps[len(caps)-1]); err == nil {
							// Dup must resolve to the same referent.
							p1, e1 := s.PortOf(caps[len(caps)-1])
							p2, e2 := s.PortOf(c)
							if (e1 == nil) != (e2 == nil) || p1 != p2 {
								t.Errorf("dup diverges: %d/%v vs %d/%v", p1, e1, p2, e2)
							}
							caps = append(caps, c)
						}
					}
				case 3: // close the oldest
					if len(caps) > 0 {
						s.Close(caps[0])
						caps = caps[1:]
					}
				case 4: // double close / forged handle must miss, not corrupt
					if len(caps) > 0 {
						s.Close(caps[0])
						s.Close(caps[0])
						caps = caps[1:]
					}
					if _, err := s.PortOf(Cap(uint64(op)<<32 | 0x7fffffff)); err == nil {
						t.Error("forged handle resolved")
					}
				case 5: // call through the newest
					if len(caps) > 0 {
						s.Call(caps[len(caps)-1], &Msg{Op: "x", Obj: "y"})
					}
				}
			}
		}

		half := len(ops) / 2
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); run(ops[:half]) }()
		go func() { defer wg.Done(); run(ops[half:]) }()
		if exitMid {
			wg.Add(1)
			go func() { defer wg.Done(); s.Exit() }()
		}
		wg.Wait()
		s.Exit()

		// Exit teardown invariant: the table is empty and permanently dead.
		if n := s.Handles(); n != 0 {
			t.Fatalf("%d handles outlive their process", n)
		}
		if _, err := s.Open(portID); err == nil {
			t.Fatal("alloc after exit succeeded")
		}
		if _, err := s.OpenObject("late"); err == nil {
			t.Fatal("object alloc after exit succeeded")
		}
		// No channel grants outlive the process either.
		for pid := range k.Channels() {
			if pid == s.PID() {
				t.Fatal("dead pid retains channel grants")
			}
		}
		assertRegistryInvariants(t, k)
	})
}

package kernel

import (
	"errors"
	"fmt"

	"repro/internal/nal"
)

// ErrNoSuchAuthority is returned when a guard consults an unknown channel.
var ErrNoSuchAuthority = errors.New("kernel: no such authority")

// Authority is a process listening on an attested IPC port that answers,
// live, whether it currently believes a statement (§2.7). Its answers are
// authoritative by virtue of the kernel's port-to-process binding but are
// deliberately untransferable: the kernel returns only a boolean to the
// asking guard, never a storable credential.
type Authority struct {
	port *Port
	// prin is the port principal; only statements attributed to it (or to
	// principals it speaks for) are in scope.
	prin nal.Principal
}

// PortID returns the id of the attested port the authority answers on.
func (a *Authority) PortID() int { return a.port.ID }

// authorityOp is the reserved IPC operation guards use to pose queries.
const authorityOp = "authority-query"

// RegisterAuthority creates an attested authority port whose handler
// answers membership queries over the owner's current beliefs. The answer
// function is consulted on every query — dynamic state is read fresh, never
// snapshotted.
func (k *Kernel) RegisterAuthority(owner *Process, answer func(f nal.Formula) bool) (*Authority, error) {
	if answer == nil {
		return nil, ErrBadArgument
	}
	pt, err := k.CreatePort(owner, func(from Caller, m *Msg) ([]byte, error) {
		if m.Op != authorityOp || len(m.Args) != 1 {
			return nil, ErrBadArgument
		}
		f, err := nal.Parse(string(m.Args[0]))
		if err != nil {
			return nil, fmt.Errorf("kernel: authority query: %w", err)
		}
		if answer(f) {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	})
	if err != nil {
		return nil, err
	}
	a := &Authority{port: pt, prin: pt.Prin(k)}
	k.authMu.Lock()
	k.auth[a.Channel()] = a
	k.authMu.Unlock()
	if owner.exited.Load() {
		// The owner raced Exit past the registration: retract the entry so
		// no authority outlives its process (Exit's own retraction may have
		// run before the insert landed).
		k.dropAuthorities([]int{pt.ID})
		k.ports.remove(pt.ID)
		return nil, ErrNoSuchProcess
	}
	return a, nil
}

// dropAuthorities retracts the authorities bound to the given (dead) port
// ids; Exit calls it with the ports it just closed.
func (k *Kernel) dropAuthorities(portIDs []int) {
	if len(portIDs) == 0 {
		return
	}
	k.authMu.Lock()
	for _, id := range portIDs {
		delete(k.auth, channelName(id))
	}
	k.authMu.Unlock()
}

// channelName is the canonical authority-channel name for a port; the
// registration key and exit-time retraction both derive from it.
func channelName(portID int) string { return fmt.Sprintf("ipc:%d", portID) }

// Channel returns the authority's channel name, used in proofs'
// RuleAuthority steps.
func (a *Authority) Channel() string { return channelName(a.port.ID) }

// Prin returns the principal to which the authority's answers are
// attributed.
func (a *Authority) Prin() nal.Principal { return a.prin }

// QueryAuthority poses "do you currently believe f?" to the authority on
// channel, on behalf of a guard. The query crosses the IPC boundary (with
// marshaling when interpositioning is enabled), so external authorities are
// substantially more expensive than embedded ones — Figure 4's rightmost
// bars.
func (k *Kernel) QueryAuthority(channel string, f nal.Formula) (bool, error) {
	k.authMu.RLock()
	a, ok := k.auth[channel]
	k.authMu.RUnlock()
	if !ok {
		return false, ErrNoSuchAuthority
	}
	out, err := k.Call(a.port.Owner, a.port.ID, &Msg{
		Op:   authorityOp,
		Obj:  channel,
		Args: [][]byte{[]byte(f.String())},
	})
	if err != nil {
		return false, err
	}
	return len(out) == 1 && out[0] == 1, nil
}

// Authorities lists registered channels.
func (k *Kernel) Authorities() []string {
	k.authMu.RLock()
	defer k.authMu.RUnlock()
	out := make([]string, 0, len(k.auth))
	for ch := range k.auth {
		out = append(out, ch)
	}
	return out
}

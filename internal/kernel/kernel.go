// Package kernel simulates the Nexus microkernel: isolated protection
// domains (IPDs), IPC ports with interpositioning, labelstores, goal
// formulas with guard upcalls, the kernel decision cache, authorities, and
// the TPM-rooted boot sequence.
//
// The simulation replaces the hardware privilege boundary with a package
// boundary: simulated processes interact with system state only through
// Kernel methods, exactly as Nexus processes interact only through system
// calls. Costs become wall-clock durations rather than cycle counts, but the
// layering that the paper measures — marshaling for interpositioning,
// decision-cache hits versus guard upcalls, user-level servers behind IPC —
// is all real code on the hot path.
package kernel

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/disk"
	"repro/internal/introspect"
	"repro/internal/ledger"
	"repro/internal/nal"
	"repro/internal/tpm"
)

// Errors returned by kernel operations.
var (
	ErrNoSuchProcess = errors.New("kernel: no such process")
	ErrNoSuchPort    = errors.New("kernel: no such IPC port")
	ErrDenied        = errors.New("kernel: authorization denied")
	ErrNoGuard       = errors.New("kernel: no guard bound to goal")
	ErrBootIntegrity = errors.New("kernel: boot integrity check failed")
	ErrBadArgument   = errors.New("kernel: bad argument")
)

// sealedNKFile is the disk file holding the Nexus key sealed to the PCRs.
const sealedNKFile = "/nexus/nk.sealed"

// Kernel is a running Nexus instance.
//
// There is deliberately no kernel-wide mutex: each piece of kernel state is
// its own independently synchronized registry with an explicit invariant
// (see DESIGN.md "Kernel dispatch"), so the warm Call/syscall path crosses
// the kernel boundary without serializing against unrelated control-plane
// work.
type Kernel struct {
	TPM  *tpm.TPM
	Disk *disk.Disk

	// NK is the Nexus key, generated on first boot and sealed to the PCR
	// state of the genuine kernel; it identifies this installation. It is
	// Ed25519: everything the kernel signs at runtime (node handshakes,
	// label certificates) uses it, leaving RSA only for the TPM
	// endorsement hierarchy, which is what real TPM silicon speaks.
	NK ed25519.PrivateKey
	// NBK is the Nexus boot key identifying this unique boot.
	NBK ed25519.PrivateKey
	// BootID is the hex hash of the public NBK.
	BootID string
	// nkFP is the cached fingerprint of NK's public half.
	nkFP string

	// Prin is the kernel's principal: key:<NK-fingerprint>.<boot-id>.
	// Every process principal is a subprincipal of it (§2.4).
	Prin nal.Principal

	procs   *procTable    // pid → process
	ports   *portRegistry // port id → port, interposition chains, owner index
	goals   *goalStore    // (op, obj) → goal entry, object owners
	dcache  *DecisionCache
	proofs  *proofStore     // (subj, op, obj) → registered proof
	chans   *chanTable      // channel-capability grants
	handles *handleRegistry // pid → capability handle table (Session ABI)

	// flags packs the global toggles (authorization, interposition, channel
	// enforcement) into one word the dispatch pipeline loads atomically.
	flags atomic.Uint32
	// defGuard is the default guard consulted on decision-cache misses when
	// the goal names none; swapped wholesale with an atomic pointer.
	defGuard atomic.Pointer[Guard]
	// guardUpcalls counts kernel → guard boundary crossings, lock-free.
	guardUpcalls atomic.Uint64

	// certs memoizes certificate verification (signature check plus
	// says-extraction) by fingerprint, shared by labelstore imports and
	// guards resolving certificate credentials; revocation goes through it.
	certs *cert.VerifyCache

	// audit is the hash-chained record of authorization decisions,
	// exported at /proc/kernel/audit. Only the decision (cache-miss) path
	// writes it; warm cached requests replay already-recorded decisions.
	audit *AuditLog

	// led is the durable ledger behind the audit log, when attached
	// (AttachLedger); decisions are forwarded via the audit log's sink.
	led atomic.Pointer[ledger.Ledger]

	// metrics is the kernel-wide observability plane (counters and latency
	// histograms, exported at /proc/kernel/metrics). Always non-nil;
	// instrumentation lives only on miss and transport paths, never on the
	// warm cached syscall path.
	metrics *kernelMetrics

	authMu  sync.RWMutex
	auth    map[string]*Authority
	Introsp *introspect.Registry

	startTime time.Time
	nkMu      sync.Mutex // guards nkCert memoization only
	nkCert    *cert.Certificate
}

// Options configures Boot.
type Options struct {
	// Image is the kernel image measured into the TPM; different images
	// produce different PCR state and therefore different trust domains.
	Image []byte
	// Authorization enables goal checking on IPC (default on).
	NoAuthorization bool
	// NoInterposition disables the redirector and parameter marshaling,
	// the "Nexus bare" configuration of Table 1.
	NoInterposition bool
	// DecisionCacheRegions overrides the subregion count (0 = default).
	DecisionCacheRegions int
	// DisableDecisionCache turns the kernel decision cache off, for the
	// dashed-bar configurations of Figure 4.
	DisableDecisionCache bool
}

// Boot runs the §3.4 boot sequence against the given TPM and disk: measure
// firmware, boot loader, and kernel image into PCRs; on first boot take
// ownership and generate the sealed Nexus key; on later boots unseal it —
// which fails for a modified kernel image. It returns the running kernel.
func Boot(t *tpm.TPM, d *disk.Disk, opts Options) (*Kernel, error) {
	t.Startup()
	if _, err := t.Extend(tpm.PCRFirmware, []byte("nexus-firmware-v1")); err != nil {
		return nil, err
	}
	if _, err := t.Extend(tpm.PCRBootLoader, []byte("nexus-bootloader-v1")); err != nil {
		return nil, err
	}
	image := opts.Image
	if image == nil {
		image = []byte("nexus-kernel-v1")
	}
	if _, err := t.Extend(tpm.PCRKernel, image); err != nil {
		return nil, err
	}
	bound := []tpm.PCRIndex{tpm.PCRFirmware, tpm.PCRBootLoader, tpm.PCRKernel}

	k := &Kernel{
		TPM:       t,
		Disk:      d,
		procs:     newProcTable(),
		ports:     newPortRegistry(),
		proofs:    newProofStore(),
		chans:     newChanTable(),
		handles:   newHandleRegistry(),
		certs:     cert.NewVerifyCache(),
		audit:     newAuditLog(),
		metrics:   &kernelMetrics{},
		auth:      map[string]*Authority{},
		Introsp:   introspect.NewRegistry(),
		startTime: time.Now(),
	}
	k.setFlag(flagAuthz, !opts.NoAuthorization)
	k.setFlag(flagInterp, !opts.NoInterposition)
	regions := opts.DecisionCacheRegions
	if regions == 0 {
		regions = 64
	}
	k.dcache = NewDecisionCache(regions)
	if opts.DisableDecisionCache {
		k.dcache.Disable()
	}
	k.goals = newGoalStore()

	// Acquire the Nexus key: first boot generates and seals it; later boots
	// unseal. A modified kernel fails the unseal (PCR mismatch) and, since
	// taking ownership twice is impossible, cannot masquerade.
	if !t.Owned() {
		if err := t.TakeOwnership(bound); err != nil {
			return nil, fmt.Errorf("kernel: taking TPM ownership: %w", err)
		}
		_, nk, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("kernel: generating NK: %w", err)
		}
		blob, err := t.Seal(marshalKey(nk), bound)
		if err != nil {
			return nil, fmt.Errorf("kernel: sealing NK: %w", err)
		}
		der, err := sealedBlobMarshal(blob)
		if err != nil {
			return nil, err
		}
		if err := d.Write(sealedNKFile, der); err != nil {
			return nil, fmt.Errorf("kernel: persisting sealed NK: %w", err)
		}
		k.NK = nk
	} else {
		der, err := d.Read(sealedNKFile)
		if err != nil {
			return nil, fmt.Errorf("%w: sealed NK missing", ErrBootIntegrity)
		}
		blob, err := sealedBlobUnmarshal(der)
		if err != nil {
			return nil, fmt.Errorf("%w: sealed NK corrupt", ErrBootIntegrity)
		}
		raw, err := t.Unseal(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: cannot unseal NK (%v)", ErrBootIntegrity, err)
		}
		nk, err := unmarshalKey(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: NK decode (%v)", ErrBootIntegrity, err)
		}
		k.NK = nk
	}

	// The boot key identifies this unique boot instantiation.
	_, nbk, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("kernel: generating NBK: %w", err)
	}
	k.NBK = nbk
	sum := sha1.Sum(nbk.Public().(ed25519.PublicKey))
	k.BootID = hex.EncodeToString(sum[:8])
	k.nkFP = cert.FingerprintEd25519(k.NK.Public().(ed25519.PublicKey))
	k.Prin = nal.SubOf(nal.Key(k.nkFP), k.BootID)

	k.publishIntrospection()
	return k, nil
}

// SetGuard installs the system guard consulted on decision-cache misses.
func (k *Kernel) SetGuard(g Guard) {
	if g == nil {
		k.defGuard.Store(nil)
		return
	}
	k.defGuard.Store(&g)
}

// defaultGuard returns the installed system guard, or nil.
func (k *Kernel) defaultGuard() Guard {
	if p := k.defGuard.Load(); p != nil {
		return *p
	}
	return nil
}

// CertCache exposes the kernel's credential pre-verification cache, for
// guards resolving certificate credentials and for revocation.
func (k *Kernel) CertCache() *cert.VerifyCache { return k.certs }

// NKFingerprint returns the fingerprint of this kernel's Nexus key,
// computed once at boot. It is the key component of the kernel principal.
func (k *Kernel) NKFingerprint() string { return k.nkFP }

// SetAuthorization toggles goal checking (Figure 4 case "system call").
func (k *Kernel) SetAuthorization(on bool) { k.setFlag(flagAuthz, on) }

// SetInterposition toggles the redirector and marshaling (Table 1 bare).
func (k *Kernel) SetInterposition(on bool) { k.setFlag(flagInterp, on) }

// Process is an isolated protection domain (IPD).
type Process struct {
	PID    int
	Parent int
	// Prin is kernel.ipd.<pid>, a subprincipal of the kernel (§2.4).
	Prin nal.Principal
	// Hash is the hex SHA-1 launch-time hash of the program image.
	Hash string
	// Labels is the process's default labelstore.
	Labels *Labelstore

	kernel  *Kernel
	prinStr string // canonical form of Prin, precomputed off the hot path
	exited  atomic.Bool
}

// PrinString returns the canonical form of the process principal, computed
// once at creation so authorization checks do not re-serialize it.
func (p *Process) PrinString() string { return p.prinStr }

// CreateProcess launches a new IPD from the given program image. parent is 0
// for root processes.
func (k *Kernel) CreateProcess(parent int, image []byte) (*Process, error) {
	if parent != 0 {
		if _, ok := k.procs.get(parent); !ok {
			return nil, ErrNoSuchProcess
		}
	}
	pid := k.procs.alloc()
	sum := sha1.Sum(image)
	prin := nal.SubChain(k.Prin, "ipd", fmt.Sprint(pid))
	p := &Process{
		PID:    pid,
		Parent: parent,
		Prin:   prin,
		Hash:   hex.EncodeToString(sum[:]),
		kernel: k,
		// String, not KeyOfPrin: per-process principals are unique per
		// PID, and interning them would fill the global table with
		// dead entries as processes churn.
		prinStr: prin.String(),
	}
	p.Labels = newLabelstore(p)
	k.procs.insert(p)
	return p, nil
}

// createRemoteProxy registers a proxy IPD standing in for a process on a
// peer kernel: it occupies a local pid — so registries, channel grants,
// labelstores, proof registration, and teardown work unchanged — but
// carries the remote process's *global* principal (key:<NK>.<boot>.ipd.N),
// so authorization, labels, and audit records attribute cross-node
// activity to the real remote identity, never to a local subprincipal of
// this kernel. Only the transport layer creates these, after the peer's
// identity has been verified.
func (k *Kernel) createRemoteProxy(prin nal.Principal) *Process {
	pid := k.procs.alloc()
	sum := sha1.Sum([]byte(prin.String()))
	p := &Process{
		PID:     pid,
		Prin:    prin,
		Hash:    hex.EncodeToString(sum[:]),
		kernel:  k,
		prinStr: prin.String(),
	}
	p.Labels = newLabelstore(p)
	k.procs.insert(p)
	return p
}

// Exit terminates the process: it leaves the process table, its ports are
// closed (via the per-owner index, not a registry scan), grants other
// processes held to those ports are revoked, its own channel capabilities
// are dropped, authorities bound to its ports are retracted, and its
// capability handle table is drained — no handle outlives its process,
// whichever exit path ran.
func (p *Process) Exit() {
	if !p.exited.CompareAndSwap(false, true) {
		return
	}
	k := p.kernel
	k.procs.remove(p.PID)
	dead := k.ports.dropOwner(p.PID)
	for _, id := range dead {
		k.chans.dropPort(id)
	}
	k.dropAuthorities(dead)
	k.chans.dropPID(p.PID)
	k.handles.dropPID(p.PID)
}

// Exited reports whether the process has terminated.
func (p *Process) Exited() bool { return p.exited.Load() }

// Lookup returns a live process by pid.
func (k *Kernel) Lookup(pid int) (*Process, bool) {
	return k.procs.get(pid)
}

// Processes returns the live PIDs in unspecified order.
func (k *Kernel) Processes() []int { return k.procs.pids() }

// GetPPID is the getppid system call.
func (p *Process) GetPPID() (int, error) {
	var ppid int
	err := p.kernel.syscall(p, "getppid", "proc:"+fmt.Sprint(p.PID), nil, func() error {
		ppid = p.Parent
		return nil
	})
	return ppid, err
}

// GetTimeOfDay is the gettimeofday system call.
func (p *Process) GetTimeOfDay() (time.Time, error) {
	var ts time.Time
	err := p.kernel.syscall(p, "gettimeofday", "clock", nil, func() error {
		ts = time.Now()
		return nil
	})
	return ts, err
}

// Yield is the scheduler yield system call.
func (p *Process) Yield() error {
	return p.kernel.syscall(p, "yield", "cpu", nil, func() error { return nil })
}

// Null is the empty system call used to measure invocation overhead.
func (p *Process) Null() error {
	return p.kernel.syscall(p, "null", "null", nil, func() error { return nil })
}

// publishIntrospection mounts the kernel's live state under /proc (§3.1).
// Every value reads the owning registry directly — none takes a kernel-wide
// lock, so introspection cannot stall the dispatch pipeline.
func (k *Kernel) publishIntrospection() {
	k.Introsp.Publish("/proc/kernel/bootid", k.Prin, func() string { return k.BootID })
	k.Introsp.Publish("/proc/kernel/uptime", k.Prin, func() string {
		return time.Since(k.startTime).String()
	})
	k.Introsp.Publish("/proc/kernel/nprocs", k.Prin, func() string {
		return fmt.Sprint(k.procs.len())
	})
	k.Introsp.Publish("/proc/kernel/nports", k.Prin, func() string {
		return fmt.Sprint(k.ports.len())
	})
	k.Introsp.Publish("/proc/kernel/guard_upcalls", k.Prin, func() string {
		return fmt.Sprint(k.guardUpcalls.Load())
	})
	k.Introsp.Publish("/proc/kernel/audit", k.Prin, func() string {
		return k.audit.summary()
	})
	k.Introsp.Publish("/proc/kernel/dcache", k.Prin, func() string {
		s := k.dcache.StatsSnapshot()
		return fmt.Sprintf("lookups=%d hits=%d misses=%d evictions=%d",
			s.Lookups, s.Hits, s.Misses, s.Evictions)
	})
	k.Introsp.Publish("/proc/kernel/metrics", k.Prin, func() string {
		s := k.Metrics()
		return s.render()
	})
}

//go:build !linux

// On platforms without the epoll backend, scheduler shards have no poller
// (workers park on the shard condvar) and TCP connections fall back to the
// shim frame source: one parked reader goroutine per connection (see
// shimSource in sched.go). The runtime semantics are identical; only the
// goroutine footprint and the wakeup path differ.
package kernel

import "errors"

var errNoPoller = errors.New("kernel: no platform poller")

// shardPoller is a stub on this platform; newShardPoller reporting
// (nil, nil) makes newConnSched build cond-parked shards.
type shardPoller struct {
	// nfds mirrors the Linux field so shard code can reference it; it
	// stays zero because no source ever registers.
	nfds int
}

func newShardPoller() (*shardPoller, error) { return nil, nil }

func (p *shardPoller) kick()  {}
func (p *shardPoller) close() {}

// pollEvents is never reached with a nil poller; present to satisfy the
// shard's platform-neutral call sites.
func (s *schedShard) pollEvents(block bool) {}

func newTCPSource(tc *tcpConn) (frameSource, error) { return nil, errNoPoller }

//go:build !linux

// On platforms without the epoll poller, TCP connections fall back to the
// shim frame source: one parked reader goroutine per connection (see
// shimSource in sched.go). The runtime semantics are identical; only the
// goroutine footprint differs.
package kernel

import "errors"

var errNoPoller = errors.New("kernel: no platform poller")

// netPoller is a stub on this platform; it is never instantiated.
type netPoller struct{}

func (p *netPoller) close() {}

func (n *Node) newTCPSource(tc *tcpConn) (frameSource, error) { return nil, errNoPoller }

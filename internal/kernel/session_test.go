package kernel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/nal"
)

// echoSrv wires a session world: a server session listening on an echo
// port, and a client session with an open channel to it.
func echoSrv(t *testing.T) (k *Kernel, srv, cli *Session, ch Cap) {
	t.Helper()
	k = bootKernel(t)
	var err error
	if srv, err = k.NewSession([]byte("srv")); err != nil {
		t.Fatal(err)
	}
	if cli, err = k.NewSession([]byte("cli")); err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(from Caller, m *Msg) ([]byte, error) {
		if len(m.Args) > 0 {
			return append([]byte("echo:"), m.Args[0]...), nil
		}
		return []byte("echo"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := srv.PortOf(pc)
	if err != nil {
		t.Fatal(err)
	}
	if ch, err = cli.Open(id); err != nil {
		t.Fatal(err)
	}
	return k, srv, cli, ch
}

func TestSessionCallRoundTrip(t *testing.T) {
	_, _, cli, ch := echoSrv(t)
	out, err := cli.Call(ch, &Msg{Op: "echo", Obj: "o", Args: [][]byte{[]byte("hi")}})
	if err != nil || !bytes.Equal(out, []byte("echo:hi")) {
		t.Fatalf("Call = %q, %v", out, err)
	}
	// CallContext honors cancellation before dispatch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cli.CallContext(ctx, ch, &Msg{Op: "echo", Obj: "o"}); ErrnoOf(err) != ECANCELED {
		t.Fatalf("canceled call: want ECANCELED, got %v", err)
	}
}

func TestHandleLifecycle(t *testing.T) {
	_, _, cli, ch := echoSrv(t)
	// Dup resolves to the same port.
	dup, err := cli.Dup(ch)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := cli.PortOf(ch)
	p2, _ := cli.PortOf(dup)
	if p1 != p2 {
		t.Fatalf("dup resolves to port %d, original %d", p2, p1)
	}
	// Closing one of two handles keeps the channel capability; closing the
	// last drops it.
	if err := cli.Close(ch); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(ch, &Msg{Op: "x", Obj: "y"}); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("closed handle: want ErrBadHandle, got %v", err)
	}
	if _, err := cli.Call(dup, &Msg{Op: "x", Obj: "y"}); err != nil {
		t.Fatalf("dup survives sibling close: %v", err)
	}
	if err := cli.Close(dup); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(dup); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("double close: want ErrBadHandle, got %v", err)
	}
	if cli.Handles() != 0 {
		t.Fatalf("handles remain after closes: %d", cli.Handles())
	}
}

func TestCloseOwnerHandleTearsDownPort(t *testing.T) {
	k, srv, cli, ch := echoSrv(t)
	pc, err := srv.ListeningPort()
	if err != nil {
		t.Fatal(err)
	}
	// Find the owner handle: it is srv's only handle.
	var ownerCap Cap
	for i := range srv.ht.shards {
		sh := &srv.ht.shards[i]
		for slot, sl := range sh.m {
			if sl.kind == capPort {
				ownerCap = capOf(slot, sl.gen)
			}
		}
	}
	if err := srv.Close(ownerCap); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.FindPort(pc); ok {
		t.Fatal("port survived owner-handle close")
	}
	if _, err := cli.Call(ch, &Msg{Op: "x", Obj: "y"}); ErrnoOf(err) != ENOENT {
		t.Fatalf("call to torn-down port: want ENOENT, got %v", err)
	}
}

func TestGrantHandsChannelToPeer(t *testing.T) {
	k, _, cli, ch := echoSrv(t)
	k.EnforceChannels(true)
	peer, _ := k.NewSession([]byte("peer"))
	pc, err := cli.Grant(peer, ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Call(pc, &Msg{Op: "x", Obj: "y"}); err != nil {
		t.Fatalf("granted call: %v", err)
	}
	// The grant shows in the coherent channel snapshot.
	found := false
	for pid := range k.Channels() {
		if pid == peer.PID() {
			found = true
		}
	}
	if !found {
		t.Fatal("grant missing from Channels()")
	}
}

// TestOpenCloseGrantRace races Open/Dup against Close of sibling handles
// to the same port under channel enforcement: a Cap successfully returned
// by Open or Dup must be callable until it is itself closed — a concurrent
// sibling Close must never revoke the grant out from under it. (Open
// publishes the handle slot before the grant lands, and Dup re-asserts the
// grant, precisely so the last-handle revocation scan cannot misfire.)
func TestOpenCloseGrantRace(t *testing.T) {
	k, _, cli, ch := echoSrv(t)
	k.SetAuthorization(false)
	k.EnforceChannels(true)
	portID, err := cli.PortOf(ch)
	if err != nil {
		t.Fatal(err)
	}
	// Close the setup handle so the workers' handles are the only ones:
	// whenever every worker is between Close and Open, the pid-level grant
	// is genuinely revoked, and each fresh Open re-establishes it inside
	// the racy window the slot-before-grant ordering protects.
	if err := cli.Close(ch); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				c, err := cli.Open(portID)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if _, err := cli.Call(c, &Msg{Op: "x", Obj: "y"}); err != nil {
					t.Errorf("call through live handle: %v", err)
					return
				}
				d, err := cli.Dup(c)
				if err != nil {
					t.Errorf("dup: %v", err)
					return
				}
				if err := cli.Close(c); err != nil {
					t.Errorf("close: %v", err)
					return
				}
				// The dup outlives its source's close.
				if _, err := cli.Call(d, &Msg{Op: "x", Obj: "y"}); err != nil {
					t.Errorf("call through dup after sibling close: %v", err)
					return
				}
				if err := cli.Close(d); err != nil {
					t.Errorf("close dup: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Quiescence: no worker handles remain, so the grant must be gone and
	// a fresh Open must restore it.
	if cli.Handles() != 0 {
		t.Fatalf("handles remain: %d", cli.Handles())
	}
	c, err := cli.Open(portID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(c, &Msg{Op: "x", Obj: "y"}); err != nil {
		t.Fatalf("fresh open after churn: %v", err)
	}
}

func TestExitRevokesHandles(t *testing.T) {
	_, _, cli, ch := echoSrv(t)
	cli.Exit()
	if _, err := cli.Call(ch, &Msg{Op: "x", Obj: "y"}); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("post-exit call: want ErrBadHandle, got %v", err)
	}
	if cli.Handles() != 0 {
		t.Fatalf("handles survive exit: %d", cli.Handles())
	}
	if _, err := cli.Open(1); ErrnoOf(err) == EOK {
		t.Fatal("open on exited session must fail")
	}
}

func TestObjectHandleAuthorizes(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	owner, _ := k.NewSession([]byte("owner"))
	other, _ := k.NewSession([]byte("other"))
	obj, err := owner.OpenObject("vault")
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := owner.ObjectOf(obj); name != "vault" {
		t.Fatalf("ObjectOf = %q", name)
	}
	// Deny everyone via an unprovable goal with no registered proof.
	if err := owner.SetGoal("read", "vault", nal.MustParse("Admin says never"), denyGuard{}); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Call(obj, &Msg{Op: "read"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("object op: want ErrDenied, got %v", err)
	}
	// The denial is typed.
	_, err = owner.Call(obj, &Msg{Op: "read"})
	var abi *Error
	if !errors.As(err, &abi) || abi.Errno != EACCES {
		t.Fatalf("want *Error with EACCES, got %#v", err)
	}
	_ = other
}

type denyGuard struct{}

func (denyGuard) Check(*GuardRequest) GuardDecision {
	return GuardDecision{Allow: false, Cacheable: true, Reason: "deny"}
}

func TestSubmitBatchSemantics(t *testing.T) {
	k, _, cli, ch := echoSrv(t)
	k.SetGuard(allowAllGuard{})
	subs := []Sub{
		{Cap: ch, Op: "a", Obj: "o", Args: [][]byte{[]byte("1")}, Tag: 11},
		{Cap: Cap(1<<40 | 7), Op: "b", Obj: "o", Tag: 22}, // forged handle
		{Cap: ch, Op: "c", Obj: "o", Args: [][]byte{[]byte("3")}, Tag: 33},
	}
	comps, err := cli.Submit(context.Background(), subs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("completions = %d", len(comps))
	}
	if comps[0].Tag != 11 || !bytes.Equal(comps[0].Out, []byte("echo:1")) || comps[0].Err != nil {
		t.Errorf("comp0 = %+v", comps[0])
	}
	if comps[1].Tag != 22 || ErrnoOf(comps[1].Err) != EBADF {
		t.Errorf("comp1: want EBADF, got %+v", comps[1])
	}
	if comps[2].Tag != 33 || !bytes.Equal(comps[2].Out, []byte("echo:3")) || comps[2].Err != nil {
		t.Errorf("comp2 = %+v (a bad handle must not poison the batch)", comps[2])
	}

	// Completion-queue reuse: a large-enough slice is reused in place.
	buf := make([]Completion, 0, 8)
	comps2, _ := cli.Submit(nil, subs, buf)
	if &comps2[0] != &buf[:1][0] {
		t.Error("completion slice with capacity was not reused")
	}

	// Canceled context: remaining ops complete with ECANCELED.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	comps3, err := cli.Submit(ctx, subs, nil)
	if ErrnoOf(err) != ECANCELED {
		t.Fatalf("submit on canceled ctx: want ECANCELED, got %v", err)
	}
	for i, c := range comps3 {
		if ErrnoOf(c.Err) != ECANCELED {
			t.Errorf("comp %d after cancel: %+v", i, c)
		}
	}
}

func TestSubmitMatchesCallUnderMonitor(t *testing.T) {
	// A monitor observing wire copies must see identical decodes through
	// the single-call path and the arena-marshaled batch path.
	k, srv, cli, ch := echoSrv(t)
	k.SetGuard(allowAllGuard{})
	var mu sync.Mutex
	var seen []*Msg
	id, err := srv.ListeningPort()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Interpose(id, FuncMonitor{
		Call: func(from Caller, m *Msg, wire []byte) Verdict {
			dm, err := DecodeWire(append([]byte(nil), wire...))
			if err != nil {
				t.Errorf("monitor decode: %v", err)
				return VerdictBlock
			}
			mu.Lock()
			seen = append(seen, dm)
			mu.Unlock()
			return VerdictAllow
		},
	}); err != nil {
		t.Fatal(err)
	}
	cli.Call(ch, &Msg{Op: "single", Obj: "o", Args: [][]byte{[]byte("x")}})
	subs := []Sub{
		{Cap: ch, Op: "b0", Obj: "o", Args: [][]byte{[]byte("y0")}},
		{Cap: ch, Op: "b1", Obj: "o", Args: [][]byte{[]byte("y1")}},
	}
	if _, err := cli.Submit(nil, subs, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("monitor saw %d calls, want 3", len(seen))
	}
	for i, want := range []string{"single", "b0", "b1"} {
		if seen[i].Op != want {
			t.Errorf("monitor call %d op = %q, want %q", i, seen[i].Op, want)
		}
	}
}

func TestSubQueueReuse(t *testing.T) {
	k, _, cli, ch := echoSrv(t)
	k.SetGuard(allowAllGuard{})
	q := cli.NewQueue(8)
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			q.Push(Sub{Cap: ch, Op: "op", Obj: "o", Tag: uint64(i)})
		}
		comps := q.Flush(context.Background())
		if len(comps) != 8 {
			t.Fatalf("round %d: %d completions", round, len(comps))
		}
		for i, c := range comps {
			if c.Err != nil || c.Tag != uint64(i) {
				t.Fatalf("round %d comp %d: %+v", round, i, c)
			}
		}
		if q.Depth() != 0 {
			t.Fatalf("queue not drained: %d", q.Depth())
		}
	}
}

func TestErrnoTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Errno
	}{
		{abiErr(EACCES, "read", "nope"), EACCES},
		{ErrDenied, EACCES},
		{fmt.Errorf("wrapped: %w", abiErr(EBADF, "resolve", "")), EBADF},
		{ErrNoSuchPort, ENOENT},
		{ErrNoSuchProcess, ESRCH},
		{ErrBootIntegrity, EINTEGRITY},
		{errors.New("handler-level"), EOK},
		{nil, EOK},
	}
	for i, c := range cases {
		if got := ErrnoOf(c.err); got != c.want {
			t.Errorf("case %d: ErrnoOf(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
	// Typed errors match their sentinel and their class.
	e := abiErr(EACCES, "call", "blocked")
	if !errors.Is(e, ErrDenied) {
		t.Error("EACCES must match ErrDenied")
	}
	if !errors.Is(e, abiErr(EACCES, "other", "detail")) {
		t.Error("class equality must ignore detail")
	}
	if errors.Is(e, ErrNoSuchPort) {
		t.Error("EACCES must not match ErrNoSuchPort")
	}
}

func TestSessionSpawnHierarchy(t *testing.T) {
	k := bootKernel(t)
	parent, _ := k.NewSession([]byte("parent"))
	child, err := parent.Spawn([]byte("child"))
	if err != nil {
		t.Fatal(err)
	}
	if child.ParentPID() != parent.PID() {
		t.Fatalf("child parent = %d, want %d", child.ParentPID(), parent.PID())
	}
	if !nal.IsAncestor(k.Prin, child.Prin()) {
		t.Error("child principal must be a kernel subprincipal")
	}
	ppid, err := child.GetPPID()
	if err != nil || ppid != parent.PID() {
		t.Fatalf("GetPPID = %d, %v", ppid, err)
	}
}

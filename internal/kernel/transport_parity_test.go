package kernel

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// Frame-source parity: the transport's protocol semantics — flow control,
// hostile-credit clamping, poison-on-desync, re-attestation bounding,
// concurrent teardown — must not depend on which runtime feeds frames to
// the scheduler. The native sources (the loopback queue's direct scheduler
// coupling, the per-shard epoll TCP source) are the fast paths; the
// portable shim source is the fallback every other platform runs. This
// suite re-runs the core semantic tests with every connection forced
// through the shim and the shard pollers disabled, so the fallback path
// keeps passing the same gauntlet as the fast paths.

// forceShimSource routes every connection registered while the test runs
// through the portable shim frame source and parks shard workers on their
// condvars instead of epoll, restoring the defaults at cleanup. Callers
// must not run parallel to other transport tests (the knobs are global;
// none of this package's tests call t.Parallel).
func forceShimSource(t *testing.T) {
	t.Helper()
	debugForceShim = true
	debugNoShardPoller = true
	t.Cleanup(func() {
		debugForceShim = false
		debugNoShardPoller = false
	})
}

func TestFrameSourceParityShim(t *testing.T) {
	forceShimSource(t)
	t.Run("SlowConsumerBackpressure", testSlowConsumerBackpressure)
	t.Run("HostileCreditClampServer", testHostileCreditClampServer)
	t.Run("HostileCreditClampClient", testHostileCreditClampClient)
	t.Run("ReattestTableBounded", testReattestTableBounded)
	t.Run("PoisonOnDesync", testPoisonOnDesync)
	t.Run("Stress", testTransportStressSmall)
}

// TestPoisonOnDesync pins the desync discipline on the native sources; the
// shim parity run above repeats it through the fallback.
func TestPoisonOnDesync(t *testing.T) { testPoisonOnDesync(t) }

// testPoisonOnDesync sends a frame of unknown type: the server must answer
// with a typed error (flushed before teardown — the egress combiner's
// poison-before-die ordering) and then close the connection, because its
// per-connection codec tables may have desynced from the client's.
func testPoisonOnDesync(t *testing.T) {
	c, _, _, _ := rawPair(t, TransportConfig{}, TransportConfig{})
	if err := c.Send(binary.AppendUvarint([]byte{0xEE}, 7)); err != nil {
		t.Fatal(err)
	}
	id, err := recvResp(t, c)
	if err != nil {
		t.Fatalf("poisoned connection died before flushing its error response: %v", err)
	}
	if id != 7 {
		t.Fatalf("error response echoes id %d, want 7", id)
	}
	// After the flushed error the connection must be dead: the next
	// receive fails rather than delivering anything.
	if _, err := c.Recv(); err == nil {
		t.Fatal("connection survived a desyncing frame")
	}
}

// testTransportStressSmall is a scaled-down sibling of the external
// TestLoopbackTransportStress for the parity run: concurrent remote calls,
// batched submissions, and dial/close churn over one transport, ending on
// the no-pending-calls and proxy-teardown invariants.
func testTransportStressSmall(t *testing.T) {
	front, store := bootK(t), bootK(t)
	nStore := NewNode(store)
	lt := NewLoopbackTransport()
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := NewNode(front)

	srv, err := store.NewSession([]byte("parity-srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(Caller, *Msg) ([]byte, error) { return []byte("ok"), nil })
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := nStore.Export("echo", port); err != nil {
		t.Fatal(err)
	}
	shared, err := nFront.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, err := front.NewSession([]byte(fmt.Sprintf("parity-%d", id)))
			if err != nil {
				t.Errorf("session: %v", err)
				return
			}
			defer s.Exit()
			c, err := s.Connect(shared, "echo")
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			for i := 0; i < rounds; i++ {
				if _, err := s.CallRemote(c, &Msg{Op: "read", Obj: "o"}); err != nil {
					t.Errorf("remote call: %v", err)
					return
				}
				if i%8 == 0 {
					subs := []Sub{{Cap: c, Op: "read", Obj: "o", Tag: 1}, {Cap: c, Op: "read", Obj: "o", Tag: 2}}
					comps, err := s.SubmitRemote(nil, c, subs, nil)
					if err != nil {
						t.Errorf("remote submit: %v", err)
						return
					}
					for j := range comps {
						if comps[j].Err != nil {
							t.Errorf("batched op: %v", comps[j].Err)
						}
					}
				}
				if i%16 == 0 {
					p, err := nFront.Dial(lt, "store")
					if err != nil {
						t.Errorf("churn dial: %v", err)
						return
					}
					p.Close()
				}
			}
		}(w)
	}
	wg.Wait()

	if n := shared.Pending(); n != 0 {
		t.Errorf("shared peer holds %d pending calls with no caller running", n)
	}
	nFront.Close()
	nStore.Close()
	if got := len(store.Processes()); got != 1 {
		t.Fatalf("store kernel has %d live processes after close, want 1", got)
	}
	if got := len(front.Processes()); got != 0 {
		t.Fatalf("front kernel has %d live processes after close, want 0", got)
	}
}

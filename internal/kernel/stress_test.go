package kernel

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/nal"
)

// TestKernelRegistryStress is the whole-kernel race stress: goroutines mix
// process create/exit, port creation, channel grant/revoke, interposition,
// IPC calls, and goal updates against one kernel, then the decomposed
// registries are checked against their cross-registry invariants:
//
//   - no port is owned by a dead process;
//   - no channel grant is held by a dead process;
//   - no channel grant points at a dead port;
//   - no authority is bound to a dead port;
//   - forward and reverse channel indexes agree.
//
// Run with -race; this is the test that demonstrates the warm dispatch path
// and the control plane are safe without a kernel-global lock.
func TestKernelRegistryStress(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	k.EnforceChannels(true)

	srv, _ := k.CreateProcess(0, []byte("stable-srv"))
	stable, err := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return []byte("ok"), nil })
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p, err := k.CreateProcess(0, []byte(fmt.Sprintf("w%d-%d", id, i)))
				if err != nil {
					t.Error(err)
					return
				}
				pt, err := k.CreatePort(p, func(Caller, *Msg) ([]byte, error) { return nil, nil })
				if err != nil {
					t.Error(err)
					return
				}
				obj := fmt.Sprintf("obj%d", i%5)
				if err := k.GrantChannel(p, stable.ID); err != nil {
					t.Error(err)
					return
				}
				switch i % 4 {
				case 0:
					k.SetGoal(srv, "read", obj, nal.MustParse("?S says wantsAccess"), nil)
				case 1:
					if h, err := k.Interpose(p, pt.ID, FuncMonitor{}); err == nil {
						k.Deinterpose(p, pt.ID, h)
					} else if !errors.Is(err, ErrNoSuchPort) {
						t.Errorf("interpose: %v", err)
					}
				case 2:
					// Interpose on the kernel syscall channel, then remove.
					if h, err := k.Interpose(p, 0, FuncMonitor{}); err == nil {
						k.Deinterpose(p, 0, h)
					}
				case 3:
					k.RevokeChannel(p, stable.ID)
				}
				// Calls race goal updates and interposition; allowed or
				// denied, they must not corrupt registries.
				k.Call(p, stable.ID, &Msg{Op: "read", Obj: obj})
				k.Call(p, pt.ID, &Msg{Op: "read", Obj: obj})
				p.Null()
				p.Exit()
			}
		}(w)
	}
	wg.Wait()

	assertRegistryInvariants(t, k)

	if n := k.procs.len(); n != 1 {
		t.Errorf("live processes after stress = %d, want 1 (stable server)", n)
	}
	if _, ok := k.FindPort(stable.ID); !ok {
		t.Error("stable port vanished")
	}
	if _, err := k.Call(srv, stable.ID, &Msg{Op: "read", Obj: "obj0"}); err != nil {
		t.Errorf("stable port call after stress: %v", err)
	}
	if k.Monitors(0) != 0 {
		t.Errorf("syscall channel retains %d monitors", k.Monitors(0))
	}
}

// assertRegistryInvariants checks the cross-registry consistency contract
// the decomposed kernel maintains at quiescence.
func assertRegistryInvariants(t *testing.T, k *Kernel) {
	t.Helper()

	live := map[int]bool{}
	for _, pid := range k.Processes() {
		live[pid] = true
	}

	// Port registry: every port's owner is live, and the owner index agrees
	// with the shards.
	portOwner := map[int]int{}
	for i := range k.ports.shards {
		s := &k.ports.shards[i]
		s.mu.RLock()
		for id, pt := range s.m {
			portOwner[id] = pt.Owner.PID
			if !live[pt.Owner.PID] {
				t.Errorf("port %d owned by dead pid %d", id, pt.Owner.PID)
			}
			if pt.Owner.Exited() {
				t.Errorf("port %d owned by exited process", id)
			}
		}
		s.mu.RUnlock()
	}
	k.ports.ownMu.Lock()
	indexed := 0
	for pid, ports := range k.ports.byOwner {
		indexed += len(ports)
		for id := range ports {
			if owner, ok := portOwner[id]; !ok || owner != pid {
				t.Errorf("owner index lists port %d under pid %d, registry says owner %d", id, pid, owner)
			}
		}
	}
	k.ports.ownMu.Unlock()
	if indexed != len(portOwner) {
		t.Errorf("owner index covers %d ports, registry holds %d", indexed, len(portOwner))
	}

	// Channel table: grants only between live pids and live ports, and the
	// reverse index mirrors the forward one. The forward view is read
	// shard-by-shard deliberately (the production Channels() snapshot is
	// built from the reverse index) so the two sides are compared through
	// independent paths.
	forward := map[[2]int]bool{}
	for pid, ports := range forwardGrants(k.chans) {
		if !live[pid] {
			t.Errorf("dead pid %d still holds channel grants", pid)
		}
		for _, portID := range ports {
			forward[[2]int{pid, portID}] = true
			if _, ok := portOwner[portID]; !ok {
				t.Errorf("grant from pid %d to dead port %d", pid, portID)
			}
		}
	}
	k.chans.revMu.Lock()
	reverse := 0
	for portID, pids := range k.chans.byPort {
		for pid := range pids {
			reverse++
			if !forward[[2]int{pid, portID}] {
				t.Errorf("reverse index has (pid %d, port %d) missing from forward", pid, portID)
			}
		}
	}
	k.chans.revMu.Unlock()
	if reverse != len(forward) {
		t.Errorf("reverse index size %d != forward size %d", reverse, len(forward))
	}

	// Authorities: every registered authority's port is live.
	k.authMu.RLock()
	for ch, a := range k.auth {
		if _, ok := portOwner[a.PortID()]; !ok {
			t.Errorf("authority %s bound to dead port %d", ch, a.PortID())
		}
	}
	k.authMu.RUnlock()

	// Decision cache stats stay coherent under the mixed load.
	s := k.dcache.StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("dcache stats inconsistent: %+v", s)
	}
}

// TestIntrospectionSnapshotRace races the introspection readers —
// Kernel.Channels (the connectivity analyzer's input) and Kernel.Monitors —
// against process/port/grant churn and monitor bind/unbind. Channels must
// return a coherent snapshot: every grant it reports targets the stable
// port (the only port ever granted here), resolved to the correct live
// owner, and exited workers must never reappear once their teardown is
// globally visible. Monitors must never report a count on a dead port.
func TestIntrospectionSnapshotRace(t *testing.T) {
	k := bootKernel(t)
	k.SetAuthorization(false)
	k.EnforceChannels(true)

	srv, _ := k.NewSession([]byte("stable-srv"))
	stableCap, err := srv.Listen(func(Caller, *Msg) ([]byte, error) { return []byte("ok"), nil })
	if err != nil {
		t.Fatal(err)
	}
	stableID, _ := srv.PortOf(stableCap)

	stop := make(chan struct{})
	var churnWG, readWG sync.WaitGroup

	// Churn: sessions open the stable port, listen on transient ports,
	// interpose/deinterpose, and exit.
	const churners = 4
	for w := 0; w < churners; w++ {
		churnWG.Add(1)
		go func(id int) {
			defer churnWG.Done()
			for i := 0; i < 200; i++ {
				s, err := k.NewSession([]byte(fmt.Sprintf("churn%d-%d", id, i)))
				if err != nil {
					t.Error(err)
					return
				}
				ch, err := s.Open(stableID)
				if err != nil {
					t.Error(err)
					return
				}
				pc, err := s.Listen(func(Caller, *Msg) ([]byte, error) { return nil, nil })
				if err != nil {
					t.Error(err)
					return
				}
				pid, _ := s.PortOf(pc)
				if h, err := s.Interpose(pid, FuncMonitor{}); err == nil {
					if i%2 == 0 {
						s.Deinterpose(pid, h)
					}
				}
				s.Call(ch, &Msg{Op: "read", Obj: "obj"})
				s.Exit()
			}
		}(w)
	}

	// Readers: snapshot coherence under churn.
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := k.Channels()
				for pid, owners := range snap {
					if pid <= 0 {
						t.Errorf("snapshot lists pid %d", pid)
					}
					for _, owner := range owners {
						// Only the stable port is ever granted, so every
						// resolved owner must be the stable server — a torn
						// read of a dying grant would violate this.
						if owner != srv.PID() {
							t.Errorf("grant resolves to owner %d, want %d", owner, srv.PID())
						}
					}
				}
				// Monitors on the stable (never-interposed) port and the
				// syscall channel stay constant; on dead ports it reports 0.
				if n := k.Monitors(stableID); n != 0 {
					t.Errorf("stable port reports %d monitors", n)
				}
			}
		}()
	}

	// Readers observe the full churn window, then drain.
	churnWG.Wait()
	close(stop)
	readWG.Wait()

	// Quiescent coherence: the snapshot contains exactly the surviving
	// grants (none — every churner exited), and invariants hold.
	snap := k.Channels()
	for pid := range snap {
		if pid != srv.PID() {
			t.Errorf("pid %d retains grants after exit", pid)
		}
	}
	assertRegistryInvariants(t, k)
}

// forwardGrants reads the channel table's forward shards: pid → held port
// ids. Test-only — production snapshots go through Kernel.Channels, which
// linearizes on the reverse index under revMu.
func forwardGrants(t *chanTable) map[int][]int {
	out := map[int][]int{}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for pid, ports := range s.m {
			for portID, ok := range ports {
				if ok {
					out[pid] = append(out[pid], portID)
				}
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// TestExitRacesInterpose races monitor binding against the target port's
// teardown: whichever side wins, a returned handle must denote a monitor
// that was installed while the port was live, and the registries stay
// consistent.
func TestExitRacesInterpose(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	mon, _ := k.CreateProcess(0, []byte("mon"))
	for i := 0; i < 200; i++ {
		p, err := k.CreateProcess(0, []byte("victim"))
		if err != nil {
			t.Fatal(err)
		}
		pt, err := k.CreatePort(p, func(Caller, *Msg) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var handle int
		var ierr error
		go func() {
			defer wg.Done()
			handle, ierr = k.Interpose(mon, pt.ID, FuncMonitor{})
		}()
		go func() {
			defer wg.Done()
			p.Exit()
		}()
		wg.Wait()
		if ierr == nil && handle == 0 {
			t.Fatal("nil error with zero handle")
		}
		if ierr != nil && !errors.Is(ierr, ErrNoSuchPort) {
			t.Fatalf("round %d: interpose: %v", i, ierr)
		}
	}
	assertRegistryInvariants(t, k)
}

// TestExitRacesCreatePort drives the create/exit boundary hard: a process
// exiting concurrently with CreatePort and GrantChannel must never strand a
// port or a grant, whichever side wins the race.
func TestExitRacesCreatePort(t *testing.T) {
	k := bootKernel(t)
	k.SetAuthorization(false)
	for i := 0; i < 300; i++ {
		p, err := k.CreateProcess(0, []byte("racer"))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var pt *Port
		go func() {
			defer wg.Done()
			pt, _ = k.CreatePort(p, func(Caller, *Msg) ([]byte, error) { return nil, nil })
		}()
		go func() {
			defer wg.Done()
			p.Exit()
		}()
		wg.Wait()
		if pt != nil {
			if _, ok := k.FindPort(pt.ID); ok {
				t.Fatalf("round %d: port %d survived its owner's exit", i, pt.ID)
			}
		}
	}
	assertRegistryInvariants(t, k)
}

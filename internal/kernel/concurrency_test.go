package kernel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/nal"
)

// TestConcurrentCallsAndControlOps hammers the kernel from many simulated
// processes while control-plane operations (goal and proof updates, label
// churn) run concurrently — the interleaving a live system sees. Run with
// -race.
func TestConcurrentCallsAndControlOps(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	srv, _ := k.CreateProcess(0, []byte("srv"))
	pt, _ := k.CreatePort(srv, func(*Process, *Msg) ([]byte, error) { return []byte("ok"), nil })

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := k.CreateProcess(0, []byte(fmt.Sprintf("worker%d", id)))
			if err != nil {
				t.Error(err)
				return
			}
			obj := fmt.Sprintf("obj%d", id%4)
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					k.SetGoal(srv, "read", obj, nal.MustParse("?S says wantsAccess"), nil)
				case 1:
					cred := nal.Says{P: p.Prin, F: nal.Pred{Name: "wantsAccess"}}
					k.SetProof(p, "read", obj, nil, []Credential{{Inline: cred}})
				case 2:
					if _, err := p.Labels.Say("ready"); err != nil {
						t.Error(err)
					}
				default:
					// Calls may be allowed or denied depending on the
					// racing goal updates; they must never corrupt state.
					k.Call(p, pt.ID, &Msg{Op: "read", Obj: obj})
				}
			}
			p.Exit()
		}(w)
	}
	wg.Wait()
}

// TestConcurrentAuthoritiesAndInterposition exercises authority queries
// against interposition changes.
func TestConcurrentAuthoritiesAndInterposition(t *testing.T) {
	k := bootKernel(t)
	ap, _ := k.CreateProcess(0, []byte("authority"))
	a, err := k.RegisterAuthority(ap, func(nal.Formula) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := k.CreateProcess(0, []byte("mon"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%10 == 0 {
					if id, err := k.Interpose(mon, a.Port.ID, FuncMonitor{}); err == nil {
						k.Deinterpose(mon, a.Port.ID, id)
					}
				}
				if _, err := k.QueryAuthority(a.Channel(), nal.TrueF{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentLabelstoreTransfer moves labels between stores from many
// goroutines.
func TestConcurrentLabelstoreTransfer(t *testing.T) {
	k := bootKernel(t)
	a, _ := k.CreateProcess(0, []byte("a"))
	b, _ := k.CreateProcess(0, []byte("b"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l, err := a.Labels.Say("ready")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := a.Labels.Transfer(l.Handle, b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.Labels.Len() != 400 {
		t.Errorf("transferred labels = %d, want 400", b.Labels.Len())
	}
}

package kernel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/nal"
)

// TestConcurrentCallsAndControlOps hammers the kernel from many simulated
// processes while control-plane operations (goal and proof updates, label
// churn) run concurrently — the interleaving a live system sees. Run with
// -race.
func TestConcurrentCallsAndControlOps(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	srv, _ := k.CreateProcess(0, []byte("srv"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return []byte("ok"), nil })

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := k.CreateProcess(0, []byte(fmt.Sprintf("worker%d", id)))
			if err != nil {
				t.Error(err)
				return
			}
			obj := fmt.Sprintf("obj%d", id%4)
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					k.SetGoal(srv, "read", obj, nal.MustParse("?S says wantsAccess"), nil)
				case 1:
					cred := nal.Says{P: p.Prin, F: nal.Pred{Name: "wantsAccess"}}
					k.SetProof(p, "read", obj, nil, []Credential{{Inline: cred}})
				case 2:
					if _, err := p.Labels.Say("ready"); err != nil {
						t.Error(err)
					}
				default:
					// Calls may be allowed or denied depending on the
					// racing goal updates; they must never corrupt state.
					k.Call(p, pt.ID, &Msg{Op: "read", Obj: obj})
				}
			}
			p.Exit()
		}(w)
	}
	wg.Wait()
}

// TestConcurrentAuthoritiesAndInterposition exercises authority queries
// against interposition changes.
func TestConcurrentAuthoritiesAndInterposition(t *testing.T) {
	k := bootKernel(t)
	ap, _ := k.CreateProcess(0, []byte("authority"))
	a, err := k.RegisterAuthority(ap, func(nal.Formula) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := k.CreateProcess(0, []byte("mon"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%10 == 0 {
					if id, err := k.Interpose(mon, a.PortID(), FuncMonitor{}); err == nil {
						k.Deinterpose(mon, a.PortID(), id)
					}
				}
				if _, err := k.QueryAuthority(a.Channel(), nal.TrueF{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentDecisionCacheStress hammers one DecisionCache from 8
// goroutines mixing lookups, inserts, entry and subregion invalidations,
// and enable/disable flips. Run with -race. After quiescence the statistics
// must be consistent: lookups == hits + misses.
func TestConcurrentDecisionCacheStress(t *testing.T) {
	c := NewDecisionCache(8)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			subj := fmt.Sprintf("subj%d", id)
			for i := 0; i < 500; i++ {
				obj := fmt.Sprintf("obj%d", i%16)
				switch i % 7 {
				case 0:
					c.Insert(subj, "read", obj, i%2 == 0)
				case 1:
					c.InvalidateEntry(subj, "read", obj)
				case 2:
					c.InvalidateRegion("read", obj)
				case 3:
					if id == 0 {
						c.Disable()
						c.Enable()
					} else {
						c.Lookup(subj, "read", obj)
					}
				default:
					c.Lookup(subj, "read", obj)
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("stats inconsistent: lookups=%d hits=%d misses=%d", s.Lookups, s.Hits, s.Misses)
	}
	if s.Lookups == 0 {
		t.Error("stress produced no lookups")
	}
	if c.Len() < 0 {
		t.Error("negative cache length")
	}
}

// TestConcurrentGoalUpdatesAndCalls interleaves setgoal invalidations (each
// clearing one decision-cache subregion) with authorized calls touching
// other subregions; the sharded cache must never corrupt state or deadlock.
func TestConcurrentGoalUpdatesAndCalls(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	srv, _ := k.CreateProcess(0, []byte("srv"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return []byte("ok"), nil })

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := k.CreateProcess(0, []byte(fmt.Sprintf("w%d", id)))
			if err != nil {
				t.Error(err)
				return
			}
			obj := fmt.Sprintf("obj%d", id%4)
			for i := 0; i < 250; i++ {
				if i%25 == 0 {
					k.SetGoal(srv, "read", obj, nal.TrueF{}, nil)
				}
				k.Call(p, pt.ID, &Msg{Op: "read", Obj: obj})
			}
			p.Exit()
		}(w)
	}
	wg.Wait()

	s := k.DCache().StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("stats inconsistent after goal churn: %+v", s)
	}
}

// TestConcurrentLabelstoreTransfer moves labels between stores from many
// goroutines.
func TestConcurrentLabelstoreTransfer(t *testing.T) {
	k := bootKernel(t)
	a, _ := k.CreateProcess(0, []byte("a"))
	b, _ := k.CreateProcess(0, []byte("b"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l, err := a.Labels.Say("ready")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := a.Labels.Transfer(l.Handle, b.Labels); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.Labels.Len() != 400 {
		t.Errorf("transferred labels = %d, want 400", b.Labels.Len())
	}
}

package kernel

import "errors"

// ErrBadHandle is returned for capability handles that were never issued to
// the calling process, were closed, or outlived their referent.
var ErrBadHandle = errors.New("kernel: bad capability handle")

// ErrCanceled is returned when a context expires before (or while) a
// submission is processed.
var ErrCanceled = errors.New("kernel: operation canceled")

// ErrTimeout is returned when a transport dial, handshake, or I/O
// operation exceeds its configured deadline.
var ErrTimeout = errors.New("kernel: operation timed out")

// ErrAgain is returned when a bounded resource (the per-connection
// in-flight window) is momentarily exhausted; the operation is safe to
// retry once earlier work completes.
var ErrAgain = errors.New("kernel: resource temporarily unavailable")

// Errno is the structured error class of the user↔kernel ABI. Every error
// that crosses the kernel boundary through the Session API carries exactly
// one Errno, so user code can switch on the class instead of matching
// message strings.
type Errno uint8

// The errno taxonomy. Each value maps onto one legacy sentinel error (see
// Error.Is), so errors.Is(err, ErrDenied) and friends keep working on
// errors produced by the typed path.
const (
	EOK        Errno = iota // no error (never carried by an *Error)
	EINVAL                  // malformed argument            ↔ ErrBadArgument
	ESRCH                   // no such process               ↔ ErrNoSuchProcess
	ENOENT                  // no such port or object        ↔ ErrNoSuchPort
	EBADF                   // bad/stale capability handle   ↔ ErrBadHandle
	EACCES                  // authorization denied          ↔ ErrDenied
	ENOGUARD                // goal set but no guard bound   ↔ ErrNoGuard
	EINTEGRITY              // boot integrity failure        ↔ ErrBootIntegrity
	ENOLABEL                // stale or foreign label handle ↔ ErrNoSuchLabel
	ENOAUTH                 // no such authority channel     ↔ ErrNoSuchAuthority
	ECANCELED               // context canceled mid-batch    ↔ ErrCanceled
	ETIMEDOUT               // transport deadline exceeded   ↔ ErrTimeout
	EAGAIN                  // bounded resource exhausted    ↔ ErrAgain
)

// errnoNames are the canonical render of each errno class.
var errnoNames = [...]string{
	EOK:        "EOK",
	EINVAL:     "EINVAL",
	ESRCH:      "ESRCH",
	ENOENT:     "ENOENT",
	EBADF:      "EBADF",
	EACCES:     "EACCES",
	ENOGUARD:   "ENOGUARD",
	EINTEGRITY: "EINTEGRITY",
	ENOLABEL:   "ENOLABEL",
	ENOAUTH:    "ENOAUTH",
	ECANCELED:  "ECANCELED",
	ETIMEDOUT:  "ETIMEDOUT",
	EAGAIN:     "EAGAIN",
}

// String renders the errno name.
func (e Errno) String() string {
	if int(e) < len(errnoNames) {
		return errnoNames[e]
	}
	return "E?"
}

// sentinel returns the legacy sentinel error this class maps onto.
func (e Errno) sentinel() error {
	switch e {
	case EINVAL:
		return ErrBadArgument
	case ESRCH:
		return ErrNoSuchProcess
	case ENOENT:
		return ErrNoSuchPort
	case EBADF:
		return ErrBadHandle
	case EACCES:
		return ErrDenied
	case ENOGUARD:
		return ErrNoGuard
	case EINTEGRITY:
		return ErrBootIntegrity
	case ENOLABEL:
		return ErrNoSuchLabel
	case ENOAUTH:
		return ErrNoSuchAuthority
	case ECANCELED:
		return ErrCanceled
	case ETIMEDOUT:
		return ErrTimeout
	case EAGAIN:
		return ErrAgain
	}
	return nil
}

// Error is the structured error of the ABI: an errno class, the operation
// that failed, and a human-oriented detail. It unwraps to the legacy
// sentinel of its class, so pre-Session call sites that test with
// errors.Is(err, kernel.ErrDenied) observe no change.
type Error struct {
	Errno  Errno
	Op     string // the kernel entry or IPC operation that failed
	Detail string
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := "kernel: " + e.Errno.String()
	if e.Op != "" {
		s += " (" + e.Op + ")"
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Unwrap exposes the legacy sentinel so errors.Is keeps matching.
func (e *Error) Unwrap() error { return e.Errno.sentinel() }

// Is reports class equality: two ABI errors are "the same" when their
// errnos agree, whatever the detail text.
func (e *Error) Is(target error) bool {
	if t, ok := target.(*Error); ok {
		return t.Errno == e.Errno
	}
	return false
}

// abiErr builds a typed ABI error. It allocates, deliberately: error
// construction is off the warm path by definition.
//
//nexus:alloc-ok
func abiErr(errno Errno, op, detail string) *Error {
	return &Error{Errno: errno, Op: op, Detail: detail}
}

// ErrnoOf extracts the errno class from any error reaching user code: typed
// ABI errors report their class directly, legacy sentinels map onto their
// class, and anything else (handler-level errors passed through verbatim)
// reports EOK, meaning "not a kernel ABI failure".
func ErrnoOf(err error) Errno {
	var e *Error
	if errors.As(err, &e) {
		return e.Errno
	}
	for class := EINVAL; class <= EAGAIN; class++ {
		if s := class.sentinel(); s != nil && errors.Is(err, s) {
			return class
		}
	}
	return EOK
}

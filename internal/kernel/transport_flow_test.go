package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// bootK boots a kernel for the internal transport tests, failing the test
// on platform error.
func bootK(t *testing.T) *Kernel {
	t.Helper()
	k := bootKernelRaw()
	if k == nil {
		t.Fatal("kernel boot failed")
	}
	return k
}

// rawPair boots two nodes with the given configs, serves store over a
// loopback transport, and returns an attested raw connection (handshake
// completed, frames under test control) plus the dialing node's Peer.
func rawPair(t *testing.T, cfgFront, cfgStore TransportConfig) (Conn, *Peer, *Node, *Node) {
	t.Helper()
	front, store := bootK(t), bootK(t)
	nStore := NewNodeWithConfig(store, cfgStore)
	lt := NewLoopbackTransport()
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := NewNodeWithConfig(front, cfgFront)
	c, err := lt.Dial("store")
	if err != nil {
		t.Fatal(err)
	}
	p, err := nFront.handshakeClient(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		nFront.Close()
		nStore.Close()
	})
	return c, p, nFront, nStore
}

// rawSubmit frames a minimal fSubmit carrying only a request id: the server
// answers it with an fErr frame echoing the id (truncated body), which makes
// it a one-frame request/response probe that needs no exports or sessions.
func rawSubmit(id uint64) []byte {
	return binary.AppendUvarint([]byte{fSubmit}, id)
}

// recvResp reads the next non-credit frame and returns the echoed request
// id, skipping the server's interleaved fCredit grants.
func recvResp(t *testing.T, c Conn) (uint64, error) {
	t.Helper()
	for {
		resp, err := c.Recv()
		if err != nil {
			return 0, err
		}
		if len(resp) >= 1 && resp[0] == fCredit {
			continue
		}
		if len(resp) < 2 || resp[0] != fErr {
			t.Fatalf("unexpected response frame type %d", resp[0])
		}
		id, n := binary.Uvarint(resp[1:])
		if n <= 0 {
			t.Fatal("response without request id")
		}
		return id, nil
	}
}

// TestTransportConfigDefaults pins the resolved defaults and the
// maxRecvWindow clamp.
func TestTransportConfigDefaults(t *testing.T) {
	c := TransportConfig{}.withDefaults()
	if want := max(2, runtime.GOMAXPROCS(0)); c.Workers != want {
		t.Fatalf("Workers default %d, want %d", c.Workers, want)
	}
	if c.MaxInflight != DefaultMaxInflight || c.RecvWindow != DefaultRecvWindow ||
		c.MaxConns != DefaultMaxConns || c.ReattestCap != DefaultReattestCap {
		t.Fatalf("defaults not resolved: %+v", c)
	}
	over := TransportConfig{RecvWindow: maxRecvWindow + 100}.withDefaults()
	if over.RecvWindow != maxRecvWindow {
		t.Fatalf("RecvWindow %d not clamped to %d", over.RecvWindow, maxRecvWindow)
	}
	if keep := (TransportConfig{Workers: 7, MaxInflight: 3, RecvWindow: 5, MaxConns: 9, ReattestCap: 2}).withDefaults(); keep != (TransportConfig{Workers: 7, MaxInflight: 3, RecvWindow: 5, MaxConns: 9, ReattestCap: 2}) {
		t.Fatalf("explicit config not preserved: %+v", keep)
	}
}

// TestLRUTable pins the re-attestation table semantics: capacity bound,
// LRU eviction order, and recency refresh on get.
func TestLRUTable(t *testing.T) {
	lru := newLRUTable[int](2)
	lru.put("a", 1)
	lru.put("b", 2)
	lru.get("a") // refresh: b is now least recently used
	lru.put("c", 3)
	if _, ok := lru.get("b"); ok {
		t.Fatal("LRU evicted the recently-used entry instead of the stale one")
	}
	if v, ok := lru.get("a"); !ok || v != 1 {
		t.Fatal("refreshed entry evicted")
	}
	if v, ok := lru.get("c"); !ok || v != 3 {
		t.Fatal("newest entry missing")
	}
	if lru.len() != 2 {
		t.Fatalf("table len %d, want 2", lru.len())
	}
	lru.remove("a")
	if _, ok := lru.get("a"); ok || lru.len() != 1 {
		t.Fatal("remove did not drop the entry")
	}
}

// TestSlowConsumerBackpressure drives a raw client that advertises a
// 4-frame receive window against a server with an 8-frame window: the
// server must park requests beyond the client's window in a bounded
// backlog, resume exactly on credit, preserve FIFO order across parking —
// and poison the connection when the client overruns the advertised
// window.
func TestSlowConsumerBackpressure(t *testing.T) { testSlowConsumerBackpressure(t) }

func testSlowConsumerBackpressure(t *testing.T) {
	const cliWin, srvWin = 4, 8
	c, _, _, _ := rawPair(t,
		TransportConfig{RecvWindow: cliWin},
		TransportConfig{RecvWindow: srvWin})

	// Phase 1: fill the client window. The server answers all 4 (its
	// response credits started at our advertised window), then parks.
	next := uint64(1)
	for i := 0; i < cliWin; i++ {
		if err := c.Send(rawSubmit(next + uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cliWin; i++ {
		id, err := recvResp(t, c)
		if err != nil {
			t.Fatal(err)
		}
		if id != next+uint64(i) {
			t.Fatalf("response id %d, want %d (FIFO violated)", id, next+uint64(i))
		}
	}
	next += cliWin

	// Phase 2: send a full server window of requests without reading.
	// All srvWin frames must park (respCredits are exhausted — we never
	// returned any), then drain in order as credits arrive.
	for i := 0; i < srvWin; i++ {
		if err := c.Send(rawSubmit(next + uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for drained := 0; drained < srvWin; drained += cliWin {
		cf := binary.AppendUvarint([]byte{fCredit}, cliWin)
		if err := c.Send(cf); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cliWin; i++ {
			id, err := recvResp(t, c)
			if err != nil {
				t.Fatal(err)
			}
			if want := next + uint64(drained+i); id != want {
				t.Fatalf("parked response id %d, want %d (FIFO violated)", id, want)
			}
		}
	}
	next += srvWin

	// Phase 3: overrun. With zero response credits outstanding, srvWin
	// frames park legally; one more exceeds the advertised window and must
	// poison the connection — a protocol violation, not a silent drop.
	for i := 0; i <= srvWin; i++ {
		if err := c.Send(rawSubmit(next + uint64(i))); err != nil {
			return // connection already torn down: also a pass
		}
	}
	if _, err := recvResp(t, c); err == nil {
		t.Fatal("server answered past the advertised window instead of poisoning the connection")
	}
}

// TestHostileCreditClampServer sends a maximal credit grant to the server:
// the clamp must pin its response window at the client's advertised window,
// so a subsequent flood still parks and the overrun still poisons — the
// hostile grant must not unblock the stream past its window.
func TestHostileCreditClampServer(t *testing.T) { testHostileCreditClampServer(t) }

func testHostileCreditClampServer(t *testing.T) {
	const cliWin, srvWin = 4, 8
	c, _, _, _ := rawPair(t,
		TransportConfig{RecvWindow: cliWin},
		TransportConfig{RecvWindow: srvWin})

	huge := binary.AppendUvarint([]byte{fCredit}, ^uint64(0))
	if err := c.Send(huge); err != nil {
		t.Fatal(err)
	}
	// Flood: cliWin answerable + srvWin parked + 1 overrun. If the clamp
	// failed, the huge grant would let the server answer everything and
	// the connection would survive.
	total := cliWin + srvWin + 1
	for i := 0; i < total; i++ {
		if err := c.Send(rawSubmit(uint64(i + 1))); err != nil {
			break
		}
	}
	got := 0
	for {
		if _, err := recvResp(t, c); err != nil {
			break
		}
		got++
		if got > cliWin {
			break
		}
	}
	if got != cliWin {
		t.Fatalf("server answered %d frames after hostile credit, want exactly %d (window clamp)", got, cliWin)
	}
}

// TestHostileCreditClampClient forges oversized server grants into the
// peer's demux entry point: reqCredits must clamp at the server's
// advertised window.
func TestHostileCreditClampClient(t *testing.T) { testHostileCreditClampClient(t) }

func testHostileCreditClampClient(t *testing.T) {
	const cliWin, srvWin = 4, 8
	_, p, _, _ := rawPair(t,
		TransportConfig{RecvWindow: cliWin},
		TransportConfig{RecvWindow: srvWin})

	// Consume two credits so the clamp has something to restore past.
	id1, _, err := p.begin("probe")
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := p.begin("probe")
	if err != nil {
		t.Fatal(err)
	}
	forged := binary.AppendUvarint([]byte{fCredit}, 1<<40)
	if !p.onFrame(forged, &netArena{}) {
		t.Fatal("well-formed credit frame poisoned the connection")
	}
	p.pendMu.Lock()
	got := p.reqCredits
	p.pendMu.Unlock()
	if got != srvWin {
		t.Fatalf("reqCredits %d after hostile grant, want clamp at srvWin %d", got, srvWin)
	}
	// Malformed credit (torn uvarint) must poison.
	if p.onFrame([]byte{fCredit, 0x80}, &netArena{}) {
		t.Fatal("malformed credit frame accepted")
	}
	p.abort(id1)
	p.abort(id2)
}

// TestReattestTableBounded bounds the warm re-attestation tables: with the
// server's table capped at 2, a third label evicts the first, and a warm
// re-transfer of the evicted label must fall back to the cold path (full
// certificate) transparently — an eviction costs one re-crossing, never an
// error.
func TestReattestTableBounded(t *testing.T) { testReattestTableBounded(t) }

func testReattestTableBounded(t *testing.T) {
	front, store := bootK(t), bootK(t)
	nStore := NewNodeWithConfig(store, TransportConfig{ReattestCap: 2})
	lt := NewLoopbackTransport()
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := NewNode(front)
	peer, err := nFront.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		nFront.Close()
		nStore.Close()
	}()

	cli, err := front.NewSession([]byte("reattest-cli"))
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]*Label, 3)
	for i := range labels {
		lbl, err := cli.Say(fmt.Sprintf("stmt-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		labels[i] = lbl
		if _, err := cli.TransferLabelRemote(peer, lbl.Handle); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	// The client still remembers label 0 as attested; the server's
	// 2-entry table evicted it. The warm attempt is denied and must
	// silently re-cross cold.
	peer.sendMu.Lock()
	warm := peer.attested.len()
	peer.sendMu.Unlock()
	if warm != 3 {
		t.Fatalf("client attested table has %d entries, want 3", warm)
	}
	if _, err := cli.TransferLabelRemote(peer, labels[0].Handle); err != nil {
		t.Fatalf("re-transfer of evicted label: %v", err)
	}
	// And a bounded client: cap 2 on the dialing side keeps the client
	// table at 2 across 3 transfers.
	nFront2 := NewNodeWithConfig(front, TransportConfig{ReattestCap: 2})
	peer2, err := nFront2.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}
	defer nFront2.Close()
	for _, lbl := range labels {
		if _, err := cli.TransferLabelRemote(peer2, lbl.Handle); err != nil {
			t.Fatal(err)
		}
	}
	peer2.sendMu.Lock()
	n := peer2.attested.len()
	peer2.sendMu.Unlock()
	if n != 2 {
		t.Fatalf("capped client attested table has %d entries, want 2", n)
	}
}

// TestShedLoad caps the server at one connection: the second dial must be
// rejected gracefully — accepted, answered with a typed EAGAIN, closed —
// counted in the shed metric, and the slot must free on disconnect.
func TestShedLoad(t *testing.T) {
	front, store := bootK(t), bootK(t)
	nStore := NewNodeWithConfig(store, TransportConfig{MaxConns: 1})
	lt := NewLoopbackTransport()
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := NewNode(front)
	defer func() {
		nFront.Close()
		nStore.Close()
	}()

	p1, err := nFront.Dial(lt, "store")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nFront.Dial(lt, "store"); !errors.Is(err, ErrAgain) {
		t.Fatalf("over-capacity dial: got %v, want EAGAIN", err)
	}
	if n := store.Metrics().NetShedRejects; n < 1 {
		t.Fatalf("NetShedRejects %d, want >= 1", n)
	}
	// Freeing the slot re-admits: teardown is asynchronous, so poll.
	p1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p2, err := nFront.Dial(lt, "store")
		if err == nil {
			p2.Close()
			break
		}
		if !errors.Is(err, ErrAgain) {
			t.Fatalf("redial after close: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("connection slot never freed after peer close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTransportGoroutineFootprint is the tentpole's scaling gate: 1024
// established idle connections must cost O(worker-pool) goroutines, not
// O(connections) — connections are scheduler state, not stacks.
func TestTransportGoroutineFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("1024 handshakes")
	}
	const numConns = 1024
	front, store := bootK(t), bootK(t)
	baseline := settledGoroutines(0)

	nStore := NewNode(store)
	lt := NewLoopbackTransport()
	l, err := lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(l)
	nFront := NewNode(front)

	peers := make([]*Peer, 0, numConns)
	for i := 0; i < numConns; i++ {
		p, err := nFront.Dial(lt, "store")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		peers = append(peers, p)
	}
	if n := store.Metrics().NetLiveConns; n != numConns {
		t.Fatalf("store NetLiveConns %d, want %d", n, numConns)
	}

	// O(workers), not O(conns): both nodes' pools plus a constant.
	idle := settledGoroutines(baseline + 32)
	if idle-baseline > 32 {
		t.Fatalf("%d goroutines for %d idle connections (baseline %d): footprint is O(connections)",
			idle-baseline, numConns, baseline)
	}

	// Liveness: connections picked from both ends of the dial order still
	// serve round-trips (an unknown service is a full exchange).
	for _, p := range []*Peer{peers[0], peers[numConns-1]} {
		if _, err := p.connect(1, "no-such-service"); err == nil {
			t.Fatal("connect to unknown service succeeded")
		} else if errors.Is(err, ErrTransportClosed) {
			t.Fatalf("idle connection dead: %v", err)
		}
	}

	nFront.Close()
	nStore.Close()
	after := settledGoroutines(baseline)
	if after > baseline+4 {
		t.Fatalf("%d goroutines after close, baseline %d: connection teardown leaks", after, baseline)
	}
}

// settledGoroutines samples runtime.NumGoroutine until it stops falling or
// reaches target, giving asynchronous teardown time to complete.
func settledGoroutines(target int) int {
	last := runtime.NumGoroutine()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if target > 0 && last <= target {
			return last
		}
		time.Sleep(20 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= last && target <= 0 {
			return n
		}
		last = n
	}
	return last
}

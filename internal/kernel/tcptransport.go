package kernel

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
)

// TCPTransport is the wire-level transport backend: frames are
// length-prefixed (4-byte little-endian) over a TCP stream. The zero value
// is ready to use. The attestation-plane handshake provides identity and
// proof of key possession; the stream itself is neither encrypted nor
// authenticated per-frame, which matches the paper's trust model — labels
// are self-authenticating certificates — but means deployments that fear
// active on-path attackers should run it inside an authenticated tunnel.
type TCPTransport struct{}

// Listen binds a TCP address (e.g. "127.0.0.1:0").
func (TCPTransport) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a listening node.
func (TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c}, nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	lenBuf  [4]byte
	rlenBuf [4]byte
}

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > maxNetFrame {
		return errors.New("kernel: frame exceeds maximum size")
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.LittleEndian.PutUint32(t.lenBuf[:], uint32(len(frame)))
	if _, err := t.c.Write(t.lenBuf[:]); err != nil {
		return err
	}
	_, err := t.c.Write(frame)
	return err
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if _, err := io.ReadFull(t.c, t.rlenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(t.rlenBuf[:])
	if n > maxNetFrame {
		return nil, errors.New("kernel: inbound frame exceeds maximum size")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.c, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

package kernel

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport is the wire-level transport backend: frames are
// length-prefixed (4-byte little-endian) over a TCP stream. The zero value
// is ready to use with default timeouts. The attestation-plane handshake
// provides identity and proof of key possession; the stream itself is
// neither encrypted nor authenticated per-frame, which matches the paper's
// trust model — labels are self-authenticating certificates — but means
// deployments that fear active on-path attackers should run it inside an
// authenticated tunnel.
//
// Timeouts: without them, a peer that accepts the TCP connection and then
// goes silent wedges Dial (and with it Session.Connect) forever. Expired
// deadlines surface as ETIMEDOUT through the errno taxonomy, so callers
// can distinguish "peer is slow or gone" from a protocol failure.
type TCPTransport struct {
	// DialTimeout bounds TCP connection establishment. Zero selects the
	// default (5s); negative disables the bound.
	DialTimeout time.Duration
	// HandshakeTimeout bounds the attestation handshake on a fresh
	// connection (both roles). Zero selects the default (10s); negative
	// disables the bound.
	HandshakeTimeout time.Duration
	// IOTimeout bounds each post-handshake Send/Recv. Zero means no bound
	// — peer connections are long-lived and idle between requests, so a
	// blanket I/O deadline would reap healthy idle peers; set it only when
	// the caller owns the request cadence.
	IOTimeout time.Duration
}

// Default transport deadlines (see TCPTransport).
const (
	DefaultDialTimeout      = 5 * time.Second
	DefaultHandshakeTimeout = 10 * time.Second
)

// dialTimeout resolves the configured dial bound.
func (t TCPTransport) dialTimeout() time.Duration {
	if t.DialTimeout == 0 {
		return DefaultDialTimeout
	}
	if t.DialTimeout < 0 {
		return 0
	}
	return t.DialTimeout
}

// handshakeTimeout resolves the configured handshake bound.
func (t TCPTransport) handshakeTimeout() time.Duration {
	if t.HandshakeTimeout == 0 {
		return DefaultHandshakeTimeout
	}
	if t.HandshakeTimeout < 0 {
		return 0
	}
	return t.HandshakeTimeout
}

// Listen binds a TCP address (e.g. "127.0.0.1:0").
func (t TCPTransport) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l, cfg: t}, nil
}

// Dial connects to a listening node, bounded by DialTimeout.
func (t TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, t.dialTimeout())
	if err != nil {
		return nil, tcpErr("dial", err)
	}
	return &tcpConn{c: c, cfg: t}, nil
}

type tcpListener struct {
	l   net.Listener
	cfg TCPTransport
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c, cfg: t.cfg}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct {
	c       net.Conn
	cfg     TCPTransport
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	lenBuf  [4]byte
	rlenBuf [4]byte
	// vec is the reusable writev vector: header and frame go to the kernel
	// in one writev call instead of two Writes (two syscalls and, with
	// Nagle off, two packets for every frame).
	vec [2][]byte
}

// tcpErr classifies transport errors: expired deadlines become typed
// ETIMEDOUT errors (unwrapping to ErrTimeout), everything else passes
// through.
func tcpErr(op string, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return abiErr(ETIMEDOUT, op, err.Error())
	}
	return err
}

// SetDeadline bounds every pending and future I/O on the connection; the
// node's handshake uses it (via the connDeadline interface) to bound the
// attestation exchange.
func (t *tcpConn) SetDeadline(d time.Time) error { return t.c.SetDeadline(d) }

// HandshakeTimeout reports the configured handshake bound to the node
// layer (connDeadline interface).
func (t *tcpConn) HandshakeTimeout() time.Duration { return t.cfg.handshakeTimeout() }

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > maxNetFrame {
		return errors.New("kernel: frame exceeds maximum size")
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if d := t.cfg.IOTimeout; d > 0 {
		if err := t.c.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(t.lenBuf[:], uint32(len(frame)))
	t.vec[0] = t.lenBuf[:]
	t.vec[1] = frame
	bufs := net.Buffers(t.vec[:])
	if _, err := bufs.WriteTo(t.c); err != nil {
		return tcpErr("send", err)
	}
	return nil
}

// SendRaw writes a run of already-length-prefixed frames in one Write —
// the egress combiner's contiguous-mode flush (rawWriter interface). The
// caller owns the framing; this is a single ordered write on the stream,
// serialized with Send under the same lock.
func (t *tcpConn) SendRaw(p []byte) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if d := t.cfg.IOTimeout; d > 0 {
		if err := t.c.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
	}
	if _, err := t.c.Write(p); err != nil {
		return tcpErr("send", err)
	}
	return nil
}

// Recv blocks for one frame. Post-handshake ingress does not come through
// here on Linux: the event runtime's epoll source (netpoll_linux.go) reads
// the socket directly, bypassing recvMu — safe because blocking Recv is
// only used during the handshake, strictly before the connection is
// registered with the scheduler.
func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if d := t.cfg.IOTimeout; d > 0 {
		if err := t.c.SetReadDeadline(time.Now().Add(d)); err != nil {
			return nil, err
		}
	}
	if _, err := io.ReadFull(t.c, t.rlenBuf[:]); err != nil {
		return nil, tcpErr("recv", err)
	}
	n := binary.LittleEndian.Uint32(t.rlenBuf[:])
	if n > maxNetFrame {
		return nil, errors.New("kernel: inbound frame exceeds maximum size")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(t.c, buf); err != nil {
		return nil, tcpErr("recv", err)
	}
	return buf, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

package kernel

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
)

// Sub is one submission-queue entry: an operation on an object, addressed
// through a capability handle. Port and channel handles dispatch to the
// port's handler; object handles dispatch as authorization-checked null
// system calls on the named object (Obj is ignored for those — the handle
// carries the name).
type Sub struct {
	Cap  Cap
	Op   string
	Obj  string
	Args [][]byte
	// Tag is copied verbatim into the matching Completion, io_uring-style,
	// so callers can correlate out of a reused completion slice.
	Tag uint64
}

// Completion is the result of one submitted operation.
type Completion struct {
	Tag uint64
	Out []byte
	Err error
}

// wireArenas pools the per-submission marshal arenas: with interposition
// enabled every operation's wire copy is appended into one arena instead of
// allocating per call, which is where the batch path's per-op advantage
// over Call comes from.
var wireArenas = sync.Pool{New: func() any { return new([]byte) }}

// arenaKeepCap bounds the arena size returned to the pool so one huge batch
// cannot pin memory forever.
const arenaKeepCap = 64 << 10

// Submit pushes a batch of operations through one kernel entry: the toggle
// word is loaded once, handles resolve through the session's table (with a
// one-entry memo for runs against the same target), each operation is
// authorized independently — batching amortizes marshaling and scheduling,
// never the per-op policy check — and marshaling for interposition shares
// one pooled arena across the batch.
//
// comps is the completion queue: if it has capacity for the batch it is
// reused (a steady-state caller allocates nothing); otherwise a fresh slice
// is returned. Per-op failures land in the matching Completion.Err and do
// not stop the batch. The error return is reserved for submission-level
// failures (context cancellation); completions for operations not yet run
// carry ECANCELED.
//
// Out buffers and errors in completions are owned by the caller; the wire
// copies shown to monitors during the batch are not valid afterwards. A nil
// ctx disables cancellation.
//
// The per-op loop is allocation-free once comps and the wire arenas are
// warm (pinned by TestAllocBatchedSubmitWarm).
//
//nexus:noalloc
func (s *Session) Submit(ctx context.Context, subs []Sub, comps []Completion) ([]Completion, error) {
	if cap(comps) >= len(subs) {
		comps = comps[:len(subs)]
	} else {
		comps = make([]Completion, len(subs)) //nexus:coldpath — grow once; steady state reuses the caller's slice
	}
	k := s.k
	flags := k.flags.Load()

	var arena *[]byte
	if flags&flagInterp != 0 {
		arena = wireArenas.Get().(*[]byte)
		*arena = (*arena)[:0]
	}

	// One-entry resolve memo: batches overwhelmingly target one port.
	var memoCap Cap
	var memoPort *Port
	var memoObj string
	var memoOK bool

	var m Msg
	canceled := false
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for i := range subs {
		sub := &subs[i]
		comps[i] = Completion{Tag: sub.Tag}
		if canceled {
			comps[i].Err = abiErr(ECANCELED, sub.Op, "batch canceled")
			continue
		}
		if done != nil {
			select {
			case <-done:
				canceled = true
				comps[i].Err = abiErr(ECANCELED, sub.Op, ctx.Err().Error())
				continue
			default:
			}
		}

		pt, obj := memoPort, memoObj
		if sub.Cap != memoCap || !memoOK {
			var aerr *Error
			pt, obj, aerr = s.resolve(sub.Cap)
			if aerr != nil {
				comps[i].Err = aerr
				memoOK = false
				continue
			}
			memoCap, memoPort, memoObj, memoOK = sub.Cap, pt, obj, true
		}

		m = Msg{Op: sub.Op, Obj: sub.Obj, Args: sub.Args}
		if pt == nil {
			// Object handle: authorization-checked null syscall on the
			// object named by the handle.
			m.Obj = obj
			_, err := k.dispatchFlags(flags, s.p, nil, &m, nullHandler, arena)
			comps[i].Err = err
			continue
		}
		out, err := k.dispatchFlags(flags, s.p, pt, &m, pt.h, arena)
		comps[i].Out, comps[i].Err = out, err
	}

	if arena != nil {
		if cap(*arena) <= arenaKeepCap {
			wireArenas.Put(arena)
		}
	}
	if canceled {
		return comps, abiErr(ECANCELED, "submit", "context canceled mid-batch")
	}
	return comps, nil
}

// nullHandler is the invoke body for object-handle submissions.
var nullHandler Handler = func(Caller, *Msg) ([]byte, error) { return nil, nil }

// SubmitAsync runs Submit on a fresh goroutine and delivers the completion
// queue on the returned channel — the asynchronous half of the SQ/CQ model:
// the submitter keeps running while the kernel drains the batch.
func (s *Session) SubmitAsync(ctx context.Context, subs []Sub) <-chan []Completion {
	ch := make(chan []Completion, 1)
	go func() {
		comps, _ := s.Submit(ctx, subs, nil)
		ch <- comps
	}()
	return ch
}

// SubQueue is a reusable submission/completion queue bound to a session:
// Push stages operations, Flush submits them as one batch and returns the
// completions. Both slices are retained and reused across flushes, so a
// steady-state Push/Flush loop performs no allocation beyond what the
// handlers themselves do. Not safe for concurrent use; create one queue per
// submitting goroutine.
type SubQueue struct {
	s     *Session
	subs  []Sub
	comps []Completion
}

// NewQueue creates a submission queue with capacity for depth staged
// operations (it grows beyond that transparently).
func (s *Session) NewQueue(depth int) *SubQueue {
	if depth < 1 {
		depth = 1
	}
	return &SubQueue{
		s:     s,
		subs:  make([]Sub, 0, depth),
		comps: make([]Completion, 0, depth),
	}
}

// Push stages one operation.
func (q *SubQueue) Push(sub Sub) { q.subs = append(q.subs, sub) }

// Depth reports the number of staged operations.
func (q *SubQueue) Depth() int { return len(q.subs) }

// Flush submits the staged batch and returns the completion queue, valid
// until the next Flush.
func (q *SubQueue) Flush(ctx context.Context) []Completion {
	comps, _ := q.s.Submit(ctx, q.subs, q.comps[:0])
	q.comps = comps
	q.subs = q.subs[:0]
	return comps
}

// ---- Batch wire format -------------------------------------------------

// The batch wire format frames N messages of the single-message format:
//
//	uint32 count | count × ( uint32 len | message bytes )
//
// It is what a remote submission path would ship and what user-level
// monitors see reassembled; FuzzBatchWire holds decode ∘ encode = id.

// MarshalBatch encodes a batch of messages into one buffer.
func MarshalBatch(msgs []*Msg) []byte {
	n := 4
	for _, m := range msgs {
		n += 4 + msgWireSize(m)
	}
	buf := make([]byte, 0, n)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(msgs)))
	buf = append(buf, l[:]...)
	for _, m := range msgs {
		binary.LittleEndian.PutUint32(l[:], uint32(msgWireSize(m)))
		buf = append(buf, l[:]...)
		buf = appendMsgWire(buf, m)
	}
	return buf
}

// UnmarshalBatch decodes a batch-framed buffer. Decoding arbitrary bytes
// never panics; accepted input round-trips byte-for-byte. Malformed input
// is an EINVAL-classed ABI error, never a raw string.
//
//nexus:errno
func UnmarshalBatch(buf []byte) ([]*Msg, error) {
	if len(buf) < 4 {
		return nil, abiErr(EINVAL, "batch", "truncated batch header")
	}
	count := binary.LittleEndian.Uint32(buf[:4])
	buf = buf[4:]
	// Each message costs at least 8 bytes on the wire; reject absurd counts
	// before allocating.
	if uint64(count)*8 > uint64(len(buf)) {
		return nil, abiErr(EINVAL, "batch", fmt.Sprintf("count %d exceeds buffer", count))
	}
	msgs := make([]*Msg, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf) < 4 {
			return nil, abiErr(EINVAL, "batch", "truncated frame header")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return nil, abiErr(EINVAL, "batch", "truncated frame body")
		}
		m, err := unmarshalMsg(buf[:n])
		if err != nil {
			return nil, err
		}
		// The inner frame must be the message's canonical length, or
		// re-encoding would not reproduce the input.
		if int(n) != msgWireSize(m) {
			return nil, abiErr(EINVAL, "batch", fmt.Sprintf("frame length %d not canonical", n))
		}
		msgs = append(msgs, m)
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return nil, abiErr(EINVAL, "batch", fmt.Sprintf("%d trailing bytes", len(buf)))
	}
	return msgs, nil
}

package kernel

import "encoding/binary"

// Inter-kernel frame vocabulary. A frame is one type byte followed by a
// type-specific payload built from three primitives: uvarints,
// length-prefixed byte strings, and nested wire forms (nal codec messages,
// cert wire certificates). Frames are self-delimiting; the transport below
// them provides reliable, ordered, framed delivery and nothing else.
//
// After the three-message handshake (hello, hello-ok, hello-ack) the
// connection is pipelined: every request and response frame carries a
// uvarint request id immediately after the type byte. The dialing side may
// have many requests in flight (bounded by the in-flight window); the
// accepting side processes requests strictly in arrival order and answers
// each with exactly one response frame — the matching *OK type or fErr —
// echoing the request's id. Server-side FIFO processing is what makes the
// ordering semantics of interleaved remote operations identical to the
// lockstep protocol: requests take effect in send order, only the waiting
// overlaps. fCredit frames are the one exception to the id scheme: they
// carry no request id, flow in both directions, and are consumed by the
// transport layer itself (see transport.go's flow-control section).
const (
	fHello    byte = 1  // version, bootID, NK pub, endorsement cert, nonce, eph X25519 pub
	fHelloOK  byte = 2  // same identity payload + nonce + eph pub + transcript signature
	fHelloAck byte = 3  // transcript signature (client role)
	fConnect  byte = 4  // callerPID, service name
	fConnOK   byte = 5  // public port id
	fCall     byte = 6  // callerPID, port id, op, obj, args
	fCallOK   byte = 7  // result bytes
	fXfer     byte = 8  // callerPID, label certificate
	fXferOK   byte = 9  // proxy pid, labelstore handle
	fSetProof byte = 10 // callerPID, op, obj, proof text, credentials
	fOK       byte = 11 // empty success
	fErr      byte = 12 // errno, op, detail
	fSubmit   byte = 13 // callerPID, port id, batch-framed messages
	fSubmitOK byte = 14 // per-op completion vector
	fXferRe   byte = 15 // callerPID, cert fingerprint, session-key HMAC
	fCredit   byte = 16 // flow-control grant: uvarint count (no request id)
)

// Per-op completion status bytes inside an fSubmitOK frame.
const (
	wsOK      byte = 0 // length-prefixed result bytes follow
	wsAbiErr  byte = 1 // errno, op, detail follow
	wsHdlrErr byte = 2 // handler-level error text follows
)

// Credential kinds inside an fSetProof frame.
const (
	wcInline  byte = 0 // nal wire-codec formula message
	wcRef     byte = 1 // handle in the caller's proxy labelstore
	wcCert    byte = 2 // full wire certificate; receiver assigns next index
	wcCertRef byte = 3 // backreference to a previously shipped certificate
)

// transportVersion gates the handshake; mismatches fail closed. Version 3
// adds credit-based per-stream flow control on top of version 2's Ed25519
// node identity, X25519 session-key agreement, pipelined request ids,
// batched submission, and HMAC re-attestation: each side advertises a
// receive window in the handshake (folded into the signed transcript), every
// post-handshake non-credit frame consumes one send credit toward the peer,
// and credits are returned in batches via fCredit frames — which are
// themselves exempt from credit accounting, so flow control can never
// deadlock its own control traffic. A peer that overruns the advertised
// window is committing a protocol violation and is poisoned.
const transportVersion byte = 3

// maxNetFrame bounds one frame; both backends enforce it on receive so a
// hostile length prefix cannot force an unbounded allocation.
const maxNetFrame = 1 << 22

// netCursor is a bounds-checked reader over one frame's payload.
type netCursor struct {
	buf []byte
	off int
}

func (r *netCursor) done() bool { return r.off == len(r.buf) }

func (r *netCursor) remaining() int { return len(r.buf) - r.off }

func (r *netCursor) byte() (byte, bool) {
	if r.off >= len(r.buf) {
		return 0, false
	}
	b := r.buf[r.off]
	r.off++
	return b, true
}

func (r *netCursor) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

// bytes reads a length-prefixed field, aliasing the frame buffer.
func (r *netCursor) bytes() ([]byte, bool) {
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.buf)-r.off) {
		return nil, false
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, true
}

func (r *netCursor) str() (string, bool) {
	b, ok := r.bytes()
	return string(b), ok
}

func appendNetBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendNetString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendErrFrame encodes a failure response for the request with the given
// id. Kernel ABI errors travel as their errno class; handler-level errors
// travel as EOK plus detail and are rebuilt as plain errors on the caller's
// side.
func appendErrFrame(dst []byte, id uint64, op string, err error) []byte {
	dst = append(dst, fErr)
	dst = binary.AppendUvarint(dst, id)
	if e, ok := err.(*Error); ok {
		dst = binary.AppendUvarint(dst, uint64(e.Errno))
		dst = appendNetString(dst, e.Op)
		return appendNetString(dst, e.Detail)
	}
	dst = binary.AppendUvarint(dst, uint64(ErrnoOf(err)))
	dst = appendNetString(dst, op)
	return appendNetString(dst, err.Error())
}

// appendMsgFields encodes op, obj, and the argument vector of a Msg.
func appendMsgFields(dst []byte, m *Msg) []byte {
	dst = appendNetString(dst, m.Op)
	dst = appendNetString(dst, m.Obj)
	dst = binary.AppendUvarint(dst, uint64(len(m.Args)))
	for _, a := range m.Args {
		dst = appendNetBytes(dst, a)
	}
	return dst
}

// unmarshalMsgInto decodes one message of the appendMsgWire format into m,
// reusing m's Args backing array and keeping the previous Op/Obj strings
// when the bytes match — in a homogeneous batch the per-op string cost
// collapses to the first message. Argument buffers alias buf, matching the
// *Msg lifetime contract (valid for the duration of the dispatch).
func unmarshalMsgInto(m *Msg, buf []byte) bool {
	if len(buf) < 4 {
		return false
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	buf = buf[4:]
	if uint32(len(buf)) < n {
		return false
	}
	if string(buf[:n]) != m.Op {
		m.Op = string(buf[:n])
	}
	buf = buf[n:]
	if len(buf) < 4 {
		return false
	}
	n = binary.LittleEndian.Uint32(buf[:4])
	buf = buf[4:]
	if uint32(len(buf)) < n {
		return false
	}
	if string(buf[:n]) != m.Obj {
		m.Obj = string(buf[:n])
	}
	buf = buf[n:]
	m.Args = m.Args[:0]
	for len(buf) > 0 {
		if len(buf) < 4 {
			return false
		}
		n = binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return false
		}
		m.Args = append(m.Args, buf[:n])
		buf = buf[n:]
	}
	return true
}

// readMsgFieldsInto decodes the fields appendMsgFields wrote into m,
// reusing m's Args backing array and keeping the previous Op/Obj strings
// when the bytes match — a connection's warm calls repeat the same target,
// so the per-call string cost collapses to the first request (the same
// trick unmarshalMsgInto plays for batch entries). Argument buffers alias
// the frame, matching the *Msg lifetime contract (valid for the duration
// of the dispatch).
func readMsgFieldsInto(m *Msg, r *netCursor) bool {
	op, ok := r.bytes()
	if !ok {
		return false
	}
	if string(op) != m.Op {
		m.Op = string(op)
	}
	obj, ok := r.bytes()
	if !ok {
		return false
	}
	if string(obj) != m.Obj {
		m.Obj = string(obj)
	}
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.buf)-r.off) {
		return false
	}
	m.Args = m.Args[:0]
	for i := uint64(0); i < n; i++ {
		a, ok := r.bytes()
		if !ok {
			return false
		}
		m.Args = append(m.Args, a)
	}
	return true
}

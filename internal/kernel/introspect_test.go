package kernel

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/nal"
)

// TestProcGuardUpcallsAndCacheStats verifies the lock-free guard-upcall
// counter and the decision-cache statistics are live under /proc alongside
// the registry gauges.
func TestProcGuardUpcallsAndCacheStats(t *testing.T) {
	k := bootKernel(t)
	k.SetGuard(allowAllGuard{})
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })

	read := func(path string) string {
		t.Helper()
		v, _, ok := k.Introsp.Read(path)
		if !ok {
			t.Fatalf("%s not published", path)
		}
		return v
	}

	if got := read("/proc/kernel/guard_upcalls"); got != "0" {
		t.Fatalf("fresh guard_upcalls = %q, want 0", got)
	}

	k.SetGoal(srv, "read", "obj", nal.MustParse("?S says wantsAccess"), nil)
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"}); err != nil {
		t.Fatal(err)
	}
	if got := read("/proc/kernel/guard_upcalls"); got != fmt.Sprint(k.GuardUpcalls()) || got == "0" {
		t.Fatalf("guard_upcalls = %q, counter = %d", got, k.GuardUpcalls())
	}

	// A second identical call is a decision-cache hit: no new upcall, and
	// the published cache stats move.
	before := k.GuardUpcalls()
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"}); err != nil {
		t.Fatal(err)
	}
	if k.GuardUpcalls() != before {
		t.Fatalf("cache hit still crossed into the guard")
	}
	stats := read("/proc/kernel/dcache")
	for _, field := range []string{"lookups=", "hits=", "misses=", "evictions="} {
		if !strings.Contains(stats, field) {
			t.Errorf("dcache stats %q missing %s", stats, field)
		}
	}
	if strings.Contains(stats, "hits=0 ") {
		t.Errorf("dcache stats %q records no hit after a warm call", stats)
	}

	if got := read("/proc/kernel/nprocs"); got != "2" {
		t.Errorf("nprocs = %q, want 2", got)
	}
	if got := read("/proc/kernel/nports"); got != "1" {
		t.Errorf("nports = %q, want 1", got)
	}
}

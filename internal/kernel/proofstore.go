package kernel

import "sync"

// proofStore is the registered-proof registry: a lock-striped
// tupleKey → *RegisteredProof map. authorize reads it on every decision-cache
// miss; setproof/clearproof write it. Striping by tuple hash keeps proof
// registration for one tuple from stalling lookups for any other.
type proofStore struct {
	shards [proofShards]proofShard
}

const proofShards = 16

type proofShard struct {
	mu sync.RWMutex
	m  map[tupleKey]*RegisteredProof
}

func newProofStore() *proofStore {
	ps := &proofStore{}
	for i := range ps.shards {
		ps.shards[i].m = map[tupleKey]*RegisteredProof{}
	}
	return ps
}

func (ps *proofStore) shard(k tupleKey) *proofShard {
	// Inline FNV-1a with a separator byte between fields: authorize reads
	// this store on every decision-cache miss, so shard selection must not
	// allocate the way a hash.Hash32 would.
	h := fnvHashString(fnvHashString(fnvHashString(fnvOffset, k.subj), k.op), k.obj)
	return &ps.shards[h&(proofShards-1)]
}

const (
	fnvOffset uint32 = 2166136261
	fnvPrime  uint32 = 16777619
)

func fnvHashString(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime
	}
	h ^= 0xff // field separator, outside the byte values of UTF-8 text keys
	h *= fnvPrime
	return h
}

func (ps *proofStore) get(k tupleKey) *RegisteredProof {
	s := ps.shard(k)
	s.mu.RLock()
	rp := s.m[k]
	s.mu.RUnlock()
	return rp
}

func (ps *proofStore) set(k tupleKey, rp *RegisteredProof) {
	s := ps.shard(k)
	s.mu.Lock()
	s.m[k] = rp
	s.mu.Unlock()
}

func (ps *proofStore) delete(k tupleKey) {
	s := ps.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

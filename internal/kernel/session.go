package kernel

import (
	"context"
	"time"

	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// Session is the typed user↔kernel ABI: the only surface user-level code
// needs to interact with a Nexus kernel. A Session pairs one process with
// its per-process capability handle table; every kernel object the process
// may touch — the ports it listens on, the channels it may call, the
// objects it guards — is named by an opaque Cap issued by this table, so
// raw kernel pointers (*Process, *Port) never cross the package boundary
// into user-level code. The package boundary models the privilege boundary
// the Nexus hardware enforced.
//
// Naming vs. rights: global port ids (ints) are public names, safe to pass
// around out of band; a Cap is a right, local to one session, revoked when
// the session exits. Open converts a name into a right (recording the
// channel capability the connectivity analyzer inspects); Grant hands a
// right directly to a peer session.
//
// Errors returned by Session methods carry the errno-style *Error taxonomy
// (EACCES, EBADF, ENOENT, ...); errors.Is against the legacy sentinels
// (ErrDenied, ErrNoSuchPort, ...) continues to work.
//
// A Session's data-path methods (Call, Submit) are safe for concurrent use,
// as are the control-plane methods; the zero Session is invalid — obtain
// one from Kernel.NewSession or Session.Spawn.
type Session struct {
	k  *Kernel
	p  *Process
	ht handleTable
}

// NewSession launches a new root protection domain from the given program
// image and returns its ABI session.
func (k *Kernel) NewSession(image []byte) (*Session, error) {
	return k.newSession(0, image)
}

// Spawn launches a child protection domain of this session's process.
func (s *Session) Spawn(image []byte) (*Session, error) {
	return s.k.newSession(s.p.PID, image)
}

func (k *Kernel) newSession(parent int, image []byte) (*Session, error) {
	p, err := k.CreateProcess(parent, image)
	if err != nil {
		return nil, err
	}
	s := &Session{k: k, p: p}
	s.ht.init()
	k.handles.insert(p.PID, &s.ht)
	if p.exited.Load() {
		// The process raced Exit past the registration; unwind.
		k.handles.dropPID(p.PID)
		return nil, abiErr(ESRCH, "newsession", "process exited during creation")
	}
	return s, nil
}

// PID returns the session's process id.
func (s *Session) PID() int { return s.p.PID }

// ParentPID returns the parent process id (0 for root sessions).
func (s *Session) ParentPID() int { return s.p.Parent }

// Prin returns the session's principal (kernel.ipd.<pid>, §2.4).
func (s *Session) Prin() nal.Principal { return s.p.Prin }

// ImageHash returns the hex SHA-1 launch-time hash of the program image.
func (s *Session) ImageHash() string { return s.p.Hash }

// Kernel returns the kernel this session runs on (for platform-level
// operations such as installing guards or reading introspection).
func (s *Session) Kernel() *Kernel { return s.k }

// Exit terminates the session's process: handles are drained, ports are
// closed, grants revoked, authorities retracted. Idempotent.
func (s *Session) Exit() { s.p.Exit() }

// Exited reports whether the session's process has terminated.
func (s *Session) Exited() bool { return s.p.Exited() }

// ---- Capability handles ------------------------------------------------

// Listen creates an IPC port owned by this session and returns the owner
// handle for it. The kernel deposits the §2.4 binding label ("kernel says
// IPC.id speaksfor owner") in the session's labelstore. PortOf converts the
// handle into the port's public name for sharing with peers.
func (s *Session) Listen(h Handler) (Cap, error) {
	pt, err := s.k.CreatePort(s.p, h)
	if err != nil {
		return 0, err
	}
	c, ok := s.ht.alloc(hslot{kind: capPort, port: pt})
	if !ok {
		// The session raced Exit; CreatePort's own unwind may have run
		// before the port registered, so redo it idempotently.
		s.k.ports.remove(pt.ID)
		s.k.chans.dropPort(pt.ID)
		return 0, abiErr(ESRCH, "listen", "session exited")
	}
	return c, nil
}

// Open converts a port's public name into a channel handle: the session
// records a channel capability to the port (the edge the §2.2 connectivity
// analyzer sees) and receives a Cap it can Call through.
//
// The handle is published before the grant lands: a concurrent Close of a
// sibling handle decides whether to revoke the pid-level grant by scanning
// the table, so the slot must be visible first — otherwise the scan could
// miss it and revoke the capability out from under a successfully returned
// handle.
func (s *Session) Open(portID int) (Cap, error) {
	pt, ok := s.k.ports.find(portID)
	if !ok {
		return 0, ErrNoSuchPort
	}
	c, ok := s.ht.alloc(hslot{kind: capChan, port: pt})
	if !ok {
		return 0, abiErr(ESRCH, "open", "session exited")
	}
	if err := s.k.GrantChannel(s.p, portID); err != nil {
		// GrantChannel's own unwind handled the exited/dead-port cleanup;
		// drop the slot it was meant to back (idempotent after a drain).
		s.ht.close(c)
		return 0, err
	}
	return c, nil
}

// OpenObject returns an object handle naming a guarded object. A nascent
// name (no recorded creator yet) is registered to this session as creator,
// so the §2.6 default policy protects it — and goals on it can be set by
// this session — before any other session claims it. Opening a name that
// already has a creator leaves the creator binding untouched.
func (s *Session) OpenObject(name string) (Cap, error) {
	if name == "" {
		return 0, abiErr(EINVAL, "openobject", "empty object name")
	}
	c, ok := s.ht.alloc(hslot{kind: capObj, obj: name})
	if !ok {
		return 0, abiErr(ESRCH, "openobject", "session exited")
	}
	s.k.registerObjectIfNascent(name, s.p.Prin)
	return c, nil
}

// Grant hands a channel to a peer session: the peer gains the channel
// capability and a handle of its own. The granter must itself hold a port
// or channel handle for the target.
func (s *Session) Grant(to *Session, c Cap) (Cap, error) {
	sl, ok := s.ht.lookup(c)
	if !ok || sl.port == nil {
		return 0, ErrBadHandle
	}
	return to.Open(sl.port.ID)
}

// Dup duplicates a handle; the copy resolves to the same referent until
// closed independently.
func (s *Session) Dup(c Cap) (Cap, error) {
	sl, ok := s.ht.lookup(c)
	if !ok {
		return 0, ErrBadHandle
	}
	nc, ok2 := s.ht.alloc(sl)
	if !ok2 {
		return 0, abiErr(ESRCH, "dup", "session exited")
	}
	if sl.kind == capChan {
		// Re-assert the pid-level grant: a concurrent Close of the source
		// handle between lookup and alloc may have revoked it, and the dup
		// must be a usable right on return.
		if err := s.k.GrantChannel(s.p, sl.port.ID); err != nil {
			s.ht.close(nc)
			return 0, err
		}
	}
	return nc, nil
}

// Close releases a handle. Closing the last channel handle to a port
// revokes the session's channel capability to it; closing an owner handle
// tears the port down (grants to it are revoked, authorities retracted).
func (s *Session) Close(c Cap) error {
	sl, ok := s.ht.close(c)
	if !ok {
		return ErrBadHandle
	}
	switch sl.kind {
	case capPort, capRemote:
		if s.k.ports.remove(sl.port.ID) {
			s.k.chans.dropPort(sl.port.ID)
			s.k.dropAuthorities([]int{sl.port.ID})
		}
	case capChan:
		if !s.ht.refsPort(sl.port) {
			s.k.chans.revoke(s.p.PID, sl.port.ID)
		}
	}
	return nil
}

// PortOf returns the public port name behind a port or channel handle.
func (s *Session) PortOf(c Cap) (int, error) {
	sl, ok := s.ht.lookup(c)
	if !ok || sl.port == nil {
		return 0, ErrBadHandle
	}
	return sl.port.ID, nil
}

// ObjectOf returns the object name behind an object handle.
func (s *Session) ObjectOf(c Cap) (string, error) {
	sl, ok := s.ht.lookup(c)
	if !ok || sl.kind != capObj {
		return "", ErrBadHandle
	}
	return sl.obj, nil
}

// Handles reports the number of live capability handles (introspection).
func (s *Session) Handles() int { return s.ht.len() }

// ListeningPort returns the public name of the session's listening port —
// the convenience for the common one-port-server shape. With several ports
// it returns the lowest-numbered live one; with none, EBADF.
func (s *Session) ListeningPort() (int, error) {
	best := 0
	for i := range s.ht.shards {
		sh := &s.ht.shards[i]
		sh.mu.RLock()
		for _, sl := range sh.m {
			if sl.kind == capPort && !sl.port.dead.Load() && (best == 0 || sl.port.ID < best) {
				best = sl.port.ID
			}
		}
		sh.mu.RUnlock()
	}
	if best == 0 {
		return 0, ErrBadHandle
	}
	return best, nil
}

// resolve maps a Cap to its target for dispatch: a port for port/channel
// handles, or nil with the object name for object handles (which dispatch
// as authorization-checked null system calls). One handle-shard read-lock.
func (s *Session) resolve(c Cap) (*Port, string, *Error) {
	sl, ok := s.ht.lookup(c)
	if !ok {
		return nil, "", errBadHandleV
	}
	if sl.kind == capObj {
		return nil, sl.obj, nil
	}
	return sl.port, "", nil
}

// errBadHandleV is the preallocated EBADF error the warm resolve path
// returns, so stale-handle probes do not allocate.
var errBadHandleV = &Error{Errno: EBADF, Op: "resolve", Detail: "stale or foreign capability handle"}

// ---- Data path ---------------------------------------------------------

// Call performs a synchronous IPC through a channel (or owner) handle: one
// handle-table read resolves the right, then the call runs the unified
// dispatch pipeline (channel check, authorization, interposition, invoke).
func (s *Session) Call(c Cap, m *Msg) ([]byte, error) {
	pt, obj, aerr := s.resolve(c)
	if aerr != nil {
		return nil, aerr
	}
	if pt == nil {
		// Object handle: an authorization-checked null operation on the
		// object via the syscall channel.
		return nil, s.k.syscall(s.p, m.Op, obj, m.Args, func() error { return nil })
	}
	return s.k.dispatch(s.p, pt, m, pt.h)
}

// CallContext is Call honoring context cancellation: the context is checked
// once before dispatch (calls are synchronous and non-blocking in the
// simulation, so there is no mid-call cancellation point).
func (s *Session) CallContext(ctx context.Context, c Cap, m *Msg) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, abiErr(ECANCELED, m.Op, err.Error())
	}
	return s.Call(c, m)
}

// ---- Labels and attestation -------------------------------------------

// Labels exposes the session's labelstore.
func (s *Session) Labels() *Labelstore { return s.p.Labels }

// Say utters a statement, recording "caller says statement" in the
// session's labelstore.
func (s *Session) Say(statement string) (*Label, error) { return s.p.Labels.Say(statement) }

// SayFormula is Say for pre-parsed formulas.
func (s *Session) SayFormula(f nal.Formula) (*Label, error) { return s.p.Labels.SayFormula(f) }

// Attest externalizes a label into the TPM-rooted certificate chain of
// §2.4 ("TPM says kernel says process says S") for consumption outside
// this Nexus instance.
func (s *Session) Attest(labelHandle int) (*ExternalLabel, error) {
	return s.p.Labels.Externalize(labelHandle)
}

// ImportLabel verifies an external label and deposits the key-attributed
// formula in the session's labelstore.
func (s *Session) ImportLabel(ext *ExternalLabel) (*Label, error) {
	return s.p.Labels.Import(ext)
}

// TransferLabel moves a label from this session's store to the process
// identified by pid (typically a Caller.PID observed in a handler).
func (s *Session) TransferLabel(labelHandle, toPID int) (*Label, error) {
	dst, ok := s.k.procs.get(toPID)
	if !ok {
		return nil, abiErr(ESRCH, "transferlabel", "no such process")
	}
	return s.p.Labels.Transfer(labelHandle, dst.Labels)
}

// ---- Policy ------------------------------------------------------------

// SetGoal associates a goal formula with an operation on an object (itself
// an authorized operation on the object) and vectors decisions to the given
// guard (nil = the kernel's default guard).
func (s *Session) SetGoal(op, obj string, goal nal.Formula, g Guard) error {
	return s.k.SetGoal(s.p, op, obj, goal, g)
}

// ClearGoal removes the goal for (op, obj).
func (s *Session) ClearGoal(op, obj string) error {
	return s.k.ClearGoal(s.p, op, obj)
}

// SetProof registers this session's proof for an access tuple; the kernel
// compiles it and interns inline credentials once at registration.
func (s *Session) SetProof(op, obj string, p *proof.Proof, creds []Credential) {
	s.k.SetProof(s.p, op, obj, p, creds)
}

// ClearProof removes the session's proof for the tuple.
func (s *Session) ClearProof(op, obj string) {
	s.k.ClearProof(s.p, op, obj)
}

// RegisterObject records this session as creator of a nascent object so
// the §2.6 default policy protects it before any goal is set.
func (s *Session) RegisterObject(obj string) {
	s.k.RegisterObject(obj, s.p.Prin)
}

// Interpose binds a reference monitor to a port by public name (0 = the
// kernel system-call channel), authorized by the "interpose" goal on the
// channel. Returns the removal handle.
func (s *Session) Interpose(portID int, mon Interposer) (int, error) {
	return s.k.Interpose(s.p, portID, mon)
}

// Deinterpose removes a previously bound monitor.
func (s *Session) Deinterpose(portID, handle int) error {
	return s.k.Deinterpose(s.p, portID, handle)
}

// RegisterAuthority creates an attested authority port owned by this
// session whose answer function is consulted live on every query (§2.7).
func (s *Session) RegisterAuthority(answer func(f nal.Formula) bool) (*Authority, error) {
	return s.k.RegisterAuthority(s.p, answer)
}

// ---- Kernel system calls ----------------------------------------------

// GetPPID is the getppid system call.
func (s *Session) GetPPID() (int, error) { return s.p.GetPPID() }

// GetTimeOfDay is the gettimeofday system call.
func (s *Session) GetTimeOfDay() (time.Time, error) { return s.p.GetTimeOfDay() }

// Yield is the scheduler yield system call.
func (s *Session) Yield() error { return s.p.Yield() }

// Null is the empty system call used to measure invocation overhead.
func (s *Session) Null() error { return s.p.Null() }

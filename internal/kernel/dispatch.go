package kernel

// Kernel flag word bits: global toggles read on every dispatch with a single
// atomic load.
const (
	flagAuthz        uint32 = 1 << iota // goal checking on (Figure 4 "system call")
	flagInterp                          // redirector + marshaling on (Table 1 bare)
	flagEnforceChans                    // channel-capability enforcement on Call
)

func (k *Kernel) setFlag(bit uint32, on bool) {
	for {
		old := k.flags.Load()
		nw := old | bit
		if !on {
			nw = old &^ bit
		}
		if k.flags.CompareAndSwap(old, nw) {
			return
		}
	}
}

// dispatch is the single kernel entry pipeline shared by IPC Call, the
// Session ABI (Call and Submit), and kernel-implemented system calls:
//
//	resolve → channel check → authorize → interpose/marshal → invoke → unwind
//
// pt is the resolved target port, or nil for the kernel system-call channel
// (conventionally port 0, which has interposition but no capability check —
// every process implicitly holds its syscall channel). invoke is the
// operation body: the port handler for IPC, the kernel service function for
// a syscall.
//
// The warm path takes no kernel-global lock: the toggles are one atomic
// load, the interposition chain another, authorization goes straight to the
// sharded decision cache, and the channel check takes at most one
// capability-table shard read-lock. Every stage is a stage of this one
// pipeline, so the ablation configurations (Table 1 bare, Figure 4 cases)
// toggle dispatch stages rather than diverging code paths.
func (k *Kernel) dispatch(from *Process, pt *Port, m *Msg, invoke Handler) ([]byte, error) {
	return k.dispatchFlags(k.flags.Load(), from, pt, m, invoke, nil)
}

// dispatchFlags is dispatch with the toggle word pre-loaded (the batch
// entry loads it once per submission) and an optional marshal arena: when
// arena is non-nil the wire copy is appended there instead of allocating,
// and the grown arena is returned through *arena.
func (k *Kernel) dispatchFlags(flags uint32, from *Process, pt *Port, m *Msg, invoke Handler, arena *[]byte) ([]byte, error) {
	// Channel check: capability systems gate connectivity before policy.
	if pt != nil {
		if pt.dead.Load() {
			return nil, abiErr(ENOENT, m.Op, "port closed")
		}
		if !k.holdsChannel(from, pt, flags&flagEnforceChans != 0) {
			return nil, abiErr(EACCES, m.Op, "no channel to port")
		}
	}

	// Authorization: decision cache, then guard upcall (§2.8).
	if flags&flagAuthz != 0 {
		if err := k.authorize(from, m.Op, m.Obj); err != nil {
			return nil, err
		}
	}

	caller := Caller{PID: from.PID, Prin: from.Prin}
	if pt != nil {
		caller.Port = pt.ID
	}

	// Bare configuration: straight to the operation body.
	if flags&flagInterp == 0 {
		return invoke(caller, m)
	}

	// Interposition: the kernel materializes the argument buffer at the
	// protection boundary so monitors can inspect and rewrite it (§5.1
	// measures this cost); the chain is an immutable snapshot read with one
	// atomic load, so a concurrent Interpose never tears a call. The wire
	// copy is valid only for the duration of the call — batch submissions
	// reuse the arena it lives in.
	chain := k.chainFor(pt)
	var wire []byte
	if arena != nil {
		start := len(*arena)
		*arena = appendMsgWire(*arena, m)
		wire = (*arena)[start:]
	} else {
		wire = marshalMsg(m)
	}
	for _, mon := range chain {
		if mon.OnCall(caller, m, wire) == VerdictBlock {
			return nil, abiErr(EACCES, m.Op, "blocked by reference monitor")
		}
	}
	out, err := invoke(caller, m)
	for i := len(chain) - 1; i >= 0; i-- {
		out = chain[i].OnReturn(caller, m, out)
	}
	return out, err
}

// chainFor returns the interposition chain for a port (nil = the kernel
// system-call channel).
func (k *Kernel) chainFor(pt *Port) []monEntry {
	if pt == nil {
		return k.ports.sysChain.load()
	}
	return pt.chain.load()
}

package kernel

// Kernel flag word bits: global toggles read on every dispatch with a single
// atomic load.
const (
	flagAuthz        uint32 = 1 << iota // goal checking on (Figure 4 "system call")
	flagInterp                          // redirector + marshaling on (Table 1 bare)
	flagEnforceChans                    // channel-capability enforcement on Call
)

func (k *Kernel) setFlag(bit uint32, on bool) {
	for {
		old := k.flags.Load()
		nw := old | bit
		if !on {
			nw = old &^ bit
		}
		if k.flags.CompareAndSwap(old, nw) {
			return
		}
	}
}

// dispatch is the single kernel entry pipeline shared by IPC Call, the
// Session ABI (Call and Submit), and kernel-implemented system calls:
//
//	resolve → channel check → authorize → interpose/marshal → invoke → unwind
//
// pt is the resolved target port, or nil for the kernel system-call channel
// (conventionally port 0, which has interposition but no capability check —
// every process implicitly holds its syscall channel). invoke is the
// operation body: the port handler for IPC, the kernel service function for
// a syscall.
//
// The warm path takes no kernel-global lock: the toggles are one atomic
// load, the interposition chain another, authorization goes straight to the
// sharded decision cache, and the channel check takes at most one
// capability-table shard read-lock. Every stage is a stage of this one
// pipeline, so the ablation configurations (Table 1 bare, Figure 4 cases)
// toggle dispatch stages rather than diverging code paths.
//
//nexus:errno
func (k *Kernel) dispatch(from *Process, pt *Port, m *Msg, invoke Handler) ([]byte, error) {
	return k.dispatchFlags(k.flags.Load(), from, pt, m, invoke, nil)
}

// dispatchFlags is dispatch with the toggle word pre-loaded (the batch
// entry loads it once per submission) and an optional marshal arena: when
// arena is non-nil the wire copy is appended there instead of allocating,
// and the grown arena is returned through *arena.
//
// The warm path is allocation-free (pinned by TestAllocSyscallWarmAuthz and
// TestAllocBatchedSubmitWarm; nexuslint checks the static view).
//
//nexus:noalloc
//nexus:errno
func (k *Kernel) dispatchFlags(flags uint32, from *Process, pt *Port, m *Msg, invoke Handler, arena *[]byte) ([]byte, error) {
	// Channel check: capability systems gate connectivity before policy.
	if pt != nil {
		if pt.dead.Load() {
			return nil, abiErr(ENOENT, m.Op, "port closed")
		}
		if !k.holdsChannel(from, pt, flags&flagEnforceChans != 0) {
			return nil, abiErr(EACCES, m.Op, "no channel to port")
		}
	}

	// Authorization: decision cache, then guard upcall (§2.8).
	if flags&flagAuthz != 0 {
		if err := k.authorize(from, m.Op, m.Obj); err != nil {
			return nil, err
		}
	}

	caller := Caller{PID: from.PID, Prin: from.Prin}
	if pt != nil {
		caller.Port = pt.ID
	}

	// Bare configuration: straight to the operation body.
	if flags&flagInterp == 0 {
		return invoke(caller, m)
	}

	// Interposition: the kernel materializes the argument buffer at the
	// protection boundary so monitors can inspect and rewrite it (§5.1
	// measures this cost); the chain is an immutable snapshot read with one
	// atomic load, so a concurrent Interpose never tears a call. The wire
	// copy is valid only for the duration of the call — batch submissions
	// reuse the arena it lives in.
	chain := k.chainFor(pt)
	pooled := arena == nil
	if pooled {
		// Single-call entry: borrow a pooled arena for the wire copy so the
		// warm interposed path allocates nothing (batch entries pass their
		// own arena and amortize the same way across the batch).
		arena = wireArenas.Get().(*[]byte)
		*arena = (*arena)[:0]
	}
	start := len(*arena)
	*arena = appendMsgWire(*arena, m)
	wire := (*arena)[start:]
	for _, mon := range chain {
		if mon.OnCall(caller, m, wire) == VerdictBlock {
			if pooled && cap(*arena) <= arenaKeepCap {
				wireArenas.Put(arena)
			}
			return nil, abiErr(EACCES, m.Op, "blocked by reference monitor")
		}
	}
	out, err := invoke(caller, m)
	for i := len(chain) - 1; i >= 0; i-- {
		out = chain[i].OnReturn(caller, m, out)
	}
	if pooled && cap(*arena) <= arenaKeepCap {
		wireArenas.Put(arena)
	}
	return out, err
}

// batchAdmit is the dispatch pipeline with its loop-invariant head hoisted
// for a batch of operations against one port: the port-liveness and channel
// checks and the interposition-chain snapshot depend only on (caller, port),
// so a remote batch pays them once instead of per entry. The per-operation
// stages — authorization and the OnCall sweep over the entry's wire form —
// run through admitOp; the operation body and the OnReturn unwind stay with
// the caller, which holds the batch's response buffer.
type batchAdmit struct {
	k      *Kernel
	flags  uint32
	from   *Process
	caller Caller
	chain  []monEntry
}

func (k *Kernel) batchAdmit(flags uint32, from *Process, pt *Port) (batchAdmit, error) {
	if pt != nil {
		if pt.dead.Load() {
			return batchAdmit{}, abiErr(ENOENT, "submit", "port closed")
		}
		if !k.holdsChannel(from, pt, flags&flagEnforceChans != 0) {
			return batchAdmit{}, abiErr(EACCES, "submit", "no channel to port")
		}
	}
	ba := batchAdmit{k: k, flags: flags, from: from,
		caller: Caller{PID: from.PID, Prin: from.Prin}}
	if pt != nil {
		ba.caller.Port = pt.ID
	}
	if flags&flagInterp != 0 {
		ba.chain = k.chainFor(pt)
	}
	return ba, nil
}

// admitOp runs the per-operation admission stages over an entry whose wire
// form the caller already holds (marshaled on egress, received on ingress) —
// the chain inspects those bytes directly, no re-marshal.
func (ba *batchAdmit) admitOp(m *Msg, wire []byte) error {
	if ba.flags&flagAuthz != 0 {
		if err := ba.k.authorize(ba.from, m.Op, m.Obj); err != nil {
			return err
		}
	}
	for _, mon := range ba.chain {
		if mon.OnCall(ba.caller, m, wire) == VerdictBlock {
			return abiErr(EACCES, m.Op, "blocked by reference monitor")
		}
	}
	return nil
}

// unwind runs the OnReturn sweep for an admitted operation after its body.
func (ba *batchAdmit) unwind(m *Msg, out []byte) []byte {
	for i := len(ba.chain) - 1; i >= 0; i-- {
		out = ba.chain[i].OnReturn(ba.caller, m, out)
	}
	return out
}

// chainFor returns the interposition chain for a port (nil = the kernel
// system-call channel).
func (k *Kernel) chainFor(pt *Port) []monEntry {
	if pt == nil {
		return k.ports.sysChain.load()
	}
	return pt.chain.load()
}

package kernel

import "fmt"

// Kernel flag word bits: global toggles read on every dispatch with a single
// atomic load.
const (
	flagAuthz uint32 = 1 << iota // goal checking on (Figure 4 "system call")
	flagInterp                   // redirector + marshaling on (Table 1 bare)
	flagEnforceChans             // channel-capability enforcement on Call
)

func (k *Kernel) setFlag(bit uint32, on bool) {
	for {
		old := k.flags.Load()
		nw := old | bit
		if !on {
			nw = old &^ bit
		}
		if k.flags.CompareAndSwap(old, nw) {
			return
		}
	}
}

// dispatch is the single kernel entry pipeline shared by IPC Call and
// kernel-implemented system calls:
//
//	resolve → channel check → authorize → interpose/marshal → invoke → unwind
//
// pt is the resolved target port, or nil for the kernel system-call channel
// (conventionally port 0, which has interposition but no capability check —
// every process implicitly holds its syscall channel). invoke is the
// operation body: the port handler for IPC, the kernel service function for
// a syscall.
//
// The warm path takes no kernel-global lock: the toggles are one atomic
// load, the interposition chain another, authorization goes straight to the
// sharded decision cache, and the channel check takes at most one
// capability-table shard read-lock. Every stage is a stage of this one
// pipeline, so the ablation configurations (Table 1 bare, Figure 4 cases)
// toggle dispatch stages rather than diverging code paths.
func (k *Kernel) dispatch(from *Process, pt *Port, m *Msg, invoke Handler) ([]byte, error) {
	flags := k.flags.Load()

	// Channel check: capability systems gate connectivity before policy.
	if pt != nil && !k.holdsChannel(from, pt, flags&flagEnforceChans != 0) {
		return nil, fmt.Errorf("%w: no channel to port %d", ErrDenied, pt.ID)
	}

	// Authorization: decision cache, then guard upcall (§2.8).
	if flags&flagAuthz != 0 {
		if err := k.authorize(from, m.Op, m.Obj); err != nil {
			return nil, err
		}
	}

	// Bare configuration: straight to the operation body.
	if flags&flagInterp == 0 {
		return invoke(from, m)
	}

	// Interposition: the kernel materializes the argument buffer at the
	// protection boundary so monitors can inspect and rewrite it (§5.1
	// measures this cost); the chain is an immutable snapshot read with one
	// atomic load, so a concurrent Interpose never tears a call.
	chain := k.chainFor(pt)
	wire := marshalMsg(m)
	for _, mon := range chain {
		if mon.OnCall(from, pt, m, wire) == VerdictBlock {
			return nil, fmt.Errorf("%w: blocked by reference monitor", ErrDenied)
		}
	}
	out, err := invoke(from, m)
	for i := len(chain) - 1; i >= 0; i-- {
		out = chain[i].OnReturn(from, pt, m, out)
	}
	return out, err
}

// chainFor returns the interposition chain for a port (nil = the kernel
// system-call channel).
func (k *Kernel) chainFor(pt *Port) []monEntry {
	if pt == nil {
		return k.ports.sysChain.load()
	}
	return pt.chain.load()
}

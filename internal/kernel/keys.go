package kernel

import (
	"crypto/ed25519"
	"encoding/asn1"
	"fmt"

	"repro/internal/tpm"
)

// marshalKey serializes an Ed25519 private key as its 32-byte seed — the
// form that goes into the TPM-sealed blob.
func marshalKey(k ed25519.PrivateKey) []byte {
	return k.Seed()
}

// unmarshalKey rebuilds the node key from an unsealed seed. A wrong-sized
// seed means the sealed blob was corrupted or tampered with, so the
// failure is classified as a boot-integrity (EINTEGRITY) error.
//
//nexus:errno
func unmarshalKey(raw []byte) (ed25519.PrivateKey, error) {
	if len(raw) != ed25519.SeedSize {
		return nil, abiErr(EINTEGRITY, "unseal-key", fmt.Sprintf("sealed key has wrong length %d", len(raw)))
	}
	return ed25519.NewKeyFromSeed(raw), nil
}

// sealedBlobSeq is the on-disk form of a TPM sealed blob.
type sealedBlobSeq struct {
	EKID       string
	Nonce      []byte
	Ciphertext []byte
}

func sealedBlobMarshal(b *tpm.SealedBlob) ([]byte, error) {
	return asn1.Marshal(sealedBlobSeq{EKID: b.EKID, Nonce: b.Nonce, Ciphertext: b.Ciphertext})
}

//nexus:errno
func sealedBlobUnmarshal(der []byte) (*tpm.SealedBlob, error) {
	var s sealedBlobSeq
	if rest, err := asn1.Unmarshal(der, &s); err != nil || len(rest) != 0 {
		return nil, abiErr(EINTEGRITY, "unseal-blob", "sealed blob decode failed")
	}
	return &tpm.SealedBlob{EKID: s.EKID, Nonce: s.Nonce, Ciphertext: s.Ciphertext}, nil
}

package kernel

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/asn1"
	"fmt"

	"repro/internal/tpm"
)

func marshalKey(k *rsa.PrivateKey) []byte {
	return x509.MarshalPKCS1PrivateKey(k)
}

func unmarshalKey(der []byte) (*rsa.PrivateKey, error) {
	return x509.ParsePKCS1PrivateKey(der)
}

func marshalPub(k *rsa.PublicKey) []byte {
	return x509.MarshalPKCS1PublicKey(k)
}

// sealedBlobSeq is the on-disk form of a TPM sealed blob.
type sealedBlobSeq struct {
	EKID       string
	Nonce      []byte
	Ciphertext []byte
}

func sealedBlobMarshal(b *tpm.SealedBlob) ([]byte, error) {
	return asn1.Marshal(sealedBlobSeq{EKID: b.EKID, Nonce: b.Nonce, Ciphertext: b.Ciphertext})
}

func sealedBlobUnmarshal(der []byte) (*tpm.SealedBlob, error) {
	var s sealedBlobSeq
	if rest, err := asn1.Unmarshal(der, &s); err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("kernel: sealed blob decode failed")
	}
	return &tpm.SealedBlob{EKID: s.EKID, Nonce: s.Nonce, Ciphertext: s.Ciphertext}, nil
}

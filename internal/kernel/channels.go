package kernel

// Channel capabilities. The Nexus is a capability system (§1): a process
// interacts with its environment only through the IPC channels it holds.
// The kernel's channel table is the ground truth that the IPC connectivity
// analyzer (§2.2) inspects: a process with no transitive path to the disk
// or network drivers provably cannot leak data to them.
//
// Enforcement is optional so microbenchmarks can run with an open topology;
// applications that rely on ¬hasPath labels enable it.

// GrantChannel gives a process the capability to call a port.
func (k *Kernel) GrantChannel(p *Process, portID int) error {
	if _, ok := k.FindPort(portID); !ok {
		return ErrNoSuchPort
	}
	k.chanMu.Lock()
	defer k.chanMu.Unlock()
	if k.chans[p.PID] == nil {
		k.chans[p.PID] = map[int]bool{}
	}
	k.chans[p.PID][portID] = true
	return nil
}

// RevokeChannel removes a capability.
func (k *Kernel) RevokeChannel(p *Process, portID int) {
	k.chanMu.Lock()
	defer k.chanMu.Unlock()
	delete(k.chans[p.PID], portID)
}

// EnforceChannels toggles capability enforcement on Call.
func (k *Kernel) EnforceChannels(on bool) {
	k.chanMu.Lock()
	defer k.chanMu.Unlock()
	k.enforceChans = on
}

// holdsChannel reports whether p may call the port (owners always may).
func (k *Kernel) holdsChannel(p *Process, pt *Port) bool {
	if pt.Owner == p {
		return true
	}
	k.chanMu.Lock()
	defer k.chanMu.Unlock()
	if !k.enforceChans {
		return true
	}
	return k.chans[p.PID][pt.ID]
}

// Channels returns a snapshot of the capability table: pid → owning pid of
// each held port. The connectivity analyzer consumes this.
func (k *Kernel) Channels() map[int][]int {
	k.chanMu.Lock()
	grants := make(map[int][]int, len(k.chans))
	for pid, ports := range k.chans {
		for portID, ok := range ports {
			if ok {
				grants[pid] = append(grants[pid], portID)
			}
		}
	}
	k.chanMu.Unlock()

	out := map[int][]int{}
	for pid, ports := range grants {
		for _, portID := range ports {
			if pt, ok := k.FindPort(portID); ok {
				out[pid] = append(out[pid], pt.Owner.PID)
			}
		}
	}
	return out
}

package kernel

import "sync"

// Channel capabilities. The Nexus is a capability system (§1): a process
// interacts with its environment only through the IPC channels it holds.
// The kernel's channel table is the ground truth that the IPC connectivity
// analyzer (§2.2) inspects: a process with no transitive path to the disk
// or network drivers provably cannot leak data to them.
//
// Enforcement is optional so microbenchmarks can run with an open topology;
// applications that rely on ¬hasPath labels enable it. The enforcement bit
// lives in the kernel's atomic flag word, so a Call with enforcement off
// never touches the table at all.

// chanTable is the channel-capability registry: grants lock-striped by
// holder pid, plus a reverse index (port → holder pids) so a dying port's
// grants are revoked without scanning every process's grant set.
//
// Invariant: shards[pid][port] exists iff byPort[port][pid] exists. Both
// sides are updated under revMu; the shard locks additionally protect the
// forward maps so the warm-path holds() takes only one shard read-lock.
//
// Lock ordering: revMu → shard.mu.
type chanTable struct {
	shards [chanShards]chanShard

	revMu  sync.Mutex
	byPort map[int]map[int]bool // port id → pids granted
}

const chanShards = 16

type chanShard struct {
	mu sync.RWMutex
	m  map[int]map[int]bool // pid → port id → true
}

func newChanTable() *chanTable {
	t := &chanTable{byPort: map[int]map[int]bool{}}
	for i := range t.shards {
		t.shards[i].m = map[int]map[int]bool{}
	}
	return t
}

func (t *chanTable) shard(pid int) *chanShard {
	return &t.shards[uint(pid)&(chanShards-1)]
}

func (t *chanTable) grant(pid, portID int) {
	t.revMu.Lock()
	if t.byPort[portID] == nil {
		t.byPort[portID] = map[int]bool{}
	}
	t.byPort[portID][pid] = true
	s := t.shard(pid)
	s.mu.Lock()
	if s.m[pid] == nil {
		s.m[pid] = map[int]bool{}
	}
	s.m[pid][portID] = true
	s.mu.Unlock()
	t.revMu.Unlock()
}

func (t *chanTable) revoke(pid, portID int) {
	t.revMu.Lock()
	delete(t.byPort[portID], pid)
	if len(t.byPort[portID]) == 0 {
		delete(t.byPort, portID)
	}
	s := t.shard(pid)
	s.mu.Lock()
	delete(s.m[pid], portID)
	if len(s.m[pid]) == 0 {
		delete(s.m, pid)
	}
	s.mu.Unlock()
	t.revMu.Unlock()
}

// holds is the warm-path membership probe: one shard read-lock.
func (t *chanTable) holds(pid, portID int) bool {
	s := t.shard(pid)
	s.mu.RLock()
	ok := s.m[pid][portID]
	s.mu.RUnlock()
	return ok
}

// dropPID removes every grant held by pid (process teardown).
func (t *chanTable) dropPID(pid int) {
	t.revMu.Lock()
	s := t.shard(pid)
	s.mu.Lock()
	held := s.m[pid]
	delete(s.m, pid)
	s.mu.Unlock()
	for portID := range held {
		delete(t.byPort[portID], pid)
		if len(t.byPort[portID]) == 0 {
			delete(t.byPort, portID)
		}
	}
	t.revMu.Unlock()
}

// dropPort revokes every grant to portID (port teardown), via the reverse
// index rather than a scan.
func (t *chanTable) dropPort(portID int) {
	t.revMu.Lock()
	holders := t.byPort[portID]
	delete(t.byPort, portID)
	for pid := range holders {
		s := t.shard(pid)
		s.mu.Lock()
		delete(s.m[pid], portID)
		if len(s.m[pid]) == 0 {
			delete(s.m, pid)
		}
		s.mu.Unlock()
	}
	t.revMu.Unlock()
}

// GrantChannel gives a process the capability to call a port.
func (k *Kernel) GrantChannel(p *Process, portID int) error {
	if _, ok := k.ports.find(portID); !ok {
		return ErrNoSuchPort
	}
	k.chans.grant(p.PID, portID)
	// Unwind races with teardown: if the holder exited or the port died
	// while the grant was landing, whichever cleanup the teardown missed is
	// redone here (drops are idempotent), so no grant outlives its
	// endpoints — and the caller learns the grant did not take effect.
	if p.exited.Load() {
		k.chans.dropPID(p.PID)
		return ErrNoSuchProcess
	}
	if _, ok := k.ports.find(portID); !ok {
		k.chans.dropPort(portID)
		return ErrNoSuchPort
	}
	return nil
}

// RevokeChannel removes a capability.
func (k *Kernel) RevokeChannel(p *Process, portID int) {
	k.chans.revoke(p.PID, portID)
}

// EnforceChannels toggles capability enforcement on Call.
func (k *Kernel) EnforceChannels(on bool) { k.setFlag(flagEnforceChans, on) }

// holdsChannel reports whether p may call the port (owners always may).
// enforce is the flag bit the dispatch pipeline already loaded.
func (k *Kernel) holdsChannel(p *Process, pt *Port, enforce bool) bool {
	if pt.Owner == p || !enforce {
		return true
	}
	return k.chans.holds(p.PID, pt.ID)
}

// Channels returns a coherent snapshot of the capability table: pid → owning
// pid of each held port. The connectivity analyzer consumes this, and bases
// ¬hasPath trust labels on it, so the snapshot must be linearizable against
// teardown: it is built under revMu — the lock every grant, revoke, and
// port/process teardown passes through — so the grant set returned is
// exactly the table's state at one instant, never a part-old part-new
// interleaving of a concurrent Exit. Grants whose port completed teardown
// inside the revMu window (Exit removes the port from the registry before
// revoking its grants) resolve as dead and are skipped, which matches the
// post-teardown state.
func (k *Kernel) Channels() map[int][]int {
	out := map[int][]int{}
	k.chans.revMu.Lock()
	for portID, pids := range k.chans.byPort {
		pt, ok := k.ports.find(portID)
		if !ok || pt.dead.Load() {
			continue
		}
		for pid := range pids {
			out[pid] = append(out[pid], pt.Owner.PID)
		}
	}
	k.chans.revMu.Unlock()
	return out
}

package kernel

import (
	"sync"
	"sync/atomic"
)

// Cap is an opaque per-process capability handle: the only name user-level
// code holds for kernel objects. A handle packs a table slot in the low 32
// bits and a generation tag in the high 32; a forged or stale value fails
// the generation check and resolves to EBADF. Handles are meaningful only
// to the process (Session) they were issued to.
type Cap uint64

// CapSyscall is the pseudo-handle for the kernel system-call channel
// (conventionally port 0). Every process implicitly holds it; it can be
// interposed on but not called, closed, duplicated, or granted.
const CapSyscall Cap = 0

// capKind classifies what a handle-table slot refers to.
type capKind uint8

const (
	capFree   capKind = iota
	capPort           // owner handle: the port this session listens on
	capChan           // channel handle: a port this session may call
	capObj            // object handle: a named, goal-protected object
	capRemote         // remote channel handle: a service on a peer kernel,
	// represented by a local forwarder port so the standard dispatch
	// pipeline (and Submit batching) applies to cross-node calls
)

// hslot is one handle-table entry.
type hslot struct {
	gen  uint32
	kind capKind
	port *Port  // capPort / capChan / capRemote (forwarder)
	obj  string // capObj
	// capRemote: the connection and remote port behind the forwarder, so
	// batched submission can frame ops for the wire directly instead of
	// paying a per-op round-trip through the forwarder handler.
	peer  *Peer
	rport int
}

// handleTable is the per-process capability table: sharded like the port
// registry so the warm resolve path costs one shard read-lock, with an
// atomic slot allocator (slots are never reused — a closed slot simply
// leaves its shard map, so stale handles cannot alias new objects even
// before the generation check).
//
// Invariants (asserted by FuzzHandleTable and the registry stress test):
//   - a live slot's generation matches the Cap that named it at alloc time;
//   - after drain (process exit) the table is empty and permanently dead:
//     every later alloc fails and every lookup misses — no handle outlives
//     its process;
//   - dup'd handles resolve to the same referent until individually closed.
//
// Lock ordering: handle shard mutexes are leaves; no code path holds one
// while taking any other kernel lock.
type handleTable struct {
	dead   atomic.Bool
	next   atomic.Uint32
	gen    atomic.Uint32
	shards [htShards]htShard
}

const htShards = 8

type htShard struct {
	mu sync.RWMutex
	m  map[uint32]hslot
}

func (t *handleTable) init() {
	for i := range t.shards {
		t.shards[i].m = map[uint32]hslot{}
	}
}

func (t *handleTable) shard(slot uint32) *htShard {
	return &t.shards[slot&(htShards-1)]
}

// capOf/capSlot/capGen pack and unpack handles. Slot 0 is never allocated,
// so CapSyscall (0) can never collide with an issued handle.
func capOf(slot, gen uint32) Cap { return Cap(uint64(slot) | uint64(gen)<<32) }

func capSlot(c Cap) uint32 { return uint32(c) }
func capGen(c Cap) uint32  { return uint32(c >> 32) }

// alloc inserts a slot and returns its handle; fails on a drained table.
func (t *handleTable) alloc(s hslot) (Cap, bool) {
	if t.dead.Load() {
		return 0, false
	}
	slot := t.next.Add(1)
	s.gen = t.gen.Add(1)
	sh := t.shard(slot)
	sh.mu.Lock()
	sh.m[slot] = s
	sh.mu.Unlock()
	// Unwind an alloc that raced drain: whichever entries drain's sweep
	// missed are removed here, keeping "no handle outlives its process".
	if t.dead.Load() {
		sh.mu.Lock()
		delete(sh.m, slot)
		sh.mu.Unlock()
		return 0, false
	}
	return capOf(slot, s.gen), true
}

// lookup resolves a handle: one shard read-lock plus the generation check.
func (t *handleTable) lookup(c Cap) (hslot, bool) {
	slot := capSlot(c)
	if slot == 0 {
		return hslot{}, false
	}
	sh := t.shard(slot)
	sh.mu.RLock()
	s, ok := sh.m[slot]
	sh.mu.RUnlock()
	if !ok || s.gen != capGen(c) {
		return hslot{}, false
	}
	return s, true
}

// close removes a handle, returning the slot it held.
func (t *handleTable) close(c Cap) (hslot, bool) {
	slot := capSlot(c)
	if slot == 0 {
		return hslot{}, false
	}
	sh := t.shard(slot)
	sh.mu.Lock()
	s, ok := sh.m[slot]
	if ok && s.gen == capGen(c) {
		delete(sh.m, slot)
	} else {
		ok = false
	}
	sh.mu.Unlock()
	return s, ok
}

// refsPort reports whether any live handle still references the port;
// close uses it to decide whether the pid-level channel grant may drop.
func (t *handleTable) refsPort(pt *Port) bool {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			if s.port == pt {
				sh.mu.RUnlock()
				return true
			}
		}
		sh.mu.RUnlock()
	}
	return false
}

// drain marks the table dead and empties it: the Exit teardown step for
// handles. Idempotent; concurrent allocs observe dead and unwind.
func (t *handleTable) drain() {
	t.dead.Store(true)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.m = map[uint32]hslot{}
		sh.mu.Unlock()
	}
}

// len counts live handles (introspection and tests).
func (t *handleTable) len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// handleRegistry maps pid → handle table so process teardown can revoke a
// process's handles no matter which path triggered the exit. Sessions hold
// their table pointer directly — the warm path never touches the registry.
type handleRegistry struct {
	shards [16]hrShard
}

type hrShard struct {
	mu sync.Mutex
	m  map[int]*handleTable
}

func newHandleRegistry() *handleRegistry {
	r := &handleRegistry{}
	for i := range r.shards {
		r.shards[i].m = map[int]*handleTable{}
	}
	return r
}

func (r *handleRegistry) shard(pid int) *hrShard {
	return &r.shards[uint(pid)&15]
}

func (r *handleRegistry) insert(pid int, t *handleTable) {
	sh := r.shard(pid)
	sh.mu.Lock()
	sh.m[pid] = t
	sh.mu.Unlock()
}

// dropPID drains and unregisters pid's table, if any.
func (r *handleRegistry) dropPID(pid int) {
	sh := r.shard(pid)
	sh.mu.Lock()
	t := sh.m[pid]
	delete(sh.m, pid)
	sh.mu.Unlock()
	if t != nil {
		t.drain()
	}
}

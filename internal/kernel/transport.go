// Inter-kernel transport: the distributed attestation plane.
//
// A Node attaches a transport endpoint to a running kernel. Two nodes that
// complete the handshake exchange three kinds of traffic, all speaking the
// binary wire vocabulary of wire_net.go:
//
//   - externalized labels: egress signs a label into certificate form under
//     the node's TPM-rooted Nexus key (§2.4); ingress verifies it through
//     the kernel's pre-verification cache and interns the resulting
//     key-attributed formula into the calling proxy's labelstore;
//   - proof registrations: a remote subject binds a proof (with inline,
//     reference, or certificate credentials) to an access tuple on the
//     serving kernel, exactly as a local setproof would;
//   - remote calls: IPC requests routed into the serving kernel's standard
//     dispatch() pipeline on behalf of a proxy process, so channel checks,
//     authorization, interposition, and auditing apply unchanged.
//
// Identity. Each side presents its boot id, its NK public key, and the
// TPM's endorsement of the NK ("key:EK says key:NK speaksfor
// key:EK.nexus"), then proves possession of the NK by signing the peer's
// nonce. A verified peer is the principal key:<NK-fp>.<boot-id> — the same
// principal the remote kernel uses for itself — and every process on it is
// represented locally by a proxy IPD whose principal is the remote
// process's global name (key:<NK>.<boot>.ipd.<pid>). Labels arriving over
// the connection are accepted only if their certificate is signed by the
// peer's NK and their speaker is rooted at the peer's kernel principal;
// anything else is cross-node speaker spoofing and is rejected before it
// reaches a labelstore.
//
// Locking (leaf-ward order, see DESIGN.md "Distributed attestation
// plane"): Node.mu guards the export/listener/peer tables and is never
// held across connection I/O or kernel registry operations; Peer.mu
// serializes one request/response exchange and the egress codec state;
// serverConn state is confined to its serve goroutine and needs no lock.
// Proxy teardown (conn close, Node.Close) takes kernel registry locks only
// after every transport lock is released.
package kernel

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

// Transport errors.
var (
	ErrTransportClosed = errors.New("kernel: transport closed")
	ErrBadPeer         = errors.New("kernel: peer identity verification failed")
	ErrSpoofedSpeaker  = errors.New("kernel: label speaker not rooted in sending node")
)

// Conn is a reliable, ordered, framed byte pipe between two nodes. Send
// transfers ownership of the frame; Recv returns frames owned by the
// caller. Close unblocks both directions on both ends.
type Conn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Listener accepts inbound transport connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the bound address in the transport's own notation.
	Addr() string
}

// Transport is a connection factory: the in-memory loopback for tests and
// single-process experiments, TCP for real inter-machine deployment.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// Node is a kernel's endpoint on the attestation plane.
type Node struct {
	k *Kernel

	mu        sync.Mutex
	exports   map[string]int // service name → public port id
	trustedEK map[string]bool
	listeners []Listener
	conns     map[Conn]bool  // accepted connections, for Close
	peers     map[*Peer]bool // dialed connections, for Close
	closed    bool

	wg sync.WaitGroup
}

// NewNode attaches a transport endpoint to the kernel.
func NewNode(k *Kernel) *Node {
	return &Node{
		k:         k,
		exports:   map[string]int{},
		trustedEK: map[string]bool{},
		conns:     map[Conn]bool{},
		peers:     map[*Peer]bool{},
	}
}

// Kernel returns the kernel this node fronts.
func (n *Node) Kernel() *Kernel { return n.k }

// Export publishes a port under a service name peers can Connect to.
func (n *Node) Export(service string, portID int) error {
	if _, ok := n.k.ports.find(portID); !ok {
		return ErrNoSuchPort
	}
	n.mu.Lock()
	n.exports[service] = portID
	n.mu.Unlock()
	return nil
}

// Unexport withdraws a service name.
func (n *Node) Unexport(service string) {
	n.mu.Lock()
	delete(n.exports, service)
	n.mu.Unlock()
}

// TrustEK adds a TPM endorsement-key fingerprint to the allowlist. With a
// non-empty allowlist, handshakes from platforms with any other EK fail;
// with an empty one any genuine platform connects and trust decisions fall
// entirely to guards reasoning over key principals.
func (n *Node) TrustEK(ekFP string) {
	n.mu.Lock()
	n.trustedEK[ekFP] = true
	n.mu.Unlock()
}

// Serve starts accepting peer connections on the listener; it returns
// immediately and serves in background goroutines until the node closes.
func (n *Node) Serve(l Listener) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.Close()
		return
	}
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				c.Close()
				return
			}
			n.conns[c] = true
			n.mu.Unlock()
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.serveConn(c)
			}()
		}
	}()
}

// Close tears the node down: listeners stop accepting, every connection is
// closed (which exits the proxies it created), and dialed peers become
// unusable. The kernel itself keeps running.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ls := n.listeners
	n.listeners = nil
	conns := make([]Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = map[Conn]bool{}
	peers := make([]*Peer, 0, len(n.peers))
	for p := range n.peers {
		peers = append(peers, p)
	}
	n.peers = map[*Peer]bool{}
	n.mu.Unlock()

	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		p.Close()
	}
	n.wg.Wait()
}

// identity is one side's handshake material.
type identity struct {
	bootID      string
	nkPub       *rsa.PublicKey
	nkFP, ekFP  string
	endorsement *cert.Certificate
}

// prin returns the kernel principal the identity authenticates.
func (id *identity) prin() nal.Principal {
	return nal.SubOf(nal.Key(id.nkFP), id.bootID)
}

// localIdentity collects this node's handshake material.
func (n *Node) localIdentity() (*identity, error) {
	end, err := n.k.nkEndorsement()
	if err != nil {
		return nil, err
	}
	return &identity{
		bootID:      n.k.BootID,
		nkPub:       &n.k.NK.PublicKey,
		nkFP:        tpm.Fingerprint(&n.k.NK.PublicKey),
		ekFP:        n.k.TPM.EKFingerprint(),
		endorsement: end,
	}, nil
}

// appendIdentity encodes bootID, NK public key, and endorsement.
func appendIdentity(dst []byte, id *identity) []byte {
	dst = appendNetString(dst, id.bootID)
	dst = appendNetBytes(dst, x509.MarshalPKCS1PublicKey(id.nkPub))
	return appendNetBytes(dst, id.endorsement.AppendWire(nil))
}

// verifyIdentity decodes and verifies a peer's handshake material: the
// endorsement must be a well-formed, signed "key:NK speaksfor
// key:EK.nexus" statement and the presented NK public key must match the
// fingerprint the endorsement names. Possession of the NK's private half
// is proven separately by the nonce signature.
func (n *Node) verifyIdentity(r *netCursor) (*identity, error) {
	bootID, ok := r.str()
	if !ok {
		return nil, ErrBadPeer
	}
	pubDER, ok := r.bytes()
	if !ok {
		return nil, ErrBadPeer
	}
	endWire, ok := r.bytes()
	if !ok {
		return nil, ErrBadPeer
	}
	pub, err := x509.ParsePKCS1PublicKey(pubDER)
	if err != nil {
		return nil, ErrBadPeer
	}
	end, _, err := cert.DecodeCertWire(endWire)
	if err != nil {
		return nil, ErrBadPeer
	}
	label, err := end.ToLabel()
	if err != nil {
		return nil, fmt.Errorf("%w: endorsement invalid: %v", ErrBadPeer, err)
	}
	says, ok2 := label.(nal.Says)
	if !ok2 {
		return nil, ErrBadPeer
	}
	ek, ok2 := says.P.(nal.Key)
	if !ok2 {
		return nil, ErrBadPeer
	}
	sf, ok2 := says.F.(nal.SpeaksFor)
	if !ok2 || sf.On != nil {
		return nil, ErrBadPeer
	}
	nk, ok2 := sf.A.(nal.Key)
	if !ok2 {
		return nil, ErrBadPeer
	}
	// The endorsement's object must be the EK's own nexus subprincipal:
	// key:EK.nexus, spoken by key:EK itself.
	sub, ok2 := sf.B.(nal.Sub)
	if !ok2 || sub.Tag != "nexus" || !sub.Parent.EqualPrin(ek) {
		return nil, ErrBadPeer
	}
	if tpm.Fingerprint(pub) != string(nk) {
		return nil, fmt.Errorf("%w: NK key does not match endorsement", ErrBadPeer)
	}
	n.mu.Lock()
	trusted := len(n.trustedEK) == 0 || n.trustedEK[string(ek)]
	n.mu.Unlock()
	if !trusted {
		return nil, fmt.Errorf("%w: platform EK %s not trusted", ErrBadPeer, ek)
	}
	return &identity{bootID: bootID, nkPub: pub, nkFP: string(nk), ekFP: string(ek), endorsement: end}, nil
}

// helloDigest is the proof-of-possession digest: role-tagged so a
// reflected signature cannot stand in for the other side's.
func helloDigest(role string, nonce []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("nexus-transport-hello/"))
	h.Write([]byte(role))
	h.Write([]byte{0})
	h.Write(nonce)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

func signHello(key *rsa.PrivateKey, role string, nonce []byte) ([]byte, error) {
	d := helloDigest(role, nonce)
	return rsa.SignPKCS1v15(rand.Reader, key, crypto.SHA256, d[:])
}

func verifyHello(pub *rsa.PublicKey, role string, nonce, sig []byte) error {
	d := helloDigest(role, nonce)
	if rsa.VerifyPKCS1v15(pub, crypto.SHA256, d[:], sig) != nil {
		return fmt.Errorf("%w: nonce signature invalid", ErrBadPeer)
	}
	return nil
}

// ---- Dialing side -------------------------------------------------------

// Peer is a verified connection to a remote node, usable by any session on
// this kernel. One request/response exchange is in flight at a time; the
// egress codec tables (formula remap, certificate dedup) are per-peer.
type Peer struct {
	n *Node
	c Conn

	mu      sync.Mutex
	enc     *nal.WireEncoder
	certIdx map[string]uint64 // cert fingerprint → wire index (1-based)

	prin   nal.Principal // key:<NK>.<boot>
	nkFP   string
	ekFP   string
	bootID string

	// mkey selects this peer's metrics counter stripe.
	mkey uint64

	closed atomic.Bool
}

// connCounter hands out metrics stripe keys, one per connection in either
// role, so concurrent connections write disjoint counter stripes.
var connCounter atomic.Uint64

// connDeadline is the optional Conn extension the node layer uses to
// bound the attestation handshake: a transport that can set wire deadlines
// exposes them here (tcpConn does), and the handshake runs under the
// transport's configured HandshakeTimeout. Transports without deadlines
// (loopback) handshake unbounded, as before.
type connDeadline interface {
	SetDeadline(t time.Time) error
	HandshakeTimeout() time.Duration
}

// beginHandshake arms the handshake deadline on conns that support one and
// returns the disarm func (clears the deadline so the established peer is
// not reaped by it later).
func beginHandshake(c Conn) func() {
	dc, ok := c.(connDeadline)
	if !ok {
		return func() {}
	}
	d := dc.HandshakeTimeout()
	if d <= 0 {
		return func() {}
	}
	dc.SetDeadline(time.Now().Add(d))
	return func() { dc.SetDeadline(time.Time{}) }
}

// Dial connects to a remote node, runs the identity handshake in both
// directions, and returns the verified peer. Dial and handshake are
// bounded by the transport's configured timeouts (for TCPTransport:
// DialTimeout and HandshakeTimeout); expiry surfaces as ETIMEDOUT.
func (n *Node) Dial(t Transport, addr string) (*Peer, error) {
	c, err := t.Dial(addr)
	if err != nil {
		return nil, err
	}
	p, err := n.handshakeClient(c)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			n.k.metrics.add(0, mNetTimeouts, 1)
		}
		c.Close()
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, ErrTransportClosed
	}
	n.peers[p] = true
	n.mu.Unlock()
	return p, nil
}

func (n *Node) handshakeClient(c Conn) (*Peer, error) {
	defer beginHandshake(c)()
	self, err := n.localIdentity()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	frame := []byte{fHello, transportVersion}
	frame = appendIdentity(frame, self)
	frame = appendNetBytes(frame, nonce)
	if err := c.Send(frame); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 || resp[0] != fHelloOK {
		return nil, ErrBadPeer
	}
	r := &netCursor{buf: resp[1:]}
	peer, err := n.verifyIdentity(r)
	if err != nil {
		return nil, err
	}
	srvNonce, ok := r.bytes()
	if !ok {
		return nil, ErrBadPeer
	}
	sig, ok := r.bytes()
	if !ok || !r.done() {
		return nil, ErrBadPeer
	}
	if err := verifyHello(peer.nkPub, "server", nonce, sig); err != nil {
		return nil, err
	}
	ackSig, err := signHello(n.k.NK, "client", srvNonce)
	if err != nil {
		return nil, err
	}
	ack := []byte{fHelloAck}
	ack = appendNetBytes(ack, ackSig)
	if err := c.Send(ack); err != nil {
		return nil, err
	}
	return &Peer{
		n: n, c: c,
		enc:     nal.NewWireEncoder(),
		certIdx: map[string]uint64{},
		prin:    peer.prin(),
		nkFP:    peer.nkFP,
		ekFP:    peer.ekFP,
		bootID:  peer.bootID,
		mkey:    connCounter.Add(1),
	}, nil
}

// KernelPrin returns the remote kernel's principal, key:<NK-fp>.<boot-id>.
func (p *Peer) KernelPrin() nal.Principal { return p.prin }

// NKFingerprint returns the remote Nexus key fingerprint.
func (p *Peer) NKFingerprint() string { return p.nkFP }

// EKFingerprint returns the remote platform's endorsement key fingerprint.
func (p *Peer) EKFingerprint() string { return p.ekFP }

// Close tears down the connection; the remote side exits the proxies this
// peer's traffic created.
func (p *Peer) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.c.Close()
	}
}

// request runs one exchange. It decodes fErr frames into errors: kernel
// ABI failures rebuild their errno class (so errors.Is(err, ErrDenied)
// works across the wire), handler-level failures rebuild as plain errors.
//
// Any transport-level failure closes the peer: once a frame may have been
// lost or torn, the per-connection codec tables (formula remap,
// certificate dedup) on the two sides can disagree, and a desynced table
// would resolve backreferences to the wrong values silently. Poisoning
// the connection turns that silent corruption into ErrTransportClosed.
func (p *Peer) request(frame []byte, wantType byte) ([]byte, error) {
	if p.closed.Load() {
		return nil, ErrTransportClosed
	}
	m := p.n.k.metrics
	t0 := time.Now()
	m.add(p.mkey, mNetSends, 1)
	m.add(p.mkey, mNetSendBytes, uint64(len(frame)))
	if err := p.c.Send(frame); err != nil {
		if errors.Is(err, ErrTimeout) {
			m.add(p.mkey, mNetTimeouts, 1)
		}
		p.Close()
		return nil, fmt.Errorf("%w: %v", ErrTransportClosed, err)
	}
	resp, err := p.c.Recv()
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			m.add(p.mkey, mNetTimeouts, 1)
		}
		p.Close()
		return nil, fmt.Errorf("%w: %v", ErrTransportClosed, err)
	}
	m.add(p.mkey, mNetRecvs, 1)
	m.add(p.mkey, mNetRecvBytes, uint64(len(resp)))
	m.netReqNs.observe(time.Since(t0))
	if len(resp) == 0 {
		p.Close()
		return nil, ErrTransportClosed
	}
	if resp[0] == fErr {
		r := &netCursor{buf: resp[1:]}
		en, ok1 := r.uvarint()
		op, ok2 := r.str()
		detail, ok3 := r.str()
		if !ok1 || !ok2 || !ok3 {
			p.Close()
			return nil, ErrTransportClosed
		}
		if Errno(en) == EOK {
			return nil, errors.New(detail)
		}
		return nil, abiErr(Errno(en), op, detail)
	}
	if resp[0] != wantType {
		p.Close()
		return nil, ErrTransportClosed
	}
	return resp[1:], nil
}

// connect asks the remote node for the public port behind a service name
// and grants the caller's proxy a channel to it.
func (p *Peer) connect(callerPID int, service string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	frame := []byte{fConnect}
	frame = binary.AppendUvarint(frame, uint64(callerPID))
	frame = appendNetString(frame, service)
	resp, err := p.request(frame, fConnOK)
	if err != nil {
		return 0, err
	}
	r := &netCursor{buf: resp}
	port, ok := r.uvarint()
	if !ok {
		return 0, ErrTransportClosed
	}
	return int(port), nil
}

// call forwards one IPC request to the remote port.
func (p *Peer) call(callerPID, portID int, m *Msg) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	frame := []byte{fCall}
	frame = binary.AppendUvarint(frame, uint64(callerPID))
	frame = binary.AppendUvarint(frame, uint64(portID))
	frame = appendMsgFields(frame, m)
	resp, err := p.request(frame, fCallOK)
	if err != nil {
		return nil, err
	}
	r := &netCursor{buf: resp}
	out, ok := r.bytes()
	if !ok {
		return nil, ErrTransportClosed
	}
	if len(out) == 0 {
		return nil, nil
	}
	return append([]byte(nil), out...), nil
}

// xferLabel ships an externalized label; the remote side verifies it and
// interns it into the caller's proxy labelstore, returning (proxy pid,
// label handle) for use as a reference credential in later proofs.
func (p *Peer) xferLabel(callerPID int, ext *ExternalLabel) (int, int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	frame := []byte{fXfer}
	frame = binary.AppendUvarint(frame, uint64(callerPID))
	frame = appendNetBytes(frame, ext.LabelCert.AppendWire(nil))
	resp, err := p.request(frame, fXferOK)
	if err != nil {
		return 0, 0, err
	}
	r := &netCursor{buf: resp}
	pid, ok1 := r.uvarint()
	handle, ok2 := r.uvarint()
	if !ok1 || !ok2 {
		return 0, 0, ErrTransportClosed
	}
	return int(pid), int(handle), nil
}

// RemoteCred is one credential in a remote proof registration: exactly one
// field is set. Inline formulas travel through the per-connection formula
// codec; Ref names a label handle previously deposited in the caller's
// proxy labelstore by TransferLabelRemote; Cert ships a certificate
// (deduplicated per connection by fingerprint).
type RemoteCred struct {
	Inline nal.Formula
	Ref    int
	Cert   *cert.Certificate
}

// setProof registers a proof for the caller's proxy on the remote kernel.
func (p *Peer) setProof(callerPID int, op, obj string, pf *proof.Proof, creds []RemoteCred) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	frame := []byte{fSetProof}
	frame = binary.AppendUvarint(frame, uint64(callerPID))
	frame = appendNetString(frame, op)
	frame = appendNetString(frame, obj)
	text := ""
	if pf != nil {
		text = pf.String()
	}
	frame = appendNetString(frame, text)
	frame = binary.AppendUvarint(frame, uint64(len(creds)))
	for i, c := range creds {
		switch {
		case c.Inline != nil:
			body, err := p.enc.AppendFormula(nil, c.Inline)
			if err != nil {
				// Earlier credentials of this never-sent frame may already
				// have committed remap/dedup state the server will not
				// see; the connection's numbering is no longer shared, so
				// poison it rather than risk silent misresolution later.
				p.Close()
				return fmt.Errorf("credential %d: %w", i, err)
			}
			frame = append(frame, wcInline)
			frame = appendNetBytes(frame, body)
		case c.Cert != nil:
			fp := c.Cert.Fingerprint()
			if idx, ok := p.certIdx[fp]; ok {
				frame = append(frame, wcCertRef)
				frame = binary.AppendUvarint(frame, idx)
			} else {
				frame = append(frame, wcCert)
				frame = appendNetBytes(frame, c.Cert.AppendWire(nil))
				p.certIdx[fp] = uint64(len(p.certIdx) + 1)
			}
		default:
			frame = append(frame, wcRef)
			frame = binary.AppendUvarint(frame, uint64(c.Ref))
		}
	}
	_, err := p.request(frame, fOK)
	return err
}

// ---- Serving side -------------------------------------------------------

// serverConn is the per-connection ingress state; it is confined to the
// connection's serve goroutine.
type serverConn struct {
	n    *Node
	k    *Kernel
	c    Conn
	peer *identity
	prin nal.Principal

	dec     *nal.WireDecoder
	certs   []*cert.Certificate // per-connection dedup table (wcCertRef)
	proxies map[int]*Process    // remote pid → proxy IPD

	// mkey selects this connection's metrics counter stripe.
	mkey uint64
}

func (n *Node) serveConn(c Conn) {
	sc := &serverConn{
		n: n, k: n.k, c: c,
		dec:     nal.NewWireDecoder(),
		proxies: map[int]*Process{},
		mkey:    connCounter.Add(1),
	}
	defer sc.teardown()
	if err := sc.handshake(); err != nil {
		if errors.Is(err, ErrTimeout) {
			sc.k.metrics.add(sc.mkey, mNetTimeouts, 1)
		}
		return
	}
	m := sc.k.metrics
	for {
		frame, err := c.Recv()
		if err != nil {
			return
		}
		m.add(sc.mkey, mNetRecvs, 1)
		m.add(sc.mkey, mNetRecvBytes, uint64(len(frame)))
		resp, fatal := sc.handle(frame)
		m.add(sc.mkey, mNetSends, 1)
		m.add(sc.mkey, mNetSendBytes, uint64(len(resp)))
		if err := c.Send(resp); err != nil {
			return
		}
		if fatal {
			// The ingress codec tables stopped at a prefix the client no
			// longer agrees with; every later backreference could resolve
			// silently wrong. Tear the connection down instead.
			return
		}
	}
}

// teardown exits every proxy this connection created and unregisters the
// connection. It runs with no transport lock held except Node.mu for the
// map update, released before the kernel registry work.
func (sc *serverConn) teardown() {
	sc.c.Close()
	sc.n.mu.Lock()
	delete(sc.n.conns, sc.c)
	sc.n.mu.Unlock()
	for _, p := range sc.proxies {
		p.Exit()
	}
}

func (sc *serverConn) handshake() error {
	defer beginHandshake(sc.c)()
	frame, err := sc.c.Recv()
	if err != nil {
		return err
	}
	if len(frame) < 2 || frame[0] != fHello || frame[1] != transportVersion {
		return ErrBadPeer
	}
	r := &netCursor{buf: frame[2:]}
	peer, err := sc.n.verifyIdentity(r)
	if err != nil {
		return err
	}
	cliNonce, ok := r.bytes()
	if !ok || !r.done() {
		return ErrBadPeer
	}
	self, err := sc.n.localIdentity()
	if err != nil {
		return err
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	sig, err := signHello(sc.k.NK, "server", cliNonce)
	if err != nil {
		return err
	}
	resp := []byte{fHelloOK}
	resp = appendIdentity(resp, self)
	resp = appendNetBytes(resp, nonce)
	resp = appendNetBytes(resp, sig)
	if err := sc.c.Send(resp); err != nil {
		return err
	}
	ack, err := sc.c.Recv()
	if err != nil {
		return err
	}
	if len(ack) == 0 || ack[0] != fHelloAck {
		return ErrBadPeer
	}
	ra := &netCursor{buf: ack[1:]}
	ackSig, ok := ra.bytes()
	if !ok || !ra.done() {
		return ErrBadPeer
	}
	if err := verifyHello(peer.nkPub, "client", nonce, ackSig); err != nil {
		return err
	}
	sc.peer = peer
	sc.prin = peer.prin()
	return nil
}

// proxy returns (creating on first use) the proxy IPD standing in for the
// peer's process with the given remote pid. Its principal is the remote
// process's global name, so server-side authorization, labels, and audit
// records attribute cross-node activity to the real remote identity.
func (sc *serverConn) proxy(remotePID int) *Process {
	if p, ok := sc.proxies[remotePID]; ok && !p.Exited() {
		return p
	}
	p := sc.k.createRemoteProxy(nal.SubChain(sc.prin, "ipd", fmt.Sprint(remotePID)))
	sc.proxies[remotePID] = p
	return p
}

// handle processes one request frame and returns the response frame.
// fatal reports that per-connection codec state may have desynced from
// the client's and the connection must close after the response is sent.
func (sc *serverConn) handle(frame []byte) (resp []byte, fatal bool) {
	if len(frame) == 0 {
		return appendErrFrame(nil, "transport", abiErr(EINVAL, "transport", "empty frame")), true
	}
	typ := frame[0]
	r := &netCursor{buf: frame[1:]}
	switch typ {
	case fConnect:
		return sc.handleConnect(r), false
	case fCall:
		return sc.handleCall(r), false
	case fXfer:
		return sc.handleXfer(r), false
	case fSetProof:
		return sc.handleSetProof(r)
	}
	return appendErrFrame(nil, "transport", abiErr(EINVAL, "transport", "unknown frame type")), true
}

func (sc *serverConn) handleConnect(r *netCursor) []byte {
	pid, ok1 := r.uvarint()
	service, ok2 := r.str()
	if !ok1 || !ok2 || !r.done() {
		return appendErrFrame(nil, "connect", abiErr(EINVAL, "connect", "malformed frame"))
	}
	sc.n.mu.Lock()
	portID, ok := sc.n.exports[service]
	sc.n.mu.Unlock()
	if !ok {
		return appendErrFrame(nil, "connect", abiErr(ENOENT, "connect", "no exported service "+service))
	}
	if err := sc.k.GrantChannel(sc.proxy(int(pid)), portID); err != nil {
		return appendErrFrame(nil, "connect", err)
	}
	resp := []byte{fConnOK}
	return binary.AppendUvarint(resp, uint64(portID))
}

func (sc *serverConn) handleCall(r *netCursor) []byte {
	pid, ok1 := r.uvarint()
	portID, ok2 := r.uvarint()
	if !ok1 || !ok2 {
		return appendErrFrame(nil, "call", abiErr(EINVAL, "call", "malformed frame"))
	}
	m, ok := readMsgFields(r)
	if !ok || !r.done() {
		return appendErrFrame(nil, "call", abiErr(EINVAL, "call", "malformed message"))
	}
	// The standard dispatch pipeline: channel check, authorization against
	// the proxy's (remote) principal, interposition, handler.
	out, err := sc.k.Call(sc.proxy(int(pid)), int(portID), m)
	if err != nil {
		return appendErrFrame(nil, m.Op, err)
	}
	return appendNetBytes([]byte{fCallOK}, out)
}

// handleXfer is credential ingress: verify through the kernel's
// pre-verification cache, enforce the cross-node speaker rooting rule, and
// intern the label into the caller's proxy labelstore.
func (sc *serverConn) handleXfer(r *netCursor) []byte {
	pid, ok := r.uvarint()
	if !ok {
		return appendErrFrame(nil, "xferlabel", abiErr(EINVAL, "xferlabel", "malformed frame"))
	}
	certWire, ok := r.bytes()
	if !ok || !r.done() {
		return appendErrFrame(nil, "xferlabel", abiErr(EINVAL, "xferlabel", "malformed frame"))
	}
	c, _, err := cert.DecodeCertWire(certWire)
	if err != nil {
		sc.k.metrics.add(sc.mkey, mWireDecodeErrs, 1)
		return appendErrFrame(nil, "xferlabel", abiErr(EINVAL, "xferlabel", err.Error()))
	}
	sc.k.metrics.add(sc.mkey, mWireDecodes, 1)
	f, _, err := sc.k.certs.Label(c)
	if err != nil {
		return appendErrFrame(nil, "xferlabel", abiErr(EACCES, "xferlabel", err.Error()))
	}
	// The certificate must be signed by the sending node's NK — a label
	// signed by any other key, however valid, did not originate on the
	// peer and cannot ride its connection.
	says, ok2 := f.(nal.Says)
	if !ok2 {
		return appendErrFrame(nil, "xferlabel", abiErr(EINVAL, "xferlabel", "label not a says"))
	}
	if signer, ok3 := says.P.(nal.Key); !ok3 || string(signer) != sc.peer.nkFP {
		return appendErrFrame(nil, "xferlabel",
			fmt.Errorf("%w: label signed by %v, connection authenticated %s",
				ErrSpoofedSpeaker, says.P, sc.peer.nkFP))
	}
	// Cross-node speaker rooting: the attributed speaker must be the
	// sending kernel's principal or one of its subprincipals. Without this
	// check a node could sign (with its own genuine NK) a label claiming
	// another node's process said something, and the imported formula
	// would attribute it there.
	st, err := c.Statement()
	if err != nil {
		return appendErrFrame(nil, "xferlabel", abiErr(EINVAL, "xferlabel", err.Error()))
	}
	if st.Speaker != "" {
		sp, err := nal.ParsePrincipal(st.Speaker)
		if err != nil {
			return appendErrFrame(nil, "xferlabel", abiErr(EINVAL, "xferlabel", "bad speaker"))
		}
		if !nal.IsAncestor(sc.prin, sp) {
			return appendErrFrame(nil, "xferlabel",
				fmt.Errorf("%w: speaker %s not under %s", ErrSpoofedSpeaker, st.Speaker, sc.prin))
		}
	}
	proxy := sc.proxy(int(pid))
	l := proxy.Labels.insertSystem(f)
	resp := []byte{fXferOK}
	resp = binary.AppendUvarint(resp, uint64(proxy.PID))
	return binary.AppendUvarint(resp, uint64(l.Handle))
}

// handleSetProof decodes the credential vector *before* anything that can
// fail for non-codec reasons (the proof parse): inline-credential and
// certificate decode commit per-connection state the client has already
// committed on its side, so by the time a benign failure can occur both
// tables agree. Codec-level failures report fatal and close the
// connection — a partially consumed definition stream must not survive.
func (sc *serverConn) handleSetProof(r *netCursor) (resp []byte, fatal bool) {
	pid, ok1 := r.uvarint()
	op, ok2 := r.str()
	obj, ok3 := r.str()
	text, ok4 := r.str()
	ncreds, ok5 := r.uvarint()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || ncreds > uint64(r.remaining()) {
		return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "malformed frame")), true
	}
	proxy := sc.proxy(int(pid))
	creds := make([]Credential, 0, ncreds)
	for i := uint64(0); i < ncreds; i++ {
		kind, ok := r.byte()
		if !ok {
			return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "truncated credentials")), true
		}
		switch kind {
		case wcInline:
			body, ok := r.bytes()
			if !ok {
				return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "truncated inline credential")), true
			}
			id, _, err := sc.dec.DecodeFormula(body)
			if err != nil {
				sc.k.metrics.add(sc.mkey, mWireDecodeErrs, 1)
				return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", err.Error())), true
			}
			sc.k.metrics.add(sc.mkey, mWireDecodes, 1)
			creds = append(creds, Credential{Inline: nal.FormulaOfID(id)})
		case wcRef:
			h, ok := r.uvarint()
			if !ok {
				return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "truncated ref credential")), true
			}
			creds = append(creds, Credential{Ref: &LabelRef{PID: proxy.PID, Handle: int(h)}})
		case wcCert:
			cw, ok := r.bytes()
			if !ok {
				return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "truncated certificate")), true
			}
			c, _, err := cert.DecodeCertWire(cw)
			if err != nil {
				sc.k.metrics.add(sc.mkey, mWireDecodeErrs, 1)
				return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", err.Error())), true
			}
			sc.k.metrics.add(sc.mkey, mWireDecodes, 1)
			sc.certs = append(sc.certs, c)
			creds = append(creds, Credential{Cert: c})
		case wcCertRef:
			idx, ok := r.uvarint()
			if !ok || idx == 0 || idx > uint64(len(sc.certs)) {
				return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "dangling certificate reference")), true
			}
			creds = append(creds, Credential{Cert: sc.certs[idx-1]})
		default:
			return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "unknown credential kind")), true
		}
	}
	if !r.done() {
		return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "trailing bytes")), true
	}
	var pf *proof.Proof
	if text != "" {
		var err error
		if pf, err = proof.Parse(text); err != nil {
			return appendErrFrame(nil, "setproof", abiErr(EINVAL, "setproof", "bad proof: "+err.Error())), false
		}
	}
	sc.k.SetProof(proxy, op, obj, pf, creds)
	return []byte{fOK}, false
}

// Inter-kernel transport: the distributed attestation plane.
//
// A Node attaches a transport endpoint to a running kernel. Two nodes that
// complete the handshake exchange four kinds of traffic, all speaking the
// binary wire vocabulary of wire_net.go:
//
//   - externalized labels: egress signs a label into certificate form under
//     the node's TPM-rooted Nexus key (§2.4); ingress verifies it through
//     the kernel's pre-verification cache and interns the resulting
//     key-attributed formula into the calling proxy's labelstore. A label
//     whose certificate already verified on this connection re-crosses
//     authenticated by an HMAC under the handshake-derived session key —
//     no public-key operation on the warm path;
//   - proof registrations: a remote subject binds a proof (with inline,
//     reference, or certificate credentials) to an access tuple on the
//     serving kernel, exactly as a local setproof would;
//   - remote calls: IPC requests routed into the serving kernel's standard
//     dispatch() pipeline on behalf of a proxy process, so channel checks,
//     authorization, interposition, and auditing apply unchanged;
//   - batched submissions: one frame carrying N operations against one
//     remote port, executed through the flags-preloaded dispatch variant
//     with a pooled marshal arena, answered by one completion-vector frame.
//
// Identity. Each side presents its boot id, its Ed25519 NK public key, and
// the TPM's endorsement of the NK ("key:EK says key:NK speaksfor
// key:EK.nexus" — the endorsement itself stays RSA, because that is what
// TPM silicon signs with), then proves possession of the NK by signing the
// handshake transcript: the peer's nonce plus both sides' ephemeral X25519
// keys, role-tagged so a reflected signature cannot stand in for the other
// side's. Binding the ephemeral keys into the signatures means a
// man-in-the-middle cannot substitute its own key agreement without
// breaking a signature, so the derived session key is shared only by the
// two authenticated kernels. A verified peer is the principal
// key:<NK-fp>.<boot-id> — the same principal the remote kernel uses for
// itself — and every process on it is represented locally by a proxy IPD
// whose principal is the remote process's global name
// (key:<NK>.<boot>.ipd.<pid>). Labels arriving over the connection are
// accepted only if their certificate is signed by the peer's NK and their
// speaker is rooted at the peer's kernel principal; anything else is
// cross-node speaker spoofing and is rejected before it reaches a
// labelstore.
//
// Pipelining. After the handshake every non-credit frame carries a request
// id. The dialing side keeps a pending-call table and may have up to
// TransportConfig.MaxInflight requests outstanding; the window full
// condition surfaces as EAGAIN. The serving side processes requests
// strictly in arrival order, so the observable ordering semantics are
// those of the lockstep protocol — only the waiting overlaps.
//
// Runtime. Connections are not goroutine-per-connection: every established
// connection is registered with one of the node's sharded schedulers (see
// sched.go) and is driven by a bounded worker pool — ingress workers run
// the serving side (handlers included), a separate demux pool delivers
// responses on dialed peers, so a handler making a nested remote call can
// never starve its own response delivery. On Linux each shard worker owns
// its own epoll instance and parks in EpollWait directly (netpoll_linux.go)
// — socket readiness resumes the worker with no poller-thread handoff. An
// idle connection costs a file descriptor and its registration, not a
// goroutine stack. Frames arrive through per-shard pooled arenas, request
// frames whose payload cannot escape the exchange are recycled after the
// response is sent, and outbound frames leave through per-connection
// egress combiners (egress.go): frames staged within one scheduling
// quantum — responses, credit grants, pipelined requests — flush as a
// single write at quantum end.
//
// Flow control. Each side advertises a receive window in the handshake
// (transport version 3) and every post-handshake non-credit frame consumes
// one send credit toward the peer; credits return in batches via fCredit
// frames, which are exempt from the accounting. A client with no credits
// fails fast with EAGAIN (same taxonomy as the in-flight window); a server
// with no credits parks the connection's pending requests in a bounded
// backlog — bounded because a peer that overruns the advertised window is
// committing a protocol violation and is poisoned. A slow consumer
// therefore stalls its own stream while the kernel's memory stays bounded.
//
// Locking (leaf-ward order, see DESIGN.md "Remote fast path"): Node.mu
// guards the export/listener/peer tables and is never held across
// connection I/O or kernel registry operations; Peer.sendMu serializes
// frame staging and the egress codec state (formula remap, certificate
// dedup, re-attestation table, warm-tag HMAC) but is never held across
// the wire write itself — the combining flusher (flushLocked) releases it
// around the write, so sendMu orders only against the frame-pool lock
// (kernel.Peer.sendMu → kernel.bufPool.mu); Peer.pendMu guards the
// pending-call table, the request-credit counter, and the channel free
// list, and is a leaf — it is never held across I/O, encoding, or any
// other lock; serverConn state (its egress combiner included) needs no
// lock because the scheduler guarantees at most one worker runs a given
// connection at a time (the confinement that used to come from the serve
// goroutine). Credit frames ride the same egress combiners as everything
// else: with sendMu never held across I/O, a demux worker returning
// credits is no longer exposed to a stalled sender. Proxy teardown (conn
// close, Node.Close) takes kernel registry locks only after every
// transport lock is released.
package kernel

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// Transport errors.
var (
	ErrTransportClosed = errors.New("kernel: transport closed")
	ErrBadPeer         = errors.New("kernel: peer identity verification failed")
	ErrSpoofedSpeaker  = errors.New("kernel: label speaker not rooted in sending node")

	// ErrRemoteHandler classifies a handler-level error rebuilt from a
	// peer's wire frame: the remote handler itself failed (EOK class, not
	// a kernel ABI error). The original handler text follows the sentinel.
	ErrRemoteHandler = errors.New("kernel: remote handler error")
)

// Conn is a reliable, ordered, framed byte pipe between two nodes. Send
// transfers ownership of the frame; Recv returns frames owned by the
// caller. Close unblocks both directions on both ends.
type Conn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Listener accepts inbound transport connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the bound address in the transport's own notation.
	Addr() string
}

// Transport is a connection factory: the in-memory loopback for tests and
// single-process experiments, TCP for real inter-machine deployment.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// Node is a kernel's endpoint on the attestation plane.
type Node struct {
	k   *Kernel
	cfg TransportConfig // resolved (withDefaults applied)

	mu        sync.Mutex
	exports   map[string]int // service name → public port id
	trustedEK map[string]bool
	listeners []Listener
	conns     map[Conn]*schedConn // accepted conns; nil until registered
	peers     map[*Peer]bool      // dialed connections, for Close
	closed    bool

	// nconns counts accepted connections (handshaking + established) for
	// the shed-load gate.
	nconns atomic.Int64

	// ingress runs accepted connections (handlers included); demux delivers
	// responses on dialed peers. Two pools so a handler blocked in a nested
	// remote call cannot starve the delivery of the response it waits for.
	ingress *connSched
	demux   *connSched

	wg sync.WaitGroup
}

// NewNode attaches a transport endpoint to the kernel with the default
// runtime configuration.
func NewNode(k *Kernel) *Node { return NewNodeWithConfig(k, TransportConfig{}) }

// NewNodeWithConfig attaches a transport endpoint with an explicit runtime
// configuration; zero fields select their defaults.
func NewNodeWithConfig(k *Kernel, cfg TransportConfig) *Node {
	cfg = cfg.withDefaults()
	return &Node{
		k:         k,
		cfg:       cfg,
		exports:   map[string]int{},
		trustedEK: map[string]bool{},
		conns:     map[Conn]*schedConn{},
		peers:     map[*Peer]bool{},
		ingress:   newConnSched(cfg.Workers, k.metrics),
		demux:     newConnSched(demuxWorkers(cfg.Workers), k.metrics),
	}
}

// Kernel returns the kernel this node fronts.
func (n *Node) Kernel() *Kernel { return n.k }

// Export publishes a port under a service name peers can Connect to.
func (n *Node) Export(service string, portID int) error {
	if _, ok := n.k.ports.find(portID); !ok {
		return ErrNoSuchPort
	}
	n.mu.Lock()
	n.exports[service] = portID
	n.mu.Unlock()
	return nil
}

// Unexport withdraws a service name.
func (n *Node) Unexport(service string) {
	n.mu.Lock()
	delete(n.exports, service)
	n.mu.Unlock()
}

// TrustEK adds a TPM endorsement-key fingerprint to the allowlist. With a
// non-empty allowlist, handshakes from platforms with any other EK fail;
// with an empty one any genuine platform connects and trust decisions fall
// entirely to guards reasoning over key principals.
func (n *Node) TrustEK(ekFP string) {
	n.mu.Lock()
	n.trustedEK[ekFP] = true
	n.mu.Unlock()
}

// Serve starts accepting peer connections on the listener; it returns
// immediately and serves through the scheduler until the node closes.
// Beyond TransportConfig.MaxConns the node sheds load gracefully: the
// connection is accepted, answered with a typed EAGAIN error frame, and
// closed — the dialer sees a clean retryable error, never a silent drop.
func (n *Node) Serve(l Listener) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.Close()
		return
	}
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			if n.nconns.Load() >= int64(n.cfg.MaxConns) {
				n.k.metrics.add(0, mNetShed, 1)
				n.wg.Add(1)
				// Reject off the accept loop so a slow rejected dialer
				// cannot stall further accepts.
				go func(c Conn) {
					defer n.wg.Done()
					c.Send(appendErrFrame(nil, 0, "accept",
						abiErr(EAGAIN, "accept", "node connection limit reached")))
					c.Close()
				}(c)
				continue
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				c.Close()
				return
			}
			n.conns[c] = nil
			n.mu.Unlock()
			n.nconns.Add(1)
			n.k.metrics.netConns.Add(1)
			n.wg.Add(1)
			go n.serveConn(c)
		}
	}()
}

// Close tears the node down: listeners stop accepting, every connection is
// closed (which exits the proxies it created), and dialed peers become
// unusable. The kernel itself keeps running.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ls := n.listeners
	n.listeners = nil
	conns := make([]Conn, 0, len(n.conns))
	kicks := make([]*schedConn, 0, len(n.conns))
	for c, sc := range n.conns {
		conns = append(conns, c)
		if sc != nil {
			kicks = append(kicks, sc)
		}
	}
	n.conns = map[Conn]*schedConn{}
	peers := make([]*Peer, 0, len(n.peers))
	for p := range n.peers {
		peers = append(peers, p)
	}
	n.peers = map[*Peer]bool{}
	n.mu.Unlock()

	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Kick registered server conns: closing a TCP socket locally produces
	// no epoll event, so a parked connection must be queued explicitly for
	// its worker to observe the closed descriptor and tear it down.
	for _, sc := range kicks {
		sc.notify()
	}
	for _, p := range peers {
		p.Close()
	}
	n.wg.Wait()
	n.ingress.close()
	n.demux.close()
}

// identity is one side's handshake material.
type identity struct {
	bootID      string
	nkPub       ed25519.PublicKey
	nkFP, ekFP  string
	endorsement *cert.Certificate
}

// prin returns the kernel principal the identity authenticates.
func (id *identity) prin() nal.Principal {
	return nal.SubOf(nal.Key(id.nkFP), id.bootID)
}

// localIdentity collects this node's handshake material.
func (n *Node) localIdentity() (*identity, error) {
	end, err := n.k.nkEndorsement()
	if err != nil {
		return nil, err
	}
	return &identity{
		bootID:      n.k.BootID,
		nkPub:       n.k.NK.Public().(ed25519.PublicKey),
		nkFP:        n.k.nkFP,
		ekFP:        n.k.TPM.EKFingerprint(),
		endorsement: end,
	}, nil
}

// appendIdentity encodes bootID, NK public key, and endorsement.
func appendIdentity(dst []byte, id *identity) []byte {
	dst = appendNetString(dst, id.bootID)
	dst = appendNetBytes(dst, id.nkPub)
	return appendNetBytes(dst, id.endorsement.AppendWire(nil))
}

// verifyIdentity decodes and verifies a peer's handshake material: the
// endorsement must be a well-formed, signed "key:NK speaksfor
// key:EK.nexus" statement and the presented NK public key must match the
// fingerprint the endorsement names. Possession of the NK's private half
// is proven separately by the transcript signature.
func (n *Node) verifyIdentity(r *netCursor) (*identity, error) {
	bootID, ok := r.str()
	if !ok {
		return nil, ErrBadPeer
	}
	pubRaw, ok := r.bytes()
	if !ok || len(pubRaw) != ed25519.PublicKeySize {
		return nil, ErrBadPeer
	}
	endWire, ok := r.bytes()
	if !ok {
		return nil, ErrBadPeer
	}
	// Copy out of the frame: the identity outlives the handshake exchange.
	pub := ed25519.PublicKey(append([]byte(nil), pubRaw...))
	end, _, err := cert.DecodeCertWire(endWire)
	if err != nil {
		return nil, ErrBadPeer
	}
	label, err := end.ToLabel()
	if err != nil {
		return nil, fmt.Errorf("%w: endorsement invalid: %v", ErrBadPeer, err)
	}
	says, ok2 := label.(nal.Says)
	if !ok2 {
		return nil, ErrBadPeer
	}
	ek, ok2 := says.P.(nal.Key)
	if !ok2 {
		return nil, ErrBadPeer
	}
	sf, ok2 := says.F.(nal.SpeaksFor)
	if !ok2 || sf.On != nil {
		return nil, ErrBadPeer
	}
	nk, ok2 := sf.A.(nal.Key)
	if !ok2 {
		return nil, ErrBadPeer
	}
	// The endorsement's object must be the EK's own nexus subprincipal:
	// key:EK.nexus, spoken by key:EK itself.
	sub, ok2 := sf.B.(nal.Sub)
	if !ok2 || sub.Tag != "nexus" || !sub.Parent.EqualPrin(ek) {
		return nil, ErrBadPeer
	}
	if cert.FingerprintEd25519(pub) != string(nk) {
		return nil, fmt.Errorf("%w: NK key does not match endorsement", ErrBadPeer)
	}
	n.mu.Lock()
	trusted := len(n.trustedEK) == 0 || n.trustedEK[string(ek)]
	n.mu.Unlock()
	if !trusted {
		return nil, fmt.Errorf("%w: platform EK %s not trusted", ErrBadPeer, ek)
	}
	return &identity{bootID: bootID, nkPub: pub, nkFP: string(nk), ekFP: string(ek), endorsement: end}, nil
}

// helloDigest is the proof-of-possession transcript digest: role-tagged so
// a reflected signature cannot stand in for the other side's, covering
// both ephemeral X25519 keys so a man-in-the-middle cannot splice its own
// key agreement into an otherwise authentic handshake, and covering both
// advertised receive windows so an attacker cannot shrink (or inflate) a
// side's flow-control window without breaking a signature.
func helloDigest(role string, nonce, cliEph, srvEph []byte, cliWin, srvWin int) [32]byte {
	h := sha256.New()
	h.Write([]byte("nexus-transport-hello/3/"))
	h.Write([]byte(role))
	h.Write([]byte{0})
	h.Write(nonce)
	h.Write([]byte{0})
	h.Write(cliEph)
	h.Write([]byte{0})
	h.Write(srvEph)
	h.Write([]byte{0})
	var w [16]byte
	binary.LittleEndian.PutUint64(w[:8], uint64(cliWin))
	binary.LittleEndian.PutUint64(w[8:], uint64(srvWin))
	h.Write(w[:])
	var d [32]byte
	h.Sum(d[:0])
	return d
}

func signHello(key ed25519.PrivateKey, role string, nonce, cliEph, srvEph []byte, cliWin, srvWin int) []byte {
	d := helloDigest(role, nonce, cliEph, srvEph, cliWin, srvWin)
	return ed25519.Sign(key, d[:])
}

func verifyHello(pub ed25519.PublicKey, role string, nonce, cliEph, srvEph, sig []byte, cliWin, srvWin int) error {
	d := helloDigest(role, nonce, cliEph, srvEph, cliWin, srvWin)
	if !ed25519.Verify(pub, d[:], sig) {
		return fmt.Errorf("%w: transcript signature invalid", ErrBadPeer)
	}
	return nil
}

// validWindow checks an advertised receive window against protocol bounds.
func validWindow(w uint64) bool { return w >= 1 && w <= maxRecvWindow }

// deriveSessionKey produces the per-connection symmetric key from the
// X25519 shared secret and both handshake nonces. Both sides compute the
// same value; it authenticates warm re-attestations for the life of the
// connection and is never written to the wire.
func deriveSessionKey(shared, cliNonce, srvNonce []byte) []byte {
	mac := hmac.New(sha256.New, shared)
	mac.Write([]byte("nexus-session/3"))
	mac.Write([]byte{0})
	mac.Write(cliNonce)
	mac.Write([]byte{0})
	mac.Write(srvNonce)
	return mac.Sum(nil)
}

// reTagger authenticates warm label re-crossings: an HMAC under the
// session key over the target pid and the certificate fingerprint. Only
// the two handshake parties hold the key, so a tag proves the request
// originated on the authenticated peer — the property the cold path got
// from the certificate signature itself. The keyed HMAC state and the
// scratch buffers are cached per connection (confinement is the owner's:
// Peer.sendMu on the dialing side, the scheduler worker on the serving
// side), so a warm crossing computes its tag without allocating.
type reTagger struct {
	mac     hash.Hash
	scratch []byte // string→bytes staging for the fingerprint
	tagBuf  []byte // Sum output, valid until the next tag call
}

var xferReLabel = []byte("nexus-xfer-re")

func newReTagger(sessKey []byte) *reTagger {
	return &reTagger{mac: hmac.New(sha256.New, sessKey)}
}

// tag computes the re-attestation tag for (callerPID, fp); the result is
// owned by the tagger and valid until the next call.
func (rt *reTagger) tag(callerPID int, fp string) []byte {
	rt.mac.Reset()
	rt.mac.Write(xferReLabel)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(callerPID))
	rt.mac.Write(b[:])
	rt.scratch = append(rt.scratch[:0], fp...)
	rt.mac.Write(rt.scratch)
	rt.tagBuf = rt.mac.Sum(rt.tagBuf[:0])
	return rt.tagBuf
}

// ---- Dialing side -------------------------------------------------------

// netResp is one matched response as delivered by the demux worker.
type netResp struct {
	typ     byte
	payload []byte // after type byte and request id
}

// Peer is a verified connection to a remote node, usable by any session on
// this kernel. Requests are pipelined: up to TransportConfig.MaxInflight
// may be outstanding (more fail with EAGAIN), matched to callers by
// request id through the pending table. The egress codec tables (formula
// remap, certificate dedup, re-attestation) are per-peer, guarded by
// sendMu. Response frames are delivered by a demux-pool worker through
// onFrame.
type Peer struct {
	n *Node
	c Conn

	// sendMu serializes frame staging and the egress codec state. Because
	// the server processes frames in arrival order, whatever order frames
	// are staged under sendMu is the order they take effect remotely. It is
	// never held across the wire write: flushLocked releases it around the
	// write, so staging only ever waits on encoding, not on I/O.
	sendMu   sync.Mutex
	enc      *nal.WireEncoder
	certIdx  map[string]uint64 // cert fingerprint → wire index (1-based)
	attested *lruTable[bool]   // cert fingerprints verified on this conn
	eg       *egress           // outbound combiner (staging under sendMu)
	flushing bool              // a combining flush is in progress (sendMu)
	reTag    *reTagger         // warm re-attestation tags (sendMu)

	// pendMu guards the pending-call table, the request-credit counter, and
	// the response-channel free list; it is a leaf lock, never held across
	// I/O or any other lock.
	pendMu   sync.Mutex
	pending  map[uint64]chan netResp
	chanFree []chan netResp // pooled single-use response channels
	nextID   uint64
	poisoned bool
	// reqCredits is the send window toward the server: initialized to the
	// server's advertised receive window, consumed one per request frame,
	// replenished by inbound fCredit frames (clamped at the advertised
	// window, so a hostile over-grant cannot widen the stream).
	reqCredits int

	// maxInflight and srvWin are this connection's resolved limits:
	// the pipelined-request cap and the server's advertised window.
	maxInflight int
	srvWin      int
	// myWin is the window we advertised; respSeen counts responses
	// delivered since the last credit return. Both are demux-confined.
	myWin    int
	respSeen int

	// sessKey is the handshake-derived session key (see deriveSessionKey).
	sessKey []byte

	prin   nal.Principal // key:<NK>.<boot>
	nkFP   string
	ekFP   string
	bootID string

	// mkey selects this peer's metrics counter stripe.
	mkey uint64

	closed atomic.Bool
	// sconn is the demux-scheduler registration, stored after Dial
	// registers the connection; fail() kicks it so a locally closed TCP
	// socket (which produces no epoll event) still tears down promptly.
	sconn atomic.Pointer[schedConn]
}

// connCounter hands out metrics stripe keys, one per connection in either
// role, so concurrent connections write disjoint counter stripes.
var connCounter atomic.Uint64

// connDeadline is the optional Conn extension the node layer uses to
// bound the attestation handshake: a transport that can set wire deadlines
// exposes them here (tcpConn does), and the handshake runs under the
// transport's configured HandshakeTimeout. Transports without deadlines
// (loopback) handshake unbounded, as before.
type connDeadline interface {
	SetDeadline(t time.Time) error
	HandshakeTimeout() time.Duration
}

// beginHandshake arms the handshake deadline on conns that support one and
// returns the disarm func (clears the deadline so the established peer is
// not reaped by it later).
func beginHandshake(c Conn) func() {
	dc, ok := c.(connDeadline)
	if !ok {
		return func() {}
	}
	d := dc.HandshakeTimeout()
	if d <= 0 {
		return func() {}
	}
	dc.SetDeadline(time.Now().Add(d))
	return func() { dc.SetDeadline(time.Time{}) }
}

// Dial connects to a remote node, runs the identity handshake in both
// directions, and returns the verified peer. Dial and handshake are
// bounded by the transport's configured timeouts (for TCPTransport:
// DialTimeout and HandshakeTimeout); expiry surfaces as ETIMEDOUT.
func (n *Node) Dial(t Transport, addr string) (*Peer, error) {
	c, err := t.Dial(addr)
	if err != nil {
		return nil, err
	}
	p, err := n.handshakeClient(c)
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			n.k.metrics.add(0, mNetTimeouts, 1)
		}
		c.Close()
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, ErrTransportClosed
	}
	n.peers[p] = true
	n.wg.Add(1)
	n.mu.Unlock()
	src := n.newFrameSource(c, n.demux)
	sconn, err := n.demux.register(src, p.onFrame, nil, nil, func() {
		p.fail()
		n.mu.Lock()
		delete(n.peers, p)
		n.mu.Unlock()
		n.k.metrics.netConns.Add(-1)
		n.wg.Done()
	})
	if err != nil {
		n.mu.Lock()
		delete(n.peers, p)
		n.mu.Unlock()
		n.wg.Done()
		c.Close()
		return nil, err
	}
	n.k.metrics.netConns.Add(1)
	p.sconn.Store(sconn)
	if p.closed.Load() {
		// fail() raced the registration and may have missed the kick.
		sconn.notify()
	}
	return p, nil
}

func (n *Node) handshakeClient(c Conn) (*Peer, error) {
	defer beginHandshake(c)()
	self, err := n.localIdentity()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	ephPub := eph.PublicKey().Bytes()
	myWin := n.cfg.RecvWindow
	frame := []byte{fHello, transportVersion}
	frame = appendIdentity(frame, self)
	frame = binary.AppendUvarint(frame, uint64(myWin))
	frame = appendNetBytes(frame, nonce)
	frame = appendNetBytes(frame, ephPub)
	if err := c.Send(frame); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(resp) > 0 && resp[0] == fErr {
		// Pre-handshake rejection: the node shed our connection. Surface
		// the typed errno (EAGAIN: retry later or elsewhere).
		r := &netCursor{buf: resp[1:]}
		if _, ok := r.uvarint(); ok {
			en, ok1 := r.uvarint()
			op, ok2 := r.str()
			detail, ok3 := r.str()
			if ok1 && ok2 && ok3 && Errno(en) != EOK {
				return nil, abiErr(Errno(en), op, detail)
			}
		}
		return nil, ErrBadPeer
	}
	if len(resp) == 0 || resp[0] != fHelloOK {
		return nil, ErrBadPeer
	}
	r := &netCursor{buf: resp[1:]}
	peer, err := n.verifyIdentity(r)
	if err != nil {
		return nil, err
	}
	srvWin, ok := r.uvarint()
	if !ok || !validWindow(srvWin) {
		return nil, ErrBadPeer
	}
	srvNonce, ok := r.bytes()
	if !ok {
		return nil, ErrBadPeer
	}
	srvEphRaw, ok := r.bytes()
	if !ok {
		return nil, ErrBadPeer
	}
	sig, ok := r.bytes()
	if !ok || !r.done() {
		return nil, ErrBadPeer
	}
	if err := verifyHello(peer.nkPub, "server", nonce, ephPub, srvEphRaw, sig, myWin, int(srvWin)); err != nil {
		return nil, err
	}
	srvEph, err := ecdh.X25519().NewPublicKey(srvEphRaw)
	if err != nil {
		return nil, ErrBadPeer
	}
	shared, err := eph.ECDH(srvEph)
	if err != nil {
		return nil, ErrBadPeer
	}
	ackSig := signHello(n.k.NK, "client", srvNonce, ephPub, srvEphRaw, myWin, int(srvWin))
	ack := []byte{fHelloAck}
	ack = appendNetBytes(ack, ackSig)
	if err := c.Send(ack); err != nil {
		return nil, err
	}
	sessKey := deriveSessionKey(shared, nonce, srvNonce)
	mkey := connCounter.Add(1)
	return &Peer{
		n: n, c: c,
		enc:         nal.NewWireEncoder(),
		certIdx:     map[string]uint64{},
		attested:    newLRUTable[bool](n.cfg.ReattestCap),
		eg:          newEgress(c, n.k.metrics, mkey),
		reTag:       newReTagger(sessKey),
		pending:     map[uint64]chan netResp{},
		reqCredits:  int(srvWin),
		maxInflight: n.cfg.MaxInflight,
		srvWin:      int(srvWin),
		myWin:       myWin,
		sessKey:     sessKey,
		prin:        peer.prin(),
		nkFP:        peer.nkFP,
		ekFP:        peer.ekFP,
		bootID:      peer.bootID,
		mkey:        mkey,
	}, nil
}

// KernelPrin returns the remote kernel's principal, key:<NK-fp>.<boot-id>.
func (p *Peer) KernelPrin() nal.Principal { return p.prin }

// NKFingerprint returns the remote Nexus key fingerprint.
func (p *Peer) NKFingerprint() string { return p.nkFP }

// EKFingerprint returns the remote platform's endorsement key fingerprint.
func (p *Peer) EKFingerprint() string { return p.ekFP }

// Pending reports the number of in-flight requests (tests, introspection).
func (p *Peer) Pending() int {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	return len(p.pending)
}

// Close tears down the connection; the remote side exits the proxies this
// peer's traffic created, and every in-flight call fails with
// ErrTransportClosed.
func (p *Peer) Close() { p.fail() }

// fail poisons the peer: the connection closes, the pending table drains
// (every waiter's channel is closed, which it reads as ErrTransportClosed),
// and no new request can enter. Idempotent; callable from any goroutine.
func (p *Peer) fail() {
	if p.closed.CompareAndSwap(false, true) {
		p.c.Close()
	}
	p.pendMu.Lock()
	p.poisoned = true
	pend := p.pending
	p.pending = nil
	p.pendMu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
	// Kick the demux registration: a locally closed TCP socket produces no
	// epoll event, so the worker must be queued explicitly to observe the
	// dead descriptor and run teardown.
	if sc := p.sconn.Load(); sc != nil {
		sc.notify()
	}
}

// onFrame is the peer's demultiplexer, run by a demux-pool worker: it
// matches response frames to pending requests by id and absorbs fCredit
// grants. Returning false tears the connection down — any torn frame,
// malformed credit, or response to an id we never sent poisons the
// connection, because once a frame may have been lost the per-connection
// codec tables on the two sides can disagree, and a desynced table would
// resolve backreferences to the wrong values silently. Poisoning turns
// that silent corruption into ErrTransportClosed.
//
// Response payloads escape to the waiting caller, so response frames are
// never recycled into the arena; credit frames are.
func (p *Peer) onFrame(frame []byte, ar *netArena) bool {
	m := p.n.k.metrics
	m.add(p.mkey, mNetRecvs, 1)
	m.add(p.mkey, mNetRecvBytes, uint64(len(frame)))
	if len(frame) >= 1 && frame[0] == fCredit {
		r := &netCursor{buf: frame[1:]}
		nc, ok := r.uvarint()
		if !ok || !r.done() {
			return false
		}
		p.pendMu.Lock()
		// Clamp at the advertised window: a hostile or buggy over-grant
		// must never unblock the stream past what the server advertised.
		// The comparison order is overflow-safe for any uint64 count.
		if nc >= uint64(p.srvWin) || p.reqCredits+int(nc) > p.srvWin {
			p.reqCredits = p.srvWin
		} else {
			p.reqCredits += int(nc)
		}
		p.pendMu.Unlock()
		ar.put(frame)
		return true
	}
	if len(frame) < 2 {
		return false
	}
	r := &netCursor{buf: frame[1:]}
	id, ok := r.uvarint()
	if !ok {
		return false
	}
	p.pendMu.Lock()
	var ch chan netResp
	if p.pending != nil {
		ch = p.pending[id]
		delete(p.pending, id)
	}
	p.pendMu.Unlock()
	if ch == nil {
		// A response to a request we never made (hostile or duplicated
		// id): the streams are no longer in agreement.
		return false
	}
	ch <- netResp{typ: frame[0], payload: frame[1+r.off:]}
	// Return receive credits in batches once half our window has been
	// consumed. Credits ride the egress combiner like every other frame:
	// sendMu is never held across I/O, so the demux worker waits at most
	// for a caller's encoding, never for a stalled wire — and a credit
	// staged while a caller's flush is in flight coalesces into it.
	p.respSeen++
	if 2*p.respSeen >= p.myWin {
		grant := uint64(p.respSeen)
		p.respSeen = 0
		p.sendMu.Lock()
		b := p.eg.begin()
		b = append(b, fCredit)
		b = binary.AppendUvarint(b, grant)
		err := p.commitFlush(b)
		p.sendMu.Unlock()
		if err != nil {
			return false
		}
	}
	return true
}

// begin registers a new in-flight request: it allocates the id, checks the
// in-flight window and the send-credit window, and returns the channel the
// demux worker will deliver on. The depth histogram samples the
// pending-table size each request observes.
func (p *Peer) begin(op string) (uint64, chan netResp, error) {
	if p.closed.Load() {
		return 0, nil, ErrTransportClosed
	}
	p.pendMu.Lock()
	if p.poisoned {
		p.pendMu.Unlock()
		return 0, nil, ErrTransportClosed
	}
	if len(p.pending) >= p.maxInflight {
		p.pendMu.Unlock()
		return 0, nil, abiErr(EAGAIN, op, "transport in-flight window full")
	}
	if p.reqCredits <= 0 {
		p.pendMu.Unlock()
		return 0, nil, abiErr(EAGAIN, op, "transport send window exhausted")
	}
	var ch chan netResp
	if n := len(p.chanFree); n > 0 {
		ch = p.chanFree[n-1]
		p.chanFree[n-1] = nil
		p.chanFree = p.chanFree[:n-1]
	} else {
		//nexus:coldpath — the free list warms up to the in-flight window.
		ch = make(chan netResp, 1)
	}
	p.reqCredits--
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	depth := len(p.pending)
	p.pendMu.Unlock()
	p.n.k.metrics.netDepth.observeCount(uint64(depth))
	return id, ch, nil
}

// putChan recycles a single-use response channel. Only channels already
// removed from the pending table may be pooled: fail() closes every
// channel it finds there, and a closed channel must never reach a new
// request — hence the poisoned check, under the same pendMu that fail()
// drains the table under.
func (p *Peer) putChan(ch chan netResp) {
	p.pendMu.Lock()
	if !p.poisoned && len(p.chanFree) < p.maxInflight {
		p.chanFree = append(p.chanFree, ch)
	}
	p.pendMu.Unlock()
}

// abort removes a pending entry whose request was never (fully) sent and
// restores its send credit. A channel still in the table was never reached
// by the demux worker (it removes entries before delivering) nor by fail()
// (which empties the table before closing), so it is clean to pool.
func (p *Peer) abort(id uint64) {
	p.pendMu.Lock()
	if p.pending != nil {
		if ch, ok := p.pending[id]; ok {
			delete(p.pending, id)
			p.reqCredits++
			if !p.poisoned && len(p.chanFree) < p.maxInflight {
				p.chanFree = append(p.chanFree, ch)
			}
		}
	}
	p.pendMu.Unlock()
}

// flushLocked drains the egress combiner, releasing sendMu around the wire
// write so staging never waits on I/O. Exactly one flusher runs at a time
// (flushing): a stager that finds a flush in progress just returns — its
// frames are in the staged half the flusher re-checks after every write —
// and a write failure surfaces to that stager through fail(), which closes
// its pending channel. Called with sendMu held; returns with it held.
func (p *Peer) flushLocked() error {
	if p.flushing {
		return nil
	}
	p.flushing = true
	var err error
	for err == nil && p.eg.pend > 0 {
		buf, frames, n := p.eg.take()
		p.sendMu.Unlock()
		werr := p.eg.write(buf, frames, n)
		p.sendMu.Lock()
		p.eg.release(buf, frames)
		err = werr
	}
	p.flushing = false
	if err != nil && errors.Is(err, ErrTimeout) { //nexus:coldpath — write-failure accounting
		p.n.k.metrics.add(p.mkey, mNetTimeouts, 1)
	}
	return err
}

// commitFlush seals the frame begun on the egress combiner and flushes.
// Called with sendMu held. The seal-and-flush path is pooled end to end
// (pinned by TestAllocRemoteCallWarm).
//
//nexus:noalloc
func (p *Peer) commitFlush(b []byte) error {
	n := p.eg.commit(b)
	m := p.n.k.metrics
	m.add(p.mkey, mNetSends, 1)
	m.add(p.mkey, mNetSendBytes, uint64(n))
	return p.flushLocked()
}

// sendOwned stages one fully built frame (taking ownership of it) and
// flushes — the batch-submission egress (pinned by
// TestAllocSubmitRemoteBatchWarm).
//
//nexus:noalloc
func (p *Peer) sendOwned(frame []byte) error {
	p.sendMu.Lock()
	m := p.n.k.metrics
	m.add(p.mkey, mNetSends, 1)
	m.add(p.mkey, mNetSendBytes, uint64(len(frame)))
	p.eg.stage(frame)
	err := p.flushLocked()
	p.sendMu.Unlock()
	return err
}

// await blocks until the receive loop delivers the response for this
// request (or the peer fails). It decodes fErr frames into errors: kernel
// ABI failures rebuild their errno class (so errors.Is(err, ErrDenied)
// works across the wire), handler-level failures rebuild as plain errors.
// A response of an unexpected type poisons the connection.
func (p *Peer) await(t0 time.Time, ch chan netResp, wantType byte) ([]byte, error) {
	resp, ok := <-ch
	if !ok {
		return nil, ErrTransportClosed
	}
	// Delivery happened, so the demux worker already removed the channel
	// from the pending table; it is single-use and clean to recycle.
	p.putChan(ch)
	p.n.k.metrics.netReqNs.observe(time.Since(t0))
	if resp.typ == fErr {
		r := &netCursor{buf: resp.payload}
		en, ok1 := r.uvarint()
		op, ok2 := r.str()
		detail, ok3 := r.str()
		if !ok1 || !ok2 || !ok3 {
			p.fail()
			return nil, ErrTransportClosed
		}
		if Errno(en) == EOK {
			return nil, fmt.Errorf("%w: %s", ErrRemoteHandler, detail)
		}
		return nil, abiErr(Errno(en), op, detail)
	}
	if resp.typ != wantType {
		p.fail()
		return nil, ErrTransportClosed
	}
	return resp.payload, nil
}

// sendErr wraps a failed send: abort our pending entry, poison the peer,
// and surface ErrTransportClosed.
func (p *Peer) sendErr(id uint64, err error) error {
	p.abort(id)
	p.fail()
	return fmt.Errorf("%w: %v", ErrTransportClosed, err)
}

// connect asks the remote node for the public port behind a service name
// and grants the caller's proxy a channel to it.
func (p *Peer) connect(callerPID int, service string) (int, error) {
	id, ch, err := p.begin("connect")
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	p.sendMu.Lock()
	b := p.eg.begin()
	b = append(b, fConnect)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, uint64(callerPID))
	b = appendNetString(b, service)
	err = p.commitFlush(b)
	p.sendMu.Unlock()
	if err != nil {
		return 0, p.sendErr(id, err)
	}
	resp, err := p.await(t0, ch, fConnOK)
	if err != nil {
		return 0, err
	}
	r := &netCursor{buf: resp}
	port, ok := r.uvarint()
	if !ok {
		p.fail()
		return 0, ErrTransportClosed
	}
	return int(port), nil
}

// call forwards one IPC request to the remote port.
func (p *Peer) call(callerPID, portID int, m *Msg) ([]byte, error) {
	id, ch, err := p.begin(m.Op)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	p.sendMu.Lock()
	b := p.eg.begin()
	b = append(b, fCall)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, uint64(callerPID))
	b = binary.AppendUvarint(b, uint64(portID))
	b = appendMsgFields(b, m)
	err = p.commitFlush(b)
	p.sendMu.Unlock()
	if err != nil {
		return nil, p.sendErr(id, err)
	}
	resp, err := p.await(t0, ch, fCallOK)
	if err != nil {
		return nil, err
	}
	r := &netCursor{buf: resp}
	out, ok := r.bytes()
	if !ok {
		p.fail()
		return nil, ErrTransportClosed
	}
	if len(out) == 0 {
		return nil, nil
	}
	// The response frame is exclusively ours; hand the result out directly.
	return out, nil
}

// submit ships a pre-built fSubmit frame (taking ownership of it) and
// returns the completion-vector payload. The frame must already carry the
// request id from begin.
func (p *Peer) submit(id uint64, ch chan netResp, t0 time.Time, frame []byte) ([]byte, error) {
	if err := p.sendOwned(frame); err != nil {
		return nil, p.sendErr(id, err)
	}
	return p.await(t0, ch, fSubmitOK)
}

// xferLabel ships an externalized label; the remote side verifies it and
// interns it into the caller's proxy labelstore, returning (proxy pid,
// label handle) for use as a reference credential in later proofs.
//
// The first crossing of a certificate ships it whole and pays the
// signature verification on the far side; once that succeeds the
// fingerprint is marked attested for this connection, and every later
// crossing sends only the fingerprint plus an HMAC under the session key
// (fXferRe) — the warm path does no public-key cryptography on either
// side. Re-attestation state is per-connection (a new connection always
// re-verifies) and LRU-bounded on both sides: if the server has evicted a
// fingerprint we still remember (the two tables need not agree — caps may
// differ between nodes), the warm attempt fails with EACCES and we retry
// cold, at the cost of one extra round trip. A certificate revoked since
// its cold crossing takes the same path and then fails the cold
// verification properly.
func (p *Peer) xferLabel(callerPID int, ext *ExternalLabel) (int, int, error) {
	fp := ext.LabelCert.Fingerprint()
	p.sendMu.Lock()
	_, warm := p.attested.get(fp)
	p.sendMu.Unlock()
	if warm {
		pid, handle, err := p.xferOnce(callerPID, fp, nil)
		if err == nil {
			return pid, handle, nil
		}
		if !errors.Is(err, ErrDenied) {
			return 0, 0, err
		}
		// The server no longer honors the fingerprint (its table evicted
		// it, or the certificate was revoked): forget it and go cold.
		p.sendMu.Lock()
		p.attested.remove(fp)
		p.sendMu.Unlock()
	}
	pid, handle, err := p.xferOnce(callerPID, fp, ext.LabelCert)
	if err != nil {
		return 0, 0, err
	}
	p.sendMu.Lock()
	p.attested.put(fp, true)
	p.sendMu.Unlock()
	return pid, handle, nil
}

// xferOnce performs one label-transfer exchange: warm (fXferRe by
// fingerprint + session-key HMAC) when lc is nil, cold (fXfer with the
// full certificate) otherwise.
func (p *Peer) xferOnce(callerPID int, fp string, lc *cert.Certificate) (int, int, error) {
	id, ch, err := p.begin("xferlabel")
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	p.sendMu.Lock()
	b := p.eg.begin()
	if lc == nil {
		b = append(b, fXferRe)
		b = binary.AppendUvarint(b, id)
		b = binary.AppendUvarint(b, uint64(callerPID))
		b = appendNetString(b, fp)
		b = appendNetBytes(b, p.reTag.tag(callerPID, fp))
	} else {
		b = append(b, fXfer)
		b = binary.AppendUvarint(b, id)
		b = binary.AppendUvarint(b, uint64(callerPID))
		b = appendNetBytes(b, lc.AppendWire(nil))
	}
	err = p.commitFlush(b)
	p.sendMu.Unlock()
	if err != nil {
		return 0, 0, p.sendErr(id, err)
	}
	resp, err := p.await(t0, ch, fXferOK)
	if err != nil {
		return 0, 0, err
	}
	r := &netCursor{buf: resp}
	pid, ok1 := r.uvarint()
	handle, ok2 := r.uvarint()
	if !ok1 || !ok2 {
		p.fail()
		return 0, 0, ErrTransportClosed
	}
	return int(pid), int(handle), nil
}

// RemoteCred is one credential in a remote proof registration: exactly one
// field is set. Inline formulas travel through the per-connection formula
// codec; Ref names a label handle previously deposited in the caller's
// proxy labelstore by TransferLabelRemote; Cert ships a certificate
// (deduplicated per connection by fingerprint).
type RemoteCred struct {
	Inline nal.Formula
	Ref    int
	Cert   *cert.Certificate
}

// setProof registers a proof for the caller's proxy on the remote kernel.
// Frame assembly holds sendMu throughout: encoding inline credentials
// advances the per-connection remap/dedup tables, and the server commits
// the same state in arrival order — which, with sends serialized, is
// assembly order.
func (p *Peer) setProof(callerPID int, op, obj string, pf *proof.Proof, creds []RemoteCred) error {
	id, ch, err := p.begin("setproof")
	if err != nil {
		return err
	}
	t0 := time.Now()
	p.sendMu.Lock()
	b := p.eg.begin()
	b = append(b, fSetProof)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, uint64(callerPID))
	b = appendNetString(b, op)
	b = appendNetString(b, obj)
	text := ""
	if pf != nil {
		text = pf.String()
	}
	b = appendNetString(b, text)
	b = binary.AppendUvarint(b, uint64(len(creds)))
	for i, c := range creds {
		switch {
		case c.Inline != nil:
			body, err := p.enc.AppendFormula(nil, c.Inline)
			if err != nil {
				// Earlier credentials of this never-sent frame may already
				// have committed remap/dedup state the server will not
				// see; the connection's numbering is no longer shared, so
				// poison it rather than risk silent misresolution later.
				p.eg.abandon(b)
				p.sendMu.Unlock()
				p.abort(id)
				p.fail()
				return fmt.Errorf("credential %d: %w", i, err)
			}
			b = append(b, wcInline)
			b = appendNetBytes(b, body)
		case c.Cert != nil:
			fp := c.Cert.Fingerprint()
			if idx, ok := p.certIdx[fp]; ok {
				b = append(b, wcCertRef)
				b = binary.AppendUvarint(b, idx)
			} else {
				b = append(b, wcCert)
				b = appendNetBytes(b, c.Cert.AppendWire(nil))
				p.certIdx[fp] = uint64(len(p.certIdx) + 1)
			}
		default:
			b = append(b, wcRef)
			b = binary.AppendUvarint(b, uint64(c.Ref))
		}
	}
	err = p.commitFlush(b)
	p.sendMu.Unlock()
	if err != nil {
		return p.sendErr(id, err)
	}
	_, err = p.await(t0, ch, fOK)
	return err
}

// ---- Serving side -------------------------------------------------------

// xferEntry records one certificate already verified on this connection:
// the label formula it denotes (post speaker-rooting checks) and the
// signer fingerprint, kept for revocation probes on the warm path.
type xferEntry struct {
	f      nal.Formula
	signer string
}

// serverConn is the per-connection ingress state. It needs no lock: the
// scheduler guarantees at most one worker runs the connection at a time,
// so every field below is confined to "whichever worker holds it".
type serverConn struct {
	n    *Node
	k    *Kernel
	c    Conn
	peer *identity
	prin nal.Principal

	dec     *nal.WireDecoder
	certs   []*cert.Certificate  // per-connection dedup table (wcCertRef)
	proxies map[int]*Process     // remote pid → proxy IPD
	xferFPs *lruTable[xferEntry] // re-attestation table (fXferRe), LRU-bounded

	// Flow control (worker-confined). advertWin is the receive window we
	// advertised — it bounds the backlog of unprocessed request frames.
	// respCredits is the send window toward the client (initialized to its
	// advertised window, replenished by its fCredit frames); when it hits
	// zero the connection parks its requests in the backlog instead of
	// sending responses the client has no room for. served counts requests
	// answered since the last credit grant back to the client.
	advertWin   int
	cliWin      int
	respCredits int
	served      int
	backlog     [][]byte
	backlogHead int

	// sessKey is the handshake-derived session key shared with the peer.
	sessKey []byte

	// eg is the outbound combiner: responses and credit grants stage into
	// it and flush at quantum end (or at its high-water mark). reTag
	// verifies warm re-attestation tags. Both worker-confined.
	eg    *egress
	reTag *reTagger

	// subMsg is the reused decode target for calls and batched
	// submissions; its Op/Obj strings persist across warm requests so a
	// repeated target decodes without allocating.
	subMsg Msg

	// mkey selects this connection's metrics counter stripe.
	mkey uint64
}

// serveConn runs the handshake on a transient goroutine, then hands the
// established connection to the ingress scheduler and returns — from that
// point the connection costs no goroutine. The Serve accept loop did
// wg.Add(1); exactly one of the paths below (handshake failure,
// registration failure, or the scheduler's onClose) pairs it with Done.
func (n *Node) serveConn(c Conn) {
	sc := &serverConn{
		n: n, k: n.k, c: c,
		dec:       nal.NewWireDecoder(),
		proxies:   map[int]*Process{},
		xferFPs:   newLRUTable[xferEntry](n.cfg.ReattestCap),
		advertWin: n.cfg.RecvWindow,
		mkey:      connCounter.Add(1),
	}
	if err := sc.handshake(); err != nil {
		if errors.Is(err, ErrTimeout) {
			sc.k.metrics.add(sc.mkey, mNetTimeouts, 1)
		}
		sc.teardown()
		n.wg.Done()
		return
	}
	sc.eg = newEgress(c, n.k.metrics, sc.mkey)
	sc.reTag = newReTagger(sc.sessKey)
	src := n.newFrameSource(c, n.ingress)
	sconn, err := n.ingress.register(src, sc.onFrame, sc.flushEgress, sc.park, func() {
		sc.teardown()
		n.wg.Done()
	})
	if err != nil {
		sc.teardown()
		n.wg.Done()
		return
	}
	n.mu.Lock()
	if _, ok := n.conns[c]; ok {
		n.conns[c] = sconn
	}
	closed := n.closed
	n.mu.Unlock()
	if closed {
		// Node.Close raced the registration: it closed c without finding a
		// schedConn to kick, so kick ourselves (a locally closed TCP socket
		// produces no epoll event).
		sconn.notify()
	}
}

// teardown exits every proxy this connection created and unregisters the
// connection. It runs with no transport lock held except Node.mu for the
// map update, released before the kernel registry work.
func (sc *serverConn) teardown() {
	sc.c.Close()
	sc.n.mu.Lock()
	delete(sc.n.conns, sc.c)
	sc.n.mu.Unlock()
	sc.n.nconns.Add(-1)
	sc.k.metrics.netConns.Add(-1)
	for _, p := range sc.proxies {
		p.Exit()
	}
}

// onFrame is the connection's ingress entry point, run by a scheduler
// worker. Credit frames replenish the response window immediately; every
// other frame joins the FIFO backlog (so request ordering is preserved
// across parking) and drain processes as many as the window allows.
// Returning false tears the connection down.
func (sc *serverConn) onFrame(frame []byte, ar *netArena) bool {
	m := sc.k.metrics
	m.add(sc.mkey, mNetRecvs, 1)
	m.add(sc.mkey, mNetRecvBytes, uint64(len(frame)))
	if len(frame) >= 1 && frame[0] == fCredit {
		r := &netCursor{buf: frame[1:]}
		nc, ok := r.uvarint()
		if !ok || !r.done() {
			return false
		}
		// Clamp at the client's advertised window (overflow-safe for any
		// uint64 count): a hostile over-grant cannot widen the stream.
		if nc >= uint64(sc.cliWin) || sc.respCredits+int(nc) > sc.cliWin {
			sc.respCredits = sc.cliWin
		} else {
			sc.respCredits += int(nc)
		}
		ar.put(frame)
		return sc.drain(ar)
	}
	if len(sc.backlog)-sc.backlogHead >= sc.advertWin {
		// The peer has more unacknowledged frames toward us than the
		// window we advertised: protocol violation.
		return false
	}
	sc.backlog = append(sc.backlog, frame)
	return sc.drain(ar)
}

// drain processes backlogged frames while response credits last.
func (sc *serverConn) drain(ar *netArena) bool {
	for sc.respCredits > 0 && sc.backlogHead < len(sc.backlog) {
		frame := sc.backlog[sc.backlogHead]
		sc.backlog[sc.backlogHead] = nil
		sc.backlogHead++
		if sc.backlogHead == len(sc.backlog) {
			sc.backlog = sc.backlog[:0]
			sc.backlogHead = 0
		}
		if !sc.process(frame, ar) {
			return false
		}
	}
	return true
}

// flushEgress drains the connection's staged responses; the scheduler
// calls it on every transition out of csRunning, so staged frames never
// outlive the quantum that produced them. Flushing recycles through the
// frame pool, never the allocator (pinned by TestAllocRemoteCallWarm).
//
//nexus:noalloc
func (sc *serverConn) flushEgress() bool { return sc.eg.flush() == nil }

// park releases oversized egress scratch as the connection idles, so a
// parked connection pins at most egressParkCap of staging memory.
func (sc *serverConn) park() { sc.eg.trim() }

// process handles one request frame end to end: decode, dispatch, stage
// the response on the egress combiner, recycle, and grant request credits
// back to the client as the window half-empties. Responses flush at
// quantum end (schedConn.run) or when staging crosses its high-water mark
// — so a pipelined burst answered within one quantum leaves as one write.
func (sc *serverConn) process(frame []byte, ar *netArena) bool {
	m := sc.k.metrics
	if len(frame) < 2 {
		return false
	}
	typ := frame[0]
	r := &netCursor{buf: frame[1:]}
	id, ok := r.uvarint()
	if !ok {
		return false
	}
	b := sc.eg.begin()
	b, fatal := sc.handle(b, typ, id, r)
	n := sc.eg.commit(b)
	m.add(sc.mkey, mNetSends, 1)
	m.add(sc.mkey, mNetSendBytes, uint64(n))
	sc.respCredits--
	if fatal {
		// The ingress codec tables stopped at a prefix the client no
		// longer agrees with; every later backreference could resolve
		// silently wrong. Tear the connection down — the scheduler flushes
		// staged egress (this error response included) before closing.
		return false
	}
	switch typ {
	case fConnect, fCall, fSubmit, fXferRe:
		// These request payloads cannot escape the exchange (everything
		// retained is copied), so the buffer returns to the shard arena.
		// fXfer and fSetProof are excluded: decoded certificates alias
		// their frames and are retained in per-connection tables.
		ar.put(frame)
	}
	sc.served++
	if 2*sc.served >= sc.advertWin {
		b := sc.eg.begin()
		b = append(b, fCredit)
		b = binary.AppendUvarint(b, uint64(sc.served))
		cn := sc.eg.commit(b)
		sc.served = 0
		m.add(sc.mkey, mNetSends, 1)
		m.add(sc.mkey, mNetSendBytes, uint64(cn))
	}
	if sc.eg.full() {
		if sc.eg.flush() != nil {
			return false
		}
	}
	return true
}

func (sc *serverConn) handshake() error {
	defer beginHandshake(sc.c)()
	frame, err := sc.c.Recv()
	if err != nil {
		return err
	}
	if len(frame) < 2 || frame[0] != fHello || frame[1] != transportVersion {
		return ErrBadPeer
	}
	r := &netCursor{buf: frame[2:]}
	peer, err := sc.n.verifyIdentity(r)
	if err != nil {
		return err
	}
	cliWin, ok := r.uvarint()
	if !ok || !validWindow(cliWin) {
		return ErrBadPeer
	}
	cliNonce, ok := r.bytes()
	if !ok {
		return ErrBadPeer
	}
	cliEphRaw, ok := r.bytes()
	if !ok || !r.done() {
		return ErrBadPeer
	}
	cliEph, err := ecdh.X25519().NewPublicKey(cliEphRaw)
	if err != nil {
		return ErrBadPeer
	}
	self, err := sc.n.localIdentity()
	if err != nil {
		return err
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	ephPub := eph.PublicKey().Bytes()
	srvWin := sc.advertWin
	// cliNonce and cliEphRaw alias the hello frame, which lives until the
	// handshake returns; the digest and session key consume them before.
	sig := signHello(sc.k.NK, "server", cliNonce, cliEphRaw, ephPub, int(cliWin), srvWin)
	resp := []byte{fHelloOK}
	resp = appendIdentity(resp, self)
	resp = binary.AppendUvarint(resp, uint64(srvWin))
	resp = appendNetBytes(resp, nonce)
	resp = appendNetBytes(resp, ephPub)
	resp = appendNetBytes(resp, sig)
	if err := sc.c.Send(resp); err != nil {
		return err
	}
	ack, err := sc.c.Recv()
	if err != nil {
		return err
	}
	if len(ack) == 0 || ack[0] != fHelloAck {
		return ErrBadPeer
	}
	ra := &netCursor{buf: ack[1:]}
	ackSig, ok := ra.bytes()
	if !ok || !ra.done() {
		return ErrBadPeer
	}
	if err := verifyHello(peer.nkPub, "client", nonce, cliEphRaw, ephPub, ackSig, int(cliWin), srvWin); err != nil {
		return err
	}
	shared, err := eph.ECDH(cliEph)
	if err != nil {
		return ErrBadPeer
	}
	sc.sessKey = deriveSessionKey(shared, cliNonce, nonce)
	sc.peer = peer
	sc.prin = peer.prin()
	sc.cliWin = int(cliWin)
	sc.respCredits = int(cliWin)
	return nil
}

// proxy returns (creating on first use) the proxy IPD standing in for the
// peer's process with the given remote pid. Its principal is the remote
// process's global name, so server-side authorization, labels, and audit
// records attribute cross-node activity to the real remote identity.
func (sc *serverConn) proxy(remotePID int) *Process {
	if p, ok := sc.proxies[remotePID]; ok && !p.Exited() {
		return p
	}
	p := sc.k.createRemoteProxy(nal.SubChain(sc.prin, "ipd", fmt.Sprint(remotePID)))
	sc.proxies[remotePID] = p
	return p
}

// handle processes one request frame, appending the response frame (which
// echoes the request id) to dst — the open frame on the egress combiner,
// so the response body lands directly in the staging buffer. fatal reports
// that per-connection codec state may have desynced from the client's and
// the connection must close after the response is flushed. Error paths
// append to the handler's original dst value, discarding any partial
// response bytes appended before the failure.
func (sc *serverConn) handle(dst []byte, typ byte, id uint64, r *netCursor) (resp []byte, fatal bool) {
	switch typ {
	case fConnect:
		return sc.handleConnect(dst, id, r), false
	case fCall:
		return sc.handleCall(dst, id, r), false
	case fXfer:
		return sc.handleXfer(dst, id, r), false
	case fXferRe:
		return sc.handleXferRe(dst, id, r), false
	case fSubmit:
		return sc.handleSubmit(dst, id, r), false
	case fSetProof:
		return sc.handleSetProof(dst, id, r)
	}
	return appendErrFrame(dst, id, "transport", abiErr(EINVAL, "transport", "unknown frame type")), true
}

func (sc *serverConn) handleConnect(dst []byte, id uint64, r *netCursor) []byte {
	pid, ok1 := r.uvarint()
	service, ok2 := r.str()
	if !ok1 || !ok2 || !r.done() {
		return appendErrFrame(dst, id, "connect", abiErr(EINVAL, "connect", "malformed frame"))
	}
	sc.n.mu.Lock()
	portID, ok := sc.n.exports[service]
	sc.n.mu.Unlock()
	if !ok {
		return appendErrFrame(dst, id, "connect", abiErr(ENOENT, "connect", "no exported service "+service))
	}
	if err := sc.k.GrantChannel(sc.proxy(int(pid)), portID); err != nil {
		return appendErrFrame(dst, id, "connect", err)
	}
	dst = append(dst, fConnOK)
	dst = binary.AppendUvarint(dst, id)
	return binary.AppendUvarint(dst, uint64(portID))
}

func (sc *serverConn) handleCall(dst []byte, id uint64, r *netCursor) []byte {
	pid, ok1 := r.uvarint()
	portID, ok2 := r.uvarint()
	if !ok1 || !ok2 {
		return appendErrFrame(dst, id, "call", abiErr(EINVAL, "call", "malformed frame"))
	}
	m := &sc.subMsg
	if !readMsgFieldsInto(m, r) || !r.done() {
		return appendErrFrame(dst, id, "call", abiErr(EINVAL, "call", "malformed message"))
	}
	// The standard dispatch pipeline: channel check, authorization against
	// the proxy's (remote) principal, interposition, handler.
	out, err := sc.k.Call(sc.proxy(int(pid)), int(portID), m)
	if err != nil {
		return appendErrFrame(dst, id, m.Op, err)
	}
	dst = append(dst, fCallOK)
	dst = binary.AppendUvarint(dst, id)
	return appendNetBytes(dst, out)
}

// handleSubmit executes one batched submission: N operations against one
// remote port, each run through the flags-preloaded dispatch pipeline on
// the caller's proxy, marshaling (when interposition is on) into a pooled
// arena. The batch framing is validated in full before any operation
// executes, so a torn frame cannot half-run.
func (sc *serverConn) handleSubmit(dst []byte, id uint64, r *netCursor) []byte {
	pid, ok1 := r.uvarint()
	portID, ok2 := r.uvarint()
	if !ok1 || !ok2 {
		return appendErrFrame(dst, id, "submit", abiErr(EINVAL, "submit", "malformed frame"))
	}
	batch := r.buf[r.off:]
	if len(batch) < 4 {
		return appendErrFrame(dst, id, "submit", abiErr(EINVAL, "submit", "truncated batch"))
	}
	count := binary.LittleEndian.Uint32(batch[:4])
	body := batch[4:]
	if uint64(count)*8 > uint64(len(body)) {
		return appendErrFrame(dst, id, "submit", abiErr(EINVAL, "submit", "batch count exceeds buffer"))
	}
	// Validate the framing end to end before executing anything.
	rest := body
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return appendErrFrame(dst, id, "submit", abiErr(EINVAL, "submit", "truncated batch"))
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return appendErrFrame(dst, id, "submit", abiErr(EINVAL, "submit", "truncated batch"))
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return appendErrFrame(dst, id, "submit", abiErr(EINVAL, "submit", "trailing bytes after batch"))
	}
	pt, ok := sc.k.ports.find(int(portID))
	if !ok {
		return appendErrFrame(dst, id, "submit", abiErr(ENOENT, "submit", "no such port"))
	}
	proxy := sc.proxy(int(pid))
	k := sc.k
	flags := k.flags.Load()
	k.metrics.netBatch.observeCount(uint64(count))

	// Ingress admission mirrors the egress leg: the hoisted head runs once,
	// each entry then pays authorization plus the OnCall sweep over its
	// received bytes — already the message's canonical wire form, so the
	// chain inspects them in place with no re-marshal.
	ba, baErr := k.batchAdmit(flags, proxy, pt)

	resp := dst
	resp = append(resp, fSubmitOK)
	resp = binary.AppendUvarint(resp, id)
	resp = binary.AppendUvarint(resp, uint64(count))
	m := &sc.subMsg
	for i := uint32(0); i < count; i++ {
		n := binary.LittleEndian.Uint32(body[:4])
		wire := body[4 : 4+n]
		body = body[4+n:]
		var out []byte
		var err error
		if baErr != nil {
			err = baErr
		} else if !unmarshalMsgInto(m, wire) {
			// Structurally framed but not a decodable message.
			err = abiErr(EINVAL, "submit", "malformed message")
		} else if err = ba.admitOp(m, wire); err == nil {
			out, err = pt.h(ba.caller, m)
			out = ba.unwind(m, out)
		}
		switch e := err.(type) {
		case nil:
			resp = append(resp, wsOK)
			resp = appendNetBytes(resp, out)
		case *Error:
			resp = append(resp, wsAbiErr)
			resp = binary.AppendUvarint(resp, uint64(e.Errno))
			resp = appendNetString(resp, e.Op)
			resp = appendNetString(resp, e.Detail)
		default:
			resp = append(resp, wsHdlrErr)
			resp = appendNetString(resp, err.Error())
		}
	}
	return resp
}

// handleXfer is cold credential ingress: verify through the kernel's
// pre-verification cache, enforce the cross-node speaker rooting rule,
// intern the label into the caller's proxy labelstore, and record the
// certificate in the connection's re-attestation table so later crossings
// can take the fXferRe path.
func (sc *serverConn) handleXfer(dst []byte, id uint64, r *netCursor) []byte {
	pid, ok := r.uvarint()
	if !ok {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", "malformed frame"))
	}
	certWire, ok := r.bytes()
	if !ok || !r.done() {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", "malformed frame"))
	}
	c, _, err := cert.DecodeCertWire(certWire)
	if err != nil {
		sc.k.metrics.add(sc.mkey, mWireDecodeErrs, 1)
		return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", err.Error()))
	}
	sc.k.metrics.add(sc.mkey, mWireDecodes, 1)
	f, _, err := sc.k.certs.Label(c)
	if err != nil {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EACCES, "xferlabel", err.Error()))
	}
	// The certificate must be signed by the sending node's NK — a label
	// signed by any other key, however valid, did not originate on the
	// peer and cannot ride its connection.
	says, ok2 := f.(nal.Says)
	if !ok2 {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", "label not a says"))
	}
	signer, ok3 := says.P.(nal.Key)
	if !ok3 || string(signer) != sc.peer.nkFP {
		return appendErrFrame(dst, id, "xferlabel",
			fmt.Errorf("%w: label signed by %v, connection authenticated %s",
				ErrSpoofedSpeaker, says.P, sc.peer.nkFP))
	}
	// Cross-node speaker rooting: the attributed speaker must be the
	// sending kernel's principal or one of its subprincipals. Without this
	// check a node could sign (with its own genuine NK) a label claiming
	// another node's process said something, and the imported formula
	// would attribute it there.
	st, err := c.Statement()
	if err != nil {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", err.Error()))
	}
	if st.Speaker != "" {
		sp, err := nal.ParsePrincipal(st.Speaker)
		if err != nil {
			return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", "bad speaker"))
		}
		if !nal.IsAncestor(sc.prin, sp) {
			return appendErrFrame(dst, id, "xferlabel",
				fmt.Errorf("%w: speaker %s not under %s", ErrSpoofedSpeaker, st.Speaker, sc.prin))
		}
	}
	// Every trust check passed: remember the certificate for warm
	// re-attested crossings on this connection (LRU-bounded; an evicted
	// certificate simply re-crosses cold).
	sc.xferFPs.put(c.Fingerprint(), xferEntry{f: f, signer: string(signer)})
	proxy := sc.proxy(int(pid))
	l := proxy.Labels.insertSystem(f)
	dst = append(dst, fXferOK)
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(proxy.PID))
	return binary.AppendUvarint(dst, uint64(l.Handle))
}

// handleXferRe is warm credential ingress: the certificate named by
// fingerprint already passed signature verification and both trust rules
// on this connection, so the crossing authenticates by HMAC under the
// session key — the tag proves the request originated on the peer that
// completed the handshake, which is exactly what the cold path's signature
// check established. Revocation is still consulted: a certificate (or
// signer) revoked since the cold crossing fails here.
func (sc *serverConn) handleXferRe(dst []byte, id uint64, r *netCursor) []byte {
	pid, ok1 := r.uvarint()
	fp, ok2 := r.str()
	tag, ok3 := r.bytes()
	if !ok1 || !ok2 || !ok3 || !r.done() {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EINVAL, "xferlabel", "malformed frame"))
	}
	e, ok := sc.xferFPs.get(fp)
	if !ok {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EACCES, "xferlabel", "certificate not attested on this connection"))
	}
	if !hmac.Equal(tag, sc.reTag.tag(int(pid), fp)) {
		return appendErrFrame(dst, id, "xferlabel", abiErr(EACCES, "xferlabel", "re-attestation tag invalid"))
	}
	if sc.k.certs.Revoked(fp, e.signer) {
		sc.xferFPs.remove(fp)
		return appendErrFrame(dst, id, "xferlabel", abiErr(EACCES, "xferlabel", cert.ErrRevoked.Error()))
	}
	proxy := sc.proxy(int(pid))
	l := proxy.Labels.insertSystem(e.f)
	dst = append(dst, fXferOK)
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(proxy.PID))
	return binary.AppendUvarint(dst, uint64(l.Handle))
}

// handleSetProof decodes the credential vector *before* anything that can
// fail for non-codec reasons (the proof parse): inline-credential and
// certificate decode commit per-connection state the client has already
// committed on its side, so by the time a benign failure can occur both
// tables agree. Codec-level failures report fatal and close the
// connection — a partially consumed definition stream must not survive.
func (sc *serverConn) handleSetProof(dst []byte, id uint64, r *netCursor) (resp []byte, fatal bool) {
	pid, ok1 := r.uvarint()
	op, ok2 := r.str()
	obj, ok3 := r.str()
	text, ok4 := r.str()
	ncreds, ok5 := r.uvarint()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || ncreds > uint64(r.remaining()) {
		return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "malformed frame")), true
	}
	proxy := sc.proxy(int(pid))
	creds := make([]Credential, 0, ncreds)
	for i := uint64(0); i < ncreds; i++ {
		kind, ok := r.byte()
		if !ok {
			return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "truncated credentials")), true
		}
		switch kind {
		case wcInline:
			body, ok := r.bytes()
			if !ok {
				return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "truncated inline credential")), true
			}
			fid, _, err := sc.dec.DecodeFormula(body)
			if err != nil {
				sc.k.metrics.add(sc.mkey, mWireDecodeErrs, 1)
				return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", err.Error())), true
			}
			sc.k.metrics.add(sc.mkey, mWireDecodes, 1)
			creds = append(creds, Credential{Inline: nal.FormulaOfID(fid)})
		case wcRef:
			h, ok := r.uvarint()
			if !ok {
				return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "truncated ref credential")), true
			}
			creds = append(creds, Credential{Ref: &LabelRef{PID: proxy.PID, Handle: int(h)}})
		case wcCert:
			cw, ok := r.bytes()
			if !ok {
				return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "truncated certificate")), true
			}
			c, _, err := cert.DecodeCertWire(cw)
			if err != nil {
				sc.k.metrics.add(sc.mkey, mWireDecodeErrs, 1)
				return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", err.Error())), true
			}
			sc.k.metrics.add(sc.mkey, mWireDecodes, 1)
			sc.certs = append(sc.certs, c)
			creds = append(creds, Credential{Cert: c})
		case wcCertRef:
			idx, ok := r.uvarint()
			if !ok || idx == 0 || idx > uint64(len(sc.certs)) {
				return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "dangling certificate reference")), true
			}
			creds = append(creds, Credential{Cert: sc.certs[idx-1]})
		default:
			return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "unknown credential kind")), true
		}
	}
	if !r.done() {
		return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "trailing bytes")), true
	}
	var pf *proof.Proof
	if text != "" {
		var err error
		if pf, err = proof.Parse(text); err != nil {
			return appendErrFrame(dst, id, "setproof", abiErr(EINVAL, "setproof", "bad proof: "+err.Error())), false
		}
	}
	sc.k.SetProof(proxy, op, obj, pf, creds)
	dst = append(dst, fOK)
	return binary.AppendUvarint(dst, id), false
}

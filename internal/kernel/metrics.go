package kernel

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Kernel-wide observability plane. One flat struct of counters and latency
// histograms covers every per-decision event class: decision-cache traffic,
// guard upcalls, proof checks, wire decode, transport send/recv, and ledger
// forwarding. Counters that the subsystems already maintain lock-free
// (dcache hit/miss via cachestat, guardUpcalls, audit totals, ledger stats)
// are *not* duplicated — Metrics() folds them into the snapshot at read
// time. What lives here are the event classes that had no counter before.
//
// Two rules keep the plane invisible to the measured system:
//
//  1. Nothing on the warm authorized-syscall path touches it. The warm
//     path's only observable event — a dcache hit — is already counted by
//     the cache's own striped cachestat counters; instrumentation here is
//     confined to miss and transport paths. alloc_test.go pins the warm
//     path at 0 allocs/op with metrics (and a ledger) attached.
//  2. Writes are striped atomics. Counter stripes are cache-line padded
//     and selected by caller identity (PID, connection id), so concurrent
//     writers on different stripes never share a line; reads sum stripes.

// metricID indexes the striped counter set.
type metricID int

const (
	mProofChecks metricID = iota // guard upcalls carrying a registered proof
	mWireDecodes                 // formula/cert wire decodes on ingress
	mWireDecodeErrs
	mNetSends // transport frames sent (requests + responses)
	mNetSendBytes
	mNetRecvs // transport frames received
	mNetRecvBytes
	mNetTimeouts       // transport I/O classified ETIMEDOUT
	mNetShed           // connections rejected at the MaxConns shed-load gate
	mNetPollWakeups    // blocking EpollWait returns on parked shard workers
	mNetEgressFlushes  // egress-combiner flushes (writes to the connection)
	mNetEgressFrames   // frames that left through the combiner
	mLedgerFwdErrs     // audit→ledger forwards the ledger rejected
	numMetrics
)

// numStripes is the counter stripe count (power of two).
const numStripes = 16

// metricStripe is one cache-line-isolated bank of counters.
type metricStripe struct {
	c [numMetrics]atomic.Uint64
	_ [64]byte // pad so adjacent stripes never share a line
}

// histBuckets bounds the log2 latency histogram: bucket i counts durations
// d with bits.Len64(ns) == i, i.e. [2^(i-1), 2^i) ns; bucket 0 is 0ns and
// the last bucket absorbs everything ≥ ~34s.
const histBuckets = 36

// histogram is a lock-free log2 latency histogram.
type histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.observeCount(ns)
}

// observeCount records one plain value (queue depth, batch size) into the
// same log2 buckets; for count histograms SumNs is the plain sum.
func (h *histogram) observeCount(v uint64) {
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(v)
	h.buckets[b].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a latency histogram.
type HistogramSnapshot struct {
	Count uint64
	SumNs uint64
	// Buckets[i] counts durations in [2^(i-1), 2^i) nanoseconds.
	Buckets [histBuckets]uint64
}

func (h *histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// kernelMetrics is the plane itself; one per kernel, always attached.
type kernelMetrics struct {
	stripes [numStripes]metricStripe
	// guardNs times the full guard upcall (kernel → guard → kernel).
	guardNs histogram
	// netReqNs times the client side of one transport round-trip.
	netReqNs histogram
	// netDepth samples the in-flight request depth of a pipelined
	// connection, observed as each request enters the pending table.
	netDepth histogram
	// netBatch samples remote submission batch sizes (ops per fSubmit).
	netBatch histogram
	// netConns gauges live transport connections (accepted + dialed);
	// netQueued gauges connections currently queued for a scheduler worker.
	// Gauges, not striped counters: they go down as well as up.
	netConns  atomic.Int64
	netQueued atomic.Int64
	// netQueueLen samples per-shard run-queue depth at each enqueue.
	netQueueLen histogram
}

// add bumps a counter on the stripe selected by key (caller identity:
// PID, connection id — anything stable per concurrent writer).
func (m *kernelMetrics) add(key uint64, id metricID, n uint64) {
	m.stripes[key&(numStripes-1)].c[id].Add(n)
}

// total sums a counter across stripes.
func (m *kernelMetrics) total(id metricID) uint64 {
	var n uint64
	for i := range m.stripes {
		n += m.stripes[i].c[id].Load()
	}
	return n
}

// MetricsSnapshot is the flat, CSV-friendly export of the observability
// plane: every field is a plain number (histograms aside), so rows diff
// and plot without parsing.
type MetricsSnapshot struct {
	// Decision cache (from the cache's own striped counters).
	DCacheLookups   uint64
	DCacheHits      uint64
	DCacheMisses    uint64
	DCacheEvictions uint64
	// Decision path.
	GuardUpcalls uint64
	ProofChecks  uint64
	// Audit log and ledger.
	AuditRecords       uint64
	AuditRetained      uint64
	LedgerRecords      uint64
	LedgerBatches      uint64
	LedgerPending      uint64
	LedgerErrors       uint64 // backend append/sync failures (ledger-side)
	LedgerForwardXErrs uint64 // audit→ledger forwards rejected (kernel-side)
	// Wire codec (ingress).
	WireDecodes      uint64
	WireDecodeErrors uint64
	// Transport.
	NetSends     uint64
	NetSendBytes uint64
	NetRecvs     uint64
	NetRecvBytes uint64
	NetTimeouts  uint64
	// Transport runtime (event-driven scheduler).
	NetLiveConns   uint64 // gauge: established connections (accepted + dialed)
	NetPoolDepth   uint64 // gauge: connections queued for a scheduler worker
	NetShedRejects uint64 // connections rejected at the MaxConns gate
	// Wakeup-free datapath: shard-worker poll wakeups and egress
	// coalescing. A parked worker resuming from EpollWait counts one
	// wakeup however many connections the return readies; frames-per-flush
	// (NetEgressCoalescedFrames / NetEgressFlushes) measures coalescing.
	NetPollWakeups           uint64
	NetEgressFlushes         uint64
	NetEgressCoalescedFrames uint64
	// Latency distributions.
	GuardUpcallNs HistogramSnapshot
	NetRequestNs  HistogramSnapshot
	// Pipelined-transport distributions (counts, not nanoseconds): the
	// in-flight depth seen by each request, and ops per remote batch.
	NetInflightDepth HistogramSnapshot
	NetBatchOps      HistogramSnapshot
	// NetQueueLen distributes per-shard scheduler run-queue depth,
	// observed at each enqueue.
	NetQueueLen HistogramSnapshot
}

// gauge clamps a live gauge at zero: teardown decrements can transiently
// race ahead of their matching increments.
func gauge(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Metrics captures the kernel-wide observability snapshot, folding in the
// counters the subsystems maintain themselves.
func (k *Kernel) Metrics() MetricsSnapshot {
	m := k.metrics
	cs := k.dcache.StatsSnapshot()
	s := MetricsSnapshot{
		DCacheLookups:      cs.Lookups,
		DCacheHits:         cs.Hits,
		DCacheMisses:       cs.Misses,
		DCacheEvictions:    cs.Evictions,
		GuardUpcalls:       k.guardUpcalls.Load(),
		ProofChecks:        m.total(mProofChecks),
		AuditRecords:       k.audit.Total(),
		AuditRetained:      uint64(k.audit.Len()),
		LedgerForwardXErrs: m.total(mLedgerFwdErrs),
		WireDecodes:        m.total(mWireDecodes),
		WireDecodeErrors:   m.total(mWireDecodeErrs),
		NetSends:           m.total(mNetSends),
		NetSendBytes:       m.total(mNetSendBytes),
		NetRecvs:           m.total(mNetRecvs),
		NetRecvBytes:       m.total(mNetRecvBytes),
		NetTimeouts:        m.total(mNetTimeouts),
		NetLiveConns:       gauge(m.netConns.Load()),
		NetPoolDepth:       gauge(m.netQueued.Load()),
		NetShedRejects:     m.total(mNetShed),
		NetPollWakeups:     m.total(mNetPollWakeups),
		NetEgressFlushes:   m.total(mNetEgressFlushes),
		NetEgressCoalescedFrames: m.total(mNetEgressFrames),
		GuardUpcallNs:      m.guardNs.snapshot(),
		NetRequestNs:       m.netReqNs.snapshot(),
		NetInflightDepth:   m.netDepth.snapshot(),
		NetBatchOps:        m.netBatch.snapshot(),
		NetQueueLen:        m.netQueueLen.snapshot(),
	}
	if l := k.led.Load(); l != nil {
		ls := l.Stats()
		s.LedgerRecords = ls.Records
		s.LedgerBatches = ls.Batches
		s.LedgerPending = ls.Pending
		s.LedgerErrors = ls.Errors
	}
	return s
}

// render writes the /proc/kernel/metrics text exposition: one "name value"
// line per counter, histograms as count/sum plus their nonzero buckets.
func (s *MetricsSnapshot) render() string {
	var b strings.Builder
	row := func(name string, v uint64) {
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}
	row("dcache_lookups", s.DCacheLookups)
	row("dcache_hits", s.DCacheHits)
	row("dcache_misses", s.DCacheMisses)
	row("dcache_evictions", s.DCacheEvictions)
	row("guard_upcalls", s.GuardUpcalls)
	row("proof_checks", s.ProofChecks)
	row("audit_records", s.AuditRecords)
	row("audit_retained", s.AuditRetained)
	row("ledger_records", s.LedgerRecords)
	row("ledger_batches", s.LedgerBatches)
	row("ledger_pending", s.LedgerPending)
	row("ledger_errors", s.LedgerErrors)
	row("ledger_forward_errors", s.LedgerForwardXErrs)
	row("wire_decodes", s.WireDecodes)
	row("wire_decode_errors", s.WireDecodeErrors)
	row("net_sends", s.NetSends)
	row("net_send_bytes", s.NetSendBytes)
	row("net_recvs", s.NetRecvs)
	row("net_recv_bytes", s.NetRecvBytes)
	row("net_timeouts", s.NetTimeouts)
	row("net_conns", s.NetLiveConns)
	row("net_pool_depth", s.NetPoolDepth)
	row("net_shed_rejects", s.NetShedRejects)
	row("net_poll_wakeups", s.NetPollWakeups)
	row("net_egress_flushes", s.NetEgressFlushes)
	row("net_egress_coalesced_frames", s.NetEgressCoalescedFrames)
	hist := func(name string, h *HistogramSnapshot) {
		row(name+"_count", h.Count)
		row(name+"_sum_ns", h.SumNs)
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			// Bucket upper bound: 2^i - 1 ns (bucket 0 is exactly 0).
			var le uint64
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			fmt.Fprintf(&b, "%s_le_%d %d\n", name, le, n)
		}
	}
	hist("guard_upcall_ns", &s.GuardUpcallNs)
	hist("net_request_ns", &s.NetRequestNs)
	hist("net_inflight_depth", &s.NetInflightDepth)
	hist("net_batch_ops", &s.NetBatchOps)
	hist("net_queue_len", &s.NetQueueLen)
	return b.String()
}

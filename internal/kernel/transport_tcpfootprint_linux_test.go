//go:build linux

package kernel

import (
	"errors"
	"syscall"
	"testing"
)

// TestTransportGoroutineFootprintTCP is the epoll datapath's scaling gate,
// the TCP sibling of TestTransportGoroutineFootprint (the Makefile
// leakcheck target runs both): 1024 established TCP connections must cost
// O(worker-pool) goroutines. With the per-shard pollers owning the
// sockets, an idle TCP connection is an epoll registration plus scheduler
// state — not a blocked reader goroutine, which is exactly what the shim
// fallback would cost per connection.
func TestTransportGoroutineFootprintTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("1024 TCP handshakes")
	}
	const numConns = 1024
	// Both socket ends live in this process, so the test needs >2 FDs per
	// connection; raise the soft RLIMIT_NOFILE if it has no headroom.
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < 4*numConns {
		want := uint64(4 * numConns)
		if want > rl.Max {
			t.Skipf("RLIMIT_NOFILE hard cap %d too low for %d TCP connections", rl.Max, numConns)
		}
		old := rl
		rl.Cur = want
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
			t.Skipf("cannot raise RLIMIT_NOFILE: %v", err)
		}
		t.Cleanup(func() {
			if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &old); err != nil {
				t.Logf("restore RLIMIT_NOFILE: %v", err)
			}
		})
	}

	front, store := bootK(t), bootK(t)
	baseline := settledGoroutines(0)

	nStore := NewNode(store)
	var tr TCPTransport
	tl, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nStore.Serve(tl)
	nFront := NewNode(front)

	peers := make([]*Peer, 0, numConns)
	for i := 0; i < numConns; i++ {
		p, err := nFront.Dial(tr, tl.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		peers = append(peers, p)
	}
	if n := store.Metrics().NetLiveConns; n != numConns {
		t.Fatalf("store NetLiveConns %d, want %d", n, numConns)
	}

	idle := settledGoroutines(baseline + 32)
	if idle-baseline > 32 {
		t.Fatalf("%d goroutines for %d idle TCP connections (baseline %d): footprint is O(connections)",
			idle-baseline, numConns, baseline)
	}

	// Liveness through the pollers: connections from both ends of the dial
	// order still serve full round-trips.
	for _, p := range []*Peer{peers[0], peers[numConns-1]} {
		if _, err := p.connect(1, "no-such-service"); err == nil {
			t.Fatal("connect to unknown service succeeded")
		} else if errors.Is(err, ErrTransportClosed) {
			t.Fatalf("idle TCP connection dead: %v", err)
		}
	}

	nFront.Close()
	nStore.Close()
	after := settledGoroutines(baseline)
	if after > baseline+4 {
		t.Fatalf("%d goroutines after close, baseline %d: TCP connection teardown leaks", after, baseline)
	}
}

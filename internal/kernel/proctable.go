package kernel

import (
	"sync"
	"sync/atomic"
)

// procTable is the kernel's process registry: a lock-striped pid → *Process
// map plus an atomic pid allocator. It is one of the independently
// synchronized registries the kernel monolith decomposed into — a lookup
// takes one shard read-lock and never contends with process creation or
// teardown on a different shard.
//
// Invariant: a pid is present iff the process has been created and has not
// completed Exit. Liveness races at the create/exit boundary are resolved by
// the callers (see CreateProcess and Process.Exit): state registered for a
// process concurrently observed exiting is unwound by whichever side runs
// second.
type procTable struct {
	shards  [procShards]procShard
	nextPID atomic.Int64
}

const procShards = 16 // power of two so the shard index is a mask

type procShard struct {
	mu sync.RWMutex
	m  map[int]*Process
}

func newProcTable() *procTable {
	t := &procTable{}
	for i := range t.shards {
		t.shards[i].m = map[int]*Process{}
	}
	return t
}

func (t *procTable) shard(pid int) *procShard {
	return &t.shards[uint(pid)&(procShards-1)]
}

// alloc reserves the next pid.
func (t *procTable) alloc() int { return int(t.nextPID.Add(1)) }

func (t *procTable) get(pid int) (*Process, bool) {
	s := t.shard(pid)
	s.mu.RLock()
	p, ok := s.m[pid]
	s.mu.RUnlock()
	return p, ok
}

func (t *procTable) insert(p *Process) {
	s := t.shard(p.PID)
	s.mu.Lock()
	s.m[p.PID] = p
	s.mu.Unlock()
}

func (t *procTable) remove(pid int) {
	s := t.shard(pid)
	s.mu.Lock()
	delete(s.m, pid)
	s.mu.Unlock()
}

func (t *procTable) len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// pids snapshots the live pids in unspecified order.
func (t *procTable) pids() []int {
	out := make([]int, 0, 16)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for pid := range s.m {
			out = append(out, pid)
		}
		s.mu.RUnlock()
	}
	return out
}

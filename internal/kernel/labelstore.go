package kernel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/nal"
)

// ErrNoSuchLabel is returned for stale or foreign label handles.
var ErrNoSuchLabel = errors.New("kernel: no such label")

// Label is an attributable statement held in a labelstore. Because the say
// system call travels over a secure channel from the process to the kernel,
// the label needs no signature while it stays inside this Nexus instance
// (§2.3); Formula is always of the form "speaker says S".
type Label struct {
	Handle  int
	Speaker nal.Principal
	Formula nal.Formula

	// ext memoizes the externalized (signed) form. Labels are immutable
	// once issued and valid indefinitely (§2.7), so the certificate —
	// including its Issued timestamp — is minted at most once per label;
	// re-externalizing is then a pointer load. A stable certificate is also
	// what makes downstream caches work: the verifier's VerifyCache and the
	// per-connection re-attestation tables key on the certificate
	// fingerprint, which would change with every fresh Issued time.
	// Guarded by the store's mu.
	ext *ExternalLabel
}

// Labelstore holds the labels issued by (or transferred to) one process.
type Labelstore struct {
	mu     sync.RWMutex
	owner  *Process
	next   int
	labels map[int]*Label
}

func newLabelstore(owner *Process) *Labelstore {
	return &Labelstore{owner: owner, next: 1, labels: map[int]*Label{}}
}

// Say implements the say system call: the process utters statement, which
// is recorded as "caller says statement". The statement may not itself be
// ill-formed, but its predicates are uninterpreted — the kernel imposes no
// semantic restrictions (§2.2).
func (ls *Labelstore) Say(statement string) (*Label, error) {
	f, err := nal.Parse(statement)
	if err != nil {
		return nil, fmt.Errorf("kernel: say: %w", err)
	}
	return ls.SayFormula(f)
}

// SayFormula is Say for pre-parsed formulas.
func (ls *Labelstore) SayFormula(f nal.Formula) (*Label, error) {
	if !nal.Ground(f) {
		return nil, fmt.Errorf("kernel: say: statement must be ground")
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l := &Label{
		Handle:  ls.next,
		Speaker: ls.owner.Prin,
		Formula: nal.SaysWrap(ls.owner.Prin, f),
	}
	ls.next++
	ls.labels[l.Handle] = l
	return l, nil
}

// insertSystem deposits a kernel-issued label (e.g. an IPC binding or an
// ownership grant) into the store.
func (ls *Labelstore) insertSystem(f nal.Formula) *Label {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l := &Label{Handle: ls.next, Speaker: ls.owner.kernel.Prin, Formula: f}
	ls.next++
	ls.labels[l.Handle] = l
	return l
}

// Get returns a label by handle.
func (ls *Labelstore) Get(handle int) (*Label, error) {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	l, ok := ls.labels[handle]
	if !ok {
		return nil, ErrNoSuchLabel
	}
	return l, nil
}

// Delete removes a label.
func (ls *Labelstore) Delete(handle int) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if _, ok := ls.labels[handle]; !ok {
		return ErrNoSuchLabel
	}
	delete(ls.labels, handle)
	return nil
}

// Transfer moves a label into another labelstore, returning the new
// handle. The formula (including its original speaker) is unchanged.
// Session-level code transfers by pid via Session.TransferLabel.
func (ls *Labelstore) Transfer(handle int, dst *Labelstore) (*Label, error) {
	ls.mu.Lock()
	l, ok := ls.labels[handle]
	if ok {
		delete(ls.labels, handle)
	}
	ls.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchLabel
	}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	nl := &Label{Handle: dst.next, Speaker: l.Speaker, Formula: l.Formula}
	dst.next++
	dst.labels[nl.Handle] = nl
	return nl, nil
}

// All returns the formulas of every label in the store; guards treat these
// as the credential set reachable from the subject.
func (ls *Labelstore) All() []nal.Formula {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	out := make([]nal.Formula, 0, len(ls.labels))
	for _, l := range ls.labels {
		out = append(out, l.Formula)
	}
	return out
}

// Len reports the number of labels held.
func (ls *Labelstore) Len() int {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return len(ls.labels)
}

// ExternalLabel is a label externalized to the X.509-style format of §2.4:
// the label statement signed by the Nexus key, plus the TPM's endorsement of
// the Nexus key. Informally, "TPM says kernel says process says S".
type ExternalLabel struct {
	// LabelCert is signed by NK; its Speaker is the in-kernel principal
	// suffix (bootid.ipd.N or similar) and its Formula the statement body.
	LabelCert *cert.Certificate
	// NKCert is signed by the TPM's EK and states that NK speaks for the
	// measured Nexus on this platform.
	NKCert *cert.Certificate
}

// Externalize converts a label into transferable certificate form, signed
// with the kernel's Ed25519 Nexus key. The signed form is memoized on the
// label: a label is immutable, so the first externalization fixes its
// certificate and later calls return it without touching the signer.
func (ls *Labelstore) Externalize(handle int) (*ExternalLabel, error) {
	ls.mu.RLock()
	l, ok := ls.labels[handle]
	var ext *ExternalLabel
	if ok {
		ext = l.ext
	}
	ls.mu.RUnlock()
	if !ok {
		return nil, ErrNoSuchLabel
	}
	if ext != nil {
		return ext, nil
	}
	k := ls.owner.kernel
	labelCert, err := cert.SignEd25519(cert.Statement{
		Speaker: l.Formula.(nal.Says).P.String(),
		Formula: l.Formula.(nal.Says).F.String(),
		Serial:  int64(handle),
		Issued:  time.Now(),
	}, k.NK)
	if err != nil {
		return nil, fmt.Errorf("kernel: externalize: %w", err)
	}
	nkCert, err := k.nkEndorsement()
	if err != nil {
		return nil, err
	}
	ext = &ExternalLabel{LabelCert: labelCert, NKCert: nkCert}
	ls.mu.Lock()
	// Recheck under the write lock: the label may have raced a Delete (the
	// signed form is then simply discarded) or another externalization (the
	// first one wins so every caller sees one canonical certificate).
	if cur, still := ls.labels[handle]; still {
		if cur.ext != nil {
			ext = cur.ext
		} else {
			cur.ext = ext
		}
	}
	ls.mu.Unlock()
	return ext, nil
}

// Import verifies an external label and deposits the corresponding
// key-attributed formula into the store. The resulting label reads
// "key:<NK> says <speaker> says S"; proofs connect key:<NK> to a trusted
// Nexus via the NK endorsement. Verification goes through the kernel's
// pre-verification cache, so re-importing a known certificate (and any
// guard resolving it as a credential) skips the RSA check; a revoked
// certificate fails here regardless of cache state.
func (ls *Labelstore) Import(ext *ExternalLabel) (*Label, error) {
	f, _, err := ls.owner.kernel.certs.Label(ext.LabelCert)
	if err != nil {
		return nil, fmt.Errorf("kernel: import: %w", err)
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l := &Label{Handle: ls.next, Speaker: ls.owner.kernel.Prin, Formula: f}
	ls.next++
	ls.labels[l.Handle] = l
	return l, nil
}

package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/nal"
)

// auditGuard alternates allow/deny so the log sees both verdicts.
type auditGuard struct{}

func (g auditGuard) Check(req *GuardRequest) GuardDecision {
	if strings.HasPrefix(req.Obj, "deny") {
		return GuardDecision{Allow: false, Cacheable: false, Reason: "guard says no"}
	}
	return GuardDecision{Allow: true, Cacheable: false, Reason: "guard says yes"}
}

func auditWorld(t *testing.T) (*Kernel, *Process) {
	t.Helper()
	k := bootKernel(t)
	k.SetGuard(auditGuard{})
	p, err := k.CreateProcess(0, []byte("audited"))
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

// TestAuditChain: guard verdicts land in the log in order, the chain
// verifies, and both allow and deny decisions are recorded with the
// subject attributed.
func TestAuditChain(t *testing.T) {
	k, p := auditWorld(t)
	goal := nal.MustParse("?S says never")
	for _, obj := range []string{"allow-a", "deny-b", "allow-c"} {
		if err := k.SetGoal(p, "read", obj, goal, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := k.syscall(p, "read", "allow-a", nil, func() error { return nil }); err != nil {
			t.Fatalf("allow-a: %v", err)
		}
	}
	if err := k.syscall(p, "read", "deny-b", nil, func() error { return nil }); !errors.Is(err, ErrDenied) {
		t.Fatalf("deny-b: want denial, got %v", err)
	}
	if err := k.syscall(p, "read", "allow-c", nil, func() error { return nil }); err != nil {
		t.Fatalf("allow-c: %v", err)
	}

	a := k.Audit()
	if err := a.Verify(); err != nil {
		t.Fatalf("chain does not verify: %v", err)
	}
	recs, _ := a.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (decisions are uncacheable here)", len(recs))
	}
	var sawDeny, sawAllow bool
	for _, r := range recs {
		if r.Subj != p.PrinString() {
			t.Fatalf("record attributes %q, want %q", r.Subj, p.PrinString())
		}
		if r.Allow {
			sawAllow = true
		} else {
			sawDeny = true
			if r.Obj != "deny-b" {
				t.Fatalf("denial recorded for %q", r.Obj)
			}
		}
	}
	if !sawDeny || !sawAllow {
		t.Fatal("log missing an allow or a deny verdict")
	}
}

// TestAuditTamperDetected: any in-place edit of a record breaks
// verification against the published head.
func TestAuditTamperDetected(t *testing.T) {
	k, p := auditWorld(t)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	recs, base := k.Audit().Records()
	head := k.Audit().Head()
	if err := VerifyAuditChain(recs, base, head); err != nil {
		t.Fatalf("pristine chain rejected: %v", err)
	}

	// Flip a verdict.
	tampered := append([]AuditRecord(nil), recs...)
	tampered[2].Allow = !tampered[2].Allow
	if err := VerifyAuditChain(tampered, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("verdict flip not detected: %v", err)
	}
	// Rewrite a record consistently with its own hash but not the chain.
	tampered = append([]AuditRecord(nil), recs...)
	tampered[2].Obj = "something-else"
	tampered[2].Hash = auditHash(tampered[2].Prev, tampered[2].Seq, tampered[2].Subj,
		tampered[2].Op, tampered[2].Obj, tampered[2].Allow, tampered[2].Reason)
	if err := VerifyAuditChain(tampered, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("rehashed edit not detected: %v", err)
	}
	// Delete a record.
	deleted := append(append([]AuditRecord(nil), recs[:2]...), recs[3:]...)
	if err := VerifyAuditChain(deleted, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("deletion not detected: %v", err)
	}
	// Truncate the tail.
	if err := VerifyAuditChain(recs[:3], base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("truncation not detected: %v", err)
	}
}

// TestAuditEviction: the retention cap holds, the base hash advances, and
// the retained window still verifies against the head.
func TestAuditEviction(t *testing.T) {
	k, p := auditWorld(t)
	k.Audit().SetCap(8)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	a := k.Audit()
	if a.Len() > 8 {
		t.Fatalf("retained %d records, cap is 8", a.Len())
	}
	if a.Total() < 50 {
		t.Fatalf("total %d, want ≥ 50", a.Total())
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("chain does not verify after eviction: %v", err)
	}
	recs, _ := a.Records()
	if recs[0].Seq == 0 {
		t.Fatal("base did not advance past evicted records")
	}
}

// TestAuditIntrospection: the log is published at /proc/kernel/audit.
func TestAuditIntrospection(t *testing.T) {
	k, p := auditWorld(t)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	v, _, ok := k.Introsp.Read("/proc/kernel/audit")
	if !ok {
		t.Fatal("/proc/kernel/audit not published")
	}
	if !strings.Contains(v, "total=") || !strings.Contains(v, "head=") {
		t.Fatalf("unexpected audit introspection: %q", v)
	}
}

// TestAuditWarmPathSilent: decisions served from the decision cache do not
// re-append records (the log records decisions, not replays).
func TestAuditWarmPathSilent(t *testing.T) {
	k, p := auditWorld(t)
	// A cacheable decision: goal present, guard says cacheable.
	k.SetGuard(cacheableAllowGuard{})
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.Audit().Total(); got != 1 {
		t.Fatalf("cached replays re-recorded: %d records, want 1", got)
	}
}

type cacheableAllowGuard struct{}

func (cacheableAllowGuard) Check(req *GuardRequest) GuardDecision {
	return GuardDecision{Allow: true, Cacheable: true, Reason: "cacheable allow"}
}

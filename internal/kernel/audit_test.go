package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/nal"
)

// auditGuard alternates allow/deny so the log sees both verdicts.
type auditGuard struct{}

func (g auditGuard) Check(req *GuardRequest) GuardDecision {
	if strings.HasPrefix(req.Obj, "deny") {
		return GuardDecision{Allow: false, Cacheable: false, Reason: "guard says no"}
	}
	return GuardDecision{Allow: true, Cacheable: false, Reason: "guard says yes"}
}

func auditWorld(t *testing.T) (*Kernel, *Process) {
	t.Helper()
	k := bootKernel(t)
	k.SetGuard(auditGuard{})
	p, err := k.CreateProcess(0, []byte("audited"))
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

// TestAuditChain: guard verdicts land in the log in order, the chain
// verifies, and both allow and deny decisions are recorded with the
// subject attributed.
func TestAuditChain(t *testing.T) {
	k, p := auditWorld(t)
	goal := nal.MustParse("?S says never")
	for _, obj := range []string{"allow-a", "deny-b", "allow-c"} {
		if err := k.SetGoal(p, "read", obj, goal, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := k.syscall(p, "read", "allow-a", nil, func() error { return nil }); err != nil {
			t.Fatalf("allow-a: %v", err)
		}
	}
	if err := k.syscall(p, "read", "deny-b", nil, func() error { return nil }); !errors.Is(err, ErrDenied) {
		t.Fatalf("deny-b: want denial, got %v", err)
	}
	if err := k.syscall(p, "read", "allow-c", nil, func() error { return nil }); err != nil {
		t.Fatalf("allow-c: %v", err)
	}

	a := k.Audit()
	if err := a.Verify(); err != nil {
		t.Fatalf("chain does not verify: %v", err)
	}
	recs, _ := a.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (decisions are uncacheable here)", len(recs))
	}
	var sawDeny, sawAllow bool
	for _, r := range recs {
		if r.Subj != p.PrinString() {
			t.Fatalf("record attributes %q, want %q", r.Subj, p.PrinString())
		}
		if r.Allow {
			sawAllow = true
		} else {
			sawDeny = true
			if r.Obj != "deny-b" {
				t.Fatalf("denial recorded for %q", r.Obj)
			}
		}
	}
	if !sawDeny || !sawAllow {
		t.Fatal("log missing an allow or a deny verdict")
	}
}

// TestAuditTamperDetected: any in-place edit of a record breaks
// verification against the published head.
func TestAuditTamperDetected(t *testing.T) {
	k, p := auditWorld(t)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	recs, baseSeq, base, head := k.Audit().Snapshot()
	if err := VerifyAuditChain(recs, baseSeq, base, head); err != nil {
		t.Fatalf("pristine chain rejected: %v", err)
	}

	// Flip a verdict.
	tampered := append([]AuditRecord(nil), recs...)
	tampered[2].Allow = !tampered[2].Allow
	if err := VerifyAuditChain(tampered, baseSeq, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("verdict flip not detected: %v", err)
	}
	// Rewrite a record consistently with its own hash but not the chain.
	tampered = append([]AuditRecord(nil), recs...)
	tampered[2].Obj = "something-else"
	tampered[2].Hash = auditHash(tampered[2].Prev, tampered[2].Seq, tampered[2].Subj,
		tampered[2].Op, tampered[2].Obj, tampered[2].Allow, tampered[2].Reason)
	if err := VerifyAuditChain(tampered, baseSeq, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("rehashed edit not detected: %v", err)
	}
	// Delete a record.
	deleted := append(append([]AuditRecord(nil), recs[:2]...), recs[3:]...)
	if err := VerifyAuditChain(deleted, baseSeq, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("deletion not detected: %v", err)
	}
	// Truncate the tail.
	if err := VerifyAuditChain(recs[:3], baseSeq, base, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("truncation not detected: %v", err)
	}
}

// TestAuditForgedRebase: dropping records off the *front* of the window
// and advancing base/baseSeq to make the remainder self-consistent must
// not verify — the first record's seq has to match the claimed baseSeq.
func TestAuditForgedRebase(t *testing.T) {
	k, p := auditWorld(t)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	recs, baseSeq, _, head := k.Audit().Snapshot()
	// Forge: hide the first two records by re-basing the window on record 1's
	// hash. The remaining chain is internally consistent and ends at the
	// genuine head — only the baseSeq check can catch it.
	forged := recs[2:]
	forgedBase := recs[1].Hash
	if err := VerifyAuditChain(forged, baseSeq, forgedBase, head); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("forged re-base not detected: %v", err)
	}
	// The same window is legitimate when the verifier is told the true
	// baseSeq (this is exactly what eviction produces).
	if err := VerifyAuditChain(forged, forged[0].Seq, forgedBase, head); err != nil {
		t.Fatalf("genuine eviction window rejected: %v", err)
	}
}

// TestAuditSetCapEvicts: shrinking the cap on a quiet log evicts
// immediately — Len may never exceed the cap — and the surviving window
// still verifies.
func TestAuditSetCapEvicts(t *testing.T) {
	k, p := auditWorld(t)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	a := k.Audit()
	if a.Len() != 20 {
		t.Fatalf("setup: %d records", a.Len())
	}
	head := a.Head()
	a.SetCap(5)
	if a.Len() != 5 {
		t.Fatalf("SetCap(5) left %d records retained", a.Len())
	}
	if a.Head() != head {
		t.Fatal("eviction moved the chain head")
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("window does not verify after SetCap eviction: %v", err)
	}
	recs, baseSeq, _, _ := a.Snapshot()
	if recs[0].Seq != 15 || baseSeq != 15 {
		t.Fatalf("window starts at seq %d (baseSeq %d), want 15", recs[0].Seq, baseSeq)
	}
	// Growing the cap never evicts.
	a.SetCap(100)
	if a.Len() != 5 {
		t.Fatalf("growing the cap changed retention: %d", a.Len())
	}
	// Shrinking below the floor clamps to 2.
	a.SetCap(0)
	if a.Len() != 2 {
		t.Fatalf("SetCap(0) retained %d records, want 2 (clamped)", a.Len())
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditEviction: the retention cap holds, the base hash advances, and
// the retained window still verifies against the head.
func TestAuditEviction(t *testing.T) {
	k, p := auditWorld(t)
	k.Audit().SetCap(8)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	a := k.Audit()
	if a.Len() > 8 {
		t.Fatalf("retained %d records, cap is 8", a.Len())
	}
	if a.Total() < 50 {
		t.Fatalf("total %d, want ≥ 50", a.Total())
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("chain does not verify after eviction: %v", err)
	}
	recs, _ := a.Records()
	if recs[0].Seq == 0 {
		t.Fatal("base did not advance past evicted records")
	}
}

// TestAuditEvictionBoundary: behavior exactly at the cap. The eviction
// triggers on the write that would exceed the cap, so a log with exactly
// cap records still holds them all; one more write halves the window.
func TestAuditEvictionBoundary(t *testing.T) {
	k, p := auditWorld(t)
	a := k.Audit()
	a.SetCap(8)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	write := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(8)
	if a.Len() != 8 {
		t.Fatalf("cap exactly reached: retained %d, want 8", a.Len())
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	write(1)
	if a.Len() != 5 {
		t.Fatalf("first write past the cap: retained %d, want 5 (half evicted)", a.Len())
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("window does not verify right after boundary eviction: %v", err)
	}
	recs, baseSeq, _, _ := a.Snapshot()
	if baseSeq != 4 || recs[0].Seq != 4 {
		t.Fatalf("base at seq %d (first retained %d), want 4", baseSeq, recs[0].Seq)
	}
}

// TestAuditCapTwoChurn: the minimum cap under sustained writes — every
// append evicts, the window stays verifiable, and the head keeps covering
// the full history.
func TestAuditCapTwoChurn(t *testing.T) {
	k, p := auditWorld(t)
	a := k.Audit()
	a.SetCap(2)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		if a.Len() > 2 {
			t.Fatalf("iteration %d: retained %d records, cap is 2", i, a.Len())
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if a.Total() != 30 {
		t.Fatalf("total %d, want 30", a.Total())
	}
}

// TestAuditEmptyLog: a never-written log verifies, snapshots cleanly, and
// an all-zero head round-trips.
func TestAuditEmptyLog(t *testing.T) {
	a := newAuditLog()
	if err := a.Verify(); err != nil {
		t.Fatalf("empty log does not verify: %v", err)
	}
	recs, baseSeq, base, head := a.Snapshot()
	if len(recs) != 0 || baseSeq != 0 || base != ([32]byte{}) || head != ([32]byte{}) {
		t.Fatalf("empty snapshot not zero: %d recs, baseSeq %d", len(recs), baseSeq)
	}
	// Claiming a head over an empty window is rejected.
	fake := [32]byte{1}
	if err := VerifyAuditChain(nil, 0, base, fake); !errors.Is(err, ErrAuditChain) {
		t.Fatalf("empty log with nonzero head accepted: %v", err)
	}
	// SetCap on an empty log must not panic or fabricate state.
	a.SetCap(2)
	if a.Len() != 0 || a.Total() != 0 {
		t.Fatal("SetCap disturbed an empty log")
	}
}

// TestAuditDisableAcrossEviction: disabling mid-stream drops decisions
// without breaking the chain, including when evictions happen on both
// sides of the gap; seq numbers stay dense (disabled decisions are not
// numbered).
func TestAuditDisableAcrossEviction(t *testing.T) {
	k, p := auditWorld(t)
	a := k.Audit()
	a.SetCap(4)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	write := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(6) // evicts at least once
	a.Disable()
	write(5) // silent
	a.Enable()
	write(6) // evicts again
	if a.Total() != 12 {
		t.Fatalf("total %d, want 12 (5 silent decisions unnumbered)", a.Total())
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("chain broken across disable/enable + evictions: %v", err)
	}
	recs, _, _, _ := a.Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("seq gap across disable window: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// TestAuditIntrospection: the log is published at /proc/kernel/audit.
func TestAuditIntrospection(t *testing.T) {
	k, p := auditWorld(t)
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	v, _, ok := k.Introsp.Read("/proc/kernel/audit")
	if !ok {
		t.Fatal("/proc/kernel/audit not published")
	}
	if !strings.Contains(v, "total=") || !strings.Contains(v, "head=") {
		t.Fatalf("unexpected audit introspection: %q", v)
	}
}

// TestAuditWarmPathSilent: decisions served from the decision cache do not
// re-append records (the log records decisions, not replays).
func TestAuditWarmPathSilent(t *testing.T) {
	k, p := auditWorld(t)
	// A cacheable decision: goal present, guard says cacheable.
	k.SetGuard(cacheableAllowGuard{})
	if err := k.SetGoal(p, "read", "allow-x", nal.MustParse("?S says never"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := k.syscall(p, "read", "allow-x", nil, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.Audit().Total(); got != 1 {
		t.Fatalf("cached replays re-recorded: %d records, want 1", got)
	}
}

type cacheableAllowGuard struct{}

func (cacheableAllowGuard) Check(req *GuardRequest) GuardDecision {
	return GuardDecision{Allow: true, Cacheable: true, Reason: "cacheable allow"}
}

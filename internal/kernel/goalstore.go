package kernel

import (
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// resourceKey identifies a guarded (operation, object) pair.
type resourceKey struct{ op, obj string }

// tupleKey is the access-control tuple.
type tupleKey struct{ subj, op, obj string }

// GoalEntry associates a goal formula (and optionally a designated guard)
// with an operation on an object (§2.5).
type GoalEntry struct {
	Goal  nal.Formula
	Guard Guard // nil selects the kernel's default guard
}

type goalStore struct {
	mu     sync.RWMutex
	goals  map[resourceKey]*GoalEntry
	owners map[string]nal.Principal // object → creator (bootstrap policy)
}

func newGoalStore() *goalStore {
	return &goalStore{goals: map[resourceKey]*GoalEntry{}, owners: map[string]nal.Principal{}}
}

// Credential is one label presented with a proof. Inline credentials are
// copied into the request and may be cached with the decision; labelstore
// references are re-fetched from the (mutable) store on every check, so
// decisions depending on them are not cacheable. Certificate credentials
// are verified through the kernel's pre-verification cache and, because
// they are revocable there, also keep decisions out of the kernel cache.
type Credential struct {
	Inline nal.Formula
	Ref    *LabelRef
	Cert   *cert.Certificate
}

// LabelRef names a label held in some process's labelstore.
type LabelRef struct {
	PID    int
	Handle int
}

// RegisteredProof is the proof a subject has bound to an access tuple via
// the setproof control call; the kernel hands it to the guard on each
// decision-cache miss. SetProof compiles the proof and interns inline
// credentials once at registration, so the authorization path touches only
// IDs.
type RegisteredProof struct {
	Proof *proof.Proof
	Creds []Credential
	// CredIDs holds, position for position, the hash-cons handle of each
	// inline credential (0 for references, certificates, or at cons
	// saturation); guards fill the gaps per check.
	CredIDs []nal.FormulaID
}

// Guard decides authorization requests on decision-cache misses (§2.6).
type Guard interface {
	Check(req *GuardRequest) GuardDecision
}

// GuardRequest carries everything a guard needs for one decision.
type GuardRequest struct {
	Kernel  *Kernel
	Subject nal.Principal
	Op, Obj string
	Goal    nal.Formula
	// Proof and Creds are the subject's registered proof, nil if none.
	Proof *proof.Proof
	Creds []Credential
	// CredIDs, when non-nil, is the registration-time interning of Creds
	// (see RegisteredProof.CredIDs).
	CredIDs []nal.FormulaID
}

// GuardDecision is the guard's answer, including whether the kernel may
// cache it (§2.8's cacheable bit on the guard-kernel interface).
type GuardDecision struct {
	Allow     bool
	Cacheable bool
	Reason    string
}

// RegisterObject records the creator of a nascent object so that the
// default policy — resource-manager.object says operation — protects it
// before any goal is set (§2.6).
func (k *Kernel) RegisterObject(obj string, owner nal.Principal) {
	k.goals.mu.Lock()
	defer k.goals.mu.Unlock()
	k.goals.owners[obj] = owner
}

// registerObjectIfNascent records owner as the object's creator only when
// no creator is recorded yet — the Session.OpenObject claim path, which
// must not let a later opener displace the first.
func (k *Kernel) registerObjectIfNascent(obj string, owner nal.Principal) {
	k.goals.mu.Lock()
	if _, ok := k.goals.owners[obj]; !ok {
		k.goals.owners[obj] = owner
	}
	k.goals.mu.Unlock()
}

// ReleaseObject removes the creator binding.
func (k *Kernel) ReleaseObject(obj string) {
	k.goals.mu.Lock()
	defer k.goals.mu.Unlock()
	delete(k.goals.owners, obj)
}

// SetGoal associates a goal formula with an operation on an object and
// vectors subsequent decisions to the given guard (nil = default). Setting
// a goal is itself an authorized operation on the object.
func (k *Kernel) SetGoal(caller *Process, op, obj string, goal nal.Formula, g Guard) error {
	if err := k.authorize(caller, "setgoal", obj); err != nil {
		return err
	}
	k.goals.mu.Lock()
	k.goals.goals[resourceKey{op, obj}] = &GoalEntry{Goal: goal, Guard: g}
	k.goals.mu.Unlock()
	// A goal update may affect every subject's entries for this resource:
	// clear the subregion (§2.8).
	k.dcache.InvalidateRegion(op, obj)
	return nil
}

// ClearGoal removes the goal for (op, obj).
func (k *Kernel) ClearGoal(caller *Process, op, obj string) error {
	if err := k.authorize(caller, "setgoal", obj); err != nil {
		return err
	}
	k.goals.mu.Lock()
	delete(k.goals.goals, resourceKey{op, obj})
	k.goals.mu.Unlock()
	k.dcache.InvalidateRegion(op, obj)
	return nil
}

// Goal returns the goal entry for (op, obj), if any.
func (k *Kernel) Goal(op, obj string) (*GoalEntry, bool) {
	k.goals.mu.RLock()
	defer k.goals.mu.RUnlock()
	e, ok := k.goals.goals[resourceKey{op, obj}]
	return e, ok
}

// SetProof registers the caller's proof for an access tuple; the kernel
// invalidates only the caller's cached decision for that tuple. The proof
// is compiled and its inline credentials interned here, once, so the
// authorization miss path never re-parses or re-serializes proof state.
func (k *Kernel) SetProof(caller *Process, op, obj string, p *proof.Proof, creds []Credential) {
	subj := caller.PrinString()
	rp := &RegisteredProof{Proof: p, Creds: creds}
	if p != nil {
		p.Compiled() // warm; a compile-rejected proof falls back at check time
	}
	if len(creds) > 0 {
		rp.CredIDs = make([]nal.FormulaID, len(creds))
		for i, c := range creds {
			if c.Inline != nil {
				rp.CredIDs[i], _ = nal.IDOf(c.Inline)
			}
		}
	}
	k.proofs.set(tupleKey{subj, op, obj}, rp)
	k.dcache.InvalidateEntry(subj, op, obj)
}

// ClearProof removes the caller's proof for the tuple.
func (k *Kernel) ClearProof(caller *Process, op, obj string) {
	subj := caller.PrinString()
	k.proofs.delete(tupleKey{subj, op, obj})
	k.dcache.InvalidateEntry(subj, op, obj)
}

// registeredProof fetches the subject's proof for a tuple.
func (k *Kernel) registeredProof(subj, op, obj string) *RegisteredProof {
	return k.proofs.get(tupleKey{subj, op, obj})
}

// GuardUpcalls reports how many times the kernel crossed into a guard; the
// counter is lock-free and also published at /proc/kernel/guard_upcalls.
func (k *Kernel) GuardUpcalls() uint64 { return k.guardUpcalls.Load() }

// authorize enforces the goal (if any) on (subject, op, obj): decision
// cache first, guard upcall on miss (§2.8, Figure 1). The hit path is
// allocation-free; the miss path (authorizeMiss) allocates by design.
func (k *Kernel) authorize(from *Process, op, obj string) error {
	subj := from.PrinString()

	// Fast path: cached decision.
	if allow, ok := k.dcache.Lookup(subj, op, obj); ok {
		if allow {
			return nil
		}
		return abiErr(EACCES, op, "cached denial for "+subj+" on "+obj) //nexus:coldpath
	}
	return k.authorizeMiss(from, subj, op, obj)
}

// authorizeMiss is the cache-miss continuation of authorize: goal lookup,
// guard upcall, audit record, cache fill. It allocates (GuardRequest,
// audit record, reason strings) — that cost is the price of a policy
// decision, paid once per (subject, op, obj) epoch, and is why the
// decision cache exists.
//
//nexus:alloc-ok
func (k *Kernel) authorizeMiss(from *Process, subj, op, obj string) error {
	// The epoch is read before any goal or proof state: if a setgoal or
	// setproof invalidation lands while the decision below is in flight,
	// InsertIf discards the result instead of caching it stale. (Reading
	// it only after the fast-path miss keeps the cached path at a single
	// region-lock acquisition.)
	epoch := k.dcache.Epoch(op, obj)

	entry, hasGoal := k.Goal(op, obj)
	if !hasGoal {
		// Bootstrap default: a nascent object with a registered creator is
		// usable only by the creator or its superprincipals; everything
		// else defaults to allow.
		k.goals.mu.RLock()
		owner, registered := k.goals.owners[obj]
		k.goals.mu.RUnlock()
		allow := !registered || nal.IsAncestor(owner, from.Prin) || nal.IsAncestor(from.Prin, owner)
		if registered {
			// Unguarded resources stay off the audit log; a creator-protected
			// nascent object is a real policy decision and is recorded.
			k.audit.record(subj, op, obj, allow, "default policy")
		}
		k.dcache.InsertIf(subj, op, obj, allow, epoch)
		if allow {
			return nil
		}
		return abiErr(EACCES, op, "default policy protects nascent "+obj)
	}

	// Trivial ALLOW goal needs no guard.
	if _, ok := entry.Goal.(nal.TrueF); ok {
		k.dcache.InsertIf(subj, op, obj, true, epoch)
		return nil
	}

	g := entry.Guard
	if g == nil {
		g = k.defaultGuard()
	}
	if g == nil {
		k.audit.record(subj, op, obj, false, "no guard bound to goal")
		return ErrNoGuard
	}

	req := &GuardRequest{
		Kernel:  k,
		Subject: from.Prin,
		Op:      op,
		Obj:     obj,
		Goal:    entry.Goal,
	}
	if rp := k.registeredProof(subj, op, obj); rp != nil {
		req.Proof = rp.Proof
		req.Creds = rp.Creds
		req.CredIDs = rp.CredIDs
		k.metrics.add(uint64(from.PID), mProofChecks, 1)
	}
	k.guardUpcalls.Add(1)
	t0 := time.Now()
	dec := g.Check(req)
	k.metrics.guardNs.observe(time.Since(t0))
	k.audit.record(subj, op, obj, dec.Allow, dec.Reason)
	if dec.Cacheable {
		k.dcache.InsertIf(subj, op, obj, dec.Allow, epoch)
	}
	if !dec.Allow {
		return abiErr(EACCES, op, dec.Reason)
	}
	return nil
}

// DecisionCacheStats exposes hit/miss counters for the benchmarks.
func (k *Kernel) DecisionCacheStats() (hits, misses uint64) {
	return k.dcache.Stats()
}

// DCache exposes the decision cache for configuration in benchmarks.
func (k *Kernel) DCache() *DecisionCache { return k.dcache }

package kernel

import (
	"errors"
	"testing"
)

// TestExitCleansChannelState is the regression test for the channel-
// capability leak: Exit must drop the dead process's own grants AND revoke
// the grants other processes hold to the dead process's ports.
func TestExitCleansChannelState(t *testing.T) {
	k := bootKernel(t)
	k.SetAuthorization(false)
	k.EnforceChannels(true)

	srv, _ := k.CreateProcess(0, []byte("srv"))
	mid, _ := k.CreateProcess(0, []byte("mid"))
	cli, _ := k.CreateProcess(0, []byte("cli"))

	echo := func(_ Caller, m *Msg) ([]byte, error) { return []byte("ok"), nil }
	srvPort, err := k.CreatePort(srv, echo)
	if err != nil {
		t.Fatal(err)
	}
	midPort, err := k.CreatePort(mid, echo)
	if err != nil {
		t.Fatal(err)
	}

	// mid holds a channel to srv's port; cli holds a channel to mid's port.
	if err := k.GrantChannel(mid, srvPort.ID); err != nil {
		t.Fatal(err)
	}
	if err := k.GrantChannel(cli, midPort.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(cli, midPort.ID, &Msg{Op: "ping", Obj: "o"}); err != nil {
		t.Fatalf("cli call to mid before exit: %v", err)
	}

	mid.Exit()

	// Leak half 1: the dead process's own grants are gone.
	if k.chans.holds(mid.PID, srvPort.ID) {
		t.Error("exited process still holds a channel grant")
	}
	// Leak half 2: grants others held to the dead process's ports are gone.
	if k.chans.holds(cli.PID, midPort.ID) {
		t.Error("grant to a dead process's port left dangling")
	}
	if _, ok := k.FindPort(midPort.ID); ok {
		t.Error("dead process's port still registered")
	}
	if _, err := k.Call(cli, midPort.ID, &Msg{Op: "ping", Obj: "o"}); !errors.Is(err, ErrNoSuchPort) {
		t.Errorf("call to dead port: got %v, want ErrNoSuchPort", err)
	}

	// Unrelated state survives.
	if _, ok := k.FindPort(srvPort.ID); !ok {
		t.Error("unrelated port was dropped")
	}
	if _, err := k.Call(srv, srvPort.ID, &Msg{Op: "ping", Obj: "o"}); err != nil {
		t.Errorf("owner call to its own port after unrelated exit: %v", err)
	}

	// The snapshot the connectivity analyzer reads agrees.
	for pid, owners := range k.Channels() {
		if pid == mid.PID {
			t.Error("Channels() still lists the dead process as a holder")
		}
		for _, owner := range owners {
			if owner == mid.PID {
				t.Error("Channels() still lists an edge to the dead process")
			}
		}
	}

	// Exit is idempotent.
	mid.Exit()
}

// TestRevokeChannel covers the non-exit revocation path against the sharded
// table's forward/reverse indexes.
func TestRevokeChannel(t *testing.T) {
	k := bootKernel(t)
	k.SetAuthorization(false)
	k.EnforceChannels(true)

	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })

	if _, err := k.Call(cli, pt.ID, &Msg{Op: "ping", Obj: "o"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("ungranted call: got %v, want ErrDenied", err)
	}
	if err := k.GrantChannel(cli, pt.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "ping", Obj: "o"}); err != nil {
		t.Fatalf("granted call: %v", err)
	}
	k.RevokeChannel(cli, pt.ID)
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "ping", Obj: "o"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("revoked call: got %v, want ErrDenied", err)
	}
	if k.chans.holds(cli.PID, pt.ID) {
		t.Error("revoked grant still in forward index")
	}
	k.chans.revMu.Lock()
	_, ok := k.chans.byPort[pt.ID]
	k.chans.revMu.Unlock()
	if ok {
		t.Error("revoked grant still in reverse index")
	}
}

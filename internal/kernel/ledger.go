package kernel

import (
	"repro/internal/ledger"
)

// Durable ledger attachment: the audit log stays the kernel's in-memory,
// bounded, hash-chained window; an attached ledger receives every decision
// record as it is appended and anchors it durably (Merkle batches over a
// pluggable backend — see package ledger). The ledger's Record carries the
// audit chain hash *after* the record, so a ledger inclusion proof also
// commits to the kernel's own chain at that point.
//
// Lock ordering: the forward runs under the audit log's mutex and acquires
// the ledger's — both are leaves toward the rest of the kernel, and the
// nesting audit.mu → ledger.mu is the one permitted edge between them
// (ledger.Append never calls back into the kernel or the log).

// AttachLedger wires a durable ledger behind the audit log. Decisions
// recorded from now on are forwarded in append order; a fresh ledger
// accepts the current audit sequence as its base, so attaching mid-run is
// sound. Forwards the ledger rejects (sequence mismatch after a partial
// recovery, say) are counted at ledger_forward_errors rather than failing
// the decision path: authorization must not start failing because the
// audit disk did.
func (k *Kernel) AttachLedger(l *ledger.Ledger) {
	k.led.Store(l)
	m := k.metrics
	k.audit.SetSink(func(r AuditRecord) {
		err := l.Append(ledger.Record{
			Seq:       r.Seq,
			Subj:      r.Subj,
			Op:        r.Op,
			Obj:       r.Obj,
			Allow:     r.Allow,
			Reason:    r.Reason,
			ChainHash: r.Hash,
		})
		if err != nil {
			m.add(r.Seq, mLedgerFwdErrs, 1)
		}
	})
}

// DetachLedger stops forwarding and drops the ledger reference. The
// ledger itself is left as-is (flush and close it separately).
func (k *Kernel) DetachLedger() {
	k.audit.SetSink(nil)
	k.led.Store(nil)
}

// Ledger returns the attached ledger, or nil.
func (k *Kernel) Ledger() *ledger.Ledger { return k.led.Load() }

//go:build linux

// Epoll-driven frame source for TCP connections: the native backend of the
// event-driven transport runtime on Linux. One poller goroutine per Node
// (created lazily on the first TCP registration) watches every registered
// socket with one-shot level-triggered epoll; readiness wakes the
// connection's scheduler entry, and the owning worker then pulls complete
// frames without blocking — FIONREAD bounds each read to what the socket
// already holds, and partial frames are reassembled across wakeups in
// per-connection state. Frame bodies are read directly into the shard's
// pooled arena buffers, so the steady-state ingress path allocates nothing.
package kernel

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// tcpPollEvents is the one-shot registration: input readiness plus
// peer-close, re-armed by drained() after the worker empties the socket.
const tcpPollEvents = uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) | uint32(syscall.EPOLLONESHOT)

var errNoRawConn = errors.New("kernel: connection exposes no raw descriptor")

// netPoller multiplexes epoll readiness for all of a node's TCP
// connections onto one goroutine.
type netPoller struct {
	epfd         int
	wakeR, wakeW int

	mu     sync.Mutex
	conns  map[int]*tcpSource
	closed bool

	wg sync.WaitGroup
}

func newNetPoller() (*netPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &netPoller{epfd: epfd, wakeR: pipe[0], wakeW: pipe[1], conns: map[int]*tcpSource{}}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(p.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil, err
	}
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

func (p *netPoller) loop() {
	defer p.wg.Done()
	var events [64]syscall.EpollEvent
	for {
		n, err := syscall.EpollWait(p.epfd, events[:], -1)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			ev := &events[i]
			fd := int(ev.Fd)
			if fd == p.wakeR {
				p.mu.Lock()
				closed := p.closed
				p.mu.Unlock()
				if closed {
					return
				}
				var buf [64]byte
				syscall.Read(p.wakeR, buf[:])
				continue
			}
			p.mu.Lock()
			ts := p.conns[fd]
			p.mu.Unlock()
			if ts == nil {
				continue // deregistered while the event was in flight
			}
			if ev.Events&uint32(syscall.EPOLLERR|syscall.EPOLLHUP|syscall.EPOLLRDHUP) != 0 {
				ts.hup.Store(true)
			}
			ts.notify()
		}
	}
}

func (p *netPoller) add(t *tcpSource) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrTransportClosed
	}
	p.conns[t.fd] = t
	p.mu.Unlock()
	ev := syscall.EpollEvent{Events: tcpPollEvents, Fd: int32(t.fd)}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, t.fd, &ev); err != nil {
		p.mu.Lock()
		delete(p.conns, t.fd)
		p.mu.Unlock()
		return err
	}
	return nil
}

func (p *netPoller) rearm(t *tcpSource) error {
	ev := syscall.EpollEvent{Events: tcpPollEvents, Fd: int32(t.fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, t.fd, &ev)
}

func (p *netPoller) del(t *tcpSource) {
	p.mu.Lock()
	delete(p.conns, t.fd)
	p.mu.Unlock()
	var ev syscall.EpollEvent
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, t.fd, &ev)
}

func (p *netPoller) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	syscall.Write(p.wakeW, []byte{1})
	p.wg.Wait()
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// poller returns (creating on first use) the node's epoll poller.
func (n *Node) poller() (*netPoller, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrTransportClosed
	}
	if n.np == nil {
		np, err := newNetPoller()
		if err != nil {
			return nil, err
		}
		n.np = np
	}
	return n.np, nil
}

// newTCPSource wires a TCP connection into the node's poller.
func (n *Node) newTCPSource(tc *tcpConn) (frameSource, error) {
	sc, ok := tc.c.(syscall.Conn)
	if !ok {
		return nil, errNoRawConn
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return nil, err
	}
	fd := -1
	if err := raw.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return nil, err
	}
	p, err := n.poller()
	if err != nil {
		return nil, err
	}
	return &tcpSource{tc: tc, p: p, raw: raw, fd: fd}, nil
}

// tcpSource is one TCP connection's pull-side ingress. The reassembly
// state (hdr/body) is confined to the scheduler worker that owns the
// connection; hup is written by the poller goroutine.
type tcpSource struct {
	tc     *tcpConn
	p      *netPoller
	raw    syscall.RawConn
	fd     int
	notify func()
	hup    atomic.Bool

	hdr     [4]byte // length-prefix reassembly
	hdrGot  int
	body    []byte // nil until the current frame's header is complete
	bodyGot int
}

func (t *tcpSource) start(notify func()) error {
	t.notify = notify
	return t.p.add(t)
}

// avail reports the bytes currently queued in the socket receive buffer
// (FIONREAD/TIOCINQ), which bounds every read below so tryRecv never
// blocks a worker.
func (t *tcpSource) avail() (int, error) {
	var n int32
	var serr error
	cerr := t.raw.Control(func(fd uintptr) {
		_, _, e := syscall.Syscall(syscall.SYS_IOCTL, fd, syscall.TIOCINQ, uintptr(unsafe.Pointer(&n)))
		if e != 0 {
			serr = e
		}
	})
	if cerr != nil {
		return 0, cerr
	}
	if serr != nil {
		return 0, serr
	}
	return int(n), nil
}

func (t *tcpSource) tryRecv(ar *netArena) ([]byte, error) {
	for {
		avail, err := t.avail()
		if err != nil {
			return nil, err
		}
		if avail == 0 {
			if t.hup.Load() {
				// Readiness reported close/error and the receive queue is
				// drained: the stream is over.
				return nil, io.EOF
			}
			return nil, nil
		}
		if t.body == nil {
			need := 4 - t.hdrGot
			if need > avail {
				need = avail
			}
			rn, err := t.tc.c.Read(t.hdr[t.hdrGot : t.hdrGot+need])
			if err != nil {
				return nil, err
			}
			if rn == 0 {
				return nil, nil
			}
			t.hdrGot += rn
			if t.hdrGot < 4 {
				continue
			}
			fn := binary.LittleEndian.Uint32(t.hdr[:])
			if fn > maxNetFrame {
				return nil, errors.New("kernel: inbound frame exceeds maximum size")
			}
			// The frame body reads straight into the shard's pooled arena.
			t.body = ar.get(int(fn))
			t.bodyGot = 0
			if fn == 0 {
				frame := t.body
				t.body = nil
				t.hdrGot = 0
				return frame, nil
			}
			continue
		}
		need := len(t.body) - t.bodyGot
		if need > avail {
			need = avail
		}
		rn, err := t.tc.c.Read(t.body[t.bodyGot : t.bodyGot+need])
		if err != nil {
			return nil, err
		}
		if rn == 0 {
			return nil, nil
		}
		t.bodyGot += rn
		if t.bodyGot == len(t.body) {
			frame := t.body
			t.body = nil
			t.hdrGot = 0
			return frame, nil
		}
	}
}

func (t *tcpSource) drained() {
	if err := t.p.rearm(t); err != nil {
		// Re-arm failed (poller closing, fd gone): force the worker back in
		// so it observes the failure instead of sleeping forever.
		t.hup.Store(true)
		t.notify()
	}
}

func (t *tcpSource) stop() { t.p.del(t) }

//go:build linux

// Per-shard epoll backend of the event-driven transport runtime: the
// native frame source for TCP connections on Linux.
//
// There is no poller thread. Each scheduler shard owns an epoll instance,
// and when the shard's run queue empties its worker parks on that instance
// (schedShard.pop) — socket readiness resumes the worker directly and the
// woken worker immediately runs the ready connection, where the old
// shared-poller design paid a poller→worker thread handoff (a context
// switch each way) per wakeup. The park itself is a goroutine park, not a
// blocked thread: the epoll descriptor is handed to the Go runtime's
// netpoller (an epoll fd is readable exactly when its interest set has
// pending events), and the worker sleeps in RawRead until it is. Parking a
// raw EpollWait thread instead would pin the worker's P in _Psyscall until
// sysmon retakes it — tens of microseconds per wakeup on a small
// GOMAXPROCS, paid on every hop of a lockstep round trip; the
// netpoller-integrated park releases the P immediately and the wake is an
// ordinary goroutine switch. Sockets are registered one-shot
// (EPOLLONESHOT) and re-armed by drained() after the worker empties them;
// cross-thread notify() on a parked shard writes the shard's eventfd,
// which lives in the same epoll set. If the runtime refuses the epoll fd,
// the shard falls back to parking a thread in blocking EpollWait.
//
// Ownership: the epoll fd and eventfd belong to the shard (closed by
// connSched.close after its worker exits); the fd→source registration
// table is guarded by schedShard.mu; the event and ready buffers are
// confined to the owning worker. FIONREAD bounds each read to what the
// socket already holds so tryRecv never blocks a worker, partial frames
// are reassembled across wakeups in per-connection state, and frame
// bodies are read directly into the shard's pooled arena buffers, so the
// steady-state ingress path allocates nothing.
package kernel

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// tcpPollEvents is the one-shot registration: input readiness plus
// peer-close, re-armed by drained() after the worker empties the socket.
const tcpPollEvents = uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP) | uint32(syscall.EPOLLONESHOT)

var errNoRawConn = errors.New("kernel: connection exposes no raw descriptor")

// eventfd flags (not exported by the syscall package).
const (
	efdNonblock = 0x800
	efdCloexec  = 0x80000
)

// shardPoller is one shard's epoll instance: the descriptors, the
// registration table, and the worker-confined event scratch.
type shardPoller struct {
	epfd int
	efd  int // eventfd: cross-thread wakeup for a parked worker

	// ef wraps epfd so the worker can park on it through the runtime
	// netpoller; rc is its raw-access handle. raw means the runtime
	// rejected the descriptor and the worker parks a thread in blocking
	// EpollWait instead.
	ef  *os.File
	rc  syscall.RawConn
	raw bool

	// conns and nfds are guarded by the owning schedShard's mu.
	conns map[int]*tcpSource
	nfds  int

	// events and ready are confined to the shard's worker goroutine.
	events [64]syscall.EpollEvent
	ready  []*tcpSource
}

func newShardPoller() (*shardPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	efd, _, errno := syscall.Syscall(syscall.SYS_EVENTFD2, 0, efdNonblock|efdCloexec, 0)
	if errno != 0 {
		syscall.Close(epfd)
		return nil, errno
	}
	p := &shardPoller{epfd: epfd, efd: int(efd), conns: map[int]*tcpSource{}}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(p.efd)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.efd, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(p.efd)
		return nil, err
	}
	// Hand the epoll descriptor itself to the runtime netpoller: O_NONBLOCK
	// makes os.NewFile register it, and from then on a parked worker is a
	// parked goroutine (RawRead), not a thread holding its P hostage in a
	// blocking EpollWait.
	syscall.SetNonblock(epfd, true)
	p.ef = os.NewFile(uintptr(epfd), "shard-epoll")
	rc, err := p.ef.SyscallConn()
	if err != nil {
		p.raw = true
		return p, nil
	}
	p.rc = rc
	// Probe whether the runtime actually accepted the descriptor: force one
	// real park with a wakeup already pending. Pollable: the park wakes
	// immediately and the second callback ends the read. Not pollable:
	// waitRead fails and the shard falls back to raw EpollWait parking.
	p.kick()
	calls := 0
	if err := rc.Read(func(uintptr) bool { calls++; return calls > 1 }); err != nil {
		p.raw = true
	}
	var buf [8]byte
	syscall.Read(p.efd, buf[:]) // drain the probe kick
	return p, nil
}

// kick resumes a worker parked in EpollWait. The eventfd add is cheap,
// async-safe, and coalesces: concurrent kicks cost one wakeup.
func (p *shardPoller) kick() {
	var one [8]byte
	binary.NativeEndian.PutUint64(one[:], 1)
	for {
		_, err := syscall.Write(p.efd, one[:])
		if err != syscall.EINTR {
			return
		}
	}
}

// close releases the descriptors. Only called after the shard's worker has
// exited and every source is deregistered.
func (p *shardPoller) close() {
	if p.ef != nil {
		p.ef.Close() // closes epfd and deregisters it from the netpoller
	} else {
		syscall.Close(p.epfd)
	}
	syscall.Close(p.efd)
}

// pollEvents collects readiness from the shard's poller — blocking (the
// worker parks until readiness or a kick) or nonblocking (the pre-dequeue
// starvation guard in pop). The blocking park is a goroutine park: RawRead
// sleeps in the runtime netpoller until the epoll set has events, then
// pollOnce dispatches them. The worker parks only after a pollOnce pass
// found the set empty, so the netpoller's edge-triggered registration of
// the epfd cannot miss a pending event.
func (s *schedShard) pollEvents(block bool) {
	if !block {
		s.pollOnce()
		return
	}
	if s.ep.raw {
		s.pollWaitRaw()
		return
	}
	found := false
	err := s.ep.rc.Read(func(uintptr) bool {
		found = s.pollOnce()
		return found
	})
	if err != nil || !found {
		// The file is closing at teardown (or the poll failed): un-park and
		// let the pop loop observe the shard's closed flag.
		s.mu.Lock()
		s.parked = false
		s.mu.Unlock()
		return
	}
	s.m.add(s.idx, mNetPollWakeups, 1)
}

// pollOnce runs one nonblocking EpollWait pass and dispatches what it
// finds, reporting whether anything (socket readiness or an eventfd kick)
// was there. Ready sources are collected under mu (the registration
// table's lock) and notified after it is released, because notify()
// re-enters the shard through push.
func (s *schedShard) pollOnce() bool {
	ep := s.ep
	n, err := syscall.EpollWait(ep.epfd, ep.events[:], 0)
	if err != nil {
		// EINTR or a dying epfd: report found so the caller re-checks the
		// queue and closed flag instead of parking on a set it cannot read.
		s.mu.Lock()
		s.parked = false
		s.mu.Unlock()
		return true
	}
	if n == 0 {
		return false
	}
	s.mu.Lock()
	s.parked = false
	ready := ep.ready[:0]
	kicked := false
	for i := 0; i < n; i++ {
		ev := &ep.events[i]
		fd := int(ev.Fd)
		if fd == ep.efd {
			kicked = true
			continue
		}
		ts := ep.conns[fd]
		if ts == nil {
			continue // deregistered while the event was in flight
		}
		if ev.Events&uint32(syscall.EPOLLERR|syscall.EPOLLHUP|syscall.EPOLLRDHUP) != 0 {
			ts.hup.Store(true)
		}
		ready = append(ready, ts)
	}
	s.mu.Unlock()
	if kicked {
		// Drain the counter so a level-triggered eventfd does not re-fire.
		var buf [8]byte
		syscall.Read(ep.efd, buf[:])
	}
	for i, ts := range ready {
		ts.sc.notify()
		ready[i] = nil
	}
	ep.ready = ready[:0]
	return true
}

// pollWaitRaw is the fallback park for a poller the runtime netpoller
// rejected: block the worker's thread in EpollWait and dispatch the events
// it returns. Costs a hostage P for the duration of the block (see the
// package comment), which is why it is only the fallback.
func (s *schedShard) pollWaitRaw() {
	ep := s.ep
	n, err := syscall.EpollWait(ep.epfd, ep.events[:], -1)
	if err != nil {
		s.mu.Lock()
		s.parked = false
		s.mu.Unlock()
		return // EINTR or a dying epfd: the pop loop re-parks or exits
	}
	s.mu.Lock()
	s.parked = false
	ready := ep.ready[:0]
	kicked := false
	for i := 0; i < n; i++ {
		ev := &ep.events[i]
		fd := int(ev.Fd)
		if fd == ep.efd {
			kicked = true
			continue
		}
		ts := ep.conns[fd]
		if ts == nil {
			continue
		}
		if ev.Events&uint32(syscall.EPOLLERR|syscall.EPOLLHUP|syscall.EPOLLRDHUP) != 0 {
			ts.hup.Store(true)
		}
		ready = append(ready, ts)
	}
	s.mu.Unlock()
	if kicked {
		var buf [8]byte
		syscall.Read(ep.efd, buf[:])
	}
	if n > 0 {
		s.m.add(s.idx, mNetPollWakeups, 1)
	}
	for i, ts := range ready {
		ts.sc.notify()
		ready[i] = nil
	}
	ep.ready = ready[:0]
}

// newTCPSource extracts the raw descriptor; registration with a shard's
// poller happens in start, once the scheduler has picked the shard.
func newTCPSource(tc *tcpConn) (frameSource, error) {
	sysc, ok := tc.c.(syscall.Conn)
	if !ok {
		return nil, errNoRawConn
	}
	raw, err := sysc.SyscallConn()
	if err != nil {
		return nil, err
	}
	fd := -1
	if err := raw.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return nil, err
	}
	return &tcpSource{tc: tc, raw: raw, fd: fd}, nil
}

// tcpSource is one TCP connection's pull-side ingress. The reassembly
// state (hdr/body) is confined to the scheduler worker that owns the
// connection; hup may be written by any worker observing readiness.
type tcpSource struct {
	tc  *tcpConn
	raw syscall.RawConn
	fd  int
	sc  *schedConn
	hup atomic.Bool

	hdr     [4]byte // length-prefix reassembly
	hdrGot  int
	body    []byte // nil until the current frame's header is complete
	bodyGot int
}

func (t *tcpSource) start(sc *schedConn) error {
	t.sc = sc
	s := sc.shard
	s.mu.Lock()
	if s.closed || s.ep == nil {
		s.mu.Unlock()
		return ErrTransportClosed
	}
	s.ep.conns[t.fd] = t
	s.ep.nfds++
	epfd := s.ep.epfd
	s.mu.Unlock()
	ev := syscall.EpollEvent{Events: tcpPollEvents, Fd: int32(t.fd)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, t.fd, &ev); err != nil {
		s.mu.Lock()
		delete(s.ep.conns, t.fd)
		s.ep.nfds--
		s.mu.Unlock()
		return err
	}
	return nil
}

// avail reports the bytes currently queued in the socket receive buffer
// (FIONREAD/TIOCINQ), which bounds every read below so tryRecv never
// blocks a worker.
func (t *tcpSource) avail() (int, error) {
	var n int32
	var serr error
	cerr := t.raw.Control(func(fd uintptr) {
		_, _, e := syscall.Syscall(syscall.SYS_IOCTL, fd, syscall.TIOCINQ, uintptr(unsafe.Pointer(&n)))
		if e != 0 {
			serr = e
		}
	})
	if cerr != nil {
		return 0, cerr
	}
	if serr != nil {
		return 0, serr
	}
	return int(n), nil
}

func (t *tcpSource) tryRecv(ar *netArena) ([]byte, error) {
	for {
		avail, err := t.avail()
		if err != nil {
			return nil, err
		}
		if avail == 0 {
			if t.hup.Load() {
				// Readiness reported close/error and the receive queue is
				// drained: the stream is over.
				return nil, io.EOF
			}
			return nil, nil
		}
		if t.body == nil {
			need := 4 - t.hdrGot
			if need > avail {
				need = avail
			}
			rn, err := t.tc.c.Read(t.hdr[t.hdrGot : t.hdrGot+need])
			if err != nil {
				return nil, err
			}
			if rn == 0 {
				return nil, nil
			}
			t.hdrGot += rn
			if t.hdrGot < 4 {
				continue
			}
			fn := binary.LittleEndian.Uint32(t.hdr[:])
			if fn > maxNetFrame {
				return nil, errors.New("kernel: inbound frame exceeds maximum size")
			}
			// The frame body reads straight into the shard's pooled arena.
			t.body = ar.get(int(fn))
			t.bodyGot = 0
			if fn == 0 {
				frame := t.body
				t.body = nil
				t.hdrGot = 0
				return frame, nil
			}
			continue
		}
		need := len(t.body) - t.bodyGot
		if need > avail {
			need = avail
		}
		rn, err := t.tc.c.Read(t.body[t.bodyGot : t.bodyGot+need])
		if err != nil {
			return nil, err
		}
		if rn == 0 {
			return nil, nil
		}
		t.bodyGot += rn
		if t.bodyGot == len(t.body) {
			frame := t.body
			t.body = nil
			t.hdrGot = 0
			return frame, nil
		}
	}
}

// drained re-arms the one-shot registration after the worker emptied the
// socket.
func (t *tcpSource) drained() {
	s := t.sc.shard
	s.mu.Lock()
	ep := s.ep
	registered := ep != nil && ep.conns[t.fd] == t
	s.mu.Unlock()
	if !registered {
		return
	}
	ev := syscall.EpollEvent{Events: tcpPollEvents, Fd: int32(t.fd)}
	if err := syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_MOD, t.fd, &ev); err != nil {
		// Re-arm failed (fd gone, shard closing): force the worker back in
		// so it observes the failure instead of sleeping forever.
		t.hup.Store(true)
		t.sc.notify()
	}
}

func (t *tcpSource) stop() {
	s := t.sc.shard
	s.mu.Lock()
	ep := s.ep
	if ep != nil && ep.conns[t.fd] == t {
		delete(ep.conns, t.fd)
		ep.nfds--
	} else {
		ep = nil
	}
	s.mu.Unlock()
	if ep != nil {
		var ev syscall.EpollEvent
		syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_DEL, t.fd, &ev)
	}
}

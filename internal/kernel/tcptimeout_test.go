package kernel_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/kernel"
)

// silentListener accepts TCP connections and never sends a byte — the
// failure mode of a wedged or malicious peer that completes the TCP
// handshake but not the attestation one.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP loopback available: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, read nothing, send nothing.
			defer c.Close()
		}
	}()
	return l
}

// TestTCPHandshakeTimeout: dialing a listener that accepts but never
// responds must fail with ETIMEDOUT within the configured handshake bound
// instead of wedging Dial (and Session.Connect above it) forever.
func TestTCPHandshakeTimeout(t *testing.T) {
	l := silentListener(t)
	front := bootNode(t)
	n := kernel.NewNode(front)
	defer n.Close()

	tr := kernel.TCPTransport{HandshakeTimeout: 150 * time.Millisecond}
	start := time.Now()
	_, err := n.Dial(tr, l.Addr().String())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Dial against a silent listener succeeded")
	}
	if !errors.Is(err, kernel.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if kernel.ErrnoOf(err) != kernel.ETIMEDOUT {
		t.Fatalf("errno %v, want ETIMEDOUT", kernel.ErrnoOf(err))
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, bound was 150ms", elapsed)
	}
	// The timeout is visible on the metrics plane.
	if got := front.Metrics().NetTimeouts; got == 0 {
		t.Fatal("net_timeouts not counted")
	}
}

// TestTCPServerHandshakeTimeout: the serving side reaps a client that
// connects and never speaks, instead of pinning the serve goroutine on a
// read forever.
func TestTCPServerHandshakeTimeout(t *testing.T) {
	store := bootNode(t)
	n := kernel.NewNode(store)
	defer n.Close()
	tr := kernel.TCPTransport{HandshakeTimeout: 150 * time.Millisecond}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP loopback available: %v", err)
	}
	n.Serve(l)

	c, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The server must classify and count the abandoned handshake.
	deadline := time.Now().Add(5 * time.Second)
	for store.Metrics().NetTimeouts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never timed out the silent client")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the connection is torn down: the socket reaches EOF.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server kept the silent connection open")
	}
}

// TestTCPDialTimeoutConfig: the dial bound is configurable and the default
// resolves to a sane nonzero value (we cannot portably force a dial
// timeout, so this pins the classification plumbing instead: a refused
// connection is NOT a timeout).
func TestTCPDialTimeoutConfig(t *testing.T) {
	// Grab a port that is then closed again: connecting to it refuses.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP loopback available: %v", err)
	}
	addr := l.Addr().String()
	l.Close()

	tr := kernel.TCPTransport{DialTimeout: time.Second}
	_, err = tr.Dial(addr)
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if errors.Is(err, kernel.ErrTimeout) {
		t.Fatalf("connection refused misclassified as timeout: %v", err)
	}
}

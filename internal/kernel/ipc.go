package kernel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nal"
)

// Msg is an IPC request: an operation on an object with opaque arguments.
type Msg struct {
	Op   string
	Obj  string
	Args [][]byte
}

// Handler implements the server side of a port.
type Handler func(from *Process, m *Msg) ([]byte, error)

// Port is an IPC endpoint authoritatively bound to its owning process; the
// kernel produces the binding label "kernel says IPC.x speaksfor owner"
// (§2.4), which is what makes authority answers attributable.
type Port struct {
	ID    int
	Owner *Process
	h     Handler
}

// Prin returns the port's principal IPC.<id> as a subprincipal of the
// kernel, matching the kernel-issued binding label.
func (pt *Port) Prin(k *Kernel) nal.Principal {
	return nal.SubChain(k.Prin, "ipc", fmt.Sprint(pt.ID))
}

// CreatePort binds a new IPC port to the calling process and deposits the
// kernel's binding label in the owner's labelstore.
func (k *Kernel) CreatePort(owner *Process, h Handler) (*Port, error) {
	if owner == nil || h == nil {
		return nil, ErrBadArgument
	}
	k.mu.Lock()
	id := k.nextPort
	k.nextPort++
	pt := &Port{ID: id, Owner: owner, h: h}
	k.ports[id] = pt
	k.mu.Unlock()

	// kernel says IPC.id speaksfor /proc/ipd/pid
	binding := nal.Says{P: k.Prin, F: nal.SpeaksFor{A: pt.Prin(k), B: owner.Prin}}
	owner.Labels.insertSystem(binding)
	return pt, nil
}

// FindPort resolves a port id.
func (k *Kernel) FindPort(id int) (*Port, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	pt, ok := k.ports[id]
	return pt, ok
}

// Call performs a synchronous IPC from a process to a port: authorization
// (decision cache, then guard upcall), the interposition chain, parameter
// marshaling when interpositioning is enabled, and finally the handler.
func (k *Kernel) Call(from *Process, portID int, m *Msg) ([]byte, error) {
	k.mu.Lock()
	pt, ok := k.ports[portID]
	authz := k.authz
	interp := k.interp
	var chain []monEntry
	if interp {
		chain = k.redir[portID]
	}
	k.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchPort
	}
	if !k.holdsChannel(from, pt) {
		return nil, fmt.Errorf("%w: no channel to port %d", ErrDenied, portID)
	}

	if authz {
		if err := k.authorize(from, m.Op, m.Obj); err != nil {
			return nil, err
		}
	}

	if interp {
		// Parameter marshaling: interposition requires the kernel to
		// materialize the argument buffer at the protection boundary so
		// monitors can inspect and rewrite it (§5.1 measures this cost).
		wire := marshalMsg(m)
		for _, mon := range chain {
			verdict := mon.OnCall(from, pt, m, wire)
			switch verdict {
			case VerdictBlock:
				return nil, fmt.Errorf("%w: blocked by reference monitor", ErrDenied)
			case VerdictAllow:
			}
		}
		out, err := pt.h(from, m)
		for i := len(chain) - 1; i >= 0; i-- {
			out = chain[i].OnReturn(from, pt, m, out)
		}
		return out, err
	}
	return pt.h(from, m)
}

// syscall routes a kernel-implemented system call through the same
// authorization and interposition machinery as user IPC. Kernel services
// listen conceptually on port 0.
func (k *Kernel) syscall(from *Process, op, obj string, args [][]byte, fn func() error) error {
	k.mu.Lock()
	authz := k.authz
	interp := k.interp
	var chain []monEntry
	if interp {
		chain = k.redir[0]
	}
	k.mu.Unlock()

	if authz {
		if err := k.authorize(from, op, obj); err != nil {
			return err
		}
	}
	if interp {
		m := &Msg{Op: op, Obj: obj, Args: args}
		wire := marshalMsg(m)
		for _, mon := range chain {
			if mon.OnCall(from, nil, m, wire) == VerdictBlock {
				return fmt.Errorf("%w: blocked by reference monitor", ErrDenied)
			}
		}
		err := fn()
		for i := len(chain) - 1; i >= 0; i-- {
			chain[i].OnReturn(from, nil, m, nil)
		}
		return err
	}
	return fn()
}

// marshalMsg serializes a message the way a kernel-mode switch with
// interpositioning must: length-prefixed op, obj, and argument buffers.
func marshalMsg(m *Msg) []byte {
	n := 8 + len(m.Op) + len(m.Obj)
	for _, a := range m.Args {
		n += 4 + len(a)
	}
	buf := make([]byte, 0, n)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(m.Op)))
	buf = append(buf, l[:]...)
	buf = append(buf, m.Op...)
	binary.LittleEndian.PutUint32(l[:], uint32(len(m.Obj)))
	buf = append(buf, l[:]...)
	buf = append(buf, m.Obj...)
	for _, a := range m.Args {
		binary.LittleEndian.PutUint32(l[:], uint32(len(a)))
		buf = append(buf, l[:]...)
		buf = append(buf, a...)
	}
	return buf
}

// DecodeWire decodes a marshaled message; user-level reference monitors use
// it to inspect the copies they receive across the protection boundary.
func DecodeWire(buf []byte) (*Msg, error) { return unmarshalMsg(buf) }

// MarshalMsgForBench exposes message marshaling to the ablation benchmarks.
func MarshalMsgForBench(m *Msg) []byte { return marshalMsg(m) }

// unmarshalMsg decodes a marshaled message; reference monitors use it to
// inspect rewritten argument buffers.
func unmarshalMsg(buf []byte) (*Msg, error) {
	m := &Msg{}
	next := func() ([]byte, error) {
		if len(buf) < 4 {
			return nil, fmt.Errorf("kernel: truncated message")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return nil, fmt.Errorf("kernel: truncated message")
		}
		out := buf[:n]
		buf = buf[n:]
		return out, nil
	}
	op, err := next()
	if err != nil {
		return nil, err
	}
	m.Op = string(op)
	obj, err := next()
	if err != nil {
		return nil, err
	}
	m.Obj = string(obj)
	for len(buf) > 0 {
		a, err := next()
		if err != nil {
			return nil, err
		}
		m.Args = append(m.Args, a)
	}
	return m, nil
}

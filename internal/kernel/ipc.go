package kernel

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/nal"
)

// Msg is an IPC request: an operation on an object with opaque arguments.
type Msg struct {
	Op   string
	Obj  string
	Args [][]byte
}

// Caller identifies the process a dispatch runs on behalf of, plus the
// target port. It is the value the ABI hands to handlers and reference
// monitors in place of raw kernel object pointers: everything a user-level
// server may learn about its peer crosses the boundary here, and nothing
// else does.
type Caller struct {
	// PID is the calling process id.
	PID int
	// Prin is the calling process's principal (kernel.ipd.<pid>).
	Prin nal.Principal
	// Port is the target port id; 0 is the kernel system-call channel.
	Port int
}

// Handler implements the server side of a port. The *Msg (and any wire
// buffer derived from it) is valid only for the duration of the call;
// handlers that retain arguments must copy them.
type Handler func(from Caller, m *Msg) ([]byte, error)

// Port is an IPC endpoint authoritatively bound to its owning process; the
// kernel produces the binding label "kernel says IPC.x speaksfor owner"
// (§2.4), which is what makes authority answers attributable.
type Port struct {
	ID    int
	Owner *Process
	h     Handler
	// chain is the port's interposition chain, copy-on-write so the
	// dispatch pipeline reads it with one atomic load.
	chain monChain
	// dead is set (under the registry owner lock) when the port leaves the
	// registry; capability handles resolve ports without a registry probe,
	// so this flag is what keeps a cached *Port from outliving teardown.
	dead atomic.Bool
}

// Prin returns the port's principal IPC.<id> as a subprincipal of the
// kernel, matching the kernel-issued binding label.
func (pt *Port) Prin(k *Kernel) nal.Principal {
	return nal.SubChain(k.Prin, "ipc", fmt.Sprint(pt.ID))
}

// CreatePort binds a new IPC port to the calling process and deposits the
// kernel's binding label in the owner's labelstore.
func (k *Kernel) CreatePort(owner *Process, h Handler) (*Port, error) {
	if owner == nil || h == nil {
		return nil, abiErr(EINVAL, "createport", "nil owner or handler")
	}
	pt := k.ports.create(owner, h)
	if owner.exited.Load() {
		// The owner raced Exit past the registration: whichever teardown
		// Exit's index walk missed is unwound here so no port outlives its
		// owner.
		k.ports.remove(pt.ID)
		k.chans.dropPort(pt.ID)
		return nil, abiErr(ESRCH, "createport", "owner exited")
	}

	// kernel says IPC.id speaksfor /proc/ipd/pid
	binding := nal.Says{P: k.Prin, F: nal.SpeaksFor{A: pt.Prin(k), B: owner.Prin}}
	owner.Labels.insertSystem(binding)
	return pt, nil
}

// FindPort resolves a port id.
func (k *Kernel) FindPort(id int) (*Port, bool) {
	return k.ports.find(id)
}

// Call performs a synchronous IPC from a process to a port through the
// unified dispatch pipeline: channel check, authorization (decision cache,
// then guard upcall), the interposition chain with parameter marshaling, and
// finally the handler.
func (k *Kernel) Call(from *Process, portID int, m *Msg) ([]byte, error) {
	pt, ok := k.ports.find(portID)
	if !ok {
		return nil, ErrNoSuchPort
	}
	return k.dispatch(from, pt, m, pt.h)
}

// syscall routes a kernel-implemented system call through the same dispatch
// pipeline as user IPC. Kernel services listen conceptually on port 0, the
// nil-port target of dispatch.
func (k *Kernel) syscall(from *Process, op, obj string, args [][]byte, fn func() error) error {
	// Degenerate-pipeline fast path: with interposition off there is no
	// protection-boundary copy to materialize, so run the only remaining
	// stage (authorization) directly and keep the Table 1 "bare" and
	// Figure 4 "system call" baselines allocation-free. The moment any
	// boundary machinery is on, the shared dispatch pipeline below runs.
	if flags := k.flags.Load(); flags&flagInterp == 0 {
		if flags&flagAuthz != 0 {
			if err := k.authorize(from, op, obj); err != nil {
				return err
			}
		}
		return fn()
	}
	m := &Msg{Op: op, Obj: obj, Args: args}
	_, err := k.dispatch(from, nil, m, func(Caller, *Msg) ([]byte, error) {
		return nil, fn()
	})
	return err
}

// appendMsgWire serializes a message into buf the way a kernel-mode switch
// with interpositioning must: length-prefixed op, obj, and argument
// buffers. The batch path amortizes allocation by appending every message
// of a submission into one arena.
func appendMsgWire(buf []byte, m *Msg) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(m.Op)))
	buf = append(buf, l[:]...)
	buf = append(buf, m.Op...)
	binary.LittleEndian.PutUint32(l[:], uint32(len(m.Obj)))
	buf = append(buf, l[:]...)
	buf = append(buf, m.Obj...)
	for _, a := range m.Args {
		binary.LittleEndian.PutUint32(l[:], uint32(len(a)))
		buf = append(buf, l[:]...)
		buf = append(buf, a...)
	}
	return buf
}

// msgWireSize is the exact wire length of a message.
func msgWireSize(m *Msg) int {
	n := 8 + len(m.Op) + len(m.Obj)
	for _, a := range m.Args {
		n += 4 + len(a)
	}
	return n
}

// marshalMsg serializes one message into a fresh buffer.
func marshalMsg(m *Msg) []byte {
	return appendMsgWire(make([]byte, 0, msgWireSize(m)), m)
}

// DecodeWire decodes a marshaled message; user-level reference monitors use
// it to inspect the copies they receive across the protection boundary.
func DecodeWire(buf []byte) (*Msg, error) { return unmarshalMsg(buf) }

// MarshalMsgForBench exposes message marshaling to the ablation benchmarks.
func MarshalMsgForBench(m *Msg) []byte { return marshalMsg(m) }

// unmarshalMsg decodes a marshaled message; reference monitors use it to
// inspect rewritten argument buffers. Malformed input is an EINVAL-classed
// ABI error (this is the DecodeWire surface monitors see).
//
//nexus:errno
func unmarshalMsg(buf []byte) (*Msg, error) {
	m := &Msg{}
	next := func() ([]byte, error) {
		if len(buf) < 4 {
			return nil, abiErr(EINVAL, "decode-msg", "truncated message header")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return nil, abiErr(EINVAL, "decode-msg", "truncated message body")
		}
		out := buf[:n]
		buf = buf[n:]
		return out, nil
	}
	op, err := next()
	if err != nil {
		return nil, err
	}
	m.Op = string(op)
	obj, err := next()
	if err != nil {
		return nil, err
	}
	m.Obj = string(obj)
	for len(buf) > 0 {
		a, err := next()
		if err != nil {
			return nil, err
		}
		m.Args = append(m.Args, a)
	}
	return m, nil
}

package kernel

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/nal"
	"repro/internal/tpm"
)

// nkEndorsement produces (and caches) the TPM's endorsement of the Nexus
// key: "key:EK says key:NK speaksfor key:EK.nexus", signed by the EK. The
// PCR binding that protects NK makes this statement sound: only the genuine
// kernel can unseal NK's private half (§2.4, §3.4).
func (k *Kernel) nkEndorsement() (*cert.Certificate, error) {
	k.nkMu.Lock()
	if k.nkCert != nil {
		c := k.nkCert
		k.nkMu.Unlock()
		return c, nil
	}
	k.nkMu.Unlock()

	ekFP := k.TPM.EKFingerprint()
	formula := fmt.Sprintf("key:%s speaksfor key:%s.nexus", k.nkFP, ekFP)
	// The TPM signs with the EK. We reuse the cert container by building
	// the statement and having the TPM produce the signature over its TBS
	// bytes; cert.Sign needs a private key, so the endorsement is issued
	// through the TPM's Sign primitive.
	c, err := signWithTPM(k.TPM, cert.Statement{
		Formula: formula,
		Serial:  1,
		Issued:  time.Now(),
	})
	if err != nil {
		return nil, err
	}
	k.nkMu.Lock()
	k.nkCert = c
	k.nkMu.Unlock()
	return c, nil
}

// signWithTPM signs a certificate statement with the TPM's endorsement key,
// which never leaves the chip: the TBS bytes are hashed and handed to the
// TPM's signing primitive.
func signWithTPM(t *tpm.TPM, stmt cert.Statement) (*cert.Certificate, error) {
	return cert.SignExternal(stmt, t.EKPublic(), t.Sign)
}

// VerifyExternalLabels validates an externalized label chain against a
// trusted TPM endorsement key fingerprint and returns the two NAL labels it
// conveys:
//
//	key:EK says key:NK speaksfor key:EK.nexus
//	key:NK says <speaker> says S
//
// A verifier that trusts the platform (key:EK) can then derive
// "key:EK.nexus says speaker says S" and onward by subprincipal reasoning.
func VerifyExternalLabels(ext *ExternalLabel, trustedEK string) ([]nal.Formula, error) {
	nkLabel, err := ext.NKCert.ToLabel()
	if err != nil {
		return nil, fmt.Errorf("kernel: NK endorsement invalid: %w", err)
	}
	says, ok := nkLabel.(nal.Says)
	if !ok {
		return nil, fmt.Errorf("kernel: NK endorsement malformed")
	}
	if !says.P.EqualPrin(nal.Key(trustedEK)) {
		return nil, fmt.Errorf("kernel: NK endorsement signed by %s, not trusted EK", says.P)
	}
	labLabel, err := ext.LabelCert.ToLabel()
	if err != nil {
		return nil, fmt.Errorf("kernel: label certificate invalid: %w", err)
	}
	// The label certificate must be signed by the NK named in the
	// endorsement.
	sf, ok := says.F.(nal.SpeaksFor)
	if !ok {
		return nil, fmt.Errorf("kernel: NK endorsement malformed")
	}
	lab, ok := labLabel.(nal.Says)
	if !ok || !lab.P.EqualPrin(sf.A) {
		return nil, fmt.Errorf("kernel: label signed by %v, endorsement names %v", labLabel, sf.A)
	}
	return []nal.Formula{nkLabel, labLabel}, nil
}

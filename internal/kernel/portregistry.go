package kernel

import (
	"sync"
	"sync/atomic"
)

// portRegistry is the kernel's IPC-port registry: a lock-striped id → *Port
// map, an atomic id allocator, the per-port interposition chains (owned here
// as copy-on-write slices so the dispatch pipeline reads a chain with one
// atomic load), and a per-owner index so process teardown drops a process's
// ports without scanning the whole registry.
//
// Invariants:
//   - a port id is present in a shard iff it is present in byOwner under its
//     owner's pid (both updates happen under ownMu, which is the authority
//     for membership);
//   - the chain of a removed port is never mutated again (interpose binds
//     under ownMu, the same lock removal holds, and removal is permanent);
//   - chain mutation serializes on the chain's own mutex; readers never
//     block.
//
// Lock ordering: ownMu → shard.mu. Chain mutexes are leaves.
type portRegistry struct {
	shards  [portShards]portShard
	nextID  atomic.Int64
	nextMon atomic.Int64

	// sysChain is the interposition chain of the kernel system-call
	// channel, conventionally port 0 — it has no Port object.
	sysChain monChain

	ownMu   sync.Mutex
	byOwner map[int]map[int]bool // pid → owned port ids
}

const portShards = 16

type portShard struct {
	mu sync.RWMutex
	m  map[int]*Port
}

func newPortRegistry() *portRegistry {
	r := &portRegistry{byOwner: map[int]map[int]bool{}}
	for i := range r.shards {
		r.shards[i].m = map[int]*Port{}
	}
	return r
}

func (r *portRegistry) shard(id int) *portShard {
	return &r.shards[uint(id)&(portShards-1)]
}

// create allocates an id, registers the port, and indexes it by owner.
func (r *portRegistry) create(owner *Process, h Handler) *Port {
	id := int(r.nextID.Add(1))
	pt := &Port{ID: id, Owner: owner, h: h}
	r.ownMu.Lock()
	if r.byOwner[owner.PID] == nil {
		r.byOwner[owner.PID] = map[int]bool{}
	}
	r.byOwner[owner.PID][id] = true
	s := r.shard(id)
	s.mu.Lock()
	s.m[id] = pt
	s.mu.Unlock()
	r.ownMu.Unlock()
	return pt
}

func (r *portRegistry) find(id int) (*Port, bool) {
	s := r.shard(id)
	s.mu.RLock()
	pt, ok := s.m[id]
	s.mu.RUnlock()
	return pt, ok
}

// remove unregisters one port, returning whether it was present. The dead
// flag is published under ownMu so capability handles holding the *Port
// observe teardown without a registry probe.
func (r *portRegistry) remove(id int) bool {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	s := r.shard(id)
	s.mu.Lock()
	pt, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	if ok {
		pt.dead.Store(true)
		delete(r.byOwner[pt.Owner.PID], id)
		if len(r.byOwner[pt.Owner.PID]) == 0 {
			delete(r.byOwner, pt.Owner.PID)
		}
	}
	return ok
}

// dropOwner removes every port owned by pid via the per-owner index and
// returns their ids; Exit uses it instead of scanning all ports.
func (r *portRegistry) dropOwner(pid int) []int {
	r.ownMu.Lock()
	owned := r.byOwner[pid]
	delete(r.byOwner, pid)
	ids := make([]int, 0, len(owned))
	for id := range owned {
		s := r.shard(id)
		s.mu.Lock()
		if pt, ok := s.m[id]; ok {
			pt.dead.Store(true)
		}
		delete(s.m, id)
		s.mu.Unlock()
		ids = append(ids, id)
	}
	r.ownMu.Unlock()
	return ids
}

// interpose installs a monitor on a live port's chain. Membership check and
// chain publish happen under ownMu — the lock remove/dropOwner hold while
// deleting — so the bind linearizes against port teardown: it either lands
// while the port is live or fails, never mutating a dead port's chain.
func (r *portRegistry) interpose(portID int, e monEntry) bool {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	pt, ok := r.find(portID)
	if !ok {
		return false
	}
	pt.chain.add(e)
	return true
}

// deinterpose removes a monitor from a live port's chain under ownMu,
// mirroring interpose: (found, live). A removed port's chain is never
// mutated, preserving the registry invariant against the teardown sweep.
func (r *portRegistry) deinterpose(portID, handle int) (found, live bool) {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	pt, ok := r.find(portID)
	if !ok {
		return false, false
	}
	return pt.chain.removeByHandle(handle), true
}

func (r *portRegistry) len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// monChain is a copy-on-write interposition chain. Readers (the dispatch
// pipeline, on every call when interpositioning is enabled) take one atomic
// load; writers (Interpose/Deinterpose, control plane) clone the slice under
// the chain mutex and publish the copy. A published slice is immutable.
type monChain struct {
	mu sync.Mutex
	c  atomic.Pointer[[]monEntry]
}

func (mc *monChain) load() []monEntry {
	if p := mc.c.Load(); p != nil {
		return *p
	}
	return nil
}

func (mc *monChain) add(e monEntry) {
	mc.mu.Lock()
	old := mc.load()
	chain := make([]monEntry, 0, len(old)+1)
	chain = append(append(chain, old...), e)
	mc.c.Store(&chain)
	mc.mu.Unlock()
}

// removeByHandle unbinds the monitor registered under handle, reporting
// whether it was found.
func (mc *monChain) removeByHandle(handle int) bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	old := mc.load()
	for i, e := range old {
		if e.id == handle {
			chain := make([]monEntry, 0, len(old)-1)
			chain = append(append(chain, old[:i]...), old[i+1:]...)
			mc.c.Store(&chain)
			return true
		}
	}
	return false
}

func (mc *monChain) len() int { return len(mc.load()) }

// Egress coalescing: per-connection small-write combining.
//
// A scheduling quantum that produces several outbound frames — pipelined
// responses, a credit grant, nested requests — used to pay one writev per
// frame. The egress combiner stages them and flushes once, at quantum end
// (schedConn.run) or when the staging buffer crosses its high-water mark.
// There is no timer: latency is bounded by the quantum the frames were
// produced in, not a Nagle delay.
//
// Two modes, chosen by the connection's capabilities:
//
//   - contiguous (rawWriter conns, i.e. TCP): frames are staged
//     back-to-back in one buffer, each behind its 4-byte length prefix,
//     and the whole run goes out in a single write — N frames, one
//     syscall, one packet train;
//   - frame (loopback and shims): frames are staged in pooled buffers and
//     handed to Conn.Send one by one at flush, preserving the interface's
//     per-frame ownership transfer.
//
// Buffers come from framePool, a bounded global free list shared with the
// ingress arenas (netArena overflows into it and refills from it), so the
// warm request/response cycle circulates a fixed working set instead of
// allocating. A mutex'd slice beats sync.Pool here: Put of a []byte boxes
// the slice header onto the heap, which would put one allocation back on
// every recycle of the path this pool exists to flatten.
package kernel

import (
	"encoding/binary"
	"sync"
)

// rawWriter is the optional Conn extension the combiner uses to write a
// run of already-length-prefixed frames in one syscall (tcpConn has it).
type rawWriter interface {
	SendRaw(p []byte) error
}

// bufPool is a bounded free list of frame buffers.
type bufPool struct {
	mu   sync.Mutex
	bufs [][]byte
}

// framePool is the global buffer free list: egress staging, outbound
// frame assembly, and ingress arena overflow all share it.
var framePool bufPool

const (
	// framePoolMax bounds the pooled buffer count; framePoolMinCap is the
	// smallest buffer worth pooling (and the minimum allocation size, so a
	// small request's buffer is reusable by a larger one).
	framePoolMax    = 64
	framePoolMinCap = 512
)

// getFrameBuf returns a buffer of length n from the pool, allocating on a
// miss. //nexus:alloc-ok: the make runs only when the pool has no buffer
// of sufficient capacity; the warm path is a free-list hit.
func getFrameBuf(n int) []byte {
	framePool.mu.Lock()
	for i := len(framePool.bufs) - 1; i >= 0; i-- {
		if cap(framePool.bufs[i]) >= n {
			b := framePool.bufs[i]
			last := len(framePool.bufs) - 1
			framePool.bufs[i] = framePool.bufs[last]
			framePool.bufs[last] = nil
			framePool.bufs = framePool.bufs[:last]
			framePool.mu.Unlock()
			return b[:n]
		}
	}
	framePool.mu.Unlock()
	//nexus:coldpath
	if n < framePoolMinCap {
		return make([]byte, n, framePoolMinCap)
	}
	return make([]byte, n)
}

// putFrameBuf recycles a buffer; out-of-bounds capacities and pool
// overflow are dropped for the GC.
func putFrameBuf(b []byte) {
	if cap(b) < framePoolMinCap || cap(b) > arenaKeepCap {
		return
	}
	framePool.mu.Lock()
	if len(framePool.bufs) < framePoolMax {
		framePool.bufs = append(framePool.bufs, b[:0])
	}
	framePool.mu.Unlock()
}

const (
	// egressHighWater triggers a mid-quantum flush: staging beyond this
	// buys nothing (the kernel will segment anyway) and grows the buffer.
	egressHighWater = 16 << 10
	// egressKeepCap bounds the staging buffer retained across flushes;
	// egressParkCap bounds what an idle (parked) connection may retain.
	egressKeepCap = 8 << 10
	egressParkCap = 2 << 10
	// egressFrameHighWater is the frame-mode flush trigger.
	egressFrameHighWater = 64
)

// egress is one connection's small-write combiner. Confinement is the
// owner's concern: serverConn egress is worker-confined (the scheduler
// runs one worker per connection), Peer egress is guarded by sendMu.
type egress struct {
	c  Conn
	rw rawWriter // non-nil selects contiguous mode

	// Contiguous mode: staged length-prefixed frames; holeAt marks the
	// open frame's length prefix. spare is the double-buffer half so a
	// flusher can write one batch while the owner stages the next.
	buf    []byte
	holeAt int
	spare  []byte

	// Frame mode: staged whole frames (pooled buffers, ownership passes
	// to Conn.Send at flush). spareFrames is the double-buffer half.
	frames      [][]byte
	spareFrames [][]byte

	pend int // frames staged and not yet taken for writing

	m    *kernelMetrics
	mkey uint64
}

func newEgress(c Conn, m *kernelMetrics, mkey uint64) *egress {
	e := &egress{c: c, m: m, mkey: mkey, holeAt: -1}
	if rw, ok := c.(rawWriter); ok {
		e.rw = rw
	}
	return e
}

// begin opens a frame and returns the buffer to append its body into; the
// caller appends the frame type and fields, then seals with commit. In
// contiguous mode the body lands directly behind its length prefix in the
// staging buffer — no per-frame buffer exists at all.
//
//nexus:noalloc
func (e *egress) begin() []byte {
	if e.rw != nil {
		if e.buf == nil {
			e.buf = getFrameBuf(0)
		}
		e.holeAt = len(e.buf)
		e.buf = append(e.buf, 0, 0, 0, 0)
		return e.buf
	}
	return getFrameBuf(0)
}

// commit seals the frame begun by begin (b is the possibly-regrown
// buffer) and returns its body length.
func (e *egress) commit(b []byte) int {
	var n int
	if e.rw != nil {
		n = len(b) - e.holeAt - 4
		binary.LittleEndian.PutUint32(b[e.holeAt:e.holeAt+4], uint32(n))
		e.buf = b
		e.holeAt = -1
	} else {
		n = len(b)
		e.frames = append(e.frames, b)
	}
	e.pend++
	return n
}

// abandon discards the frame begun by begin (b is the possibly-regrown
// buffer) without sealing it — the mid-encode failure path. Earlier staged
// frames survive; only the open one is dropped.
func (e *egress) abandon(b []byte) {
	if e.rw != nil {
		e.buf = b[:e.holeAt]
		e.holeAt = -1
	} else {
		putFrameBuf(b)
	}
}

// stage adds a fully built frame, taking ownership of it: contiguous mode
// copies it behind a length prefix and recycles it, frame mode queues it
// for Conn.Send (whose contract transfers ownership to the receiver).
func (e *egress) stage(frame []byte) {
	if e.rw != nil {
		if e.buf == nil {
			e.buf = getFrameBuf(0)
		}
		var pfx [4]byte
		binary.LittleEndian.PutUint32(pfx[:], uint32(len(frame)))
		e.buf = append(e.buf, pfx[:]...)
		e.buf = append(e.buf, frame...)
		putFrameBuf(frame)
	} else {
		e.frames = append(e.frames, frame)
	}
	e.pend++
}

// full reports that staging crossed its high-water mark and the owner
// should flush mid-quantum.
func (e *egress) full() bool {
	return len(e.buf) >= egressHighWater || len(e.frames) >= egressFrameHighWater
}

// take removes the staged batch for writing, resetting staging to the
// spare half so the owner can keep appending while the batch is written.
// Requires the owner's confinement (lock or worker); the returned batch
// is then private to the flusher.
func (e *egress) take() (buf []byte, frames [][]byte, n int) {
	buf, frames, n = e.buf, e.frames, e.pend
	e.buf, e.spare = e.spare, nil
	if e.spareFrames != nil {
		e.frames = e.spareFrames[:0]
		e.spareFrames = nil
	} else {
		e.frames = nil
	}
	e.pend = 0
	return buf, frames, n
}

// write flushes one taken batch to the connection. No confinement
// required: the batch is the flusher's own.
func (e *egress) write(buf []byte, frames [][]byte, n int) error {
	if n == 0 {
		return nil
	}
	e.m.add(e.mkey, mNetEgressFlushes, 1)
	e.m.add(e.mkey, mNetEgressFrames, uint64(n))
	if e.rw != nil {
		return e.rw.SendRaw(buf)
	}
	var err error
	for i, f := range frames {
		if err == nil {
			err = e.c.Send(f)
		}
		frames[i] = nil
	}
	return err
}

// release returns a written batch's buffers to the spare slots (or the
// pool, above the retention bound). Requires the owner's confinement.
func (e *egress) release(buf []byte, frames [][]byte) {
	if buf != nil && e.spare == nil && cap(buf) <= egressKeepCap {
		e.spare = buf[:0]
	} else if buf != nil {
		putFrameBuf(buf)
	}
	if frames != nil && e.spareFrames == nil {
		e.spareFrames = frames[:0]
	}
}

// flush drains staging in one step — the single-owner (serverConn) path,
// where no concurrent stager exists between take and release.
func (e *egress) flush() error {
	if e.pend == 0 {
		return nil
	}
	buf, frames, n := e.take()
	err := e.write(buf, frames, n)
	e.release(buf, frames)
	return err
}

// trim releases oversized retained staging; called as the connection
// parks so an idle connection pins at most egressParkCap of scratch.
func (e *egress) trim() {
	if e.buf != nil && len(e.buf) == 0 && cap(e.buf) > egressParkCap {
		putFrameBuf(e.buf)
		e.buf = nil
	}
	if e.spare != nil && cap(e.spare) > egressParkCap {
		putFrameBuf(e.spare)
		e.spare = nil
	}
}

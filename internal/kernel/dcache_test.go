package kernel

import (
	"fmt"
	"testing"
)

// distinctRegions returns two (op, obj) pairs that land in different
// subregions of a cache with the given region count.
func distinctRegions(t *testing.T, regions int) (obj1, obj2 string) {
	t.Helper()
	r1 := regionHash("read", "obj0") % uint32(regions)
	for i := 1; i < 1000; i++ {
		obj := fmt.Sprintf("obj%d", i)
		if regionHash("read", obj)%uint32(regions) != r1 {
			return "obj0", obj
		}
	}
	t.Fatal("could not find objects in distinct subregions")
	return "", ""
}

// TestDCacheRegionInvalidationClearsExactlyOneShard verifies the setgoal
// invalidation path touches only the subregion owning (op, obj).
func TestDCacheRegionInvalidationClearsExactlyOneShard(t *testing.T) {
	c := NewDecisionCache(4)
	obj1, obj2 := distinctRegions(t, 4)
	c.Insert("alice", "read", obj1, true)
	c.Insert("bob", "read", obj1, false)
	c.Insert("alice", "read", obj2, true)

	c.InvalidateRegion("read", obj1)

	if n := c.RegionLen("read", obj1); n != 0 {
		t.Errorf("invalidated subregion holds %d entries, want 0", n)
	}
	if allow, ok := c.Lookup("alice", "read", obj2); !ok || !allow {
		t.Error("entry in the other subregion was lost")
	}
	if _, ok := c.Lookup("alice", "read", obj1); ok {
		t.Error("invalidated entry still present")
	}
	if _, ok := c.Lookup("bob", "read", obj1); ok {
		t.Error("co-resident subject survived subregion invalidation")
	}
	if s := c.StatsSnapshot(); s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2 (both entries of the cleared subregion)", s.Evictions)
	}
}

// TestDCacheEntryInvalidation verifies the setproof path clears exactly one
// subject's entry.
func TestDCacheEntryInvalidation(t *testing.T) {
	c := NewDecisionCache(4)
	c.Insert("alice", "read", "obj", true)
	c.Insert("bob", "read", "obj", true)
	c.InvalidateEntry("alice", "read", "obj")
	if _, ok := c.Lookup("alice", "read", "obj"); ok {
		t.Error("invalidated entry still present")
	}
	if _, ok := c.Lookup("bob", "read", "obj"); !ok {
		t.Error("other subject's entry was lost")
	}
	// Invalidating an absent entry is a no-op with no eviction counted.
	before := c.StatsSnapshot().Evictions
	c.InvalidateEntry("carol", "read", "obj")
	if got := c.StatsSnapshot().Evictions; got != before {
		t.Errorf("phantom eviction counted: %d → %d", before, got)
	}
}

// TestDCacheDisabledAlwaysMisses verifies the disabled cache neither hits
// nor stores, while still counting lookups.
func TestDCacheDisabledAlwaysMisses(t *testing.T) {
	c := NewDecisionCache(4)
	c.Insert("alice", "read", "obj", true)
	c.Disable()
	if _, ok := c.Lookup("alice", "read", "obj"); ok {
		t.Error("disabled cache returned a hit")
	}
	c.Insert("bob", "read", "obj", true)
	c.Enable()
	if _, ok := c.Lookup("bob", "read", "obj"); ok {
		t.Error("insert while disabled must not store")
	}
	if allow, ok := c.Lookup("alice", "read", "obj"); !ok || !allow {
		t.Error("re-enabled cache lost its pre-existing entry")
	}
	s := c.StatsSnapshot()
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("stats inconsistent: %+v", s)
	}
	if s.Lookups != 3 || s.Hits != 1 {
		t.Errorf("lookups=%d hits=%d, want 3 lookups with exactly 1 hit", s.Lookups, s.Hits)
	}
}

// TestDCacheInsertIfDropsStaleEpoch verifies the invalidation-epoch guard:
// a decision computed before an invalidation must not be cached after it.
func TestDCacheInsertIfDropsStaleEpoch(t *testing.T) {
	c := NewDecisionCache(4)
	e := c.Epoch("read", "obj")
	c.InvalidateRegion("read", "obj") // setgoal landed mid-decision
	c.InsertIf("alice", "read", "obj", true, e)
	if _, ok := c.Lookup("alice", "read", "obj"); ok {
		t.Error("stale decision was cached past a region invalidation")
	}

	e = c.Epoch("read", "obj")
	c.InvalidateEntry("alice", "read", "obj") // setproof also bumps the epoch
	c.InsertIf("alice", "read", "obj", true, e)
	if _, ok := c.Lookup("alice", "read", "obj"); ok {
		t.Error("stale decision was cached past an entry invalidation")
	}

	e = c.Epoch("read", "obj")
	c.InsertIf("alice", "read", "obj", true, e)
	if allow, ok := c.Lookup("alice", "read", "obj"); !ok || !allow {
		t.Error("current-epoch insert was dropped")
	}
}

// TestDCacheFlushResetsEverything verifies Flush clears entries and stats.
func TestDCacheFlushResetsEverything(t *testing.T) {
	c := NewDecisionCache(4)
	c.Insert("alice", "read", "obj", true)
	c.Lookup("alice", "read", "obj")
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len = %d after Flush, want 0", c.Len())
	}
	if s := c.StatsSnapshot(); s.Lookups != 0 || s.Hits != 0 || s.Misses != 0 || s.Evictions != 0 {
		t.Errorf("stats not reset by Flush: %+v", s)
	}
}

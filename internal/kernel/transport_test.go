package kernel_test

import (
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/disk"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

// twoNodes boots two kernels and connects them over the loopback
// transport: front (the dialing side) and store (the serving side, with a
// guard.Generic installed as default guard).
type twoNodes struct {
	front, store   *kernel.Kernel
	nFront, nStore *kernel.Node
	peer           *kernel.Peer
	lt             *kernel.LoopbackTransport
}

func bootNode(t *testing.T) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func newTwoNodes(t *testing.T) *twoNodes {
	t.Helper()
	w := &twoNodes{front: bootNode(t), store: bootNode(t), lt: kernel.NewLoopbackTransport()}
	w.store.SetGuard(guard.New(w.store))
	w.nStore = kernel.NewNode(w.store)
	l, err := w.lt.Listen("store")
	if err != nil {
		t.Fatal(err)
	}
	w.nStore.Serve(l)
	w.nFront = kernel.NewNode(w.front)
	w.peer, err = w.nFront.Dial(w.lt, "store")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		w.nFront.Close()
		w.nStore.Close()
	})
	return w
}

// TestPeerIdentity: the handshake authenticates the remote kernel as
// key:<NK-fp>.<boot-id> in both directions.
func TestPeerIdentity(t *testing.T) {
	w := newTwoNodes(t)
	want := nal.SubOf(nal.Key(w.store.NKFingerprint()), w.store.BootID)
	if !w.peer.KernelPrin().EqualPrin(want) {
		t.Fatalf("peer principal %v, want %v", w.peer.KernelPrin(), want)
	}
	if w.peer.EKFingerprint() != w.store.TPM.EKFingerprint() {
		t.Fatal("peer EK fingerprint mismatch")
	}
}

// TestTrustEKAllowlist: a non-empty allowlist rejects unknown platforms.
func TestTrustEKAllowlist(t *testing.T) {
	front, store := bootNode(t), bootNode(t)
	lt := kernel.NewLoopbackTransport()
	nStore := kernel.NewNode(store)
	nStore.TrustEK("no-such-platform")
	l, _ := lt.Listen("store")
	nStore.Serve(l)
	defer nStore.Close()
	nFront := kernel.NewNode(front)
	defer nFront.Close()
	if _, err := nFront.Dial(lt, "store"); err == nil {
		t.Fatal("dial to a node that does not trust our EK succeeded")
	}
	nStore.TrustEK(front.TPM.EKFingerprint())
	if _, err := nFront.Dial(lt, "store"); err != nil {
		t.Fatalf("dial after allowlisting failed: %v", err)
	}
}

// TestRemoteCallThroughDispatch: a cross-node call runs the dispatch
// pipeline on both kernels — the local forwarder port's interposition
// chain sees the egress, the serving kernel's chain sees the ingress with
// the caller attributed to its remote (proxy) principal — and batch
// submission through a remote handle works unchanged.
func TestRemoteCallThroughDispatch(t *testing.T) {
	w := newTwoNodes(t)

	srv, err := w.store.NewSession([]byte("storage-srv"))
	if err != nil {
		t.Fatal(err)
	}
	var srvCaller atomic.Value
	pc, err := srv.Listen(func(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
		srvCaller.Store(from.Prin.String())
		return append([]byte("echo:"), m.Args[0]...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := w.nStore.Export("echo", port); err != nil {
		t.Fatal(err)
	}

	cli, err := w.front.NewSession([]byte("front-cli"))
	if err != nil {
		t.Fatal(err)
	}
	var ingress, egress atomic.Int64
	if _, err := w.store.Interpose(mustProc(t, w.store, srv.PID()), port, countMonitor(&ingress)); err != nil {
		t.Fatal(err)
	}

	c, err := cli.Connect(w.peer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	localPort, _ := cli.PortOf(c)
	if _, err := w.front.Interpose(mustProc(t, w.front, cli.PID()), localPort, countMonitor(&egress)); err != nil {
		t.Fatal(err)
	}

	out, err := cli.CallRemote(c, &kernel.Msg{Op: "read", Obj: "obj", Args: [][]byte{[]byte("hi")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("remote call returned %q", out)
	}
	if egress.Load() != 1 || ingress.Load() != 1 {
		t.Fatalf("interposition chains saw egress=%d ingress=%d calls, want 1/1", egress.Load(), ingress.Load())
	}
	// The serving kernel attributed the call to the caller's global
	// principal: key:<frontNK>.<frontBoot>.ipd.<pid>.
	wantPrin := nal.SubChain(
		nal.SubOf(nal.Key(w.front.NKFingerprint()), w.front.BootID),
		"ipd", strconv.Itoa(cli.PID())).String()
	if got := srvCaller.Load(); got != wantPrin {
		t.Fatalf("server saw caller %v, want %s", got, wantPrin)
	}

	// Plain Session.Call works on remote handles too.
	if out, err := cli.Call(c, &kernel.Msg{Op: "read", Obj: "obj", Args: [][]byte{[]byte("2")}}); err != nil || string(out) != "echo:2" {
		t.Fatalf("Session.Call on remote handle: %q, %v", out, err)
	}

	// Batched submission through the remote handle.
	subs := []kernel.Sub{
		{Cap: c, Op: "read", Obj: "obj", Args: [][]byte{[]byte("a")}, Tag: 1},
		{Cap: c, Op: "read", Obj: "obj", Args: [][]byte{[]byte("b")}, Tag: 2},
	}
	comps, err := cli.Submit(nil, subs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"echo:a", "echo:b"} {
		if comps[i].Err != nil || string(comps[i].Out) != want {
			t.Fatalf("batched remote op %d: %q, %v", i, comps[i].Out, comps[i].Err)
		}
	}
}

func mustProc(t *testing.T, k *kernel.Kernel, pid int) *kernel.Process {
	t.Helper()
	p, ok := k.Lookup(pid)
	if !ok {
		t.Fatalf("no process %d", pid)
	}
	return p
}

func countMonitor(n *atomic.Int64) kernel.FuncMonitor {
	return kernel.FuncMonitor{
		Call: func(from kernel.Caller, m *kernel.Msg, wire []byte) kernel.Verdict {
			n.Add(1)
			return kernel.VerdictAllow
		},
	}
}

// TestRemoteCredentialAuthorization is the acceptance round-trip: a
// credential-backed authorization crosses two kernels over the loopback
// transport through the standard dispatch pipeline. The client utters a
// label, externalizes it under its node's TPM-rooted key, ships it, binds
// a proof to the access tuple on the serving kernel, and only then may
// call; a session without the credential is denied with the errno class
// intact across the wire.
func TestRemoteCredentialAuthorization(t *testing.T) {
	w := newTwoNodes(t)

	srv, err := w.store.NewSession([]byte("wallstore"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
		return []byte("wall-of-" + m.Obj), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := w.nStore.Export("wallstore", port); err != nil {
		t.Fatal(err)
	}

	cli, err := w.front.NewSession([]byte("front-cli"))
	if err != nil {
		t.Fatal(err)
	}

	// The goal on the serving kernel demands the client's attested
	// statement: key:<frontNK> says (<client global prin> says mayArchive).
	frontNK := w.front.NKFingerprint()
	cliPrin := nal.SubChain(nal.SubOf(nal.Key(frontNK), w.front.BootID), "ipd", strconv.Itoa(cli.PID()))
	goal := nal.Says{P: nal.Key(frontNK), F: nal.Says{P: cliPrin, F: nal.Pred{Name: "mayArchive"}}}
	if err := srv.SetGoal("get", "/walls", goal, nil); err != nil {
		t.Fatal(err)
	}

	// Client side: say, attest, transfer, bind the proof remotely.
	lbl, err := cli.Say("mayArchive")
	if err != nil {
		t.Fatal(err)
	}
	rl, err := cli.TransferLabelRemote(w.peer, lbl.Handle)
	if err != nil {
		t.Fatalf("label transfer: %v", err)
	}
	if err := cli.SetProofRemote(w.peer, "get", "/walls", proof.Assume(0, goal),
		[]kernel.RemoteCred{{Ref: rl.Handle}}); err != nil {
		t.Fatalf("remote setproof: %v", err)
	}

	c, err := cli.Connect(w.peer, "wallstore")
	if err != nil {
		t.Fatal(err)
	}
	up0 := w.store.GuardUpcalls()
	out, err := cli.CallRemote(c, &kernel.Msg{Op: "get", Obj: "/walls"})
	if err != nil {
		t.Fatalf("credential-backed remote call denied: %v", err)
	}
	if string(out) != "wall-of-/walls" {
		t.Fatalf("remote call returned %q", out)
	}
	if w.store.GuardUpcalls() == up0 {
		t.Fatal("authorization did not cross the serving kernel's guard")
	}

	// A second session without the credential is denied; the EACCES class
	// survives the wire.
	other, err := w.front.NewSession([]byte("front-other"))
	if err != nil {
		t.Fatal(err)
	}
	oc, err := other.Connect(w.peer, "wallstore")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.CallRemote(oc, &kernel.Msg{Op: "get", Obj: "/walls"}); !errors.Is(err, kernel.ErrDenied) {
		t.Fatalf("uncredentialed remote call: want ErrDenied, got %v", err)
	} else if kernel.ErrnoOf(err) != kernel.EACCES {
		t.Fatalf("errno class lost across the wire: %v", err)
	}

	// Warm path: the certificate was verified once; re-calls hit the
	// pre-verification cache on the serving kernel.
	s0 := w.store.CertCache().Stats()
	for i := 0; i < 3; i++ {
		if _, err := cli.CallRemote(c, &kernel.Msg{Op: "get", Obj: "/walls"}); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}
	s1 := w.store.CertCache().Stats()
	if s1.Misses != s0.Misses {
		t.Fatalf("warm remote calls re-verified certificates: %+v → %+v", s0, s1)
	}
}

// TestCrossNodeSpeakerSpoofRejected is the spoofing regression: a node
// whose NK signs a label attributing a statement to a principal not rooted
// under that node's kernel principal must have the transfer rejected at
// ingress — before anything reaches a labelstore — as must a label signed
// by a key other than the connection's authenticated NK.
func TestCrossNodeSpeakerSpoofRejected(t *testing.T) {
	w := newTwoNodes(t)
	cli, err := w.front.NewSession([]byte("mal"))
	if err != nil {
		t.Fatal(err)
	}

	// Case 1: signed by the front node's genuine NK, but the speaker
	// claims to be a process of the *store* kernel.
	victim := nal.SubChain(w.store.Prin, "ipd", "1")
	forged, err := cert.SignEd25519(cert.Statement{
		Speaker: victim.String(),
		Formula: "pwned",
		Serial:  1,
		Issued:  time.Now(),
	}, w.front.NK)
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.peer.TransferExternal(cli.PID(), &kernel.ExternalLabel{LabelCert: forged})
	if err == nil {
		t.Fatal("spoofed-speaker label accepted")
	}
	if !strings.Contains(err.Error(), "speaker") {
		t.Fatalf("unexpected rejection: %v", err)
	}

	// Case 2: speaker correctly rooted at the front node, but signed by a
	// key that is not the connection's authenticated NK.
	stranger := bootNode(t)
	honest := nal.SubChain(w.front.Prin, "ipd", strconv.Itoa(cli.PID()))
	foreign, err := cert.SignEd25519(cert.Statement{
		Speaker: honest.String(),
		Formula: "pwned",
		Serial:  2,
		Issued:  time.Now(),
	}, stranger.NK)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.peer.TransferExternal(cli.PID(), &kernel.ExternalLabel{LabelCert: foreign}); err == nil {
		t.Fatal("foreign-signed label accepted")
	}

	// The legitimate path still works.
	lbl, err := cli.Say("legit")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.TransferLabelRemote(w.peer, lbl.Handle); err != nil {
		t.Fatalf("legitimate transfer rejected: %v", err)
	}
}

// TestSetProofSaturationPoisonsPeer: a mid-frame codec failure (here,
// cons-table saturation after an earlier credential already committed
// per-connection dedup state) must not leave the connection with tables
// the two sides disagree on — the peer is poisoned and every later
// exchange fails with ErrTransportClosed instead of silently resolving
// backreferences to the wrong values.
func TestSetProofSaturationPoisonsPeer(t *testing.T) {
	w := newTwoNodes(t)
	cli, err := w.front.NewSession([]byte("cli"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cert.SignEd25519(cert.Statement{Formula: "whatever", Serial: 1, Issued: time.Now()}, w.front.NK)
	if err != nil {
		t.Fatal(err)
	}
	nal.SetConsLimit(0)
	defer nal.SetConsLimit(nal.DefaultConsLimit)
	fresh := nal.Pred{Name: "neverInternedBefore_" + t.Name()}
	err = cli.SetProofRemote(w.peer, "read", "obj", nil,
		[]kernel.RemoteCred{{Cert: c}, {Inline: fresh}})
	if err == nil {
		t.Fatal("saturated inline credential encoded successfully")
	}
	if _, err := cli.Connect(w.peer, "anything"); !errors.Is(err, kernel.ErrTransportClosed) {
		t.Fatalf("peer not poisoned after codec failure: %v", err)
	}
}

// TestRemoteCallTCP runs the round trip over the TCP backend.
func TestRemoteCallTCP(t *testing.T) {
	front, store := bootNode(t), bootNode(t)
	nStore := kernel.NewNode(store)
	var tr kernel.TCPTransport
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP loopback available: %v", err)
	}
	nStore.Serve(l)
	defer nStore.Close()

	srv, err := store.NewSession([]byte("srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
		return []byte("tcp-ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := nStore.Export("svc", port); err != nil {
		t.Fatal(err)
	}

	nFront := kernel.NewNode(front)
	defer nFront.Close()
	peer, err := nFront.Dial(tr, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := front.NewSession([]byte("cli"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cli.Connect(peer, "svc")
	if err != nil {
		t.Fatal(err)
	}
	out, err := cli.CallRemote(c, &kernel.Msg{Op: "ping", Obj: "x"})
	if err != nil || string(out) != "tcp-ok" {
		t.Fatalf("TCP remote call: %q, %v", out, err)
	}
}

// TestNodeCloseExitsProxies: tearing the transport down exits every proxy
// process the connection created on the serving kernel.
func TestNodeCloseExitsProxies(t *testing.T) {
	w := newTwoNodes(t)
	srv, err := w.store.NewSession([]byte("srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	if err := w.nStore.Export("svc", port); err != nil {
		t.Fatal(err)
	}
	cli, err := w.front.NewSession([]byte("cli"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Connect(w.peer, "svc"); err != nil {
		t.Fatal(err)
	}
	before := len(w.store.Processes())
	w.peer.Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(w.store.Processes()) >= before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(w.store.Processes()); got >= before {
		t.Fatalf("proxy processes survived connection teardown: %d, was %d", got, before)
	}
}

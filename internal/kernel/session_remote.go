package kernel

import (
	"repro/internal/nal/proof"
)

// Remote operations of the Session ABI. A remote service is named by a
// *Peer (a verified connection to another node) plus the service name its
// node exported; Connect converts that name into a capability handle
// exactly as Open converts a local port name into one.
//
// The handle resolves to a local *forwarder port* owned by this session
// whose handler ships the message to the peer, so a cross-node call runs
// the dispatch pipeline twice — once here (local authorization of the
// egress, local interposition chains, batch submission via Submit) and
// once on the serving kernel against the caller's proxy principal. Nothing
// between Session.Call and the remote handler knows the target is remote.

// Connect opens a channel to a service exported by a peer node and returns
// the capability handle for it. The peer kernel records the channel grant
// against this session's proxy, so its connectivity analysis sees the
// cross-node edge.
func (s *Session) Connect(peer *Peer, service string) (Cap, error) {
	remotePort, err := peer.connect(s.p.PID, service)
	if err != nil {
		return 0, err
	}
	pt, err := s.k.CreatePort(s.p, func(from Caller, m *Msg) ([]byte, error) {
		return peer.call(from.PID, remotePort, m)
	})
	if err != nil {
		return 0, err
	}
	c, ok := s.ht.alloc(hslot{kind: capRemote, port: pt, obj: service})
	if !ok {
		// The session raced Exit; unwind the forwarder port idempotently.
		s.k.ports.remove(pt.ID)
		s.k.chans.dropPort(pt.ID)
		return 0, abiErr(ESRCH, "connect", "session exited")
	}
	return c, nil
}

// CallRemote performs a synchronous call through a remote handle. It is
// Session.Call restricted to remote handles — same dispatch pipeline,
// with the handle's kind asserted for callers that must not silently fall
// back to a local port.
func (s *Session) CallRemote(c Cap, m *Msg) ([]byte, error) {
	sl, ok := s.ht.lookup(c)
	if !ok || sl.kind != capRemote {
		return nil, ErrBadHandle
	}
	return s.k.dispatch(s.p, sl.port, m, sl.port.h)
}

// RemoteLabel names a label this session deposited on a peer kernel: the
// proxy pid and labelstore handle there. It is the value to place in a
// RemoteCred.Ref for a later SetProofRemote.
type RemoteLabel struct {
	PID    int
	Handle int
}

// TransferLabelRemote externalizes a label from this session's labelstore
// (signing it under this node's TPM-rooted key, §2.4) and ships it to the
// peer, whose kernel verifies it through its pre-verification cache and
// interns it into this session's proxy labelstore there. The returned
// RemoteLabel is stable for the life of the connection.
func (s *Session) TransferLabelRemote(peer *Peer, labelHandle int) (RemoteLabel, error) {
	ext, err := s.p.Labels.Externalize(labelHandle)
	if err != nil {
		return RemoteLabel{}, err
	}
	pid, h, err := peer.xferLabel(s.p.PID, ext)
	if err != nil {
		return RemoteLabel{}, err
	}
	return RemoteLabel{PID: pid, Handle: h}, nil
}

// TransferExternal ships an already-externalized label to the peer on
// behalf of callerPID — the relay path for labels a node holds in
// certificate form rather than in a labelstore. Ingress applies the same
// verification as any transfer: the certificate must be signed by this
// node's NK and its speaker rooted at this node's kernel principal, so a
// relay cannot launder labels that did not originate here.
func (p *Peer) TransferExternal(callerPID int, ext *ExternalLabel) (RemoteLabel, error) {
	pid, h, err := p.xferLabel(callerPID, ext)
	if err != nil {
		return RemoteLabel{}, err
	}
	return RemoteLabel{PID: pid, Handle: h}, nil
}

// SetProofRemote registers a proof for this session's proxy identity on
// the peer kernel, binding it to (op, obj) there. Inline credential
// formulas travel through the per-connection wire codec (warm resends are
// backreferences); certificates are deduplicated per connection.
func (s *Session) SetProofRemote(peer *Peer, op, obj string, p *proof.Proof, creds []RemoteCred) error {
	return peer.setProof(s.p.PID, op, obj, p, creds)
}

package kernel

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/nal/proof"
)

// Remote operations of the Session ABI. A remote service is named by a
// *Peer (a verified connection to another node) plus the service name its
// node exported; Connect converts that name into a capability handle
// exactly as Open converts a local port name into one.
//
// The handle resolves to a local *forwarder port* owned by this session
// whose handler ships the message to the peer, so a cross-node call runs
// the dispatch pipeline twice — once here (local authorization of the
// egress, local interposition chains, batch submission via Submit) and
// once on the serving kernel against the caller's proxy principal. Nothing
// between Session.Call and the remote handler knows the target is remote.

// Connect opens a channel to a service exported by a peer node and returns
// the capability handle for it. The peer kernel records the channel grant
// against this session's proxy, so its connectivity analysis sees the
// cross-node edge.
func (s *Session) Connect(peer *Peer, service string) (Cap, error) {
	remotePort, err := peer.connect(s.p.PID, service)
	if err != nil {
		return 0, err
	}
	pt, err := s.k.CreatePort(s.p, func(from Caller, m *Msg) ([]byte, error) {
		return peer.call(from.PID, remotePort, m)
	})
	if err != nil {
		return 0, err
	}
	c, ok := s.ht.alloc(hslot{kind: capRemote, port: pt, obj: service, peer: peer, rport: remotePort})
	if !ok {
		// The session raced Exit; unwind the forwarder port idempotently.
		s.k.ports.remove(pt.ID)
		s.k.chans.dropPort(pt.ID)
		return 0, abiErr(ESRCH, "connect", "session exited")
	}
	return c, nil
}

// CallRemote performs a synchronous call through a remote handle. It is
// Session.Call restricted to remote handles — same dispatch pipeline,
// with the handle's kind asserted for callers that must not silently fall
// back to a local port.
func (s *Session) CallRemote(c Cap, m *Msg) ([]byte, error) {
	sl, ok := s.ht.lookup(c)
	if !ok || sl.kind != capRemote {
		return nil, ErrBadHandle
	}
	return s.k.dispatch(s.p, sl.port, m, sl.port.h)
}

// SubmitRemote pushes a batch of operations through one remote handle as a
// single wire exchange: every operation runs the local egress half of the
// dispatch pipeline — the loop-invariant head (channel check, interposition
// chain) once per batch, then authorization and the OnCall sweep per
// operation, with each entry marshaled directly into the outgoing frame so
// the interposition copy and the wire bytes are the same bytes. The
// survivors ship as one fSubmit frame, the serving kernel executes them in
// order through the same hoisted admission against this session's proxy,
// and one completion vector comes back. Operations that fail locally
// complete locally and are not shipped.
//
// The contract matches Submit: comps is reused when it has capacity,
// per-op failures land in Completion.Err, and the error return is reserved
// for submission-level failures — context cancellation, a full in-flight
// window or exhausted send credits (both EAGAIN), or the connection failing
// mid-exchange, in which case every shipped operation's Completion.Err
// carries the transport error.
func (s *Session) SubmitRemote(ctx context.Context, c Cap, subs []Sub, comps []Completion) ([]Completion, error) {
	sl, ok := s.ht.lookup(c)
	if !ok || sl.kind != capRemote || sl.peer == nil {
		return nil, ErrBadHandle
	}
	peer := sl.peer
	if cap(comps) >= len(subs) {
		comps = comps[:len(subs)]
	} else {
		comps = make([]Completion, len(subs))
	}
	k := s.k
	flags := k.flags.Load()

	id, ch, err := peer.begin("submit")
	if err != nil {
		return comps[:0], err
	}
	t0 := time.Now()

	// Hoisted admission head: channel check and interposition chain are
	// per-batch, authorization and OnCall per operation.
	ba, baErr := k.batchAdmit(flags, s.p, sl.port)
	if baErr != nil {
		peer.abort(id)
		for i := range subs {
			comps[i] = Completion{Tag: subs[i].Tag, Err: baErr}
		}
		return comps, nil
	}

	// The batch frame builds in a pooled buffer; ownership transfers to the
	// peer's egress combiner at submit (early-abort paths recycle it here).
	frame := getFrameBuf(64 + len(subs)*32)[:0]
	frame = append(frame, fSubmit)
	frame = binary.AppendUvarint(frame, id)
	frame = binary.AppendUvarint(frame, uint64(s.p.PID))
	frame = binary.AppendUvarint(frame, uint64(sl.rport))
	countAt := len(frame)
	frame = append(frame, 0, 0, 0, 0) // batch count, patched below

	sent := make([]int, 0, len(subs))
	var m Msg
	canceled := false
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for i := range subs {
		sub := &subs[i]
		comps[i] = Completion{Tag: sub.Tag}
		if canceled {
			comps[i].Err = abiErr(ECANCELED, sub.Op, "batch canceled")
			continue
		}
		if done != nil {
			select {
			case <-done:
				canceled = true
				comps[i].Err = abiErr(ECANCELED, sub.Op, ctx.Err().Error())
				continue
			default:
			}
		}
		m = Msg{Op: sub.Op, Obj: sub.Obj, Args: sub.Args}
		// The interposition wire copy IS the batch entry: the canonical
		// encoding is appended straight into the frame (after a length
		// placeholder) and the OnCall sweep inspects it there, so a
		// locally-admitted operation is marshaled exactly once end to end.
		lenAt := len(frame)
		frame = append(frame, 0, 0, 0, 0)
		frame = appendMsgWire(frame, &m)
		if err := ba.admitOp(&m, frame[lenAt+4:]); err != nil {
			frame = frame[:lenAt]
			comps[i].Err = err
			continue
		}
		binary.LittleEndian.PutUint32(frame[lenAt:lenAt+4], uint32(len(frame)-lenAt-4))
		sent = append(sent, i)
	}

	if len(sent) == 0 {
		peer.abort(id)
		putFrameBuf(frame)
		if canceled {
			return comps, abiErr(ECANCELED, "submit", "context canceled mid-batch")
		}
		return comps, nil
	}
	binary.LittleEndian.PutUint32(frame[countAt:countAt+4], uint32(len(sent)))

	resp, err := peer.submit(id, ch, t0, frame)
	if err != nil {
		for _, ci := range sent {
			comps[ci].Err = err
		}
		return comps, err
	}
	r := &netCursor{buf: resp}
	nres, ok := r.uvarint()
	if !ok || nres != uint64(len(sent)) {
		peer.fail()
		return comps, ErrTransportClosed
	}
	for _, ci := range sent {
		st, ok := r.byte()
		if !ok {
			peer.fail()
			return comps, ErrTransportClosed
		}
		switch st {
		case wsOK:
			out, ok := r.bytes()
			if !ok {
				peer.fail()
				return comps, ErrTransportClosed
			}
			if len(out) > 0 {
				// Aliases the response frame, which is exclusively ours.
				comps[ci].Out = out
			}
		case wsAbiErr:
			en, ok1 := r.uvarint()
			op, ok2 := r.str()
			detail, ok3 := r.str()
			if !ok1 || !ok2 || !ok3 {
				peer.fail()
				return comps, ErrTransportClosed
			}
			comps[ci].Err = abiErr(Errno(en), op, detail)
		case wsHdlrErr:
			detail, ok := r.str()
			if !ok {
				peer.fail()
				return comps, ErrTransportClosed
			}
			comps[ci].Err = fmt.Errorf("%w: %s", ErrRemoteHandler, detail)
		default:
			peer.fail()
			return comps, ErrTransportClosed
		}
	}
	if !r.done() {
		peer.fail()
		return comps, ErrTransportClosed
	}
	if canceled {
		return comps, abiErr(ECANCELED, "submit", "context canceled mid-batch")
	}
	return comps, nil
}

// RemoteLabel names a label this session deposited on a peer kernel: the
// proxy pid and labelstore handle there. It is the value to place in a
// RemoteCred.Ref for a later SetProofRemote.
type RemoteLabel struct {
	PID    int
	Handle int
}

// TransferLabelRemote externalizes a label from this session's labelstore
// (signing it under this node's TPM-rooted key, §2.4) and ships it to the
// peer, whose kernel verifies it through its pre-verification cache and
// interns it into this session's proxy labelstore there. The returned
// RemoteLabel is stable for the life of the connection.
func (s *Session) TransferLabelRemote(peer *Peer, labelHandle int) (RemoteLabel, error) {
	ext, err := s.p.Labels.Externalize(labelHandle)
	if err != nil {
		return RemoteLabel{}, err
	}
	pid, h, err := peer.xferLabel(s.p.PID, ext)
	if err != nil {
		return RemoteLabel{}, err
	}
	return RemoteLabel{PID: pid, Handle: h}, nil
}

// TransferExternal ships an already-externalized label to the peer on
// behalf of callerPID — the relay path for labels a node holds in
// certificate form rather than in a labelstore. Ingress applies the same
// verification as any transfer: the certificate must be signed by this
// node's NK and its speaker rooted at this node's kernel principal, so a
// relay cannot launder labels that did not originate here.
func (p *Peer) TransferExternal(callerPID int, ext *ExternalLabel) (RemoteLabel, error) {
	pid, h, err := p.xferLabel(callerPID, ext)
	if err != nil {
		return RemoteLabel{}, err
	}
	return RemoteLabel{PID: pid, Handle: h}, nil
}

// SetProofRemote registers a proof for this session's proxy identity on
// the peer kernel, binding it to (op, obj) there. Inline credential
// formulas travel through the per-connection wire codec (warm resends are
// backreferences); certificates are deduplicated per connection.
func (s *Session) SetProofRemote(peer *Peer, op, obj string, p *proof.Proof, creds []RemoteCred) error {
	return peer.setProof(s.p.PID, op, obj, p, creds)
}

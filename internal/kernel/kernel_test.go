package kernel

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/nal"
	"repro/internal/tpm"
)

func bootKernel(t *testing.T) *Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(tp, disk.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootFirstAndSecond(t *testing.T) {
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	d := disk.New()
	k1, err := Boot(tp, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reboot with the same image: same NK, new boot id.
	k2, err := Boot(tp, d, Options{})
	if err != nil {
		t.Fatalf("second boot: %v", err)
	}
	if !k1.NK.Equal(k2.NK) {
		t.Error("NK must persist across reboots")
	}
	if k1.BootID == k2.BootID {
		t.Error("boot id must differ per boot")
	}
}

func TestBootModifiedKernelFails(t *testing.T) {
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	d := disk.New()
	if _, err := Boot(tp, d, Options{Image: []byte("genuine")}); err != nil {
		t.Fatal(err)
	}
	if _, err := Boot(tp, d, Options{Image: []byte("malicious")}); !errors.Is(err, ErrBootIntegrity) {
		t.Errorf("modified kernel must fail boot integrity, got %v", err)
	}
	// The genuine kernel still boots.
	if _, err := Boot(tp, d, Options{Image: []byte("genuine")}); err != nil {
		t.Errorf("genuine reboot after attack: %v", err)
	}
}

func TestBootTamperedSealedNK(t *testing.T) {
	tp, _ := tpm.Manufacture(1024)
	d := disk.New()
	if _, err := Boot(tp, d, Options{}); err != nil {
		t.Fatal(err)
	}
	d.Write(sealedNKFile, []byte("garbage"))
	if _, err := Boot(tp, d, Options{}); !errors.Is(err, ErrBootIntegrity) {
		t.Errorf("tampered NK file: want ErrBootIntegrity, got %v", err)
	}
	d.Delete(sealedNKFile)
	if _, err := Boot(tp, d, Options{}); !errors.Is(err, ErrBootIntegrity) {
		t.Errorf("missing NK file: want ErrBootIntegrity, got %v", err)
	}
}

func TestProcessPrincipals(t *testing.T) {
	k := bootKernel(t)
	p, err := k.CreateProcess(0, []byte("prog"))
	if err != nil {
		t.Fatal(err)
	}
	if !nal.IsAncestor(k.Prin, p.Prin) {
		t.Errorf("process %s must be subprincipal of kernel %s", p.Prin, k.Prin)
	}
	child, err := k.CreateProcess(p.PID, []byte("prog2"))
	if err != nil {
		t.Fatal(err)
	}
	if child.Parent != p.PID {
		t.Error("parent linkage wrong")
	}
	if _, err := k.CreateProcess(9999, nil); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("bad parent: want ErrNoSuchProcess, got %v", err)
	}
	ppid, err := child.GetPPID()
	if err != nil || ppid != p.PID {
		t.Errorf("GetPPID = %d, %v", ppid, err)
	}
	p.Exit()
	if _, ok := k.Lookup(p.PID); ok {
		t.Error("exited process still visible")
	}
}

func TestSyscallsRun(t *testing.T) {
	k := bootKernel(t)
	p, _ := k.CreateProcess(0, []byte("prog"))
	if err := p.Null(); err != nil {
		t.Errorf("Null: %v", err)
	}
	if err := p.Yield(); err != nil {
		t.Errorf("Yield: %v", err)
	}
	if ts, err := p.GetTimeOfDay(); err != nil || ts.IsZero() {
		t.Errorf("GetTimeOfDay = %v, %v", ts, err)
	}
}

func TestIPCPortBindingLabel(t *testing.T) {
	k := bootKernel(t)
	srv, _ := k.CreateProcess(0, []byte("server"))
	cli, _ := k.CreateProcess(0, []byte("client"))
	pt, err := k.CreatePort(srv, func(from Caller, m *Msg) ([]byte, error) {
		return append([]byte("echo:"), m.Args[0]...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The kernel deposited the binding label in the owner's store.
	want := nal.Says{P: k.Prin, F: nal.SpeaksFor{A: pt.Prin(k), B: srv.Prin}}
	found := false
	for _, f := range srv.Labels.All() {
		if f.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Errorf("binding label missing; store has %v", srv.Labels.All())
	}
	out, err := k.Call(cli, pt.ID, &Msg{Op: "echo", Obj: "echo", Args: [][]byte{[]byte("hi")}})
	if err != nil || !bytes.Equal(out, []byte("echo:hi")) {
		t.Errorf("Call = %q, %v", out, err)
	}
	if _, err := k.Call(cli, 999, &Msg{Op: "x", Obj: "x"}); !errors.Is(err, ErrNoSuchPort) {
		t.Errorf("want ErrNoSuchPort, got %v", err)
	}
}

func TestLabelstoreSayAndTransfer(t *testing.T) {
	k := bootKernel(t)
	p, _ := k.CreateProcess(0, []byte("a"))
	q, _ := k.CreateProcess(0, []byte("b"))
	l, err := p.Labels.Say("isTypeSafe(hash:ab12)")
	if err != nil {
		t.Fatal(err)
	}
	wantStr := p.Prin.String() + " says isTypeSafe(hash:ab12)"
	if l.Formula.String() != wantStr {
		t.Errorf("label = %q, want %q", l.Formula, wantStr)
	}
	if _, err := p.Labels.Say("((bad"); err == nil {
		t.Error("malformed statement must fail")
	}
	if _, err := p.Labels.Say("safe(?X)"); err == nil {
		t.Error("non-ground statement must fail")
	}
	nl, err := p.Labels.Transfer(l.Handle, q.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Labels.Get(l.Handle); !errors.Is(err, ErrNoSuchLabel) {
		t.Error("transferred label must leave source store")
	}
	got, err := q.Labels.Get(nl.Handle)
	if err != nil || got.Formula.String() != wantStr {
		t.Errorf("transferred label = %v, %v", got, err)
	}
	if err := q.Labels.Delete(nl.Handle); err != nil {
		t.Errorf("Delete: %v", err)
	}
	if err := q.Labels.Delete(nl.Handle); !errors.Is(err, ErrNoSuchLabel) {
		t.Error("double delete must fail")
	}
}

func TestSayIdempotentSpeaker(t *testing.T) {
	k := bootKernel(t)
	p, _ := k.CreateProcess(0, []byte("a"))
	// Saying "P says S" where P is the caller collapses (says-join).
	l, err := p.Labels.SayFormula(nal.Says{P: p.Prin, F: nal.Pred{Name: "ok"}})
	if err != nil {
		t.Fatal(err)
	}
	want := nal.Says{P: p.Prin, F: nal.Pred{Name: "ok"}}
	if !l.Formula.Equal(want) {
		t.Errorf("label = %q, want %q", l.Formula, want)
	}
}

func TestExternalizeImportRoundTrip(t *testing.T) {
	k := bootKernel(t)
	p, _ := k.CreateProcess(0, []byte("a"))
	l, err := p.Labels.Say("isTypeSafe(hash:ab12)")
	if err != nil {
		t.Fatal(err)
	}
	ext, err := p.Labels.Externalize(l.Handle)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := VerifyExternalLabels(ext, k.TPM.EKFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 {
		t.Fatalf("want 2 labels, got %d", len(labels))
	}
	// Import into a different kernel's process.
	k2 := bootKernel(t)
	q, _ := k2.CreateProcess(0, []byte("b"))
	il, err := q.Labels.Import(ext)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := il.Formula.(nal.Says); !ok {
		t.Errorf("imported label should be a says formula: %v", il.Formula)
	}
	// Verification against the wrong EK fails.
	if _, err := VerifyExternalLabels(ext, "deadbeef"); err == nil {
		t.Error("wrong EK must fail verification")
	}
	// Tampered label cert fails.
	ext.LabelCert.RawTBS[0] ^= 1
	if _, err := VerifyExternalLabels(ext, k.TPM.EKFingerprint()); err == nil {
		t.Error("tampered chain must fail")
	}
}

func TestInterpositionObservesAndBlocks(t *testing.T) {
	k := bootKernel(t)
	srv, _ := k.CreateProcess(0, []byte("server"))
	cli, _ := k.CreateProcess(0, []byte("client"))
	mon, _ := k.CreateProcess(0, []byte("monitor"))
	pt, _ := k.CreatePort(srv, func(from Caller, m *Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	var seen []string
	blockSecret := FuncMonitor{
		Call: func(from Caller, m *Msg, wire []byte) Verdict {
			seen = append(seen, m.Op)
			if m.Op == "secret" {
				return VerdictBlock
			}
			// The wire form must decode to the same message.
			dm, err := unmarshalMsg(wire)
			if err != nil || dm.Op != m.Op {
				t.Errorf("wire decode mismatch: %v %v", dm, err)
			}
			return VerdictAllow
		},
	}
	if _, err := k.Interpose(mon, pt.ID, blockSecret); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "open", Obj: "f"}); err != nil {
		t.Errorf("allowed op: %v", err)
	}
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "secret", Obj: "f"}); !errors.Is(err, ErrDenied) {
		t.Errorf("blocked op: want ErrDenied, got %v", err)
	}
	if len(seen) != 2 {
		t.Errorf("monitor saw %v", seen)
	}
	// Composability: a second monitor stacks.
	count := 0
	counter := FuncMonitor{Call: func(Caller, *Msg, []byte) Verdict { count++; return VerdictAllow }}
	counterID, err := k.Interpose(mon, pt.ID, counter)
	if err != nil {
		t.Fatal(err)
	}
	k.Call(cli, pt.ID, &Msg{Op: "open", Obj: "f"})
	if count != 1 || k.Monitors(pt.ID) != 2 {
		t.Errorf("stacked monitors: count=%d monitors=%d", count, k.Monitors(pt.ID))
	}
	if err := k.Deinterpose(mon, pt.ID, counterID); err != nil {
		t.Fatal(err)
	}
	if k.Monitors(pt.ID) != 1 {
		t.Error("deinterpose failed")
	}
	// Disabled interposition bypasses monitors entirely.
	k.SetInterposition(false)
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "secret", Obj: "f"}); err != nil {
		t.Errorf("bare mode must bypass monitors: %v", err)
	}
}

func TestInterposeConsentGoal(t *testing.T) {
	k := bootKernel(t)
	srv, _ := k.CreateProcess(0, []byte("server"))
	mon, _ := k.CreateProcess(0, []byte("monitor"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })
	// Protect the interpose operation with a goal nobody can satisfy yet.
	obj := "port:" + itoa(pt.ID)
	if err := k.SetGoal(srv, "interpose", obj, ConsentGoal(srv.Prin, pt.ID), denyAllGuard{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Interpose(mon, pt.ID, FuncMonitor{}); !errors.Is(err, ErrDenied) {
		t.Errorf("interpose without consent: want ErrDenied, got %v", err)
	}
}

type denyAllGuard struct{}

func (denyAllGuard) Check(*GuardRequest) GuardDecision {
	return GuardDecision{Allow: false, Cacheable: false, Reason: "deny-all"}
}

type allowAllGuard struct{}

func (allowAllGuard) Check(*GuardRequest) GuardDecision {
	return GuardDecision{Allow: true, Cacheable: true}
}

func itoa(n int) string {
	return nal.Int(int64(n)).String()
}

func TestDefaultPolicyProtectsNascentObjects(t *testing.T) {
	k := bootKernel(t)
	owner, _ := k.CreateProcess(0, []byte("owner"))
	other, _ := k.CreateProcess(0, []byte("other"))
	srv, _ := k.CreateProcess(0, []byte("resource-manager"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })

	k.RegisterObject("file:/x", owner.Prin)
	if _, err := k.Call(owner, pt.ID, &Msg{Op: "read", Obj: "file:/x"}); err != nil {
		t.Errorf("owner access: %v", err)
	}
	if _, err := k.Call(other, pt.ID, &Msg{Op: "read", Obj: "file:/x"}); !errors.Is(err, ErrDenied) {
		t.Errorf("stranger access: want ErrDenied, got %v", err)
	}
	// Unregistered objects default to allow.
	if _, err := k.Call(other, pt.ID, &Msg{Op: "read", Obj: "file:/public"}); err != nil {
		t.Errorf("unregistered object: %v", err)
	}
	k.ReleaseObject("file:/x")
	// Cache still holds the denial until invalidated.
	k.DCache().Flush()
	if _, err := k.Call(other, pt.ID, &Msg{Op: "read", Obj: "file:/x"}); err != nil {
		t.Errorf("released object: %v", err)
	}
}

func TestGoalVectorsToGuardAndCaches(t *testing.T) {
	k := bootKernel(t)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })

	goal := nal.MustParse("?S says wantsAccess")
	if err := k.SetGoal(srv, "read", "obj", goal, allowAllGuard{}); err != nil {
		t.Fatal(err)
	}
	before := k.GuardUpcalls()
	for i := 0; i < 10; i++ {
		if _, err := k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"}); err != nil {
			t.Fatal(err)
		}
	}
	upcalls := k.GuardUpcalls() - before
	if upcalls != 1 {
		t.Errorf("guard upcalls = %d, want 1 (decision cached)", upcalls)
	}
	// setgoal invalidates: next call upcalls again.
	if err := k.SetGoal(srv, "read", "obj", goal, allowAllGuard{}); err != nil {
		t.Fatal(err)
	}
	k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"})
	if k.GuardUpcalls()-before != 2 {
		t.Error("setgoal must invalidate cached decisions")
	}
	// Disabled cache: every call upcalls.
	k.DCache().Disable()
	base := k.GuardUpcalls()
	for i := 0; i < 5; i++ {
		k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"})
	}
	if k.GuardUpcalls()-base != 5 {
		t.Errorf("disabled cache: upcalls = %d, want 5", k.GuardUpcalls()-base)
	}
}

func TestTrueGoalShortCircuits(t *testing.T) {
	k := bootKernel(t)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })
	if err := k.SetGoal(srv, "read", "obj", nal.TrueF{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"}); err != nil {
		t.Errorf("true goal: %v", err)
	}
	if k.GuardUpcalls() != 0 {
		t.Error("true goal must not upcall")
	}
}

func TestNoGuardConfigured(t *testing.T) {
	k := bootKernel(t)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	pt, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })
	if err := k.SetGoal(srv, "read", "obj", nal.MustParse("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(cli, pt.ID, &Msg{Op: "read", Obj: "obj"}); !errors.Is(err, ErrNoGuard) {
		t.Errorf("want ErrNoGuard, got %v", err)
	}
}

func TestAuthorityLiveAnswers(t *testing.T) {
	k := bootKernel(t)
	ap, _ := k.CreateProcess(0, []byte("clock"))
	deadlinePassed := false
	a, err := k.RegisterAuthority(ap, func(f nal.Formula) bool {
		// Subscribe to a single statement family, like the system clock
		// service of §2.7.
		return !deadlinePassed && f.String() == "TimeNow < @2026-03-19"
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := k.QueryAuthority(a.Channel(), nal.MustParse("TimeNow < @2026-03-19"))
	if err != nil || !ok {
		t.Errorf("live query = %v, %v", ok, err)
	}
	deadlinePassed = true
	ok, _ = k.QueryAuthority(a.Channel(), nal.MustParse("TimeNow < @2026-03-19"))
	if ok {
		t.Error("authority must read fresh state")
	}
	if _, err := k.QueryAuthority("ipc:999", nal.TrueF{}); !errors.Is(err, ErrNoSuchAuthority) {
		t.Errorf("want ErrNoSuchAuthority, got %v", err)
	}
}

func TestIntrospectionNamespace(t *testing.T) {
	k := bootKernel(t)
	k.CreateProcess(0, []byte("a"))
	v, _, ok := k.Introsp.Read("/proc/kernel/nprocs")
	if !ok || v != "1" {
		t.Errorf("nprocs = %q, %v", v, ok)
	}
	paths := k.Introsp.List("/proc/kernel/")
	if len(paths) < 4 {
		t.Errorf("kernel namespace too small: %v", paths)
	}
	if lbl, ok := k.Introsp.Label("/proc/kernel/bootid"); !ok || lbl == nil {
		t.Error("introspection label missing")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m := &Msg{Op: "write", Obj: "file:/x", Args: [][]byte{[]byte("data"), nil, []byte{0, 1, 2}}}
	back, err := unmarshalMsg(marshalMsg(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Op != m.Op || back.Obj != m.Obj || len(back.Args) != 2 {
		// nil arg marshals as empty and merges; accept >= 2 segments with
		// matching payloads.
		if len(back.Args) != 3 {
			t.Errorf("round trip = %+v", back)
		}
	}
}

package cert

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"sync"
	"testing"
	"time"

	"repro/internal/nal"
)

// fuzzKey is the one RSA key shared by every fuzz execution: key generation
// dominates signing by orders of magnitude and the codec under test never
// looks inside the key.
var fuzzKey = sync.OnceValue(func() *rsa.PrivateKey {
	k, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		panic(err)
	}
	return k
})

// fuzzEdKey is the Ed25519 counterpart (the node-key algorithm).
var fuzzEdKey = sync.OnceValue(func() ed25519.PrivateKey {
	_, k, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		panic(err)
	}
	return k
})

func TestCertWireRoundTrip(t *testing.T) {
	c, err := Sign(Statement{
		Speaker: "key:ab12.boot0.ipd.3",
		Formula: "mayArchive(alice)",
		Serial:  7,
		Issued:  time.Unix(1700000000, 0),
	}, fuzzKey())
	if err != nil {
		t.Fatal(err)
	}
	buf := c.AppendWire(nil)
	got, n, err := DecodeCertWire(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v (consumed %d/%d)", err, n, len(buf))
	}
	if got.Fingerprint() != c.Fingerprint() {
		t.Fatal("wire round-trip changed the certificate fingerprint")
	}
	if _, err := got.Verify(); err != nil {
		t.Fatalf("decoded certificate no longer verifies: %v", err)
	}
	// Truncations fail cleanly.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeCertWire(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

// FuzzWireCredential is the differential round-trip fuzzer of the
// credential wire form against the text parser: for any speaker/formula
// pair the NAL parser accepts, a signed certificate — under each signature
// algorithm the plane speaks, RSA (TPM endorsements) and Ed25519 (node and
// label signatures) — must round-trip through the wire codec to a
// byte-identical artifact whose verified label equals the original's.
// Arbitrary bytes through the decoder must fail without panicking.
func FuzzWireCredential(f *testing.F) {
	f.Add("kernel.ipd.3", "mayArchive(alice)", []byte{})
	f.Add("", "key:ab12 speaksfor bob on wall", []byte{})
	f.Add("a.b", `posted("hi") and TimeNow < @2026-03-19`, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, speaker, formula string, raw []byte) {
		// Decoder robustness on arbitrary bytes.
		if c, n, err := DecodeCertWire(raw); err == nil {
			if n > len(raw) {
				t.Fatalf("decoder consumed %d of %d bytes", n, len(raw))
			}
			c.Verify() // must not panic; failure expected
		}

		if len(speaker)+len(formula) > 1<<10 {
			return
		}
		if _, err := nal.Parse(formula); err != nil {
			return
		}
		if speaker != "" {
			if _, err := nal.ParsePrincipal(speaker); err != nil {
				return
			}
		}
		stmt := Statement{Speaker: speaker, Formula: formula, Serial: 1,
			Issued: time.Unix(1700000000, 0)}
		rsaCert, err := Sign(stmt, fuzzKey())
		if err != nil {
			// The canonical reprint of a parseable formula can still be
			// rejected at signing (e.g. unprintable predicate names); the
			// codec never sees it.
			return
		}
		edCert, err := SignEd25519(stmt, fuzzEdKey())
		if err != nil {
			t.Fatalf("Ed25519 rejected a statement RSA signed: %v", err)
		}
		for _, c := range []*Certificate{rsaCert, edCert} {
			wantLabel, err := c.ToLabel()
			if err != nil {
				return
			}
			buf := c.AppendWire(nil)
			got, n, err := DecodeCertWire(buf)
			if err != nil {
				t.Fatalf("decode failed: %v", err)
			}
			if n != len(buf) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
			}
			if got.Fingerprint() != c.Fingerprint() {
				t.Fatal("round-trip changed the fingerprint")
			}
			gotLabel, err := got.ToLabel()
			if err != nil {
				t.Fatalf("decoded certificate does not verify: %v", err)
			}
			if !gotLabel.Equal(wantLabel) {
				t.Fatalf("wire round-trip changed the label: %v vs %v", gotLabel, wantLabel)
			}
		}
		// Algorithm dispatch is structural (the two public-key encodings are
		// mutually unparseable), so a signature cannot verify under the
		// wrong algorithm even with the keys swapped in the wire form.
		cross := *edCert
		cross.SignerKey = rsaCert.SignerKey
		if _, err := cross.Verify(); err == nil {
			t.Fatal("Ed25519 signature verified under an RSA signer key")
		}
	})
}

package cert

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/nal"
	"repro/internal/tpm"
)

func key(t *testing.T) *rsa.PrivateKey {
	t.Helper()
	k, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSignVerifyRoundTrip(t *testing.T) {
	k := key(t)
	stmt := Statement{
		Speaker: "nexus.labelstore.ipd.12",
		Formula: "isTypeSafe(hash:ab12)",
		Serial:  7,
		Issued:  time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC),
	}
	c, err := Sign(stmt, k)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if fp != tpm.Fingerprint(&k.PublicKey) {
		t.Errorf("fingerprint mismatch: %s", fp)
	}
	back, err := c.Statement()
	if err != nil {
		t.Fatal(err)
	}
	if back.Speaker != stmt.Speaker || back.Formula != stmt.Formula || back.Serial != stmt.Serial {
		t.Errorf("statement round trip changed: %+v", back)
	}
	if !back.Issued.Equal(stmt.Issued) {
		t.Errorf("issued time changed: %v", back.Issued)
	}
	if err := c.VerifyAgainst(&k.PublicKey); err != nil {
		t.Errorf("VerifyAgainst: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	k := key(t)
	c, err := Sign(Statement{Formula: "ok", Serial: 1, Issued: time.Now()}, k)
	if err != nil {
		t.Fatal(err)
	}
	c.RawTBS[len(c.RawTBS)-1] ^= 0x01
	if _, err := c.Verify(); !errors.Is(err, ErrBadSignature) {
		t.Errorf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyAgainstWrongKey(t *testing.T) {
	k1, k2 := key(t), key(t)
	c, err := Sign(Statement{Formula: "ok", Issued: time.Now()}, k1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAgainst(&k2.PublicKey); !errors.Is(err, ErrWrongKey) {
		t.Errorf("want ErrWrongKey, got %v", err)
	}
}

func TestSignRejectsBadFormula(t *testing.T) {
	if _, err := Sign(Statement{Formula: "((("}, key(t)); err == nil {
		t.Error("unparseable formula must be rejected")
	}
}

func TestToLabel(t *testing.T) {
	k := key(t)
	fp := tpm.Fingerprint(&k.PublicKey)
	c, err := Sign(Statement{
		Speaker: "nexus.ipd.12",
		Formula: "openFile(\"/dir/file\")",
		Issued:  time.Now(),
	}, k)
	if err != nil {
		t.Fatal(err)
	}
	label, err := c.ToLabel()
	if err != nil {
		t.Fatal(err)
	}
	want := nal.MustParse("key:" + fp + " says nexus.ipd.12 says openFile(\"/dir/file\")")
	if !label.Equal(want) {
		t.Errorf("ToLabel = %q, want %q", label, want)
	}

	// Empty speaker: signer speaks directly.
	c2, _ := Sign(Statement{Formula: "ok", Issued: time.Now()}, k)
	l2, err := c2.ToLabel()
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Equal(nal.MustParse("key:" + fp + " says ok")) {
		t.Errorf("ToLabel = %q", l2)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	k := key(t)
	c, err := Sign(Statement{Speaker: "a.b", Formula: "x and y", Serial: 3, Issued: time.Now()}, k)
	if err != nil {
		t.Fatal(err)
	}
	der, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Unmarshal(der)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Verify(); err != nil {
		t.Errorf("verify after round trip: %v", err)
	}
	if _, err := Unmarshal(der[:len(der)-2]); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated DER: want ErrMalformed, got %v", err)
	}
	if _, err := Unmarshal(append(der, 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing DER: want ErrMalformed, got %v", err)
	}
}

func TestQuickSerialAndFormulaSurvive(t *testing.T) {
	k := key(t)
	preds := []string{"a", "b", "ready", "safe(x)", "p(1, 2)"}
	prop := func(serial int64, pi uint8) bool {
		formula := preds[int(pi)%len(preds)]
		c, err := Sign(Statement{Formula: formula, Serial: serial, Issued: time.Now()}, k)
		if err != nil {
			return false
		}
		der, err := c.Marshal()
		if err != nil {
			return false
		}
		c2, err := Unmarshal(der)
		if err != nil {
			return false
		}
		st, err := c2.Statement()
		return err == nil && st.Serial == serial && st.Formula == formula
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

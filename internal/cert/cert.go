// Package cert implements the externalized, X.509-style credential format of
// §2.4: a label "P says S" serialized with ASN.1 DER and signed by the
// issuer. Certificates make labels transferable beyond the secure system
// channels of a single Nexus instance.
//
// Two signature algorithms coexist. RSA PKCS#1 v1.5 is what TPM endorsement
// hierarchies speak, so endorsement certificates (EK-signed) stay RSA.
// Everything minted at runtime — node and label signatures — uses Ed25519,
// which signs ~100x faster at the same security level. The two are
// distinguished structurally by the embedded SignerKey encoding (both are
// DER SEQUENCEs, but with incompatible field tags), so the wire format
// carries no separate algorithm identifier to forge.
//
// Verification is uniform with the logic: a certificate whose signature
// checks out against a public key with fingerprint f becomes the NAL label
// "key:f says S" (with S itself usually of the nested form "kernel says
// labelstore says process says ..."), which proofs then connect to named
// principals via speaksfor credentials.
package cert

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/asn1"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/nal"
	"repro/internal/tpm"
)

// Errors returned by certificate operations.
var (
	ErrBadSignature = errors.New("cert: signature verification failed")
	ErrMalformed    = errors.New("cert: malformed certificate")
	ErrWrongKey     = errors.New("cert: certificate names a different signer")
)

// Statement is the to-be-signed content of a certificate.
type Statement struct {
	// Speaker is the textual NAL principal the formula is attributed to.
	// The signer must be entitled to speak for it; verifiers enforce this
	// by constructing the label "key:signer says Formula" and proving the
	// attribution in NAL.
	Speaker string
	// Formula is the NAL formula text.
	Formula string
	// Serial distinguishes certificates from the same issuer.
	Serial int64
	// Issued records creation time. Labels are valid indefinitely (§2.7);
	// statements that can expire must be routed through authorities, so
	// there is deliberately no NotAfter.
	Issued time.Time
}

// Certificate is a signed statement. The signer's public key travels with
// the certificate so verification is self-contained; trust is decided by
// comparing the key's fingerprint against known principals.
type Certificate struct {
	RawTBS    []byte // DER-encoded Statement
	SignerKey []byte // DER public key of the signer (rsaPub or edPub form)
	Sig       []byte // RSA PKCS#1v1.5 over SHA-256(RawTBS), or Ed25519 over RawTBS
}

// certSeq is the DER wire form of a Certificate.
type certSeq struct {
	RawTBS    []byte
	SignerKey []byte
	Sig       []byte
}

// stmtSeq is the DER wire form of a Statement.
type stmtSeq struct {
	Speaker string
	Formula string
	Serial  int64
	Issued  time.Time `asn1:"generalized"`
}

// Sign creates a certificate over stmt with the given RSA key.
func Sign(stmt Statement, key *rsa.PrivateKey) (*Certificate, error) {
	return SignExternal(stmt, &key.PublicKey, func(digest [32]byte) ([]byte, error) {
		return rsa.SignPKCS1v15(rand.Reader, key, crypto.SHA256, digest[:])
	})
}

type rsaPub struct {
	N *big.Int
	E int
}

// edPub is the DER wire form of an Ed25519 signer key. Its single field is
// an OCTET STRING where rsaPub leads with an INTEGER, so the two encodings
// reject each other under asn1.Unmarshal and the certificate needs no
// algorithm tag.
type edPub struct {
	Key []byte
}

// FingerprintEd25519 names an Ed25519 public key the way tpm.Fingerprint
// names an RSA one: a truncated hex SHA-256, domain-separated so an Ed25519
// key can never collide with an RSA fingerprint by construction.
func FingerprintEd25519(pub ed25519.PublicKey) string {
	h := sha256.New()
	h.Write([]byte("nexus-ed25519-key\x00"))
	h.Write(pub)
	var sum [sha256.Size]byte
	return hex.EncodeToString(h.Sum(sum[:0])[:20])
}

// SignEd25519 creates a certificate over stmt signed with an Ed25519 key.
// Ed25519 signs the full TBS message (the scheme is deterministic and
// collision-resilient without pre-hashing).
func SignEd25519(stmt Statement, key ed25519.PrivateKey) (*Certificate, error) {
	if _, err := nal.Parse(stmt.Formula); err != nil {
		return nil, fmt.Errorf("cert: refusing to sign unparseable formula: %w", err)
	}
	tbs, err := asn1.Marshal(stmtSeq{
		Speaker: stmt.Speaker,
		Formula: stmt.Formula,
		Serial:  stmt.Serial,
		Issued:  stmt.Issued.UTC().Truncate(time.Second),
	})
	if err != nil {
		return nil, fmt.Errorf("cert: encoding statement: %w", err)
	}
	pubDER, err := asn1.Marshal(edPub{Key: key.Public().(ed25519.PublicKey)})
	if err != nil {
		return nil, fmt.Errorf("cert: encoding public key: %w", err)
	}
	return &Certificate{RawTBS: tbs, SignerKey: pubDER, Sig: ed25519.Sign(key, tbs)}, nil
}

// SignExternal creates a certificate whose signature is produced by an
// external signer (such as a TPM holding the private key): sign is called
// with the SHA-256 digest of the TBS bytes and must return a PKCS#1 v1.5
// signature by the private half of pub.
func SignExternal(stmt Statement, pub *rsa.PublicKey, sign func(digest [32]byte) ([]byte, error)) (*Certificate, error) {
	if _, err := nal.Parse(stmt.Formula); err != nil {
		return nil, fmt.Errorf("cert: refusing to sign unparseable formula: %w", err)
	}
	tbs, err := asn1.Marshal(stmtSeq{
		Speaker: stmt.Speaker,
		Formula: stmt.Formula,
		Serial:  stmt.Serial,
		Issued:  stmt.Issued.UTC().Truncate(time.Second),
	})
	if err != nil {
		return nil, fmt.Errorf("cert: encoding statement: %w", err)
	}
	sig, err := sign(sha256.Sum256(tbs))
	if err != nil {
		return nil, fmt.Errorf("cert: external signer: %w", err)
	}
	pubDER, err := asn1.Marshal(rsaPub{N: pub.N, E: pub.E})
	if err != nil {
		return nil, fmt.Errorf("cert: encoding public key: %w", err)
	}
	return &Certificate{RawTBS: tbs, SignerKey: pubDER, Sig: sig}, nil
}

// Statement decodes the signed content.
func (c *Certificate) Statement() (Statement, error) {
	var s stmtSeq
	if rest, err := asn1.Unmarshal(c.RawTBS, &s); err != nil || len(rest) != 0 {
		return Statement{}, ErrMalformed
	}
	return Statement{Speaker: s.Speaker, Formula: s.Formula, Serial: s.Serial, Issued: s.Issued}, nil
}

// SignerPublic returns the embedded signer public key when it is RSA.
// Ed25519 certificates return ErrMalformed here; algorithm-agnostic callers
// should use Signer.
func (c *Certificate) SignerPublic() (*rsa.PublicKey, error) {
	var p rsaPub
	if rest, err := asn1.Unmarshal(c.SignerKey, &p); err != nil || len(rest) != 0 {
		return nil, ErrMalformed
	}
	return &rsa.PublicKey{N: p.N, E: p.E}, nil
}

// Signer decodes the embedded signer key of either algorithm, returning the
// public key (*rsa.PublicKey or ed25519.PublicKey) and its fingerprint.
func (c *Certificate) Signer() (crypto.PublicKey, string, error) {
	var r rsaPub
	if rest, err := asn1.Unmarshal(c.SignerKey, &r); err == nil && len(rest) == 0 {
		if r.N == nil || r.N.Sign() <= 0 || r.E <= 0 {
			return nil, "", ErrMalformed
		}
		pub := &rsa.PublicKey{N: r.N, E: r.E}
		return pub, tpm.Fingerprint(pub), nil
	}
	var e edPub
	if rest, err := asn1.Unmarshal(c.SignerKey, &e); err == nil && len(rest) == 0 {
		if len(e.Key) != ed25519.PublicKeySize {
			return nil, "", ErrMalformed
		}
		pub := ed25519.PublicKey(e.Key)
		return pub, FingerprintEd25519(pub), nil
	}
	return nil, "", ErrMalformed
}

// Verify checks the signature against the embedded key and returns the
// signer's fingerprint. The algorithm is selected by the structurally
// unambiguous SignerKey encoding.
func (c *Certificate) Verify() (string, error) {
	pub, fp, err := c.Signer()
	if err != nil {
		return "", err
	}
	switch k := pub.(type) {
	case *rsa.PublicKey:
		digest := sha256.Sum256(c.RawTBS)
		if err := rsa.VerifyPKCS1v15(k, crypto.SHA256, digest[:], c.Sig); err != nil {
			return "", ErrBadSignature
		}
	case ed25519.PublicKey:
		if !ed25519.Verify(k, c.RawTBS, c.Sig) {
			return "", ErrBadSignature
		}
	default:
		return "", ErrMalformed
	}
	return fp, nil
}

// VerifyAgainst checks the signature and additionally requires the signer to
// be the given key.
func (c *Certificate) VerifyAgainst(pub *rsa.PublicKey) error {
	id, err := c.Verify()
	if err != nil {
		return err
	}
	if id != tpm.Fingerprint(pub) {
		return ErrWrongKey
	}
	return nil
}

// ToLabel verifies the certificate and converts it into the NAL label
// "key:<signer-fingerprint> says (<speaker> says <formula>)", the form a
// guard imports into a proof environment. If the statement's Speaker is
// empty the signer speaks directly: "key:<fp> says <formula>".
func (c *Certificate) ToLabel() (nal.Formula, error) {
	fp, err := c.Verify()
	if err != nil {
		return nil, err
	}
	st, err := c.Statement()
	if err != nil {
		return nil, err
	}
	body, err := nal.Parse(st.Formula)
	if err != nil {
		return nil, fmt.Errorf("cert: %w: bad formula: %v", ErrMalformed, err)
	}
	if st.Speaker != "" {
		sp, err := nal.ParsePrincipal(st.Speaker)
		if err != nil {
			return nil, fmt.Errorf("cert: %w: bad speaker: %v", ErrMalformed, err)
		}
		body = nal.Says{P: sp, F: body}
	}
	return nal.Says{P: nal.Key(fp), F: body}, nil
}

// Marshal encodes the certificate to DER.
func (c *Certificate) Marshal() ([]byte, error) {
	return asn1.Marshal(certSeq{RawTBS: c.RawTBS, SignerKey: c.SignerKey, Sig: c.Sig})
}

// Unmarshal decodes a DER certificate.
func Unmarshal(der []byte) (*Certificate, error) {
	var s certSeq
	if rest, err := asn1.Unmarshal(der, &s); err != nil || len(rest) != 0 {
		return nil, ErrMalformed
	}
	return &Certificate{RawTBS: s.RawTBS, SignerKey: s.SignerKey, Sig: s.Sig}, nil
}

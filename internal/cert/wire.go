package cert

import (
	"encoding/binary"
	"errors"
)

// Wire framing for credentials. A certificate's three fields (DER TBS,
// signer key, signature) are length-prefixed with varints, so a credential
// crosses a transport connection as one self-delimiting blob that decodes
// without touching ASN.1 until verification. Transports deduplicate resends
// by fingerprint at their layer (a certificate already presented on a
// connection is referenced, not re-shipped); this codec only frames bytes.

// ErrWireMalformed reports a syntactically invalid certificate wire form.
var ErrWireMalformed = errors.New("cert: malformed wire certificate")

// maxWireField bounds one field of a wire certificate; real certificates
// are under a kilobyte, so this is generous while keeping a hostile length
// prefix from forcing a huge allocation.
const maxWireField = 1 << 20

// AppendWire appends the certificate's wire form to dst.
func (c *Certificate) AppendWire(dst []byte) []byte {
	for _, f := range [][]byte{c.RawTBS, c.SignerKey, c.Sig} {
		dst = binary.AppendUvarint(dst, uint64(len(f)))
		dst = append(dst, f...)
	}
	return dst
}

// DecodeCertWire decodes one wire certificate from the front of buf,
// returning it and the number of bytes consumed. The fields are copied, so
// the certificate does not alias buf.
func DecodeCertWire(buf []byte) (*Certificate, int, error) {
	off := 0
	fields := make([][]byte, 3)
	for i := range fields {
		n, vn := binary.Uvarint(buf[off:])
		if vn <= 0 || n > maxWireField || n > uint64(len(buf)-off-vn) {
			return nil, 0, ErrWireMalformed
		}
		off += vn
		fields[i] = append([]byte(nil), buf[off:off+int(n)]...)
		off += int(n)
	}
	return &Certificate{RawTBS: fields[0], SignerKey: fields[1], Sig: fields[2]}, off, nil
}

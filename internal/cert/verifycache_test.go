package cert

import (
	"crypto/rand"
	"crypto/rsa"
	"testing"
	"time"

	"repro/internal/nal"
)

func testCert(t *testing.T, key *rsa.PrivateKey, formula string, serial int64) *Certificate {
	t.Helper()
	c, err := Sign(Statement{
		Speaker: "alice",
		Formula: formula,
		Serial:  serial,
		Issued:  time.Unix(1700000000, 0),
	}, key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVerifyCacheHit(t *testing.T) {
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	c := testCert(t, key, "wantsAccess(\"obj\")", 1)
	vc := NewVerifyCache()

	l1, id1, err := vc.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ToLabel()
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Equal(want) {
		t.Errorf("cached label %q, ToLabel %q", l1, want)
	}
	l2, id2, err := vc.Label(c)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Equal(l1) || id1 != id2 || id1 == 0 {
		t.Errorf("second lookup returned %q/%d, want %q/%d", l2, id2, l1, id1)
	}
	s := vc.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v, want 1 hit 1 miss", s)
	}
	if fid, ok := nal.IDOf(want); !ok || fid != id1 {
		t.Errorf("cached label ID %d does not match IDOf %d", id1, fid)
	}
}

func TestVerifyCacheRejectsBadSignature(t *testing.T) {
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	c := testCert(t, key, "p", 1)
	c.Sig[0] ^= 0xff
	vc := NewVerifyCache()
	if _, _, err := vc.Label(c); err == nil {
		t.Fatal("tampered certificate accepted")
	}
	// Tampering changes the fingerprint, so the original still verifies.
	c.Sig[0] ^= 0xff
	if _, _, err := vc.Label(c); err != nil {
		t.Fatalf("untampered certificate rejected: %v", err)
	}
}

func TestVerifyCacheRevoke(t *testing.T) {
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	c := testCert(t, key, "p", 1)
	vc := NewVerifyCache()
	if _, _, err := vc.Label(c); err != nil {
		t.Fatal(err)
	}
	vc.Revoke(c.Fingerprint())
	if _, _, err := vc.Label(c); err != ErrRevoked {
		t.Fatalf("revoked certificate: got %v, want ErrRevoked", err)
	}
	if vc.Len() != 0 {
		t.Errorf("revoked entry still cached (len %d)", vc.Len())
	}
	// Revocation also blocks a cold path (never-cached certificate).
	c2 := testCert(t, key, "p", 2)
	vc.Revoke(c2.Fingerprint())
	if _, _, err := vc.Label(c2); err != ErrRevoked {
		t.Fatalf("pre-revoked certificate: got %v, want ErrRevoked", err)
	}
}

func TestVerifyCacheRevokeSigner(t *testing.T) {
	keyA, _ := rsa.GenerateKey(rand.Reader, 1024)
	keyB, _ := rsa.GenerateKey(rand.Reader, 1024)
	vc := NewVerifyCache()
	a1 := testCert(t, keyA, "p", 1)
	a2 := testCert(t, keyA, "q", 2)
	b1 := testCert(t, keyB, "r", 3)
	for _, c := range []*Certificate{a1, a2, b1} {
		if _, _, err := vc.Label(c); err != nil {
			t.Fatal(err)
		}
	}
	fpA, err := a1.Verify()
	if err != nil {
		t.Fatal(err)
	}
	vc.RevokeSigner(fpA)
	if _, _, err := vc.Label(a1); err != ErrRevoked {
		t.Errorf("a1 after signer revocation: %v, want ErrRevoked", err)
	}
	if _, _, err := vc.Label(a2); err != ErrRevoked {
		t.Errorf("a2 after signer revocation: %v, want ErrRevoked", err)
	}
	if _, _, err := vc.Label(b1); err != nil {
		t.Errorf("unrelated signer's certificate rejected: %v", err)
	}
	if vc.Len() != 1 {
		t.Errorf("cache holds %d entries after signer revocation, want 1", vc.Len())
	}
}

func TestVerifyCacheEviction(t *testing.T) {
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	vc := NewVerifyCache()
	// All serials land in one shard only probabilistically; just overfill
	// the whole cache and assert the global bound.
	for i := 0; i < verifyShards*verifyShardCap+64; i++ {
		c := testCert(t, key, "p", int64(i))
		if _, _, err := vc.Label(c); err != nil {
			t.Fatal(err)
		}
	}
	if max := verifyShards * verifyShardCap; vc.Len() > max {
		t.Errorf("cache holds %d entries, cap %d", vc.Len(), max)
	}
	s := vc.Stats()
	if s.Evictions == 0 {
		t.Error("overfilled cache reported no evictions")
	}
}

// Credential pre-verification: a certificate's RSA signature check and
// says-extraction cost tens of microseconds — three orders of magnitude
// above a warm authorization decision (Figure 6's "cred key" row). A
// VerifyCache performs that work once per distinct certificate and serves
// every later presentation as a fingerprint lookup, so guards that receive
// certificate credentials stay on the fast path.
//
// Revocation: labels are indefinitely valid in the logic (§2.7), but an
// operator can revoke a certificate (or every certificate by a signer) at
// the cache: the entry is dropped, the fingerprint blacklisted, and every
// subsequent Label call fails with ErrRevoked. Guards treat certificate
// credentials as dynamic state (decisions are not kernel-cacheable), so a
// revocation takes effect on the very next authorization check.
package cert

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"

	"repro/internal/cachestat"
	"repro/internal/nal"
)

// ErrRevoked reports a certificate rejected by revocation, either of the
// certificate itself or of its signing key.
var ErrRevoked = errors.New("cert: certificate revoked")

// Fingerprint returns the hex SHA-256 over the certificate's wire fields,
// identifying this exact signed artifact (statement, signer, signature).
func (c *Certificate) Fingerprint() string {
	h := sha256.New()
	h.Write(c.RawTBS)
	h.Write([]byte{0})
	h.Write(c.SignerKey)
	h.Write([]byte{0})
	h.Write(c.Sig)
	return hex.EncodeToString(h.Sum(nil))
}

// VerifyCache memoizes certificate verification by fingerprint. All methods
// are safe for concurrent use.
type VerifyCache struct {
	shards [verifyShards]vcShard

	revMu          sync.RWMutex
	revokedCerts   map[string]struct{}
	revokedSigners map[string]struct{}

	stats cachestat.Counters
}

const (
	verifyShards = 16
	// verifyShardCap bounds entries per shard (FIFO eviction); an evicted
	// certificate simply re-verifies on next use.
	verifyShardCap = 256
)

type vcShard struct {
	mu    sync.RWMutex
	m     map[string]vcEntry
	order []string
}

// vcEntry is one pre-verified certificate: the NAL label it denotes, the
// label's hash-cons handle (0 if the table was saturated), and the signer
// fingerprint for signer-wide revocation.
type vcEntry struct {
	label   nal.Formula
	labelID nal.FormulaID
	signer  string
}

// NewVerifyCache creates an empty cache.
func NewVerifyCache() *VerifyCache {
	vc := &VerifyCache{
		revokedCerts:   map[string]struct{}{},
		revokedSigners: map[string]struct{}{},
	}
	for i := range vc.shards {
		vc.shards[i].m = map[string]vcEntry{}
	}
	return vc
}

func (vc *VerifyCache) shard(fp string) *vcShard {
	return &vc.shards[nal.HashString(fp)&(verifyShards-1)]
}

// Label verifies the certificate — via the cache when possible — and
// returns the NAL label it denotes ("key:<signer> says ..."), together with
// the label's hash-cons handle (0 when unavailable). Revoked certificates
// fail with ErrRevoked whether or not they were previously cached.
func (vc *VerifyCache) Label(c *Certificate) (nal.Formula, nal.FormulaID, error) {
	fp := c.Fingerprint()
	sh := vc.shard(fp)
	sh.mu.RLock()
	e, hit := sh.m[fp]
	sh.mu.RUnlock()

	if hit {
		if vc.revoked(fp, e.signer) {
			vc.stats.Lookup(false)
			return nil, 0, ErrRevoked
		}
		vc.stats.Lookup(true)
		return e.label, e.labelID, nil
	}
	vc.stats.Lookup(false)

	signer, err := c.Verify()
	if err != nil {
		return nil, 0, err
	}
	if vc.revoked(fp, signer) {
		return nil, 0, ErrRevoked
	}
	label, err := c.ToLabel()
	if err != nil {
		return nil, 0, err
	}
	id, _ := nal.IDOf(label) // 0 at cons saturation; callers handle it
	sh.mu.Lock()
	if _, ok := sh.m[fp]; !ok {
		if len(sh.order) >= verifyShardCap {
			delete(sh.m, sh.order[0])
			sh.order = sh.order[1:]
			vc.stats.Evicted(1)
		}
		sh.m[fp] = vcEntry{label: label, labelID: id, signer: signer}
		sh.order = append(sh.order, fp)
	}
	sh.mu.Unlock()
	return label, id, nil
}

// Revoked reports whether the certificate fingerprint, or its signer's key
// fingerprint, has been blacklisted. Fast paths that skip re-verification
// (per-connection re-attestation tables) consult this so a revocation still
// takes effect on the next crossing.
func (vc *VerifyCache) Revoked(certFP, signerFP string) bool {
	return vc.revoked(certFP, signerFP)
}

func (vc *VerifyCache) revoked(certFP, signerFP string) bool {
	vc.revMu.RLock()
	defer vc.revMu.RUnlock()
	if _, ok := vc.revokedCerts[certFP]; ok {
		return true
	}
	_, ok := vc.revokedSigners[signerFP]
	return ok
}

// Revoke blacklists one certificate by fingerprint and drops its cached
// verification. Idempotent.
func (vc *VerifyCache) Revoke(certFP string) {
	vc.revMu.Lock()
	vc.revokedCerts[certFP] = struct{}{}
	vc.revMu.Unlock()
	sh := vc.shard(certFP)
	sh.mu.Lock()
	if _, ok := sh.m[certFP]; ok {
		delete(sh.m, certFP)
		for i, k := range sh.order {
			if k == certFP {
				sh.order = append(sh.order[:i:i], sh.order[i+1:]...)
				break
			}
		}
		vc.stats.Evicted(1)
	}
	sh.mu.Unlock()
}

// RevokeSigner blacklists every certificate signed by the key with the
// given fingerprint and drops all cached entries by that signer.
func (vc *VerifyCache) RevokeSigner(signerFP string) {
	vc.revMu.Lock()
	vc.revokedSigners[signerFP] = struct{}{}
	vc.revMu.Unlock()
	for i := range vc.shards {
		sh := &vc.shards[i]
		sh.mu.Lock()
		kept := sh.order[:0]
		dropped := 0
		for _, k := range sh.order {
			if e, ok := sh.m[k]; ok && e.signer == signerFP {
				delete(sh.m, k)
				dropped++
				continue
			}
			kept = append(kept, k)
		}
		sh.order = kept
		sh.mu.Unlock()
		if dropped > 0 {
			vc.stats.Evicted(uint64(dropped))
		}
	}
}

// Len reports the number of cached verifications.
func (vc *VerifyCache) Len() int {
	n := 0
	for i := range vc.shards {
		sh := &vc.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats reports lookups, hits, misses, and evictions in the shape shared
// with the guard and kernel caches.
func (vc *VerifyCache) Stats() cachestat.Stats { return vc.stats.Snapshot() }

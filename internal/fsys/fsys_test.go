package fsys

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

func newFS(t *testing.T) (*kernel.Kernel, *Server, *Client, *kernel.Session) {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.SetGuard(guard.New(k))
	s, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	app, err := k.NewSession([]byte("app"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.ClientFor(app)
	if err != nil {
		t.Fatal(err)
	}
	return k, s, c, app
}

func TestCreateOpenReadWriteClose(t *testing.T) {
	_, _, c, _ := newFS(t)
	if err := c.Create("/hello"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/hello"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: want ErrExists, got %v", err)
	}
	fd, err := c.Open("/hello")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Write(fd, []byte("world"))
	if err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	fd2, _ := c.Open("/hello")
	data, err := c.Read(fd2, 100)
	if err != nil || !bytes.Equal(data, []byte("world")) {
		t.Errorf("Read = %q, %v", data, err)
	}
	// Sequential reads advance the offset.
	more, _ := c.Read(fd2, 100)
	if len(more) != 0 {
		t.Errorf("read past EOF = %q", more)
	}
	c.Close(fd2)
	if _, err := c.Read(fd2, 1); !errors.Is(err, ErrBadFD) {
		t.Errorf("closed fd: want ErrBadFD, got %v", err)
	}
	if _, err := c.Open("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestDirectories(t *testing.T) {
	_, _, c, _ := newFS(t)
	if err := c.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/dir/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/dir/b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/nodir/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("create under missing dir: want ErrNotDir, got %v", err)
	}
	names, err := c.List("/dir")
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("List = %v, %v", names, err)
	}
	if _, err := c.Open("/dir"); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir: want ErrIsDir, got %v", err)
	}
	if err := c.Remove("/dir/a"); err != nil {
		t.Fatal(err)
	}
	names, _ = c.List("/dir")
	if len(names) != 1 {
		t.Errorf("after remove: %v", names)
	}
}

func TestWholeFileOps(t *testing.T) {
	_, _, c, _ := newFS(t)
	if err := c.WriteFile("/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadFile("/f")
	if err != nil || string(data) != "v2" {
		t.Errorf("ReadFile = %q, %v", data, err)
	}
}

func TestDescriptorsNotTransferable(t *testing.T) {
	k, s, c, _ := newFS(t)
	c.Create("/f")
	fd, _ := c.Open("/f")
	other, _ := k.NewSession([]byte("other"))
	oc, err := s.ClientFor(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oc.Read(fd, 1); !errors.Is(err, ErrBadFD) {
		t.Errorf("foreign fd: want ErrBadFD, got %v", err)
	}
}

func TestOwnershipGrantDeposited(t *testing.T) {
	_, s, c, p := newFS(t)
	if err := c.Create("/mine"); err != nil {
		t.Fatal(err)
	}
	want := nal.Says{P: s.Prin(), F: nal.SpeaksFor{
		A: p.Prin(), B: nal.SubOf(s.Prin(), "/mine"),
	}}
	found := false
	for _, f := range p.Labels().All() {
		if f.Equal(nal.Formula(want)) {
			found = true
		}
	}
	if !found {
		t.Errorf("ownership grant missing; have %v", p.Labels().All())
	}
}

func TestPerFileGoalFormula(t *testing.T) {
	// The §2.5 scenario: reading /secret requires a safety credential.
	k, s, c, p := newFS(t)
	if err := c.Create("/secret"); err != nil {
		t.Fatal(err)
	}
	certifier, _ := k.NewSession([]byte("safety-certifier"))
	goal := nal.Says{P: certifier.Prin(), F: nal.Pred{Name: "safe", Args: []nal.Term{nal.Var("S")}}}
	// The creator owns the nascent object, so it (not the fileserver) may
	// set goals on it under the default policy (§2.6).
	if err := s.Session().SetGoal("open", "file:/secret", goal, nil); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("non-owner setgoal: want ErrDenied, got %v", err)
	}
	if err := p.SetGoal("open", "file:/secret", goal, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/secret"); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("uncertified open: want ErrDenied, got %v", err)
	}
	// The certifier vouches; the client proves.
	cred := nal.Says{P: certifier.Prin(), F: nal.Pred{Name: "safe", Args: []nal.Term{nal.PrinTerm{P: p.Prin()}}}}
	pf := proof.Assume(0, cred)
	p.SetProof("open", "file:/secret", pf, []kernel.Credential{{Inline: cred}})
	if _, err := c.Open("/secret"); err != nil {
		t.Errorf("certified open: %v", err)
	}
}

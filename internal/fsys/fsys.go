// Package fsys implements the Nexus user-level file service: a RAM-backed
// store reached through kernel IPC, so every file operation pays the
// microkernel communication path that Table 1 measures, and every file and
// directory can carry goal formulas enforced by guards (§2.5, §5.1).
//
// File descriptors are per-client; open/close/read/write mirror the Posix
// subset the paper benchmarks.
package fsys

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Errors returned by the file service.
var (
	ErrNotFound  = errors.New("fsys: no such file")
	ErrExists    = errors.New("fsys: file exists")
	ErrBadFD     = errors.New("fsys: bad file descriptor")
	ErrIsDir     = errors.New("fsys: is a directory")
	ErrNotDir    = errors.New("fsys: not a directory")
	ErrShortArgs = errors.New("fsys: malformed request")
)

// Server is the fileserver process state. It holds the kernel ABI only
// through its Session: the port it serves is named by a capability handle,
// and clients are identified by the Caller values the dispatch pipeline
// delivers.
type Server struct {
	k      *kernel.Kernel
	sess   *kernel.Session
	port   kernel.Cap
	portID int

	mu    sync.Mutex
	files map[string]*file
	fds   map[int]*fd
	next  int
}

type file struct {
	data  []byte
	isDir bool
}

type fd struct {
	path   string
	off    int
	client int // owning PID; descriptors are not transferable
}

// Prin returns the fileserver's principal (FS in the paper's examples).
func (s *Server) Prin() nal.Principal { return s.sess.Prin() }

// PortID returns the public name of the IPC port clients open.
func (s *Server) PortID() int { return s.portID }

// Session returns the fileserver's ABI session.
func (s *Server) Session() *kernel.Session { return s.sess }

// New launches the file service as a user-level process with an IPC port.
func New(k *kernel.Kernel) (*Server, error) {
	sess, err := k.NewSession([]byte("nexus-fileserver"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		k:     k,
		sess:  sess,
		files: map[string]*file{"/": {isDir: true}},
		fds:   map[int]*fd{},
		next:  3,
	}
	port, err := sess.Listen(s.handle)
	if err != nil {
		return nil, err
	}
	s.port = port
	if s.portID, err = sess.PortOf(port); err != nil {
		return nil, err
	}
	k.Introsp.Publish("/proc/fs/nfiles", sess.Prin(), func() string {
		s.mu.Lock()
		defer s.mu.Unlock()
		return fmt.Sprint(len(s.files))
	})
	return s, nil
}

// Client is a session's view of the file service: a channel handle to the
// fileserver port plus the per-batch scratch the bulk entry points reuse.
type Client struct {
	s    *Server
	sess *kernel.Session
	ch   kernel.Cap
}

// ClientFor returns a client bound to the calling session, opening a
// channel to the fileserver port.
func (s *Server) ClientFor(sess *kernel.Session) (*Client, error) {
	ch, err := sess.Open(s.portID)
	if err != nil {
		return nil, err
	}
	return &Client{s: s, sess: sess, ch: ch}, nil
}

// call performs the IPC round trip.
func (c *Client) call(op, path string, args ...[]byte) ([]byte, error) {
	return c.sess.Call(c.ch, &kernel.Msg{Op: op, Obj: "file:" + path, Args: args})
}

// WriteFiles stores many files through one batched submission: the Figure 8
// style bulk path, amortizing per-call dispatch overhead through the
// submission queue. It returns the first per-op error, if any.
func (c *Client) WriteFiles(ctx context.Context, files map[string][]byte) error {
	subs := make([]kernel.Sub, 0, len(files))
	for path, data := range files {
		subs = append(subs, kernel.Sub{
			Cap: c.ch, Op: "writefile", Obj: "file:" + path, Args: [][]byte{data},
		})
	}
	comps, err := c.sess.Submit(ctx, subs, nil)
	if err != nil {
		return err
	}
	for _, cm := range comps {
		if cm.Err != nil {
			return cm.Err
		}
	}
	return nil
}

// Create makes an empty file. The fileserver registers the creator as the
// object owner and deposits the §2.6 ownership label
// "FS says client speaksfor FS.<path>" in the client's labelstore.
func (c *Client) Create(path string) error {
	_, err := c.call("create", path)
	return err
}

// Mkdir makes a directory.
func (c *Client) Mkdir(path string) error {
	_, err := c.call("mkdir", path)
	return err
}

// Open returns a descriptor for an existing file.
func (c *Client) Open(path string) (int, error) {
	out, err := c.call("open", path)
	if err != nil {
		return 0, err
	}
	return parseInt(out)
}

// Close releases a descriptor.
func (c *Client) Close(fdNum int) error {
	_, err := c.call("close", fdPath(fdNum), intArg(fdNum))
	return err
}

// Read reads up to n bytes from the descriptor's offset.
func (c *Client) Read(fdNum, n int) ([]byte, error) {
	return c.call("read", fdPath(fdNum), intArg(fdNum), intArg(n))
}

// Write appends data at the descriptor's offset.
func (c *Client) Write(fdNum int, data []byte) (int, error) {
	out, err := c.call("write", fdPath(fdNum), intArg(fdNum), data)
	if err != nil {
		return 0, err
	}
	return parseInt(out)
}

// ReadFile is a whole-file convenience (open/read/close).
func (c *Client) ReadFile(path string) ([]byte, error) {
	return c.call("readfile", path)
}

// WriteFile replaces a file's contents, creating it if needed.
func (c *Client) WriteFile(path string, data []byte) error {
	_, err := c.call("writefile", path, data)
	return err
}

// List returns the children of a directory.
func (c *Client) List(path string) ([]string, error) {
	out, err := c.call("list", path)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, nil
	}
	return strings.Split(string(out), "\x00"), nil
}

// Remove deletes a file.
func (c *Client) Remove(path string) error {
	_, err := c.call("remove", path)
	return err
}

// fdPath names descriptor objects so goals can target per-file operations:
// read/write goals are set on "file:<path>", and the server maps the fd
// back to its path for enforcement via the kernel goal check on open.
func fdPath(fd int) string { return "fd/" + strconv.Itoa(fd) }

func intArg(n int) []byte { return []byte(strconv.Itoa(n)) }

func parseInt(b []byte) (int, error) {
	n, err := strconv.Atoi(string(b))
	if err != nil {
		return 0, fmt.Errorf("fsys: bad integer reply: %w", err)
	}
	return n, nil
}

// handle is the server-side dispatch.
func (s *Server) handle(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
	path := strings.TrimPrefix(m.Obj, "file:")
	switch m.Op {
	case "create":
		return nil, s.create(from, path, false)
	case "mkdir":
		return nil, s.create(from, path, true)
	case "open":
		return s.open(from, path)
	case "close":
		return nil, s.close(from, m)
	case "read":
		return s.read(from, m)
	case "write":
		return s.write(from, m)
	case "readfile":
		return s.readFile(path)
	case "writefile":
		if len(m.Args) != 1 {
			return nil, ErrShortArgs
		}
		return nil, s.writeFile(from, path, m.Args[0])
	case "list":
		return s.list(path)
	case "remove":
		return nil, s.remove(path)
	}
	return nil, fmt.Errorf("fsys: unknown operation %q", m.Op)
}

func parent(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

func (s *Server) create(from kernel.Caller, path string, isDir bool) error {
	s.mu.Lock()
	if _, ok := s.files[path]; ok {
		s.mu.Unlock()
		return ErrExists
	}
	p, ok := s.files[parent(path)]
	if !ok || !p.isDir {
		s.mu.Unlock()
		return ErrNotDir
	}
	s.files[path] = &file{isDir: isDir}
	s.mu.Unlock()

	// §2.6: the fileserver creates the object on behalf of the caller and
	// passes ownership with "FS says caller speaksfor FS.<path>", uttered
	// by FS and transferred into the caller's labelstore.
	s.k.RegisterObject("file:"+path, from.Prin)
	grant := nal.SpeaksFor{A: from.Prin, B: nal.SubOf(s.sess.Prin(), path)}
	l, err := s.sess.SayFormula(grant)
	if err != nil {
		return fmt.Errorf("fsys: issuing ownership grant: %w", err)
	}
	if _, err := s.sess.TransferLabel(l.Handle, from.PID); err != nil {
		return fmt.Errorf("fsys: transferring ownership grant: %w", err)
	}
	return nil
}

func (s *Server) open(from kernel.Caller, path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return nil, ErrNotFound
	}
	if f.isDir {
		return nil, ErrIsDir
	}
	fdNum := s.next
	s.next++
	s.fds[fdNum] = &fd{path: path, client: from.PID}
	return intArg(fdNum), nil
}

func (s *Server) lookupFD(from kernel.Caller, m *kernel.Msg) (*fd, int, error) {
	if len(m.Args) < 1 {
		return nil, 0, ErrShortArgs
	}
	n, err := parseInt(m.Args[0])
	if err != nil {
		return nil, 0, err
	}
	d, ok := s.fds[n]
	if !ok || d.client != from.PID {
		return nil, 0, ErrBadFD
	}
	return d, n, nil
}

func (s *Server) close(from kernel.Caller, m *kernel.Msg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, n, err := s.lookupFD(from, m)
	if err != nil {
		return err
	}
	delete(s.fds, n)
	return nil
}

func (s *Server) read(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, _, err := s.lookupFD(from, m)
	if err != nil {
		return nil, err
	}
	if len(m.Args) < 2 {
		return nil, ErrShortArgs
	}
	n, err := parseInt(m.Args[1])
	if err != nil {
		return nil, err
	}
	f, ok := s.files[d.path]
	if !ok {
		return nil, ErrNotFound
	}
	if d.off >= len(f.data) {
		return nil, nil
	}
	end := d.off + n
	if end > len(f.data) {
		end = len(f.data)
	}
	out := append([]byte(nil), f.data[d.off:end]...)
	d.off = end
	return out, nil
}

func (s *Server) write(from kernel.Caller, m *kernel.Msg) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, _, err := s.lookupFD(from, m)
	if err != nil {
		return nil, err
	}
	if len(m.Args) < 2 {
		return nil, ErrShortArgs
	}
	data := m.Args[1]
	f, ok := s.files[d.path]
	if !ok {
		return nil, ErrNotFound
	}
	// Write at offset, extending with amortized growth.
	if need := d.off + len(data); need > len(f.data) {
		if need > cap(f.data) {
			grown := make([]byte, need, need*2)
			copy(grown, f.data)
			f.data = grown
		} else {
			f.data = f.data[:need]
		}
	}
	copy(f.data[d.off:], data)
	d.off += len(data)
	return intArg(len(data)), nil
}

func (s *Server) readFile(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return nil, ErrNotFound
	}
	if f.isDir {
		return nil, ErrIsDir
	}
	return append([]byte(nil), f.data...), nil
}

func (s *Server) writeFile(from kernel.Caller, path string, data []byte) error {
	s.mu.Lock()
	f, ok := s.files[path]
	if ok {
		f.data = append([]byte(nil), data...)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.create(from, path, false); err != nil {
		return err
	}
	s.mu.Lock()
	s.files[path].data = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

func (s *Server) list(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.files[path]
	if !ok {
		return nil, ErrNotFound
	}
	if !d.isDir {
		return nil, ErrNotDir
	}
	prefix := path
	if prefix != "/" {
		prefix += "/"
	} else {
		prefix = "/"
	}
	var names []string
	for p := range s.files {
		if p == path || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return []byte(strings.Join(names, "\x00")), nil
}

func (s *Server) remove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return ErrNotFound
	}
	delete(s.files, path)
	s.k.ReleaseObject("file:" + path)
	return nil
}

package ledger

import "crypto/sha256"

// Merkle aggregation over leaf hashes. The tree uses the
// promote-the-unpaired-node rule: at each level nodes pair left/right into
// a parent; an odd trailing node rises unchanged. Leaf and interior hashes
// are domain-separated ("nexus-ledger-leaf/" vs "nexus-ledger-node/"), so
// an interior node can never be replayed as a record and vice versa.

// merkleNode hashes an interior node from its two children.
func merkleNode(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("nexus-ledger-node/"))
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot reduces a leaf level to its root. A single leaf is its own
// root (leaf hashes are already domain-separated). Must not be called on
// an empty level.
func merkleRoot(leaves [][32]byte) [32]byte {
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		// In-place reduction: writes land at i/2, strictly behind the reads
		// at i and i+1 (arguments are copied before the write).
		next := level[:0]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, merkleNode(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// merklePath collects the sibling hashes from leaf idx up to the root.
// left[i] reports whether path[i] sits to the left of the running hash at
// level i; levels where the node is unpaired contribute no path element.
func merklePath(leaves [][32]byte, idx int) (path [][32]byte, left []bool) {
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		if idx%2 == 1 {
			path = append(path, level[idx-1])
			left = append(left, true)
		} else if idx+1 < len(level) {
			path = append(path, level[idx+1])
			left = append(left, false)
		}
		var next [][32]byte
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, merkleNode(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		idx /= 2
	}
	return path, left
}

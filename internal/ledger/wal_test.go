package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openWAL(t *testing.T, path string) *WAL {
	t.Helper()
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWALRoundTrip: records and seals survive a clean close/reopen and the
// recovered ledger reports the identical chain head (the acceptance
// criterion for recovery).
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	w := openWAL(t, path)
	l := fill(t, w, Options{BatchSize: 4, SyncEvery: 1}, 10)
	head := l.ChainHead()
	stats := l.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, path)
	defer w2.Close()
	l2, err := New(w2, Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if l2.ChainHead() != head {
		t.Fatal("recovered chain head differs")
	}
	if s := l2.Stats(); s.Records != stats.Records || s.Batches != stats.Batches || s.Pending != stats.Pending {
		t.Fatalf("recovered stats %+v, want %+v", s, stats)
	}
	// The recovered ledger keeps accepting the sequence where it left off.
	if err := l2.Append(mkRecord(10)); err != nil {
		t.Fatal(err)
	}
	// Recovered batches still serve verifiable proofs.
	for seq := uint64(0); seq < 8; seq++ {
		r, _ := l2.Record(seq)
		p, err := l2.Prove(seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyInclusion(&r, p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCrashMidBatch simulates a kill between syncs: the WAL object is
// abandoned without Close, so bufio-buffered appends past the last sync are
// lost. Recovery must keep every synced record, drop the unsynced tail, and
// reproduce the pre-crash anchor chain head.
func TestWALCrashMidBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	w := openWAL(t, path)
	// BatchSize 4 seals (and syncs) at seq 3 and 7; records 8 and 9 sit in
	// the bufio buffer only.
	l := fill(t, w, Options{BatchSize: 4, SyncEvery: 1000}, 10)
	head := l.ChainHead()
	// Crash: drop the WAL without Close/Sync. The OS file stays open until
	// GC, which is exactly what a SIGKILL leaves behind.

	w2 := openWAL(t, path)
	defer w2.Close()
	l2, err := New(w2, Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if l2.ChainHead() != head {
		t.Fatal("post-crash chain head differs from pre-crash")
	}
	s := l2.Stats()
	if s.Batches != 2 || s.Records != 8 || s.Pending != 0 {
		t.Fatalf("post-crash stats %+v, want 2 batches / 8 records", s)
	}
	// The lost records are re-appended with their original sequence numbers.
	for i := 8; i < 10; i++ {
		if err := l2.Append(mkRecord(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALTruncatedTail: a torn final frame (crash mid-write) is dropped on
// replay and the file is truncated back to the last intact frame, so the
// next append produces a clean log again.
func TestWALTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	w := openWAL(t, path)
	l := fill(t, w, Options{BatchSize: 100, SyncEvery: 1}, 6)
	if l.Stats().Records != 6 {
		t.Fatal("setup")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: chop 5 bytes off the end (mid-payload).
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, path)
	l2, err := New(w2, Options{BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s := l2.Stats(); s.Records != 5 {
		t.Fatalf("recovered %d records from torn log, want 5", s.Records)
	}
	// The torn bytes were truncated away; re-appending seq 5 and reopening
	// yields a clean 6-record log.
	if err := l2.Append(mkRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3 := openWAL(t, path)
	defer w3.Close()
	l3, err := New(w3, Options{BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s := l3.Stats(); s.Records != 6 {
		t.Fatalf("after repair got %d records, want 6", s.Records)
	}
}

// TestWALCorruptMidFrame: flipping a byte in an interior frame unreplays
// everything from that frame on (the suffix is untrusted once the chain of
// intact frames breaks) but never errors or panics.
func TestWALCorruptMidFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	w := openWAL(t, path)
	fill(t, w, Options{BatchSize: 100, SyncEvery: 1}, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, path)
	defer w2.Close()
	l2, err := New(w2, Options{BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s := l2.Stats(); s.Records >= 6 {
		t.Fatalf("corrupt log still claims %d records", s.Records)
	}
}

// TestWALDuplicateReplay: a crash between backend write and ack can leave
// duplicated record frames in the log; replay skips entries at or below the
// last applied sequence.
func TestWALDuplicateReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	w := openWAL(t, path)
	for i := 0; i < 5; i++ {
		if err := w.AppendRecord(mkRecord(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate the last two records, then a duplicate seal pair.
	for i := 3; i < 5; i++ {
		if err := w.AppendRecord(mkRecord(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendSeal(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSeal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, path)
	defer w2.Close()
	l, err := New(w2, Options{BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Records != 5 || s.Batches != 1 || s.Pending != 0 {
		t.Fatalf("duplicate replay produced %+v, want 5 records in 1 batch", s)
	}
	// The rebuilt batch matches a never-crashed ledger over the same
	// records: identical anchor chain.
	mb := NewMemBackend()
	ref := fill(t, mb, Options{BatchSize: 100}, 5)
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.ChainHead() != ref.ChainHead() {
		t.Fatal("duplicate replay changed the chain head")
	}
}

// TestWALGapDetected: a record gap (lost interior frame with intact
// successors cannot happen via torn tails, but a buggy or tampered backend
// can produce one) fails recovery with ErrCorrupt instead of silently
// renumbering.
func TestWALGapDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	w := openWAL(t, path)
	if err := w.AppendRecord(mkRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRecord(mkRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, path)
	defer w2.Close()
	if _, err := New(w2, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap not detected: %v", err)
	}
}

// TestWALHeaderRejected: a file that is not our WAL fails Open rather than
// being silently rebuilt (that would discard history).
func TestWALHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.wal")
	if err := os.WriteFile(path, []byte("definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); !errors.Is(err, ErrWALHeader) {
		t.Fatalf("bad header accepted: %v", err)
	}
	// Short file (shorter than the magic) is rejected the same way.
	if err := os.WriteFile(path, []byte("NXL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); !errors.Is(err, ErrWALHeader) {
		t.Fatalf("short header accepted: %v", err)
	}
}

// BenchmarkWALAppend measures the durable append path (fsync batched at the
// default cadence).
func BenchmarkWALAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "audit.wal")
	w, err := OpenWAL(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	l, err := New(w, Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := mkRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

package ledger

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// File-backed write-ahead log. Layout:
//
//	header:  8-byte magic "NXLWAL01"
//	frame:   u32 payload length (LE) · u32 CRC-32C of payload · payload
//	payload: kind byte (EntryKind) + kind-specific body
//	record:  uvarint seq · 4 length-prefixed strings (subj, op, obj,
//	         reason) · allow byte · 32-byte chain hash
//	seal:    kind byte only
//
// Appends buffer through bufio; Sync flushes the buffer and fsyncs, so the
// batcher's fsync batching (Options.SyncEvery) directly bounds both the
// syscall rate and the loss window. Open replays every valid frame and
// truncates the file at the first invalid one — a torn tail from a crash
// mid-write (short frame, short payload, or CRC mismatch) is dropped, never
// parsed. A corrupt header fails Open outright: that is not a torn tail
// but a file that was never ours (or lost its prefix), and silently
// rebuilding it would discard history.

// walMagic identifies (and versions) the WAL format.
var walMagic = [8]byte{'N', 'X', 'L', 'W', 'A', 'L', '0', '1'}

// maxWALFrame bounds one frame so a corrupt length prefix cannot force an
// unbounded allocation during replay.
const maxWALFrame = 1 << 20

// ErrWALHeader reports a WAL file whose header is not ours.
var ErrWALHeader = errors.New("ledger: WAL header invalid")

// crcTable is the Castagnoli table (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is the file-backed backend.
type WAL struct {
	f   *os.File
	w   *bufio.Writer
	buf []byte // frame build scratch, reused across appends
}

// OpenWAL opens (creating if absent) the WAL at path. The returned backend
// is ready for New, whose Replay call delivers the recovered entries.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var magic [8]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || magic != walMagic {
			f.Close()
			return nil, fmt.Errorf("%w: %s", ErrWALHeader, path)
		}
	}
	w.w = bufio.NewWriter(f)
	return w, nil
}

// Replay scans frames from the start, delivers every valid entry, and
// truncates the file at the first invalid frame (torn tail). It leaves the
// file positioned for appending.
func (w *WAL) Replay(fn func(Entry) error) error {
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(w.f)
	valid := int64(len(walMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn length/CRC prefix
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxWALFrame {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			break // bit rot or torn write; everything after is untrusted
		}
		e, ok := decodeEntry(payload)
		if !ok {
			break // CRC-valid but undecodable: treat as tail, not as data
		}
		if err := fn(e); err != nil {
			return err
		}
		valid += int64(len(hdr)) + int64(n)
	}
	if err := w.f.Truncate(valid); err != nil {
		return err
	}
	if _, err := w.f.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	return nil
}

// appendFrame frames and buffers one payload.
func (w *WAL) appendFrame(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// AppendRecord implements Backend.
func (w *WAL) AppendRecord(r Record) error {
	w.buf = appendRecordPayload(w.buf[:0], &r)
	return w.appendFrame(w.buf)
}

// AppendSeal implements Backend.
func (w *WAL) AppendSeal() error {
	return w.appendFrame([]byte{byte(EntrySeal)})
}

// Sync implements Backend: flush the buffer and fsync.
func (w *WAL) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes, fsyncs, and closes the file.
func (w *WAL) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendRecordPayload encodes a record entry.
func appendRecordPayload(dst []byte, r *Record) []byte {
	dst = append(dst, byte(EntryRecord))
	dst = binary.AppendUvarint(dst, r.Seq)
	for _, s := range [...]string{r.Subj, r.Op, r.Obj, r.Reason} {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	if r.Allow {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, r.ChainHash[:]...)
}

// decodeEntry parses one frame payload; every read is bounds-checked so
// hostile bytes (fuzzed WAL contents) can fail but never panic.
func decodeEntry(p []byte) (Entry, bool) {
	if len(p) == 0 {
		return Entry{}, false
	}
	kind, p := EntryKind(p[0]), p[1:]
	switch kind {
	case EntrySeal:
		if len(p) != 0 {
			return Entry{}, false
		}
		return Entry{Kind: EntrySeal}, true
	case EntryRecord:
		var r Record
		seq, n := binary.Uvarint(p)
		if n <= 0 {
			return Entry{}, false
		}
		p = p[n:]
		r.Seq = seq
		for _, field := range [...]*string{&r.Subj, &r.Op, &r.Obj, &r.Reason} {
			l, n := binary.Uvarint(p)
			if n <= 0 || l > uint64(len(p)-n) {
				return Entry{}, false
			}
			*field = string(p[n : n+int(l)])
			p = p[n+int(l):]
		}
		if len(p) != 1+32 {
			return Entry{}, false
		}
		r.Allow = p[0] == 1
		if p[0] > 1 {
			return Entry{}, false
		}
		copy(r.ChainHash[:], p[1:])
		return Entry{Kind: EntryRecord, Record: r}, true
	}
	return Entry{}, false
}

package ledger

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
)

// mkRecord builds a deterministic test record.
func mkRecord(seq uint64) Record {
	var chain [32]byte
	chain = sha256.Sum256([]byte(fmt.Sprintf("chain-%d", seq)))
	return Record{
		Seq:       seq,
		Subj:      fmt.Sprintf("key:nk.boot.ipd.%d", seq%7),
		Op:        "read",
		Obj:       fmt.Sprintf("obj-%d", seq%13),
		Allow:     seq%3 != 0,
		Reason:    "guard says so",
		ChainHash: chain,
	}
}

// fill appends records [0, n) and returns the ledger.
func fill(t testing.TB, b Backend, opts Options, n int) *Ledger {
	t.Helper()
	l, err := New(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(mkRecord(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// TestLedgerProveAll: every record of a run verifies against its anchored
// root, whatever the batch-size/record-count alignment (the acceptance
// criterion, scaled down; the 10k run lives in cmd/experiments -exp
// ledger and TestLedgerProve10k below).
func TestLedgerProveAll(t *testing.T) {
	for _, tc := range []struct{ n, batch int }{
		{1, 4}, {4, 4}, {5, 4}, {64, 16}, {100, 16}, {257, 64},
	} {
		l := fill(t, NewMemBackend(), Options{BatchSize: tc.batch}, tc.n)
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := VerifyAnchors(l.Batches(), [32]byte{}); err != nil {
			t.Fatalf("n=%d batch=%d: anchors: %v", tc.n, tc.batch, err)
		}
		for seq := uint64(0); seq < uint64(tc.n); seq++ {
			r, ok := l.Record(seq)
			if !ok {
				t.Fatalf("n=%d batch=%d: record %d missing", tc.n, tc.batch, seq)
			}
			p, err := l.Prove(seq)
			if err != nil {
				t.Fatalf("n=%d batch=%d: prove %d: %v", tc.n, tc.batch, seq, err)
			}
			if err := VerifyInclusion(&r, p); err != nil {
				t.Fatalf("n=%d batch=%d: verify %d: %v", tc.n, tc.batch, seq, err)
			}
		}
	}
}

// TestLedgerProve10k is the full-scale acceptance run: 10k decisions, all
// provable, single-bit mutations all rejected (spot-checked across fields).
func TestLedgerProve10k(t *testing.T) {
	const n = 10_000
	l := fill(t, NewMemBackend(), Options{}, n)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAnchors(l.Batches(), [32]byte{}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < n; seq++ {
		r, _ := l.Record(seq)
		p, err := l.Prove(seq)
		if err != nil {
			t.Fatalf("prove %d: %v", seq, err)
		}
		if err := VerifyInclusion(&r, p); err != nil {
			t.Fatalf("verify %d: %v", seq, err)
		}
		// Every 97th record: mutate each field in turn and require rejection.
		if seq%97 != 0 {
			continue
		}
		muts := []func(*Record){
			func(r *Record) { r.Allow = !r.Allow },
			func(r *Record) { r.Subj = r.Subj + "x" },
			func(r *Record) { r.Op = "write" },
			func(r *Record) { r.Obj = "other" },
			func(r *Record) { r.Reason = "" },
			func(r *Record) { r.Seq++ },
			func(r *Record) { r.ChainHash[0] ^= 0x01 },
			func(r *Record) { r.ChainHash[31] ^= 0x80 },
		}
		for mi, mut := range muts {
			bad := r
			mut(&bad)
			if err := VerifyInclusion(&bad, p); err == nil {
				t.Fatalf("seq %d mutation %d accepted", seq, mi)
			}
		}
	}
}

// TestLedgerProofTamper: tampering with the proof itself (path, root,
// anchor, batch metadata) is rejected too.
func TestLedgerProofTamper(t *testing.T) {
	l := fill(t, NewMemBackend(), Options{BatchSize: 8}, 24)
	r, _ := l.Record(10)
	p, err := l.Prove(10)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*InclusionProof)) *InclusionProof {
		cp := *p
		cp.Path = append([][32]byte(nil), p.Path...)
		cp.Left = append([]bool(nil), p.Left...)
		f(&cp)
		return &cp
	}
	for i, bad := range []*InclusionProof{
		mutate(func(p *InclusionProof) { p.Path[0][5] ^= 1 }),
		mutate(func(p *InclusionProof) { p.Left[0] = !p.Left[0] }),
		mutate(func(p *InclusionProof) { p.Batch.Root[0] ^= 1 }),
		mutate(func(p *InclusionProof) { p.Batch.Anchor[0] ^= 1 }),
		mutate(func(p *InclusionProof) { p.Batch.Prev[0] ^= 1 }),
		mutate(func(p *InclusionProof) { p.Batch.FirstSeq += 8; p.Batch.LastSeq += 8 }),
		mutate(func(p *InclusionProof) { p.Index++ }),
		mutate(func(p *InclusionProof) { p.Path = p.Path[:len(p.Path)-1]; p.Left = p.Left[:len(p.Left)-1] }),
	} {
		if err := VerifyInclusion(&r, bad); !errors.Is(err, ErrProof) {
			t.Fatalf("proof mutation %d accepted (err=%v)", i, err)
		}
	}
}

// TestLedgerAnchorChain: anchors chain batch to batch; a swapped or
// re-rooted batch breaks VerifyAnchors.
func TestLedgerAnchorChain(t *testing.T) {
	l := fill(t, NewMemBackend(), Options{BatchSize: 4}, 16)
	bs := l.Batches()
	if len(bs) != 4 {
		t.Fatalf("got %d batches, want 4", len(bs))
	}
	if head := l.ChainHead(); head != bs[3].Anchor {
		t.Fatal("chain head is not the last anchor")
	}
	if err := VerifyAnchors(bs, [32]byte{}); err != nil {
		t.Fatal(err)
	}
	swapped := append([]Batch(nil), bs...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if err := VerifyAnchors(swapped, [32]byte{}); !errors.Is(err, ErrProof) {
		t.Fatalf("swapped batches accepted: %v", err)
	}
	rerooted := append([]Batch(nil), bs...)
	rerooted[2].Root[0] ^= 1
	if err := VerifyAnchors(rerooted, [32]byte{}); !errors.Is(err, ErrProof) {
		t.Fatalf("re-rooted batch accepted: %v", err)
	}
}

// TestLedgerSequencing: out-of-order appends are refused; pending records
// are queryable but not provable until flushed.
func TestLedgerSequencing(t *testing.T) {
	l := fill(t, NewMemBackend(), Options{BatchSize: 8}, 3)
	if err := l.Append(mkRecord(7)); !errors.Is(err, ErrSequence) {
		t.Fatalf("gap accepted: %v", err)
	}
	if err := l.Append(mkRecord(1)); !errors.Is(err, ErrSequence) {
		t.Fatalf("duplicate accepted: %v", err)
	}
	if _, ok := l.Record(2); !ok {
		t.Fatal("pending record not queryable")
	}
	if _, err := l.Prove(2); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("pending record provable before flush: %v", err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Prove(2); err != nil {
		t.Fatalf("flushed record not provable: %v", err)
	}
	if _, err := l.Prove(99); !errors.Is(err, ErrNoRecord) {
		t.Fatal("phantom seq provable")
	}
}

// TestLedgerBackendFailure: a failing backend is counted and reported but
// the in-memory batcher stays consistent and serves proofs.
func TestLedgerBackendFailure(t *testing.T) {
	mb := NewMemBackend()
	l := fill(t, mb, Options{BatchSize: 4}, 2)
	mb.FailAppends = errors.New("disk on fire")
	var failed int
	for i := 2; i < 6; i++ {
		if err := l.Append(mkRecord(uint64(i))); err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("backend failures not surfaced")
	}
	if s := l.Stats(); s.Errors == 0 || s.Records != 6 {
		t.Fatalf("stats after failures: %+v", s)
	}
	mb.FailAppends = nil
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 6; seq++ {
		r, _ := l.Record(seq)
		p, err := l.Prove(seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyInclusion(&r, p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLedgerMemReplay: a ledger rebuilt from a mem backend's entry stream
// reproduces the identical chain head, including early-flushed (short)
// batches.
func TestLedgerMemReplay(t *testing.T) {
	mb := NewMemBackend()
	l := fill(t, mb, Options{BatchSize: 8}, 13)
	if err := l.Flush(); err != nil { // short batch: 13 = 8 + 5
		t.Fatal(err)
	}
	for i := 13; i < 20; i++ {
		if err := l.Append(mkRecord(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l2, err := New(mb, Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if l2.ChainHead() != l.ChainHead() {
		t.Fatal("replayed chain head differs")
	}
	if got, want := len(l2.Batches()), len(l.Batches()); got != want {
		t.Fatalf("replayed %d batches, want %d", got, want)
	}
}

// BenchmarkLedgerAppend measures the per-decision batcher cost over the
// mock backend (the anchored-but-not-persisted configuration).
func BenchmarkLedgerAppend(b *testing.B) {
	l, err := New(NewMemBackend(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := mkRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerProve measures proof construction over a sealed ledger.
func BenchmarkLedgerProve(b *testing.B) {
	l := fill(b, NewMemBackend(), Options{}, 4096)
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Prove(uint64(i % 4096)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerVerifyInclusion measures the client-side offline check.
func BenchmarkLedgerVerifyInclusion(b *testing.B) {
	l := fill(b, NewMemBackend(), Options{}, 4096)
	if err := l.Flush(); err != nil {
		b.Fatal(err)
	}
	r, _ := l.Record(1234)
	p, err := l.Prove(1234)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyInclusion(&r, p); err != nil {
			b.Fatal(err)
		}
	}
}

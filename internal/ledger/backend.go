package ledger

import "sync"

// EntryKind discriminates the backend's event stream.
type EntryKind byte

const (
	// EntryRecord is one appended decision record.
	EntryRecord EntryKind = 0
	// EntrySeal marks a batch boundary: everything since the previous seal
	// belongs to one sealed batch. Seals make batch boundaries replayable,
	// so a recovered ledger rebuilds the identical anchor chain even when
	// batches were sealed early (Flush) or at a since-changed batch size.
	EntrySeal EntryKind = 1
)

// Entry is one element of the backend's replay stream.
type Entry struct {
	Kind   EntryKind
	Record Record // valid when Kind == EntryRecord
}

// Backend is the ledger's durability plane. The batcher calls AppendRecord
// and AppendSeal in commit order under its own mutex, so implementations
// need no ordering logic of their own; Sync bounds data loss (appends may
// buffer until it returns). Replay re-delivers every persisted entry in
// order and is called once, by New, before any append.
type Backend interface {
	AppendRecord(r Record) error
	AppendSeal() error
	Sync() error
	Replay(fn func(Entry) error) error
	Close() error
}

// MemBackend is the in-memory mock backend: a slice of entries with no
// durability. Tests use it directly; it also stands in wherever a ledger
// is wanted purely for its proofs (e.g. a kernel that anchors decisions
// but delegates persistence elsewhere).
type MemBackend struct {
	mu      sync.Mutex
	entries []Entry
	// FailAppends, when set, makes appends fail — tests use it to check
	// the batcher's backend-failure accounting.
	FailAppends error
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// AppendRecord implements Backend.
func (m *MemBackend) AppendRecord(r Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.FailAppends != nil {
		return m.FailAppends
	}
	m.entries = append(m.entries, Entry{Kind: EntryRecord, Record: r})
	return nil
}

// AppendSeal implements Backend.
func (m *MemBackend) AppendSeal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.FailAppends != nil {
		return m.FailAppends
	}
	m.entries = append(m.entries, Entry{Kind: EntrySeal})
	return nil
}

// Sync implements Backend (a no-op in memory).
func (m *MemBackend) Sync() error { return nil }

// Replay implements Backend.
func (m *MemBackend) Replay(fn func(Entry) error) error {
	m.mu.Lock()
	entries := append([]Entry(nil), m.entries...)
	m.mu.Unlock()
	for _, e := range entries {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// Len reports the number of persisted entries (tests).
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Package ledger is the durable, queryable audit ledger behind the
// kernel's in-memory decision hash chain: a Merkle batcher that aggregates
// decision records into fixed-size batches, anchors each batch root into a
// hash chain of its own, and persists every record through a pluggable
// backend — an in-memory mock for tests and a file-backed WAL with
// crash-recovery replay for deployment. Per-record inclusion proofs
// (Prove/VerifyInclusion) let a client verify offline that "the kernel
// authorized X at T" against a published batch root and anchor, without
// trusting the kernel after the fact.
//
// The design follows the batcher/store split of production audit ledgers:
// the batcher owns sequencing, Merkle aggregation, and the anchor chain;
// the backend owns durability and nothing else. All batcher state is
// deterministically reconstructible from the backend's record stream, so
// recovery is a replay, and a recovered ledger reports the identical chain
// head (anchor) it had before the crash.
//
// Locking: the ledger mutex is a leaf — nothing is acquired while it is
// held except the backend's own internal state. The kernel's audit log
// forwards records to Append while holding its (also leaf-ward) mutex;
// Append must therefore never call back into the kernel.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Ledger errors.
var (
	// ErrProof reports an inclusion proof that does not verify.
	ErrProof = errors.New("ledger: inclusion proof verification failed")
	// ErrNoRecord reports a sequence number outside the ledger.
	ErrNoRecord = errors.New("ledger: no such record")
	// ErrSequence reports a record appended out of order.
	ErrSequence = errors.New("ledger: record out of sequence")
	// ErrCorrupt reports backend contents that cannot be replayed.
	ErrCorrupt = errors.New("ledger: backend corrupt")
)

// Record is one authorization decision as the ledger stores it: the flat
// fields of the kernel's audit record plus the audit chain hash after the
// record, binding the ledger's view to the kernel's chain.
type Record struct {
	Seq    uint64
	Subj   string
	Op     string
	Obj    string
	Allow  bool
	Reason string
	// ChainHash is the kernel audit-chain head immediately after this
	// record; it is covered by the Merkle leaf, so a proof over the ledger
	// also commits to the kernel's own chain.
	ChainHash [32]byte
}

// LeafHash computes the Merkle leaf for a record. Every field participates,
// so a single-bit mutation of any field breaks the proof.
func LeafHash(r *Record) [32]byte {
	h := sha256.New()
	h.Write([]byte("nexus-ledger-leaf/"))
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], r.Seq)
	h.Write(seqb[:])
	for _, s := range [...]string{r.Subj, r.Op, r.Obj, r.Reason} {
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(len(s)))
		h.Write(lb[:])
		h.Write([]byte(s))
	}
	if r.Allow {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write(r.ChainHash[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Batch is one sealed, anchored aggregate of records. Anchors form a hash
// chain: publishing the latest anchor commits to every batch (and through
// the leaves, every record and the kernel chain) before it.
type Batch struct {
	Index    uint64 // 0-based position in the anchor chain
	FirstSeq uint64
	LastSeq  uint64
	Root     [32]byte // Merkle root over the records' leaf hashes
	Prev     [32]byte // anchor before this batch
	Anchor   [32]byte // hash chaining Prev, Index, seqs, and Root
}

// anchorHash folds a sealed batch into the anchor chain.
func anchorHash(prev [32]byte, index, firstSeq, lastSeq uint64, root [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("nexus-ledger-anchor/"))
	h.Write(prev[:])
	var b [8]byte
	for _, v := range [...]uint64{index, firstSeq, lastSeq} {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	h.Write(root[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// VerifyAnchors checks a batch sequence's anchor chain from the given
// starting anchor (zero for a chain from genesis).
func VerifyAnchors(batches []Batch, start [32]byte) error {
	prev := start
	for i := range batches {
		b := &batches[i]
		if b.Prev != prev {
			return fmt.Errorf("%w: batch %d does not chain from its predecessor", ErrProof, b.Index)
		}
		if anchorHash(b.Prev, b.Index, b.FirstSeq, b.LastSeq, b.Root) != b.Anchor {
			return fmt.Errorf("%w: batch %d anchor does not match its content", ErrProof, b.Index)
		}
		prev = b.Anchor
	}
	return nil
}

// Options configures a ledger.
type Options struct {
	// BatchSize is the number of records per sealed batch (default 256).
	BatchSize int
	// SyncEvery bounds fsync batching: the backend is synced after this
	// many appended records (and always when a batch seals). 0 selects the
	// default (64); 1 syncs every record.
	SyncEvery int
}

// DefaultBatchSize is the records-per-batch default.
const DefaultBatchSize = 256

// defaultSyncEvery is the fsync batching default.
const defaultSyncEvery = 64

// sealedBatch retains, beside the public batch, the leaves and records
// needed to serve inclusion proofs and queries.
type sealedBatch struct {
	Batch
	leaves [][32]byte
	recs   []Record
}

// Stats is a point-in-time summary of ledger state.
type Stats struct {
	Records uint64 // records appended (sealed + pending)
	Batches uint64 // sealed batches
	Pending uint64 // records not yet sealed into a batch
	Errors  uint64 // appends the backend rejected
}

// Ledger is the Merkle batcher. Create with New; the zero value is not
// usable.
type Ledger struct {
	mu        sync.Mutex
	backend   Backend
	batchSize int
	syncEvery int

	pending []Record
	leaves  [][32]byte
	batches []sealedBatch
	anchor  [32]byte
	nextSeq uint64 // seq the next appended record must carry
	started bool   // false until the first record fixes the base seq
	unsynct int    // records appended since the last backend sync
	errs    uint64
}

// New opens a ledger over the backend, replaying whatever the backend
// already holds: records rebuild the pending window and seal markers
// rebuild the sealed batches, so the recovered anchor chain head is
// identical to the pre-crash one. Replay tolerates duplicated suffixes
// (a crash between backend write and ack re-delivers records): entries
// at or below the last applied sequence are skipped.
func New(b Backend, opts Options) (*Ledger, error) {
	l := &Ledger{
		backend:   b,
		batchSize: opts.BatchSize,
		syncEvery: opts.SyncEvery,
	}
	if l.batchSize <= 0 {
		l.batchSize = DefaultBatchSize
	}
	if l.syncEvery <= 0 {
		l.syncEvery = defaultSyncEvery
	}
	err := b.Replay(func(e Entry) error {
		switch e.Kind {
		case EntryRecord:
			if l.started && e.Record.Seq < l.nextSeq {
				return nil // duplicate replay; already applied
			}
			if l.started && e.Record.Seq > l.nextSeq {
				return fmt.Errorf("%w: record gap at seq %d (want %d)", ErrCorrupt, e.Record.Seq, l.nextSeq)
			}
			l.apply(e.Record)
		case EntrySeal:
			// A duplicated seal (or one replayed for an already-sealed
			// prefix) finds the pending window empty and is a no-op.
			l.seal()
		default:
			return fmt.Errorf("%w: unknown entry kind %d", ErrCorrupt, e.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// apply adds a record to the batcher state without touching the backend.
func (l *Ledger) apply(r Record) {
	l.pending = append(l.pending, r)
	l.leaves = append(l.leaves, LeafHash(&r))
	l.nextSeq = r.Seq + 1
	l.started = true
}

// seal closes the pending window into an anchored batch. No-op when
// nothing is pending.
func (l *Ledger) seal() {
	if len(l.pending) == 0 {
		return
	}
	root := merkleRoot(l.leaves)
	b := Batch{
		Index:    uint64(len(l.batches)),
		FirstSeq: l.pending[0].Seq,
		LastSeq:  l.pending[len(l.pending)-1].Seq,
		Root:     root,
		Prev:     l.anchor,
	}
	b.Anchor = anchorHash(b.Prev, b.Index, b.FirstSeq, b.LastSeq, b.Root)
	l.batches = append(l.batches, sealedBatch{
		Batch:  b,
		leaves: l.leaves,
		recs:   l.pending,
	})
	l.anchor = b.Anchor
	l.pending = nil
	l.leaves = nil
}

// Append adds one decision record. Records must arrive in sequence (the
// audit log's single appender guarantees this); when the pending window
// reaches the batch size the batch is sealed, anchored, and the backend
// synced. Backend failures are counted and returned but do not corrupt
// batcher state: the record is retained in memory so proofs stay serveable
// even when the disk is not.
func (l *Ledger) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.started && r.Seq != l.nextSeq {
		return fmt.Errorf("%w: got seq %d, want %d", ErrSequence, r.Seq, l.nextSeq)
	}
	var err error
	if werr := l.backend.AppendRecord(r); werr != nil {
		l.errs++
		err = werr
	}
	l.apply(r)
	l.unsynct++
	if len(l.pending) >= l.batchSize {
		if serr := l.sealLocked(); serr != nil && err == nil {
			err = serr
		}
	} else if l.unsynct >= l.syncEvery {
		if serr := l.backend.Sync(); serr != nil {
			l.errs++
			if err == nil {
				err = serr
			}
		}
		l.unsynct = 0
	}
	return err
}

// sealLocked persists a seal marker, seals the pending window, and syncs.
func (l *Ledger) sealLocked() error {
	var err error
	if werr := l.backend.AppendSeal(); werr != nil {
		l.errs++
		err = werr
	}
	l.seal()
	if serr := l.backend.Sync(); serr != nil {
		l.errs++
		if err == nil {
			err = serr
		}
	}
	l.unsynct = 0
	return err
}

// Flush seals the pending window (if any) into a — possibly short — batch
// and syncs the backend, so every appended record becomes provable against
// an anchored root. Use it before publishing the chain head or shutting
// down.
func (l *Ledger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		if err := l.backend.Sync(); err != nil {
			l.errs++
			return err
		}
		l.unsynct = 0
		return nil
	}
	return l.sealLocked()
}

// NextSeq reports the sequence number the next Append must carry and
// whether the base is fixed yet (false until the first record: a fresh
// ledger accepts any starting sequence).
func (l *Ledger) NextSeq() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq, l.started
}

// ChainHead returns the current anchor — the hash that commits to every
// sealed batch and, transitively, every sealed record.
func (l *Ledger) ChainHead() [32]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.anchor
}

// Batches returns a copy of the sealed batch metadata.
func (l *Ledger) Batches() []Batch {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Batch, len(l.batches))
	for i := range l.batches {
		out[i] = l.batches[i].Batch
	}
	return out
}

// Stats reports ledger occupancy.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n uint64
	for i := range l.batches {
		n += uint64(len(l.batches[i].recs))
	}
	return Stats{
		Records: n + uint64(len(l.pending)),
		Batches: uint64(len(l.batches)),
		Pending: uint64(len(l.pending)),
		Errors:  l.errs,
	}
}

// Record returns the sealed or pending record with the given sequence
// number — the query path ("what did the kernel decide at seq N?").
func (l *Ledger) Record(seq uint64) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if sb := l.batchFor(seq); sb != nil {
		return sb.recs[seq-sb.FirstSeq], true
	}
	if n := len(l.pending); n > 0 && seq >= l.pending[0].Seq && seq <= l.pending[n-1].Seq {
		return l.pending[seq-l.pending[0].Seq], true
	}
	return Record{}, false
}

// batchFor locates the sealed batch containing seq, or nil. Batches hold
// contiguous ranges, so binary search on FirstSeq suffices.
func (l *Ledger) batchFor(seq uint64) *sealedBatch {
	lo, hi := 0, len(l.batches)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.batches[mid].LastSeq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.batches) && l.batches[lo].FirstSeq <= seq && seq <= l.batches[lo].LastSeq {
		return &l.batches[lo]
	}
	return nil
}

// InclusionProof carries everything needed to verify one record offline
// against a published anchor: the Merkle path to the batch root plus the
// batch's anchoring metadata.
type InclusionProof struct {
	Batch Batch
	// Index is the record's leaf position within the batch.
	Index int
	// Path holds the sibling hashes from leaf to root; Left[i] reports
	// whether Path[i] is the left operand at level i.
	Path [][32]byte
	Left []bool
}

// Prove builds the inclusion proof for the record with the given sequence
// number. Records still pending (not yet sealed into a batch) have no
// anchored root yet; call Flush first.
func (l *Ledger) Prove(seq uint64) (*InclusionProof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sb := l.batchFor(seq)
	if sb == nil {
		return nil, fmt.Errorf("%w: seq %d not in a sealed batch", ErrNoRecord, seq)
	}
	idx := int(seq - sb.FirstSeq)
	path, left := merklePath(sb.leaves, idx)
	return &InclusionProof{Batch: sb.Batch, Index: idx, Path: path, Left: left}, nil
}

// VerifyInclusion checks a record against an inclusion proof: the leaf
// hash of the record must reduce through the proof path to the batch root,
// and the batch's anchor must match its content. Callers tie the batch to
// the published chain by comparing p.Batch.Anchor (or walking VerifyAnchors
// over the batch list) against the anchor they trust.
func VerifyInclusion(r *Record, p *InclusionProof) error {
	if r.Seq < p.Batch.FirstSeq || r.Seq > p.Batch.LastSeq {
		return fmt.Errorf("%w: seq %d outside batch [%d,%d]", ErrProof, r.Seq, p.Batch.FirstSeq, p.Batch.LastSeq)
	}
	if uint64(p.Index) != r.Seq-p.Batch.FirstSeq {
		return fmt.Errorf("%w: leaf index %d does not match seq %d", ErrProof, p.Index, r.Seq)
	}
	if len(p.Path) != len(p.Left) {
		return fmt.Errorf("%w: malformed path", ErrProof)
	}
	h := LeafHash(r)
	for i, sib := range p.Path {
		if p.Left[i] {
			h = merkleNode(sib, h)
		} else {
			h = merkleNode(h, sib)
		}
	}
	if h != p.Batch.Root {
		return fmt.Errorf("%w: path does not reduce to batch root", ErrProof)
	}
	if anchorHash(p.Batch.Prev, p.Batch.Index, p.Batch.FirstSeq, p.Batch.LastSeq, p.Batch.Root) != p.Batch.Anchor {
		return fmt.Errorf("%w: batch anchor does not match its content", ErrProof)
	}
	return nil
}

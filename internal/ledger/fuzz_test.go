package ledger

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecovery feeds arbitrary bytes to the WAL open/replay path. The
// contract under corruption: recover a valid prefix or fail cleanly with an
// error — never panic, never hang, never fabricate records that fail their
// own framing. Appending after a successful recovery must also work, since
// replay truncates the file back to its last intact frame.
func FuzzWALRecovery(f *testing.F) {
	// Seed with a well-formed log (records + seal), its torn variants, and
	// junk.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	w, err := OpenWAL(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.AppendRecord(mkRecord(uint64(i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.AppendSeal(); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:9])
	f.Add([]byte{})
	f.Add([]byte("NXLWAL01"))
	f.Add([]byte("NXLWAL01\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("garbage that is not a WAL at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path)
		if err != nil {
			return // clean failure (e.g. bad header) is in-contract
		}
		defer w.Close()
		l, err := New(w, Options{BatchSize: 4})
		if err != nil {
			return // replayable prefix had a sequence gap: clean failure
		}
		// Recovered state must be internally consistent: every sealed
		// record proves against its anchored root.
		for _, b := range l.Batches() {
			for seq := b.FirstSeq; seq <= b.LastSeq; seq++ {
				r, ok := l.Record(seq)
				if !ok {
					t.Fatalf("sealed seq %d not queryable", seq)
				}
				p, err := l.Prove(seq)
				if err != nil {
					t.Fatalf("sealed seq %d not provable: %v", seq, err)
				}
				if err := VerifyInclusion(&r, p); err != nil {
					t.Fatalf("recovered record %d fails its own proof: %v", seq, err)
				}
			}
		}
		// The log must accept appends again after recovery.
		next, _ := l.NextSeq()
		if err := l.Append(mkRecord(next)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}

// Package cachestat defines the hit/miss/eviction statistics contract
// shared by the authorization caches: the guard proof cache (§2.9) and the
// kernel decision cache (§2.8). Both caches expose the same Stats shape so
// benchmarks and operators read them uniformly.
package cachestat

import "sync/atomic"

// Stats is a point-in-time snapshot of cache activity. Whenever the cache
// is quiescent, Lookups == Hits + Misses.
type Stats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Counters is the lock-free accumulator backing Stats. The zero value is
// ready to use.
type Counters struct {
	lookups, hits, misses, evictions atomic.Uint64
}

// Lookup records one cache probe and its outcome.
func (c *Counters) Lookup(hit bool) {
	c.lookups.Add(1)
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}

// Evicted records n entries removed by eviction or invalidation.
func (c *Counters) Evicted(n uint64) {
	if n > 0 {
		c.evictions.Add(n)
	}
}

// Snapshot reads the counters. Individual fields are each read atomically;
// cross-field invariants hold only when the cache is quiescent.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Lookups:   c.lookups.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Reset zeroes all counters. Not linearizable with respect to concurrent
// Lookup calls; callers that need exact invariants reset only while
// quiescent.
func (c *Counters) Reset() {
	c.lookups.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// Package sched implements the proportional-share CPU scheduler used for
// resource attestation in §4.1: a stride scheduler maintaining a list of
// active clients and their weights, exported through introspection so a
// labeling function can vouch that a tenant receives its contracted
// fraction of the CPU.
package sched

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/introspect"
	"repro/internal/nal"
)

// ErrNoSuchClient is returned for unknown client names.
var ErrNoSuchClient = errors.New("sched: no such client")

// stride1 is the scaling constant for stride scheduling.
const stride1 = 1 << 20

// Scheduler is a proportional-share (stride) scheduler. All methods are
// safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	clients map[string]*client
}

type client struct {
	name   string
	weight int
	stride int64
	pass   int64
	ticks  int64
}

// New creates an empty scheduler.
func New() *Scheduler {
	return &Scheduler{clients: map[string]*client{}}
}

// SetWeight registers a client or updates its weight (shares).
func (s *Scheduler) SetWeight(name string, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[name]
	if !ok {
		c = &client{name: name}
		s.clients[name] = c
		// A new client starts at the minimum pass so it cannot be starved
		// nor gain credit for its absence.
		var minPass int64
		first := true
		for _, o := range s.clients {
			if o == c {
				continue
			}
			if first || o.pass < minPass {
				minPass = o.pass
				first = false
			}
		}
		c.pass = minPass
	}
	c.weight = weight
	c.stride = stride1 / int64(weight)
}

// Remove deregisters a client.
func (s *Scheduler) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.clients[name]; !ok {
		return ErrNoSuchClient
	}
	delete(s.clients, name)
	return nil
}

// Tick dispatches one quantum to the client with the minimum pass value and
// returns its name. It reports "" when no clients are registered.
func (s *Scheduler) Tick() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *client
	for _, c := range s.clients {
		if best == nil || c.pass < best.pass ||
			(c.pass == best.pass && c.name < best.name) {
			best = c
		}
	}
	if best == nil {
		return ""
	}
	best.pass += best.stride
	best.ticks++
	return best.name
}

// Ticks returns the quanta received by a client.
func (s *Scheduler) Ticks(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[name]
	if !ok {
		return 0, ErrNoSuchClient
	}
	return c.ticks, nil
}

// Weight returns a client's current weight.
func (s *Scheduler) Weight(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[name]
	if !ok {
		return 0, ErrNoSuchClient
	}
	return c.weight, nil
}

// TotalWeight sums all client weights.
func (s *Scheduler) TotalWeight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, c := range s.clients {
		total += c.weight
	}
	return total
}

// Publish exports each tenant's weight under /proc/sched/<name>/weight so
// a labeling function can inspect reservations (§4.1). The per-tenant files
// should be protected with goal formulas so tenants cannot read each
// other's reservations.
func (s *Scheduler) Publish(reg *introspect.Registry, owner nal.Principal) {
	reg.Publish("/proc/sched/total", owner, func() string {
		return fmt.Sprint(s.TotalWeight())
	})
	s.mu.Lock()
	names := make([]string, 0, len(s.clients))
	for n := range s.clients {
		names = append(names, n)
	}
	s.mu.Unlock()
	for _, n := range names {
		name := n
		reg.Publish("/proc/sched/"+name+"/weight", owner, func() string {
			w, err := s.Weight(name)
			if err != nil {
				return "0"
			}
			return fmt.Sprint(w)
		})
		reg.Publish("/proc/sched/"+name+"/ticks", owner, func() string {
			t, err := s.Ticks(name)
			if err != nil {
				return "0"
			}
			return fmt.Sprint(t)
		})
	}
}

// ReservationLabel builds the NAL statement a labeling function emits after
// inspecting the scheduler: "owner says reserved(tenant, weight, total)".
func (s *Scheduler) ReservationLabel(owner nal.Principal, tenant string) (nal.Formula, error) {
	w, err := s.Weight(tenant)
	if err != nil {
		return nil, err
	}
	return nal.Says{P: owner, F: nal.Pred{
		Name: "reserved",
		Args: []nal.Term{nal.Str(tenant), nal.Int(int64(w)), nal.Int(int64(s.TotalWeight()))},
	}}, nil
}

package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/introspect"
	"repro/internal/nal"
)

func TestProportionalShares(t *testing.T) {
	s := New()
	s.SetWeight("a", 1)
	s.SetWeight("b", 2)
	s.SetWeight("c", 4)
	const quanta = 7000
	for i := 0; i < quanta; i++ {
		if s.Tick() == "" {
			t.Fatal("no client scheduled")
		}
	}
	ta, _ := s.Ticks("a")
	tb, _ := s.Ticks("b")
	tc, _ := s.Ticks("c")
	if ta+tb+tc != quanta {
		t.Fatalf("tick accounting: %d+%d+%d != %d", ta, tb, tc, quanta)
	}
	// Shares should track weights within 2%.
	for _, c := range []struct {
		name  string
		got   int64
		share float64
	}{{"a", ta, 1.0 / 7}, {"b", tb, 2.0 / 7}, {"c", tc, 4.0 / 7}} {
		frac := float64(c.got) / quanta
		if math.Abs(frac-c.share) > 0.02 {
			t.Errorf("%s share = %.3f, want %.3f", c.name, frac, c.share)
		}
	}
}

func TestQuickTwoClientRatio(t *testing.T) {
	prop := func(w1, w2 uint8) bool {
		a := int(w1%16) + 1
		b := int(w2%16) + 1
		s := New()
		s.SetWeight("a", a)
		s.SetWeight("b", b)
		n := 3000
		for i := 0; i < n; i++ {
			s.Tick()
		}
		ta, _ := s.Ticks("a")
		want := float64(a) / float64(a+b)
		got := float64(ta) / float64(n)
		return math.Abs(got-want) < 0.05
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLateJoinerNotStarved(t *testing.T) {
	s := New()
	s.SetWeight("old", 1)
	for i := 0; i < 1000; i++ {
		s.Tick()
	}
	s.SetWeight("new", 1)
	newFirst := 0
	for i := 0; i < 100; i++ {
		if s.Tick() == "new" {
			newFirst++
		}
	}
	if newFirst < 40 {
		t.Errorf("late joiner got %d/100 quanta", newFirst)
	}
	// And the newcomer must not monopolize either (no pass-debt credit).
	if newFirst > 60 {
		t.Errorf("late joiner monopolized: %d/100", newFirst)
	}
}

func TestRemoveAndErrors(t *testing.T) {
	s := New()
	if s.Tick() != "" {
		t.Error("empty scheduler must return no client")
	}
	s.SetWeight("a", 1)
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); !errors.Is(err, ErrNoSuchClient) {
		t.Errorf("want ErrNoSuchClient, got %v", err)
	}
	if _, err := s.Ticks("a"); !errors.Is(err, ErrNoSuchClient) {
		t.Errorf("want ErrNoSuchClient, got %v", err)
	}
	// Weight floor.
	s.SetWeight("b", -5)
	if w, _ := s.Weight("b"); w != 1 {
		t.Errorf("weight floor = %d", w)
	}
}

func TestIntrospectionAndReservationLabel(t *testing.T) {
	s := New()
	s.SetWeight("fauxbook", 3)
	s.SetWeight("other", 1)
	reg := introspect.NewRegistry()
	owner := nal.Name("nexus")
	s.Publish(reg, owner)
	v, _, ok := reg.Read("/proc/sched/fauxbook/weight")
	if !ok || v != "3" {
		t.Errorf("weight node = %q, %v", v, ok)
	}
	v, _, _ = reg.Read("/proc/sched/total")
	if v != "4" {
		t.Errorf("total = %q", v)
	}
	lbl, err := s.ReservationLabel(owner, "fauxbook")
	if err != nil {
		t.Fatal(err)
	}
	want := nal.MustParse(`nexus says reserved("fauxbook", 3, 4)`)
	if !lbl.Equal(want) {
		t.Errorf("label = %q, want %q", lbl, want)
	}
	if _, err := s.ReservationLabel(owner, "ghost"); !errors.Is(err, ErrNoSuchClient) {
		t.Errorf("want ErrNoSuchClient, got %v", err)
	}
}

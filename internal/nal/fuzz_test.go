package nal

import (
	"testing"
)

// fuzzSeeds are formulas drawn from guard_test.go, the apps, and the
// examples, covering every production of the grammar.
var fuzzSeeds = []string{
	"?S says wantsAccess",
	"?S says wantsAccess(?O)",
	"?S says requested(?Op, ?O)",
	"NTP says TimeNow < @2026-03-19",
	"key:ab12 speaksfor alice on TimeNow",
	"hash:590fb6 says isTypeSafe(hash:590fb6)",
	`alice says openFile("/dir/file")`,
	"kernel.ipd.12 says ready",
	"a and b or not c => d",
	"quota(alice) <= 80",
	"size = 42 and owner says true",
	"false",
	"true",
	"[1, 2, 3] = [1, 2, 3]",
	`x != "quoted \"string\" with \\ escapes"`,
	"@2026-03-19T15:04:05Z < @2026-07-01",
	"p says (q says r)",
	"a speaksfor b and b speaksfor c",
	"not not x",
	"movieplayer says plays(\"film.mp4\", 1)",
}

// FuzzParseFormula checks the parser's core contracts on arbitrary input:
// it must never panic, and any formula it accepts must round-trip — f ==
// Parse(f.String()) up to structural equality, with String a fixed point
// and the canonical key machinery agreeing with the printed form.
func FuzzParseFormula(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := Parse(src)
		if err != nil {
			return
		}
		s1 := f1.String()
		f2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", s1, src, err)
		}
		if !f2.Equal(f1) {
			t.Fatalf("round-trip changed the formula: %q parsed as %#v, printed %q, reparsed as %#v",
				src, f1, s1, f2)
		}
		if s2 := f2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point: %q → %q", s1, s2)
		}
		if Hash64(f1) != Hash64(f2) {
			t.Fatalf("equal formulas hash differently: %q", s1)
		}
		// The canonical key names the equality class: it must parse back to
		// an equal formula. (It may differ from s1 in representation-only
		// corners, e.g. timestamps in different zones at the same instant.)
		key := KeyOf(f1)
		fk, err := Parse(key)
		if err != nil {
			t.Fatalf("canonical key %q does not parse: %v", key, err)
		}
		if !fk.Equal(f1) {
			t.Fatalf("canonical key %q parses to a different formula than %q", key, s1)
		}
	})
}

// FuzzParsePrincipal is the same contract for the principal sub-grammar.
func FuzzParsePrincipal(f *testing.F) {
	for _, s := range []string{"NTP", "key:ab12", "hash:590fb6", "kernel.ipd.12", "?X", "a.b.c"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := ParsePrincipal(src)
		if err != nil {
			return
		}
		s1 := p1.String()
		p2, err := ParsePrincipal(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", s1, src, err)
		}
		if !p2.EqualPrin(p1) {
			t.Fatalf("round-trip changed the principal: %q → %q", src, s1)
		}
		if KeyOfPrin(p1) != KeyOfPrin(p2) {
			t.Fatalf("equal principals got different canonical keys: %q", s1)
		}
	})
}

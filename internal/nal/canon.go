package nal

import (
	"strconv"
	"sync"
	"time"
)

// This file implements the canonical-key machinery that keeps AST
// serialization off the authorization hot path. Every formula, term, and
// principal has a canonical byte form — exactly the concrete syntax printed
// by String and accepted by Parse — and a cheap structural 64-bit hash
// computed without allocating. KeyOf and KeyOfPrin memoize the canonical
// form in a sharded intern table, so guards and caches that key on a
// formula pay the serialization cost once per distinct value instead of
// once per request (§2.8–§2.9 of the paper rely on exactly this
// amortization).
//
// The String methods in formula.go, term.go, principal.go, and subst.go all
// delegate to the appendX encoders below, so the canonical form cannot
// drift from the printed form.

// ---------------------------------------------------------------- encoders

// AppendFormula appends the canonical form of f (identical to f.String())
// to dst and returns the extended slice.
func AppendFormula(dst []byte, f Formula) []byte { return appendFormula(dst, f) }

func appendFormula(dst []byte, f Formula) []byte {
	switch v := f.(type) {
	case Pred:
		dst = append(dst, v.Name...)
		if len(v.Args) > 0 {
			dst = append(dst, '(')
			dst = appendTermList(dst, v.Args)
			dst = append(dst, ')')
		}
	case Says:
		dst = appendPrin(dst, v.P)
		dst = append(dst, " says "...)
		dst = appendParen(dst, v.F)
	case SpeaksFor:
		dst = appendPrin(dst, v.A)
		dst = append(dst, " speaksfor "...)
		dst = appendPrin(dst, v.B)
		if v.On != nil {
			dst = append(dst, " on "...)
			dst = append(dst, v.On.Pred...)
		}
	case Compare:
		dst = appendTerm(dst, v.L)
		dst = append(dst, ' ')
		dst = append(dst, v.Op.String()...)
		dst = append(dst, ' ')
		dst = appendTerm(dst, v.R)
	case Not:
		dst = append(dst, "not "...)
		dst = appendParen(dst, v.F)
	case And:
		dst = appendParen(dst, v.L)
		dst = append(dst, " and "...)
		dst = appendParen(dst, v.R)
	case Or:
		dst = appendParen(dst, v.L)
		dst = append(dst, " or "...)
		dst = appendParen(dst, v.R)
	case Implies:
		dst = appendParen(dst, v.L)
		dst = append(dst, " => "...)
		dst = appendParen(dst, v.R)
	case FalseF:
		dst = append(dst, "false"...)
	case TrueF:
		dst = append(dst, "true"...)
	default:
		panic("nal: unknown formula type in canonical encoder")
	}
	return dst
}

// appendParen is the buffer analogue of paren: binary connectives are
// wrapped so the output is unambiguous and reparseable.
func appendParen(dst []byte, f Formula) []byte {
	switch f.(type) {
	case And, Or, Implies:
		dst = append(dst, '(')
		dst = appendFormula(dst, f)
		return append(dst, ')')
	}
	return appendFormula(dst, f)
}

func appendTermList(dst []byte, ts []Term) []byte {
	for i, t := range ts {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = appendTerm(dst, t)
	}
	return dst
}

func appendTerm(dst []byte, t Term) []byte {
	switch v := t.(type) {
	case Str:
		dst = strconv.AppendQuote(dst, string(v))
	case Int:
		dst = strconv.AppendInt(dst, int64(v), 10)
	case Time:
		dst = append(dst, '@')
		dst = appendTimeValue(dst, v.T)
	case Atom:
		dst = append(dst, v...)
	case Var:
		dst = append(dst, '?')
		dst = append(dst, v...)
	case PrinTerm:
		dst = appendPrin(dst, v.P)
	case TermList:
		dst = append(dst, '[')
		dst = appendTermList(dst, v)
		dst = append(dst, ']')
	case Func:
		dst = append(dst, v.Name...)
		dst = append(dst, '(')
		dst = appendTermList(dst, v.Args)
		dst = append(dst, ')')
	default:
		panic("nal: unknown term type in canonical encoder")
	}
	return dst
}

// appendTimeValue renders a timestamp in UTC so that (a) reparsing yields
// the same instant and (b) Equal Time terms — equality is by instant —
// always produce identical canonical text, keeping String injective on
// formula equality classes. UTC midnights use the short date form;
// fractional seconds are preserved via RFC 3339 with nanoseconds.
func appendTimeValue(dst []byte, t time.Time) []byte {
	t = t.UTC()
	h, m, s := t.Clock()
	if h == 0 && m == 0 && s == 0 && t.Nanosecond() == 0 {
		return t.AppendFormat(dst, "2006-01-02")
	}
	return t.AppendFormat(dst, time.RFC3339Nano)
}

func appendPrin(dst []byte, p Principal) []byte {
	switch v := p.(type) {
	case Name:
		dst = append(dst, v...)
	case Key:
		dst = append(dst, "key:"...)
		dst = append(dst, v...)
	case HashPrin:
		dst = append(dst, "hash:"...)
		dst = append(dst, v...)
	case Sub:
		dst = appendPrin(dst, v.Parent)
		dst = append(dst, '.')
		dst = append(dst, v.Tag...)
	case varPrin:
		dst = append(dst, '?')
		dst = append(dst, v...)
	default:
		panic("nal: unknown principal type in canonical encoder")
	}
	return dst
}

// ---------------------------------------------------------------- hashing

// fnv64 is a streaming FNV-1a hash used for the structural hashes below; it
// exists so that hashing an AST allocates nothing.
type fnv64 uint64

const (
	fnvOffset fnv64 = 14695981039346656037
	fnvPrime  fnv64 = 1099511628211
)

func (h fnv64) byte(b byte) fnv64 { return (h ^ fnv64(b)) * fnvPrime }
func (h fnv64) str(s string) fnv64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ fnv64(s[i])) * fnvPrime
	}
	return h
}

// Per-node tag bytes keep the structural hash injective across node kinds
// (e.g. Pred("a") vs Atom("a")); raw strings are terminated with a 0 byte so
// adjacent fields cannot alias.
const (
	tagPred byte = iota + 1
	tagSays
	tagSpeaksFor
	tagCompare
	tagNot
	tagAnd
	tagOr
	tagImplies
	tagFalse
	tagTrue
	tagStr
	tagInt
	tagTime
	tagAtom
	tagVar
	tagPrinTerm
	tagList
	tagFunc
	tagName
	tagKey
	tagHash
	tagSub
	tagVarPrin
)

// Hash64 returns a structural 64-bit hash of f: equal formulas hash equal,
// and the walk performs no allocation. It is the fast first step of KeyOf.
func Hash64(f Formula) uint64 { return uint64(hashFormula(fnvOffset, f)) }

// HashString returns the FNV-1a hash of a plain string with the same
// parameters as the structural hashes, for callers (e.g. the guard's cache
// sharding) that key on canonical strings.
func HashString(s string) uint64 { return uint64(fnvOffset.str(s)) }

// Hash64Prin is Hash64 for principals.
func Hash64Prin(p Principal) uint64 { return uint64(hashPrin(fnvOffset, p)) }

func hashFormula(h fnv64, f Formula) fnv64 {
	switch v := f.(type) {
	case Pred:
		h = h.byte(tagPred).str(v.Name).byte(0)
		for _, a := range v.Args {
			h = hashTerm(h, a)
		}
	case Says:
		h = hashPrin(h.byte(tagSays), v.P)
		h = hashFormula(h, v.F)
	case SpeaksFor:
		h = hashPrin(h.byte(tagSpeaksFor), v.A)
		h = hashPrin(h, v.B)
		if v.On != nil {
			h = h.str(v.On.Pred)
		}
		h = h.byte(0)
	case Compare:
		h = h.byte(tagCompare).byte(byte(v.Op))
		h = hashTerm(h, v.L)
		h = hashTerm(h, v.R)
	case Not:
		h = hashFormula(h.byte(tagNot), v.F)
	case And:
		h = hashFormula(h.byte(tagAnd), v.L)
		h = hashFormula(h, v.R)
	case Or:
		h = hashFormula(h.byte(tagOr), v.L)
		h = hashFormula(h, v.R)
	case Implies:
		h = hashFormula(h.byte(tagImplies), v.L)
		h = hashFormula(h, v.R)
	case FalseF:
		h = h.byte(tagFalse)
	case TrueF:
		h = h.byte(tagTrue)
	}
	return h
}

func hashTerm(h fnv64, t Term) fnv64 {
	switch v := t.(type) {
	case Str:
		h = h.byte(tagStr).str(string(v)).byte(0)
	case Int:
		h = h.byte(tagInt)
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h = h.byte(byte(u >> (8 * i)))
		}
	case Time:
		h = h.byte(tagTime)
		u := uint64(v.T.UnixNano())
		for i := 0; i < 8; i++ {
			h = h.byte(byte(u >> (8 * i)))
		}
	case Atom:
		h = h.byte(tagAtom).str(string(v)).byte(0)
	case Var:
		h = h.byte(tagVar).str(string(v)).byte(0)
	case PrinTerm:
		h = hashPrin(h.byte(tagPrinTerm), v.P)
	case TermList:
		h = h.byte(tagList)
		for _, e := range v {
			h = hashTerm(h, e)
		}
		h = h.byte(0)
	case Func:
		h = h.byte(tagFunc).str(v.Name).byte(0)
		for _, a := range v.Args {
			h = hashTerm(h, a)
		}
	}
	return h
}

func hashPrin(h fnv64, p Principal) fnv64 {
	switch v := p.(type) {
	case Name:
		h = h.byte(tagName).str(string(v)).byte(0)
	case Key:
		h = h.byte(tagKey).str(string(v)).byte(0)
	case HashPrin:
		h = h.byte(tagHash).str(string(v)).byte(0)
	case Sub:
		h = hashPrin(h.byte(tagSub), v.Parent).str(v.Tag).byte(0)
	case varPrin:
		h = h.byte(tagVarPrin).str(string(v)).byte(0)
	}
	return h
}

// Note: hashTerm hashes Time by instant (UnixNano), matching both Time
// equality (time.Time.Equal) and the canonical text, which renders in UTC.
// Equal formulas therefore always share hash and canonical string.

// ------------------------------------------------------------- interning

// The intern tables memoize hash → (value, canonical string) with per-shard
// read/write locks. Shard count is a power of two so selection is a mask;
// per-shard entry caps bound worst-case memory against adversarial streams
// of distinct formulas (an uncached KeyOf still returns the right string,
// it just pays the encoder).
const (
	internShards   = 64
	internShardCap = 4096
)

type internShard[T any] struct {
	mu sync.RWMutex
	m  map[uint64][]internEntry[T]
	n  int // total entries across buckets (hash collisions share a bucket)
}

type internEntry[T any] struct {
	v T
	s string
}

type internTable[T any] struct {
	shards [internShards]internShard[T]
	eq     func(a, b T) bool
	enc    func(dst []byte, v T) []byte
}

func (t *internTable[T]) key(h uint64, v T) string {
	sh := &t.shards[h&(internShards-1)]
	sh.mu.RLock()
	for _, e := range sh.m[h] {
		if t.eq(e.v, v) {
			sh.mu.RUnlock()
			return e.s
		}
	}
	sh.mu.RUnlock()

	s := string(t.enc(nil, v))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.m[h] {
		if t.eq(e.v, v) {
			return e.s
		}
	}
	if sh.m == nil {
		sh.m = map[uint64][]internEntry[T]{}
	}
	// The cap bounds total entries, not distinct hashes: colliding Hash64
	// values share a bucket, and an attacker-crafted collision stream must
	// not grow one bucket without bound.
	if sh.n < internShardCap {
		sh.m[h] = append(sh.m[h], internEntry[T]{v: v, s: s})
		sh.n++
	}
	return s
}

var (
	formulaTab = &internTable[Formula]{
		eq:  func(a, b Formula) bool { return a.Equal(b) },
		enc: appendFormula,
	}
	prinTab = &internTable[Principal]{
		eq:  func(a, b Principal) bool { return a.EqualPrin(b) },
		enc: appendPrin,
	}
)

// KeyOf returns the canonical key of f: a string identical to f.String(),
// interned so that repeated calls for structurally equal formulas return a
// shared string without re-serializing the AST. Structurally equal
// formulas always print identically (Time terms render in UTC), so the key
// is a pure function of the equality class whether or not the intern table
// retains it. Formulas are immutable values, so interning them is safe.
// Use this instead of String whenever the result keys a map or feeds a
// hash.
func KeyOf(f Formula) string {
	return formulaTab.key(Hash64(f), f)
}

// KeyOfPrin is KeyOf for principals.
func KeyOfPrin(p Principal) string {
	return prinTab.key(Hash64Prin(p), p)
}

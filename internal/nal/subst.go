package nal

// Subst maps guard variables to ground terms. Guards build a substitution
// from the access-control tuple (subject, operation, object) and apply it to
// the goal formula before demanding a proof.
type Subst map[Var]Term

// ApplyTerm substitutes variables in a term.
func (s Subst) ApplyTerm(t Term) Term {
	switch v := t.(type) {
	case Var:
		if r, ok := s[v]; ok {
			return r
		}
		return v
	case TermList:
		out := make(TermList, len(v))
		for i, e := range v {
			out[i] = s.ApplyTerm(e)
		}
		return out
	case Func:
		args := make([]Term, len(v.Args))
		for i, e := range v.Args {
			args[i] = s.ApplyTerm(e)
		}
		return Func{Name: v.Name, Args: args}
	case PrinTerm:
		return PrinTerm{P: s.ApplyPrin(v.P)}
	}
	return t
}

// ApplyPrin substitutes variables appearing as principal positions. A
// variable can stand for a principal when the substitution maps it to a
// PrinTerm; Name("?X") forms produced by the parser are resolved here.
func (s Subst) ApplyPrin(p Principal) Principal {
	switch v := p.(type) {
	case varPrin:
		if r, ok := s[Var(v)]; ok {
			if pt, ok := r.(PrinTerm); ok {
				return pt.P
			}
			if a, ok := r.(Atom); ok {
				return Name(a)
			}
		}
		return v
	case Sub:
		return Sub{Parent: s.ApplyPrin(v.Parent), Tag: v.Tag}
	}
	return p
}

// Apply substitutes variables throughout a formula.
func (s Subst) Apply(f Formula) Formula {
	switch v := f.(type) {
	case Pred:
		args := make([]Term, len(v.Args))
		for i, a := range v.Args {
			args[i] = s.ApplyTerm(a)
		}
		return Pred{Name: v.Name, Args: args}
	case Says:
		return Says{P: s.ApplyPrin(v.P), F: s.Apply(v.F)}
	case SpeaksFor:
		return SpeaksFor{A: s.ApplyPrin(v.A), B: s.ApplyPrin(v.B), On: v.On}
	case Compare:
		return Compare{Op: v.Op, L: s.ApplyTerm(v.L), R: s.ApplyTerm(v.R)}
	case Not:
		return Not{F: s.Apply(v.F)}
	case And:
		return And{L: s.Apply(v.L), R: s.Apply(v.R)}
	case Or:
		return Or{L: s.Apply(v.L), R: s.Apply(v.R)}
	case Implies:
		return Implies{L: s.Apply(v.L), R: s.Apply(v.R)}
	}
	return f
}

// varPrin is a guard variable in principal position, produced by the parser
// for "?X says ..." forms.
type varPrin string

func (varPrin) isPrincipal()     {}
func (v varPrin) String() string { return "?" + string(v) }
func (v varPrin) EqualPrin(o Principal) bool {
	w, ok := o.(varPrin)
	return ok && w == v
}

// VarPrin returns the principal-position guard variable ?name.
func VarPrin(name string) Principal { return varPrin(name) }

// Vars collects the guard variables appearing in f, in first-occurrence
// order.
func Vars(f Formula) []Var {
	var out []Var
	seen := map[Var]bool{}
	add := func(v Var) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walkT func(Term)
	walkT = func(t Term) {
		switch v := t.(type) {
		case Var:
			add(v)
		case TermList:
			for _, e := range v {
				walkT(e)
			}
		case Func:
			for _, e := range v.Args {
				walkT(e)
			}
		case PrinTerm:
			walkP(v.P, add)
		}
	}
	var walk func(Formula)
	walk = func(f Formula) {
		switch v := f.(type) {
		case Pred:
			for _, a := range v.Args {
				walkT(a)
			}
		case Says:
			walkP(v.P, add)
			walk(v.F)
		case SpeaksFor:
			walkP(v.A, add)
			walkP(v.B, add)
		case Compare:
			walkT(v.L)
			walkT(v.R)
		case Not:
			walk(v.F)
		case And:
			walk(v.L)
			walk(v.R)
		case Or:
			walk(v.L)
			walk(v.R)
		case Implies:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(f)
	return out
}

func walkP(p Principal, add func(Var)) {
	switch v := p.(type) {
	case varPrin:
		add(Var(v))
	case Sub:
		walkP(v.Parent, add)
	}
}

// Ground reports whether f contains no guard variables. Proof conclusions
// and labels must be ground.
func Ground(f Formula) bool { return len(Vars(f)) == 0 }
